package benchmarks

// Ablations: each benchmark removes one design mechanism the paper calls
// out and measures the damage, demonstrating why the mechanism exists.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"condorg/internal/condorg"
	"condorg/internal/events"
	"condorg/internal/gcat"
	"condorg/internal/gram"
	"condorg/internal/lrm"
	"condorg/internal/sim"
	"condorg/internal/wire"
)

// BenchmarkA1_TwoPhaseVsRetry — remove the two-phase commit (§3.2) and
// exactly-once breaks: with auto-commit-on-submit, a lost submit response
// makes the naive client resubmit, and BOTH copies execute.
func BenchmarkA1_TwoPhaseVsRetry(b *testing.B) {
	type result struct {
		submissions int64
		executions  int64
	}
	run := func(autoCommit bool, naive bool, n int) result {
		var runs atomic.Int64
		faults := &wire.Faults{}
		cluster, _ := lrm.NewCluster(lrm.Config{Name: "a1", Cpus: 16})
		site, err := gram.NewSite(gram.SiteConfig{
			Name:             "a1",
			Cluster:          cluster,
			Runtime:          benchRuntime(&runs),
			StateDir:         mustTempDir(b, "a1"),
			GatekeeperFaults: faults,
			AutoCommit:       autoCommit,
			CommitTimeout:    time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer site.Close()
		// Drop every other submit response: the client always retries.
		var k int64
		faults.Set(nil, func(method string) bool {
			return method == "gram.submit" && atomic.AddInt64(&k, 1)%2 == 1
		})
		for i := 0; i < n; i++ {
			if naive {
				// No submission ID, single-attempt wire calls, manual
				// retry with a FRESH identity each time — the
				// pre-2PC client.
				for {
					c := gram.NewClient(nil, nil)
					c.SetTimeouts(60*time.Millisecond, -1)
					contact, err := c.Submit(site.GatekeeperAddr(), gram.JobSpec{
						Executable: string(gram.Program("noop")),
					}, gram.SubmitOptions{})
					c.Close()
					if err == nil {
						_ = contact
						break
					}
				}
			} else {
				c := gram.NewClient(nil, nil)
				c.SetTimeouts(60*time.Millisecond, 10)
				contact, err := c.Submit(site.GatekeeperAddr(), gram.JobSpec{
					Executable: string(gram.Program("noop")),
				}, gram.SubmitOptions{SubmissionID: gram.NewSubmissionID()})
				if err != nil {
					b.Fatal(err)
				}
				if err := c.Commit(contact); err != nil {
					b.Fatal(err)
				}
				c.Close()
			}
		}
		// Let every started job finish.
		deadline := time.Now().Add(10 * time.Second)
		for site.Cluster().FreeCpus() != site.Cluster().Cpus() && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		time.Sleep(50 * time.Millisecond)
		return result{submissions: int64(n), executions: runs.Load()}
	}
	const jobs = 10
	var with, without result
	b.Run("with-2pc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			with = run(false, false, jobs)
			if with.executions != with.submissions {
				b.Fatalf("2PC produced %d executions for %d submissions", with.executions, with.submissions)
			}
		}
		b.ReportMetric(float64(with.executions-with.submissions), "duplicates")
	})
	b.Run("without-2pc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			without = run(true, true, jobs)
		}
		if without.executions <= without.submissions {
			b.Fatalf("expected duplicate executions without 2PC, got %d for %d",
				without.executions, without.submissions)
		}
		b.ReportMetric(float64(without.executions-without.submissions), "duplicates")
	})
	once("A1", func() {
		fmt.Println("\n=== A1: two-phase commit vs naive retry, 50% submit-response loss ===")
		fmt.Printf("%-14s %12s %12s %12s\n", "protocol", "submissions", "executions", "duplicates")
		fmt.Printf("%-14s %12d %12d %12d\n", "2PC", with.submissions, with.executions, with.executions-with.submissions)
		fmt.Printf("%-14s %12d %12d %12d\n", "naive-retry", without.submissions, without.executions, without.executions-without.submissions)
	})
}

// BenchmarkA2_StableLog — remove the client-side stable log (§3.2/§4.2) and
// a submit-machine crash loses the queue: with the journal every job is
// recovered and completes; without it the agent restarts empty-handed.
func BenchmarkA2_StableLog(b *testing.B) {
	run := func(wipeState bool) (recovered int) {
		var runs atomic.Int64
		site := benchSite(b, "a2", &runs, "", "")
		stateDir := mustTempDir(b, "a2agent")
		a1, err := condorg.NewAgent(condorg.AgentConfig{
			StateDir: stateDir,
			Selector: condorg.StaticSelector(site.GatekeeperAddr()),
			Probe:    condorg.ProbeOptions{Interval: 30 * time.Millisecond},
		})
		if err != nil {
			b.Fatal(err)
		}
		var ids []string
		for i := 0; i < 5; i++ {
			id, err := a1.Submit(condorg.SubmitRequest{
				Owner: "bench", Executable: gram.Program("linger"), Args: []string{"200ms"},
			})
			if err != nil {
				b.Fatal(err)
			}
			ids = append(ids, id)
		}
		a1.Close() // crash
		if wipeState {
			os.RemoveAll(stateDir) // "no stable storage"
			os.MkdirAll(stateDir, 0o700)
		}
		a2, err := condorg.NewAgent(condorg.AgentConfig{
			StateDir: stateDir,
			Selector: condorg.StaticSelector(site.GatekeeperAddr()),
			Probe:    condorg.ProbeOptions{Interval: 30 * time.Millisecond},
		})
		if err != nil {
			b.Fatal(err)
		}
		defer a2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		for _, id := range ids {
			if info, err := a2.Wait(ctx, id); err == nil && info.State == condorg.Completed {
				recovered++
			}
		}
		return recovered
	}
	var withLog, withoutLog int
	b.Run("with-journal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			withLog = run(false)
			if withLog != 5 {
				b.Fatalf("journal recovered %d/5 jobs", withLog)
			}
		}
		b.ReportMetric(float64(withLog), "jobs-recovered")
	})
	b.Run("without-journal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			withoutLog = run(true)
			if withoutLog != 0 {
				b.Fatalf("no journal but %d jobs recovered?!", withoutLog)
			}
		}
		b.ReportMetric(float64(withoutLog), "jobs-recovered")
	})
	once("A2", func() {
		fmt.Println("\n=== A2: persistent job queue vs none across a submit-machine crash ===")
		fmt.Printf("with-journal:    %d/5 jobs recovered and completed\n", withLog)
		fmt.Printf("without-journal: %d/5 jobs recovered (queue lost)\n", withoutLog)
	})
}

// BenchmarkA3_IdleShutdown — remove the GlideIn idle timeout ("guarding
// against runaway daemons", §5) and unused pilots burn their whole lease.
func BenchmarkA3_IdleShutdown(b *testing.B) {
	run := func(idleTimeout time.Duration) (wastedCPUHours float64) {
		eng := events.NewEngine(3)
		site := sim.NewSite(eng, "s", 64, nil)
		m := sim.NewMetrics(eng)
		pool := sim.NewGlideinPool(eng, m)
		// 10 short jobs, 40 pilots with 8h leases: most pilots find no
		// work.
		for i := 0; i < 10; i++ {
			pool.AddJob(sim.JobSpec{ID: fmt.Sprintf("j%d", i), Owner: "u", Duration: 20 * time.Minute})
		}
		pool.SubmitPilots(site, 40, 8*time.Hour, idleTimeout)
		eng.Run()
		return pool.WastedCPUSeconds() / 3600
	}
	var withGuard, withoutGuard float64
	b.Run("idle-timeout-15m", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			withGuard = run(15 * time.Minute)
		}
		b.ReportMetric(withGuard, "wasted-cpu-hours")
	})
	b.Run("no-idle-timeout", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			withoutGuard = run(0)
		}
		b.ReportMetric(withoutGuard, "wasted-cpu-hours")
	})
	once("A3", func() {
		fmt.Println("\n=== A3: GlideIn idle shutdown guard, 40 pilots / 8h leases / 10 short jobs ===")
		fmt.Printf("idle-timeout 15m: %6.1f wasted CPU-hours\n", withGuard)
		fmt.Printf("no idle timeout:  %6.1f wasted CPU-hours (runaway daemons)\n", withoutGuard)
		if withoutGuard <= withGuard {
			fmt.Println("WARNING: guard showed no benefit")
		}
	})
}

// BenchmarkA4_GCatBuffering — remove G-Cat's scratch buffer (§6.3) and the
// application's writes couple to the network: each write blocks for the
// transfer. With buffering the writer runs at disk speed regardless.
func BenchmarkA4_GCatBuffering(b *testing.B) {
	const lines = 50
	const perChunkDelay = 2 * time.Millisecond
	writeLine := func(f *os.File, i int) {
		fmt.Fprintf(f, "SCF cycle %04d energy=-76.0210\n", i)
	}
	b.Run("buffered-gcat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mss, _ := gcat.NewMSS(gcat.MSSOptions{})
			mss.SetThrottle(func(int) { time.Sleep(perChunkDelay) })
			dir := mustTempDir(b, "a4")
			src := filepath.Join(dir, "out")
			os.WriteFile(src, nil, 0o600)
			g, _ := gcat.NewGCat(gcat.GCatConfig{
				SourcePath: src, MSSAddr: mss.Addr(), RemoteName: "out",
				ChunkSize: 64, Poll: time.Millisecond,
			})
			g.Start()
			f, _ := os.OpenFile(src, os.O_WRONLY|os.O_APPEND, 0)
			start := time.Now()
			for j := 0; j < lines; j++ {
				writeLine(f, j)
			}
			writerElapsed := time.Since(start)
			f.Close()
			g.Stop(10 * time.Second)
			mss.Close()
			b.ReportMetric(float64(writerElapsed.Microseconds()), "writer-us")
		}
	})
	b.Run("direct-network-writes", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mss, _ := gcat.NewMSS(gcat.MSSOptions{})
			mss.SetThrottle(func(int) { time.Sleep(perChunkDelay) })
			c := gcat.NewMSSClient(mss.Addr(), nil, nil)
			start := time.Now()
			for j := 0; j < lines; j++ {
				// The application writes straight over the network:
				// every line pays the transfer latency.
				if err := c.PutChunk("out", j, []byte(fmt.Sprintf("SCF cycle %04d energy=-76.0210\n", j))); err != nil {
					b.Fatal(err)
				}
			}
			writerElapsed := time.Since(start)
			c.Close()
			mss.Close()
			b.ReportMetric(float64(writerElapsed.Microseconds()), "writer-us")
		}
	})
	once("A4", func() {
		fmt.Println("\n=== A4: G-Cat scratch buffering vs direct network writes (2ms/chunk network) ===")
		fmt.Println("see writer-us metric: buffered writes run at disk speed; direct writes")
		fmt.Println("pay the network per line (~2ms x 50 lines)")
	})
}
