package benchmarks

// Wire-layer ablation benchmarks: how much of the agent's end-to-end
// submit throughput and probe cost comes from each wire protocol v2
// feature — batched verbs, session auth, and the binary codec. Each
// sub-benchmark runs the full authenticated stack (GSI handshakes, GRAM
// two-phase commit, real TCP) and differs only in the wire configuration.
// See EXPERIMENTS.md for recorded numbers.

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"condorg/internal/condorg"
	"condorg/internal/gass"
	"condorg/internal/gram"
	"condorg/internal/gsi"
	"condorg/internal/lrm"
	"condorg/internal/wire"
)

// benchSecureSite is benchSite plus GSI: tokens (or sessions) are
// verified on every gatekeeper and JobManager endpoint.
func benchSecureSite(b *testing.B, name string, runs *atomic.Int64, anchor *gsi.Certificate) *gram.Site {
	b.Helper()
	cluster, err := lrm.NewCluster(lrm.Config{Name: name, Cpus: 8})
	if err != nil {
		b.Fatal(err)
	}
	site, err := gram.NewSite(gram.SiteConfig{
		Name:     name,
		Anchor:   anchor,
		Gridmap:  gsi.NewGridmap(map[string]string{"/O=Grid/CN=bench": "bench"}),
		Cluster:  cluster,
		Runtime:  benchRuntime(runs),
		StateDir: mustTempDir(b, "site-"+name),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(site.Close)
	return site
}

func benchCA(b *testing.B) (*gsi.Certificate, *gsi.Credential) {
	b.Helper()
	now := time.Now()
	ca, err := gsi.NewCA("/O=Grid/CN=BenchCA", now, 24*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	user, err := ca.IssueUser("/O=Grid/CN=bench", now, 12*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	proxy, err := gsi.NewProxy(user, now, 6*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	return ca.Certificate(), proxy
}

// wireAblation is one rung of the ladder.
type wireAblation struct {
	name  string
	batch condorg.BatchOptions
	wcfg  condorg.WireOptions
}

func wireAblationLadder() []wireAblation {
	return []wireAblation{
		// Protocol v1: per-job verbs, a signed token verified on every
		// frame, JSON codec.
		{"v1-baseline", condorg.BatchOptions{MaxJobs: 1},
			condorg.WireOptions{Codec: wire.CodecJSON, NoSession: true}},
		// Session auth alone: per-job verbs, token verified once per
		// connection instead of per frame.
		{"session", condorg.BatchOptions{MaxJobs: 1},
			condorg.WireOptions{Codec: wire.CodecJSON}},
		// Binary codec alone: per-job verbs, per-message tokens.
		{"binary", condorg.BatchOptions{MaxJobs: 1},
			condorg.WireOptions{Codec: wire.CodecBinary, NoSession: true}},
		// + batched verbs only.
		{"batch", condorg.BatchOptions{MaxJobs: 32, MaxDelay: 2 * time.Millisecond},
			condorg.WireOptions{Codec: wire.CodecJSON, NoSession: true}},
		// + session auth (token verified once per connection).
		{"batch+session", condorg.BatchOptions{MaxJobs: 32, MaxDelay: 2 * time.Millisecond},
			condorg.WireOptions{Codec: wire.CodecJSON}},
		// + binary codec: the full v2 wire.
		{"batch+session+binary", condorg.BatchOptions{MaxJobs: 32, MaxDelay: 2 * time.Millisecond},
			condorg.WireOptions{Codec: wire.CodecBinary}},
	}
}

// BenchmarkSubmitBurstWire is the headline wire-v2 ablation: authenticated
// submit-burst throughput at each rung of the ladder. The timed region runs
// from the first Submit until every job holds a committed site contact —
// the submission traffic the wire carries (GRAM two-phase frames plus the
// probe and callback storm for jobs in flight). The drain to completion
// happens outside the timer: it measures the LRM, not the wire. jobs/s is
// the number to read.
func BenchmarkSubmitBurstWire(b *testing.B) {
	for _, abl := range wireAblationLadder() {
		b.Run(abl.name, func(b *testing.B) {
			anchor, proxy := benchCA(b)
			var runs atomic.Int64
			site := benchSecureSite(b, "burst", &runs, anchor)
			agent, err := condorg.NewAgent(condorg.AgentConfig{
				StateDir:   mustTempDir(b, "agent"),
				Credential: proxy,
				Selector:   condorg.StaticSelector(site.GatekeeperAddr()),
				Probe:      condorg.ProbeOptions{Interval: 30 * time.Millisecond},
				Batch:      abl.batch,
				Wire:       abl.wcfg,
				Stage:      condorg.StageOptions{Disabled: true},
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(agent.Close)

			b.ResetTimer()
			const workers = 8
			var wg sync.WaitGroup
			jobs := make(chan int)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for range jobs {
						if _, err := agent.Submit(condorg.SubmitRequest{
							Owner: "bench", Executable: gram.Program("noop"),
						}); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			for i := 0; i < b.N; i++ {
				jobs <- i
			}
			close(jobs)
			wg.Wait()
			// The burst is over when every job has crossed the wire: a
			// committed site contact, or already terminal (a fast job can
			// finish before we look).
			for {
				pending := 0
				for _, info := range agent.Jobs() {
					if info.Contact.JobID == "" && !info.State.Terminal() {
						pending++
					}
				}
				if pending == 0 {
					break
				}
				time.Sleep(2 * time.Millisecond)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
			ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
			defer cancel()
			if err := agent.WaitAll(ctx); err != nil {
				b.Fatal(err)
			}
			if got := runs.Load(); got != int64(b.N) {
				b.Fatalf("%d executions for %d jobs", got, b.N)
			}
		})
	}
}

// BenchmarkProbeSweep measures the §4.2 failure-detector sweep over a
// site holding 1000 jobs: the v1 protocol pays one jm.status RPC per
// JobManager, the batched verb pays ceil(1000/32) gatekeeper RPCs.
// rpcs/sweep makes the fan-in explicit; ns/op is the sweep latency.
func BenchmarkProbeSweep(b *testing.B) {
	const nJobs = 1000
	const chunk = 32
	setup := func(b *testing.B) (*gram.Client, string, []gram.JobContact) {
		var runs atomic.Int64
		site := benchSite(b, "sweep", &runs, "", "")
		client := gram.NewClient(nil, nil)
		b.Cleanup(client.Close)
		gk := site.GatekeeperAddr()
		// Stage the linger stub once; all 1000 jobs share it.
		gs, err := gass.NewServer(mustTempDir(b, "sweep-gass"), gass.ServerOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { gs.Close() })
		gc := gass.NewClient(nil, nil)
		b.Cleanup(func() { gc.Close() })
		exeURL := gs.URLFor("bin/linger")
		if err := gc.WriteFile(exeURL, gram.Program("linger")); err != nil {
			b.Fatal(err)
		}
		exe := exeURL.String()
		var contacts []gram.JobContact
		for off := 0; off < nJobs; off += 100 {
			n := 100
			entries := make([]gram.BatchSubmitEntry, n)
			for i := range entries {
				entries[i] = gram.BatchSubmitEntry{
					Spec: gram.JobSpec{Executable: exe, Args: []string{"30m"}},
					Opts: gram.SubmitOptions{SubmissionID: gram.NewSubmissionID()},
				}
			}
			results, err := client.BatchSubmit(gk, entries)
			if err != nil {
				b.Fatal(err)
			}
			ids := make([]string, n)
			for i, r := range results {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
				ids[i] = r.Contact.JobID
				contacts = append(contacts, r.Contact)
			}
			if _, err := client.BatchCommit(gk, ids); err != nil {
				b.Fatal(err)
			}
		}
		return client, gk, contacts
	}

	b.Run("perjob", func(b *testing.B) {
		client, _, contacts := setup(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, contact := range contacts {
				if _, err := client.Status(contact); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(nJobs), "rpcs/sweep")
	})
	b.Run("batched", func(b *testing.B) {
		client, gk, contacts := setup(b)
		ids := make([]string, len(contacts))
		for i, c := range contacts {
			ids[i] = c.JobID
		}
		rpcs := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rpcs = 0
			for off := 0; off < len(ids); off += chunk {
				end := off + chunk
				if end > len(ids) {
					end = len(ids)
				}
				results, err := client.BatchStatus(gk, ids[off:end])
				if err != nil {
					b.Fatal(err)
				}
				rpcs++
				for _, r := range results {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		}
		b.ReportMetric(float64(rpcs), "rpcs/sweep")
	})
}
