package benchmarks

// Multi-site submission throughput: the workload the per-site GridManager
// pipelines exist for. Every gatekeeper and jobmanager request carries a
// simulated wide-area RTT, so the serial configuration (one remote
// operation at a time, the pre-pipeline behaviour) pays the full latency
// ladder per job while the pipelined agent overlaps it across sites. The
// one-faulted variants add a blackholed site with a submission wedged
// against it — the head-of-line scenario: serial throughput collapses
// behind the ~900ms timeout burns, pipelined throughput should not care.

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"condorg/internal/condorg"
	"condorg/internal/faultclass"
	"condorg/internal/gram"
	"condorg/internal/lrm"
	"condorg/internal/wire"
)

// simulated one-way processing latency per remote request ("wide area").
const wanDelay = 5 * time.Millisecond

const multiSiteBatch = 16 // jobs per benchmark iteration

func benchDelaySite(b *testing.B, name string, runs *atomic.Int64, extra *wire.Faults) *gram.Site {
	b.Helper()
	cluster, err := lrm.NewCluster(lrm.Config{Name: name, Cpus: 8})
	if err != nil {
		b.Fatal(err)
	}
	faults := extra
	if faults == nil {
		faults = &wire.Faults{}
	}
	faults.SetDelay(func(string) time.Duration { return wanDelay })
	site, err := gram.NewSite(gram.SiteConfig{
		Name:             name,
		Cluster:          cluster,
		Runtime:          benchRuntime(runs),
		StateDir:         mustTempDir(b, "ms-"+name),
		GatekeeperFaults: faults,
		JobManagerFaults: faults,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(site.Close)
	return site
}

func runMultiSite(b *testing.B, numSites int, pipe condorg.PipelineOptions, faulted bool) {
	var runs atomic.Int64
	addrs := make([]string, numSites)
	for i := range addrs {
		site := benchDelaySite(b, fmt.Sprintf("ms%d", i), &runs, nil)
		addrs[i] = site.GatekeeperAddr()
	}
	agent, err := condorg.NewAgent(condorg.AgentConfig{
		StateDir: mustTempDir(b, "ms-agent"),
		Selector: &condorg.RoundRobinSelector{Sites: addrs},
		Probe:    condorg.ProbeOptions{Interval: 20 * time.Millisecond},
		Pipeline: pipe,
		// The breaker must never open: fast-fail would rescue the serial
		// configuration, and the point is to compare the pipelines.
		Breaker: faultclass.BreakerConfig{
			Threshold: 1000,
			BaseDelay: 10 * time.Millisecond,
			MaxDelay:  20 * time.Millisecond,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(agent.Close)

	if faulted {
		// A blackholed site with one wedged submission churning against
		// it for the whole measurement; its timeout ladders (~900ms per
		// attempt) compete with the healthy traffic for pipeline slots.
		blackholed := &wire.Faults{}
		dead := benchDelaySite(b, "ms-dead", &runs, blackholed)
		blackholed.SetConn(nil, func() bool { return true }, nil)
		if _, err := agent.Submit(condorg.SubmitRequest{
			Owner: "bench", Executable: gram.Program("noop"),
			Site: dead.GatekeeperAddr(),
		}); err != nil {
			b.Fatal(err)
		}
		time.Sleep(50 * time.Millisecond) // let the wedged submit enter its pipeline
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ids := make([]string, 0, multiSiteBatch)
		for j := 0; j < multiSiteBatch; j++ {
			id, err := agent.Submit(condorg.SubmitRequest{
				Owner: "bench", Executable: gram.Program("noop"),
				Site: addrs[j%numSites],
			})
			if err != nil {
				b.Fatal(err)
			}
			ids = append(ids, id)
		}
		for _, id := range ids {
			waitCompleted(b, agent, id)
		}
	}
	b.StopTimer()
	if got := runs.Load(); got != int64(multiSiteBatch*b.N) {
		b.Fatalf("ran %d jobs for %d submissions (exactly-once violated)", got, multiSiteBatch*b.N)
	}
	b.ReportMetric(float64(multiSiteBatch*b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkMultiSiteSubmit — batches of jobs spread across N sites under a
// simulated WAN RTT, serial (PerSiteInFlight=1, MaxInFlight=1, the old
// single-goroutine GridManager's effective shape) versus the pipelined
// default, with and without one blackholed site in the mix.
func BenchmarkMultiSiteSubmit(b *testing.B) {
	serial := condorg.PipelineOptions{PerSiteInFlight: 1, MaxInFlight: 1}
	pipelined := condorg.PipelineOptions{} // NewAgent fills the defaults (4/64)
	for _, numSites := range []int{1, 4, 16} {
		for _, mode := range []struct {
			name string
			pipe condorg.PipelineOptions
		}{{"serial", serial}, {"pipelined", pipelined}} {
			b.Run(fmt.Sprintf("sites-%d/%s", numSites, mode.name), func(b *testing.B) {
				runMultiSite(b, numSites, mode.pipe, false)
			})
			if numSites > 1 {
				b.Run(fmt.Sprintf("sites-%d/%s/one-faulted", numSites, mode.name), func(b *testing.B) {
					runMultiSite(b, numSites, mode.pipe, true)
				})
			}
		}
	}
	once("MS", func() {
		fmt.Println("\n=== MultiSite: per-site pipeline throughput vs the serial GridManager ===")
		fmt.Println("5ms simulated WAN latency per request; one-faulted adds a blackholed site")
		fmt.Println("with a wedged submission burning ~900ms timeout ladders per attempt")
	})
}
