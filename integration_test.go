package benchmarks

// Full-stack integration tests: every subsystem at once, over real sockets
// with real authentication — the closest this repository gets to the
// deployments of §6.

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"condorg/internal/broker"
	"condorg/internal/condor"
	"condorg/internal/condorg"
	"condorg/internal/credmgr"
	"condorg/internal/dagman"
	"condorg/internal/glidein"
	"condorg/internal/gram"
	"condorg/internal/gridftp"
	"condorg/internal/gsi"
	"condorg/internal/lrm"
	"condorg/internal/mds"
)

func tempDir(t *testing.T) string { return t.TempDir() }

// TestSecureGridEndToEnd builds a fully authenticated three-site grid with
// MDS discovery, an MDS-brokered agent, per-site gridmaps, credential
// delegation, and a MyProxy-backed credential monitor — then runs a
// workload through it and crashes things.
func TestSecureGridEndToEnd(t *testing.T) {
	now := time.Now()
	ca, err := gsi.NewCA("/O=Grid/CN=IGTF-Test-CA", now, 365*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	user, _ := ca.IssueUser("/O=Grid/CN=jfrey", now, 30*24*time.Hour)
	proxy, _ := gsi.NewProxy(user, now, 12*time.Hour)

	// MDS directory (unauthenticated reads, like a public GIIS).
	giis, err := mds.NewServer(mds.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer giis.Close()

	// Three authenticated sites with gridmaps, advertising to MDS.
	var runs atomic.Int64
	var sites []*gram.Site
	for i, name := range []string{"wisc", "anl", "ncsa"} {
		rt := gram.NewFuncRuntime()
		rt.Register("task", func(ctx context.Context, args []string, _ []byte, stdout, _ io.Writer, _ map[string]string) error {
			runs.Add(1)
			d := 20 * time.Millisecond
			if len(args) > 0 {
				if p, err := time.ParseDuration(args[0]); err == nil {
					d = p
				}
			}
			select {
			case <-time.After(d):
				fmt.Fprintln(stdout, "secure task ok")
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		})
		cluster, _ := lrm.NewCluster(lrm.Config{Name: name, Cpus: 4})
		site, err := gram.NewSite(gram.SiteConfig{
			Name:    name,
			Anchor:  ca.Certificate(),
			Gridmap: gsi.NewGridmap(map[string]string{"/O=Grid/CN=jfrey": "jfrey"}),
			Cluster: cluster, Runtime: rt, StateDir: tempDir(t),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer site.Close()
		rep := broker.NewReporter(site, giis.Addr(), "x86_64", float64(i+1), time.Minute)
		rep.Start(50 * time.Millisecond)
		defer rep.Stop()
		sites = append(sites, site)
	}

	// MDS-brokered agent with the user's proxy, delegating to sites.
	b, err := broker.NewMDSBroker(giis.Addr(), "", "")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	agent, err := condorg.NewAgent(condorg.AgentConfig{
		StateDir:   tempDir(t),
		Credential: proxy,
		Selector:   b,
		Probe:      condorg.ProbeOptions{Interval: 40 * time.Millisecond},
		Delegate:   6 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	// MyProxy-backed credential monitor running alongside.
	longProxy, _ := gsi.NewProxy(user, now, 7*24*time.Hour)
	mpSrv, _ := credmgr.NewMyProxyServer(credmgr.MyProxyOptions{})
	defer mpSrv.Close()
	mpCli := credmgr.NewMyProxyClient(mpSrv.Addr(), nil, nil)
	defer mpCli.Close()
	if err := mpCli.Store("jfrey", "pw", longProxy); err != nil {
		t.Fatal(err)
	}
	mon := credmgr.NewMonitor(credmgr.MonitorConfig{
		Agent: agent, Owner: "jfrey",
		WarnThreshold: time.Hour, Interval: 50 * time.Millisecond,
		MyProxy: mpCli, MyProxyUser: "jfrey", MyProxyPass: "pw",
	})
	mon.Start()
	defer mon.Stop()

	// Submit a batch; everything flows through GSI + MDS + GRAM.
	var ids []string
	for i := 0; i < 9; i++ {
		id, err := agent.Submit(condorg.SubmitRequest{
			Owner: "jfrey", Executable: gram.Program("task"),
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := agent.WaitAll(ctx); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		info, _ := agent.Status(id)
		if info.State != condorg.Completed {
			t.Fatalf("job %s: %v (%s)", id, info.State, info.Error)
		}
	}
	if runs.Load() != 9 {
		t.Fatalf("executions = %d, want exactly 9", runs.Load())
	}

	// A long job survives a site machine crash mid-flight, under auth.
	id, _ := agent.Submit(condorg.SubmitRequest{
		Owner: "jfrey", Executable: gram.Program("task"), Args: []string{"300ms"},
	})
	deadline := time.Now().Add(10 * time.Second)
	var victim *gram.Site
	for victim == nil && time.Now().Before(deadline) {
		info, _ := agent.Status(id)
		if info.State == condorg.Running {
			for _, s := range sites {
				if s.GatekeeperAddr() == info.Site {
					victim = s
				}
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if victim == nil {
		t.Fatal("job never started")
	}
	victim.CrashGatekeeperMachine()
	time.Sleep(100 * time.Millisecond)
	if err := victim.RestartGatekeeperMachine(); err != nil {
		t.Fatal(err)
	}
	info, err := agent.Wait(ctx, id)
	if err != nil || info.State != condorg.Completed {
		t.Fatalf("crash-spanning job: %v err=%v (%s)", info.State, err, info.Error)
	}
	if runs.Load() != 10 {
		t.Fatalf("executions = %d, want exactly 10 (exactly-once across crash)", runs.Load())
	}
}

// TestGlideInDagPipeline combines DAGMan, the GlideIn personal pool, and
// GridFTP: a fan-out/fan-in DAG whose nodes execute on glided-in slots and
// whose fan-in stage verifies data shipped through GridFTP.
func TestGlideInDagPipeline(t *testing.T) {
	coll, err := condor.NewCollector(condor.CollectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()

	repo, _ := gridftp.NewServer(tempDir(t), gridftp.ServerOptions{})
	defer repo.Close()
	ftp := gridftp.NewClient(nil, nil, 2)
	defer ftp.Close()
	ftp.Put(repo.Addr(), glidein.StartdBlob, []byte("daemon payload"))

	jobRT := condor.NewRuntime()
	jobRT.Register("produce", func(_ context.Context, jc *condor.JobContext) error {
		// Produce a data file and ship it to the repository directly
		// from the execution slot.
		w := gridftp.NewClient(nil, nil, 2)
		defer w.Close()
		data := []byte(strings.Repeat(jc.Args[1]+"\n", 100))
		return w.Put(jc.Args[0], "data/"+jc.Args[1], data)
	})

	var sites []*gram.Site
	siteAddrs := map[string]string{}
	for i := 0; i < 2; i++ {
		cluster, _ := lrm.NewCluster(lrm.Config{Name: fmt.Sprintf("s%d", i), Cpus: 3})
		rt := gram.NewFuncRuntime()
		glidein.InstallBootstrap(rt, jobRT, nil, nil, nil)
		site, err := gram.NewSite(gram.SiteConfig{
			Name: fmt.Sprintf("s%d", i), Cluster: cluster, Runtime: rt, StateDir: tempDir(t),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer site.Close()
		sites = append(sites, site)
		siteAddrs[fmt.Sprintf("s%d", i)] = site.GatekeeperAddr()
	}

	schedd, _ := condor.NewSchedd(condor.ScheddConfig{Name: "dag", SpoolDir: tempDir(t)})
	defer schedd.Close()
	neg := condor.NewNegotiator(coll.Addr(), nil, nil, schedd)
	defer neg.Stop()
	neg.Start(15 * time.Millisecond)

	factory := glidein.NewFactory(glidein.FactoryConfig{
		CollectorAddr:     coll.Addr(),
		RepoAddr:          repo.Addr(),
		Lease:             time.Minute,
		IdleTimeout:       30 * time.Second,
		AdvertiseInterval: 15 * time.Millisecond,
	})
	defer factory.Close()
	if _, err := factory.Flood(siteAddrs, 2); err != nil {
		t.Fatal(err)
	}

	// The DAG: 4 producers fan into a verify node with a POST script.
	var dagText strings.Builder
	for i := 0; i < 4; i++ {
		fmt.Fprintf(&dagText, "JOB p%d produce part%d\n", i, i)
	}
	dagText.WriteString("JOB verify verify-all\nSCRIPT POST verify recount\n")
	for i := 0; i < 4; i++ {
		fmt.Fprintf(&dagText, "PARENT p%d CHILD verify\n", i)
	}
	dag, err := dagman.Parse(dagText.String())
	if err != nil {
		t.Fatal(err)
	}

	postRan := atomic.Bool{}
	submit := func(ctx context.Context, node *dagman.Node) error {
		fields := strings.Fields(node.Spec)
		switch fields[0] {
		case "produce":
			id, err := schedd.Submit(condor.JobAd("dag", "produce", repo.Addr(), fields[1]))
			if err != nil {
				return err
			}
			deadline := time.Now().Add(20 * time.Second)
			for {
				j, _ := schedd.Job(id)
				if j.State == condor.PoolCompleted {
					return nil
				}
				if j.State.Terminal() {
					return fmt.Errorf("%s: %s", node.Name, j.Err)
				}
				if time.Now().After(deadline) {
					return fmt.Errorf("%s: timeout in %v", node.Name, j.State)
				}
				select {
				case <-ctx.Done():
					return ctx.Err()
				case <-time.After(5 * time.Millisecond):
				}
			}
		case "verify-all":
			paths, err := ftp.List(repo.Addr(), "data/")
			if err != nil {
				return err
			}
			if len(paths) != 4 {
				return fmt.Errorf("repository has %d parts, want 4", len(paths))
			}
			return nil
		}
		return fmt.Errorf("unknown node %q", node.Spec)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := dagman.Execute(ctx, dag, dagman.ExecConfig{
		Submit:    submit,
		MaxActive: 3,
		RunScript: func(_ context.Context, _ *dagman.Node, script string, jobErr error) error {
			if script == "recount" && jobErr == nil {
				postRan.Store(true)
			}
			return jobErr
		},
	})
	if err != nil || !res.Succeeded() {
		t.Fatalf("pipeline: err=%v failed=%v", err, res.Failed)
	}
	if !postRan.Load() {
		t.Fatal("POST script never ran")
	}
	// Every part really is in the repository with intact checksums.
	for i := 0; i < 4; i++ {
		data, err := ftp.Get(repo.Addr(), fmt.Sprintf("data/part%d", i))
		if err != nil || !strings.Contains(string(data), fmt.Sprintf("part%d", i)) {
			t.Fatalf("part%d: %v", i, err)
		}
	}
}
