package benchmarks

// Multi-user stress, portal-style: THREE users share ONE agent behind
// the HTTP gateway. Each user authenticates to the gateway with a bearer
// token; the gateway holds a GSI credential per user, so the agent's
// control endpoint derives every job's owner from the wire session —
// request bodies never assert identity. The invariants under a
// concurrent mix of successes and failures: every submission resolves to
// exactly the right terminal state, programs execute exactly once, and
// no op ever leaks another owner's jobs.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"condorg/internal/condorg"
	"condorg/internal/gateway"
	"condorg/internal/gram"
	"condorg/internal/gsi"
	"condorg/internal/lrm"
)

// gwClient is a minimal HTTP client for one gateway user.
type gwClient struct {
	t     *testing.T
	base  string
	token string
}

// do runs one request and decodes the JSON response into out (ignored
// when nil), returning the HTTP status.
func (c *gwClient) do(method, path string, body, out any) int {
	c.t.Helper()
	var buf io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		buf = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, c.base+path, buf)
	if err != nil {
		c.t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+c.token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			c.t.Fatalf("%s %s: decode: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

func TestThreeUsersSharedGrid(t *testing.T) {
	var runs atomic.Int64
	rt := gram.NewFuncRuntime()
	rt.Register("ok", func(_ context.Context, _ []string, _ []byte, stdout, _ io.Writer, _ map[string]string) error {
		runs.Add(1)
		fmt.Fprintln(stdout, "ok")
		return nil
	})
	rt.Register("bad", func(context.Context, []string, []byte, io.Writer, io.Writer, map[string]string) error {
		runs.Add(1)
		return errors.New("deliberate failure")
	})

	var gks []string
	for i := 0; i < 3; i++ {
		cluster, err := lrm.NewCluster(lrm.Config{Name: fmt.Sprintf("s%d", i), Cpus: 4, Policy: lrm.FairShare{}})
		if err != nil {
			t.Fatal(err)
		}
		site, err := gram.NewSite(gram.SiteConfig{
			Name: fmt.Sprintf("s%d", i), Cluster: cluster, Runtime: rt, StateDir: t.TempDir(),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer site.Close()
		gks = append(gks, site.GatekeeperAddr())
	}

	// ONE shared agent for all users, its control endpoint authenticated
	// against a test CA: the owner of every op comes from the session.
	agent, err := condorg.NewAgent(condorg.AgentConfig{
		StateDir: t.TempDir(),
		Selector: &condorg.RoundRobinSelector{Sites: gks},
		Probe:    condorg.ProbeOptions{Interval: 40 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	now := time.Now()
	ca, err := gsi.NewCA("portal-ca", now, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := condorg.NewControlServerConfig(agent, "127.0.0.1:0", condorg.ControlConfig{
		Anchor: ca.Certificate(),
		OwnerOf: func(subject string) string {
			// Subjects are "/C=test/U=userN"; the owner is the last element.
			return subject[len("/C=test/U="):]
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	users := make(map[string]gateway.User)
	tokens := make([]string, 3)
	for u := 0; u < 3; u++ {
		cred, err := ca.IssueUser(fmt.Sprintf("/C=test/U=user%d", u), now, time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		tokens[u] = fmt.Sprintf("token-%d", u)
		users[tokens[u]] = gateway.User{Owner: fmt.Sprintf("user%d", u), Credential: cred}
	}
	gw, err := gateway.New("127.0.0.1:0", gateway.Config{Agent: ctl.Addr(), Users: users})
	if err != nil {
		t.Fatal(err)
	}
	go gw.Serve()
	defer gw.Close()

	type submission struct {
		user int
		id   string
		want condorg.JobState
	}
	var mu sync.Mutex
	var subs []submission
	var wg sync.WaitGroup
	for u := 0; u < 3; u++ {
		u := u
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli := &gwClient{t: t, base: "http://" + gw.Addr(), token: tokens[u]}
			for j := 0; j < 8; j++ {
				prog, want := "ok", condorg.Completed
				if j%4 == 3 {
					prog, want = "bad", condorg.Failed
				}
				var resp gateway.SubmitResponse
				if code := cli.do("POST", "/v1/jobs", gateway.SubmitRequest{Program: prog}, &resp); code != http.StatusOK {
					t.Errorf("user%d submit: HTTP %d", u, code)
					return
				}
				mu.Lock()
				subs = append(subs, submission{u, resp.ID, want})
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for _, s := range subs {
		cli := &gwClient{t: t, base: "http://" + gw.Addr(), token: tokens[s.user]}
		var info condorg.JobInfo
		deadline := time.Now().Add(30 * time.Second)
		for {
			if code := cli.do("GET", "/v1/jobs/"+s.id+"/wait?timeout=5s", nil, &info); code != http.StatusOK {
				t.Fatalf("user%d wait %s: HTTP %d", s.user, s.id, code)
			}
			if info.State.Terminal() {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s never terminal (last %v)", s.id, info.State)
			}
		}
		if info.State != s.want {
			t.Fatalf("job %s: %v, want %v (%s)", s.id, info.State, s.want, info.Error)
		}
		if info.Owner != fmt.Sprintf("user%d", s.user) {
			t.Fatalf("job %s owned by %q, want user%d", s.id, info.Owner, s.user)
		}
	}
	if got := runs.Load(); got != 24 {
		t.Fatalf("executions = %d, want exactly 24", got)
	}

	// Zero cross-owner leaks: each user's listing shows exactly its own
	// 8 jobs, and another owner's job answers 404 on every per-job op —
	// present or not, indistinguishable.
	byUser := make(map[int][]string)
	for _, s := range subs {
		byUser[s.user] = append(byUser[s.user], s.id)
	}
	for u := 0; u < 3; u++ {
		cli := &gwClient{t: t, base: "http://" + gw.Addr(), token: tokens[u]}
		var q gateway.QueueResponse
		if code := cli.do("GET", "/v1/jobs", nil, &q); code != http.StatusOK {
			t.Fatalf("user%d queue: HTTP %d", u, code)
		}
		if len(q.Jobs) != 8 {
			t.Fatalf("user%d sees %d jobs, want exactly its own 8", u, len(q.Jobs))
		}
		for _, j := range q.Jobs {
			if j.Owner != fmt.Sprintf("user%d", u) {
				t.Fatalf("user%d's listing leaked job %s of %q", u, j.ID, j.Owner)
			}
		}
		foreign := byUser[(u+1)%3][0]
		for _, probe := range []struct{ method, path string }{
			{"GET", "/v1/jobs/" + foreign},
			{"GET", "/v1/jobs/" + foreign + "/log"},
			{"GET", "/v1/jobs/" + foreign + "/stdout"},
			{"GET", "/v1/jobs/" + foreign + "/trace"},
			{"DELETE", "/v1/jobs/" + foreign},
			{"POST", "/v1/jobs/" + foreign + "/hold"},
		} {
			if code := cli.do(probe.method, probe.path, nil, nil); code != http.StatusNotFound {
				t.Fatalf("user%d %s %s on foreign job: HTTP %d, want 404", u, probe.method, probe.path, code)
			}
		}
	}
}
