package benchmarks

// Multi-user stress: three users' agents share three sites, with a
// concurrent mix of successes, failures, cancellations, and holds. The
// invariant under all of it: every submission resolves to exactly the
// right terminal state and programs execute exactly once.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"condorg/internal/condorg"
	"condorg/internal/gram"
	"condorg/internal/lrm"
)

func TestThreeUsersSharedGrid(t *testing.T) {
	var runs atomic.Int64
	rt := gram.NewFuncRuntime()
	rt.Register("ok", func(_ context.Context, _ []string, _ []byte, stdout, _ io.Writer, _ map[string]string) error {
		runs.Add(1)
		fmt.Fprintln(stdout, "ok")
		return nil
	})
	rt.Register("bad", func(context.Context, []string, []byte, io.Writer, io.Writer, map[string]string) error {
		runs.Add(1)
		return errors.New("deliberate failure")
	})

	var gks []string
	for i := 0; i < 3; i++ {
		cluster, err := lrm.NewCluster(lrm.Config{Name: fmt.Sprintf("s%d", i), Cpus: 4, Policy: lrm.FairShare{}})
		if err != nil {
			t.Fatal(err)
		}
		site, err := gram.NewSite(gram.SiteConfig{
			Name: fmt.Sprintf("s%d", i), Cluster: cluster, Runtime: rt, StateDir: t.TempDir(),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer site.Close()
		gks = append(gks, site.GatekeeperAddr())
	}

	// One agent per user, as deployed in practice (a personal agent).
	type submission struct {
		agent *condorg.Agent
		id    string
		want  condorg.JobState
	}
	var mu sync.Mutex
	var subs []submission
	var wg sync.WaitGroup
	for u := 0; u < 3; u++ {
		u := u
		agent, err := condorg.NewAgent(condorg.AgentConfig{
			StateDir: t.TempDir(),
			Selector: &condorg.RoundRobinSelector{Sites: gks},
			Probe:    condorg.ProbeOptions{Interval: 40 * time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer agent.Close()
		wg.Add(1)
		go func() {
			defer wg.Done()
			owner := fmt.Sprintf("user%d", u)
			for j := 0; j < 8; j++ {
				prog, want := "ok", condorg.Completed
				if j%4 == 3 {
					prog, want = "bad", condorg.Failed
				}
				id, err := agent.Submit(condorg.SubmitRequest{
					Owner: owner, Executable: gram.Program(prog),
				})
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				subs = append(subs, submission{agent, id, want})
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, s := range subs {
		info, err := s.agent.Wait(ctx, s.id)
		if err != nil {
			t.Fatal(err)
		}
		if info.State != s.want {
			t.Fatalf("job %s: %v, want %v (%s)", s.id, info.State, s.want, info.Error)
		}
	}
	if got := runs.Load(); got != 24 {
		t.Fatalf("executions = %d, want exactly 24", got)
	}
}
