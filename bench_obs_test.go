package benchmarks

// Observability overhead guard: the same submit burst with the metric
// registry enabled and disabled. The two numbers must stay within noise
// of each other — instrumentation on the persist hot path is a couple of
// atomic adds plus one mutexed ring write per histogram, and this bench
// exists so a regression (say, a lock added to a counter) shows up as a
// gap between the sub-benchmarks. See EXPERIMENTS.md for recorded runs.

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"condorg/internal/condorg"
	"condorg/internal/gram"
)

// BenchmarkSubmitObsOverhead runs the 8-worker submit burst of
// BenchmarkSubmitBurst three ways: everything on (the default), just the
// metric registry off (the nil-registry no-op path — this pair is the
// within-noise guard), and metrics plus tracing off (tracing costs real
// work: each trace event rides the journaled job record).
func BenchmarkSubmitObsOverhead(b *testing.B) {
	for _, mode := range []struct {
		name string
		obs  condorg.ObsOptions
	}{
		{"enabled", condorg.ObsOptions{}},
		{"no-metrics", condorg.ObsOptions{Disabled: true}},
		{"bare", condorg.ObsOptions{Disabled: true, TraceCap: -1}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var runs atomic.Int64
			site := benchSite(b, "obs", &runs, "", "")
			agent, err := condorg.NewAgent(condorg.AgentConfig{
				StateDir: mustTempDir(b, "agent"),
				Selector: condorg.StaticSelector(site.GatekeeperAddr()),
				Probe:    condorg.ProbeOptions{Interval: 30 * time.Millisecond},
				Obs:      mode.obs,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(agent.Close)
			const workers = 8
			b.ResetTimer()
			var wg sync.WaitGroup
			jobs := make(chan int)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for range jobs {
						if _, err := agent.Submit(condorg.SubmitRequest{
							Owner: "bench", Executable: gram.Program("noop"),
						}); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			for i := 0; i < b.N; i++ {
				jobs <- i
			}
			close(jobs)
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			defer cancel()
			if err := agent.WaitAll(ctx); err != nil {
				b.Fatal(err)
			}
		})
	}
}
