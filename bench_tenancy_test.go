package benchmarks

// Tenant isolation at 1k concurrent owners: one shared agent, per-owner
// quotas + token-bucket admission, owner-sharded journal partitions, and
// fair-share dispatch. The measured claim (EXPERIMENTS.md "Multi-tenant
// isolation"): a hostile owner saturating its quota through the control
// endpoint — a tight submit loop with oversized payloads, the realistic
// attack surface — degrades a well-behaved owner's submit→done p99 by at
// most 2× against the no-hostile baseline, and every attack attempt is
// answered with a typed quota rejection, never an internal error.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"condorg/internal/condorg"
	"condorg/internal/gram"
)

const (
	isolationOwners = 1000 // well-behaved owners per phase
	hostileThreads  = 4    // concurrent goroutines of the hostile owner
)

// isolationAgent builds the shared multi-tenant agent: 4 sites, quotas
// tight enough that the hostile loop saturates them instantly.
func isolationAgent(b *testing.B, runs *atomic.Int64) *condorg.Agent {
	addrs := make([]string, 4)
	for i := range addrs {
		site := benchSite(b, fmt.Sprintf("iso%d", i), runs, "", "")
		addrs[i] = site.GatekeeperAddr()
	}
	agent, err := condorg.NewAgent(condorg.AgentConfig{
		StateDir: mustTempDir(b, "iso-agent"),
		Selector: &condorg.RoundRobinSelector{Sites: addrs},
		Tenancy: condorg.TenancyOptions{
			MaxQueuedPerOwner: 8,
			SubmitRate:        50,
			SubmitBurst:       8,
			MaxPayloadBytes:   64 << 10,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(agent.Close)
	return agent
}

// submitDonePhase runs one phase: isolationOwners owners concurrently
// submit one job each and wait it to Completed, returning the sorted
// per-owner submit→done latencies.
func submitDonePhase(b *testing.B, agent *condorg.Agent, phase string) []time.Duration {
	lat := make([]time.Duration, isolationOwners)
	var wg sync.WaitGroup
	var failed atomic.Int64
	for o := 0; o < isolationOwners; o++ {
		o := o
		wg.Add(1)
		go func() {
			defer wg.Done()
			owner := fmt.Sprintf("%s-owner%04d", phase, o)
			start := time.Now()
			id, err := agent.Submit(condorg.SubmitRequest{
				Owner: owner, Executable: gram.Program("noop"),
			})
			if err != nil {
				failed.Add(1)
				b.Errorf("%s submit: %v", owner, err)
				return
			}
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			defer cancel()
			info, err := agent.Wait(ctx, id)
			if err != nil || info.State != condorg.Completed {
				failed.Add(1)
				b.Errorf("%s job %s: state %v err %v", owner, id, info.State, err)
				return
			}
			lat[o] = time.Since(start)
		}()
	}
	wg.Wait()
	if failed.Load() > 0 {
		b.Fatalf("%s phase: %d well-behaved owners failed", phase, failed.Load())
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat
}

func p99(sorted []time.Duration) time.Duration {
	return sorted[len(sorted)*99/100]
}

// BenchmarkTenantIsolation: baseline phase (1k owners alone), then
// hostile phase (same load plus a hostile owner hammering the control
// endpoint from hostileThreads connections with over-quota bursts and
// oversized payloads). Reports both p99s and their ratio; fails above 2×.
func BenchmarkTenantIsolation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var runs atomic.Int64
		agent := isolationAgent(b, &runs)
		ctl, err := condorg.NewControlServer(agent)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { ctl.Close() })

		base := submitDonePhase(b, agent, "base")

		stop := make(chan struct{})
		var hostileWG sync.WaitGroup
		var rejected, admitted atomic.Int64
		huge := bytes.Repeat([]byte("x"), 256<<10) // 4× the payload cap
		for h := 0; h < hostileThreads; h++ {
			cli := condorg.NewControlClient(ctl.Addr())
			b.Cleanup(func() { cli.Close() })
			hostileWG.Add(1)
			go func() {
				defer hostileWG.Done()
				for n := 0; ; n++ {
					select {
					case <-stop:
						return
					default:
					}
					// Admitted jobs linger so the hostile quota stays
					// saturated; every 8th attempt carries an oversized
					// payload. Each attempt draws a typed rejection from
					// one of the gates (payload, queued, or rate).
					req := condorg.CtlSubmit{Owner: "hostile", Program: "linger", Args: []string{"1s"}}
					if n%8 == 0 {
						req.Stdin = huge
					}
					_, err := cli.Submit(req)
					var ce *condorg.CtlError
					switch {
					case err == nil:
						admitted.Add(1)
					case errors.As(err, &ce) &&
						(ce.Code == condorg.CtlCodeQuotaExceeded || ce.Code == condorg.CtlCodeRateLimited):
						rejected.Add(1)
					default:
						b.Errorf("hostile submit: unexpected error %v", err)
						return
					}
					// Pace attempts by an emulated WAN RTT, the same trick
					// the multi-site benchmark uses: the attacker's client
					// runs in-process here, and an unpaced loop on a
					// single-core CI host measures the attacker's OWN
					// marshalling stealing the agent's only core — cost
					// that lands on the attacker's machine in a real
					// deployment.
					select {
					case <-stop:
						return
					case <-time.After(5 * time.Millisecond):
					}
				}
			}()
		}
		attacked := submitDonePhase(b, agent, "attk")
		close(stop)
		hostileWG.Wait()

		basP99, atkP99 := p99(base), p99(attacked)
		// Guard the ratio against loopback noise: below a 25ms floor the
		// p99 is dominated by scheduler jitter, not agent behaviour.
		floor := 25 * time.Millisecond
		denom := max(basP99, floor)
		ratio := float64(max(atkP99, floor)) / float64(denom)
		b.ReportMetric(float64(basP99.Microseconds()), "baseline-p99-µs")
		b.ReportMetric(float64(atkP99.Microseconds()), "hostile-p99-µs")
		b.ReportMetric(ratio, "p99-ratio")
		b.ReportMetric(float64(rejected.Load()), "hostile-rejects")
		b.Logf("baseline p99 %v, under attack %v (ratio %.2f); hostile: %d admitted, %d typed rejections",
			basP99, atkP99, ratio, admitted.Load(), rejected.Load())
		if ratio > 2.0 {
			b.Fatalf("hostile owner degraded well-behaved p99 %.2f× (>2×): %v -> %v", ratio, basP99, atkP99)
		}
		if rejected.Load() == 0 {
			b.Fatal("hostile loop was never quota-rejected; attack did not saturate")
		}
	}
}
