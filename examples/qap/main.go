// QAP example — §6.1 in miniature. The record-setting Condor-G computation
// solved a large Quadratic Assignment Problem with a Master-Worker branch
// and bound whose bounding step solves Linear Assignment Problems, on a
// personal pool of GlideIn daemons spanning many sites. Here: GlideIn
// pilots flood three GRAM sites, fetch their daemon payload from a GridFTP
// repository, join the user's personal Condor pool, and matchmade worker
// jobs pull B&B subtrees from an MW master — sharing the incumbent bound —
// until the instance is solved exactly.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"time"

	"condorg/internal/condor"
	"condorg/internal/glidein"
	"condorg/internal/gram"
	"condorg/internal/gridftp"
	"condorg/internal/lrm"
	"condorg/internal/mw"
)

type qapTask struct {
	Prefix []int `json:"prefix"`
}

type sharedState struct {
	Incumbent float64 `json:"incumbent"`
}

func main() {
	// --- The problem: a random QAP instance (facility layout). ---
	rng := rand.New(rand.NewSource(2001))
	n := 8
	q := &mw.QAP{Flow: randMatrix(rng, n), Dist: randMatrix(rng, n)}
	fmt.Printf("QAP instance: %d facilities, %d locations (%d leaves in the full tree)\n",
		n, n, factorial(n))

	// --- The MW master with one task per root subtree. ---
	master, err := mw.NewMaster(mw.MasterOptions{Lease: 30 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	defer master.Close()
	master.SetShared(sharedState{Incumbent: math.Inf(1)})
	for _, prefix := range q.RootTasks() {
		master.AddTask(qapTask{Prefix: prefix})
	}
	fmt.Printf("master at %s with %d subtree tasks\n", master.Addr(), n)

	// --- The user's personal pool. ---
	coll, err := condor.NewCollector(condor.CollectorOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer coll.Close()
	jobRT := condor.NewRuntime()
	jobRT.Register("mw-worker", func(ctx context.Context, jc *condor.JobContext) error {
		masterAddr := jc.Args[0]
		done, err := mw.RunWorker(ctx, masterAddr, jc.JobAd.EvalString("WorkerName", "worker"),
			func(_ context.Context, task mw.Task, shared json.RawMessage) (any, any, error) {
				var in qapTask
				if err := json.Unmarshal(task.Payload, &in); err != nil {
					return nil, nil, err
				}
				incumbent := math.Inf(1)
				var s sharedState
				if shared != nil && json.Unmarshal(shared, &s) == nil && s.Incumbent > 0 {
					incumbent = s.Incumbent
				}
				sol := q.SolveSubtree(in.Prefix, incumbent)
				var update any
				if sol.Perm != nil && sol.Cost < incumbent {
					update = sharedState{Incumbent: sol.Cost}
				}
				return sol, update, nil
			})
		fmt.Fprintf(jc.Stdout, "worker finished %d subtree tasks\n", done)
		return err
	})
	schedd, err := condor.NewSchedd(condor.ScheddConfig{Name: "mathematician", SpoolDir: mustTemp("schedd")})
	if err != nil {
		log.Fatal(err)
	}
	defer schedd.Close()
	neg := condor.NewNegotiator(coll.Addr(), nil, nil, schedd)
	defer neg.Stop()
	neg.Start(25 * time.Millisecond)

	// --- The Grid: three sites and the binary repository. ---
	repo, err := gridftp.NewServer(mustTemp("repo"), gridftp.ServerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer repo.Close()
	ftp := gridftp.NewClient(nil, nil, 2)
	if err := ftp.Put(repo.Addr(), glidein.StartdBlob, []byte("condor daemon payload v6.3.1")); err != nil {
		log.Fatal(err)
	}
	ftp.Close()

	sites := map[string]string{}
	for _, name := range []string{"wisc", "anl", "ncsa"} {
		cluster, err := lrm.NewCluster(lrm.Config{Name: name, Cpus: 2})
		if err != nil {
			log.Fatal(err)
		}
		siteRT := gram.NewFuncRuntime()
		glidein.InstallBootstrap(siteRT, jobRT, nil, nil, nil)
		site, err := gram.NewSite(gram.SiteConfig{
			Name: name, Cluster: cluster, Runtime: siteRT, StateDir: mustTemp("site-" + name),
		})
		if err != nil {
			log.Fatal(err)
		}
		defer site.Close()
		sites[name] = site.GatekeeperAddr()
		fmt.Printf("site %-5s gatekeeper %s (2 CPUs)\n", name, site.GatekeeperAddr())
	}

	// --- Flood pilots; the dynamic personal pool assembles itself. ---
	factory := glidein.NewFactory(glidein.FactoryConfig{
		CollectorAddr:     coll.Addr(),
		RepoAddr:          repo.Addr(),
		Lease:             2 * time.Minute,
		IdleTimeout:       2 * time.Second,
		AdvertiseInterval: 25 * time.Millisecond,
	})
	defer factory.Close()
	pilots, err := factory.Flood(sites, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flooded %d GlideIn pilots across %d sites\n", len(pilots), len(sites))

	// --- Worker jobs matchmade onto the glided-in slots. ---
	for i := 0; i < 6; i++ {
		ad := condor.JobAd("mathematician", "mw-worker", master.Addr())
		ad.SetString("WorkerName", fmt.Sprintf("worker-%d", i))
		if _, err := schedd.Submit(ad); err != nil {
			log.Fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := master.Wait(ctx); err != nil {
		log.Fatal("master: ", err)
	}

	// --- Results. ---
	best := mw.QAPSolution{Cost: math.Inf(1)}
	var totalLAPs, totalNodes int64
	for _, r := range master.Results() {
		var sol mw.QAPSolution
		json.Unmarshal(r.Payload, &sol)
		totalLAPs += sol.LAPsSolved
		totalNodes += sol.NodesSeen
		if sol.Perm != nil && sol.Cost < best.Cost {
			best = sol
		}
	}
	fmt.Printf("\noptimal assignment: %v  cost %.0f\n", best.Perm, best.Cost)
	fmt.Printf("search effort: %d B&B nodes, %d LAPs solved (of %d leaves without pruning)\n",
		totalNodes, totalLAPs, factorial(n))
	fmt.Println("tasks per worker:")
	for w, c := range master.WorkerStats() {
		fmt.Printf("  %-10s %d\n", w, c)
	}
	if err := schedd.WaitAll(ctx); err != nil {
		log.Fatal(err)
	}
	_, _, done := schedd.Counts()
	fmt.Printf("pool jobs completed: %d; pilots started: %d\n", done, len(pilots))
}

func randMatrix(rng *rand.Rand, n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			if i != j {
				m[i][j] = float64(rng.Intn(10))
			}
		}
	}
	return m
}

func factorial(n int) int64 {
	f := int64(1)
	for i := 2; i <= n; i++ {
		f *= int64(i)
	}
	return f
}

func mustTemp(prefix string) string {
	dir, err := os.MkdirTemp("", "qap-"+prefix+"-*")
	if err != nil {
		log.Fatal(err)
	}
	return dir
}
