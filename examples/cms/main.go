// CMS example — the §6.2 case study: "A two-node Directed Acyclic Graph of
// jobs submitted to a Condor-G agent at Caltech triggers [N] simulation
// jobs on the Condor pool at the University of Wisconsin. Each of these
// jobs generates 500 events. The execution of these jobs is also controlled
// by a DAG that makes sure that local disk buffers do not overflow and that
// all events produced are transferred via GridFTP to a data repository at
// NCSA. Once all simulation jobs terminate and all data is shipped to the
// repository, the agent submits a subsequent reconstruction job to the PBS
// system that manages the reconstruction cluster at NCSA."
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"condorg/internal/condorg"
	"condorg/internal/dagman"
	"condorg/internal/gram"
	"condorg/internal/gridftp"
	"condorg/internal/lrm"
)

const (
	simJobs      = 10 // scaled from the paper's 100
	eventsPerJob = 500
	bufferLimit  = 3 // concurrent sim jobs (the disk-buffer guard)
)

// cmsRuntime registers the physics programs.
func cmsRuntime() *gram.FuncRuntime {
	rt := gram.NewFuncRuntime()
	// cmsim generates events: one line per event.
	rt.Register("cmsim", func(ctx context.Context, args []string, _ []byte, stdout, _ io.Writer, _ map[string]string) error {
		run, _ := strconv.Atoi(args[0])
		n, _ := strconv.Atoi(args[1])
		rng := rand.New(rand.NewSource(int64(run)))
		for i := 0; i < n; i++ {
			if i%100 == 0 && ctx.Err() != nil {
				return ctx.Err()
			}
			fmt.Fprintf(stdout, "EVT run=%03d id=%05d E=%8.3fGeV tracks=%d\n",
				run, i, 20+rng.Float64()*200, 2+rng.Intn(40))
		}
		return nil
	})
	// reconstruct consumes staged event data and emits a summary.
	rt.Register("reconstruct", func(_ context.Context, _ []string, stdin []byte, stdout, _ io.Writer, _ map[string]string) error {
		events := 0
		var energy float64
		for _, line := range strings.Split(string(stdin), "\n") {
			if !strings.HasPrefix(line, "EVT ") {
				continue
			}
			events++
			if i := strings.Index(line, "E="); i >= 0 {
				var e float64
				fmt.Sscanf(line[i+2:], "%f", &e)
				energy += e
			}
		}
		fmt.Fprintf(stdout, "reconstructed %d events, total energy %.1f GeV\n", events, energy)
		return nil
	})
	return rt
}

func main() {
	start := time.Now()

	// --- Wisconsin simulation pool and the NCSA reconstruction cluster. ---
	mkSite := func(name string, cpus int, policy lrm.Policy) *gram.Site {
		cluster, err := lrm.NewCluster(lrm.Config{Name: name, Cpus: cpus, Policy: policy})
		if err != nil {
			log.Fatal(err)
		}
		site, err := gram.NewSite(gram.SiteConfig{
			Name: name, Cluster: cluster, Runtime: cmsRuntime(), StateDir: mustTemp(name),
		})
		if err != nil {
			log.Fatal(err)
		}
		return site
	}
	wisc := mkSite("uw-pool", 8, lrm.FIFO{})
	defer wisc.Close()
	ncsa := mkSite("ncsa-pbs", 4, lrm.FIFO{})
	defer ncsa.Close()

	// --- The NCSA data repository (GridFTP). ---
	repo, err := gridftp.NewServer(mustTemp("repo"), gridftp.ServerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer repo.Close()
	ftp := gridftp.NewClient(nil, nil, 4)
	defer ftp.Close()

	// --- The Caltech agent. ---
	agent, err := condorg.NewAgent(condorg.AgentConfig{
		StateDir: mustTemp("agent"),
		Selector: condorg.StaticSelector(wisc.GatekeeperAddr()),
		Probe:    condorg.ProbeOptions{Interval: 100 * time.Millisecond},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer agent.Close()
	fmt.Printf("agent up; repository at %s\n", repo.Addr())

	// --- Build the production DAG. ---
	var dagText strings.Builder
	for i := 0; i < simJobs; i++ {
		fmt.Fprintf(&dagText, "JOB sim%d cmsim %d %d\n", i, i, eventsPerJob)
		fmt.Fprintf(&dagText, "JOB transfer%d gridftp %d\n", i, i)
	}
	dagText.WriteString("JOB reco reconstruct\nRETRY reco 1\n")
	for i := 0; i < simJobs; i++ {
		fmt.Fprintf(&dagText, "PARENT sim%d CHILD transfer%d\n", i, i)
		fmt.Fprintf(&dagText, "PARENT transfer%d CHILD reco\n", i)
	}
	dag, err := dagman.Parse(dagText.String())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DAG: %d nodes (%d simulation, %d transfer, 1 reconstruction), throttle %d\n",
		len(dag.Nodes), simJobs, simJobs, bufferLimit)

	// --- Node execution: sim and reco are Condor-G jobs; transfers are
	//     GridFTP movements of each sim's event data to the repository. ---
	submit := func(ctx context.Context, node *dagman.Node) error {
		fields := strings.Fields(node.Spec)
		switch fields[0] {
		case "cmsim":
			id, err := agent.Submit(condorg.SubmitRequest{
				Owner:      "cms",
				Executable: gram.Program("cmsim"),
				Args:       fields[1:],
			})
			if err != nil {
				return err
			}
			info, err := agent.Wait(ctx, id)
			if err != nil {
				return err
			}
			if info.State != condorg.Completed {
				return fmt.Errorf("%s: %s", node.Name, info.Error)
			}
			// Remember which agent job produced this node's events.
			setNodeJob(node.Name, id)
			return nil
		case "gridftp":
			// The sim job is done, but its stdout is still streaming
			// back through GASS; wait for the final event record
			// before shipping the file.
			simName := "sim" + fields[1]
			finalRecord := fmt.Sprintf("id=%05d", eventsPerJob-1)
			var data []byte
			for {
				var err error
				data, err = agent.Stdout(getNodeJob(simName))
				if err != nil {
					return err
				}
				if strings.Contains(string(data), finalRecord) {
					break
				}
				select {
				case <-ctx.Done():
					return ctx.Err()
				case <-time.After(10 * time.Millisecond):
				}
			}
			return ftp.Put(repo.Addr(), "cms/run"+fields[1]+".evt", data)
		case "reconstruct":
			// Assemble all event files from the repository as stdin.
			paths, err := ftp.List(repo.Addr(), "cms/")
			if err != nil {
				return err
			}
			var all []byte
			for _, p := range paths {
				data, err := ftp.Get(repo.Addr(), p)
				if err != nil {
					return err
				}
				all = append(all, data...)
			}
			id, err := agent.Submit(condorg.SubmitRequest{
				Owner:      "cms",
				Executable: gram.Program("reconstruct"),
				Stdin:      all,
				Site:       ncsa.GatekeeperAddr(),
			})
			if err != nil {
				return err
			}
			info, err := agent.Wait(ctx, id)
			if err != nil {
				return err
			}
			if info.State != condorg.Completed {
				return fmt.Errorf("reco: %s", info.Error)
			}
			setNodeJob(node.Name, id)
			return nil
		}
		return fmt.Errorf("unknown node spec %q", node.Spec)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	res, err := dagman.Execute(ctx, dag, dagman.ExecConfig{
		Submit:    submit,
		MaxActive: bufferLimit,
		OnEvent: func(node string, st dagman.NodeState, attempt int) {
			if st == dagman.NodeDone && strings.HasPrefix(node, "transfer") {
				fmt.Printf("  shipped %s to the repository\n", node)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Succeeded() {
		log.Fatalf("pipeline failed: %v", res.Failed)
	}

	// --- Results. ---
	time.Sleep(200 * time.Millisecond)
	recoOut, _ := agent.Stdout(getNodeJob("reco"))
	bytes, _, _, _ := ftp.Stat(repo.Addr(), "cms/run0.evt")
	fmt.Printf("\npipeline complete in %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("events produced: %d (%d jobs x %d events; run0 file is %d bytes)\n",
		simJobs*eventsPerJob, simJobs, eventsPerJob, bytes)
	fmt.Printf("reconstruction output: %s", recoOut)
}

// nodeJob maps DAG node -> agent job ID; DAG nodes run concurrently.
var (
	nodeJobMu sync.Mutex
	nodeJob   = map[string]string{}
)

func setNodeJob(node, id string) {
	nodeJobMu.Lock()
	defer nodeJobMu.Unlock()
	nodeJob[node] = id
}

func getNodeJob(node string) string {
	nodeJobMu.Lock()
	defer nodeJobMu.Unlock()
	return nodeJob[node]
}

func mustTemp(prefix string) string {
	dir, err := os.MkdirTemp("", "cms-"+prefix+"-*")
	if err != nil {
		log.Fatal(err)
	}
	return dir
}
