// Fault tolerance demo: the four failure types of §4.2, inflicted live on
// a running computation. A long job is submitted; the JobManager is
// crashed, then the whole Gatekeeper machine, then the network is
// partitioned — and the agent recovers from each without losing the job or
// running it twice. The job's user log at the end is the paper's "complete
// history of their jobs' execution".
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"condorg/internal/condorg"
	"condorg/internal/gram"
	"condorg/internal/lrm"
	"condorg/internal/programs"
)

func main() {
	cluster, err := lrm.NewCluster(lrm.Config{Name: "remote", Cpus: 2})
	if err != nil {
		log.Fatal(err)
	}
	site, err := gram.NewSite(gram.SiteConfig{
		Name:     "remote",
		Cluster:  cluster,
		Runtime:  programs.NewRuntime(),
		StateDir: mustTemp("site"),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer site.Close()

	agent, err := condorg.NewAgent(condorg.AgentConfig{
		StateDir: mustTemp("agent"),
		Selector: condorg.StaticSelector(site.GatekeeperAddr()),
		Probe:    condorg.ProbeOptions{Interval: 50 * time.Millisecond},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer agent.Close()

	id, err := agent.Submit(condorg.SubmitRequest{
		Owner:      "demo",
		Executable: gram.Program("sleep"),
		Args:       []string{"3s"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %s (a 3s job) to %s\n", id, site.GatekeeperAddr())
	waitState(agent, id, condorg.Running)
	info, _ := agent.Status(id)
	fmt.Printf("job is running as %s\n\n", info.Contact.JobID)

	// --- Failure 1: the JobManager process crashes. ---
	fmt.Println("FAILURE 1: crashing the JobManager (the LRM job keeps running)")
	if err := site.CrashJobManager(info.Contact.JobID); err != nil {
		log.Fatal(err)
	}
	waitForLog(agent, id, "JM_RESTARTED")
	fmt.Println("  -> agent probed, found the Gatekeeper alive, started a replacement JobManager")

	// --- Failure 2: the whole interface machine goes down. ---
	fmt.Println("FAILURE 2: crashing the Gatekeeper machine")
	site.CrashGatekeeperMachine()
	waitDisconnected(agent, id, true)
	fmt.Println("  -> agent lost contact (cannot tell crash from partition); waiting...")
	time.Sleep(300 * time.Millisecond)
	if err := site.RestartGatekeeperMachine(); err != nil {
		log.Fatal(err)
	}
	waitDisconnected(agent, id, false)
	fmt.Println("  -> machine back on the same address; agent reconnected")

	// --- Failure 4: a network partition. ---
	fmt.Println("FAILURE 4: partitioning the network")
	site.Partition()
	waitDisconnected(agent, id, true)
	fmt.Println("  -> agent disconnected again; the site-side job is unaffected")
	time.Sleep(300 * time.Millisecond)
	site.Heal()

	// The job finishes exactly once despite everything.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	final, err := agent.Wait(ctx, id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal state: %v (exactly-once: ExitOK=%v)\n", final.State, final.ExitOK)
	fmt.Println("\nuser log (the complete history):")
	for _, e := range final.Log {
		fmt.Printf("  %-18s %s\n", e.Code, e.Text)
	}

	// (Failure 3 — the submit machine itself crashing — is demonstrated
	// by the agent's persistent queue: see TestAgentCrashRecovery in
	// internal/condorg and BenchmarkE3_FaultTolerance.)
}

func waitState(agent *condorg.Agent, id string, want condorg.JobState) {
	for {
		info, _ := agent.Status(id)
		if info.State == want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func waitForLog(agent *condorg.Agent, id, code string) {
	for {
		events, _ := agent.UserLog(id)
		for _, e := range events {
			if e.Code == code {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func waitDisconnected(agent *condorg.Agent, id string, want bool) {
	for {
		info, _ := agent.Status(id)
		if info.Disconnected == want || info.State.Terminal() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func mustTemp(prefix string) string {
	dir, err := os.MkdirTemp("", "ft-"+prefix+"-*")
	if err != nil {
		log.Fatal(err)
	}
	return dir
}
