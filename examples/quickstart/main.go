// Quickstart: an entire multi-site Grid and a Condor-G agent in one
// process. Two execution sites (different schedulers) come up, the agent
// round-robins jobs across them through the full GRAM/GASS path, and the
// user-facing queue, streamed output, and per-job history are printed —
// §4.1's "familiar and reliable single access point to all the resources".
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"condorg/internal/condorg"
	"condorg/internal/gram"
	"condorg/internal/lrm"
	"condorg/internal/programs"
)

func main() {
	// --- Two execution sites: a FIFO "PBS" cluster and a backfilling
	// "LSF" machine (Figure 1's right half, twice). ---
	var sites []*gram.Site
	var gks []string
	for _, cfg := range []struct {
		name   string
		cpus   int
		policy lrm.Policy
	}{
		{"wisc-pbs", 4, lrm.FIFO{}},
		{"anl-lsf", 8, lrm.Backfill{}},
	} {
		cluster, err := lrm.NewCluster(lrm.Config{Name: cfg.name, Cpus: cfg.cpus, Policy: cfg.policy})
		if err != nil {
			log.Fatal(err)
		}
		site, err := gram.NewSite(gram.SiteConfig{
			Name:     cfg.name,
			Cluster:  cluster,
			Runtime:  programs.NewRuntime(),
			StateDir: mustTemp("site-" + cfg.name),
		})
		if err != nil {
			log.Fatal(err)
		}
		defer site.Close()
		sites = append(sites, site)
		gks = append(gks, site.GatekeeperAddr())
		fmt.Printf("site %-10s gatekeeper %s  (%d CPUs, %s)\n",
			cfg.name, site.GatekeeperAddr(), cfg.cpus, cfg.policy.Name())
	}

	// --- The personal agent (Figure 1's left half). ---
	agent, err := condorg.NewAgent(condorg.AgentConfig{
		StateDir: mustTemp("agent"),
		Selector: &condorg.RoundRobinSelector{Sites: gks},
		Probe:    condorg.ProbeOptions{Interval: 100 * time.Millisecond},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer agent.Close()
	fmt.Println("\ncondor-g agent up; submitting 5 jobs")

	// --- Submit a mixed bag of work. ---
	var ids []string
	submit := func(program string, args ...string) {
		id, err := agent.Submit(condorg.SubmitRequest{
			Owner:      "quickstart",
			Executable: gram.Program(program),
			Args:       args,
		})
		if err != nil {
			log.Fatal(err)
		}
		ids = append(ids, id)
	}
	submit("echo", "hello", "multi-institutional", "grid")
	submit("pi", "400000")
	submit("sleep", "150ms")
	submit("burn", "50ms")
	submit("echo", "condor-g", "quickstart")

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := agent.WaitAll(ctx); err != nil {
		log.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond) // let output streams drain

	// --- The local-resource-manager view of the Grid. ---
	fmt.Printf("\n%-6s %-10s %-22s %s\n", "ID", "STATE", "SITE", "STDOUT (first line)")
	for _, id := range ids {
		info, _ := agent.Status(id)
		out, _ := agent.Stdout(id)
		firstLine := string(out)
		for i, b := range out {
			if b == '\n' {
				firstLine = string(out[:i])
				break
			}
		}
		fmt.Printf("%-6s %-10s %-22s %s\n", info.ID, info.State, info.Site, firstLine)
	}

	fmt.Printf("\ncomplete history of %s:\n", ids[0])
	events, _ := agent.UserLog(ids[0])
	for _, e := range events {
		fmt.Printf("  %-14s %s\n", e.Code, e.Text)
	}
}

func mustTemp(prefix string) string {
	dir, err := os.MkdirTemp("", "quickstart-"+prefix+"-*")
	if err != nil {
		log.Fatal(err)
	}
	return dir
}
