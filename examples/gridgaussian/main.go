// GridGaussian example — the §6.3 case study: a portal runs Gaussian98 jobs
// on Grid resources, and a utility called G-Cat monitors each job's output
// file, buffering it on local scratch and shipping it to a shared Mass
// Storage System as partial file chunks, so that (1) output is reliably
// stored at MSS when the job completes and (2) users can view the output
// while it is being produced, with network performance variations hidden
// from Gaussian.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"condorg/internal/gcat"
)

func main() {
	// --- The shared MSS, with a deliberately bumpy network: every chunk
	//     transfer takes a few ms, and mid-run the MSS goes down. ---
	mss, err := gcat.NewMSS(gcat.MSSOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer mss.Close()
	mss.SetThrottle(func(int) { time.Sleep(time.Millisecond) })
	fmt.Printf("MSS at %s (throttled network)\n", mss.Addr())

	// --- The "Gaussian" run: an SCF-like iteration writing its log. ---
	work := mustTemp()
	outFile := filepath.Join(work, "water.log")
	os.WriteFile(outFile, nil, 0o600)

	g, err := gcat.NewGCat(gcat.GCatConfig{
		SourcePath:  outFile,
		ScratchPath: filepath.Join(work, "scratch.buf"),
		MSSAddr:     mss.Addr(),
		RemoteName:  "gaussian/water.log",
		ChunkSize:   256,
		Poll:        5 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	g.Start()
	fmt.Println("G-Cat monitoring water.log; starting the computation")

	gaussianDone := make(chan struct{})
	go func() {
		defer close(gaussianDone)
		f, _ := os.OpenFile(outFile, os.O_WRONLY|os.O_APPEND, 0)
		defer f.Close()
		rng := rand.New(rand.NewSource(1))
		energy := -75.0
		start := time.Now()
		for i := 1; i <= 40; i++ {
			energy += -1.0/float64(i*i) + rng.Float64()*0.001
			fmt.Fprintf(f, "SCF cycle %2d  E(RHF) = %12.8f  conv = %8.2e\n",
				i, energy, math.Pow(10, -float64(i)/4))
			time.Sleep(8 * time.Millisecond)
		}
		fmt.Fprintf(f, "SCF Done:  E(RHF) = %12.8f after 40 cycles\n", energy)
		fmt.Printf("gaussian finished in %v (it never waited on the network)\n",
			time.Since(start).Round(time.Millisecond))
	}()

	// --- Mid-run: the user checks progress through the portal while the
	//     MSS suffers an outage. ---
	viewer := gcat.NewMSSClient(mss.Addr(), nil, nil)
	defer viewer.Close()
	time.Sleep(120 * time.Millisecond)
	partial, chunks, _ := viewer.Read("gaussian/water.log")
	fmt.Printf("\n[user refreshes the portal mid-run: %d chunks, last line so far]\n  %s\n",
		chunks, lastLine(partial))

	fmt.Println("\n[MSS outage begins — Gaussian keeps computing]")
	mss.SetOutage(true)
	time.Sleep(100 * time.Millisecond)
	buffered, shipped := g.Progress()
	fmt.Printf("[during outage: %d bytes buffered on scratch, %d shipped]\n", buffered, shipped)
	mss.SetOutage(false)
	fmt.Println("[MSS back; G-Cat drains the scratch buffer]")

	<-gaussianDone
	g.Stop(10 * time.Second)

	// --- Final state: the complete log is reliably at MSS. ---
	final, chunks, err := viewer.Read("gaussian/water.log")
	if err != nil {
		log.Fatal(err)
	}
	local, _ := os.ReadFile(outFile)
	fmt.Printf("\nfinal: %d chunks, %d bytes at MSS (local file %d bytes, identical=%v)\n",
		chunks, len(final), len(local), string(final) == string(local))
	fmt.Printf("last line at MSS:\n  %s\n", lastLine(final))
}

func lastLine(data []byte) string {
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) == 0 {
		return "(empty)"
	}
	return lines[len(lines)-1]
}

func mustTemp() string {
	dir, err := os.MkdirTemp("", "gridgaussian-*")
	if err != nil {
		log.Fatal(err)
	}
	return dir
}
