// Command mdsserver runs a standalone GIIS — the MDS-2 aggregate directory
// of §3.3. Sites register resource ads with it (GRRP); brokers query it
// (GRIP).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"condorg/internal/mds"
)

func main() {
	addr := flag.String("listen", "127.0.0.1:0", "listen address")
	flag.Parse()
	srv, err := mds.NewServer(mds.ServerOptions{Addr: *addr})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("mdsserver: GIIS directory on %s\n", srv.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
}
