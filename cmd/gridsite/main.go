// Command gridsite runs one complete Grid execution site — the right half
// of the paper's Figure 1: a Gatekeeper on a fixed address, a local
// resource manager with a configurable scheduling policy, and the standard
// demo program library. Optionally it advertises itself to an MDS directory
// so brokered agents can discover it.
//
// Usage:
//
//	gridsite -name wisc -addr 127.0.0.1:7001 -cpus 16 -policy fifo \
//	         [-mds 127.0.0.1:7000] [-cost 1.0] [-state /tmp/wisc]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"condorg/internal/broker"
	"condorg/internal/glidein"
	"condorg/internal/gram"
	"condorg/internal/lrm"
	"condorg/internal/programs"
)

func main() {
	var (
		name    = flag.String("name", "site", "site name")
		addr    = flag.String("addr", "127.0.0.1:0", "gatekeeper listen address")
		cpus    = flag.Int("cpus", 8, "cluster CPU count")
		policy  = flag.String("policy", "fifo", "scheduling policy: fifo, backfill, fairshare")
		mdsAddr = flag.String("mds", "", "MDS directory to advertise to (optional)")
		cost    = flag.Float64("cost", 1.0, "advertised allocation cost per CPU-hour")
		state   = flag.String("state", "", "stable-storage directory (default: temp)")
	)
	flag.Parse()

	pol, err := lrm.PolicyByName(*policy)
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := lrm.NewCluster(lrm.Config{Name: *name, Cpus: *cpus, Policy: pol})
	if err != nil {
		log.Fatal(err)
	}
	stateDir := *state
	if stateDir == "" {
		stateDir, err = os.MkdirTemp("", "gridsite-"+*name+"-*")
		if err != nil {
			log.Fatal(err)
		}
	}
	// The site hosts elastic glidein pilots: the gatekeeper-pilot program
	// brings up a private gatekeeper inside an allocation, and jobs bound
	// to it run from the same demo-program library as direct submissions.
	rt := programs.NewRuntime()
	glidein.InstallGatekeeperPilot(rt, rt, nil, nil, nil)
	site, err := gram.NewSite(gram.SiteConfig{
		Name:           *name,
		Cluster:        cluster,
		Runtime:        rt,
		StateDir:       stateDir,
		GatekeeperAddr: *addr,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer site.Close()
	fmt.Printf("gridsite %s: gatekeeper on %s (%d CPUs, %s policy, state %s)\n",
		*name, site.GatekeeperAddr(), *cpus, pol.Name(), stateDir)

	if *mdsAddr != "" {
		rep := broker.NewReporter(site, *mdsAddr, "x86_64", *cost, time.Minute)
		rep.Start(10 * time.Second)
		defer rep.Stop()
		fmt.Printf("gridsite %s: advertising to MDS at %s\n", *name, *mdsAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("gridsite %s: shutting down\n", *name)
}
