package main

import (
	"testing"
	"time"

	"condorg/internal/credmgr"
	"condorg/internal/gsi"
)

// The served repository round-trips a deposited credential: store a
// long-lived proxy, fetch a short-lived one derived from it, destroy the
// deposit, and confirm it is gone.
func TestMyProxyServeRoundTrip(t *testing.T) {
	srv, err := run("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	now := time.Now()
	ca, err := gsi.NewCA("/O=Grid/CN=CA", now, 365*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	user, err := ca.IssueUser("/O=Grid/CN=u", now, 30*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	long, err := gsi.NewProxy(user, now, 7*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}

	mc := credmgr.NewMyProxyClient(srv.Addr(), nil, gsi.WallClock)
	defer mc.Close()
	if err := mc.Store("u", "hunter2", long); err != nil {
		t.Fatal(err)
	}
	short, err := mc.Get("u", "hunter2", 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if short.Subject() != "/O=Grid/CN=u" {
		t.Fatalf("fetched proxy subject = %q", short.Subject())
	}
	if left := short.TimeLeft(time.Now()); left <= 0 || left > 12*time.Hour {
		t.Fatalf("fetched proxy lifetime = %v", left)
	}
	if err := mc.Destroy("u", "hunter2"); err != nil {
		t.Fatal(err)
	}
	if _, err := mc.Get("u", "hunter2", time.Hour); err == nil {
		t.Fatal("destroyed deposit still served")
	}
}
