// Command myproxy runs the online credential repository of §4.3: users
// deposit a long-lived proxy under a password; agents fetch short-lived
// proxies from it, limiting the exposure of the long-lived credential.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"condorg/internal/credmgr"
)

func main() {
	addr := flag.String("listen", "127.0.0.1:0", "listen address")
	flag.Parse()
	srv, err := run(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("myproxy: credential repository on %s\n", srv.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
}

// run starts the repository on listen; the caller owns the returned server.
func run(listen string) (*credmgr.MyProxyServer, error) {
	return credmgr.NewMyProxyServer(credmgr.MyProxyOptions{Addr: listen})
}
