package main

import (
	"strings"
	"testing"
)

// TestServeRejectsHAWithJournalPartitions pins the startup contract: -ha
// replicates one journal chain, so combining it with owner partitioning
// must be a hard error naming both flags — never a silently unpartitioned
// store.
func TestServeRejectsHAWithJournalPartitions(t *testing.T) {
	err := checkServeFlags(true, 16)
	if err == nil {
		t.Fatal("-ha with -journal-partitions 16 accepted; want a hard startup error")
	}
	for _, flag := range []string{"-ha", "-journal-partitions"} {
		if !strings.Contains(err.Error(), flag) {
			t.Fatalf("error %q does not name %s", err, flag)
		}
	}

	// The non-conflicting combinations stay valid: partitions without HA,
	// HA with the flag unset, and HA with the explicit single-store value
	// (-1), which is exactly what replication produces anyway.
	for _, ok := range []struct {
		ha    bool
		parts int
	}{{false, 16}, {true, 0}, {true, -1}, {false, 0}} {
		if err := checkServeFlags(ok.ha, ok.parts); err != nil {
			t.Fatalf("checkServeFlags(%v, %d) = %v; want nil", ok.ha, ok.parts, err)
		}
	}
}
