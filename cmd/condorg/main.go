// Command condorg is the user-facing Condor-G tool: `condorg serve` runs
// the computation-management agent, and the remaining subcommands
// (submit, q, status, wait, rm, hold, release, log, stdout, trace,
// metrics, health) talk to a running agent — the §4.1 "API and command
// line tools that allow the user to perform job management operations"
// with the look and feel of a local resource manager.
//
// The agent is multi-tenant: jobs are owner-sharded across journal
// partitions (-journal-partitions), admission is governed by per-owner
// quotas (-max-queued-per-owner, -max-active-per-owner) and a token
// bucket (-submit-rate, -submit-burst), and `condorg gateway` fronts the
// control endpoint with an HTTP API that maps bearer tokens to owners.
//
// The agent watches every owner's proxy: `-myproxy` (with `-myproxy-user`
// and `-myproxy-pass`) or a per-owner `-myproxy-users` file enables
// proactive renewal — expiring proxies are re-fetched ahead of expiry
// (-cred-renew-lead, spread per owner by -cred-renew-jitter) and
// re-delegated in-band to the running jobs' managers, with no hold/release
// cycle.
//
// `condorg serve -standby ADDR` runs the same binary as a hot standby: it
// tails the primary's hash-chained journal stream into its own state
// directory and promotes itself to a full agent when the primary's lease
// expires. `condorg audit verify -state DIR` proves a state directory's
// journal history offline — the root store and every owner partition —
// exiting non-zero (naming the damaged segment and chain sequence) on
// any corruption.
//
// Job-op failures map the control plane's fault classes onto exit codes:
// transient failures (agent restarting, site unreachable) exit 75
// (EX_TEMPFAIL, "retry me"), everything else exits 1.
//
// Usage:
//
//	condorg serve -listen 127.0.0.1:7100 -sites host:p1,host:p2 [-mds addr] [-state dir] [-sync] [-ha] [-standby addr] [-lease-ttl d] [-standby-poll d] [-max-submit-retries n] [-per-site-inflight n] [-max-inflight n] [-stage-chunk-size n] [-stage-streams n] [-no-stage] [-no-metrics] [-journal-partitions n] [-max-queued-per-owner n] [-max-active-per-owner n] [-submit-rate r] [-submit-burst n] [-myproxy addr] [-myproxy-user u] [-myproxy-pass p] [-myproxy-users file] [-cred-renew-lead d] [-cred-renew-jitter d] [-cred-renew-interval d] [-cred-renew-lifetime d]
//	condorg gateway -listen 127.0.0.1:8080 -agent 127.0.0.1:7100 -users file
//	condorg submit -agent 127.0.0.1:7100 [-owner u] [-site addr] program [args...]
//	condorg q      -agent 127.0.0.1:7100 [-owner u] [-state idle,running] [-limit n] [-after job-id]
//	condorg status -agent 127.0.0.1:7100 <job-id>
//	condorg wait   -agent 127.0.0.1:7100 <job-id>
//	condorg rm     -agent 127.0.0.1:7100 <job-id>
//	condorg hold   -agent 127.0.0.1:7100 <job-id> [reason]
//	condorg release -agent 127.0.0.1:7100 <job-id>
//	condorg log    -agent 127.0.0.1:7100 <job-id>
//	condorg stdout -agent 127.0.0.1:7100 <job-id>
//	condorg trace  -agent 127.0.0.1:7100 <job-id>
//	condorg metrics -agent 127.0.0.1:7100
//	condorg health  -agent 127.0.0.1:7100
//	condorg audit verify -state dir [-json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"condorg/internal/broker"
	"condorg/internal/condor"
	"condorg/internal/condorg"
	"condorg/internal/credmgr"
	"condorg/internal/faultclass"
	"condorg/internal/gateway"
	"condorg/internal/glidein"
	"condorg/internal/gridftp"
	"condorg/internal/gsi"
	"condorg/internal/journal"
	"condorg/internal/mds"
	"condorg/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	args := os.Args[2:]
	switch cmd {
	case "serve":
		serve(args)
	case "gateway":
		gatewayCmd(args)
	case "submit":
		submit(args)
	case "sites":
		listSites(args)
	case "q":
		queue(args)
	case "metrics":
		metrics(args)
	case "health":
		health(args)
	case "pool":
		pool(args)
	case "audit":
		audit(args)
	case "status", "wait", "rm", "hold", "release", "log", "stdout", "trace":
		jobOp(cmd, args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: condorg <serve|gateway|submit|q|status|wait|rm|hold|release|log|stdout|trace|metrics|health|pool|audit|sites> [flags]")
	os.Exit(2)
}

// audit verifies a state directory's journal history offline: every frame
// CRC, every hash-chain link, every segment boundary, and the snapshot
// anchor. Exits 1 — naming the damaged segment and chain sequence — on any
// corruption or leftover quarantine evidence.
func audit(args []string) {
	if len(args) < 1 || args[0] != "verify" {
		fmt.Fprintln(os.Stderr, "usage: condorg audit verify -state dir [-json]")
		os.Exit(2)
	}
	fs := flag.NewFlagSet("audit verify", flag.ExitOnError)
	state := fs.String("state", "", "agent state directory (or a queue store directory)")
	asJSON := fs.Bool("json", false, "emit the full report as JSON")
	fs.Parse(args[1:])
	if *state == "" {
		log.Fatal("condorg audit verify: need -state")
	}
	dir := *state
	// Accept either the agent StateDir or its queue store directly.
	if st, err := os.Stat(filepath.Join(dir, "queue")); err == nil && st.IsDir() {
		dir = filepath.Join(dir, "queue")
	}
	// A partitioned queue is many independent stores: the root (spool
	// keys, pre-partition history) plus one store per owner bucket. Each
	// carries its own snapshot anchor and hash chain; all must verify.
	dirs := append([]string{dir}, journal.PartitionDirs(filepath.Join(dir, "parts"))...)
	failed := false
	for _, d := range dirs {
		rep, verr := journal.VerifyDir(d)
		if *asJSON {
			out, _ := json.MarshalIndent(rep, "", "  ")
			fmt.Println(string(out))
		} else {
			if len(dirs) > 1 {
				fmt.Printf("== %s ==\n", d)
			}
			if rep.Anchored {
				fmt.Printf("snapshot: %d keys, chain anchor seq %d\n", rep.Keys, rep.Snapshot.Seq)
			} else {
				fmt.Printf("snapshot: %d keys, legacy (no chain anchor)\n", rep.Keys)
			}
			for _, seg := range rep.Segments {
				status := "ok"
				if seg.Err != "" {
					status = "CORRUPT: " + seg.Err
				} else if seg.Legacy {
					status = "ok (contains unchained records)"
				}
				fmt.Printf("%-40s %7d records  seq %d..%d  %s\n", seg.Path, seg.Records, seg.First, seg.Last, status)
			}
			for _, q := range rep.Quarantined {
				fmt.Printf("%-40s QUARANTINED (inspect and remove to reopen)\n", q)
			}
			fmt.Printf("verified chain head: seq %d\n", rep.Head.Seq)
		}
		if verr != nil {
			fmt.Fprintln(os.Stderr, "condorg audit:", verr)
			failed = true
		} else if !rep.OK() {
			fmt.Fprintln(os.Stderr, "condorg audit: history not clean (quarantined segments present)")
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("history verified: every record extends the hash chain")
}

// gatewayCmd runs the HTTP gateway: bearer-token users multiplexed onto
// one agent's control endpoint. The users file holds one "token owner"
// pair per line (blank lines and #-comments ignored). This mode fronts
// an open (trusted) control endpoint; embedding gateway.New with
// per-user GSI credentials gives the fully authenticated posture.
func gatewayCmd(args []string) {
	fs := flag.NewFlagSet("gateway", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:0", "HTTP listen address")
	agent := fs.String("agent", "127.0.0.1:7100", "agent control address")
	usersFile := fs.String("users", "", "path to the token→owner users file")
	fs.Parse(args)
	if *usersFile == "" {
		log.Fatal("condorg gateway: need -users")
	}
	raw, err := os.ReadFile(*usersFile)
	if err != nil {
		log.Fatal(err)
	}
	users := make(map[string]gateway.User)
	for i, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			log.Fatalf("condorg gateway: %s:%d: want \"token owner\", got %q", *usersFile, i+1, line)
		}
		users[fields[0]] = gateway.User{Owner: fields[1]}
	}
	gw, err := gateway.New(*listen, gateway.Config{Agent: *agent, Users: users})
	if err != nil {
		log.Fatal(err)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	fmt.Printf("condorg gateway: %d users, HTTP %s -> agent %s\n", len(users), gw.Addr(), *agent)
	go func() {
		<-sig
		fmt.Println("condorg gateway: shutting down")
		gw.Close()
	}()
	if err := gw.Serve(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
}

// die reports a job-op failure and exits with a class-aware code: 75
// (EX_TEMPFAIL) for transient faults a wrapper script should retry, 1
// for everything else.
func die(err error) {
	fmt.Fprintln(os.Stderr, "condorg:", err)
	if faultclass.ClassOf(err) == faultclass.Transient {
		os.Exit(75)
	}
	os.Exit(1)
}

// listSites queries an MDS directory for advertised resources — what the
// personal broker sees.
func listSites(args []string) {
	fs := flag.NewFlagSet("sites", flag.ExitOnError)
	mdsAddr := fs.String("mds", "", "MDS directory address")
	constraint := fs.String("constraint", "", "ClassAd constraint expression")
	fs.Parse(args)
	if *mdsAddr == "" {
		log.Fatal("condorg sites: need -mds")
	}
	c := mds.NewClient(*mdsAddr, nil, nil)
	defer c.Close()
	ads, err := c.Query(*constraint)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %-22s %6s %6s %6s %8s %-10s\n",
		"NAME", "GATEKEEPER", "CPUS", "FREE", "QUEUE", "COST", "POLICY")
	for _, ad := range ads {
		fmt.Printf("%-12s %-22s %6d %6d %6d %8.2f %-10s\n",
			ad.EvalString("Name", "?"),
			ad.EvalString("GatekeeperAddr", "?"),
			ad.EvalInt("Cpus", 0),
			ad.EvalInt("FreeCpus", 0),
			ad.EvalInt("QueueDepth", 0),
			ad.EvalReal("Cost", 0),
			ad.EvalString("Policy", "?"))
	}
}

func serve(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:0", "control endpoint address")
	sites := fs.String("sites", "", "comma-separated gatekeeper addresses (round-robin)")
	mdsAddr := fs.String("mds", "", "MDS directory for brokered site selection")
	state := fs.String("state", "", "agent state directory (default: temp)")
	sync := fs.Bool("sync", false, "fsync the job queue journal before acknowledging submits (group commit)")
	maxSubmitRetries := fs.Int("max-submit-retries", 0, "hold a job after this many failed submission attempts (0 = default)")
	perSiteInFlight := fs.Int("per-site-inflight", 0, "concurrent remote ops per gatekeeper pipeline (0 = default 4)")
	maxInFlight := fs.Int("max-inflight", 0, "concurrent remote ops agent-wide across all sites (0 = default 64)")
	stageChunkSize := fs.Int("stage-chunk-size", 0, "staging transfer chunk size in bytes (0 = default 65536)")
	stageStreams := fs.Int("stage-streams", 0, "parallel chunk streams per site during staging (0 = default 4)")
	noStage := fs.Bool("no-stage", false, "disable executable pre-staging; sites pull executables over GASS")
	noMetrics := fs.Bool("no-metrics", false, "disable the metric registry (tracing stays on)")
	batchMaxJobs := fs.Int("batch-max-jobs", 0, "max jobs coalesced into one batch wire frame; 1 disables batching (0 = default 32)")
	batchMaxDelay := fs.Duration("batch-max-delay", 0, "linger after the first drained submit so trailing jobs join the batch (0 = send immediately)")
	wireCodec := fs.String("wire-codec", "", "wire frame codec offered at handshake: binary or json (default binary)")
	ha := fs.Bool("ha", false, "hot-standby support: replicate job payloads through the journal and wait for the follower's ack on submits")
	standby := fs.String("standby", "", "run as a hot standby tailing the primary at this control address; take over when its lease expires")
	leaseTTL := fs.Duration("lease-ttl", 0, "standby: declare the primary dead after this long without contact (0 = default 3s)")
	standbyPoll := fs.Duration("standby-poll", 0, "standby: journal stream long-poll bound (0 = default 1s)")
	journalPartitions := fs.Int("journal-partitions", 0, "owner hash buckets the job journal is sharded across (0 = default 16, -1 = single store; pinned at first start; rejected with -ha, which replicates one chain)")
	maxQueuedPerOwner := fs.Int("max-queued-per-owner", 0, "reject a submit once the owner has this many non-terminal jobs (0 = unlimited)")
	maxActivePerOwner := fs.Int("max-active-per-owner", 0, "reject a submit once the owner has this many non-held active jobs (0 = unlimited)")
	submitRate := fs.Float64("submit-rate", 0, "per-owner submit token-bucket refill rate in submits/second (0 = unlimited)")
	submitBurst := fs.Int("submit-burst", 0, "per-owner submit token-bucket depth (min 1 when -submit-rate is set)")
	maxPayloadBytes := fs.Int("max-payload-bytes", 0, "reject a submit whose executable+stdin exceed this many bytes; oversized control envelopes are refused before decode (0 = unlimited)")
	glideinOn := fs.Bool("glidein", false, "run the elastic GlideIn autoscaler: pilots submitted to the -sites hosts form the schedulable pool and jobs bind to pilots as they come up (delayed binding)")
	glideinMin := fs.Int("glidein-min", 0, "minimum pilots the autoscaler keeps alive")
	glideinMax := fs.Int("glidein-max", 0, "maximum pilots (0 = twice the host-site count)")
	glideinJobsPerPilot := fs.Int("glidein-jobs-per-pilot", 0, "queue depth one pilot is expected to absorb (0 = default 4)")
	glideinLease := fs.Duration("glidein-lease", 0, "pilot lease: hard lifetime before self-retirement (0 = default 1h)")
	glideinIdle := fs.Duration("glidein-idle", 0, "pilot idle window before self-retirement (0 = default 1m)")
	glideinInterval := fs.Duration("glidein-interval", 0, "autoscaler reconciliation interval (0 = default 1s)")
	glideinCpus := fs.Int("glidein-cpus", 0, "CPUs each pilot's private gatekeeper schedules (0 = default 4)")
	myproxyAddr := fs.String("myproxy", "", "default MyProxy server for proactive credential renewal")
	myproxyUser := fs.String("myproxy-user", "", "MyProxy account used for owners without a per-owner binding")
	myproxyPass := fs.String("myproxy-pass", "", "password paired with -myproxy-user")
	myproxyUsers := fs.String("myproxy-users", "", "per-owner MyProxy bindings file: one \"owner user pass [addr]\" line per owner")
	credRenewLead := fs.Duration("cred-renew-lead", 0, "renew an owner's proxy once less than this lifetime remains (0 = warn threshold)")
	credRenewJitter := fs.Duration("cred-renew-jitter", 0, "deterministic per-owner spread added to the renewal lead so a fleet of renewals staggers (0 = none)")
	credRenewInterval := fs.Duration("cred-renew-interval", 0, "credential monitor scan period (0 = default 1m)")
	credRenewLifetime := fs.Duration("cred-renew-lifetime", 0, "lifetime requested for auto-renewed proxies (0 = default 12h)")
	fs.Parse(args)
	if err := checkServeFlags(*ha, *journalPartitions); err != nil {
		log.Fatal(err)
	}

	var adaptive *broker.Adaptive
	var selector condorg.Selector
	switch {
	case *glideinOn:
		if *sites == "" {
			log.Fatal("condorg serve: -glidein needs -sites (the hosts pilots are submitted to)")
		}
		// The schedulable pool is the set of pilot gatekeepers; it starts
		// empty and the provisioner registers pilots as they come up, so
		// binding is deferred until capacity exists.
		adaptive = broker.NewAdaptive(nil)
		selector = adaptive
	case *mdsAddr != "":
		b, err := broker.NewMDSBroker(*mdsAddr, "", "")
		if err != nil {
			log.Fatal(err)
		}
		defer b.Close()
		selector = b
	case *sites != "":
		selector = &condorg.RoundRobinSelector{Sites: strings.Split(*sites, ",")}
	default:
		log.Fatal("condorg serve: need -sites or -mds")
	}

	stateDir := *state
	if stateDir == "" {
		var err error
		stateDir, err = os.MkdirTemp("", "condorg-agent-*")
		if err != nil {
			log.Fatal(err)
		}
	}
	cfg := condorg.DefaultAgentConfig()
	cfg.StateDir = stateDir
	cfg.Selector = selector
	cfg.Journal.Sync = *sync
	cfg.Retry.MaxSubmitRetries = *maxSubmitRetries
	cfg.Pipeline.PerSiteInFlight = *perSiteInFlight
	cfg.Pipeline.MaxInFlight = *maxInFlight
	cfg.Stage.ChunkSize = *stageChunkSize
	cfg.Stage.Streams = *stageStreams
	cfg.Stage.Disabled = *noStage
	cfg.Obs.Disabled = *noMetrics
	cfg.Batch.MaxJobs = *batchMaxJobs
	cfg.Batch.MaxDelay = *batchMaxDelay
	cfg.Wire.Codec = *wireCodec
	cfg.HA.Enabled = *ha
	cfg.DeferBinding = *glideinOn
	cfg.Tenancy.Partitions = *journalPartitions
	cfg.Tenancy.MaxQueuedPerOwner = *maxQueuedPerOwner
	cfg.Tenancy.MaxActivePerOwner = *maxActivePerOwner
	cfg.Tenancy.SubmitRate = *submitRate
	cfg.Tenancy.SubmitBurst = *submitBurst
	cfg.Tenancy.MaxPayloadBytes = *maxPayloadBytes
	if *myproxyUsers != "" {
		bindings, err := parseMyProxyUsers(*myproxyUsers)
		if err != nil {
			log.Fatal("condorg serve: ", err)
		}
		cfg.Tenancy.MyProxy = bindings
	}
	cf := credFlags{
		addr: *myproxyAddr, user: *myproxyUser, pass: *myproxyPass,
		usersFile: *myproxyUsers, lead: *credRenewLead, jitter: *credRenewJitter,
		interval: *credRenewInterval, lifetime: *credRenewLifetime,
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	if *standby != "" {
		if *glideinOn {
			log.Fatal("condorg serve: -glidein is a primary-agent feature and cannot be combined with -standby")
		}
		sb, err := condorg.NewStandby(condorg.StandbyConfig{
			Primary:  *standby,
			StateDir: stateDir,
			LeaseTTL: *leaseTTL,
			Poll:     *standbyPoll,
			Journal:  cfg.Journal,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("condorg standby: tailing %s (state %s)\n", *standby, stateDir)
		select {
		case <-sig:
			fmt.Println("condorg standby: shutting down")
			sb.Close()
			return
		case <-sb.TakeoverCh():
			fmt.Printf("condorg standby: primary lease expired at replicated seq %d; taking over\n", sb.Head().Seq)
		}
		agent, err := sb.Takeover(cfg)
		if err != nil {
			log.Fatal(err)
		}
		defer agent.Close()
		ctl, err := condorg.NewControlServerAddr(agent, *listen)
		if err != nil {
			log.Fatal(err)
		}
		defer ctl.Close()
		defer startCredMonitor(agent, cf)()
		fmt.Printf("condorg agent (promoted): control endpoint %s (state %s)\n", ctl.Addr(), stateDir)
		<-sig
		fmt.Println("condorg agent: shutting down")
		return
	}

	agent, err := condorg.NewAgent(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer agent.Close()
	defer startCredMonitor(agent, cf)()

	ctlCfg := condorg.ControlConfig{}
	if *glideinOn {
		prov, stop, err := startGlidein(agent, glideinFlags{
			hostSites:    strings.Split(*sites, ","),
			stateDir:     stateDir,
			registry:     adaptive,
			min:          *glideinMin,
			max:          *glideinMax,
			jobsPerPilot: *glideinJobsPerPilot,
			lease:        *glideinLease,
			idle:         *glideinIdle,
			interval:     *glideinInterval,
			cpus:         *glideinCpus,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
		ctlCfg.Pool = func() condorg.CtlPoolResp { return poolResp(prov.Status()) }
	}
	ctl, err := condorg.NewControlServerConfig(agent, *listen, ctlCfg)
	if err != nil {
		log.Fatal(err)
	}
	defer ctl.Close()
	fmt.Printf("condorg agent: control endpoint %s (state %s)\n", ctl.Addr(), stateDir)
	<-sig
	fmt.Println("condorg agent: shutting down")
}

// checkServeFlags rejects flag combinations that would otherwise
// misbehave silently. -ha replicates a single hash-chained journal, so an
// owner-partitioned store cannot be combined with it — an operator
// setting both must get a hard error, not an unpartitioned store.
func checkServeFlags(ha bool, journalPartitions int) error {
	if ha && journalPartitions > 0 {
		return fmt.Errorf("condorg serve: -journal-partitions %d cannot be combined with -ha: hot-standby replication streams a single journal chain and would silently ignore the partitioning; drop one of the two flags", journalPartitions)
	}
	return nil
}

// credFlags carries the serve credential-lifecycle flag values.
type credFlags struct {
	addr      string
	user      string
	pass      string
	usersFile string
	lead      time.Duration
	jitter    time.Duration
	interval  time.Duration
	lifetime  time.Duration
}

// startCredMonitor runs the multi-tenant credential monitor over the agent
// when any MyProxy source is configured, and returns its stop function (a
// no-op when no source is given — the monitor's warn/hold ladder is
// pointless on an agent that holds no credentials at all).
func startCredMonitor(agent *condorg.Agent, cf credFlags) func() {
	if cf.addr == "" && cf.usersFile == "" {
		return func() {}
	}
	mcfg := credmgr.MonitorConfig{
		Agent:         agent,
		RenewLead:     cf.lead,
		RenewJitter:   cf.jitter,
		Interval:      cf.interval,
		RenewLifetime: cf.lifetime,
		MyProxyUser:   cf.user,
		MyProxyPass:   cf.pass,
	}
	var mc *credmgr.MyProxyClient
	if cf.addr != "" {
		mc = credmgr.NewMyProxyClient(cf.addr, nil, gsi.WallClock)
		mcfg.MyProxy = mc
	}
	mon := credmgr.NewMonitor(mcfg)
	mon.Start()
	fmt.Println("condorg agent: credential monitor watching all owners")
	return func() {
		mon.Stop()
		if mc != nil {
			mc.Close()
		}
	}
}

// parseMyProxyUsers reads the per-owner MyProxy bindings file: one
// "owner user pass [addr]" line per owner (blank lines and #-comments
// ignored). Owners listed here renew from their own MyProxy account; an
// omitted addr falls back to the -myproxy server.
func parseMyProxyUsers(path string) (map[string]condorg.MyProxyBinding, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	bindings := make(map[string]condorg.MyProxyBinding)
	for i, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 && len(fields) != 4 {
			return nil, fmt.Errorf("%s:%d: want \"owner user pass [addr]\", got %q", path, i+1, line)
		}
		b := condorg.MyProxyBinding{User: fields[1], Pass: fields[2]}
		if len(fields) == 4 {
			b.Addr = fields[3]
		}
		bindings[fields[0]] = b
	}
	return bindings, nil
}

// glideinFlags carries the serve -glidein-* flag values.
type glideinFlags struct {
	hostSites    []string
	stateDir     string
	registry     *broker.Adaptive
	min, max     int
	jobsPerPilot int
	lease        time.Duration
	idle         time.Duration
	interval     time.Duration
	cpus         int
}

// startGlidein brings up the elastic-pool substrate inside the agent
// process — the personal-pool Collector pilots advertise to and the
// GridFTP repository they fetch the daemon payload from — and starts the
// autoscaler over the host sites. The returned stop function drains the
// pool (every pilot also self-retires via lease/idle if the agent dies
// without calling it).
func startGlidein(agent *condorg.Agent, gf glideinFlags) (*glidein.Provisioner, func(), error) {
	coll, err := condor.NewCollector(condor.CollectorOptions{})
	if err != nil {
		return nil, nil, fmt.Errorf("condorg serve: glidein collector: %w", err)
	}
	repoDir := filepath.Join(gf.stateDir, "glidein-repo")
	if err := os.MkdirAll(repoDir, 0o700); err != nil {
		coll.Close()
		return nil, nil, err
	}
	repo, err := gridftp.NewServer(repoDir, gridftp.ServerOptions{})
	if err != nil {
		coll.Close()
		return nil, nil, fmt.Errorf("condorg serve: glidein repo: %w", err)
	}
	ftp := gridftp.NewClient(nil, nil, 2)
	err = ftp.Put(repo.Addr(), glidein.StartdBlob, []byte("condor_startd v6.3 payload"))
	ftp.Close()
	if err != nil {
		coll.Close()
		repo.Close()
		return nil, nil, fmt.Errorf("condorg serve: seed glidein repo: %w", err)
	}

	hosts := make(map[string]string, len(gf.hostSites))
	for _, addr := range gf.hostSites {
		hosts[addr] = addr
	}
	prov, err := glidein.NewProvisioner(glidein.ProvisionerConfig{
		HostSites:     hosts,
		CollectorAddr: coll.Addr(),
		RepoAddr:      repo.Addr(),
		Demand:        agent.Backlog,
		HostHealthy: func(gk string) bool {
			for _, row := range agent.PipelineHealth() {
				if row.Site == gk && row.Breaker == "open" {
					return false
				}
			}
			return true
		},
		Stage: func(addr string) (hits, misses int64) {
			for _, row := range agent.PipelineHealth() {
				if row.Site == addr {
					hits += int64(row.StageHits)
					misses += int64(row.StageMisses)
				}
			}
			return hits, misses
		},
		Registry:     gf.registry,
		SiteRetired:  agent.SiteRetired,
		MinPilots:    gf.min,
		MaxPilots:    gf.max,
		JobsPerPilot: gf.jobsPerPilot,
		Interval:     gf.interval,
		Lease:        gf.lease,
		IdleTimeout:  gf.idle,
		PilotCpus:    gf.cpus,
		Obs:          agent.Obs(),
	})
	if err != nil {
		coll.Close()
		repo.Close()
		return nil, nil, err
	}
	prov.Start()
	fmt.Printf("condorg agent: glidein autoscaler over %d host sites (collector %s, repo %s)\n",
		len(hosts), coll.Addr(), repo.Addr())
	return prov, func() {
		prov.Drain()
		prov.Close()
		coll.Close()
		repo.Close()
	}, nil
}

// poolResp adapts the provisioner's snapshot to the ctl.v1 pool view.
func poolResp(st glidein.PoolStatus) condorg.CtlPoolResp {
	resp := condorg.CtlPoolResp{
		Target:    st.Target,
		Demand:    st.Demand,
		Submitted: st.Submitted,
		Retired:   st.Retired,
	}
	for _, p := range st.Pilots {
		resp.Pilots = append(resp.Pilots, condorg.CtlPoolPilot{
			Slot:       p.Slot,
			HostSite:   p.HostSite,
			Gatekeeper: p.Gatekeeper,
			ActiveJobs: p.ActiveJobs,
			State:      p.State,
		})
	}
	return resp
}

func client(fs *flag.FlagSet, args []string) (*condorg.ControlClient, []string) {
	agent := fs.String("agent", "127.0.0.1:7100", "agent control address")
	owner := fs.String("owner", "user", "submitting user")
	site := fs.String("site", "", "pin to one gatekeeper address")
	fs.Parse(args)
	cli := condorg.NewControlClient(*agent)
	rest := fs.Args()
	// Stash flag values for submit through package-level vars.
	submitOwner, submitSite = *owner, *site
	return cli, rest
}

var submitOwner, submitSite string

func submit(args []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	cli, rest := client(fs, args)
	defer cli.Close()
	if len(rest) < 1 {
		log.Fatal("condorg submit: need a program name")
	}
	id, err := cli.Submit(condorg.CtlSubmit{
		Owner:   submitOwner,
		Program: rest[0],
		Args:    rest[1:],
		Site:    submitSite,
	})
	if err != nil {
		die(err)
	}
	fmt.Println(id)
}

// queue lists jobs with the v1 filter: by owner, by state, paginated.
func queue(args []string) {
	fs := flag.NewFlagSet("q", flag.ExitOnError)
	agent := fs.String("agent", "127.0.0.1:7100", "agent control address")
	owner := fs.String("owner", "", "only this owner's jobs")
	stateNames := fs.String("state", "", "comma-separated states (idle,running,completed,failed,held,removed)")
	limit := fs.Int("limit", 0, "page size (0 = everything)")
	after := fs.String("after", "", "resume after this job id (cursor from the previous page)")
	fs.Parse(args)

	var states []condorg.JobState
	if *stateNames != "" {
		for _, name := range strings.Split(*stateNames, ",") {
			st, err := condorg.ParseJobState(strings.TrimSpace(name))
			if err != nil {
				log.Fatalf("condorg q: %v", err)
			}
			states = append(states, st)
		}
	}
	cli := condorg.NewControlClient(*agent)
	defer cli.Close()
	jobs, next, err := cli.QueueFiltered(condorg.CtlQueueReq{
		Owner:  *owner,
		States: states,
		Limit:  *limit,
		After:  *after,
	})
	if err != nil {
		die(err)
	}
	fmt.Printf("%-8s %-10s %-10s %-22s %s\n", "ID", "OWNER", "STATE", "SITE", "DETAIL")
	for _, j := range jobs {
		detail := j.Error
		if j.State == condorg.Held {
			detail = j.HoldReason
		}
		fmt.Printf("%-8s %-10s %-10s %-22s %s\n", j.ID, j.Owner, j.State, j.Site, detail)
	}
	if next != "" {
		fmt.Printf("more: condorg q -after %s\n", next)
	}
}

// metrics dumps the agent's metric registry.
func metrics(args []string) {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	agent := fs.String("agent", "127.0.0.1:7100", "agent control address")
	asJSON := fs.Bool("json", false, "emit JSON instead of text")
	fs.Parse(args)
	cli := condorg.NewControlClient(*agent)
	defer cli.Close()
	ms, err := cli.Metrics()
	if err != nil {
		die(err)
	}
	if *asJSON {
		fmt.Println(obs.DumpJSON(ms))
		return
	}
	fmt.Print(obs.DumpText(ms))
}

// health prints the agent's per-owner, per-site breaker and pipeline view.
func health(args []string) {
	fs := flag.NewFlagSet("health", flag.ExitOnError)
	agent := fs.String("agent", "127.0.0.1:7100", "agent control address")
	fs.Parse(args)
	cli := condorg.NewControlClient(*agent)
	defer cli.Close()
	resp, err := cli.HealthFull()
	if err != nil {
		die(err)
	}
	if ha := resp.HA; ha != nil && ha.Enabled {
		armed := "follower not yet acked"
		if ha.SyncArmed {
			armed = "sync replication armed"
		}
		fmt.Printf("HA: chain seq %d, follower acked %d (%s)\n", ha.ChainSeq, ha.FollowerAcked, armed)
	}
	fmt.Printf("%-10s %-22s %-10s %6s %8s %9s %10s %11s\n",
		"OWNER", "SITE", "BREAKER", "FAILS", "QUEUED", "INFLIGHT", "STAGE-HIT", "STAGE-MISS")
	for _, s := range resp.Sites {
		fmt.Printf("%-10s %-22s %-10s %6d %8d %9d %10d %11d\n",
			s.Owner, s.Site, s.Breaker, s.Fails, s.Queued, s.InFlight, s.StageHits, s.StageMisses)
	}
}

// pool prints the elastic glidein autoscaler's view: target vs. actual
// pool size and every tracked pilot.
func pool(args []string) {
	fs := flag.NewFlagSet("pool", flag.ExitOnError)
	agent := fs.String("agent", "127.0.0.1:7100", "agent control address")
	fs.Parse(args)
	cli := condorg.NewControlClient(*agent)
	defer cli.Close()
	resp, err := cli.Pool()
	if err != nil {
		die(err)
	}
	if !resp.Enabled {
		fmt.Println("glidein autoscaler: not running (start the agent with -glidein)")
		return
	}
	fmt.Printf("pool: %d pilots, target %d (demand %d jobs; %d submitted, %d retired all-time)\n",
		len(resp.Pilots), resp.Target, resp.Demand, resp.Submitted, resp.Retired)
	fmt.Printf("%-28s %-22s %-22s %-9s %6s\n", "SLOT", "HOST", "GATEKEEPER", "STATE", "ACTIVE")
	for _, p := range resp.Pilots {
		fmt.Printf("%-28s %-22s %-22s %-9s %6d\n", p.Slot, p.HostSite, p.Gatekeeper, p.State, p.ActiveJobs)
	}
}

func jobOp(cmd string, args []string) {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	cli, rest := client(fs, args)
	defer cli.Close()
	if len(rest) < 1 {
		log.Fatalf("condorg %s: need a job id", cmd)
	}
	id := rest[0]
	switch cmd {
	case "status":
		info, err := cli.Status(id)
		if err != nil {
			die(err)
		}
		fmt.Printf("%s: %s (site %s, resubmits %d, submit retries %d)\n",
			info.ID, info.State, info.Site, info.Resubmits, info.SubmitRetries)
		if info.State == condorg.Held && info.HoldReason != "" {
			fmt.Printf("  hold reason: %s\n", info.HoldReason)
		}
		if len(info.CancelPending) > 0 {
			fmt.Printf("  unacknowledged cancels: %d\n", len(info.CancelPending))
		}
		if info.Error != "" {
			fmt.Printf("  error: %s\n", info.Error)
		}
	case "wait":
		info, err := cli.Wait(id, time.Hour)
		if err != nil {
			die(err)
		}
		fmt.Printf("%s: %s\n", info.ID, info.State)
		if info.State != condorg.Completed {
			os.Exit(1)
		}
	case "rm":
		if err := cli.Remove(id); err != nil {
			die(err)
		}
	case "hold":
		reason := "held by user"
		if len(rest) > 1 {
			reason = strings.Join(rest[1:], " ")
		}
		if err := cli.Hold(id, reason); err != nil {
			die(err)
		}
	case "release":
		if err := cli.Release(id); err != nil {
			die(err)
		}
	case "log":
		events, err := cli.Log(id)
		if err != nil {
			die(err)
		}
		for _, e := range events {
			fmt.Printf("%s %-16s %s\n", e.Time.Format("15:04:05.000"), e.Code, e.Text)
		}
	case "stdout":
		data, err := cli.Stdout(id)
		if err != nil {
			die(err)
		}
		os.Stdout.Write(data)
	case "trace":
		tl, err := cli.Trace(id)
		if err != nil {
			die(err)
		}
		if tl.Dropped > 0 {
			fmt.Printf("(%d earlier events dropped; ring capacity %d)\n", tl.Dropped, tl.Cap)
		}
		for _, ev := range tl.Events {
			line := fmt.Sprintf("%4d %s %-14s", ev.Seq, ev.Wall.Format("15:04:05.000"), ev.Phase)
			if ev.Site != "" {
				line += " site=" + ev.Site
			}
			if ev.Class != "" {
				line += " class=" + ev.Class
			}
			if ev.Detail != "" {
				line += "  " + ev.Detail
			}
			fmt.Println(line)
		}
	}
}
