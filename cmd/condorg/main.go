// Command condorg is the user-facing Condor-G tool: `condorg serve` runs
// the personal computation-management agent, and the remaining subcommands
// (submit, q, status, wait, rm, hold, release, log, stdout) talk to a
// running agent — the §4.1 "API and command line tools that allow the user
// to perform job management operations" with the look and feel of a local
// resource manager.
//
// Usage:
//
//	condorg serve -listen 127.0.0.1:7100 -sites host:p1,host:p2 [-mds addr] [-state dir] [-sync] [-max-submit-retries n]
//	condorg submit -agent 127.0.0.1:7100 [-owner u] [-site addr] program [args...]
//	condorg q      -agent 127.0.0.1:7100
//	condorg status -agent 127.0.0.1:7100 <job-id>
//	condorg wait   -agent 127.0.0.1:7100 <job-id>
//	condorg rm     -agent 127.0.0.1:7100 <job-id>
//	condorg hold   -agent 127.0.0.1:7100 <job-id> [reason]
//	condorg release -agent 127.0.0.1:7100 <job-id>
//	condorg log    -agent 127.0.0.1:7100 <job-id>
//	condorg stdout -agent 127.0.0.1:7100 <job-id>
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"condorg/internal/broker"
	"condorg/internal/condorg"
	"condorg/internal/journal"
	"condorg/internal/mds"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	args := os.Args[2:]
	switch cmd {
	case "serve":
		serve(args)
	case "submit":
		submit(args)
	case "sites":
		listSites(args)
	case "q", "status", "wait", "rm", "hold", "release", "log", "stdout":
		jobOp(cmd, args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: condorg <serve|submit|q|status|wait|rm|hold|release|log|stdout|sites> [flags]")
	os.Exit(2)
}

// listSites queries an MDS directory for advertised resources — what the
// personal broker sees.
func listSites(args []string) {
	fs := flag.NewFlagSet("sites", flag.ExitOnError)
	mdsAddr := fs.String("mds", "", "MDS directory address")
	constraint := fs.String("constraint", "", "ClassAd constraint expression")
	fs.Parse(args)
	if *mdsAddr == "" {
		log.Fatal("condorg sites: need -mds")
	}
	c := mds.NewClient(*mdsAddr, nil, nil)
	defer c.Close()
	ads, err := c.Query(*constraint)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %-22s %6s %6s %6s %8s %-10s\n",
		"NAME", "GATEKEEPER", "CPUS", "FREE", "QUEUE", "COST", "POLICY")
	for _, ad := range ads {
		fmt.Printf("%-12s %-22s %6d %6d %6d %8.2f %-10s\n",
			ad.EvalString("Name", "?"),
			ad.EvalString("GatekeeperAddr", "?"),
			ad.EvalInt("Cpus", 0),
			ad.EvalInt("FreeCpus", 0),
			ad.EvalInt("QueueDepth", 0),
			ad.EvalReal("Cost", 0),
			ad.EvalString("Policy", "?"))
	}
}

func serve(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:0", "control endpoint address")
	sites := fs.String("sites", "", "comma-separated gatekeeper addresses (round-robin)")
	mdsAddr := fs.String("mds", "", "MDS directory for brokered site selection")
	state := fs.String("state", "", "agent state directory (default: temp)")
	sync := fs.Bool("sync", false, "fsync the job queue journal before acknowledging submits (group commit)")
	maxSubmitRetries := fs.Int("max-submit-retries", 0, "hold a job after this many failed submission attempts (0 = default)")
	fs.Parse(args)

	var selector condorg.Selector
	switch {
	case *mdsAddr != "":
		b, err := broker.NewMDSBroker(*mdsAddr, "", "")
		if err != nil {
			log.Fatal(err)
		}
		defer b.Close()
		selector = b
	case *sites != "":
		selector = &condorg.RoundRobinSelector{Sites: strings.Split(*sites, ",")}
	default:
		log.Fatal("condorg serve: need -sites or -mds")
	}

	stateDir := *state
	if stateDir == "" {
		var err error
		stateDir, err = os.MkdirTemp("", "condorg-agent-*")
		if err != nil {
			log.Fatal(err)
		}
	}
	agent, err := condorg.NewAgent(condorg.AgentConfig{
		StateDir:         stateDir,
		Selector:         selector,
		Journal:          journal.StoreOptions{Sync: *sync},
		MaxSubmitRetries: *maxSubmitRetries,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer agent.Close()
	ctl, err := condorg.NewControlServerAddr(agent, *listen)
	if err != nil {
		log.Fatal(err)
	}
	defer ctl.Close()
	fmt.Printf("condorg agent: control endpoint %s (state %s)\n", ctl.Addr(), stateDir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("condorg agent: shutting down")
}

func client(fs *flag.FlagSet, args []string) (*condorg.ControlClient, []string) {
	agent := fs.String("agent", "127.0.0.1:7100", "agent control address")
	owner := fs.String("owner", "user", "submitting user")
	site := fs.String("site", "", "pin to one gatekeeper address")
	fs.Parse(args)
	cli := condorg.NewControlClient(*agent)
	rest := fs.Args()
	// Stash flag values for submit through package-level vars.
	submitOwner, submitSite = *owner, *site
	return cli, rest
}

var submitOwner, submitSite string

func submit(args []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	cli, rest := client(fs, args)
	defer cli.Close()
	if len(rest) < 1 {
		log.Fatal("condorg submit: need a program name")
	}
	id, err := cli.Submit(condorg.CtlSubmit{
		Owner:   submitOwner,
		Program: rest[0],
		Args:    rest[1:],
		Site:    submitSite,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(id)
}

func jobOp(cmd string, args []string) {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	cli, rest := client(fs, args)
	defer cli.Close()
	switch cmd {
	case "q":
		jobs, err := cli.Queue()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %-10s %-10s %-22s %s\n", "ID", "OWNER", "STATE", "SITE", "DETAIL")
		for _, j := range jobs {
			detail := j.Error
			if j.State == condorg.Held {
				detail = j.HoldReason
			}
			fmt.Printf("%-8s %-10s %-10s %-22s %s\n", j.ID, j.Owner, j.State, j.Site, detail)
		}
		return
	}
	if len(rest) < 1 {
		log.Fatalf("condorg %s: need a job id", cmd)
	}
	id := rest[0]
	switch cmd {
	case "status":
		info, err := cli.Status(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %s (site %s, resubmits %d, submit retries %d)\n",
			info.ID, info.State, info.Site, info.Resubmits, info.SubmitRetries)
		if info.State == condorg.Held && info.HoldReason != "" {
			fmt.Printf("  hold reason: %s\n", info.HoldReason)
		}
		if len(info.CancelPending) > 0 {
			fmt.Printf("  unacknowledged cancels: %d\n", len(info.CancelPending))
		}
		if info.Error != "" {
			fmt.Printf("  error: %s\n", info.Error)
		}
	case "wait":
		info, err := cli.Wait(id, time.Hour)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %s\n", info.ID, info.State)
		if info.State != condorg.Completed {
			os.Exit(1)
		}
	case "rm":
		if err := cli.Remove(id); err != nil {
			log.Fatal(err)
		}
	case "hold":
		reason := "held by user"
		if len(rest) > 1 {
			reason = strings.Join(rest[1:], " ")
		}
		if err := cli.Hold(id, reason); err != nil {
			log.Fatal(err)
		}
	case "release":
		if err := cli.Release(id); err != nil {
			log.Fatal(err)
		}
	case "log":
		events, err := cli.Log(id)
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range events {
			fmt.Printf("%s %-16s %s\n", e.Time.Format("15:04:05.000"), e.Code, e.Text)
		}
	case "stdout":
		data, err := cli.Stdout(id)
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(data)
	}
}
