module condorg

go 1.22
