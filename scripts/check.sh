#!/bin/sh
# Static hygiene gate: formatting and vet, run from the repo root.
# Used by the verify recipe and safe to run standalone; exits non-zero
# (with the offending files on stdout) on any violation.
set -eu
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted"
    exit 1
fi

go vet ./...
echo "check.sh: gofmt + go vet clean"
