#!/bin/sh
# Static hygiene gate: formatting, vet, and the journal corruption fuzz
# corpus, run from the repo root. Used by the verify recipe and safe to
# run standalone; exits non-zero (with the offending files on stdout) on
# any violation.
#
# Set CHECK_FUZZ_TIME (e.g. "30s") to also run a bounded randomized fuzz
# pass on top of the checked-in/seed corpus.
set -eu
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted"
    exit 1
fi

go vet ./...

# The multi-tenant API surface is public contract: every exported
# top-level identifier in the gateway, the wire substrate, the
# control-plane types, the glidein autoscaler, the credential manager,
# and the GSI layer must carry a doc comment. (A grep-level check, so it
# stays dependency-free; grouped decl blocks are out of scope.)
doc_lint_files=$(ls internal/gateway/*.go internal/wire/*.go \
    internal/condorg/control.go internal/condorg/controlv1.go \
    internal/condorg/tenancy.go internal/glidein/*.go \
    internal/credmgr/*.go internal/gsi/*.go | grep -v _test.go)
undocumented=$(awk '
    (/^(func|type|var|const) [A-Z]/ || /^func \([^)]*\) [A-Z]/) && prev !~ /^\/\// {
        printf "%s:%d: exported declaration without doc comment: %s\n", FILENAME, FNR, $0
    }
    { prev = $0 }
' $doc_lint_files)
if [ -n "$undocumented" ]; then
    echo "doc lint: exported identifiers without doc comments:" >&2
    echo "$undocumented"
    exit 1
fi

# Replay the FuzzStoreReplay seed corpus: every mutation of a chained
# journal must either verify+open or be refused+quarantined — never a
# silent partial replay.
go test -run FuzzStoreReplay -count=1 ./internal/journal/
if [ -n "${CHECK_FUZZ_TIME:-}" ]; then
    go test -run FuzzStoreReplay -fuzz FuzzStoreReplay -fuzztime "$CHECK_FUZZ_TIME" ./internal/journal/
fi

echo "check.sh: gofmt + go vet + fuzz corpus clean"
