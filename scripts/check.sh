#!/bin/sh
# Static hygiene gate: formatting, vet, and the journal corruption fuzz
# corpus, run from the repo root. Used by the verify recipe and safe to
# run standalone; exits non-zero (with the offending files on stdout) on
# any violation.
#
# Set CHECK_FUZZ_TIME (e.g. "30s") to also run a bounded randomized fuzz
# pass on top of the checked-in/seed corpus.
set -eu
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted"
    exit 1
fi

go vet ./...

# Replay the FuzzStoreReplay seed corpus: every mutation of a chained
# journal must either verify+open or be refused+quarantined — never a
# silent partial replay.
go test -run FuzzStoreReplay -count=1 ./internal/journal/
if [ -n "${CHECK_FUZZ_TIME:-}" ]; then
    go test -run FuzzStoreReplay -fuzz FuzzStoreReplay -fuzztime "$CHECK_FUZZ_TIME" ./internal/journal/
fi

echo "check.sh: gofmt + go vet + fuzz corpus clean"
