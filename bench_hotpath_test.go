package benchmarks

// Agent hot-path benchmarks: submit-burst throughput through the
// persistent-queue persist path, and the completion-event -> Wait-return
// notification latency. See EXPERIMENTS.md for recorded numbers.

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"condorg/internal/condorg"
	"condorg/internal/gram"
	"condorg/internal/journal"
)

func benchAgentJournal(b *testing.B, site *gram.Site, opts journal.StoreOptions) *condorg.Agent {
	b.Helper()
	agent, err := condorg.NewAgent(condorg.AgentConfig{
		StateDir: mustTempDir(b, "agent"),
		Selector: condorg.StaticSelector(site.GatekeeperAddr()),
		Probe:    condorg.ProbeOptions{Interval: 30 * time.Millisecond},
		Journal:  opts,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(agent.Close)
	return agent
}

// BenchmarkSubmitBurst measures agent submit throughput under concurrency:
// 8 workers submit jobs to a fast site as quickly as they can. Submit
// returns once the job is journaled in the persistent queue, so this is
// the §4.2 "stable storage" persist hot path. Sub-benchmarks cover the
// journaling modes: async (the default), sync with one fsync per delta
// (the historical durable path), and sync with group commit.
func BenchmarkSubmitBurst(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts journal.StoreOptions
	}{
		{"async", journal.StoreOptions{}},
		{"sync-nogroup", journal.StoreOptions{Sync: true, NoGroupCommit: true}},
		{"sync-group", journal.StoreOptions{Sync: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			benchSubmitBurst(b, mode.opts)
		})
	}
}

func benchSubmitBurst(b *testing.B, opts journal.StoreOptions) {
	var runs atomic.Int64
	site := benchSite(b, "burst", &runs, "", "")
	agent := benchAgentJournal(b, site, opts)
	const workers = 8
	b.ResetTimer()
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range jobs {
				if _, err := agent.Submit(condorg.SubmitRequest{
					Owner: "bench", Executable: gram.Program("noop"),
				}); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	for i := 0; i < b.N; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := agent.WaitAll(ctx); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWaitLatency measures the latency from a job's terminal state
// change to a blocked Wait returning. The terminal transition is driven
// locally (Remove) so the number isolates the agent's notification path
// rather than site round-trips.
func BenchmarkWaitLatency(b *testing.B) {
	var runs atomic.Int64
	site := benchSite(b, "waitlat", &runs, "", "")
	agent := benchAgent(b, site)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		id, err := agent.Submit(condorg.SubmitRequest{
			Owner: "bench", Executable: gram.Program("linger"), Args: []string{"10m"},
		})
		if err != nil {
			b.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		ready := make(chan struct{})
		done := make(chan error, 1)
		go func() {
			close(ready)
			_, err := agent.Wait(ctx, id)
			done <- err
		}()
		<-ready
		time.Sleep(2 * time.Millisecond) // let the waiter block
		b.StartTimer()
		if err := agent.Remove(id); err != nil {
			b.Fatal(err)
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		cancel()
		b.StartTimer()
	}
}
