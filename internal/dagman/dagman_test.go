package dagman

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

const cmsDag = `
# CMS-style pipeline
JOB sim1 simulate --events 500
JOB sim2 simulate --events 500
JOB transfer gridftp-put
JOB reco reconstruct
PARENT sim1 sim2 CHILD transfer
PARENT transfer CHILD reco
RETRY transfer 2
`

func TestParse(t *testing.T) {
	d, err := Parse(cmsDag)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Nodes) != 4 {
		t.Fatalf("nodes = %d", len(d.Nodes))
	}
	if got := d.Nodes["transfer"].Retries; got != 2 {
		t.Fatalf("transfer retries = %d", got)
	}
	if got := d.Nodes["reco"].Parents; len(got) != 1 || got[0] != "transfer" {
		t.Fatalf("reco parents = %v", got)
	}
	if got := d.Roots(); len(got) != 2 || got[0] != "sim1" || got[1] != "sim2" {
		t.Fatalf("roots = %v", got)
	}
	if d.Nodes["sim1"].Spec != "simulate --events 500" {
		t.Fatalf("spec = %q", d.Nodes["sim1"].Spec)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"JOB a",                         // no spec
		"JOB a x\nJOB a y",              // duplicate
		"JOB a x\nPARENT a CHILD",       // no children
		"JOB a x\nPARENT CHILD a",       // no parents
		"JOB a x\nPARENT ghost CHILD a", // unknown parent
		"JOB a x\nPARENT a CHILD ghost", // unknown child
		"JOB a x\nRETRY a lots",         // bad retry
		"JOB a x\nRETRY ghost 2",        // unknown retry
		"JOB a x\nPRIORITY a high",      // bad priority
		"FROB a x",                      // unknown keyword
		"JOB a x\nJOB b y\nPARENT a CHILD b\nPARENT b CHILD a", // cycle
		"JOB a x\nPARENT a CHILD a",                            // self-cycle
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseDoneMarker(t *testing.T) {
	d, err := Parse("JOB a spec-a DONE\nJOB b spec-b\nPARENT a CHILD b")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Nodes["a"].Done || d.Nodes["b"].Done {
		t.Fatal("DONE marker misparsed")
	}
}

func TestStringRoundTrip(t *testing.T) {
	d, _ := Parse(cmsDag)
	again, err := Parse(d.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, d.String())
	}
	if len(again.Nodes) != len(d.Nodes) {
		t.Fatal("round trip lost nodes")
	}
	if again.Nodes["transfer"].Retries != 2 {
		t.Fatal("round trip lost retries")
	}
	if len(again.Nodes["transfer"].Parents) != 2 {
		t.Fatal("round trip lost edges")
	}
}

// runDAG executes with an in-memory submit function that records order.
func runDAG(t *testing.T, d *DAG, fail map[string]int, maxActive int) (*Result, []string) {
	t.Helper()
	var mu sync.Mutex
	var order []string
	attempts := map[string]int{}
	res, err := Execute(context.Background(), d, ExecConfig{
		MaxActive: maxActive,
		Submit: func(_ context.Context, n *Node) error {
			mu.Lock()
			order = append(order, n.Name)
			attempts[n.Name]++
			failures := fail[n.Name]
			shouldFail := attempts[n.Name] <= failures
			mu.Unlock()
			time.Sleep(time.Millisecond)
			if shouldFail {
				return errors.New("node failed")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, order
}

func TestExecuteRespectsDependencies(t *testing.T) {
	d, _ := Parse(cmsDag)
	res, order := runDAG(t, d, nil, 0)
	if !res.Succeeded() {
		t.Fatalf("failed nodes: %v", res.Failed)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	if pos["transfer"] < pos["sim1"] || pos["transfer"] < pos["sim2"] {
		t.Fatalf("transfer ran before its parents: %v", order)
	}
	if pos["reco"] < pos["transfer"] {
		t.Fatalf("reco ran before transfer: %v", order)
	}
}

func TestExecuteRetries(t *testing.T) {
	d, _ := Parse(cmsDag)
	// transfer fails twice (RETRY 2 allows exactly that), then succeeds.
	res, _ := runDAG(t, d, map[string]int{"transfer": 2}, 0)
	if !res.Succeeded() {
		t.Fatalf("retryable failure not recovered: %v", res.Failed)
	}
	if res.Attempts["transfer"] != 3 {
		t.Fatalf("transfer attempts = %d, want 3", res.Attempts["transfer"])
	}
}

func TestExecuteFailureAbandonsDescendants(t *testing.T) {
	d, _ := Parse(cmsDag)
	// transfer fails 3 times: one more than retries allow.
	res, _ := runDAG(t, d, map[string]int{"transfer": 3}, 0)
	if res.Succeeded() {
		t.Fatal("should have failed")
	}
	if res.States["sim1"] != NodeDone || res.States["sim2"] != NodeDone {
		t.Fatal("independent parents should have completed")
	}
	if res.States["transfer"] != NodeFailed || res.States["reco"] != NodeFailed {
		t.Fatalf("failure propagation wrong: transfer=%v reco=%v",
			res.States["transfer"], res.States["reco"])
	}
	if len(res.Failed) != 2 {
		t.Fatalf("failed = %v", res.Failed)
	}
}

func TestRescueDAGResumes(t *testing.T) {
	d, _ := Parse(cmsDag)
	res, _ := runDAG(t, d, map[string]int{"transfer": 3}, 0)
	rescue := Rescue(d, res)
	if !rescue.Nodes["sim1"].Done || rescue.Nodes["transfer"].Done {
		t.Fatal("rescue DONE markers wrong")
	}
	// Rescue DAG round-trips through text, as on disk.
	reparsed, err := Parse(rescue.String())
	if err != nil {
		t.Fatal(err)
	}
	res2, order := runDAG(t, reparsed, nil, 0)
	if !res2.Succeeded() {
		t.Fatalf("rescue run failed: %v", res2.Failed)
	}
	// Only the unfinished nodes ran.
	for _, n := range order {
		if n == "sim1" || n == "sim2" {
			t.Fatalf("rescue re-ran completed node %s", n)
		}
	}
}

func TestThrottle(t *testing.T) {
	var lines []string
	for i := 0; i < 20; i++ {
		lines = append(lines, fmt.Sprintf("JOB n%d spec", i))
	}
	d, err := Parse(joinLines(lines))
	if err != nil {
		t.Fatal(err)
	}
	var active, maxActive atomic.Int64
	_, err = Execute(context.Background(), d, ExecConfig{
		MaxActive: 3,
		Submit: func(context.Context, *Node) error {
			cur := active.Add(1)
			for {
				prev := maxActive.Load()
				if cur <= prev || maxActive.CompareAndSwap(prev, cur) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			active.Add(-1)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxActive.Load() > 3 {
		t.Fatalf("throttle exceeded: %d concurrent", maxActive.Load())
	}
}

func joinLines(lines []string) string {
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}

func TestPriorityOrdersReadyNodes(t *testing.T) {
	d, err := Parse("JOB low spec\nJOB high spec\nPRIORITY high 10")
	if err != nil {
		t.Fatal(err)
	}
	var first string
	var mu sync.Mutex
	Execute(context.Background(), d, ExecConfig{
		MaxActive: 1,
		Submit: func(_ context.Context, n *Node) error {
			mu.Lock()
			if first == "" {
				first = n.Name
			}
			mu.Unlock()
			return nil
		},
	})
	if first != "high" {
		t.Fatalf("first launched = %s, want high", first)
	}
}

func TestContextCancellation(t *testing.T) {
	d, _ := Parse("JOB a spec\nJOB b spec\nPARENT a CHILD b")
	ctx, cancel := context.WithCancel(context.Background())
	res, err := Execute(ctx, d, ExecConfig{
		Submit: func(ctx context.Context, n *Node) error {
			cancel()
			return nil
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	// b never ran.
	if res.Attempts["b"] != 0 {
		t.Fatal("child ran after cancellation")
	}
}

func TestEventCallbacks(t *testing.T) {
	d, _ := Parse("JOB a spec")
	var mu sync.Mutex
	var events []NodeState
	Execute(context.Background(), d, ExecConfig{
		Submit: func(context.Context, *Node) error { return nil },
		OnEvent: func(_ string, st NodeState, _ int) {
			mu.Lock()
			events = append(events, st)
			mu.Unlock()
		},
	})
	if len(events) != 2 || events[0] != NodeRunning || events[1] != NodeDone {
		t.Fatalf("events = %v", events)
	}
}

// Property: for random layered DAGs, execution order respects every edge
// and every node runs exactly once.
func TestQuickTopologicalExecution(t *testing.T) {
	f := func(widths []uint8, edgeMask uint64) bool {
		// Build 2-4 layers with 1-4 nodes each.
		layers := len(widths)%3 + 2
		var lines []string
		var layerNodes [][]string
		id := 0
		for l := 0; l < layers; l++ {
			w := 1
			if l < len(widths) {
				w = int(widths[l])%4 + 1
			}
			var row []string
			for i := 0; i < w; i++ {
				name := fmt.Sprintf("n%d", id)
				id++
				lines = append(lines, "JOB "+name+" spec")
				row = append(row, name)
			}
			layerNodes = append(layerNodes, row)
		}
		bit := 0
		for l := 1; l < layers; l++ {
			for _, p := range layerNodes[l-1] {
				for _, c := range layerNodes[l] {
					if edgeMask&(1<<uint(bit%64)) != 0 {
						lines = append(lines, "PARENT "+p+" CHILD "+c)
					}
					bit++
				}
			}
		}
		d, err := Parse(joinLines(lines))
		if err != nil {
			return false
		}
		var mu sync.Mutex
		var order []string
		res, err := Execute(context.Background(), d, ExecConfig{
			Submit: func(_ context.Context, n *Node) error {
				mu.Lock()
				order = append(order, n.Name)
				mu.Unlock()
				return nil
			},
		})
		if err != nil || !res.Succeeded() || len(order) != len(d.Nodes) {
			return false
		}
		pos := map[string]int{}
		for i, n := range order {
			pos[n] = i
		}
		for name, n := range d.Nodes {
			for _, c := range n.Children {
				if pos[c] < pos[name] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
