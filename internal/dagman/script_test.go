package dagman

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestParseScripts(t *testing.T) {
	d, err := Parse(`
JOB a run-a
SCRIPT PRE a stage-in --from repo
SCRIPT POST a check-output --strict
`)
	if err != nil {
		t.Fatal(err)
	}
	n := d.Nodes["a"]
	if n.PreScript != "stage-in --from repo" || n.PostScript != "check-output --strict" {
		t.Fatalf("scripts: %q / %q", n.PreScript, n.PostScript)
	}
	// Round-trips through text.
	again, err := Parse(d.String())
	if err != nil {
		t.Fatal(err)
	}
	if again.Nodes["a"].PreScript != n.PreScript || again.Nodes["a"].PostScript != n.PostScript {
		t.Fatal("scripts lost in round trip")
	}
	for _, bad := range []string{
		"JOB a x\nSCRIPT PRE a",        // no script body
		"JOB a x\nSCRIPT DURING a cmd", // bad kind
		"SCRIPT PRE ghost cmd",         // unknown node
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestPreAndPostOrdering(t *testing.T) {
	d, _ := Parse("JOB a job-a\nSCRIPT PRE a pre-a\nSCRIPT POST a post-a")
	var mu sync.Mutex
	var order []string
	record := func(s string) {
		mu.Lock()
		order = append(order, s)
		mu.Unlock()
	}
	res, err := Execute(context.Background(), d, ExecConfig{
		Submit: func(_ context.Context, n *Node) error {
			record("job")
			return nil
		},
		RunScript: func(_ context.Context, _ *Node, script string, jobErr error) error {
			record(script)
			return nil
		},
	})
	if err != nil || !res.Succeeded() {
		t.Fatalf("err=%v failed=%v", err, res.Failed)
	}
	want := "pre-a,job,post-a"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("order = %s, want %s", got, want)
	}
}

func TestPreFailureFailsAttemptAndRetries(t *testing.T) {
	d, _ := Parse("JOB a job-a\nSCRIPT PRE a pre-a\nRETRY a 1")
	attempts := 0
	var mu sync.Mutex
	res, _ := Execute(context.Background(), d, ExecConfig{
		Submit: func(context.Context, *Node) error { return nil },
		RunScript: func(_ context.Context, _ *Node, _ string, _ error) error {
			mu.Lock()
			attempts++
			a := attempts
			mu.Unlock()
			if a == 1 {
				return errors.New("stage-in failed")
			}
			return nil
		},
	})
	if !res.Succeeded() {
		t.Fatalf("retry after PRE failure did not recover: %v", res.Failed)
	}
	if attempts != 2 {
		t.Fatalf("PRE ran %d times, want 2", attempts)
	}
}

func TestPostDecidesOutcome(t *testing.T) {
	// Job fails, POST succeeds: the node succeeds (DAGMan semantics —
	// the POST script recovered or deemed the output acceptable).
	d, _ := Parse("JOB a job-a\nSCRIPT POST a check")
	var sawJobErr error
	res, err := Execute(context.Background(), d, ExecConfig{
		Submit: func(context.Context, *Node) error { return errors.New("job exploded") },
		RunScript: func(_ context.Context, _ *Node, _ string, jobErr error) error {
			sawJobErr = jobErr
			return nil
		},
	})
	if err != nil || !res.Succeeded() {
		t.Fatalf("POST success should rescue the node: %v", res.Failed)
	}
	if sawJobErr == nil || !strings.Contains(sawJobErr.Error(), "exploded") {
		t.Fatalf("POST did not see the job error: %v", sawJobErr)
	}

	// Job succeeds, POST fails: the node fails.
	d2, _ := Parse("JOB a job-a\nSCRIPT POST a check")
	res2, _ := Execute(context.Background(), d2, ExecConfig{
		Submit:    func(context.Context, *Node) error { return nil },
		RunScript: func(context.Context, *Node, string, error) error { return errors.New("bad output") },
	})
	if res2.Succeeded() {
		t.Fatal("POST failure should fail the node")
	}
}

func TestScriptWithoutRunnerFails(t *testing.T) {
	d, _ := Parse("JOB a job-a\nSCRIPT PRE a pre")
	res, _ := Execute(context.Background(), d, ExecConfig{
		Submit: func(context.Context, *Node) error { return nil },
	})
	if res.Succeeded() {
		t.Fatal("SCRIPT without RunScript should fail the node")
	}
}
