package dagman

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// NodeState tracks one node through an execution.
type NodeState int

const (
	NodeWaiting NodeState = iota
	NodeReady
	NodeRunning
	NodeDone
	NodeFailed
)

func (s NodeState) String() string {
	switch s {
	case NodeWaiting:
		return "waiting"
	case NodeReady:
		return "ready"
	case NodeRunning:
		return "running"
	case NodeDone:
		return "done"
	case NodeFailed:
		return "failed"
	}
	return "unknown"
}

// SubmitFunc launches a node and blocks until it finishes, returning nil on
// success. DAGMan drives Condor-G: a typical SubmitFunc calls Agent.Submit
// then Agent.Wait.
type SubmitFunc func(ctx context.Context, node *Node) error

// ScriptFunc runs a node's PRE or POST script. jobErr is nil for PRE; for
// POST it carries the job's result so the script can inspect it.
type ScriptFunc func(ctx context.Context, node *Node, script string, jobErr error) error

// ExecConfig configures an execution.
type ExecConfig struct {
	// Submit runs one node to completion.
	Submit SubmitFunc
	// RunScript executes PRE/POST scripts; required when the DAG uses
	// SCRIPT lines. POST semantics follow DAGMan: the POST script runs
	// even when the job failed, and its result decides the node outcome.
	RunScript ScriptFunc
	// MaxActive throttles concurrently running nodes (the CMS DAG uses
	// this to "make sure that local disk buffers do not overflow");
	// 0 = unlimited.
	MaxActive int
	// OnEvent, if set, observes node state transitions.
	OnEvent func(node string, state NodeState, attempt int)
}

// Result summarizes an execution.
type Result struct {
	States   map[string]NodeState
	Attempts map[string]int
	// Failed lists failed nodes (after retries), sorted.
	Failed []string
}

// Succeeded reports whether every node completed.
func (r *Result) Succeeded() bool { return len(r.Failed) == 0 }

// Execute runs the DAG: roots first, children as parents complete, with
// throttling and retries. On node failure its descendants are abandoned but
// independent branches keep running, exactly like DAGMan. The returned
// Result can be turned into a rescue DAG with Rescue.
func Execute(ctx context.Context, d *DAG, cfg ExecConfig) (*Result, error) {
	if cfg.Submit == nil {
		return nil, fmt.Errorf("dagman: ExecConfig.Submit required")
	}
	type doneMsg struct {
		name string
		err  error
	}
	res := &Result{
		States:   make(map[string]NodeState, len(d.Nodes)),
		Attempts: make(map[string]int, len(d.Nodes)),
	}
	pendingParents := make(map[string]int, len(d.Nodes))
	for _, name := range d.Order {
		n := d.Nodes[name]
		if n.Done {
			res.States[name] = NodeDone
			continue
		}
		res.States[name] = NodeWaiting
		count := 0
		for _, p := range n.Parents {
			if !d.Nodes[p].Done {
				count++
			}
		}
		pendingParents[name] = count
	}

	var mu sync.Mutex
	doneCh := make(chan doneMsg)
	running := 0
	emit := func(name string, st NodeState, attempt int) {
		if cfg.OnEvent != nil {
			cfg.OnEvent(name, st, attempt)
		}
	}

	// ready returns runnable nodes in priority-then-declaration order.
	ready := func() []string {
		var out []string
		for _, name := range d.Order {
			if res.States[name] == NodeWaiting && pendingParents[name] == 0 {
				out = append(out, name)
			}
		}
		sort.SliceStable(out, func(i, j int) bool {
			return d.Nodes[out[i]].Priority > d.Nodes[out[j]].Priority
		})
		return out
	}

	launch := func(name string) {
		res.States[name] = NodeRunning
		res.Attempts[name]++
		attempt := res.Attempts[name]
		running++
		emit(name, NodeRunning, attempt)
		go func() {
			node := d.Nodes[name]
			err := runNodeCycle(ctx, node, cfg)
			doneCh <- doneMsg{name, err}
		}()
	}

	// abandon marks every descendant of a failed node as failed-by-parent
	// so the loop does not wait for them.
	var abandon func(name string)
	abandon = func(name string) {
		for _, c := range d.Nodes[name].Children {
			if res.States[c] == NodeWaiting {
				res.States[c] = NodeFailed
				emit(c, NodeFailed, 0)
				abandon(c)
			}
		}
	}

	mu.Lock()
	for {
		for _, name := range ready() {
			if cfg.MaxActive > 0 && running >= cfg.MaxActive {
				break
			}
			launch(name)
		}
		if running == 0 {
			break
		}
		mu.Unlock()
		select {
		case msg := <-doneCh:
			mu.Lock()
			running--
			node := d.Nodes[msg.name]
			if msg.err == nil {
				res.States[msg.name] = NodeDone
				emit(msg.name, NodeDone, res.Attempts[msg.name])
				for _, c := range node.Children {
					pendingParents[c]--
				}
			} else if res.Attempts[msg.name] <= node.Retries && ctx.Err() == nil {
				// Retry: back to waiting; the loop relaunches it.
				res.States[msg.name] = NodeWaiting
				emit(msg.name, NodeReady, res.Attempts[msg.name])
			} else {
				res.States[msg.name] = NodeFailed
				emit(msg.name, NodeFailed, res.Attempts[msg.name])
				abandon(msg.name)
			}
		case <-ctx.Done():
			// Drain in-flight nodes before returning.
			mu.Lock()
			for running > 0 {
				mu.Unlock()
				msg := <-doneCh
				mu.Lock()
				running--
				if msg.err == nil {
					res.States[msg.name] = NodeDone
				} else {
					res.States[msg.name] = NodeFailed
				}
			}
			finishResult(d, res)
			mu.Unlock()
			return res, ctx.Err()
		}
	}
	finishResult(d, res)
	mu.Unlock()
	return res, nil
}

func finishResult(d *DAG, res *Result) {
	for _, name := range d.Order {
		st := res.States[name]
		if st != NodeDone {
			if st == NodeWaiting || st == NodeRunning || st == NodeReady {
				res.States[name] = NodeFailed
			}
			res.Failed = append(res.Failed, name)
		}
	}
	sort.Strings(res.Failed)
}

// runNodeCycle executes one attempt: PRE script, the job, POST script.
// When a POST script exists, its result is the node's result (DAGMan
// semantics); otherwise the job's result stands.
func runNodeCycle(ctx context.Context, node *Node, cfg ExecConfig) error {
	if node.PreScript != "" {
		if cfg.RunScript == nil {
			return fmt.Errorf("dagman: node %s has a PRE script but no RunScript configured", node.Name)
		}
		if err := cfg.RunScript(ctx, node, node.PreScript, nil); err != nil {
			return fmt.Errorf("dagman: PRE %s: %w", node.Name, err)
		}
	}
	jobErr := cfg.Submit(ctx, node)
	if node.PostScript != "" {
		if cfg.RunScript == nil {
			return fmt.Errorf("dagman: node %s has a POST script but no RunScript configured", node.Name)
		}
		if err := cfg.RunScript(ctx, node, node.PostScript, jobErr); err != nil {
			return fmt.Errorf("dagman: POST %s: %w", node.Name, err)
		}
		return nil // POST succeeded: the node succeeds even if the job failed
	}
	return jobErr
}

// Rescue builds the rescue DAG for a partial run: completed nodes are
// marked DONE so a rerun picks up where the failure stopped.
func Rescue(d *DAG, res *Result) *DAG {
	rescue := &DAG{Nodes: make(map[string]*Node, len(d.Nodes)), Order: append([]string(nil), d.Order...)}
	for name, n := range d.Nodes {
		copied := *n
		copied.Parents = append([]string(nil), n.Parents...)
		copied.Children = append([]string(nil), n.Children...)
		copied.Done = res.States[name] == NodeDone
		rescue.Nodes[name] = &copied
	}
	return rescue
}
