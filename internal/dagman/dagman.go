// Package dagman implements the directed-acyclic-graph job manager used by
// the CMS case study of §6.2 ("a two-node DAG of jobs ... the execution of
// these jobs is also controlled by a DAG") and cited in §7 as a Condor-G
// capability Nimrod lacks ("inter-job dependencies"). It parses the classic
// DAGMan description syntax, executes nodes through a caller-supplied
// submit function with throttling and per-node retries, and emits a rescue
// DAG when a run fails partway.
package dagman

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Node is one DAG vertex.
type Node struct {
	Name     string
	Spec     string // opaque payload handed to the submit function
	Parents  []string
	Children []string
	Retries  int
	Done     bool // pre-satisfied (from a rescue DAG)
	// Priority breaks ties among simultaneously-ready nodes (higher
	// first); equal priorities preserve file order.
	Priority int
	// PreScript runs before the node's job is submitted; a PRE failure
	// fails the attempt (retries cover the whole PRE→job→POST cycle).
	PreScript string
	// PostScript runs after the node's job finishes (even when the job
	// failed); when present, the POST result determines the node's
	// outcome — classic DAGMan semantics.
	PostScript string
}

// DAG is a parsed job graph.
type DAG struct {
	Nodes map[string]*Node
	Order []string // declaration order
}

// Parse reads the DAGMan description syntax:
//
//	JOB <name> <spec...> [DONE]
//	PARENT <p1> [p2...] CHILD <c1> [c2...]
//	RETRY <name> <n>
//	PRIORITY <name> <n>
//	SCRIPT PRE|POST <name> <script...>
//	# comments and blank lines ignored
func Parse(src string) (*DAG, error) {
	d := &DAG{Nodes: make(map[string]*Node)}
	for ln, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		keyword := strings.ToUpper(fields[0])
		switch keyword {
		case "JOB":
			if len(fields) < 3 {
				return nil, fmt.Errorf("dagman: line %d: JOB needs a name and spec", ln+1)
			}
			name := fields[1]
			if _, dup := d.Nodes[name]; dup {
				return nil, fmt.Errorf("dagman: line %d: duplicate node %q", ln+1, name)
			}
			specFields := fields[2:]
			done := false
			if strings.ToUpper(specFields[len(specFields)-1]) == "DONE" {
				done = true
				specFields = specFields[:len(specFields)-1]
			}
			if len(specFields) == 0 {
				return nil, fmt.Errorf("dagman: line %d: JOB %s has no spec", ln+1, name)
			}
			d.Nodes[name] = &Node{Name: name, Spec: strings.Join(specFields, " "), Done: done}
			d.Order = append(d.Order, name)
		case "PARENT":
			idx := -1
			for i, f := range fields {
				if strings.ToUpper(f) == "CHILD" {
					idx = i
					break
				}
			}
			if idx < 2 || idx == len(fields)-1 {
				return nil, fmt.Errorf("dagman: line %d: PARENT ... CHILD ... malformed", ln+1)
			}
			parents, children := fields[1:idx], fields[idx+1:]
			for _, p := range parents {
				pn, ok := d.Nodes[p]
				if !ok {
					return nil, fmt.Errorf("dagman: line %d: unknown parent %q", ln+1, p)
				}
				for _, c := range children {
					cn, ok := d.Nodes[c]
					if !ok {
						return nil, fmt.Errorf("dagman: line %d: unknown child %q", ln+1, c)
					}
					pn.Children = append(pn.Children, c)
					cn.Parents = append(cn.Parents, p)
				}
			}
		case "RETRY":
			if len(fields) != 3 {
				return nil, fmt.Errorf("dagman: line %d: RETRY <name> <n>", ln+1)
			}
			n, ok := d.Nodes[fields[1]]
			if !ok {
				return nil, fmt.Errorf("dagman: line %d: unknown node %q", ln+1, fields[1])
			}
			r, err := strconv.Atoi(fields[2])
			if err != nil || r < 0 {
				return nil, fmt.Errorf("dagman: line %d: bad retry count %q", ln+1, fields[2])
			}
			n.Retries = r
		case "SCRIPT":
			if len(fields) < 4 {
				return nil, fmt.Errorf("dagman: line %d: SCRIPT PRE|POST <name> <script>", ln+1)
			}
			kind := strings.ToUpper(fields[1])
			n, ok := d.Nodes[fields[2]]
			if !ok {
				return nil, fmt.Errorf("dagman: line %d: unknown node %q", ln+1, fields[2])
			}
			script := strings.Join(fields[3:], " ")
			switch kind {
			case "PRE":
				n.PreScript = script
			case "POST":
				n.PostScript = script
			default:
				return nil, fmt.Errorf("dagman: line %d: SCRIPT kind %q (want PRE or POST)", ln+1, fields[1])
			}
		case "PRIORITY":
			if len(fields) != 3 {
				return nil, fmt.Errorf("dagman: line %d: PRIORITY <name> <n>", ln+1)
			}
			n, ok := d.Nodes[fields[1]]
			if !ok {
				return nil, fmt.Errorf("dagman: line %d: unknown node %q", ln+1, fields[1])
			}
			p, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("dagman: line %d: bad priority %q", ln+1, fields[2])
			}
			n.Priority = p
		default:
			return nil, fmt.Errorf("dagman: line %d: unknown keyword %q", ln+1, fields[0])
		}
	}
	if err := d.checkAcyclic(); err != nil {
		return nil, err
	}
	return d, nil
}

// checkAcyclic rejects graphs with cycles.
func (d *DAG) checkAcyclic() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(d.Nodes))
	var visit func(string) error
	visit = func(n string) error {
		switch color[n] {
		case gray:
			return fmt.Errorf("dagman: cycle involving %q", n)
		case black:
			return nil
		}
		color[n] = gray
		for _, c := range d.Nodes[n].Children {
			if err := visit(c); err != nil {
				return err
			}
		}
		color[n] = black
		return nil
	}
	for _, name := range d.Order {
		if err := visit(name); err != nil {
			return err
		}
	}
	return nil
}

// Roots returns nodes with no parents, in declaration order.
func (d *DAG) Roots() []string {
	var out []string
	for _, name := range d.Order {
		if len(d.Nodes[name].Parents) == 0 {
			out = append(out, name)
		}
	}
	return out
}

// String renders the DAG back into its description syntax (stable order).
func (d *DAG) String() string {
	var sb strings.Builder
	for _, name := range d.Order {
		n := d.Nodes[name]
		fmt.Fprintf(&sb, "JOB %s %s", n.Name, n.Spec)
		if n.Done {
			sb.WriteString(" DONE")
		}
		sb.WriteString("\n")
		if n.Retries > 0 {
			fmt.Fprintf(&sb, "RETRY %s %d\n", n.Name, n.Retries)
		}
		if n.Priority != 0 {
			fmt.Fprintf(&sb, "PRIORITY %s %d\n", n.Name, n.Priority)
		}
		if n.PreScript != "" {
			fmt.Fprintf(&sb, "SCRIPT PRE %s %s\n", n.Name, n.PreScript)
		}
		if n.PostScript != "" {
			fmt.Fprintf(&sb, "SCRIPT POST %s %s\n", n.Name, n.PostScript)
		}
	}
	for _, name := range d.Order {
		n := d.Nodes[name]
		if len(n.Children) > 0 {
			children := append([]string(nil), n.Children...)
			sort.Strings(children)
			fmt.Fprintf(&sb, "PARENT %s CHILD %s\n", n.Name, strings.Join(children, " "))
		}
	}
	return sb.String()
}
