package classad

import (
	"fmt"
	"testing"
	"testing/quick"
)

func machineAd(name string, mem int64, arch string) *Ad {
	ad := New()
	ad.SetString("MyType", "Machine")
	ad.SetString("Name", name)
	ad.SetInt("Memory", mem)
	ad.SetString("Arch", arch)
	ad.SetExpr("Requirements", MustParseExpr("TARGET.ImageSize <= MY.Memory"))
	return ad
}

func jobAd(image int64, arch string) *Ad {
	ad := New()
	ad.SetString("MyType", "Job")
	ad.SetInt("ImageSize", image)
	ad.SetString("WantArch", arch)
	ad.SetExpr("Requirements", MustParseExpr("TARGET.Arch == MY.WantArch"))
	ad.SetExpr("Rank", MustParseExpr("TARGET.Memory"))
	return ad
}

func TestMatchBothDirections(t *testing.T) {
	m := machineAd("m1", 512, "x86_64")
	j := jobAd(256, "x86_64")
	if !Match(j, m) {
		t.Fatal("compatible job/machine should match")
	}
	// Job violates machine's requirements.
	big := jobAd(1024, "x86_64")
	if Match(big, m) {
		t.Fatal("job with ImageSize > machine Memory must not match")
	}
	// Machine violates job's requirements.
	sparc := machineAd("m2", 2048, "sparc")
	if Match(j, sparc) {
		t.Fatal("arch mismatch must not match")
	}
}

func TestMissingRequirementsIsTrue(t *testing.T) {
	a, b := New(), New()
	if !Match(a, b) {
		t.Fatal("two empty ads should match (no constraints)")
	}
}

func TestUndefinedRequirementsIsNoMatch(t *testing.T) {
	a := New()
	a.SetExpr("Requirements", MustParseExpr("TARGET.NoSuchAttr > 5"))
	if Match(a, New()) {
		t.Fatal("undefined Requirements must be treated as no-match")
	}
}

func TestMatchListRanking(t *testing.T) {
	machines := []*Ad{
		machineAd("small", 128, "x86_64"),
		machineAd("big", 4096, "x86_64"),
		machineAd("medium", 512, "x86_64"),
	}
	j := jobAd(100, "x86_64")
	list := MatchList(j, machines)
	if len(list) != 3 {
		t.Fatalf("matches = %d, want 3", len(list))
	}
	wantOrder := []string{"big", "medium", "small"}
	for i, w := range wantOrder {
		if got := list[i].Ad.EvalString("Name", ""); got != w {
			t.Fatalf("rank order[%d] = %s, want %s", i, got, w)
		}
	}
	if best := BestMatch(j, machines); best.EvalString("Name", "") != "big" {
		t.Fatalf("BestMatch = %s, want big", best.EvalString("Name", ""))
	}
}

func TestBestMatchNone(t *testing.T) {
	j := jobAd(100, "mips")
	if best := BestMatch(j, []*Ad{machineAd("m", 512, "x86_64")}); best != nil {
		t.Fatal("BestMatch with no candidates should be nil")
	}
}

func TestRankOfNonNumeric(t *testing.T) {
	a := New()
	a.SetExpr("Rank", MustParseExpr(`"high"`))
	if r := RankOf(a, New()); r != 0 {
		t.Fatalf("non-numeric rank = %v, want 0", r)
	}
	b := New()
	b.SetExpr("Rank", MustParseExpr("TARGET.Fast == true"))
	fast := New()
	fast.SetBool("Fast", true)
	if r := RankOf(b, fast); r != 1 {
		t.Fatalf("boolean-true rank = %v, want 1", r)
	}
}

// Property: matchmaking is symmetric — Match(a,b) == Match(b,a).
func TestQuickMatchSymmetry(t *testing.T) {
	f := func(memA, memB uint16, imgA, imgB uint16) bool {
		a := New()
		a.SetInt("Memory", int64(memA))
		a.SetInt("ImageSize", int64(imgA))
		a.SetExpr("Requirements", MustParseExpr("TARGET.ImageSize <= MY.Memory"))
		b := New()
		b.SetInt("Memory", int64(memB))
		b.SetInt("ImageSize", int64(imgB))
		b.SetExpr("Requirements", MustParseExpr("TARGET.ImageSize <= MY.Memory"))
		return Match(a, b) == Match(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: MatchList rank ordering is nonincreasing and every entry
// mutually matches the request.
func TestQuickMatchListSorted(t *testing.T) {
	f := func(mems []uint16) bool {
		var machines []*Ad
		for i, m := range mems {
			machines = append(machines, machineAd(fmt.Sprintf("m%d", i), int64(m), "x86_64"))
		}
		j := jobAd(0, "x86_64")
		list := MatchList(j, machines)
		for i, c := range list {
			if !Match(j, c.Ad) {
				return false
			}
			if i > 0 && list[i-1].Rank < c.Rank {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: expression printing round-trips through the parser with an
// identical evaluation result, for a family of generated expressions.
func TestQuickExprPrintParse(t *testing.T) {
	f := func(a, b int16, c bool) bool {
		src := fmt.Sprintf("(%d + %d * 2 > %d) && %v ? %d : size(\"xyz\")", a, b, a, c, b)
		e1, err := ParseExpr(src)
		if err != nil {
			return false
		}
		e2, err := ParseExpr(e1.String())
		if err != nil {
			return false
		}
		ctx := &EvalContext{}
		return SameValue(e1.Eval(ctx), e2.Eval(ctx))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
