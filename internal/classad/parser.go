package classad

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseExpr parses a single ClassAd expression.
func ParseExpr(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("classad: trailing input at %s", p.peek())
	}
	return e, nil
}

// MustParseExpr is ParseExpr for compile-time-constant expressions; it
// panics on error.
func MustParseExpr(src string) Expr {
	e, err := ParseExpr(src)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) accept(k tokenKind) bool {
	if p.peek().kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k tokenKind, what string) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, fmt.Errorf("classad: expected %s, found %s", what, t)
	}
	return t, nil
}

// Grammar, lowest to highest precedence:
//   expr     := orExpr [ '?' expr ':' expr ]
//   orExpr   := andExpr { '||' andExpr }
//   andExpr  := eqExpr  { '&&' eqExpr }
//   eqExpr   := relExpr { ('=='|'!='|'=?='|'=!=') relExpr }
//   relExpr  := addExpr { ('<'|'<='|'>'|'>=') addExpr }
//   addExpr  := mulExpr { ('+'|'-') mulExpr }
//   mulExpr  := unary   { ('*'|'/'|'%') unary }
//   unary    := ('!'|'-'|'+') unary | primary
//   primary  := literal | list | '(' expr ')' | newAd
//             | IDENT '(' args ')' | [MY.|TARGET.] IDENT

func (p *parser) parseExpr() (Expr, error) {
	c, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.accept(tokQuestion) {
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokColon, "':'"); err != nil {
			return nil, err
		}
		b, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return condExpr{c, a, b}, nil
	}
	return c, nil
}

func (p *parser) parseBinaryLevel(ops map[tokenKind]string, sub func() (Expr, error)) (Expr, error) {
	l, err := sub()
	if err != nil {
		return nil, err
	}
	for {
		op, ok := ops[p.peek().kind]
		if !ok {
			return l, nil
		}
		p.next()
		r, err := sub()
		if err != nil {
			return nil, err
		}
		l = binaryExpr{op: op, l: l, r: r}
	}
}

func (p *parser) parseOr() (Expr, error) {
	return p.parseBinaryLevel(map[tokenKind]string{tokOr: "||"}, p.parseAnd)
}

func (p *parser) parseAnd() (Expr, error) {
	return p.parseBinaryLevel(map[tokenKind]string{tokAnd: "&&"}, p.parseEq)
}

func (p *parser) parseEq() (Expr, error) {
	return p.parseBinaryLevel(map[tokenKind]string{
		tokEq: "==", tokNe: "!=", tokMetaEq: "=?=", tokMetaNe: "=!=",
	}, p.parseRel)
}

func (p *parser) parseRel() (Expr, error) {
	return p.parseBinaryLevel(map[tokenKind]string{
		tokLt: "<", tokLe: "<=", tokGt: ">", tokGe: ">=",
	}, p.parseAdd)
}

func (p *parser) parseAdd() (Expr, error) {
	return p.parseBinaryLevel(map[tokenKind]string{tokPlus: "+", tokMinus: "-"}, p.parseMul)
}

func (p *parser) parseMul() (Expr, error) {
	return p.parseBinaryLevel(map[tokenKind]string{
		tokStar: "*", tokSlash: "/", tokPercent: "%",
	}, p.parseUnary)
}

func (p *parser) parseUnary() (Expr, error) {
	switch p.peek().kind {
	case tokNot:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unaryExpr{"!", x}, nil
	case tokMinus:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negative literals so -5 prints as -5 rather than -(5).
		if lit, ok := x.(litExpr); ok {
			switch lit.v.Kind {
			case IntegerKind:
				return litExpr{Integer(-lit.v.Int)}, nil
			case RealKind:
				return litExpr{RealValue(-lit.v.Real)}, nil
			}
		}
		return unaryExpr{"-", x}, nil
	case tokPlus:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unaryExpr{"+", x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tokInt:
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("classad: bad integer %q: %v", t.text, err)
		}
		return litExpr{Integer(i)}, nil
	case tokReal:
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("classad: bad real %q: %v", t.text, err)
		}
		return litExpr{RealValue(f)}, nil
	case tokString:
		return litExpr{Str(t.text)}, nil
	case tokLParen:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case tokLBrace:
		var elems []Expr
		if !p.accept(tokRBrace) {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				elems = append(elems, e)
				if p.accept(tokRBrace) {
					break
				}
				if _, err := p.expect(tokComma, "',' or '}'"); err != nil {
					return nil, err
				}
			}
		}
		return listExpr{elems}, nil
	case tokLBracket:
		return p.parseNewAd()
	case tokIdent:
		return p.parseIdent(t)
	}
	return nil, fmt.Errorf("classad: unexpected %s", t)
}

func (p *parser) parseIdent(t token) (Expr, error) {
	lower := strings.ToLower(t.text)
	switch lower {
	case "true":
		return litExpr{True}, nil
	case "false":
		return litExpr{False}, nil
	case "undefined":
		return litExpr{Undefined}, nil
	case "error":
		return litExpr{ErrorVal}, nil
	}
	// Scoped reference: MY.Attr or TARGET.Attr.
	if lower == "my" || lower == "target" {
		if p.accept(tokDot) {
			name, err := p.expect(tokIdent, "attribute name")
			if err != nil {
				return nil, err
			}
			return attrExpr{scope: lower, name: strings.ToLower(name.text)}, nil
		}
	}
	// Function call.
	if p.accept(tokLParen) {
		if _, ok := builtins[lower]; !ok {
			return nil, fmt.Errorf("classad: unknown function %q", t.text)
		}
		var args []Expr
		if !p.accept(tokRParen) {
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.accept(tokRParen) {
					break
				}
				if _, err := p.expect(tokComma, "',' or ')'"); err != nil {
					return nil, err
				}
			}
		}
		return callExpr{name: t.text, args: args}, nil
	}
	return attrExpr{name: strings.ToLower(t.text)}, nil
}

// parseNewAd parses the "new ClassAd" syntax [a = 1; b = 2] as a literal
// nested ad. The opening bracket has been consumed.
func (p *parser) parseNewAd() (Expr, error) {
	ad := New()
	for {
		if p.accept(tokRBracket) {
			return litExpr{AdValue(ad)}, nil
		}
		name, err := p.expect(tokIdent, "attribute name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokAssign, "'='"); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ad.SetExpr(name.text, e)
		if !p.accept(tokSemi) {
			if _, err := p.expect(tokRBracket, "';' or ']'"); err != nil {
				return nil, err
			}
			return litExpr{AdValue(ad)}, nil
		}
	}
}
