package classad

import "sort"

// Symmetric matchmaking per Raman/Livny/Solomon: two ads match when each
// ad's Requirements expression evaluates to true with the other ad bound as
// TARGET. Rank orders acceptable matches; higher is better.

// Satisfies reports whether a's Requirements is true against b. A missing
// Requirements attribute is treated as true (an unconstrained ad);
// an Undefined or Error evaluation is treated as no-match.
func Satisfies(a, b *Ad) bool {
	req, ok := a.Lookup("Requirements")
	if !ok {
		return true
	}
	return req.Eval(&EvalContext{Self: a, Target: b}).IsTrue()
}

// Match reports whether the two ads satisfy each other's Requirements.
func Match(a, b *Ad) bool { return Satisfies(a, b) && Satisfies(b, a) }

// RankOf evaluates a's Rank against candidate b as a float. Missing,
// Undefined, or non-numeric ranks are 0, per Condor semantics.
func RankOf(a, b *Ad) float64 {
	rank, ok := a.Lookup("Rank")
	if !ok {
		return 0
	}
	v := rank.Eval(&EvalContext{Self: a, Target: b})
	if v.Kind == BooleanKind {
		if v.Bool {
			return 1
		}
		return 0
	}
	f, ok := v.AsReal()
	if !ok {
		return 0
	}
	return f
}

// Candidate pairs an ad with its rank as seen from a requesting ad.
type Candidate struct {
	Ad   *Ad
	Rank float64 // requester's Rank of this candidate
}

// MatchList returns the candidates that mutually match request, ordered by
// descending requester rank; ties preserve input order (stable).
func MatchList(request *Ad, candidates []*Ad) []Candidate {
	var out []Candidate
	for _, c := range candidates {
		if Match(request, c) {
			out = append(out, Candidate{Ad: c, Rank: RankOf(request, c)})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Rank > out[j].Rank })
	return out
}

// BestMatch returns the highest-ranked mutual match, or nil when none.
func BestMatch(request *Ad, candidates []*Ad) *Ad {
	list := MatchList(request, candidates)
	if len(list) == 0 {
		return nil
	}
	return list[0].Ad
}
