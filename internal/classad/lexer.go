// Package classad implements the Condor ClassAd language: a lexer, parser,
// three-valued-logic evaluator, and the bilateral Requirements/Rank
// matchmaking used by the Condor Matchmaker (Raman, Livny, Solomon, HPDC'98)
// that the Condor-G paper adopts for its personal resource broker (§4.4) and
// for GlideIn pool scheduling (§5).
package classad

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokReal
	tokString
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokLBrace
	tokRBrace
	tokComma
	tokSemi
	tokAssign // =
	tokDot
	tokQuestion
	tokColon
	tokOr      // ||
	tokAnd     // &&
	tokNot     // !
	tokEq      // ==
	tokNe      // !=
	tokMetaEq  // =?=
	tokMetaNe  // =!=
	tokLt      // <
	tokLe      // <=
	tokGt      // >
	tokGe      // >=
	tokPlus    // +
	tokMinus   // -
	tokStar    // *
	tokSlash   // /
	tokPercent // %
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src. ClassAd comments (// and /* */) are stripped.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "")
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case c == '"':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case unicode.IsDigit(rune(c)) || (c == '.' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
			l.lexNumber()
		case isIdentStart(c):
			for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
				l.pos++
			}
			l.emit(tokIdent, l.src[start:l.pos])
		default:
			if err := l.lexOperator(); err != nil {
				return nil, err
			}
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (l *lexer) emit(k tokenKind, text string) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: l.pos})
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
			} else {
				l.pos += 2 + end + 2
			}
		default:
			return
		}
	}
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '"':
			l.pos++
			l.emit(tokString, sb.String())
			return nil
		case '\\':
			l.pos++
			if l.pos >= len(l.src) {
				return fmt.Errorf("classad: unterminated escape at %d", start)
			}
			switch e := l.src[l.pos]; e {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '\\', '"':
				sb.WriteByte(e)
			default:
				return fmt.Errorf("classad: bad escape \\%c at %d", e, l.pos)
			}
			l.pos++
		default:
			sb.WriteByte(c)
			l.pos++
		}
	}
	return fmt.Errorf("classad: unterminated string at %d", start)
}

func (l *lexer) lexNumber() {
	start := l.pos
	isReal := false
	for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' {
		isReal = true
		l.pos++
		for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
			l.pos++
		}
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		mark := l.pos
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
			l.pos++
		}
		if l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
			isReal = true
			for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
				l.pos++
			}
		} else {
			l.pos = mark // not an exponent after all
		}
	}
	if isReal {
		l.emit(tokReal, l.src[start:l.pos])
	} else {
		l.emit(tokInt, l.src[start:l.pos])
	}
}

func (l *lexer) lexOperator() error {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	three := ""
	if l.pos+2 < len(l.src) {
		three = l.src[l.pos : l.pos+3]
	}
	switch three {
	case "=?=":
		l.pos += 3
		l.emit(tokMetaEq, three)
		return nil
	case "=!=":
		l.pos += 3
		l.emit(tokMetaNe, three)
		return nil
	}
	switch two {
	case "||":
		l.pos += 2
		l.emit(tokOr, two)
		return nil
	case "&&":
		l.pos += 2
		l.emit(tokAnd, two)
		return nil
	case "==":
		l.pos += 2
		l.emit(tokEq, two)
		return nil
	case "!=":
		l.pos += 2
		l.emit(tokNe, two)
		return nil
	case "<=":
		l.pos += 2
		l.emit(tokLe, two)
		return nil
	case ">=":
		l.pos += 2
		l.emit(tokGe, two)
		return nil
	}
	one := l.src[l.pos]
	kinds := map[byte]tokenKind{
		'(': tokLParen, ')': tokRParen,
		'[': tokLBracket, ']': tokRBracket,
		'{': tokLBrace, '}': tokRBrace,
		',': tokComma, ';': tokSemi,
		'=': tokAssign, '.': tokDot,
		'?': tokQuestion, ':': tokColon,
		'!': tokNot, '<': tokLt, '>': tokGt,
		'+': tokPlus, '-': tokMinus,
		'*': tokStar, '/': tokSlash, '%': tokPercent,
	}
	k, ok := kinds[one]
	if !ok {
		return fmt.Errorf("classad: unexpected character %q at %d", one, l.pos)
	}
	l.pos++
	l.emit(k, string(one))
	return nil
}
