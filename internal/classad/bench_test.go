package classad

import (
	"fmt"
	"testing"
)

var benchMachine = MustParseAd(`
MyType = "Machine"
Name = "vm12.cs.wisc.edu"
Arch = "x86_64"
OpSys = "LINUX"
Memory = 2048
Cpus = 4
LoadAvg = 0.15
KeyboardIdle = 3600
State = "Unclaimed"
Requirements = TARGET.ImageSize <= MY.Memory && LoadAvg < 0.3
Rank = TARGET.Owner == "condor-admin" ? 10 : 1
`)

var benchJob = MustParseAd(`
MyType = "Job"
Owner = "jfrey"
Cmd = "mw-worker"
ImageSize = 128
Requirements = TARGET.Arch == "x86_64" && TARGET.OpSys == "LINUX" && TARGET.Memory >= MY.ImageSize && TARGET.KeyboardIdle > 900
Rank = TARGET.Memory * 1.0 + TARGET.Cpus * 100
`)

func BenchmarkParseAd(b *testing.B) {
	src := benchMachine.String()
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := ParseAd(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseExpr(b *testing.B) {
	const src = `TARGET.Arch == "x86_64" && (TARGET.Memory >= MY.ImageSize * 2 || member(TARGET.Name, {"a","b","c"}))`
	for i := 0; i < b.N; i++ {
		if _, err := ParseExpr(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalRequirements(b *testing.B) {
	req, _ := benchJob.Lookup("Requirements")
	ctx := &EvalContext{Self: benchJob, Target: benchMachine}
	for i := 0; i < b.N; i++ {
		if !req.Eval(ctx).IsTrue() {
			b.Fatal("should match")
		}
	}
}

func BenchmarkMatch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if !Match(benchJob, benchMachine) {
			b.Fatal("should match")
		}
	}
}

func BenchmarkMatchList100(b *testing.B) {
	machines := make([]*Ad, 100)
	for i := range machines {
		m := benchMachine.Clone()
		m.SetString("Name", fmt.Sprintf("vm%d", i))
		m.SetInt("Memory", int64(256+i*32))
		machines[i] = m
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := MatchList(benchJob, machines); len(got) == 0 {
			b.Fatal("no matches")
		}
	}
}
