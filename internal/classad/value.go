package classad

import (
	"fmt"
	"strconv"
	"strings"
)

// ValueKind enumerates the ClassAd value lattice. Undefined and Error are
// first-class values: the evaluator implements the standard ClassAd
// three-valued logic in which they propagate through most operators.
type ValueKind int

const (
	UndefinedKind ValueKind = iota
	ErrorKind
	BooleanKind
	IntegerKind
	RealKind
	StringKind
	ListKind
	AdKind
)

func (k ValueKind) String() string {
	switch k {
	case UndefinedKind:
		return "undefined"
	case ErrorKind:
		return "error"
	case BooleanKind:
		return "boolean"
	case IntegerKind:
		return "integer"
	case RealKind:
		return "real"
	case StringKind:
		return "string"
	case ListKind:
		return "list"
	case AdKind:
		return "classad"
	}
	return "invalid"
}

// Value is a ClassAd runtime value.
type Value struct {
	Kind ValueKind
	Bool bool
	Int  int64
	Real float64
	Str  string
	List []Value
	Ad   *Ad
}

// Convenience constructors.
var (
	Undefined = Value{Kind: UndefinedKind}
	ErrorVal  = Value{Kind: ErrorKind}
	True      = Value{Kind: BooleanKind, Bool: true}
	False     = Value{Kind: BooleanKind, Bool: false}
)

// Boolean wraps a Go bool.
func Boolean(b bool) Value {
	if b {
		return True
	}
	return False
}

// Integer wraps an int64.
func Integer(i int64) Value { return Value{Kind: IntegerKind, Int: i} }

// Real wraps a float64.
func RealValue(f float64) Value { return Value{Kind: RealKind, Real: f} }

// Str wraps a string.
func Str(s string) Value { return Value{Kind: StringKind, Str: s} }

// ListOf wraps values into a list value.
func ListOf(vs ...Value) Value { return Value{Kind: ListKind, List: vs} }

// AdValue wraps a nested ClassAd.
func AdValue(a *Ad) Value { return Value{Kind: AdKind, Ad: a} }

// IsNumber reports whether v is an integer or real.
func (v Value) IsNumber() bool { return v.Kind == IntegerKind || v.Kind == RealKind }

// AsReal converts a numeric value to float64; ok is false otherwise.
func (v Value) AsReal() (float64, bool) {
	switch v.Kind {
	case IntegerKind:
		return float64(v.Int), true
	case RealKind:
		return v.Real, true
	}
	return 0, false
}

// AsInt converts a numeric value to int64 (truncating reals).
func (v Value) AsInt() (int64, bool) {
	switch v.Kind {
	case IntegerKind:
		return v.Int, true
	case RealKind:
		return int64(v.Real), true
	}
	return 0, false
}

// IsTrue reports whether v is the boolean true. Undefined and non-booleans
// are not true (matchmaking treats an Undefined Requirements as no-match).
func (v Value) IsTrue() bool { return v.Kind == BooleanKind && v.Bool }

// String renders the value in ClassAd literal syntax.
func (v Value) String() string {
	switch v.Kind {
	case UndefinedKind:
		return "undefined"
	case ErrorKind:
		return "error"
	case BooleanKind:
		if v.Bool {
			return "true"
		}
		return "false"
	case IntegerKind:
		return strconv.FormatInt(v.Int, 10)
	case RealKind:
		s := strconv.FormatFloat(v.Real, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case StringKind:
		return strconv.Quote(v.Str)
	case ListKind:
		parts := make([]string, len(v.List))
		for i, e := range v.List {
			parts[i] = e.String()
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case AdKind:
		return v.Ad.StringCompact()
	}
	return fmt.Sprintf("invalid(%d)", v.Kind)
}

// SameValue reports deep identity between two values, used by the =?= and
// =!= meta-comparison operators (which do NOT propagate Undefined).
func SameValue(a, b Value) bool {
	if a.Kind != b.Kind {
		// Meta-comparison in Condor treats int/real of equal magnitude as
		// distinct only by value, not kind; follow Condor and compare
		// numerics numerically.
		if a.IsNumber() && b.IsNumber() {
			af, _ := a.AsReal()
			bf, _ := b.AsReal()
			return af == bf
		}
		return false
	}
	switch a.Kind {
	case UndefinedKind, ErrorKind:
		return true
	case BooleanKind:
		return a.Bool == b.Bool
	case IntegerKind:
		return a.Int == b.Int
	case RealKind:
		return a.Real == b.Real
	case StringKind:
		return a.Str == b.Str // case-sensitive: =?= is exact
	case ListKind:
		if len(a.List) != len(b.List) {
			return false
		}
		for i := range a.List {
			if !SameValue(a.List[i], b.List[i]) {
				return false
			}
		}
		return true
	case AdKind:
		return a.Ad == b.Ad
	}
	return false
}
