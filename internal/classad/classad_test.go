package classad

import (
	"strings"
	"testing"
)

func evalStr(t *testing.T, src string) Value {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return e.Eval(&EvalContext{})
}

func TestLiterals(t *testing.T) {
	cases := []struct {
		src  string
		want Value
	}{
		{"42", Integer(42)},
		{"-42", Integer(-42)},
		{"3.5", RealValue(3.5)},
		{"1e3", RealValue(1000)},
		{"2.5e-1", RealValue(0.25)},
		{`"hello"`, Str("hello")},
		{`"a\"b\n"`, Str("a\"b\n")},
		{"true", True},
		{"FALSE", False},
		{"undefined", Undefined},
		{"error", ErrorVal},
	}
	for _, c := range cases {
		got := evalStr(t, c.src)
		if !SameValue(got, c.want) || got.Kind != c.want.Kind {
			t.Errorf("%q = %v (%v), want %v (%v)", c.src, got, got.Kind, c.want, c.want.Kind)
		}
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want Value
	}{
		{"1 + 2 * 3", Integer(7)},
		{"(1 + 2) * 3", Integer(9)},
		{"10 / 4", Integer(2)},
		{"10.0 / 4", RealValue(2.5)},
		{"10 % 3", Integer(1)},
		{"2 - 5", Integer(-3)},
		{"-2 * -3", Integer(6)},
		{"1 / 0", ErrorVal},
		{"1 % 0", ErrorVal},
		{`"foo" + "bar"`, Str("foobar")},
		{`1 + "x"`, ErrorVal},
		{"1 + undefined", Undefined},
		{"error + 1", ErrorVal},
		// Error beats Undefined when both present.
		{"undefined + error", ErrorVal},
	}
	for _, c := range cases {
		got := evalStr(t, c.src)
		if got.Kind != c.want.Kind || !SameValue(got, c.want) {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestComparisons(t *testing.T) {
	cases := []struct {
		src  string
		want Value
	}{
		{"1 < 2", True},
		{"2 <= 2", True},
		{"3 > 4", False},
		{"1.5 >= 1.5", True},
		{"1 == 1.0", True},
		{"1 != 2", True},
		{`"ABC" == "abc"`, True}, // old-ClassAd string equality is case-insensitive
		{`"abc" < "abd"`, True},
		{`"a" == 1`, ErrorVal},
		{"undefined == 1", Undefined},
		{"undefined =?= 1", False},
		{"undefined =?= undefined", True},
		{"undefined =!= undefined", False},
		{`"ABC" =?= "abc"`, False}, // meta-equality is exact
		{"true == true", True},
		{"false < true", True},
	}
	for _, c := range cases {
		got := evalStr(t, c.src)
		if got.Kind != c.want.Kind || !SameValue(got, c.want) {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestThreeValuedLogic(t *testing.T) {
	cases := []struct {
		src  string
		want Value
	}{
		{"true && true", True},
		{"true && false", False},
		{"false && undefined", False}, // short circuit absorbs undefined
		{"undefined && false", False},
		{"undefined && true", Undefined},
		{"true || undefined", True},
		{"undefined || true", True},
		{"undefined || false", Undefined},
		{"undefined || undefined", Undefined},
		{"!undefined", Undefined},
		{"!true", False},
		{"1 && true", ErrorVal},
		{"error || true", ErrorVal},
	}
	for _, c := range cases {
		got := evalStr(t, c.src)
		if got.Kind != c.want.Kind || !SameValue(got, c.want) {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestConditional(t *testing.T) {
	cases := []struct {
		src  string
		want Value
	}{
		{"true ? 1 : 2", Integer(1)},
		{"false ? 1 : 2", Integer(2)},
		{"undefined ? 1 : 2", Undefined},
		{"1 ? 1 : 2", ErrorVal},
		{"2 > 1 ? \"yes\" : \"no\"", Str("yes")},
	}
	for _, c := range cases {
		got := evalStr(t, c.src)
		if got.Kind != c.want.Kind || !SameValue(got, c.want) {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestBuiltins(t *testing.T) {
	cases := []struct {
		src  string
		want Value
	}{
		{`strcat("a", "b", 3)`, Str("ab3")},
		{`substr("condor", 2)`, Str("ndor")},
		{`substr("condor", 2, 2)`, Str("nd")},
		{`substr("condor", -3)`, Str("dor")},
		{`substr("condor", 10)`, Str("")},
		{`strcmp("a", "b")`, Integer(-1)},
		{`stricmp("ABC", "abc")`, Integer(0)},
		{`toUpper("abc")`, Str("ABC")},
		{`toLower("ABC")`, Str("abc")},
		{`size("hello")`, Integer(5)},
		{`size({1,2,3})`, Integer(3)},
		{`member(2, {1,2,3})`, True},
		{`member("B", {"a","b"})`, True},
		{`member(9, {1,2,3})`, False},
		{`isUndefined(undefined)`, True},
		{`isUndefined(3)`, False},
		{`isError(1/0)`, True},
		{`isString("x")`, True},
		{`isInteger(3)`, True},
		{`isReal(3.0)`, True},
		{`isBoolean(true)`, True},
		{`isList({1})`, True},
		{`int(3.9)`, Integer(3)},
		{`int("12")`, Integer(12)},
		{`real(3)`, RealValue(3)},
		{`real("2.5")`, RealValue(2.5)},
		{`string(42)`, Str("42")},
		{`floor(3.7)`, Integer(3)},
		{`ceiling(3.2)`, Integer(4)},
		{`round(3.5)`, Integer(4)},
		{`ifThenElse(1 < 2, "a", "b")`, Str("a")},
		{`min(3, 1, 2)`, Integer(1)},
		{`max(3, 1, 2.5)`, RealValue(3)},
		{`regexp("vm*.cs.wisc.edu", "vm12.cs.wisc.edu")`, True},
		{`regexp("*.anl.gov", "mcs.anl.gov")`, True},
		{`regexp("*.anl.gov", "cs.wisc.edu")`, False},
		{`regexp("node?", "node7")`, True},
		{`regexp("node?", "node72")`, False},
	}
	for _, c := range cases {
		got := evalStr(t, c.src)
		if got.Kind != c.want.Kind || !SameValue(got, c.want) {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestUnknownFunctionIsParseError(t *testing.T) {
	if _, err := ParseExpr("noSuchFn(1)"); err == nil {
		t.Fatal("unknown function should fail to parse")
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"1 +", "(1", `"unterminated`, "{1, }", "? : 1", "a = b", "1 2", "@",
		`"bad \q escape"`,
	} {
		if _, err := ParseExpr(src); err == nil {
			t.Errorf("ParseExpr(%q) should fail", src)
		}
	}
}

func TestAttrResolution(t *testing.T) {
	machine := MustParseAd(`
		Memory = 512
		Arch = "x86_64"
		LoadAvg = 0.25
	`)
	job := MustParseAd(`
		ImageSize = 128
		WantArch = "x86_64"
		Requirements = TARGET.Memory >= MY.ImageSize && TARGET.Arch == MY.WantArch
	`)
	v := job.EvalAgainst("Requirements", machine)
	if !v.IsTrue() {
		t.Fatalf("Requirements = %v, want true", v)
	}
	// Unqualified names resolve self-first, then target.
	mixed := MustParseAd(`Memory = 64` + "\n" + `Check = Memory < 100`)
	if !mixed.EvalAgainst("Check", machine).IsTrue() {
		t.Fatal("unqualified ref should bind self's Memory=64 first")
	}
	noSelf := MustParseAd(`Check = Memory > 100`)
	if !noSelf.EvalAgainst("Check", machine).IsTrue() {
		t.Fatal("unqualified ref should fall through to target's Memory=512")
	}
}

func TestAttrCaseInsensitivity(t *testing.T) {
	ad := New()
	ad.SetInt("Memory", 512)
	if got := ad.EvalInt("MEMORY", -1); got != 512 {
		t.Fatalf("case-insensitive lookup = %d, want 512", got)
	}
	ad.SetInt("MEMORY", 1024) // same attribute, different case
	if ad.Len() != 1 {
		t.Fatalf("case-variant Set created a second attribute: %d", ad.Len())
	}
	if got := ad.EvalInt("memory", -1); got != 1024 {
		t.Fatalf("overwrite through case variant = %d, want 1024", got)
	}
}

func TestRecursiveAttrIsError(t *testing.T) {
	ad := MustParseAd("A = B\nB = A")
	if got := ad.Eval("A"); got.Kind != ErrorKind {
		t.Fatalf("recursive attribute = %v, want error", got)
	}
}

func TestAdRoundTrip(t *testing.T) {
	src := `MyType = "Machine"
Name = "vm1.cs.wisc.edu"
Memory = 512
LoadAvg = 0.25
Requirements = TARGET.ImageSize <= MY.Memory && member(TARGET.Owner, {"jfrey", "miron"})
Rank = TARGET.JobPrio * 2 + 1
Flags = {1, 2.5, "three", true}
`
	ad := MustParseAd(src)
	again := MustParseAd(ad.String())
	if ad.StringSorted() != again.StringSorted() {
		t.Fatalf("round-trip mismatch:\n%s\nvs\n%s", ad.StringSorted(), again.StringSorted())
	}
}

func TestAdJSONRoundTrip(t *testing.T) {
	ad := MustParseAd("A = 1\nB = \"two\"\nC = TARGET.X > 3")
	data, err := ad.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Ad
	if err := back.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if back.StringSorted() != ad.StringSorted() {
		t.Fatalf("JSON round-trip mismatch:\n%q\nvs\n%q", back.StringSorted(), ad.StringSorted())
	}
}

func TestDeleteAndClone(t *testing.T) {
	ad := MustParseAd("A = 1\nB = 2\nC = 3")
	c := ad.Clone()
	if !ad.Delete("b") {
		t.Fatal("Delete should report true for existing attribute")
	}
	if ad.Delete("b") {
		t.Fatal("second Delete should report false")
	}
	if ad.Len() != 2 || c.Len() != 3 {
		t.Fatalf("delete leaked into clone: ad=%d clone=%d", ad.Len(), c.Len())
	}
	if got := strings.Join(ad.Names(), ","); got != "A,C" {
		t.Fatalf("Names after delete = %s", got)
	}
}

func TestMerge(t *testing.T) {
	a := MustParseAd("A = 1\nB = 2")
	b := MustParseAd("B = 20\nC = 30")
	a.Merge(b)
	if a.EvalInt("B", -1) != 20 || a.EvalInt("C", -1) != 30 || a.EvalInt("A", -1) != 1 {
		t.Fatalf("merge result wrong: %s", a)
	}
}

func TestNestedAdLiteral(t *testing.T) {
	e := MustParseExpr(`[ a = 1; b = "x" ]`)
	v := e.Eval(&EvalContext{})
	if v.Kind != AdKind {
		t.Fatalf("kind = %v, want classad", v.Kind)
	}
	if v.Ad.EvalInt("a", -1) != 1 || v.Ad.EvalString("b", "") != "x" {
		t.Fatalf("nested ad contents wrong: %s", v.Ad)
	}
}

func TestComments(t *testing.T) {
	ad := MustParseAd(`
		# hash comment
		// slash comment
		A = 1 // trailing comment
		B = /* inline */ 2
	`)
	if ad.EvalInt("A", -1) != 1 || ad.EvalInt("B", -1) != 2 {
		t.Fatalf("comment handling broke parsing: %s", ad)
	}
}
