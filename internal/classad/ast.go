package classad

import (
	"fmt"
	"strings"
)

// Expr is a parsed ClassAd expression. Expressions are immutable after
// parsing and safe for concurrent evaluation.
type Expr interface {
	// Eval evaluates the expression in ctx.
	Eval(ctx *EvalContext) Value
	// String renders the expression in parseable ClassAd syntax.
	String() string
}

// EvalContext carries the ads visible during evaluation. Self is the ad the
// expression belongs to; Target is the candidate ad during matchmaking (may
// be nil). Depth guards against runaway recursive attribute references.
type EvalContext struct {
	Self   *Ad
	Target *Ad
	depth  int
}

const maxEvalDepth = 64

// litExpr is a literal constant.
type litExpr struct{ v Value }

func (e litExpr) Eval(*EvalContext) Value { return e.v }
func (e litExpr) String() string          { return e.v.String() }

// Lit builds a literal expression, useful when constructing ads in code.
func Lit(v Value) Expr { return litExpr{v} }

// attrExpr is an attribute reference, optionally scoped with MY. or TARGET.
type attrExpr struct {
	scope string // "", "my", or "target"
	name  string
}

func (e attrExpr) Eval(ctx *EvalContext) Value {
	if ctx.depth >= maxEvalDepth {
		return ErrorVal
	}
	sub := *ctx
	sub.depth = ctx.depth + 1
	lookup := func(ad *Ad) (Value, bool) {
		if ad == nil {
			return Undefined, false
		}
		ex, ok := ad.Lookup(e.name)
		if !ok {
			return Undefined, false
		}
		inner := sub
		inner.Self = ad
		return ex.Eval(&inner), true
	}
	switch e.scope {
	case "my":
		v, _ := lookup(ctx.Self)
		return v
	case "target":
		v, _ := lookup(ctx.Target)
		return v
	default:
		if v, ok := lookup(ctx.Self); ok {
			return v
		}
		if v, ok := lookup(ctx.Target); ok {
			return v
		}
		return Undefined
	}
}

func (e attrExpr) String() string {
	switch e.scope {
	case "my":
		return "MY." + e.name
	case "target":
		return "TARGET." + e.name
	}
	return e.name
}

// Attr builds an unscoped attribute reference expression.
func Attr(name string) Expr { return attrExpr{name: name} }

// unaryExpr is !x or -x or +x.
type unaryExpr struct {
	op string
	x  Expr
}

func (e unaryExpr) Eval(ctx *EvalContext) Value {
	v := e.x.Eval(ctx)
	switch e.op {
	case "!":
		switch v.Kind {
		case BooleanKind:
			return Boolean(!v.Bool)
		case UndefinedKind:
			return Undefined
		default:
			return ErrorVal
		}
	case "-":
		switch v.Kind {
		case IntegerKind:
			return Integer(-v.Int)
		case RealKind:
			return RealValue(-v.Real)
		case UndefinedKind:
			return Undefined
		default:
			return ErrorVal
		}
	case "+":
		if v.IsNumber() || v.Kind == UndefinedKind {
			return v
		}
		return ErrorVal
	}
	return ErrorVal
}

func (e unaryExpr) String() string { return e.op + parenthesize(e.x) }

// binaryExpr covers arithmetic, comparison, and logic.
type binaryExpr struct {
	op   string
	l, r Expr
}

func (e binaryExpr) Eval(ctx *EvalContext) Value {
	switch e.op {
	case "&&", "||":
		return evalLogic(e.op, e.l, e.r, ctx)
	case "=?=":
		return Boolean(SameValue(e.l.Eval(ctx), e.r.Eval(ctx)))
	case "=!=":
		return Boolean(!SameValue(e.l.Eval(ctx), e.r.Eval(ctx)))
	}
	l, r := e.l.Eval(ctx), e.r.Eval(ctx)
	if l.Kind == ErrorKind || r.Kind == ErrorKind {
		return ErrorVal
	}
	if l.Kind == UndefinedKind || r.Kind == UndefinedKind {
		return Undefined
	}
	switch e.op {
	case "+", "-", "*", "/", "%":
		return evalArith(e.op, l, r)
	case "==", "!=", "<", "<=", ">", ">=":
		return evalCompare(e.op, l, r)
	}
	return ErrorVal
}

func (e binaryExpr) String() string {
	return parenthesize(e.l) + " " + e.op + " " + parenthesize(e.r)
}

// condExpr is c ? a : b.
type condExpr struct{ c, a, b Expr }

func (e condExpr) Eval(ctx *EvalContext) Value {
	c := e.c.Eval(ctx)
	switch c.Kind {
	case BooleanKind:
		if c.Bool {
			return e.a.Eval(ctx)
		}
		return e.b.Eval(ctx)
	case UndefinedKind:
		return Undefined
	default:
		return ErrorVal
	}
}

func (e condExpr) String() string {
	return parenthesize(e.c) + " ? " + parenthesize(e.a) + " : " + parenthesize(e.b)
}

// callExpr is a builtin function call.
type callExpr struct {
	name string
	args []Expr
}

func (e callExpr) Eval(ctx *EvalContext) Value {
	fn, ok := builtins[strings.ToLower(e.name)]
	if !ok {
		return ErrorVal
	}
	return fn(ctx, e.args)
}

func (e callExpr) String() string {
	parts := make([]string, len(e.args))
	for i, a := range e.args {
		parts[i] = a.String()
	}
	return e.name + "(" + strings.Join(parts, ", ") + ")"
}

// listExpr is {e1, e2, ...}.
type listExpr struct{ elems []Expr }

func (e listExpr) Eval(ctx *EvalContext) Value {
	vs := make([]Value, len(e.elems))
	for i, el := range e.elems {
		vs[i] = el.Eval(ctx)
	}
	return ListOf(vs...)
}

func (e listExpr) String() string {
	parts := make([]string, len(e.elems))
	for i, el := range e.elems {
		parts[i] = el.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

func parenthesize(e Expr) string {
	switch e.(type) {
	case litExpr, attrExpr, callExpr, listExpr:
		return e.String()
	}
	return "(" + e.String() + ")"
}

func evalLogic(op string, le, re Expr, ctx *EvalContext) Value {
	l := le.Eval(ctx)
	toB := func(v Value) Value {
		switch v.Kind {
		case BooleanKind, UndefinedKind:
			return v
		default:
			return ErrorVal
		}
	}
	l = toB(l)
	if l.Kind == ErrorKind {
		return ErrorVal
	}
	// Short circuit where three-valued logic allows it.
	if op == "&&" && l.Kind == BooleanKind && !l.Bool {
		return False
	}
	if op == "||" && l.Kind == BooleanKind && l.Bool {
		return True
	}
	r := toB(re.Eval(ctx))
	if r.Kind == ErrorKind {
		return ErrorVal
	}
	if op == "&&" {
		if r.Kind == BooleanKind && !r.Bool {
			return False
		}
		if l.Kind == UndefinedKind || r.Kind == UndefinedKind {
			return Undefined
		}
		return Boolean(l.Bool && r.Bool)
	}
	// op == "||"
	if r.Kind == BooleanKind && r.Bool {
		return True
	}
	if l.Kind == UndefinedKind || r.Kind == UndefinedKind {
		return Undefined
	}
	return Boolean(l.Bool || r.Bool)
}

func evalArith(op string, l, r Value) Value {
	if !l.IsNumber() || !r.IsNumber() {
		if op == "+" && l.Kind == StringKind && r.Kind == StringKind {
			return Str(l.Str + r.Str)
		}
		return ErrorVal
	}
	if l.Kind == IntegerKind && r.Kind == IntegerKind {
		a, b := l.Int, r.Int
		switch op {
		case "+":
			return Integer(a + b)
		case "-":
			return Integer(a - b)
		case "*":
			return Integer(a * b)
		case "/":
			if b == 0 {
				return ErrorVal
			}
			return Integer(a / b)
		case "%":
			if b == 0 {
				return ErrorVal
			}
			return Integer(a % b)
		}
	}
	a, _ := l.AsReal()
	b, _ := r.AsReal()
	switch op {
	case "+":
		return RealValue(a + b)
	case "-":
		return RealValue(a - b)
	case "*":
		return RealValue(a * b)
	case "/":
		if b == 0 {
			return ErrorVal
		}
		return RealValue(a / b)
	case "%":
		if b == 0 {
			return ErrorVal
		}
		return RealValue(float64(int64(a) % int64(b)))
	}
	return ErrorVal
}

func evalCompare(op string, l, r Value) Value {
	var cmp int
	switch {
	case l.IsNumber() && r.IsNumber():
		a, _ := l.AsReal()
		b, _ := r.AsReal()
		switch {
		case a < b:
			cmp = -1
		case a > b:
			cmp = 1
		}
	case l.Kind == StringKind && r.Kind == StringKind:
		// Old ClassAd string == is case-insensitive.
		cmp = strings.Compare(strings.ToLower(l.Str), strings.ToLower(r.Str))
	case l.Kind == BooleanKind && r.Kind == BooleanKind:
		switch {
		case !l.Bool && r.Bool:
			cmp = -1
		case l.Bool && !r.Bool:
			cmp = 1
		}
	default:
		return ErrorVal
	}
	switch op {
	case "==":
		return Boolean(cmp == 0)
	case "!=":
		return Boolean(cmp != 0)
	case "<":
		return Boolean(cmp < 0)
	case "<=":
		return Boolean(cmp <= 0)
	case ">":
		return Boolean(cmp > 0)
	case ">=":
		return Boolean(cmp >= 0)
	}
	return ErrorVal
}

var _ = fmt.Sprintf // keep fmt linked for debug helpers
