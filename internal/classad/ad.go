package classad

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Ad is a ClassAd: an ordered set of (attribute, expression) pairs.
// Attribute names are case-insensitive, as in Condor; the original spelling
// of the first Set is preserved for printing. Ads are not safe for
// concurrent mutation; copy with Clone when sharing across goroutines.
type Ad struct {
	attrs map[string]Expr   // lowercased name -> expression
	names map[string]string // lowercased name -> display name
	order []string          // lowercased names in insertion order
}

// New returns an empty ClassAd.
func New() *Ad {
	return &Ad{
		attrs: make(map[string]Expr),
		names: make(map[string]string),
	}
}

// ParseAd parses the "old ClassAd" representation: one `Name = expr` pair
// per line, with blank lines and comments ignored. This is the on-the-wire
// and on-disk format used throughout the repository.
func ParseAd(src string) (*Ad, error) {
	ad := New()
	for ln, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "//") {
			continue
		}
		eq := indexTopLevelAssign(line)
		if eq < 0 {
			return nil, fmt.Errorf("classad: line %d: missing '=' in %q", ln+1, line)
		}
		name := strings.TrimSpace(line[:eq])
		if name == "" || !isValidAttrName(name) {
			return nil, fmt.Errorf("classad: line %d: bad attribute name %q", ln+1, name)
		}
		expr, err := ParseExpr(line[eq+1:])
		if err != nil {
			return nil, fmt.Errorf("classad: line %d: %v", ln+1, err)
		}
		ad.SetExpr(name, expr)
	}
	return ad, nil
}

// MustParseAd is ParseAd that panics on error, for constants in tests.
func MustParseAd(src string) *Ad {
	ad, err := ParseAd(src)
	if err != nil {
		panic(err)
	}
	return ad
}

// indexTopLevelAssign finds the first '=' that is an assignment, not part of
// ==, =?=, =!=, <=, >=, or !=, and not inside a string literal.
func indexTopLevelAssign(line string) int {
	inStr := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		if inStr {
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
			continue
		}
		switch c {
		case '"':
			inStr = true
		case '=':
			if i > 0 && strings.ContainsRune("<>!=", rune(line[i-1])) {
				continue
			}
			if i+1 < len(line) && strings.ContainsRune("=?!", rune(line[i+1])) {
				// ==, =?=, =!= — skip past the operator.
				if line[i+1] == '=' {
					i++
				} else {
					i += 2
				}
				continue
			}
			return i
		}
	}
	return -1
}

func isValidAttrName(s string) bool {
	if !isIdentStart(s[0]) {
		return false
	}
	for i := 1; i < len(s); i++ {
		if !isIdentPart(s[i]) {
			return false
		}
	}
	return true
}

// Len returns the number of attributes.
func (a *Ad) Len() int { return len(a.order) }

// Names returns attribute display names in insertion order.
func (a *Ad) Names() []string {
	out := make([]string, len(a.order))
	for i, k := range a.order {
		out[i] = a.names[k]
	}
	return out
}

// SetExpr binds name to an expression.
func (a *Ad) SetExpr(name string, e Expr) {
	k := strings.ToLower(name)
	if _, exists := a.attrs[k]; !exists {
		a.order = append(a.order, k)
		a.names[k] = name
	}
	a.attrs[k] = e
}

// Set binds name to a literal value.
func (a *Ad) Set(name string, v Value) { a.SetExpr(name, litExpr{v}) }

// SetString, SetInt, SetReal, SetBool are typed conveniences.
func (a *Ad) SetString(name, s string)       { a.Set(name, Str(s)) }
func (a *Ad) SetInt(name string, i int64)    { a.Set(name, Integer(i)) }
func (a *Ad) SetReal(name string, f float64) { a.Set(name, RealValue(f)) }
func (a *Ad) SetBool(name string, b bool)    { a.Set(name, Boolean(b)) }

// Delete removes an attribute; it reports whether it was present.
func (a *Ad) Delete(name string) bool {
	k := strings.ToLower(name)
	if _, ok := a.attrs[k]; !ok {
		return false
	}
	delete(a.attrs, k)
	delete(a.names, k)
	for i, o := range a.order {
		if o == k {
			a.order = append(a.order[:i], a.order[i+1:]...)
			break
		}
	}
	return true
}

// Lookup returns the expression bound to name.
func (a *Ad) Lookup(name string) (Expr, bool) {
	e, ok := a.attrs[strings.ToLower(name)]
	return e, ok
}

// Eval evaluates the named attribute with no target ad.
func (a *Ad) Eval(name string) Value { return a.EvalAgainst(name, nil) }

// EvalAgainst evaluates the named attribute with target visible as TARGET.
func (a *Ad) EvalAgainst(name string, target *Ad) Value {
	e, ok := a.Lookup(name)
	if !ok {
		return Undefined
	}
	return e.Eval(&EvalContext{Self: a, Target: target})
}

// EvalString evaluates name and returns its string value, or def if the
// attribute is missing or not a string.
func (a *Ad) EvalString(name, def string) string {
	if v := a.Eval(name); v.Kind == StringKind {
		return v.Str
	}
	return def
}

// EvalInt evaluates name as an integer with a default.
func (a *Ad) EvalInt(name string, def int64) int64 {
	if v, ok := a.Eval(name).AsInt(); ok {
		return v
	}
	return def
}

// EvalReal evaluates name as a real with a default.
func (a *Ad) EvalReal(name string, def float64) float64 {
	if v, ok := a.Eval(name).AsReal(); ok {
		return v
	}
	return def
}

// EvalBool evaluates name as a boolean with a default.
func (a *Ad) EvalBool(name string, def bool) bool {
	if v := a.Eval(name); v.Kind == BooleanKind {
		return v.Bool
	}
	return def
}

// Clone returns a deep-enough copy (expressions are immutable and shared).
func (a *Ad) Clone() *Ad {
	c := New()
	for _, k := range a.order {
		c.SetExpr(a.names[k], a.attrs[k])
	}
	return c
}

// Merge copies every attribute of src into a, overwriting duplicates.
func (a *Ad) Merge(src *Ad) {
	for _, k := range src.order {
		a.SetExpr(src.names[k], src.attrs[k])
	}
}

// String renders the ad in old-ClassAd syntax, one attribute per line, in
// insertion order.
func (a *Ad) String() string {
	var sb strings.Builder
	for _, k := range a.order {
		fmt.Fprintf(&sb, "%s = %s\n", a.names[k], a.attrs[k].String())
	}
	return sb.String()
}

// StringCompact renders the ad in new-ClassAd syntax on one line.
func (a *Ad) StringCompact() string {
	parts := make([]string, len(a.order))
	for i, k := range a.order {
		parts[i] = fmt.Sprintf("%s = %s", a.names[k], a.attrs[k].String())
	}
	return "[ " + strings.Join(parts, "; ") + " ]"
}

// StringSorted renders attributes sorted by name — a canonical form used in
// tests and journaling.
func (a *Ad) StringSorted() string {
	keys := append([]string(nil), a.order...)
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s = %s\n", a.names[k], a.attrs[k].String())
	}
	return sb.String()
}

// MarshalJSON serializes the ad as its old-ClassAd text, making ads directly
// embeddable in wire messages and journals.
func (a *Ad) MarshalJSON() ([]byte, error) {
	return json.Marshal(a.String())
}

// UnmarshalJSON parses the old-ClassAd text form.
func (a *Ad) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	parsed, err := ParseAd(s)
	if err != nil {
		return err
	}
	*a = *parsed
	return nil
}
