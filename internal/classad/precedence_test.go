package classad

import "testing"

// Operator precedence and associativity, nailed down case by case: subtle
// parser bugs here would corrupt matchmaking decisions silently.
func TestOperatorPrecedence(t *testing.T) {
	cases := []struct {
		src  string
		want Value
	}{
		// * binds tighter than +.
		{"2 + 3 * 4", Integer(14)},
		{"2 * 3 + 4", Integer(10)},
		// +,- left associative.
		{"10 - 4 - 3", Integer(3)},
		{"100 / 10 / 5", Integer(2)},
		// comparison binds tighter than equality.
		{"1 < 2 == 3 < 4", True}, // (1<2) == (3<4)
		// equality binds tighter than &&.
		{"1 == 1 && 2 == 2", True},
		// && binds tighter than ||.
		{"false && false || true", True},
		{"true || false && false", True},
		// unary minus binds tighter than *.
		{"-2 * 3", Integer(-6)},
		{"2 * -3", Integer(-6)},
		// ! binds tighter than &&.
		{"!false && true", True},
		// ternary is lowest and right-grouping via nesting.
		{"true ? 1 : false ? 2 : 3", Integer(1)},
		{"false ? 1 : false ? 2 : 3", Integer(3)},
		{"false ? 1 : true ? 2 : 3", Integer(2)},
		// ternary condition may be a full || expression.
		{"false || true ? 1 : 2", Integer(1)},
		// modulo with multiplication.
		{"7 % 3 * 2", Integer(2)}, // (7%3)*2
		// meta-equality at the same level as ==.
		{"1 + 1 =?= 2", True},
		// parentheses override everything.
		{"(2 + 3) * (4 - 1)", Integer(15)},
		// double unary.
		{"!!true", True},
		{"- -5", Integer(5)},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.src)
		if err != nil {
			t.Errorf("parse %q: %v", c.src, err)
			continue
		}
		got := e.Eval(&EvalContext{})
		if got.Kind != c.want.Kind || !SameValue(got, c.want) {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
		// Printing must preserve the value.
		again, err := ParseExpr(e.String())
		if err != nil {
			t.Errorf("reparse of %q (%q): %v", c.src, e.String(), err)
			continue
		}
		if got2 := again.Eval(&EvalContext{}); !SameValue(got, got2) {
			t.Errorf("%q: print/reparse changed value %v -> %v", c.src, got, got2)
		}
	}
}

func TestStringEscapePrinting(t *testing.T) {
	ad := New()
	ad.SetString("Path", `C:\dir "quoted"`+"\n")
	again := MustParseAd(ad.String())
	if got := again.EvalString("Path", ""); got != `C:\dir "quoted"`+"\n" {
		t.Fatalf("escaped string round trip = %q", got)
	}
}

func TestScopedVsUnscopedShadowing(t *testing.T) {
	self := MustParseAd("Memory = 100\nCheckMy = MY.Memory\nCheckPlain = Memory\nCheckTarget = TARGET.Memory")
	target := MustParseAd("Memory = 999")
	if v, _ := self.EvalAgainst("CheckMy", target).AsInt(); v != 100 {
		t.Fatalf("MY. = %d", v)
	}
	if v, _ := self.EvalAgainst("CheckPlain", target).AsInt(); v != 100 {
		t.Fatalf("plain = %d (self wins)", v)
	}
	if v, _ := self.EvalAgainst("CheckTarget", target).AsInt(); v != 999 {
		t.Fatalf("TARGET. = %d", v)
	}
	// TARGET with no target ad is Undefined.
	if got := self.Eval("CheckTarget"); got.Kind != UndefinedKind {
		t.Fatalf("TARGET with nil target = %v", got)
	}
}
