package classad

import (
	"errors"
	"math"
	"strconv"
	"strings"
)

// builtinFunc implements a ClassAd intrinsic. Arguments are unevaluated so
// intrinsics such as isUndefined can inspect evaluation results without
// tripping error propagation at the call boundary.
type builtinFunc func(ctx *EvalContext, args []Expr) Value

var builtins map[string]builtinFunc

func init() {
	builtins = map[string]builtinFunc{
		"strcat":      biStrcat,
		"substr":      biSubstr,
		"strcmp":      biStrcmp,
		"stricmp":     biStricmp,
		"toupper":     biToUpper,
		"tolower":     biToLower,
		"size":        biSize,
		"member":      biMember,
		"isundefined": biIsUndefined,
		"iserror":     biIsError,
		"isstring":    biIsKind(StringKind),
		"isinteger":   biIsKind(IntegerKind),
		"isreal":      biIsKind(RealKind),
		"isboolean":   biIsKind(BooleanKind),
		"islist":      biIsKind(ListKind),
		"int":         biInt,
		"real":        biReal,
		"string":      biString,
		"floor":       biRound(math.Floor),
		"ceiling":     biRound(math.Ceil),
		"round":       biRound(math.Round),
		"ifthenelse":  biIfThenElse,
		"min":         biMinMax(true),
		"max":         biMinMax(false),
		"regexp":      biRegexp,
	}
}

func evalArgs(ctx *EvalContext, args []Expr) []Value {
	vs := make([]Value, len(args))
	for i, a := range args {
		vs[i] = a.Eval(ctx)
	}
	return vs
}

func biStrcat(ctx *EvalContext, args []Expr) Value {
	var sb strings.Builder
	for _, v := range evalArgs(ctx, args) {
		switch v.Kind {
		case StringKind:
			sb.WriteString(v.Str)
		case IntegerKind, RealKind, BooleanKind:
			sb.WriteString(strings.Trim(v.String(), `"`))
		case UndefinedKind:
			return Undefined
		default:
			return ErrorVal
		}
	}
	return Str(sb.String())
}

func biSubstr(ctx *EvalContext, args []Expr) Value {
	if len(args) != 2 && len(args) != 3 {
		return ErrorVal
	}
	vs := evalArgs(ctx, args)
	if vs[0].Kind != StringKind {
		return ErrorVal
	}
	off, ok := vs[1].AsInt()
	if !ok {
		return ErrorVal
	}
	s := vs[0].Str
	if off < 0 {
		off += int64(len(s))
	}
	if off < 0 {
		off = 0
	}
	if off > int64(len(s)) {
		return Str("")
	}
	rest := s[off:]
	if len(args) == 3 {
		n, ok := vs[2].AsInt()
		if !ok {
			return ErrorVal
		}
		if n < 0 {
			n += int64(len(rest))
			if n < 0 {
				n = 0
			}
		}
		if n < int64(len(rest)) {
			rest = rest[:n]
		}
	}
	return Str(rest)
}

func biStrcmp(ctx *EvalContext, args []Expr) Value {
	if len(args) != 2 {
		return ErrorVal
	}
	vs := evalArgs(ctx, args)
	if vs[0].Kind != StringKind || vs[1].Kind != StringKind {
		return ErrorVal
	}
	return Integer(int64(strings.Compare(vs[0].Str, vs[1].Str)))
}

func biStricmp(ctx *EvalContext, args []Expr) Value {
	if len(args) != 2 {
		return ErrorVal
	}
	vs := evalArgs(ctx, args)
	if vs[0].Kind != StringKind || vs[1].Kind != StringKind {
		return ErrorVal
	}
	return Integer(int64(strings.Compare(strings.ToLower(vs[0].Str), strings.ToLower(vs[1].Str))))
}

func biToUpper(ctx *EvalContext, args []Expr) Value {
	if len(args) != 1 {
		return ErrorVal
	}
	v := args[0].Eval(ctx)
	if v.Kind != StringKind {
		return ErrorVal
	}
	return Str(strings.ToUpper(v.Str))
}

func biToLower(ctx *EvalContext, args []Expr) Value {
	if len(args) != 1 {
		return ErrorVal
	}
	v := args[0].Eval(ctx)
	if v.Kind != StringKind {
		return ErrorVal
	}
	return Str(strings.ToLower(v.Str))
}

func biSize(ctx *EvalContext, args []Expr) Value {
	if len(args) != 1 {
		return ErrorVal
	}
	v := args[0].Eval(ctx)
	switch v.Kind {
	case StringKind:
		return Integer(int64(len(v.Str)))
	case ListKind:
		return Integer(int64(len(v.List)))
	case UndefinedKind:
		return Undefined
	default:
		return ErrorVal
	}
}

func biMember(ctx *EvalContext, args []Expr) Value {
	if len(args) != 2 {
		return ErrorVal
	}
	item := args[0].Eval(ctx)
	list := args[1].Eval(ctx)
	if list.Kind != ListKind {
		return ErrorVal
	}
	if item.Kind == UndefinedKind {
		return Undefined
	}
	for _, e := range list.List {
		if item.Kind == StringKind && e.Kind == StringKind {
			if strings.EqualFold(item.Str, e.Str) {
				return True
			}
			continue
		}
		if SameValue(item, e) {
			return True
		}
	}
	return False
}

func biIsUndefined(ctx *EvalContext, args []Expr) Value {
	if len(args) != 1 {
		return ErrorVal
	}
	return Boolean(args[0].Eval(ctx).Kind == UndefinedKind)
}

func biIsError(ctx *EvalContext, args []Expr) Value {
	if len(args) != 1 {
		return ErrorVal
	}
	return Boolean(args[0].Eval(ctx).Kind == ErrorKind)
}

func biIsKind(k ValueKind) builtinFunc {
	return func(ctx *EvalContext, args []Expr) Value {
		if len(args) != 1 {
			return ErrorVal
		}
		return Boolean(args[0].Eval(ctx).Kind == k)
	}
}

func biInt(ctx *EvalContext, args []Expr) Value {
	if len(args) != 1 {
		return ErrorVal
	}
	v := args[0].Eval(ctx)
	switch v.Kind {
	case IntegerKind:
		return v
	case RealKind:
		return Integer(int64(v.Real))
	case BooleanKind:
		if v.Bool {
			return Integer(1)
		}
		return Integer(0)
	case StringKind:
		var i int64
		var f float64
		if _, err := fscan(v.Str, &i); err == nil {
			return Integer(i)
		}
		if _, err := fscan(v.Str, &f); err == nil {
			return Integer(int64(f))
		}
		return ErrorVal
	case UndefinedKind:
		return Undefined
	}
	return ErrorVal
}

func biReal(ctx *EvalContext, args []Expr) Value {
	if len(args) != 1 {
		return ErrorVal
	}
	v := args[0].Eval(ctx)
	switch v.Kind {
	case RealKind:
		return v
	case IntegerKind:
		return RealValue(float64(v.Int))
	case BooleanKind:
		if v.Bool {
			return RealValue(1)
		}
		return RealValue(0)
	case StringKind:
		var f float64
		if _, err := fscan(v.Str, &f); err == nil {
			return RealValue(f)
		}
		return ErrorVal
	case UndefinedKind:
		return Undefined
	}
	return ErrorVal
}

func biString(ctx *EvalContext, args []Expr) Value {
	if len(args) != 1 {
		return ErrorVal
	}
	v := args[0].Eval(ctx)
	switch v.Kind {
	case StringKind:
		return v
	case UndefinedKind:
		return Undefined
	case ErrorKind:
		return ErrorVal
	default:
		return Str(strings.Trim(v.String(), `"`))
	}
}

func biRound(f func(float64) float64) builtinFunc {
	return func(ctx *EvalContext, args []Expr) Value {
		if len(args) != 1 {
			return ErrorVal
		}
		v := args[0].Eval(ctx)
		switch v.Kind {
		case IntegerKind:
			return v
		case RealKind:
			return Integer(int64(f(v.Real)))
		case UndefinedKind:
			return Undefined
		default:
			return ErrorVal
		}
	}
}

func biIfThenElse(ctx *EvalContext, args []Expr) Value {
	if len(args) != 3 {
		return ErrorVal
	}
	return condExpr{args[0], args[1], args[2]}.Eval(ctx)
}

func biMinMax(isMin bool) builtinFunc {
	return func(ctx *EvalContext, args []Expr) Value {
		if len(args) == 0 {
			return ErrorVal
		}
		vs := evalArgs(ctx, args)
		best, ok := vs[0].AsReal()
		if !ok {
			if vs[0].Kind == UndefinedKind {
				return Undefined
			}
			return ErrorVal
		}
		allInt := vs[0].Kind == IntegerKind
		for _, v := range vs[1:] {
			f, ok := v.AsReal()
			if !ok {
				if v.Kind == UndefinedKind {
					return Undefined
				}
				return ErrorVal
			}
			allInt = allInt && v.Kind == IntegerKind
			if (isMin && f < best) || (!isMin && f > best) {
				best = f
			}
		}
		if allInt {
			return Integer(int64(best))
		}
		return RealValue(best)
	}
}

// biRegexp implements a minimal glob-style match: '*' matches any run and
// '?' one character. Full POSIX regexps would drag in state we do not need;
// every broker constraint in this repository uses globs.
func biRegexp(ctx *EvalContext, args []Expr) Value {
	if len(args) != 2 {
		return ErrorVal
	}
	vs := evalArgs(ctx, args)
	if vs[0].Kind != StringKind || vs[1].Kind != StringKind {
		return ErrorVal
	}
	return Boolean(globMatch(vs[0].Str, vs[1].Str))
}

func globMatch(pattern, s string) bool {
	// Classic iterative glob with backtracking on the last '*'.
	var pi, si int
	star, mark := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '?' || pattern[pi] == s[si]):
			pi++
			si++
		case pi < len(pattern) && pattern[pi] == '*':
			star, mark = pi, si
			pi++
		case star >= 0:
			pi = star + 1
			mark++
			si = mark
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '*' {
		pi++
	}
	return pi == len(pattern)
}

// fscan parses a full numeric string into *int64 or *float64.
func fscan(s string, out any) (int, error) {
	s = strings.TrimSpace(s)
	switch p := out.(type) {
	case *int64:
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return 0, err
		}
		*p = v
	case *float64:
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, err
		}
		*p = v
	default:
		return 0, errors.New("classad: unsupported scan target")
	}
	return 1, nil
}
