package condorg

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"condorg/internal/faultclass"
	"condorg/internal/gram"
	"condorg/internal/obs"
	"condorg/internal/wire"
)

// firstPhase returns the index of the first event with the given phase,
// or -1.
func firstPhase(tl obs.Timeline, phase string) int {
	for i, ev := range tl.Events {
		if ev.Phase == phase {
			return i
		}
	}
	return -1
}

// countPhase returns how many events carry the given phase.
func countPhase(tl obs.Timeline, phase string) int {
	n := 0
	for _, ev := range tl.Events {
		if ev.Phase == phase {
			n++
		}
	}
	return n
}

// checkSeqs asserts the timeline's sequence numbers are strictly
// increasing and consistent with the drop count.
func checkSeqs(t *testing.T, tl obs.Timeline) {
	t.Helper()
	for i, ev := range tl.Events {
		if want := tl.Dropped + i; ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d (dropped=%d)", i, ev.Seq, want, tl.Dropped)
		}
	}
}

// TestTraceTimelineSurvivesPowerCycle is the observability layer's
// headline scenario: a site power cycle loses a running job, the agent
// records the SiteLost fault and resubmits, the agent itself then
// crashes — and the recovered agent still holds the full timeline,
// because trace events are journaled with the job record. The timeline
// must read submit → … → fault(site-lost) → resubmit → recover → done.
func TestTraceTimelineSurvivesPowerCycle(t *testing.T) {
	runs := &atomic.Int64{}
	siteState := t.TempDir()
	site := newSite(t, "flaky", runs, siteState, "")
	addr := site.GatekeeperAddr()

	dir := t.TempDir()
	a1, err := NewAgent(AgentConfig{
		StateDir: dir,
		Selector: StaticSelector(addr),
		Probe:    ProbeOptions{Interval: 40 * time.Millisecond},
		Retry:    RetryOptions{MaxResubmits: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	id, err := a1.Submit(SubmitRequest{
		Owner: "u", Executable: gram.Program("task"), Args: []string{"1500ms"},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitAgentState(t, a1, id, Running)

	// Full site power cycle on the same address: the restarted site
	// reports the job lost, the agent resubmits.
	site.Close()
	site2 := newSite(t, "flaky", runs, siteState, addr)
	defer site2.Close()
	deadline := time.Now().Add(8 * time.Second)
	for {
		info, _ := a1.Status(id)
		if info.Resubmits >= 1 {
			break
		}
		if info.State.Terminal() {
			t.Fatalf("job went terminal instead of resubmitting: %+v", info)
		}
		if time.Now().After(deadline) {
			t.Fatalf("no resubmission recorded: %+v", info)
		}
		time.Sleep(10 * time.Millisecond)
	}
	a1.Close() // CRASH after the resubmission was journaled

	a2, err := NewAgent(AgentConfig{
		StateDir: dir,
		Selector: StaticSelector(addr),
		Probe:    ProbeOptions{Interval: 40 * time.Millisecond},
		Retry:    RetryOptions{MaxResubmits: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	waitAgentState(t, a2, id, Completed)

	tl, err := a2.Trace(id)
	if err != nil {
		t.Fatal(err)
	}
	checkSeqs(t, tl)
	iSubmit := firstPhase(tl, obs.PhaseSubmit)
	iFault := firstPhase(tl, obs.PhaseFault)
	iResubmit := firstPhase(tl, obs.PhaseResubmit)
	iRecover := firstPhase(tl, obs.PhaseRecover)
	iDone := firstPhase(tl, obs.PhaseDone)
	if iSubmit < 0 || iFault < 0 || iResubmit < 0 || iRecover < 0 || iDone < 0 {
		t.Fatalf("missing phases (submit=%d fault=%d resubmit=%d recover=%d done=%d):\n%+v",
			iSubmit, iFault, iResubmit, iRecover, iDone, tl.Events)
	}
	// submit and fault were recorded by the FIRST agent: their presence
	// after the crash is the durability proof.
	if !(iSubmit < iFault && iFault < iResubmit && iResubmit < iRecover && iRecover < iDone) {
		t.Fatalf("phases out of order (submit=%d fault=%d resubmit=%d recover=%d done=%d):\n%+v",
			iSubmit, iFault, iResubmit, iRecover, iDone, tl.Events)
	}
	if cl := tl.Events[iFault].Class; cl != faultclass.SiteLost.String() {
		t.Fatalf("fault event class = %q, want %q", cl, faultclass.SiteLost)
	}
}

// TestControlV1TypedErrors: the v1 envelope must deliver stable machine
// codes and fault classes the caller can branch on — no error-prose
// parsing.
func TestControlV1TypedErrors(t *testing.T) {
	w := newWorld(t, 1)
	ctl, err := NewControlServer(w.agent)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	cli := NewControlClient(ctl.Addr())
	defer cli.Close()

	assertCode := func(err error, code string, class faultclass.Class) {
		t.Helper()
		var ce *CtlError
		if !errors.As(err, &ce) {
			t.Fatalf("error %v (%T) is not a *CtlError", err, err)
		}
		if ce.Code != code {
			t.Fatalf("code = %q, want %q (%v)", ce.Code, code, err)
		}
		if got := faultclass.ClassOf(err); got != class {
			t.Fatalf("ClassOf = %v, want %v (%v)", got, class, err)
		}
	}

	_, err = cli.Status("ghost")
	assertCode(err, CtlCodeNoSuchJob, faultclass.Permanent)
	_, err = cli.Submit(CtlSubmit{Owner: "u"})
	assertCode(err, CtlCodeBadRequest, faultclass.Permanent)

	// Hold on a terminal job is a bad-state error.
	id, err := cli.Submit(CtlSubmit{Owner: "u", Program: "task", Args: []string{"10ms"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Wait(id, 8*time.Second); err != nil {
		t.Fatal(err)
	}
	assertCode(cli.Hold(id, "too late"), CtlCodeBadState, faultclass.Permanent)

	// Envelope-level failures, straight over the wire.
	wc := wire.Dial(ctl.Addr(), wire.ClientConfig{ServerName: ControlService, Timeout: 3 * time.Second})
	defer wc.Close()
	var env CtlResponse
	if err := wc.Call("ctl.v1", CtlRequest{Ver: 99, Op: "q"}, &env); err != nil {
		t.Fatal(err)
	}
	if env.Err == nil || env.Err.Code != CtlCodeUnsupportedVersion {
		t.Fatalf("ver 99 → %+v, want %s", env.Err, CtlCodeUnsupportedVersion)
	}
	env = CtlResponse{}
	if err := wc.Call("ctl.v1", CtlRequest{Ver: CtlVersion, Op: "frobnicate"}, &env); err != nil {
		t.Fatal(err)
	}
	if env.Err == nil || env.Err.Code != CtlCodeUnknownOp {
		t.Fatalf("unknown op → %+v, want %s", env.Err, CtlCodeUnknownOp)
	}
}

// TestControlV0Retired: the pre-envelope per-method ctl.* protocol is
// gone — every old method name must answer with the typed upgrade error
// (IsV0Retired), tagged Permanent so old CLIs fail fast instead of
// retrying.
func TestControlV0Retired(t *testing.T) {
	w := newWorld(t, 1)
	ctl, err := NewControlServer(w.agent)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	wc := wire.Dial(ctl.Addr(), wire.ClientConfig{ServerName: ControlService, Timeout: 3 * time.Second})
	defer wc.Close()

	for _, m := range []string{"ctl.submit", "ctl.q", "ctl.status", "ctl.rm",
		"ctl.hold", "ctl.release", "ctl.log", "ctl.stdout", "ctl.wait"} {
		err := wc.Call(m, struct{}{}, nil)
		if !wire.IsRemote(err) {
			t.Fatalf("%s: err=%v, want a remote error", m, err)
		}
		if !IsV0Retired(err) {
			t.Fatalf("%s: err=%v, want IsV0Retired", m, err)
		}
		if faultclass.ClassOf(err) != faultclass.Permanent {
			t.Fatalf("%s classified %v, want Permanent", m, faultclass.ClassOf(err))
		}
	}
	// The v1 envelope still answers on the same endpoint.
	cli := NewControlClient(ctl.Addr())
	defer cli.Close()
	if _, err := cli.Queue(); err != nil {
		t.Fatalf("ctl.v1 q after v0 retirement: %v", err)
	}
}

// TestControlQueueFilterPagination drives the v1 queue op: owner and
// state filters plus cursor pagination over a stable job-ID order.
func TestControlQueueFilterPagination(t *testing.T) {
	w := newWorld(t, 1)
	ctl, err := NewControlServer(w.agent)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	cli := NewControlClient(ctl.Addr())
	defer cli.Close()

	var ids []string
	for i := 0; i < 3; i++ {
		id, err := cli.Submit(CtlSubmit{Owner: "alice", Program: "task", Args: []string{"10ms"}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	bobID, err := cli.Submit(CtlSubmit{Owner: "bob", Program: "task", Args: []string{"10ms"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range append(append([]string(nil), ids...), bobID) {
		waitAgentState(t, w.agent, id, Completed)
	}

	// Owner filter.
	jobs, _, err := cli.QueueFiltered(CtlQueueReq{Owner: "alice"})
	if err != nil || len(jobs) != 3 {
		t.Fatalf("alice's jobs: %d err=%v", len(jobs), err)
	}
	for _, j := range jobs {
		if j.Owner != "alice" {
			t.Fatalf("owner filter leaked %+v", j)
		}
	}

	// State filter: everything is done, so idle+running matches nothing.
	jobs, _, err = cli.QueueFiltered(CtlQueueReq{States: []JobState{Idle, Running}})
	if err != nil || len(jobs) != 0 {
		t.Fatalf("idle/running filter: %d err=%v", len(jobs), err)
	}
	jobs, _, err = cli.QueueFiltered(CtlQueueReq{States: []JobState{Completed}})
	if err != nil || len(jobs) != 4 {
		t.Fatalf("completed filter: %d err=%v", len(jobs), err)
	}

	// Pagination: walk pages of 3 and reassemble the full listing.
	var walked []string
	cursor := ""
	for pages := 0; ; pages++ {
		if pages > 4 {
			t.Fatal("pagination never terminated")
		}
		page, next, err := cli.QueueFiltered(CtlQueueReq{Limit: 3, After: cursor})
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range page {
			walked = append(walked, j.ID)
		}
		if next == "" {
			break
		}
		if len(page) != 3 {
			t.Fatalf("non-final page has %d jobs, want 3", len(page))
		}
		cursor = next
	}
	if len(walked) != 4 {
		t.Fatalf("pagination walked %d jobs, want 4: %v", len(walked), walked)
	}
	seen := map[string]bool{}
	for i, id := range walked {
		if seen[id] {
			t.Fatalf("job %s appeared twice across pages", id)
		}
		seen[id] = true
		if i > 0 && !lessJobID(walked[i-1], id) {
			t.Fatalf("pages out of order: %v", walked)
		}
	}
}

// TestMetricsEndToEnd: after one complete job, the registry must hold
// non-zero agent latencies, GRAM per-verb RTTs, and the per-site gauges
// — reachable both in-process and through the control plane.
func TestMetricsEndToEnd(t *testing.T) {
	w := newWorld(t, 1)
	ctl, err := NewControlServer(w.agent)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	cli := NewControlClient(ctl.Addr())
	defer cli.Close()

	id, err := cli.Submit(CtlSubmit{Owner: "u", Program: "task", Args: []string{"50ms"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Wait(id, 8*time.Second); err != nil {
		t.Fatal(err)
	}
	// A second, longer job keeps the owner's manager alive while we
	// sample: live-structure gauges (breaker state, active jobs) only
	// exist for running managers.
	linger, err := cli.Submit(CtlSubmit{Owner: "u", Program: "task", Args: []string{"900ms"}})
	if err != nil {
		t.Fatal(err)
	}
	waitAgentState(t, w.agent, linger, Running)

	ms, err := cli.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]obs.Metric{}
	for _, m := range ms {
		byName[m.Name] = m
	}
	for _, name := range []string{
		"agent_jobs_submitted_total",
		"agent_jobs_completed_total",
		"agent_submit_seconds",
		"agent_wait_seconds",
		"journal_appends_total",
		obs.Key("gram_rtt_seconds", "verb", "submit"),
		obs.Key("gram_rtt_seconds", "verb", "commit"),
	} {
		m, ok := byName[name]
		if !ok {
			t.Fatalf("metric %q missing from dump:\n%s", name, obs.DumpText(ms))
		}
		if m.Type == "histogram" && m.Count == 0 {
			t.Fatalf("histogram %q never observed:\n%s", name, obs.DumpText(ms))
		}
		if m.Type == "counter" && m.Value == 0 {
			t.Fatalf("counter %q is zero:\n%s", name, obs.DumpText(ms))
		}
	}
	site := w.sites[0].GatekeeperAddr()
	if _, ok := byName[obs.Key("site_breaker_state", "owner", "u", "site", site)]; !ok {
		t.Fatalf("no breaker gauge for %s:\n%s", site, obs.DumpText(ms))
	}
	if m := byName[obs.Key("site_active_jobs", "site", site)]; m.Value < 1 {
		t.Fatalf("site_active_jobs = %v with a running job:\n%s", m.Value, obs.DumpText(ms))
	}
	if strings.TrimSpace(obs.DumpText(ms)) == "" {
		t.Fatal("empty text dump")
	}
	if _, err := cli.Wait(linger, 8*time.Second); err != nil {
		t.Fatal(err)
	}

	// Disabled mode: no registry, empty snapshots, everything still runs.
	off, err := NewAgent(AgentConfig{
		StateDir: t.TempDir(),
		Selector: StaticSelector(site),
		Probe:    ProbeOptions{Interval: 40 * time.Millisecond},
		Obs:      ObsOptions{Disabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	offID, err := off.Submit(SubmitRequest{Owner: "u", Executable: gram.Program("task"), Args: []string{"10ms"}})
	if err != nil {
		t.Fatal(err)
	}
	waitAgentState(t, off, offID, Completed)
	if snap := off.MetricsSnapshot(); snap != nil {
		t.Fatalf("disabled agent produced metrics: %+v", snap)
	}
	// Tracing is independent of the metric registry.
	if tl, err := off.Trace(offID); err != nil || firstPhase(tl, obs.PhaseDone) < 0 {
		t.Fatalf("disabled-metrics agent lost tracing: %+v err=%v", tl, err)
	}
}
