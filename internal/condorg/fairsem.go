package condorg

import "sync"

// fairSem is the agent-wide remote-operation cap
// (Pipeline.MaxInFlight) with fair-share dispatch across owners: when
// the cap is saturated, freed slots are granted round-robin over the
// owners with queued work instead of in global FIFO order — the same
// policy lrm.FairShare applies inside a cluster, applied at the agent's
// dispatch boundary. One hostile owner with a deep backlog therefore
// gets at most one grant per rotation turn, and a well-behaved owner's
// tasks keep flowing.
type fairSem struct {
	mu    sync.Mutex
	free  int
	q     map[string][]chan struct{} // owner -> waiters, FIFO
	order []string                   // owners with waiters, rotation order
	next  int                        // rotation cursor into order
}

func newFairSem(n int) *fairSem {
	return &fairSem{free: n, q: make(map[string][]chan struct{})}
}

// tryAcquire takes a slot without blocking. It refuses while any owner
// is queued, so a late arrival cannot barge past the rotation.
func (s *fairSem) tryAcquire() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.free > 0 && len(s.order) == 0 {
		s.free--
		return true
	}
	return false
}

// acquire blocks until a slot is granted to owner's queue or stop
// closes; it reports whether the slot was acquired.
func (s *fairSem) acquire(owner string, stop <-chan struct{}) bool {
	s.mu.Lock()
	if s.free > 0 && len(s.order) == 0 {
		s.free--
		s.mu.Unlock()
		return true
	}
	ch := make(chan struct{}, 1)
	if len(s.q[owner]) == 0 {
		s.order = append(s.order, owner)
	}
	s.q[owner] = append(s.q[owner], ch)
	s.mu.Unlock()
	select {
	case <-ch:
		return true
	case <-stop:
		s.mu.Lock()
		if s.withdrawLocked(owner, ch) {
			s.mu.Unlock()
			return false
		}
		s.mu.Unlock()
		// The grant raced the stop: a release already dequeued this
		// waiter and its token is in (or headed for) ch. Consume it and
		// pass the slot on.
		<-ch
		s.release()
		return false
	}
}

// withdrawLocked removes a still-queued waiter; false means the waiter
// was already granted. s.mu held.
func (s *fairSem) withdrawLocked(owner string, ch chan struct{}) bool {
	waiters := s.q[owner]
	for i, w := range waiters {
		if w == ch {
			s.q[owner] = append(waiters[:i], waiters[i+1:]...)
			if len(s.q[owner]) == 0 {
				s.dropOwnerLocked(owner)
			}
			return true
		}
	}
	return false
}

// dropOwnerLocked removes owner from the rotation, keeping the cursor
// pointing at the same next owner. s.mu held.
func (s *fairSem) dropOwnerLocked(owner string) {
	delete(s.q, owner)
	for i, o := range s.order {
		if o == owner {
			s.order = append(s.order[:i], s.order[i+1:]...)
			if s.next > i {
				s.next--
			}
			if s.next >= len(s.order) {
				s.next = 0
			}
			return
		}
	}
}

// release frees a slot: the next owner in the rotation with queued work
// gets it; with no waiters the slot returns to the free pool.
func (s *fairSem) release() {
	s.mu.Lock()
	if len(s.order) == 0 {
		s.free++
		s.mu.Unlock()
		return
	}
	if s.next >= len(s.order) {
		s.next = 0
	}
	owner := s.order[s.next]
	waiters := s.q[owner]
	ch := waiters[0]
	s.q[owner] = waiters[1:]
	if len(s.q[owner]) == 0 {
		s.dropOwnerLocked(owner)
	} else {
		s.next++
	}
	s.mu.Unlock()
	ch <- struct{}{}
}
