package condorg

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"condorg/internal/gram"
)

// runFailoverSeed drives one deterministic primary-kill schedule: a standby
// tails the primary while a burst of jobs is submitted, the primary is
// killed mid-burst at a seeded moment, the standby's lease expires, and the
// promoted agent must finish every acknowledged job — exactly once.
//
// The killing-flag protocol resolves the inherent submit/kill race: the
// killer raises `killing` BEFORE closing the primary, and each submitter
// samples it AFTER Submit returns. A submission acknowledged while the flag
// was down happened strictly before the kill began; synchronous replication
// (armed, with a generous timeout and a healthy standby) then guarantees
// the standby holds it, so losing it is a failover bug. Submissions that
// raced the kill are ambiguous — they may or may not have replicated — but
// even those must never execute twice.
func runFailoverSeed(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	var mu sync.Mutex
	completions := map[string]int{}
	rt := chaosRuntime(&mu, completions)

	const nSites = 2
	var gks []string
	for i := 0; i < nSites; i++ {
		site := newChaosSite(t, fmt.Sprintf("fo%d", i), rt, t.TempDir(), "", nil)
		t.Cleanup(site.Close)
		gks = append(gks, site.GatekeeperAddr())
	}

	primary, err := NewAgent(AgentConfig{
		StateDir: t.TempDir(),
		Selector: &RoundRobinSelector{Sites: gks},
		Probe:    ProbeOptions{Interval: 25 * time.Millisecond},
		Retry:    RetryOptions{MaxResubmits: 50},
		HA:       HAOptions{Enabled: true, SyncTimeout: 5 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewControlServer(primary)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := NewStandby(StandbyConfig{
		Primary:  ctl.Addr(),
		StateDir: t.TempDir(),
		Poll:     50 * time.Millisecond,
		LeaseTTL: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Arm sync replication before the burst: one replicated write, then
	// wait until the standby has acknowledged it.
	warmID, err := primary.Submit(SubmitRequest{
		Owner: "u", Executable: gram.Program("chaos"),
		Args: []string{fmt.Sprintf("s%dwarm", seed), "10ms"},
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if acked, armed := primary.store.FollowerAckedSeq(); armed && acked > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sync replication never armed (standby err=%v)", sb.LastErr())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The burst, racing the killer.
	type submission struct {
		id  string
		key string
		amb bool // raced the kill; replication not guaranteed
	}
	var (
		subMu   sync.Mutex
		subs    []submission
		killing bool
	)
	const nJobs = 8
	var wg sync.WaitGroup
	killDelay := time.Duration(5+rng.Intn(80)) * time.Millisecond
	// Draw every duration before spawning: rand.Rand is not goroutine-safe.
	durations := make([]time.Duration, nJobs)
	for i := range durations {
		durations[i] = time.Duration(30+rng.Intn(120)) * time.Millisecond
	}
	for i := 0; i < nJobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("s%dj%d", seed, i)
			d := durations[i]
			id, err := primary.Submit(SubmitRequest{
				Owner:      "u",
				Executable: gram.Program("chaos"),
				Args:       []string{key, d.String()},
			})
			if err != nil {
				return // never acknowledged; the job does not exist
			}
			subMu.Lock()
			subs = append(subs, submission{id: id, key: key, amb: killing})
			subMu.Unlock()
		}(i)
	}
	time.Sleep(killDelay)
	subMu.Lock()
	killing = true
	subMu.Unlock()
	ctl.Close()
	primary.Close()
	wg.Wait()

	select {
	case <-sb.TakeoverCh():
	case <-time.After(10 * time.Second):
		t.Fatal("standby never declared the primary dead")
	}
	promoted, err := sb.Takeover(AgentConfig{
		Selector: &RoundRobinSelector{Sites: gks},
		Probe:    ProbeOptions{Interval: 25 * time.Millisecond},
		Retry:    RetryOptions{MaxResubmits: 50},
	})
	if err != nil {
		t.Fatalf("takeover: %v", err)
	}
	defer promoted.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := promoted.WaitAll(ctx); err != nil {
		t.Fatalf("promoted agent never drained: %v", err)
	}

	subs = append(subs, submission{id: warmID, key: fmt.Sprintf("s%dwarm", seed)})
	for _, s := range subs {
		info, err := promoted.Status(s.id)
		if errors.Is(err, ErrNoSuchJob) {
			if !s.amb {
				t.Fatalf("job %s (%s) was acknowledged before the kill began but is lost", s.id, s.key)
			}
			// Ambiguous and unreplicated: tolerated, but its one possible
			// site incarnation must not have run more than once.
			mu.Lock()
			n := completions[s.key]
			mu.Unlock()
			if n > 1 {
				t.Fatalf("orphaned job %s executed %d times", s.key, n)
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if info.State != Completed {
			t.Fatalf("job %s (%s) finished as %v (err=%q)", s.id, s.key, info.State, info.Error)
		}
		mu.Lock()
		n := completions[s.key]
		mu.Unlock()
		if n < 1 {
			t.Fatalf("job %s (%s) reported Completed but never ran (lost work)", s.id, s.key)
		}
		if n > info.Resubmits+info.Migrations+1 {
			t.Fatalf("job %s (%s) ran to completion %d times with %d resubmits/%d migrations — double execution",
				s.id, s.key, n, info.Resubmits, info.Migrations)
		}
		if info.Resubmits == 0 && info.Migrations == 0 && n != 1 {
			t.Fatalf("job %s (%s) was never resubmitted yet completed %d times", s.id, s.key, n)
		}
	}
}

// TestFailoverChaos is the seeded primary-kill harness. Reproduce one
// schedule with
//
//	go test -run 'TestFailoverChaos/seed=7' ./internal/condorg/
func TestFailoverChaos(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 3
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		if !t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { runFailoverSeed(t, seed) }) {
			t.Fatalf("failover chaos failed at seed %d; reproduce with: go test -run 'TestFailoverChaos/seed=%d' ./internal/condorg/", seed, seed)
		}
	}
}
