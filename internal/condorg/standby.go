package condorg

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"condorg/internal/journal"
	"condorg/internal/wire"
)

// StandbyConfig configures a hot-standby follower.
type StandbyConfig struct {
	// Primary is the primary agent's control endpoint address.
	Primary string
	// StateDir is the standby's own state root; the replicated queue
	// lands in StateDir/queue, and a takeover starts the new agent here.
	StateDir string
	// LeaseTTL is how long the primary may be unreachable before the
	// standby declares it dead and signals TakeoverCh (default 3s).
	LeaseTTL time.Duration
	// Poll bounds one long-poll stream round trip (default 1s).
	Poll time.Duration
	// Journal configures the replicated store's own durability.
	Journal journal.StoreOptions
}

// Standby is the hot half of agent failover: it tails the primary's
// hash-chained journal stream over the control plane into its own queue
// store — verifying every record extends the chain — keeping a warm copy
// of the job table. Each poll acknowledges the standby's durable position,
// which arms the primary's synchronous-replication wait. When the primary
// stays unreachable past LeaseTTL, TakeoverCh closes; the operator (or
// serve loop) then calls Takeover to start a full Agent on the replicated
// state. Recovery resubmits in-flight jobs under their original
// SubmissionIDs, and the sites' submission dedup keeps execution
// exactly-once across the switch.
type Standby struct {
	cfg   StandbyConfig
	store *journal.Store
	cc    *ControlClient

	stop     chan struct{}
	done     chan struct{}
	takeover chan struct{}

	mu          sync.Mutex
	lastContact time.Time
	lastErr     error
	halted      bool
}

// NewStandby opens the standby's local store and starts tailing the
// primary.
func NewStandby(cfg StandbyConfig) (*Standby, error) {
	if cfg.Primary == "" {
		return nil, fmt.Errorf("condorg: standby needs the primary's control address")
	}
	if cfg.StateDir == "" {
		return nil, fmt.Errorf("condorg: standby needs a StateDir")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 3 * time.Second
	}
	if cfg.Poll <= 0 {
		cfg.Poll = time.Second
	}
	store, err := journal.OpenStoreOptions(filepath.Join(cfg.StateDir, "queue"), cfg.Journal)
	if err != nil {
		return nil, err
	}
	s := &Standby{
		cfg:   cfg,
		store: store,
		// Retries are the client's job here, not the wire layer's: the
		// lease clock must see every failure promptly.
		cc: &ControlClient{wc: wire.Dial(cfg.Primary, wire.ClientConfig{
			ServerName: ControlService,
			Timeout:    cfg.Poll + 2*time.Second,
			Retries:    -1,
		})},
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
		takeover:    make(chan struct{}),
		lastContact: time.Now(),
	}
	go s.run()
	return s, nil
}

// TakeoverCh is closed once the primary's lease has expired: the standby
// holds the freshest replicated state it will ever get, and the caller
// should decide whether to Takeover.
func (s *Standby) TakeoverCh() <-chan struct{} { return s.takeover }

// Head returns the replicated chain head — how far this standby's copy of
// the primary's history reaches.
func (s *Standby) Head() journal.ChainState { return s.store.ChainHead() }

// LastErr returns the most recent replication error (nil while healthy).
func (s *Standby) LastErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

func (s *Standby) noteContact() {
	s.mu.Lock()
	s.lastContact = time.Now()
	s.lastErr = nil
	s.mu.Unlock()
}

func (s *Standby) noteErr(err error) (leaseExpired bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastErr = err
	return time.Since(s.lastContact) > s.cfg.LeaseTTL
}

func (s *Standby) run() {
	defer close(s.done)
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		if err := s.tailOnce(); err != nil {
			if s.noteErr(err) {
				close(s.takeover)
				return
			}
			// Brief backoff so a down primary isn't hammered while the
			// lease runs out.
			select {
			case <-s.stop:
				return
			case <-time.After(s.cfg.Poll / 10):
			}
			continue
		}
		s.noteContact()
	}
}

// tailOnce runs one replication round trip: long-poll for deltas after the
// local head (acknowledging it), apply them, re-bootstrapping from a full
// snapshot when the primary says the stream cannot continue.
func (s *Standby) tailOnce() error {
	after := s.store.ChainHead().Seq
	resp, err := s.cc.JournalStream(CtlJournalStreamReq{
		After:  after,
		Max:    256,
		WaitMS: int(s.cfg.Poll / time.Millisecond),
		Ack:    after,
	})
	if err != nil {
		return err
	}
	if resp.Reset {
		return s.rebootstrap()
	}
	for _, r := range resp.Records {
		if err := s.store.ApplyReplica(r); err != nil {
			// A discontinuity means this copy's history no longer extends
			// the stream (e.g. the primary was itself restored); start
			// over from a snapshot rather than replicate a divergence.
			return s.rebootstrap()
		}
	}
	return nil
}

func (s *Standby) rebootstrap() error {
	boot, err := s.cc.JournalSnapshot()
	if err != nil {
		return err
	}
	return s.store.InstallSnapshot(boot.Data, boot.Head)
}

// halt stops the tail loop and waits it out.
func (s *Standby) halt() {
	s.mu.Lock()
	if s.halted {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.halted = true
	s.mu.Unlock()
	close(s.stop)
	<-s.done
}

// Takeover promotes the replicated state: the tail loop stops, the local
// store closes (recovery will re-verify its chain), and a full Agent
// starts on the standby's StateDir. cfg.StateDir is overridden; everything
// else (selector, credential, retry policy, HA mode for the NEXT standby)
// is the caller's.
func (s *Standby) Takeover(cfg AgentConfig) (*Agent, error) {
	s.halt()
	s.cc.Close()
	if err := s.store.Close(); err != nil {
		return nil, err
	}
	cfg.StateDir = s.cfg.StateDir
	return NewAgent(cfg)
}

// Close stops replication without taking over.
func (s *Standby) Close() error {
	s.halt()
	s.cc.Close()
	return s.store.Close()
}
