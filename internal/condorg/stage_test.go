package condorg

import (
	"bytes"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"condorg/internal/faultclass"
	"condorg/internal/gram"
	"condorg/internal/lrm"
	"condorg/internal/obs"
	"condorg/internal/wire"
)

// paddedProgram returns a runnable "#!condor name" blob padded to n bytes,
// so two executables can share a program name while having different
// content hashes — and so transfers span many chunks.
func paddedProgram(name string, n int, fill byte) []byte {
	prog := gram.Program(name)
	if len(prog) >= n {
		return prog
	}
	return append(prog, bytes.Repeat([]byte{fill}, n-len(prog))...)
}

// stageWorld is one site with injectable gatekeeper faults plus an agent
// with a small staging chunk size (so payloads span many chunks).
type stageWorld struct {
	site   *gram.Site
	faults *wire.Faults
	runs   *atomic.Int64
	dir    string
	cfg    AgentConfig
	agent  *Agent
}

func newStageWorld(t *testing.T, chunkSize, streams int) *stageWorld {
	t.Helper()
	w := &stageWorld{faults: &wire.Faults{}, runs: &atomic.Int64{}, dir: t.TempDir()}
	cluster, err := lrm.NewCluster(lrm.Config{Name: "site", Cpus: 4})
	if err != nil {
		t.Fatal(err)
	}
	w.site, err = gram.NewSite(gram.SiteConfig{
		Name:             "site",
		Cluster:          cluster,
		Runtime:          buildRuntime(w.runs),
		StateDir:         t.TempDir(),
		CommitTimeout:    2 * time.Second,
		GatekeeperFaults: w.faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.site.Close)
	w.cfg = AgentConfig{
		StateDir: w.dir,
		Selector: StaticSelector(w.site.GatekeeperAddr()),
		Probe:    ProbeOptions{Interval: 40 * time.Millisecond},
		Stage:    StageOptions{ChunkSize: chunkSize, Streams: streams},
		// Keep the breaker out of the way: staging fault handling is
		// under test, not breaker parking.
		Breaker: faultclass.BreakerConfig{Threshold: 1000},
	}
	w.agent, err = NewAgent(w.cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.agent.Close() })
	return w
}

// stageStatsSum sums the health view's per-site stage cache counters.
func stageStatsSum(a *Agent) (hits, misses int) {
	for _, row := range a.PipelineHealth() {
		hits += row.StageHits
		misses += row.StageMisses
	}
	return hits, misses
}

// TestStagePushResumesAfterReset: connection resets mid-chunk must not
// restart the transfer from byte zero — the agent re-asks the site for its
// acked offset and re-sends only the tail. The site's received-byte meter
// is the proof: well under two file sizes despite repeated teardowns.
func TestStagePushResumesAfterReset(t *testing.T) {
	w := newStageWorld(t, 4<<10, 2)
	exec := paddedProgram("task", 64<<10, 'p')

	// Tear the response of the first several stage-chunk attempts. The
	// handler has already run when the reset fires, so the site makes
	// progress the client cannot see — exactly the torn-ack case the
	// resume protocol exists for.
	var chunkAttempts atomic.Int64
	w.faults.SetConn(nil, nil, func(m string) bool {
		return m == "gram.stage-chunk" && chunkAttempts.Add(1) <= 8
	})

	id, err := w.agent.Submit(SubmitRequest{Owner: "u", Executable: exec})
	if err != nil {
		t.Fatal(err)
	}
	info := waitAgentState(t, w.agent, id, Completed)
	if !info.ExitOK {
		t.Fatalf("job failed: %+v", info)
	}
	if w.runs.Load() != 1 {
		t.Fatalf("job ran %d times, want exactly once", w.runs.Load())
	}
	if !info.Stage.Done {
		t.Fatal("Stage.Done false after completion")
	}

	tl, err := w.agent.Trace(id)
	if err != nil {
		t.Fatal(err)
	}
	resumed := false
	for _, ev := range tl.Events {
		if ev.Phase == obs.PhaseStage && strings.Contains(ev.Detail, "resuming") {
			resumed = true
		}
	}
	if !resumed {
		t.Fatalf("no stage resume event in trace: %+v", tl.Events)
	}
	// Re-sent bytes stay bounded: the meter counts every chunk payload the
	// site accepted, so a restart-from-zero strategy would read ≥ 2x.
	if got := w.site.StageBytesReceived(); got >= 2*int64(len(exec)) {
		t.Fatalf("site received %d bytes for a %d-byte file; transfer restarted instead of resuming", got, len(exec))
	}
}

// TestStageResumesAfterAgentCrash: an agent killed mid-transfer journals
// the acked offset in the job record; the reopened agent continues the
// push from there instead of byte zero, and the job runs exactly once.
func TestStageResumesAfterAgentCrash(t *testing.T) {
	w := newStageWorld(t, 2<<10, 1)
	exec := paddedProgram("task", 64<<10, 'q')

	// Slow each chunk down so the kill lands mid-transfer.
	w.faults.SetDelay(func(m string) time.Duration {
		if m == "gram.stage-chunk" {
			return 10 * time.Millisecond
		}
		return 0
	})

	id, err := w.agent.Submit(SubmitRequest{Owner: "u", Executable: exec})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until a partial offset is journaled, then kill the agent.
	deadline := time.Now().Add(8 * time.Second)
	for {
		info, err := w.agent.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.Stage.Offset > 0 && !info.Stage.Done {
			break
		}
		if info.Stage.Done || time.Now().After(deadline) {
			t.Fatalf("never observed a partial journaled offset (stage=%+v)", info.Stage)
		}
		time.Sleep(2 * time.Millisecond)
	}
	w.agent.Close()
	w.faults.Clear()

	agent2, err := NewAgent(w.cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer agent2.Close()
	info := waitAgentState(t, agent2, id, Completed)
	if !info.ExitOK || !info.Stage.Done {
		t.Fatalf("job after recovery: %+v", info)
	}
	if w.runs.Load() != 1 {
		t.Fatalf("job ran %d times, want exactly once", w.runs.Load())
	}
	tl, err := agent2.Trace(id)
	if err != nil {
		t.Fatal(err)
	}
	resumed := false
	for _, ev := range tl.Events {
		if ev.Phase == obs.PhaseStage && strings.Contains(ev.Detail, "resuming at") {
			resumed = true
		}
	}
	if !resumed {
		t.Fatalf("no resume-from-offset event after restart: %+v", tl.Events)
	}
	if got := w.site.StageBytesReceived(); got >= 2*int64(len(exec)) {
		t.Fatalf("site received %d bytes for a %d-byte file across the crash", got, len(exec))
	}
}

// TestStageCacheSharedAcrossJobs: sixteen jobs submitting the same binary
// transfer it once — one cache miss, fifteen hits, and the site receives
// exactly one file's worth of chunk payload.
func TestStageCacheSharedAcrossJobs(t *testing.T) {
	w := newStageWorld(t, 8<<10, 4)
	exec := paddedProgram("task", 32<<10, 's')

	// The first job populates the site cache. It runs long so the owner's
	// manager (and its health rows) stays alive while we inspect stats.
	first, err := w.agent.Submit(SubmitRequest{Owner: "u", Executable: exec, Args: []string{"5s"}})
	if err != nil {
		t.Fatal(err)
	}
	waitAgentState(t, w.agent, first, Running)

	var ids []string
	for i := 0; i < 15; i++ {
		id, err := w.agent.Submit(SubmitRequest{Owner: "u", Executable: exec})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		info := waitAgentState(t, w.agent, id, Completed)
		if !info.Stage.CacheHit {
			t.Errorf("job %s did not record a cache hit", id)
		}
	}
	hits, misses := stageStatsSum(w.agent)
	if hits != 15 || misses != 1 {
		t.Fatalf("stage stats = %d hits / %d misses, want 15/1", hits, misses)
	}
	if got := w.site.StageBytesReceived(); got != int64(len(exec)) {
		t.Fatalf("site received %d chunk bytes, want exactly one file (%d)", got, len(exec))
	}
	if err := w.agent.Remove(first); err != nil {
		t.Fatal(err)
	}
}

// TestStageCacheKeyedByContent: two different binaries sharing a program
// name must not collide in the cache — each job's bytes are stored and
// served under their own content hash.
func TestStageCacheKeyedByContent(t *testing.T) {
	w := newStageWorld(t, 8<<10, 2)
	execA := paddedProgram("task", 16<<10, 'a')
	execB := paddedProgram("task", 16<<10, 'b')
	hashA, hashB := gram.HashExecutable(execA), gram.HashExecutable(execB)
	if hashA == hashB {
		t.Fatal("test bug: padded programs collide")
	}

	// Job A runs long so the manager's health rows stay alive while we
	// inspect the stats after job B.
	idA, err := w.agent.Submit(SubmitRequest{Owner: "u", Executable: execA, Args: []string{"5s"}})
	if err != nil {
		t.Fatal(err)
	}
	waitAgentState(t, w.agent, idA, Running)
	idB, err := w.agent.Submit(SubmitRequest{Owner: "u", Executable: execB})
	if err != nil {
		t.Fatal(err)
	}
	infoB := waitAgentState(t, w.agent, idB, Completed)
	if infoB.Stage.CacheHit {
		t.Fatal("different binary under the same program name hit the cache")
	}
	hits, misses := stageStatsSum(w.agent)
	if hits != 0 || misses != 2 {
		t.Fatalf("stage stats = %d hits / %d misses, want 0/2", hits, misses)
	}
	// Both objects live in the site cache under their own hash.
	gc := gram.NewClient(nil, nil)
	defer gc.Close()
	for _, h := range []string{hashA, hashB} {
		present, _, err := gc.StageCheck(w.site.GatekeeperAddr(), h)
		if err != nil || !present {
			t.Fatalf("hash %s: present=%v err=%v", h[:12], present, err)
		}
	}
	if got := w.site.StageBytesReceived(); got != int64(len(execA)+len(execB)) {
		t.Fatalf("site received %d chunk bytes, want both files (%d)", got, len(execA)+len(execB))
	}
	if w.runs.Load() != 2 {
		t.Fatalf("runs = %d, want 2", w.runs.Load())
	}
	if err := w.agent.Remove(idA); err != nil {
		t.Fatal(err)
	}
}

// TestStageDisabledFallsBackToPull: with staging off, jobs run through the
// old pull path — no stage tasks, no cache traffic, still exactly once.
func TestStageDisabledFallsBackToPull(t *testing.T) {
	w := &stageWorld{runs: &atomic.Int64{}}
	site := newSite(t, "s", w.runs, t.TempDir(), "")
	t.Cleanup(site.Close)
	agent, err := NewAgent(AgentConfig{
		StateDir: t.TempDir(),
		Selector: StaticSelector(site.GatekeeperAddr()),
		Probe:    ProbeOptions{Interval: 40 * time.Millisecond},
		Stage:    StageOptions{Disabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	id, err := agent.Submit(SubmitRequest{Owner: "u", Executable: gram.Program("task")})
	if err != nil {
		t.Fatal(err)
	}
	info := waitAgentState(t, agent, id, Completed)
	if !info.ExitOK || info.Stage.Hash != "" {
		t.Fatalf("disabled staging left stage state: %+v", info.Stage)
	}
	if got := site.StageBytesReceived(); got != 0 {
		t.Fatalf("site received %d stage bytes with staging disabled", got)
	}
}

// TestStageUnreachableSiteFallsBack: staging against a site that never
// answers must not spin forever — after the attempt budget the job falls
// back to the submit path, whose retry cap holds it with a typed reason.
func TestStageUnreachableSiteFallsBack(t *testing.T) {
	runs := &atomic.Int64{}
	dead := newSite(t, "dead", runs, t.TempDir(), "")
	addr := dead.GatekeeperAddr()
	dead.Close()
	agent, err := NewAgent(AgentConfig{
		StateDir: t.TempDir(),
		Selector: StaticSelector(addr),
		Probe:    ProbeOptions{Interval: 20 * time.Millisecond},
		Retry:    RetryOptions{MaxSubmitRetries: 2},
		Breaker:  faultclass.BreakerConfig{Threshold: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	id, err := agent.Submit(SubmitRequest{Owner: "u", Executable: gram.Program("task")})
	if err != nil {
		t.Fatal(err)
	}
	info := waitAgentState(t, agent, id, Held)
	if !strings.Contains(info.HoldReason, "submission failed") {
		t.Fatalf("hold reason = %q", info.HoldReason)
	}
	if !info.Stage.Done {
		t.Fatal("staging never yielded to the submit path")
	}
}
