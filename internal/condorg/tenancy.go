package condorg

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"condorg/internal/faultclass"
	"condorg/internal/journal"
	"condorg/internal/obs"
)

// Multi-tenant core: the job table is lock-striped per owner (one
// ownerShard per owner, each with its own mutex and journal partition)
// and admission to the queue is governed by per-owner quotas and a
// token-bucket rate limit, enforced before any work reaches the
// GridManager pipelines. See DESIGN.md §11.

// Typed admission errors. Both are classified Permanent — retrying the
// same request immediately cannot succeed, and the control plane maps
// them to the stable codes CtlCodeQuotaExceeded / CtlCodeRateLimited
// rather than a Transient the CLI would blindly retry.
var (
	// ErrQuotaExceeded reports a submit rejected by a per-owner quota
	// (max queued, max active, or max payload size).
	ErrQuotaExceeded = errors.New("owner quota exceeded")
	// ErrRateLimited reports a submit rejected by the per-owner
	// token-bucket rate limit.
	ErrRateLimited = errors.New("owner submit rate exceeded")
)

// TenancyOptions configures multi-owner sharding and fair-share
// admission. The zero value imposes no quotas and shards the journal
// across journal.DefaultPartitions buckets.
type TenancyOptions struct {
	// Partitions is the number of journal partitions the job queue is
	// hash-sharded across by owner (0 = journal.DefaultPartitions;
	// negative = a single shared store). Ignored when HA is enabled:
	// synchronous replication streams one hash chain, so the HA primary
	// keeps the single root store.
	Partitions int
	// MaxQueuedPerOwner caps one owner's total non-terminal jobs,
	// held included (0 = unlimited).
	MaxQueuedPerOwner int
	// MaxActivePerOwner caps one owner's non-terminal, non-held jobs
	// (0 = unlimited).
	MaxActivePerOwner int
	// SubmitRate is the per-owner token-bucket refill rate in submits
	// per second (0 = unlimited).
	SubmitRate float64
	// SubmitBurst is the token-bucket depth: how many submits an owner
	// may burst above the steady rate (minimum 1 when SubmitRate > 0).
	SubmitBurst int
	// MaxPayloadBytes caps the executable+stdin bytes of one submit
	// (0 = unlimited).
	MaxPayloadBytes int
	// MyProxy binds owners to the MyProxy accounts their proxies are
	// proactively renewed from (credmgr.Monitor reads the bindings via
	// Agent.MyProxyBinding). Owners without an entry fall back to
	// MyProxyDefault.
	MyProxy map[string]MyProxyBinding
	// MyProxyDefault, when non-nil, is the renewal binding for owners
	// not named in MyProxy.
	MyProxyDefault *MyProxyBinding
}

// MyProxyBinding names the MyProxy account one owner's short-lived proxies
// are renewed from. The binding lives in agent configuration (not credmgr)
// so serve-flag wiring and the monitor share one source of truth.
type MyProxyBinding struct {
	// Addr is the MyProxy server address; empty means the monitor's
	// default server.
	Addr string
	// User and Pass authenticate the renewal fetch.
	User string
	Pass string
}

// MyProxyBinding returns owner's credential-renewal binding, falling back
// to the tenancy-wide default; ok is false when neither is configured.
func (a *Agent) MyProxyBinding(owner string) (MyProxyBinding, bool) {
	if b, ok := a.cfg.Tenancy.MyProxy[owner]; ok {
		return b, true
	}
	if d := a.cfg.Tenancy.MyProxyDefault; d != nil {
		return *d, true
	}
	return MyProxyBinding{}, false
}

// ownerShard is one owner's stripe of the job table: its own lock, its
// own job indexes, its own journal partition, and its own admission
// (token bucket) state. One owner's burst contends only on its shard.
type ownerShard struct {
	owner string
	store *journal.Store // journal partition (the root store when unpartitioned)

	// Admission counters are resolved once per shard: a hostile owner
	// spinning on rejections must not serialize every attempt through
	// the metrics registry lock.
	admitted *obs.Counter
	rejected map[string]*obs.Counter // by rejection reason

	mu       sync.Mutex
	jobs     map[string]*jobRecord // all of this owner's jobs by ID
	active   map[string]*jobRecord // the non-terminal subset
	tokens   float64               // token-bucket level
	lastFill time.Time             // last token refill instant
}

// shard returns (creating if needed) owner's shard, opening its journal
// partition on first use.
func (a *Agent) shard(owner string) (*ownerShard, error) {
	a.shardMu.RLock()
	sh := a.shards[owner]
	a.shardMu.RUnlock()
	if sh != nil {
		return sh, nil
	}
	a.shardMu.Lock()
	defer a.shardMu.Unlock()
	if sh = a.shards[owner]; sh != nil {
		return sh, nil
	}
	st := a.store
	if a.parts != nil {
		var err error
		st, err = a.parts.PartitionFor(owner)
		if err != nil {
			return nil, err
		}
	}
	burst := float64(a.cfg.Tenancy.SubmitBurst)
	if burst < 1 {
		burst = 1
	}
	sh = &ownerShard{
		owner:    owner,
		store:    st,
		admitted: a.obs.Counter(obs.Key("agent_owner_admitted_total", "owner", owner)),
		rejected: make(map[string]*obs.Counter, 4),
		jobs:     make(map[string]*jobRecord),
		active:   make(map[string]*jobRecord),
		tokens:   burst,
		lastFill: time.Now(),
	}
	for _, reason := range []string{"payload", "queued", "active", "rate"} {
		sh.rejected[reason] = a.obs.Counter(obs.Key("agent_owner_rejected_total", "owner", owner, "reason", reason))
	}
	a.shards[owner] = sh
	return sh, nil
}

// shardIfPresent returns owner's shard or nil, without creating one.
func (a *Agent) shardIfPresent(owner string) *ownerShard {
	a.shardMu.RLock()
	defer a.shardMu.RUnlock()
	return a.shards[owner]
}

// allShards snapshots the shard list (unordered).
func (a *Agent) allShards() []*ownerShard {
	a.shardMu.RLock()
	defer a.shardMu.RUnlock()
	out := make([]*ownerShard, 0, len(a.shards))
	for _, sh := range a.shards {
		out = append(out, sh)
	}
	return out
}

// job resolves a job ID through the global index.
func (a *Agent) job(id string) (*jobRecord, bool) {
	a.idMu.RLock()
	rec, ok := a.ids[id]
	a.idMu.RUnlock()
	return rec, ok
}

// storeFor returns the journal store owner's records persist to.
func (a *Agent) storeFor(owner string) *journal.Store {
	if a.parts == nil {
		return a.store
	}
	if sh := a.shardIfPresent(owner); sh != nil {
		return sh.store
	}
	st, err := a.parts.PartitionFor(owner)
	if err != nil {
		// Never lose a persist: fall back to the root store, which
		// recovery also reads (and re-migrates from).
		return a.store
	}
	return st
}

// indexJob makes rec visible: global ID index plus its owner's shard.
func (a *Agent) indexJob(sh *ownerShard, rec *jobRecord) {
	a.idMu.Lock()
	a.ids[rec.ID] = rec
	a.idMu.Unlock()
	sh.mu.Lock()
	sh.jobs[rec.ID] = rec
	if !rec.State.Terminal() {
		sh.active[rec.ID] = rec
	}
	sh.mu.Unlock()
}

// admit applies the per-owner admission policy to one submit: payload
// cap, queued/active quotas, then the token bucket. Rejections carry
// ErrQuotaExceeded / ErrRateLimited (faultclass Permanent) and count in
// agent_owner_rejected_total{owner,reason}.
func (a *Agent) admit(sh *ownerShard, payload int) error {
	t := a.cfg.Tenancy
	reject := func(reason string, err error) error {
		sh.rejected[reason].Inc()
		return faultclass.New(faultclass.Permanent, err)
	}
	if t.MaxPayloadBytes > 0 && payload > t.MaxPayloadBytes {
		return reject("payload", fmt.Errorf("condorg: %w: owner %q payload %d bytes exceeds the %d-byte cap",
			ErrQuotaExceeded, sh.owner, payload, t.MaxPayloadBytes))
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if t.MaxQueuedPerOwner > 0 && len(sh.active) >= t.MaxQueuedPerOwner {
		return reject("queued", fmt.Errorf("condorg: %w: owner %q has %d jobs queued (max %d)",
			ErrQuotaExceeded, sh.owner, len(sh.active), t.MaxQueuedPerOwner))
	}
	if t.MaxActivePerOwner > 0 {
		n := 0
		for _, rec := range sh.active {
			rec.mu.Lock()
			held := rec.State == Held
			rec.mu.Unlock()
			if !held {
				if n++; n >= t.MaxActivePerOwner {
					break
				}
			}
		}
		if n >= t.MaxActivePerOwner {
			return reject("active", fmt.Errorf("condorg: %w: owner %q has %d active jobs (max %d)",
				ErrQuotaExceeded, sh.owner, n, t.MaxActivePerOwner))
		}
	}
	if t.SubmitRate > 0 {
		burst := float64(t.SubmitBurst)
		if burst < 1 {
			burst = 1
		}
		now := time.Now()
		sh.tokens = min(burst, sh.tokens+now.Sub(sh.lastFill).Seconds()*t.SubmitRate)
		sh.lastFill = now
		if sh.tokens < 1 {
			return reject("rate", fmt.Errorf("condorg: %w: owner %q exceeded %.3g submits/s (burst %d)",
				ErrRateLimited, sh.owner, t.SubmitRate, t.SubmitBurst))
		}
		sh.tokens--
	}
	sh.admitted.Inc()
	return nil
}
