package condorg

// The staging data plane's agent half. Before the GRAM submit, a job whose
// executable has not reached its site runs a taskStage on the site's
// pipeline: check the site's content-addressed cache, and on a miss push
// the bytes in parallel chunk streams, journaling each site-acked offset in
// the job record so an agent crash or connection reset resumes from the
// last acked chunk instead of byte zero. The per-site stream cap
// (AgentConfig.Stage.Streams) is shared across all of the owner's staging
// jobs and composes with Pipeline.PerSiteInFlight: a staging task occupies
// one pipeline slot while its chunk RPCs share the stream semaphore.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"condorg/internal/faultclass"
	"condorg/internal/gass"
	"condorg/internal/obs"
)

// maxStageAttempts bounds resume attempts within one staging task. A
// transfer that keeps dying re-checks the site's acked offset and resumes
// from there; once the budget is spent the task abandons pre-staging and
// falls back to the site-pull path, so staging trouble can never wedge a
// job that plain submission would have run.
const maxStageAttempts = 3

// stageStream returns the per-site chunk-stream semaphore.
func (gm *GridManager) stageStream(site string) chan struct{} {
	gm.mu.Lock()
	defer gm.mu.Unlock()
	sem := gm.stageSem[site]
	if sem == nil {
		sem = make(chan struct{}, gm.agent.cfg.Stage.Streams)
		gm.stageSem[site] = sem
	}
	return sem
}

// stageStats reports per-site executable-cache hits and misses observed by
// this manager's staging tasks.
func (gm *GridManager) stageStats() (hits, misses map[string]int) {
	gm.mu.Lock()
	defer gm.mu.Unlock()
	hits = make(map[string]int, len(gm.stageHits))
	misses = make(map[string]int, len(gm.stageMisses))
	for site, n := range gm.stageHits {
		hits[site] = n
	}
	for site, n := range gm.stageMisses {
		misses[site] = n
	}
	return hits, misses
}

// readSpool resolves a gass:// URL of the agent's own spool server to its
// on-disk file and reads it.
func (a *Agent) readSpool(ref string) ([]byte, error) {
	u, err := gass.ParseURL(ref)
	if err != nil {
		return nil, err
	}
	return os.ReadFile(filepath.Join(a.gassS.Root(), filepath.FromSlash(u.Path)))
}

// stageJob pushes one job's executable to its site (a taskStage body).
// Outcomes:
//
//   - cache hit or completed push → Stage.Done journaled, job requeued
//     (the next dispatch pass runs the submit);
//   - breaker open → requeued; the dispatcher parks it until the site is
//     due its half-open probe;
//   - AuthExpired → job held for a credential refresh;
//   - transfer errors → the site-acked offset is journaled and the push
//     resumes (bounded by maxStageAttempts), after which pre-staging is
//     abandoned and the job proceeds to submit (the site pulls via GASS).
func (gm *GridManager) stageJob(rec *jobRecord) {
	rec.mu.Lock()
	if rec.State.Terminal() || rec.State == Held || rec.Stage.Done {
		rec.mu.Unlock()
		return
	}
	site := rec.Site
	hash := rec.Stage.Hash
	total := rec.Stage.Total
	execRef := rec.Spec.Executable
	journaled := rec.Stage.Offset
	rec.mu.Unlock()

	requeue := func() {
		gm.mu.Lock()
		gm.pendingLater(rec)
		gm.mu.Unlock()
	}
	finish := func(cacheHit bool, detail string) {
		rec.mu.Lock()
		rec.Stage.Done = true
		rec.Stage.CacheHit = cacheHit
		if cacheHit {
			rec.Stage.Offset = 0
		} else {
			rec.Stage.Offset = total
		}
		gm.agent.traceLocked(rec, obs.PhaseStage, "", detail)
		rec.mu.Unlock()
		gm.agent.persist(rec)
		requeue()
	}

	present, siteOff, err := gm.gram.StageCheck(site, hash)
	if err != nil {
		gm.stageFailed(rec, site, err, requeue, finish)
		return
	}
	if present {
		gm.mu.Lock()
		gm.stageHits[site]++
		gm.mu.Unlock()
		gm.agent.obs.Counter("stage_cache_hits_total").Inc()
		finish(true, "executable "+short(hash)+" already cached at "+site)
		return
	}
	gm.mu.Lock()
	gm.stageMisses[site]++
	gm.mu.Unlock()
	gm.agent.obs.Counter("stage_cache_misses_total").Inc()

	data, err := gm.agent.readSpool(execRef)
	if err != nil {
		// The spool is local state; losing it is not the site's fault.
		// Fall back to submit — stage-in there will fail the same way and
		// classify properly if the file is truly gone.
		finish(false, "pre-stage abandoned (spool read: "+err.Error()+"); site will pull")
		return
	}

	off := siteOff
	if off > journaled {
		// The site is ahead of our journal: a previous push's acks were
		// lost with a torn response or an agent crash. Trust the site.
		gm.agent.obs.Counter("stage_resumes_total").Inc()
		gm.agent.trace(rec, obs.PhaseStage, "",
			fmt.Sprintf("resuming at site-acked offset %d/%d", off, total))
	} else if journaled > 0 {
		gm.agent.obs.Counter("stage_resumes_total").Inc()
		gm.agent.trace(rec, obs.PhaseStage, "",
			fmt.Sprintf("resuming at journaled offset %d/%d (site acked %d)", journaled, total, off))
	}

	attempts := 0
	chunkSize := gm.agent.cfg.Stage.ChunkSize
	streams := gm.agent.cfg.Stage.Streams
	sem := gm.stageStream(site)
	chunks := 0
	for off < int64(len(data)) {
		select {
		case <-gm.stopCh:
			// Agent shutting down: the acked offset is already journaled,
			// recovery resumes from it.
			return
		default:
		}
		acked, err := gm.pushWindow(site, hash, data, off, chunkSize, streams, sem, &chunks)
		if acked > off {
			gm.agent.obs.Counter("stage_bytes_total").Add(acked - off)
			off = acked
			rec.mu.Lock()
			rec.Stage.Offset = off
			rec.mu.Unlock()
			gm.agent.persist(rec)
		}
		if err != nil {
			if errors.Is(err, faultclass.ErrBreakerOpen) ||
				faultclass.ClassOf(err) == faultclass.AuthExpired {
				gm.stageFailed(rec, site, err, requeue, finish)
				return
			}
			attempts++
			if attempts >= maxStageAttempts {
				finish(false, fmt.Sprintf("pre-stage abandoned after %d attempts (%v); site will pull", attempts, err))
				return
			}
			// A torn response can hide a successful server-side write: ask
			// the site where it actually is, then resume from there.
			if present, siteOff, cerr := gm.gram.StageCheck(site, hash); cerr == nil {
				if present {
					break
				}
				if siteOff > off {
					off = siteOff
					rec.mu.Lock()
					rec.Stage.Offset = off
					rec.mu.Unlock()
					gm.agent.persist(rec)
				}
			}
			gm.agent.obs.Counter("stage_resumes_total").Inc()
			gm.agent.trace(rec, obs.PhaseStage, faultclass.ClassOf(err).String(),
				fmt.Sprintf("transfer error at offset %d/%d; resuming (attempt %d/%d)", off, total, attempts, maxStageAttempts))
		}
	}
	if err := gm.gram.StageCommit(site, hash, int64(len(data))); err != nil {
		gm.stageFailed(rec, site, err, requeue, finish)
		return
	}
	finish(false, fmt.Sprintf("staged %d bytes in %d chunks to %s", len(data), chunks, site))
}

// pushWindow sends up to streams consecutive chunks starting at off in
// parallel, each RPC holding one slot of the per-site stream semaphore.
// It returns the highest contiguous site ack observed and the first error.
func (gm *GridManager) pushWindow(site, hash string, data []byte, off int64, chunkSize, streams int, sem chan struct{}, chunks *int) (int64, error) {
	type result struct {
		acked int64
		err   error
	}
	var wg sync.WaitGroup
	results := make([]result, 0, streams)
	var mu sync.Mutex
	for i := 0; i < streams && off < int64(len(data)); i++ {
		end := off + int64(chunkSize)
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		chunkOff, chunk := off, data[off:end]
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			acked, err := gm.gram.StageChunk(site, hash, chunkOff, chunk)
			<-sem
			mu.Lock()
			results = append(results, result{acked, err})
			mu.Unlock()
		}()
		off = end
	}
	wg.Wait()
	var maxAck int64
	var firstErr error
	for _, r := range results {
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		*chunks++
		gm.agent.obs.Counter("stage_chunks_total").Inc()
		if r.acked > maxAck {
			maxAck = r.acked
		}
	}
	return maxAck, firstErr
}

// stageFailed routes a staging failure the same way submitFailed routes
// submission failures: breaker fast-fails park the job, expired credentials
// hold it, and anything else journals progress and retries on a later pass
// (staging consumes no submit-retry budget — no remote job exists yet).
func (gm *GridManager) stageFailed(rec *jobRecord, site string, err error,
	requeue func(), finish func(bool, string)) {
	if errors.Is(err, faultclass.ErrBreakerOpen) {
		requeue()
		return
	}
	if faultclass.ClassOf(err) == faultclass.AuthExpired {
		gm.holdJob(rec, "credential rejected by "+site+": "+err.Error())
		return
	}
	rec.mu.Lock()
	rec.Stage.Attempts++
	n := rec.Stage.Attempts
	rec.mu.Unlock()
	if n >= maxStageAttempts {
		// An unreachable or broken site must not loop in staging forever:
		// fall back to plain submission, whose retry budget and hold path
		// classify the failure properly.
		finish(false, fmt.Sprintf("pre-stage abandoned after %d attempts (%v); site will pull", n, err))
		return
	}
	gm.agent.persist(rec)
	gm.agent.trace(rec, obs.PhaseStage, faultclass.ClassOf(err).String(),
		"staging to "+site+" failed: "+err.Error())
	requeue()
}

// short abbreviates a content hash for human-facing trace details.
func short(hash string) string {
	if len(hash) > 12 {
		return hash[:12]
	}
	return hash
}
