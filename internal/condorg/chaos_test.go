package condorg

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"condorg/internal/faultclass"
	"condorg/internal/gram"
	"condorg/internal/lrm"
	"condorg/internal/obs"
	"condorg/internal/wire"
)

// chaosRuntime counts COMPLETED executions per job key (args[0]): a run
// interrupted by a site crash does not count, so the counters measure the
// paper's exactly-once guarantee directly.
func chaosRuntime(mu *sync.Mutex, completions map[string]int) *gram.FuncRuntime {
	rt := gram.NewFuncRuntime()
	rt.Register("chaos", func(ctx context.Context, args []string, _ []byte, stdout, _ io.Writer, _ map[string]string) error {
		d := 20 * time.Millisecond
		if len(args) > 1 {
			if p, err := time.ParseDuration(args[1]); err == nil {
				d = p
			}
		}
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return ctx.Err()
		}
		mu.Lock()
		completions[args[0]]++
		mu.Unlock()
		fmt.Fprintf(stdout, "chaos done %s\n", args[0])
		return nil
	})
	return rt
}

func newChaosSite(t *testing.T, name string, rt *gram.FuncRuntime, stateDir, addr string, faults *wire.Faults) *gram.Site {
	t.Helper()
	cluster, err := lrm.NewCluster(lrm.Config{Name: name, Cpus: 4})
	if err != nil {
		t.Fatal(err)
	}
	site, err := gram.NewSite(gram.SiteConfig{
		Name:             name,
		Cluster:          cluster,
		Runtime:          rt,
		StateDir:         stateDir,
		CommitTimeout:    2 * time.Second,
		GatekeeperAddr:   addr,
		GatekeeperFaults: faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	return site
}

// chaosSite tracks the induced-failure state of one site across the storm.
type chaosSite struct {
	name, addr, dir string
	site            *gram.Site
	faults          *wire.Faults
	partitioned     bool
	gkDown          bool
}

// runChaosSeed drives one deterministic chaos schedule: a fixed batch of
// jobs, then a seeded storm of partitions, gatekeeper-machine crashes,
// JobManager crashes, full site power cycles, and agent kill/recover
// cycles; then the world heals and every job must drain to Completed with
// no lost work and no double execution.
func runChaosSeed(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	var mu sync.Mutex
	completions := map[string]int{}
	rt := chaosRuntime(&mu, completions)

	const nSites = 2
	sites := make([]*chaosSite, nSites)
	var gks []string
	// Tear every fifth stage-chunk RESPONSE mid-frame: the site keeps the
	// bytes, the agent sees a transport error, and the resume protocol has
	// to reconcile — exactly the torn-ack hazard of a real WAN. Batch-verb
	// responses get the same treatment every fourth frame: a torn
	// batch-submit leaves N jobs created at the site with the client
	// unaware, so the retried batch must settle through SubmissionID dedup
	// (and a torn batch-commit through the idempotent recovery re-commit).
	var stageResets, batchResets atomic.Int64
	for i := range sites {
		s := &chaosSite{name: fmt.Sprintf("chaos%d", i), dir: t.TempDir(), faults: &wire.Faults{}}
		s.faults.SetConn(nil, nil, func(m string) bool {
			switch {
			case m == "gram.stage-chunk":
				return stageResets.Add(1)%5 == 0
			case strings.HasPrefix(m, "gram.batch-") || strings.HasPrefix(m, "jm.batch-"):
				return batchResets.Add(1)%4 == 0
			}
			return false
		})
		s.site = newChaosSite(t, s.name, rt, s.dir, "", s.faults)
		s.addr = s.site.GatekeeperAddr()
		sites[i] = s
		gks = append(gks, s.addr)
	}
	defer func() {
		for _, s := range sites {
			s.site.Close()
		}
	}()

	dir := t.TempDir()
	openAgent := func() *Agent {
		a, err := NewAgent(AgentConfig{
			StateDir: dir,
			Selector: &RoundRobinSelector{Sites: gks},
			Probe:    ProbeOptions{Interval: 25 * time.Millisecond},
			Retry:    RetryOptions{MaxResubmits: 50},
			// Non-default pipeline shape so the soak exercises the per-site
			// workers with real concurrency rather than the serial fallback.
			Pipeline: PipelineOptions{PerSiteInFlight: 3, MaxInFlight: 8},
			// Small chunks so every staging transfer spans several
			// stage-chunk RPCs and meets the mid-frame resets above.
			Stage: StageOptions{ChunkSize: 4 << 10, Streams: 2},
			Breaker: faultclass.BreakerConfig{
				Threshold: 3,
				BaseDelay: 30 * time.Millisecond,
				MaxDelay:  250 * time.Millisecond,
				Seed:      seed,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	agent := openAgent()
	defer func() { agent.Close() }()

	const nJobs = 6
	ids := make([]string, nJobs)
	for i := range ids {
		d := time.Duration(20+rng.Intn(120)) * time.Millisecond
		id, err := agent.Submit(SubmitRequest{
			Owner: "u",
			// Each job carries a unique multi-chunk executable, so the
			// staging plane (check/chunk/commit, resume, per-site cache)
			// rides through every event in the schedule.
			Executable: paddedProgram("chaos", 24<<10, byte('a'+i)),
			Args:       []string{fmt.Sprintf("j%d", i), d.String()},
		})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	agentKills := 0
	for ev := 0; ev < 18; ev++ {
		time.Sleep(time.Duration(20+rng.Intn(60)) * time.Millisecond)
		s := sites[rng.Intn(nSites)]
		switch rng.Intn(6) {
		case 0: // network partition toggles
			if s.partitioned {
				s.site.Heal()
				s.partitioned = false
			} else if !s.gkDown {
				s.site.Partition()
				s.partitioned = true
			}
		case 1: // interface-machine (gatekeeper) crash toggles
			if s.gkDown {
				if err := s.site.RestartGatekeeperMachine(); err != nil {
					t.Fatal(err)
				}
				s.gkDown = false
			} else if !s.partitioned {
				s.site.CrashGatekeeperMachine()
				s.gkDown = true
			}
		case 2: // crash one JobManager at this site
			for _, info := range agent.Jobs() {
				if info.Site == s.addr && info.Contact.JobID != "" && !info.State.Terminal() {
					s.site.CrashJobManager(info.Contact.JobID) // may already be down
					break
				}
			}
		case 3: // full site power cycle: running jobs are lost
			s.site.Close()
			s.site = newChaosSite(t, s.name, rt, s.dir, s.addr, s.faults)
			s.partitioned, s.gkDown = false, false
		case 4: // agent (submit machine) crash + recovery
			if agentKills < 2 {
				agentKills++
				agent.Close()
				agent = openAgent()
			}
		case 5: // quiet interval
		}
	}

	// Heal the world, then everything must drain.
	for _, s := range sites {
		if s.partitioned {
			s.site.Heal()
			s.partitioned = false
		}
		if s.gkDown {
			if err := s.site.RestartGatekeeperMachine(); err != nil {
				t.Fatal(err)
			}
			s.gkDown = false
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := agent.WaitAll(ctx); err != nil {
		for _, id := range ids {
			info, _ := agent.Status(id)
			t.Logf("job %s: state=%v disconnected=%v resubmits=%d submitRetries=%d cancelPending=%v contact=%v err=%q\nlog:\n%s",
				id, info.State, info.Disconnected, info.Resubmits, info.SubmitRetries,
				info.CancelPending, info.Contact, info.Error, fmt2str(info.Log))
		}
		for _, s := range sites {
			t.Logf("site %s health=%v", s.addr, agent.SiteHealth("u", s.addr))
		}
		pprof.Lookup("goroutine").WriteTo(os.Stderr, 1)
		t.Fatalf("queue never drained: %v", err)
	}

	for i, id := range ids {
		info, err := agent.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.State != Completed {
			t.Fatalf("job %s finished as %v (err=%q)\nlog:\n%s", id, info.State, info.Error, fmt2str(info.Log))
		}
		key := fmt.Sprintf("j%d", i)
		mu.Lock()
		n := completions[key]
		mu.Unlock()
		if n < 1 {
			t.Fatalf("job %s reported Completed but never ran to completion (lost work)", id)
		}
		// A completed run can only be repeated if an incarnation was lost
		// after finishing but before the agent learned of it; every extra
		// completion must therefore be backed by a recorded resubmission.
		if n > info.Resubmits+info.Migrations+1 {
			t.Fatalf("job %s ran to completion %d times with only %d resubmits — double execution",
				id, n, info.Resubmits)
		}
		if info.Resubmits == 0 && info.Migrations == 0 && n != 1 {
			t.Fatalf("job %s was never resubmitted yet ran to completion %d times", id, n)
		}
		if len(info.CancelPending) != 0 {
			t.Fatalf("job %s left unacknowledged cancels: %v", id, info.CancelPending)
		}
		// The staging plane settled: either the push completed (possibly
		// resuming through torn chunks) or it fell back to the pull path —
		// never a job stuck mid-transfer.
		if !info.Stage.Done {
			t.Fatalf("job %s completed with staging unsettled: %+v", id, info.Stage)
		}
		// The trace timeline must have survived every agent kill in the
		// schedule: consistent sequence numbers, a completion event, and
		// one resubmit event per recorded resubmission.
		tl, err := agent.Trace(id)
		if err != nil {
			t.Fatal(err)
		}
		checkSeqs(t, tl)
		iDone := firstPhase(tl, obs.PhaseDone)
		if iDone < 0 {
			t.Fatalf("job %s completed without a %s trace event:\n%+v", id, obs.PhaseDone, tl.Events)
		}
		// After completion the only legitimate events are tombstone
		// acknowledgements, connectivity noise from probes racing the
		// terminal transition, and the 2PC commit ack when a very short
		// job's completion callback outruns the submit worker's trace —
		// never another lifecycle change.
		for _, ev := range tl.Events[iDone+1:] {
			switch ev.Phase {
			case obs.PhaseCancelAck, obs.PhaseDone, obs.PhaseDisconnect,
				obs.PhaseReconnect, obs.PhaseJMRestart, obs.PhaseRecover,
				obs.PhaseCommit:
			default:
				t.Fatalf("job %s has %q trace event after completion:\n%+v", id, ev.Phase, tl.Events)
			}
		}
		if tl.Dropped == 0 && countPhase(tl, obs.PhaseResubmit) != info.Resubmits {
			t.Fatalf("job %s: %d resubmit trace events vs %d recorded resubmits:\n%+v",
				id, countPhase(tl, obs.PhaseResubmit), info.Resubmits, tl.Events)
		}
	}
}

// TestChaosSoak is the seeded chaos harness: each seed yields one
// reproducible failure schedule. Run a single schedule with
//
//	go test -run 'TestChaosSoak/seed=7' ./internal/condorg/
func TestChaosSoak(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 3
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		if !t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { runChaosSeed(t, seed) }) {
			t.Fatalf("chaos soak failed at seed %d; reproduce with: go test -run 'TestChaosSoak/seed=%d' ./internal/condorg/", seed, seed)
		}
	}
}
