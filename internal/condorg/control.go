package condorg

import (
	"encoding/json"
	"fmt"
	"time"

	"condorg/internal/wire"
)

// ControlService is the wire service name for the agent's command
// interface — the "API and command line tools" of §4.1 that preserve the
// look and feel of a local resource manager.
const ControlService = "condorg-control"

// ControlServer exposes an Agent over the wire protocol so the condorg CLI
// (and tests) can submit, query, and manage jobs from another process.
// All commands travel through the versioned "ctl.v1" envelope (see
// controlv1.go); the per-method ctl.* handlers are the v0 compatibility
// shim, kept for one release.
type ControlServer struct {
	agent *Agent
	srv   *wire.Server
	ops   map[string]ctlOp
}

// NewControlServer starts the command endpoint for agent on a fresh port.
func NewControlServer(agent *Agent) (*ControlServer, error) {
	return NewControlServerAddr(agent, "127.0.0.1:0")
}

// NewControlServerAddr starts the command endpoint on an explicit address.
func NewControlServerAddr(agent *Agent, addr string) (*ControlServer, error) {
	srv, err := wire.NewServerAddr(addr, wire.ServerConfig{Name: ControlService})
	if err != nil {
		return nil, err
	}
	c := &ControlServer{agent: agent, srv: srv}
	c.registerOps()
	srv.Handle("ctl.v1", c.handleV1)
	// v0 shim: the pre-envelope per-method protocol, one release of
	// grace for old CLIs. Each handler is the v1 op minus the envelope —
	// errors travel as wire-level strings instead of typed CtlErrors.
	srv.Handle("ctl.submit", shim(c.opSubmit))
	srv.Handle("ctl.q", c.handleQ)
	srv.Handle("ctl.status", shim(c.opStatus))
	srv.Handle("ctl.rm", shim(c.opRemove))
	srv.Handle("ctl.hold", shim(c.opHold))
	srv.Handle("ctl.release", shim(c.opRelease))
	srv.Handle("ctl.log", shim(c.opLog))
	srv.Handle("ctl.stdout", shim(c.opStdout))
	srv.Handle("ctl.wait", shim(c.opWait))
	return c, nil
}

// shim adapts a v1 op to the v0 wire.Handler signature.
func shim(op ctlOp) wire.Handler {
	return func(_ string, body json.RawMessage) (any, error) {
		return op(body)
	}
}

// handleQ is the v0 queue listing: no filter, no pagination. The v1 "q"
// op (opQueue) supersedes it.
func (c *ControlServer) handleQ(_ string, _ json.RawMessage) (any, error) {
	return ctlJobs{Jobs: c.agent.Jobs()}, nil
}

// Addr returns the control endpoint address.
func (c *ControlServer) Addr() string { return c.srv.Addr() }

// Close stops the endpoint (the agent itself is not touched).
func (c *ControlServer) Close() error { return c.srv.Close() }

// CtlSubmit is the submit request: Program names a site-registered program
// (staged as a "#!condor" stub through GASS).
type CtlSubmit struct {
	Owner     string            `json:"owner"`
	Program   string            `json:"program"`
	Args      []string          `json:"args,omitempty"`
	Stdin     []byte            `json:"stdin,omitempty"`
	Site      string            `json:"site,omitempty"`
	Cpus      int               `json:"cpus,omitempty"`
	WallLimit time.Duration     `json:"wall_limit,omitempty"`
	Env       map[string]string `json:"env,omitempty"`
}

type ctlID struct {
	ID string `json:"id"`
}

type ctlJobs struct {
	Jobs []JobInfo `json:"jobs"`
}

type ctlHold struct {
	ID     string `json:"id"`
	Reason string `json:"reason"`
}

type ctlLog struct {
	Events []LogEvent `json:"events"`
}

type ctlData struct {
	Data []byte `json:"data"`
}

type ctlWait struct {
	ID         string `json:"id"`
	TimeoutSec int    `json:"timeout_sec"`
}

// ControlClient is the CLI side of the control protocol. It speaks v1:
// failures from the agent come back as *CtlError, so callers can branch
// on the stable Code or on faultclass.ClassOf(err).
type ControlClient struct {
	wc *wire.Client
}

// NewControlClient connects to a control endpoint.
func NewControlClient(addr string) *ControlClient {
	return &ControlClient{wc: wire.Dial(addr, wire.ClientConfig{
		ServerName: ControlService,
		Timeout:    3 * time.Second,
	})}
}

// Close releases the connection.
func (c *ControlClient) Close() error { return c.wc.Close() }

// Submit submits a job and returns its ID.
func (c *ControlClient) Submit(req CtlSubmit) (string, error) {
	var resp ctlID
	if err := c.call("submit", req, &resp); err != nil {
		return "", err
	}
	return resp.ID, nil
}

// Queue lists all jobs. Use QueueFiltered for filtering and pagination.
func (c *ControlClient) Queue() ([]JobInfo, error) {
	jobs, _, err := c.QueueFiltered(CtlQueueReq{})
	return jobs, err
}

// Status fetches one job.
func (c *ControlClient) Status(id string) (JobInfo, error) {
	var info JobInfo
	err := c.call("status", ctlID{ID: id}, &info)
	return info, err
}

// Remove cancels a job.
func (c *ControlClient) Remove(id string) error {
	return c.call("rm", ctlID{ID: id}, nil)
}

// Hold parks a job.
func (c *ControlClient) Hold(id, reason string) error {
	return c.call("hold", ctlHold{ID: id, Reason: reason}, nil)
}

// Release releases a held job.
func (c *ControlClient) Release(id string) error {
	return c.call("release", ctlID{ID: id}, nil)
}

// Log fetches the user log.
func (c *ControlClient) Log(id string) ([]LogEvent, error) {
	var resp ctlLog
	if err := c.call("log", ctlID{ID: id}, &resp); err != nil {
		return nil, err
	}
	return resp.Events, nil
}

// Stdout fetches streamed standard output.
func (c *ControlClient) Stdout(id string) ([]byte, error) {
	var resp ctlData
	if err := c.call("stdout", ctlID{ID: id}, &resp); err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// Wait blocks (polling) until the job is terminal or timeout elapses.
func (c *ControlClient) Wait(id string, timeout time.Duration) (JobInfo, error) {
	deadline := time.Now().Add(timeout)
	for {
		var info JobInfo
		if err := c.call("wait", ctlWait{ID: id, TimeoutSec: 1}, &info); err != nil {
			return JobInfo{}, err
		}
		if info.State.Terminal() {
			return info, nil
		}
		if time.Now().After(deadline) {
			return info, fmt.Errorf("condorg: wait for %s timed out in state %v", id, info.State)
		}
	}
}
