package condorg

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"condorg/internal/faultclass"
	"condorg/internal/gsi"
	"condorg/internal/wire"
)

// ControlService is the wire service name for the agent's command
// interface — the "API and command line tools" of §4.1 that preserve the
// look and feel of a local resource manager.
const ControlService = "condorg-control"

// ControlConfig configures the tenancy posture of a control endpoint.
//
// With a nil Anchor the endpoint runs in open (single-tenant) mode:
// requests are unauthenticated and the client-asserted Owner fields are
// trusted, exactly as a personal per-user agent trusts its local CLI.
// With an Anchor set, the wire layer demands a GSI session handshake on
// every connection and the owner of every ctl.v1 op is derived from the
// authenticated subject — request-body Owner fields are only ever
// cross-checked, never trusted. See DESIGN.md §11.
type ControlConfig struct {
	// Anchor is the trust anchor client credentials must chain to.
	// nil = open mode.
	Anchor *gsi.Certificate
	// OwnerOf maps an authenticated grid subject to a local owner name
	// (the gridmap role). nil = the subject is the owner. Returning ""
	// rejects the subject as unmapped.
	OwnerOf func(subject string) string
	// Admins names owners allowed agent-wide ops (unscoped queue
	// listings, metrics, health, journal replication) in authenticated
	// mode. In open mode everything is implicitly admin.
	Admins map[string]bool
	// Pool, when set, answers the admin-gated "pool" op with the elastic
	// glidein autoscaler's state. Nil reports Enabled=false — an agent
	// without a provisioner.
	Pool func() CtlPoolResp
}

// ControlServer exposes an Agent over the wire protocol so the condorg CLI
// (and tests) can submit, query, and manage jobs from another process.
// All commands travel through the versioned "ctl.v1" envelope (see
// controlv1.go); the pre-envelope per-method ctl.* protocol is retired —
// its method names answer only with a typed upgrade error (IsV0Retired).
type ControlServer struct {
	agent *Agent
	srv   *wire.Server
	cfg   ControlConfig
	ops   map[string]ctlOp
}

// NewControlServer starts an open-mode command endpoint for agent on a
// fresh port.
func NewControlServer(agent *Agent) (*ControlServer, error) {
	return NewControlServerAddr(agent, "127.0.0.1:0")
}

// NewControlServerAddr starts an open-mode command endpoint on an
// explicit address.
func NewControlServerAddr(agent *Agent, addr string) (*ControlServer, error) {
	return NewControlServerConfig(agent, addr, ControlConfig{})
}

// NewControlServerConfig starts a command endpoint with an explicit
// tenancy posture (see ControlConfig).
func NewControlServerConfig(agent *Agent, addr string, cfg ControlConfig) (*ControlServer, error) {
	srv, err := wire.NewServerAddr(addr, wire.ServerConfig{Name: ControlService, Anchor: cfg.Anchor})
	if err != nil {
		return nil, err
	}
	c := &ControlServer{agent: agent, srv: srv, cfg: cfg}
	c.registerOps()
	srv.Handle("ctl.v1", c.handleV1)
	// The v0 per-method protocol (PR 4, kept "for one release") is
	// retired: the old method names remain routable only so outdated
	// CLIs get a deliberate upgrade message instead of the generic
	// "no such method".
	for _, m := range []string{
		"ctl.submit", "ctl.q", "ctl.status", "ctl.rm", "ctl.hold",
		"ctl.release", "ctl.log", "ctl.stdout", "ctl.wait",
	} {
		srv.Handle(m, v0Retired)
	}
	return c, nil
}

// v0RetiredMsg is the stable marker carried by every retired-protocol
// rejection; IsV0Retired matches it after the error crosses the wire.
const v0RetiredMsg = "condorg: the per-method ctl.* protocol (v0) is retired; upgrade the CLI to speak the ctl.v1 envelope"

// v0Retired answers every retired v0 method with the typed upgrade error.
func v0Retired(_ string, _ json.RawMessage) (any, error) {
	return nil, faultclass.New(faultclass.Permanent, errors.New(v0RetiredMsg))
}

// IsV0Retired reports whether err is the server telling an old CLI that
// the v0 ctl.* protocol is gone (locally or as a wire.RemoteError).
func IsV0Retired(err error) bool {
	return err != nil && strings.Contains(err.Error(), "ctl.* protocol (v0) is retired")
}

// Addr returns the control endpoint address.
func (c *ControlServer) Addr() string { return c.srv.Addr() }

// Close stops the endpoint (the agent itself is not touched).
func (c *ControlServer) Close() error { return c.srv.Close() }

// CtlSubmit is the submit request: Program names a site-registered program
// (staged as a "#!condor" stub through GASS). Owner is optional and only
// cross-checked on authenticated endpoints — the effective owner comes
// from the session (CtlCodeOwnerMismatch when they disagree).
type CtlSubmit struct {
	Owner     string            `json:"owner,omitempty"`
	Program   string            `json:"program"`
	Args      []string          `json:"args,omitempty"`
	Stdin     []byte            `json:"stdin,omitempty"`
	Site      string            `json:"site,omitempty"`
	Cpus      int               `json:"cpus,omitempty"`
	WallLimit time.Duration     `json:"wall_limit,omitempty"`
	Env       map[string]string `json:"env,omitempty"`
}

type ctlID struct {
	ID string `json:"id"`
}

type ctlHold struct {
	ID     string `json:"id"`
	Reason string `json:"reason"`
}

type ctlLog struct {
	Events []LogEvent `json:"events"`
}

type ctlData struct {
	Data []byte `json:"data"`
}

type ctlWait struct {
	ID         string `json:"id"`
	TimeoutSec int    `json:"timeout_sec"`
}

// ControlClient is the CLI side of the control protocol. It speaks v1:
// failures from the agent come back as *CtlError, so callers can branch
// on the stable Code or on faultclass.ClassOf(err).
type ControlClient struct {
	wc *wire.Client
}

// NewControlClient connects to a control endpoint without credentials
// (open-mode endpoints only).
func NewControlClient(addr string) *ControlClient {
	return NewControlClientAuth(addr, nil)
}

// NewControlClientAuth connects to a control endpoint authenticating as
// cred: the wire session handshake binds the connection to cred's
// subject, and the server derives the owner of every op from it. A nil
// cred sends no authentication.
func NewControlClientAuth(addr string, cred *gsi.Credential) *ControlClient {
	return &ControlClient{wc: wire.Dial(addr, wire.ClientConfig{
		ServerName: ControlService,
		Credential: cred,
		Timeout:    3 * time.Second,
	})}
}

// Close releases the connection.
func (c *ControlClient) Close() error { return c.wc.Close() }

// Submit submits a job and returns its ID.
func (c *ControlClient) Submit(req CtlSubmit) (string, error) {
	var resp ctlID
	if err := c.call("submit", req, &resp); err != nil {
		return "", err
	}
	return resp.ID, nil
}

// Queue lists all jobs visible to the caller. Use QueueFiltered for
// filtering and pagination.
func (c *ControlClient) Queue() ([]JobInfo, error) {
	jobs, _, err := c.QueueFiltered(CtlQueueReq{})
	return jobs, err
}

// Status fetches one job.
func (c *ControlClient) Status(id string) (JobInfo, error) {
	var info JobInfo
	err := c.call("status", ctlID{ID: id}, &info)
	return info, err
}

// Remove cancels a job.
func (c *ControlClient) Remove(id string) error {
	return c.call("rm", ctlID{ID: id}, nil)
}

// Hold parks a job.
func (c *ControlClient) Hold(id, reason string) error {
	return c.call("hold", ctlHold{ID: id, Reason: reason}, nil)
}

// Release releases a held job.
func (c *ControlClient) Release(id string) error {
	return c.call("release", ctlID{ID: id}, nil)
}

// Log fetches the user log.
func (c *ControlClient) Log(id string) ([]LogEvent, error) {
	var resp ctlLog
	if err := c.call("log", ctlID{ID: id}, &resp); err != nil {
		return nil, err
	}
	return resp.Events, nil
}

// Stdout fetches streamed standard output.
func (c *ControlClient) Stdout(id string) ([]byte, error) {
	var resp ctlData
	if err := c.call("stdout", ctlID{ID: id}, &resp); err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// Wait blocks (polling) until the job is terminal or timeout elapses.
func (c *ControlClient) Wait(id string, timeout time.Duration) (JobInfo, error) {
	return c.WaitCtx(context.Background(), id, timeout)
}

// WaitCtx is Wait observing ctx: the poll loop re-checks the context
// between one-second long-poll rounds, so an abandoned caller releases
// its agent connection within a round instead of parking for the full
// timeout.
func (c *ControlClient) WaitCtx(ctx context.Context, id string, timeout time.Duration) (JobInfo, error) {
	deadline := time.Now().Add(timeout)
	for {
		if err := ctx.Err(); err != nil {
			return JobInfo{}, fmt.Errorf("condorg: wait for %s: %w", id, err)
		}
		var info JobInfo
		if err := c.call("wait", ctlWait{ID: id, TimeoutSec: 1}, &info); err != nil {
			return JobInfo{}, err
		}
		if info.State.Terminal() {
			return info, nil
		}
		if time.Now().After(deadline) {
			return info, fmt.Errorf("condorg: wait for %s timed out in state %v", id, info.State)
		}
	}
}
