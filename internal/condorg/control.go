package condorg

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"condorg/internal/gram"
	"condorg/internal/wire"
)

// ControlService is the wire service name for the agent's command
// interface — the "API and command line tools" of §4.1 that preserve the
// look and feel of a local resource manager.
const ControlService = "condorg-control"

// ControlServer exposes an Agent over the wire protocol so the condorg CLI
// (and tests) can submit, query, and manage jobs from another process.
type ControlServer struct {
	agent *Agent
	srv   *wire.Server
}

// NewControlServer starts the command endpoint for agent on a fresh port.
func NewControlServer(agent *Agent) (*ControlServer, error) {
	return NewControlServerAddr(agent, "127.0.0.1:0")
}

// NewControlServerAddr starts the command endpoint on an explicit address.
func NewControlServerAddr(agent *Agent, addr string) (*ControlServer, error) {
	srv, err := wire.NewServerAddr(addr, wire.ServerConfig{Name: ControlService})
	if err != nil {
		return nil, err
	}
	c := &ControlServer{agent: agent, srv: srv}
	srv.Handle("ctl.submit", c.handleSubmit)
	srv.Handle("ctl.q", c.handleQ)
	srv.Handle("ctl.status", c.handleStatus)
	srv.Handle("ctl.rm", c.handleRm)
	srv.Handle("ctl.hold", c.handleHold)
	srv.Handle("ctl.release", c.handleRelease)
	srv.Handle("ctl.log", c.handleLog)
	srv.Handle("ctl.stdout", c.handleStdout)
	srv.Handle("ctl.wait", c.handleWait)
	return c, nil
}

// Addr returns the control endpoint address.
func (c *ControlServer) Addr() string { return c.srv.Addr() }

// Close stops the endpoint (the agent itself is not touched).
func (c *ControlServer) Close() error { return c.srv.Close() }

// CtlSubmit is the submit request: Program names a site-registered program
// (staged as a "#!condor" stub through GASS).
type CtlSubmit struct {
	Owner     string            `json:"owner"`
	Program   string            `json:"program"`
	Args      []string          `json:"args,omitempty"`
	Stdin     []byte            `json:"stdin,omitempty"`
	Site      string            `json:"site,omitempty"`
	Cpus      int               `json:"cpus,omitempty"`
	WallLimit time.Duration     `json:"wall_limit,omitempty"`
	Env       map[string]string `json:"env,omitempty"`
}

type ctlID struct {
	ID string `json:"id"`
}

func (c *ControlServer) handleSubmit(_ string, body json.RawMessage) (any, error) {
	var req CtlSubmit
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	if req.Program == "" {
		return nil, fmt.Errorf("condorg: submit needs a program name")
	}
	id, err := c.agent.Submit(SubmitRequest{
		Owner:      req.Owner,
		Executable: gram.Program(req.Program),
		Args:       req.Args,
		Stdin:      req.Stdin,
		Site:       req.Site,
		Cpus:       req.Cpus,
		WallLimit:  req.WallLimit,
		Env:        req.Env,
	})
	if err != nil {
		return nil, err
	}
	return ctlID{ID: id}, nil
}

type ctlJobs struct {
	Jobs []JobInfo `json:"jobs"`
}

func (c *ControlServer) handleQ(_ string, _ json.RawMessage) (any, error) {
	return ctlJobs{Jobs: c.agent.Jobs()}, nil
}

func (c *ControlServer) handleStatus(_ string, body json.RawMessage) (any, error) {
	var req ctlID
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	return c.agent.Status(req.ID)
}

func (c *ControlServer) handleRm(_ string, body json.RawMessage) (any, error) {
	var req ctlID
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	return struct{}{}, c.agent.Remove(req.ID)
}

type ctlHold struct {
	ID     string `json:"id"`
	Reason string `json:"reason"`
}

func (c *ControlServer) handleHold(_ string, body json.RawMessage) (any, error) {
	var req ctlHold
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	if req.Reason == "" {
		req.Reason = "held by user"
	}
	return struct{}{}, c.agent.Hold(req.ID, req.Reason)
}

func (c *ControlServer) handleRelease(_ string, body json.RawMessage) (any, error) {
	var req ctlID
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	return struct{}{}, c.agent.Release(req.ID)
}

type ctlLog struct {
	Events []LogEvent `json:"events"`
}

func (c *ControlServer) handleLog(_ string, body json.RawMessage) (any, error) {
	var req ctlID
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	events, err := c.agent.UserLog(req.ID)
	if err != nil {
		return nil, err
	}
	return ctlLog{Events: events}, nil
}

type ctlData struct {
	Data []byte `json:"data"`
}

func (c *ControlServer) handleStdout(_ string, body json.RawMessage) (any, error) {
	var req ctlID
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	data, err := c.agent.Stdout(req.ID)
	if err != nil {
		return nil, err
	}
	return ctlData{Data: data}, nil
}

type ctlWait struct {
	ID         string `json:"id"`
	TimeoutSec int    `json:"timeout_sec"`
}

func (c *ControlServer) handleWait(_ string, body json.RawMessage) (any, error) {
	var req ctlWait
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	// Wait briefly server-side; the client re-calls for long waits so a
	// single RPC never outlives the wire timeout. The wait itself is
	// event-driven — it returns the moment the job turns terminal.
	ctx, cancel := context.WithTimeout(context.Background(),
		time.Duration(req.TimeoutSec)*time.Second)
	defer cancel()
	info, err := c.agent.Wait(ctx, req.ID)
	if errors.Is(err, context.DeadlineExceeded) {
		return info, nil // not terminal yet; the client decides to re-call
	}
	if err != nil {
		return nil, err
	}
	return info, nil
}

// ControlClient is the CLI side of the control protocol.
type ControlClient struct {
	wc *wire.Client
}

// NewControlClient connects to a control endpoint.
func NewControlClient(addr string) *ControlClient {
	return &ControlClient{wc: wire.Dial(addr, wire.ClientConfig{
		ServerName: ControlService,
		Timeout:    3 * time.Second,
	})}
}

// Close releases the connection.
func (c *ControlClient) Close() error { return c.wc.Close() }

// Submit submits a job and returns its ID.
func (c *ControlClient) Submit(req CtlSubmit) (string, error) {
	var resp ctlID
	if err := c.wc.Call("ctl.submit", req, &resp); err != nil {
		return "", err
	}
	return resp.ID, nil
}

// Queue lists all jobs.
func (c *ControlClient) Queue() ([]JobInfo, error) {
	var resp ctlJobs
	if err := c.wc.Call("ctl.q", struct{}{}, &resp); err != nil {
		return nil, err
	}
	return resp.Jobs, nil
}

// Status fetches one job.
func (c *ControlClient) Status(id string) (JobInfo, error) {
	var info JobInfo
	err := c.wc.Call("ctl.status", ctlID{ID: id}, &info)
	return info, err
}

// Remove cancels a job.
func (c *ControlClient) Remove(id string) error {
	return c.wc.Call("ctl.rm", ctlID{ID: id}, nil)
}

// Hold parks a job.
func (c *ControlClient) Hold(id, reason string) error {
	return c.wc.Call("ctl.hold", ctlHold{ID: id, Reason: reason}, nil)
}

// Release releases a held job.
func (c *ControlClient) Release(id string) error {
	return c.wc.Call("ctl.release", ctlID{ID: id}, nil)
}

// Log fetches the user log.
func (c *ControlClient) Log(id string) ([]LogEvent, error) {
	var resp ctlLog
	if err := c.wc.Call("ctl.log", ctlID{ID: id}, &resp); err != nil {
		return nil, err
	}
	return resp.Events, nil
}

// Stdout fetches streamed standard output.
func (c *ControlClient) Stdout(id string) ([]byte, error) {
	var resp ctlData
	if err := c.wc.Call("ctl.stdout", ctlID{ID: id}, &resp); err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// Wait blocks (polling) until the job is terminal or timeout elapses.
func (c *ControlClient) Wait(id string, timeout time.Duration) (JobInfo, error) {
	deadline := time.Now().Add(timeout)
	for {
		var info JobInfo
		if err := c.wc.Call("ctl.wait", ctlWait{ID: id, TimeoutSec: 1}, &info); err != nil {
			return JobInfo{}, err
		}
		if info.State.Terminal() {
			return info, nil
		}
		if time.Now().After(deadline) {
			return info, fmt.Errorf("condorg: wait for %s timed out in state %v", id, info.State)
		}
	}
}
