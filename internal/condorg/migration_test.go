package condorg

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"condorg/internal/gram"
	"condorg/internal/lrm"
)

// blockedSite builds a 1-CPU site whose only CPU is held by a long job, so
// anything submitted to it queues indefinitely.
func blockedSite(t *testing.T, runs *atomic.Int64) *gram.Site {
	t.Helper()
	cluster, err := lrm.NewCluster(lrm.Config{Name: "blocked", Cpus: 1})
	if err != nil {
		t.Fatal(err)
	}
	cluster.Submit(lrm.Job{ID: "hog", Owner: "other", Run: func(ctx context.Context) error {
		<-ctx.Done()
		return ctx.Err()
	}}, 0)
	site, err := gram.NewSite(gram.SiteConfig{
		Name:     "blocked",
		Cluster:  cluster,
		Runtime:  buildRuntime(runs),
		StateDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(site.Close)
	return site
}

// switchSelector returns busy first, then free forever after.
type switchSelector struct {
	busy, free string
	calls      atomic.Int64
}

func (s *switchSelector) Select(SubmitRequest) (string, error) {
	if s.calls.Add(1) == 1 {
		return s.busy, nil
	}
	return s.free, nil
}

func TestQueuedJobMigratesToFreeSite(t *testing.T) {
	runs := &atomic.Int64{}
	busy := blockedSite(t, runs)
	free := newSite(t, "free", runs, t.TempDir(), "")
	defer free.Close()

	sel := &switchSelector{busy: busy.GatekeeperAddr(), free: free.GatekeeperAddr()}
	agent, err := NewAgent(AgentConfig{
		StateDir: t.TempDir(),
		Selector: sel,
		Probe:    ProbeOptions{Interval: 30 * time.Millisecond},
		Retry:    RetryOptions{MigrateAfter: 120 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	id, err := agent.Submit(SubmitRequest{
		Owner: "u", Executable: gram.Program("task"), Args: []string{"20ms"},
	})
	if err != nil {
		t.Fatal(err)
	}
	info := waitAgentState(t, agent, id, Completed)
	if info.Site != free.GatekeeperAddr() {
		t.Fatalf("completed at %s, want migration to the free site %s", info.Site, free.GatekeeperAddr())
	}
	if info.Migrations < 1 {
		t.Fatalf("migrations = %d, want >= 1", info.Migrations)
	}
	if !strings.Contains(fmt2str(info.Log), "MIGRATED") {
		t.Fatalf("no MIGRATED event in log: %v", info.Log)
	}
	if runs.Load() != 1 {
		t.Fatalf("job ran %d times across migration, want exactly once", runs.Load())
	}
}

func fmt2str(events []LogEvent) string {
	var sb strings.Builder
	for _, e := range events {
		sb.WriteString(e.Code)
		sb.WriteString(" ")
		sb.WriteString(e.Text)
		sb.WriteString("\n")
	}
	return sb.String()
}

func TestMigrationDisabledByDefault(t *testing.T) {
	runs := &atomic.Int64{}
	busy := blockedSite(t, runs)
	agent, err := NewAgent(AgentConfig{
		StateDir: t.TempDir(),
		Selector: StaticSelector(busy.GatekeeperAddr()),
		Probe:    ProbeOptions{Interval: 30 * time.Millisecond},
		// MigrateAfter unset: the job stays queued at the busy site.
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	id, _ := agent.Submit(SubmitRequest{Owner: "u", Executable: gram.Program("task")})
	time.Sleep(300 * time.Millisecond)
	info, _ := agent.Status(id)
	if info.Migrations != 0 || info.State.Terminal() {
		t.Fatalf("unexpected movement without MigrateAfter: %+v", info)
	}
	agent.Remove(id)
}

func TestMigrationRespectsCap(t *testing.T) {
	runs := &atomic.Int64{}
	// Both sites blocked: migration ping-pongs until the cap stops it.
	busyA := blockedSite(t, runs)
	busyB := blockedSite(t, runs)
	sel := &RoundRobinSelector{Sites: []string{busyA.GatekeeperAddr(), busyB.GatekeeperAddr()}}
	agent, err := NewAgent(AgentConfig{
		StateDir: t.TempDir(),
		Selector: sel,
		Probe:    ProbeOptions{Interval: 20 * time.Millisecond},
		Retry:    RetryOptions{MigrateAfter: 40 * time.Millisecond, MaxMigrations: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	id, _ := agent.Submit(SubmitRequest{Owner: "u", Executable: gram.Program("task")})
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		info, _ := agent.Status(id)
		if info.Migrations > 2 {
			t.Fatalf("migrations = %d exceeds cap 2", info.Migrations)
		}
		time.Sleep(20 * time.Millisecond)
	}
	info, _ := agent.Status(id)
	if info.Migrations != 2 {
		t.Fatalf("migrations = %d, want exactly the cap (2)", info.Migrations)
	}
	agent.Remove(id)
}
