package condorg

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"condorg/internal/faultclass"
	"condorg/internal/gass"
	"condorg/internal/gram"
	"condorg/internal/gsi"
	"condorg/internal/journal"
	"condorg/internal/obs"
	"condorg/internal/wire"
)

// Sentinel errors for control-plane and API callers; wrap sites add the
// job ID and state prose. The control server maps these to stable typed
// error codes (see CtlError).
var (
	// ErrNoSuchJob reports an unknown job ID.
	ErrNoSuchJob = errors.New("no such job")
	// ErrBadJobState reports an operation invalid in the job's state
	// (e.g. releasing a job that is not held).
	ErrBadJobState = errors.New("wrong job state")
	// ErrAgentClosed reports an operation on a closed agent.
	ErrAgentClosed = errors.New("agent closed")
)

// ProbeOptions paces the GridManager's §4.2 failure detector.
type ProbeOptions struct {
	// Interval is the JobManager liveness probe period (default 500ms).
	Interval time.Duration
	// Reconnect paces reconnection attempts during partitions
	// (default: Interval).
	Reconnect time.Duration
}

// RetryOptions bounds the agent's automatic retry machinery.
type RetryOptions struct {
	// MaxResubmits bounds automatic resubmission of site-lost jobs
	// (default 3).
	MaxResubmits int
	// MaxSubmitRetries bounds failed submission attempts before the job
	// is held with a notification (default 50). Breaker fast-fails do
	// not count: only attempts that actually reached the network burn
	// the budget.
	MaxSubmitRetries int
	// MigrateAfter, when positive, moves a job that has sat in a remote
	// site's queue for that long to a different site chosen by the
	// Selector — §4.4's "migrate queued jobs". Zero disables migration.
	MigrateAfter time.Duration
	// MaxMigrations bounds queue migrations per job (default 5).
	MaxMigrations int
}

// PipelineOptions sizes the GridManager's per-site submission pipelines.
// Remote operations (submits, probes, recovery re-verifications, cancel
// retries) run on per-gatekeeper workers instead of one serial loop, so a
// slow or partitioned site only stalls its own pipeline.
type PipelineOptions struct {
	// PerSiteInFlight caps concurrent remote operations per gatekeeper
	// address within one owner's GridManager (default 4).
	PerSiteInFlight int
	// MaxInFlight caps concurrent remote operations agent-wide, across
	// all owners and sites (default 64). Workers blocked on this cap are
	// counted in gm_worker_stalls_total.
	MaxInFlight int
}

// FaultOptions injects failures for tests and chaos runs.
type FaultOptions struct {
	// Callback injects failures into the agent's callback server (lost
	// or delayed JobManager status callbacks — §4.2 experiments).
	Callback *wire.Faults
	// GASS injects failures into the agent's spool server, which sites
	// pull staging data from — mid-transfer resets and WAN delay for the
	// staging experiments.
	GASS *wire.Faults
}

// StageOptions tunes the chunked executable pre-staging data plane. When
// enabled (the default), the GridManager pushes each job's executable to
// its site through the gatekeeper's content-addressed cache before the
// GRAM submit: shared binaries transfer once per site, and interrupted
// transfers resume from the last site-acked offset journaled in the job
// record.
type StageOptions struct {
	// ChunkSize is the transfer unit in bytes (default 64 KiB).
	ChunkSize int
	// Streams caps concurrent chunk RPCs per site, across all of the
	// owner's staging jobs. It composes with Pipeline.PerSiteInFlight: a
	// staging task occupies one pipeline slot while its chunk streams
	// share this cap (default 4).
	Streams int
	// Disabled turns pre-staging off: sites pull the whole executable
	// through GASS at commit time, serially, as before.
	Disabled bool
}

// BatchOptions tunes wire-layer verb coalescing. When MaxJobs > 1, the
// per-site pipeline workers drain queued submits bound for the same
// gatekeeper into single gram.batch-submit frames, and the probe/cancel
// dispatchers chunk same-site jobs into jm.batch-status / jm.batch-cancel
// frames — one RPC per chunk instead of one per job. Sites that predate
// the batch verbs are detected on first use and served per-job thereafter.
type BatchOptions struct {
	// MaxJobs caps the entries carried in one batch frame (default 32).
	// 1 disables batching entirely.
	MaxJobs int
	// MaxDelay, when positive, lets a submit batch linger briefly after
	// the first job is picked up so trailing enqueues can join the same
	// frame. Zero (the default) sends whatever the queue held at drain
	// time — no added latency.
	MaxDelay time.Duration
}

// WireOptions selects wire-protocol v2 features for the agent's GRAM
// clients. Both default on; each negotiates down transparently against
// peers that predate it.
type WireOptions struct {
	// Codec names the frame encoding offered at the wire handshake:
	// wire.CodecBinary (the default) or wire.CodecJSON.
	Codec string
	// NoSession disables session authentication, sending a signed token
	// with every frame as wire v1 did.
	NoSession bool
}

// ObsOptions configures the observability layer.
type ObsOptions struct {
	// Disabled turns the metrics registry off: every instrument becomes
	// a nil-handle no-op. Trace timelines are controlled by TraceCap.
	Disabled bool
	// TraceCap bounds each job's trace timeline ring (0 = the default,
	// obs.DefaultTraceCap; negative disables tracing entirely).
	TraceCap int
}

// AgentConfig configures the agent. The zero value (plus StateDir) works;
// DefaultAgentConfig spells out the defaults for flag wiring.
type AgentConfig struct {
	// StateDir holds the persistent queue, the GASS spool, and user logs.
	// Reopening an agent on the same StateDir recovers every job.
	StateDir string
	// Credential is the user's proxy (nil on an unauthenticated grid).
	Credential *gsi.Credential
	// Clock for credential decisions; defaults to wall time.
	Clock gsi.Clock
	// Selector picks sites for jobs without an explicit Site.
	Selector Selector
	// DeferBinding accepts jobs even when the Selector currently has no
	// candidate (e.g. an elastic pool that has scaled to zero): the job
	// queues unbound and the dispatcher binds it once a site appears.
	// The dispatcher also re-binds still-unsubmitted jobs away from
	// breaker-open or vanished sites — safe because a job without a
	// remote contact can have left at most an uncommitted (never-run)
	// incarnation behind.
	DeferBinding bool
	// Notifier receives user notifications; defaults to a Mailbox.
	Notifier Notifier
	// Delegate forwards a proxy of this lifetime with each submission.
	Delegate time.Duration
	// Probe paces the failure detector.
	Probe ProbeOptions
	// Retry bounds resubmission, submit retries, and migration.
	Retry RetryOptions
	// Pipeline sizes the per-site submission pipelines.
	Pipeline PipelineOptions
	// Stage tunes chunked executable pre-staging.
	Stage StageOptions
	// Batch tunes wire-layer verb coalescing.
	Batch BatchOptions
	// Wire selects wire-protocol v2 features (session auth, frame codec).
	Wire WireOptions
	// Breaker tunes the per-site circuit breakers inside each
	// GridManager's GRAM client (zero value = faultclass defaults).
	Breaker faultclass.BreakerConfig
	// Tenancy configures owner sharding and fair-share admission: how
	// many journal partitions the queue is striped across, per-owner
	// quotas, and the per-owner submit rate limit (see tenancy.go).
	Tenancy TenancyOptions
	// Faults injects failures for chaos tests.
	Faults FaultOptions
	// Journal configures the persistent queue's durability (the §4.2
	// "stable storage"). The zero value journals asynchronously — fast,
	// survives an agent crash, but a host power failure may lose the last
	// events. Set Journal.Sync to make every job-state transition durable
	// before it is acknowledged; concurrent jobs share fsyncs through
	// group commit, so the cost amortizes under load.
	Journal journal.StoreOptions
	// HA configures hot-standby failover (see Standby).
	HA HAOptions
	// Obs configures metrics and tracing.
	Obs ObsOptions
}

// DefaultAgentConfig returns a config with every tunable at its default,
// ready for flag wiring to override. StateDir, Selector, and Credential
// must still be supplied by the caller.
func DefaultAgentConfig() AgentConfig {
	return AgentConfig{
		Clock: gsi.WallClock,
		Probe: ProbeOptions{
			Interval:  500 * time.Millisecond,
			Reconnect: 500 * time.Millisecond,
		},
		Retry: RetryOptions{
			MaxResubmits:     3,
			MaxSubmitRetries: 50,
			MaxMigrations:    5,
		},
		Pipeline: PipelineOptions{
			PerSiteInFlight: 4,
			MaxInFlight:     64,
		},
		Stage: StageOptions{
			ChunkSize: 64 << 10,
			Streams:   4,
		},
		Batch: BatchOptions{
			MaxJobs: 32,
		},
		Wire: WireOptions{
			Codec: wire.CodecBinary,
		},
	}
}

// HAOptions configures hot-standby support on the primary agent.
type HAOptions struct {
	// Enabled journals job payloads (executable, stdin) into the queue
	// store alongside the job record — so a standby tailing the journal
	// stream can re-stage them after takeover — and turns on synchronous
	// replication: once a standby has acknowledged progress, acknowledged
	// submissions additionally wait (after local durability) until the
	// standby holds them.
	Enabled bool
	// SyncTimeout bounds how long an acknowledged write waits for a
	// lagging standby before disarming the sync wait (default 1s;
	// availability beats replication — the wait re-arms on the standby's
	// next acknowledgement).
	SyncTimeout time.Duration
}

// spoolKeyPrefix namespaces replicated job payloads inside the queue
// store, apart from the job records keyed by bare job ID.
const spoolKeyPrefix = "spool/"

// maxOpenUserLogs bounds the persistent user-log file handles kept open for
// non-terminal jobs; excess handles are closed and reopened on demand.
const maxOpenUserLogs = 128

// Agent is the Condor-G Scheduler: persistent queue plus per-user
// GridManagers.
type Agent struct {
	cfg   AgentConfig
	store *journal.Store
	gassS *gass.Server
	cbSrv *wire.Server
	stage *gass.Client // shared loopback staging client (safe concurrently)

	logMu    sync.Mutex // guards logFiles and on-disk user-log appends
	logFiles map[string]*os.File

	// changed wakes WaitAll and other whole-queue watchers on any
	// job-state change; its lock is a leaf taken under no other.
	changed stateBroadcast

	// pipeSem is the agent-wide remote-operation cap shared by every
	// GridManager's site workers (AgentConfig.Pipeline.MaxInFlight),
	// granted round-robin across owners when saturated (fairsem.go).
	pipeSem *fairSem

	// parts is the owner-partitioned journal (nil when HA is enabled:
	// synchronous replication streams the single root store's chain).
	parts *journal.PartitionSet

	// shards stripes the job table per owner; each shard has its own
	// lock, so one owner's burst never contends on another's.
	shardMu sync.RWMutex
	shards  map[string]*ownerShard

	// ids is the global job-ID index (reads take only the RLock).
	idMu sync.RWMutex
	ids  map[string]*jobRecord

	// serial mints job IDs; atomic so submits don't serialize on a.mu.
	serial atomic.Int64

	mu         sync.Mutex
	bySiteJob  map[string]string     // site job ID -> agent job ID
	tombstoned map[string]*jobRecord // jobs with unacked cancels
	managers   map[string]*GridManager
	// creds holds per-owner refreshed proxies; owners without an entry
	// use cfg.Credential (the agent-wide default).
	creds   map[string]*gsi.Credential
	closed  bool
	mailbox *Mailbox

	// obs is nil when metrics are disabled (every handle below is then a
	// nil no-op). traceCap < 0 disables per-job timelines.
	obs      *obs.Registry
	traceCap int
	mSubmit  *obs.Histogram // agent_submit_seconds
	mWait    *obs.Histogram // agent_wait_seconds
	mPersist *obs.Histogram // agent_persist_seconds
}

// NewAgent opens (or recovers) an agent rooted at cfg.StateDir.
func NewAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.StateDir == "" {
		return nil, errors.New("condorg: StateDir required")
	}
	if cfg.Clock == nil {
		cfg.Clock = gsi.WallClock
	}
	if cfg.Probe.Interval == 0 {
		cfg.Probe.Interval = 500 * time.Millisecond
	}
	if cfg.Probe.Reconnect == 0 {
		cfg.Probe.Reconnect = cfg.Probe.Interval
	}
	if cfg.Retry.MaxResubmits == 0 {
		cfg.Retry.MaxResubmits = 3
	}
	if cfg.Retry.MaxMigrations == 0 {
		cfg.Retry.MaxMigrations = 5
	}
	if cfg.Retry.MaxSubmitRetries == 0 {
		cfg.Retry.MaxSubmitRetries = 50
	}
	if cfg.Pipeline.PerSiteInFlight <= 0 {
		cfg.Pipeline.PerSiteInFlight = 4
	}
	if cfg.Pipeline.MaxInFlight <= 0 {
		cfg.Pipeline.MaxInFlight = 64
	}
	if cfg.Stage.ChunkSize <= 0 {
		cfg.Stage.ChunkSize = 64 << 10
	}
	if cfg.Stage.Streams <= 0 {
		cfg.Stage.Streams = 4
	}
	if cfg.Batch.MaxJobs <= 0 {
		cfg.Batch.MaxJobs = 32
	}
	if cfg.Wire.Codec == "" {
		cfg.Wire.Codec = wire.CodecBinary
	}
	a := &Agent{
		cfg:        cfg,
		creds:      make(map[string]*gsi.Credential),
		shards:     make(map[string]*ownerShard),
		ids:        make(map[string]*jobRecord),
		bySiteJob:  make(map[string]string),
		tombstoned: make(map[string]*jobRecord),
		managers:   make(map[string]*GridManager),
		logFiles:   make(map[string]*os.File),
		pipeSem:    newFairSem(cfg.Pipeline.MaxInFlight),
		traceCap:   cfg.Obs.TraceCap,
	}
	if !cfg.Obs.Disabled {
		a.obs = obs.NewRegistry()
		a.mSubmit = a.obs.Histogram("agent_submit_seconds")
		a.mWait = a.obs.Histogram("agent_wait_seconds")
		a.mPersist = a.obs.Histogram("agent_persist_seconds")
		a.obs.AddCollector(a.collectGauges)
	}
	if cfg.Notifier == nil {
		a.mailbox = NewMailbox()
		a.cfg.Notifier = a.mailbox
	}
	if err := os.MkdirAll(filepath.Join(cfg.StateDir, "logs"), 0o700); err != nil {
		return nil, err
	}
	jopts := cfg.Journal
	jopts.Obs = a.obs
	store, err := journal.OpenStoreOptions(filepath.Join(cfg.StateDir, "queue"), jopts)
	if err != nil {
		return nil, err
	}
	a.store = store
	if cfg.HA.Enabled {
		store.SyncReplication(cfg.HA.SyncTimeout)
	} else if cfg.Tenancy.Partitions >= 0 {
		// Owner-partitioned journaling (DESIGN.md §11): each owner's
		// records live in a hash bucket with its own chain, snapshot,
		// and group-commit window, so one owner's fsync burst never
		// stalls another's. The HA primary keeps the single root store
		// instead — its replication stream carries one chain.
		parts, err := journal.OpenPartitionSet(filepath.Join(cfg.StateDir, "queue", "parts"), cfg.Tenancy.Partitions, jopts)
		if err != nil {
			store.Close()
			return nil, err
		}
		a.parts = parts
	}
	gassS, err := gass.NewServer(filepath.Join(cfg.StateDir, "spool"), gass.ServerOptions{Faults: cfg.Faults.GASS})
	if err != nil {
		store.Close()
		return nil, err
	}
	a.gassS = gassS
	a.stage = gass.NewClient(nil, cfg.Clock)
	cbSrv, err := wire.NewServer(wire.ServerConfig{Name: gram.CallbackService, Faults: cfg.Faults.Callback})
	if err != nil {
		gassS.Close()
		store.Close()
		return nil, err
	}
	cbSrv.Handle("gram.callback", a.handleCallback)
	a.cbSrv = cbSrv
	if err := a.recover(); err != nil {
		a.Close()
		return nil, err
	}
	return a, nil
}

// Mailbox returns the default in-memory notifier (nil when a custom
// Notifier was supplied).
func (a *Agent) Mailbox() *Mailbox { return a.mailbox }

// GassAddr returns the agent's GASS server address.
func (a *Agent) GassAddr() string { return a.gassS.Addr() }

// collectGauges is the registry collector: queue and site gauges computed
// from live structures at snapshot time. Breaker gauges exist only while
// the owner has a live GridManager (managers retire when their user's
// work drains).
func (a *Agent) collectGauges(set func(name string, v float64)) {
	activeTotal := 0
	bySite := make(map[string]int)
	for _, sh := range a.allShards() {
		sh.mu.Lock()
		recs := make([]*jobRecord, 0, len(sh.active))
		for _, rec := range sh.active {
			recs = append(recs, rec)
		}
		sh.mu.Unlock()
		for _, rec := range recs {
			activeTotal++
			rec.mu.Lock()
			site := rec.Site
			rec.mu.Unlock()
			if site != "" {
				bySite[site]++
			}
		}
		if len(recs) > 0 {
			set(obs.Key("owner_active_jobs", "owner", sh.owner), float64(len(recs)))
		}
	}
	a.mu.Lock()
	tombs := 0
	for _, rec := range a.tombstoned {
		rec.mu.Lock()
		tombs += len(rec.CancelPending)
		rec.mu.Unlock()
	}
	type mgr struct {
		owner string
		gm    *GridManager
	}
	var managers []mgr
	for owner, gm := range a.managers {
		if !gm.done() {
			managers = append(managers, mgr{owner, gm})
		}
	}
	a.mu.Unlock()
	set("agent_jobs_active", float64(activeTotal))
	set("agent_cancel_tombstones_pending", float64(tombs))
	set("agent_gridmanagers_active", float64(len(managers)))
	for site, n := range bySite {
		set(obs.Key("site_active_jobs", "site", site), float64(n))
	}
	for _, m := range managers {
		for addr, bi := range m.gm.gram.HealthSnapshot() {
			set(obs.Key("site_breaker_state", "owner", m.owner, "site", addr), float64(bi.State))
			set(obs.Key("site_breaker_fails", "owner", m.owner, "site", addr), float64(bi.Fails))
			set(obs.Key("site_breaker_backoff_seconds", "owner", m.owner, "site", addr), bi.Delay.Seconds())
		}
		queued, inflight, backlog := m.gm.pipelineStats()
		set(obs.Key("gm_dispatch_queue_depth", "owner", m.owner), float64(backlog))
		for addr, n := range queued {
			set(obs.Key("gm_site_queue_depth", "owner", m.owner, "site", addr), float64(n))
			set(obs.Key("gm_site_inflight", "owner", m.owner, "site", addr), float64(inflight[addr]))
		}
	}
}

// MetricsSnapshot returns the agent's metric registry snapshot (nil when
// metrics are disabled).
func (a *Agent) MetricsSnapshot() []obs.Metric { return a.obs.Snapshot() }

// Obs exposes the agent's metric registry (nil when disabled) so
// companion services can register their own instruments.
func (a *Agent) Obs() *obs.Registry { return a.obs }

// traceLocked appends one event to the job's timeline; the caller holds
// rec.mu and is responsible for the following persist, which makes the
// event crash-durable together with the state change it describes.
func (a *Agent) traceLocked(rec *jobRecord, phase, class, detail string) {
	if a.traceCap < 0 {
		return
	}
	rec.Trace.Cap = a.traceCap
	rec.Trace.Append(time.Now(), phase, rec.Site, class, detail)
}

// trace is traceLocked plus the locking, for call sites that hold no lock.
func (a *Agent) trace(rec *jobRecord, phase, class, detail string) {
	rec.mu.Lock()
	a.traceLocked(rec, phase, class, detail)
	rec.mu.Unlock()
}

// Trace returns the job's lifecycle timeline. The timeline is persisted
// with the job record, so it survives agent crash and recovery.
func (a *Agent) Trace(id string) (obs.Timeline, error) {
	rec, ok := a.job(id)
	if !ok {
		return obs.Timeline{}, fmt.Errorf("condorg: %w: %q", ErrNoSuchJob, id)
	}
	rec.mu.Lock()
	tl := rec.Trace.Clone()
	rec.mu.Unlock()
	return tl, nil
}

// recover reloads the queue and restarts GridManagers for unfinished work.
// For jobs whose GASS URLs reference the agent's previous address, the URLs
// are rewritten and pushed to the JobManagers — the §4.2 restart path.
// Partitions are read first (they are authoritative for their owners);
// job records still sitting in the root store — a legacy single-store
// state dir, an HA-replicated queue reopened without HA, or a crash
// mid-migration — are loaded too and migrated into their owner's
// partition afterwards.
func (a *Agent) recover() error {
	var recovered []*jobRecord
	tombOwners := make(map[string]bool)
	spool := make(map[string][]byte)
	var migrate []*jobRecord // root-store records to move into partitions
	var stale []string       // root-store duplicates of partition records
	load := func(fromRoot bool) func(key string, raw json.RawMessage) error {
		return func(key string, raw json.RawMessage) error {
			if rel, ok := strings.CutPrefix(key, spoolKeyPrefix); ok {
				// A replicated job payload, not a job record: collect it for
				// materialization into the GASS spool below (the standby's disk
				// has the journal but not the staged files).
				var data []byte
				if err := json.Unmarshal(raw, &data); err != nil {
					return fmt.Errorf("condorg: spool entry %s: %w", key, err)
				}
				spool[rel] = data
				return nil
			}
			var rec jobRecord
			if err := json.Unmarshal(raw, &rec.JobInfo); err != nil {
				return err
			}
			if _, dup := a.job(rec.ID); dup {
				// Already loaded from a partition: this root copy is a
				// leftover from an interrupted migration. Drop it.
				stale = append(stale, rec.ID)
				return nil
			}
			var full struct {
				SubmissionID string        `json:"submission_id"`
				Spec         gram.JobSpec  `json:"spec"`
				Remote       gram.JobState `json:"remote"`
				Trace        obs.Timeline  `json:"trace"`
			}
			if err := json.Unmarshal(raw, &full); err != nil {
				return err
			}
			rec.SubmissionID = full.SubmissionID
			rec.Spec = full.Spec
			rec.Remote = full.Remote
			rec.Trace = full.Trace
			sh, err := a.shard(rec.Owner)
			if err != nil {
				return err
			}
			a.indexJob(sh, &rec)
			a.mu.Lock()
			if rec.Contact.JobID != "" {
				a.bySiteJob[rec.Contact.JobID] = rec.ID
			}
			if len(rec.CancelPending) > 0 {
				// An old incarnation's cancel never got acknowledged; a
				// GridManager must keep chasing it even if this job is
				// otherwise finished.
				a.tombstoned[rec.ID] = &rec
				tombOwners[rec.Owner] = true
			}
			a.mu.Unlock()
			if n := int64(parseAgentSerial(rec.ID)); n > a.serial.Load() {
				a.serial.Store(n)
			}
			if !rec.State.Terminal() {
				recovered = append(recovered, &rec)
			}
			if fromRoot && a.parts != nil {
				migrate = append(migrate, &rec)
			}
			return nil
		}
	}
	if a.parts != nil {
		if err := a.parts.ForEach(load(false)); err != nil {
			return err
		}
	}
	if err := a.store.ForEach(load(true)); err != nil {
		return err
	}
	// Re-stage replicated payloads before any job restarts: a recovered
	// submission's JobManager will fetch the executable from these URLs.
	for rel, data := range spool {
		if err := a.stage.WriteFile(a.gassS.URLFor(rel), data); err != nil {
			return fmt.Errorf("condorg: re-stage %s: %w", rel, err)
		}
	}
	for _, rec := range recovered {
		// The GASS server restarted on a new port: rewrite the job's
		// staging and output URLs before the GridManager touches it. Held
		// jobs get the rewrite too — a later Release resubmits from this
		// spec, and the old address is gone for them just the same.
		rec.mu.Lock()
		a.rewriteSpecURLs(&rec.Spec)
		held := rec.State == Held
		a.traceLocked(rec, obs.PhaseRecover, "", "agent restarted; job reloaded from the queue")
		rec.mu.Unlock()
		a.persist(rec)
		if !held {
			a.managerFor(rec.Owner).enqueueRecovery(rec)
		}
	}
	// Migrate legacy root-store records into their owner partitions so
	// the next recovery reads each owner from one place (persist routes
	// to the partition; the root copy then retires).
	for _, rec := range migrate {
		a.persist(rec)
		_ = a.store.Delete(rec.ID)
	}
	for _, id := range stale {
		_ = a.store.Delete(id)
	}
	// Owners whose only remaining business is unacknowledged cancels
	// (terminal or held jobs with tombstones) still need a manager.
	for owner := range tombOwners {
		a.managerFor(owner)
	}
	return nil
}

// addCancelTombstone records that the remote copy at contact must be
// cancelled before this job's story is over. Persisted, so the
// obligation survives agent restarts; the owner's GridManager retries
// until cancelAcknowledged.
func (a *Agent) addCancelTombstone(rec *jobRecord, contact gram.JobContact) {
	if contact.JobID == "" {
		return
	}
	rec.mu.Lock()
	rec.CancelPending = append(rec.CancelPending, contact)
	rec.mu.Unlock()
	a.mu.Lock()
	a.tombstoned[rec.ID] = rec
	a.mu.Unlock()
	a.persist(rec)
}

// ackCancelTombstone drops an acknowledged cancel obligation.
func (a *Agent) ackCancelTombstone(rec *jobRecord, contact gram.JobContact) {
	rec.mu.Lock()
	kept := make([]gram.JobContact, 0, len(rec.CancelPending))
	for _, c := range rec.CancelPending {
		if c != contact {
			kept = append(kept, c)
		}
	}
	rec.CancelPending = kept
	empty := len(kept) == 0
	rec.mu.Unlock()
	if empty {
		a.mu.Lock()
		delete(a.tombstoned, rec.ID)
		a.mu.Unlock()
	}
	a.persist(rec)
}

// pendingCancels returns owner's jobs that still carry cancel
// tombstones (Owner is immutable, so reading it without rec.mu is safe).
func (a *Agent) pendingCancels(owner string) []*jobRecord {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []*jobRecord
	for _, rec := range a.tombstoned {
		if rec.Owner == owner {
			out = append(out, rec)
		}
	}
	return out
}

// unindexSiteJob removes the site-job-ID mapping for a dead incarnation —
// but only if it still points at this job. A restarted site may have
// re-issued the same ID to this job's (or another job's) newer
// incarnation, and a stale delete would orphan that live mapping.
func (a *Agent) unindexSiteJob(siteJobID, jobID string) {
	if siteJobID == "" {
		return
	}
	a.mu.Lock()
	if a.bySiteJob[siteJobID] == jobID {
		delete(a.bySiteJob, siteJobID)
	}
	a.mu.Unlock()
}

// finishJob retires a job that reached a terminal state: it leaves the
// non-terminal index and its user-log handle is released. Call after the
// final state is set and logged.
func (a *Agent) finishJob(rec *jobRecord) {
	if sh := a.shardIfPresent(rec.Owner); sh != nil {
		sh.mu.Lock()
		delete(sh.active, rec.ID)
		sh.mu.Unlock()
	}
	a.closeUserLog(rec.ID)
	if a.cfg.HA.Enabled {
		// The replicated payload has served its purpose; drop it so the
		// journal stream and snapshots don't carry finished jobs' bytes.
		_ = a.store.Delete(spoolKeyPrefix + filepath.Join("jobs", rec.ID, "executable"))
		_ = a.store.Delete(spoolKeyPrefix + filepath.Join("jobs", rec.ID, "stdin"))
	}
}

// noteJobChange wakes whole-queue watchers (WaitAll) and the owner's
// GridManager after a job-state change. Per-job waiters are woken by
// bumpLocked at the mutation site.
func (a *Agent) noteJobChange(owner string) {
	a.changed.Notify()
	a.mu.Lock()
	gm := a.managers[owner]
	a.mu.Unlock()
	if gm != nil {
		gm.poke()
	}
}

// activeJobs returns the owner's non-terminal jobs (unordered).
func (a *Agent) activeJobs(owner string) []*jobRecord {
	sh := a.shardIfPresent(owner)
	if sh == nil {
		return nil
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := make([]*jobRecord, 0, len(sh.active))
	for _, rec := range sh.active {
		out = append(out, rec)
	}
	return out
}

// activeJobsSorted returns the owner's non-terminal jobs in queue order.
func (a *Agent) activeJobsSorted(owner string) []*jobRecord {
	recs := a.activeJobs(owner)
	sort.Slice(recs, func(i, j int) bool { return lessJobID(recs[i].ID, recs[j].ID) })
	return recs
}

func parseAgentSerial(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "gj%d", &n); err != nil {
		return 0
	}
	return n
}

// lessJobID orders job IDs by agent serial, falling back to lexicographic
// order for IDs that carry no gjN serial (e.g. future sharded IDs) so the
// sort stays deterministic.
func lessJobID(a, b string) bool {
	na, nb := parseAgentSerial(a), parseAgentSerial(b)
	if na != nb {
		return na < nb
	}
	return a < b
}

// rewriteSpecURLs repoints every gass:// URL in the spec at the agent's
// current GASS address.
func (a *Agent) rewriteSpecURLs(spec *gram.JobSpec) {
	fix := func(s string) string {
		u, err := gass.ParseURL(s)
		if err != nil {
			return s
		}
		u.Addr = a.gassS.Addr()
		return u.String()
	}
	if spec.Executable != "" {
		spec.Executable = fix(spec.Executable)
	}
	if spec.Stdin != "" {
		spec.Stdin = fix(spec.Stdin)
	}
	if spec.StdoutURL != "" {
		spec.StdoutURL = fix(spec.StdoutURL)
	}
	if spec.StderrURL != "" {
		spec.StderrURL = fix(spec.StderrURL)
	}
}

func (a *Agent) persist(rec *jobRecord) {
	// persistMu orders snapshot+Put pairs per record: with per-site
	// workers, two goroutines can persist the same job back-to-back, and
	// without this lock the older snapshot could reach the journal last.
	rec.persistMu.Lock()
	defer rec.persistMu.Unlock()
	rec.mu.Lock()
	doc := struct {
		JobInfo
		SubmissionID string        `json:"submission_id"`
		Spec         gram.JobSpec  `json:"spec"`
		Remote       gram.JobState `json:"remote"`
		Trace        obs.Timeline  `json:"trace"`
	}{rec.JobInfo, rec.SubmissionID, rec.Spec, rec.Remote, rec.Trace}
	rec.mu.Unlock()
	start := time.Now()
	_ = a.storeFor(doc.Owner).Put(doc.ID, doc)
	a.mPersist.Observe(time.Since(start).Seconds())
}

func (a *Agent) log(rec *jobRecord, code, format string, args ...any) {
	ev := LogEvent{Time: time.Now(), Code: code, Text: fmt.Sprintf(format, args...)}
	rec.mu.Lock()
	rec.Log = append(rec.Log, ev)
	id := rec.ID
	rec.mu.Unlock()
	a.persist(rec)
	// Mirror to the on-disk user log (§4.1: "obtain access to detailed
	// logs, providing a complete history of their jobs' execution") so
	// the history is greppable without the agent API.
	a.appendUserLog(id, ev)
}

// appendUserLog writes one event line through a persistent per-job handle,
// avoiding an open/close syscall pair per event.
func (a *Agent) appendUserLog(id string, ev LogEvent) {
	a.logMu.Lock()
	defer a.logMu.Unlock()
	f := a.logFiles[id]
	if f == nil {
		var err error
		f, err = os.OpenFile(a.UserLogPath(id), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
		if err != nil {
			return
		}
		if len(a.logFiles) >= maxOpenUserLogs {
			for victim, vf := range a.logFiles {
				vf.Close()
				delete(a.logFiles, victim)
				break
			}
		}
		a.logFiles[id] = f
	}
	fmt.Fprintf(f, "%s %-16s %s\n", ev.Time.Format(time.RFC3339Nano), ev.Code, ev.Text)
}

func (a *Agent) closeUserLog(id string) {
	a.logMu.Lock()
	if f := a.logFiles[id]; f != nil {
		f.Close()
		delete(a.logFiles, id)
	}
	a.logMu.Unlock()
}

// UserLogPath returns the on-disk user log file for a job.
func (a *Agent) UserLogPath(id string) string {
	return filepath.Join(a.cfg.StateDir, "logs", id+".log")
}

// managerFor returns (starting if needed) the owner's GridManager.
// "The Scheduler responds to a user request to submit jobs ... by creating
// a new GridManager daemon."
func (a *Agent) managerFor(owner string) *GridManager {
	a.mu.Lock()
	defer a.mu.Unlock()
	if gm, ok := a.managers[owner]; ok && !gm.done() {
		return gm
	}
	gm := newGridManager(a, owner, a.ownerCredLocked(owner))
	a.managers[owner] = gm
	return gm
}

// SiteHealth reports the circuit-breaker state of one remote address as
// seen by the owner's GridManager. Closed (healthy) is returned when the
// owner has no live manager.
func (a *Agent) SiteHealth(owner, addr string) faultclass.BreakerState {
	a.mu.Lock()
	gm := a.managers[owner]
	a.mu.Unlock()
	if gm == nil {
		return faultclass.Closed
	}
	return gm.gram.SiteHealth(addr)
}

// PipelineHealth reports the per-owner, per-site pipeline and breaker
// view: breaker state, queued tasks, and in-flight tasks for every site a
// live GridManager is talking to. Sorted by owner then site.
func (a *Agent) PipelineHealth() []CtlSiteHealth {
	a.mu.Lock()
	type mgr struct {
		owner string
		gm    *GridManager
	}
	var managers []mgr
	for owner, gm := range a.managers {
		if !gm.done() {
			managers = append(managers, mgr{owner, gm})
		}
	}
	a.mu.Unlock()
	var out []CtlSiteHealth
	for _, m := range managers {
		queued, inflight, _ := m.gm.pipelineStats()
		stageHits, stageMisses := m.gm.stageStats()
		for addr, bi := range m.gm.gram.HealthSnapshot() {
			out = append(out, CtlSiteHealth{
				Owner:       m.owner,
				Site:        addr,
				Breaker:     bi.State.String(),
				Fails:       bi.Fails,
				Queued:      queued[addr],
				InFlight:    inflight[addr],
				StageHits:   stageHits[addr],
				StageMisses: stageMisses[addr],
			})
			delete(queued, addr)
		}
		// Sites with queued work the client has never successfully
		// dialed (e.g. parked behind an open JM breaker) still show up.
		for addr, n := range queued {
			out = append(out, CtlSiteHealth{
				Owner: m.owner, Site: addr,
				Breaker: m.gm.gram.SiteHealth(addr).String(),
				Queued:  n, InFlight: inflight[addr],
				StageHits: stageHits[addr], StageMisses: stageMisses[addr],
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Owner != out[j].Owner {
			return out[i].Owner < out[j].Owner
		}
		return out[i].Site < out[j].Site
	})
	return out
}

// ActiveGridManagers counts live per-user managers (they terminate when
// their user has no unfinished jobs).
func (a *Agent) ActiveGridManagers() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, gm := range a.managers {
		if !gm.done() {
			n++
		}
	}
	return n
}

// Submit stages the executable into the agent's GASS spool and enqueues the
// job; the owner's GridManager drives it from there.
func (a *Agent) Submit(req SubmitRequest) (string, error) {
	start := time.Now()
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return "", fmt.Errorf("condorg: %w", ErrAgentClosed)
	}
	a.mu.Unlock()
	if req.Owner == "" {
		req.Owner = "user"
	}
	// Admission before any work: quotas and the token bucket gate the
	// queue itself, so an over-quota owner costs neither journal writes
	// nor pipeline slots.
	sh, err := a.shard(req.Owner)
	if err != nil {
		return "", faultclass.New(faultclass.Transient, fmt.Errorf("condorg: open journal partition: %w", err))
	}
	if err := a.admit(sh, len(req.Executable)+len(req.Stdin)); err != nil {
		return "", err
	}
	id := fmt.Sprintf("gj%d", a.serial.Add(1))
	site := req.Site
	if site == "" {
		if a.cfg.Selector == nil {
			return "", errors.New("condorg: no Site given and no Selector configured")
		}
		// Health-aware selection: skip breaker-open sites so a dead site
		// in the rotation does not absorb jobs whose submissions are
		// guaranteed to fail. When EVERY candidate is open, fall back to a
		// blind choice — the job queues and the breaker paces attempts,
		// which preserves submit-during-total-outage semantics.
		healthy := func(addr string) bool {
			return a.SiteHealth(req.Owner, addr) != faultclass.Open
		}
		var err error
		site, err = selectSite(a.cfg.Selector, req, healthy)
		if errors.Is(err, ErrAllSitesUnhealthy) {
			site, err = a.cfg.Selector.Select(req)
		}
		if err != nil {
			if !a.cfg.DeferBinding {
				return "", fmt.Errorf("condorg: selector: %w", err)
			}
			// Deferred binding: queue the job unbound; dispatchPending
			// binds it once the selector has a candidate.
			site = ""
		}
	}

	execURL := a.gassS.URLFor(filepath.Join("jobs", id, "executable"))
	if err := a.stage.WriteFile(execURL, req.Executable); err != nil {
		// A loopback spool write failing is a local hiccup, not a verdict
		// on the job: classify Transient so callers retry instead of
		// surfacing an unclassified error.
		return "", faultclass.New(faultclass.Transient, fmt.Errorf("condorg: stage executable: %w", err))
	}
	if a.cfg.HA.Enabled {
		// Replicate the payload through the journal stream BEFORE the job
		// record: a standby that holds the record also holds the bytes it
		// must re-stage after takeover.
		if err := a.store.Put(spoolKeyPrefix+filepath.Join("jobs", id, "executable"), req.Executable); err != nil {
			return "", faultclass.New(faultclass.Transient, fmt.Errorf("condorg: journal executable: %w", err))
		}
	}
	spec := gram.JobSpec{
		Executable: execURL.String(),
		Args:       req.Args,
		Cpus:       req.Cpus,
		WallLimit:  req.WallLimit,
		Estimate:   req.Estimate,
		Env:        req.Env,
		StdoutURL:  a.gassS.URLFor(filepath.Join("jobs", id, "stdout")).String(),
		StderrURL:  a.gassS.URLFor(filepath.Join("jobs", id, "stderr")).String(),
	}
	if req.Stdin != nil {
		stdinURL := a.gassS.URLFor(filepath.Join("jobs", id, "stdin"))
		if err := a.stage.WriteFile(stdinURL, req.Stdin); err != nil {
			return "", faultclass.New(faultclass.Transient, fmt.Errorf("condorg: stage stdin: %w", err))
		}
		if a.cfg.HA.Enabled {
			if err := a.store.Put(spoolKeyPrefix+filepath.Join("jobs", id, "stdin"), req.Stdin); err != nil {
				return "", faultclass.New(faultclass.Transient, fmt.Errorf("condorg: journal stdin: %w", err))
			}
		}
		spec.Stdin = stdinURL.String()
	}

	rec := &jobRecord{
		JobInfo: JobInfo{
			ID: id, Owner: req.Owner, State: Idle, Site: site, SubmittedAt: time.Now(),
		},
		SubmissionID: gram.NewSubmissionID(),
		Spec:         spec,
	}
	if !a.cfg.Stage.Disabled {
		// Content-address the executable: the hash keys the per-site cache
		// and drives the pre-stage task (resume offsets journal in Stage).
		rec.Spec.ExecutableHash = gram.HashExecutable(req.Executable)
		rec.Stage = StageInfo{Hash: rec.Spec.ExecutableHash, Total: int64(len(req.Executable))}
	}
	a.indexJob(sh, rec)
	a.trace(rec, obs.PhaseSubmit, "", "accepted into the agent queue")
	// Journal BEFORE the network submission: if we crash between the
	// journal write and the site's reply, recovery resubmits with the
	// same SubmissionID and the site deduplicates — exactly-once. log()
	// persists the record (SUBMIT event included) in a single delta.
	dest := site
	if dest == "" {
		dest = "a deferred-binding site"
	}
	a.log(rec, "SUBMIT", "job submitted to agent, destined for %s", dest)
	a.managerFor(req.Owner).enqueueSubmit(rec)
	a.changed.Notify()
	a.obs.Counter("agent_jobs_submitted_total").Inc()
	elapsed := time.Since(start).Seconds()
	a.mSubmit.Observe(elapsed)
	a.obs.Histogram(obs.Key("agent_owner_submit_seconds", "owner", req.Owner)).Observe(elapsed)
	return id, nil
}

// Status returns a job snapshot.
func (a *Agent) Status(id string) (JobInfo, error) {
	rec, ok := a.job(id)
	if !ok {
		return JobInfo{}, fmt.Errorf("condorg: %w: %q", ErrNoSuchJob, id)
	}
	return rec.snapshot(), nil
}

// Jobs lists all jobs sorted by ID.
func (a *Agent) Jobs() []JobInfo {
	a.idMu.RLock()
	out := make([]JobInfo, 0, len(a.ids))
	for _, rec := range a.ids {
		out = append(out, rec.snapshot())
	}
	a.idMu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		return lessJobID(out[i].ID, out[j].ID)
	})
	return out
}

// JobFilter selects and pages Jobs output. The zero value matches
// everything in one page.
type JobFilter struct {
	// Owner restricts to one user's jobs ("" = all owners).
	Owner string
	// States restricts to the listed states (empty = all states).
	States []JobState
	// Limit caps the page size (0 = unlimited).
	Limit int
	// After is an exclusive cursor: the last job ID of the previous page.
	After string
}

// JobsFiltered lists jobs matching f in queue order. When Limit truncates
// the result, next is the cursor for the following page ("" otherwise).
func (a *Agent) JobsFiltered(f JobFilter) (jobs []JobInfo, next string) {
	var recs []*jobRecord
	if f.Owner != "" {
		if sh := a.shardIfPresent(f.Owner); sh != nil {
			sh.mu.Lock()
			recs = make([]*jobRecord, 0, len(sh.jobs))
			for _, rec := range sh.jobs {
				recs = append(recs, rec)
			}
			sh.mu.Unlock()
		}
	} else {
		a.idMu.RLock()
		recs = make([]*jobRecord, 0, len(a.ids))
		for _, rec := range a.ids {
			recs = append(recs, rec)
		}
		a.idMu.RUnlock()
	}
	// IDs are immutable, so sorting without rec.mu is safe.
	sort.Slice(recs, func(i, j int) bool { return lessJobID(recs[i].ID, recs[j].ID) })
	for _, rec := range recs {
		if f.After != "" && !lessJobID(f.After, rec.ID) {
			continue // at or before the cursor
		}
		info := rec.snapshot()
		if len(f.States) > 0 {
			match := false
			for _, s := range f.States {
				if info.State == s {
					match = true
					break
				}
			}
			if !match {
				continue
			}
		}
		if f.Limit > 0 && len(jobs) >= f.Limit {
			next = jobs[len(jobs)-1].ID
			break
		}
		jobs = append(jobs, info)
	}
	return jobs, next
}

// Hold parks a job: a held job is cancelled remotely (if running) and will
// not run again until Release. The credential monitor uses this for
// expired proxies (§4.3).
func (a *Agent) Hold(id, reason string) error {
	rec, ok := a.job(id)
	if !ok {
		return fmt.Errorf("condorg: %w: %q", ErrNoSuchJob, id)
	}
	rec.mu.Lock()
	if rec.State.Terminal() {
		rec.mu.Unlock()
		return fmt.Errorf("condorg: %w: job %s is %v", ErrBadJobState, id, rec.State)
	}
	if rec.State == Held {
		rec.mu.Unlock()
		return nil
	}
	rec.State = Held
	rec.HoldReason = reason
	contact := rec.Contact
	a.traceLocked(rec, obs.PhaseHold, "", reason)
	rec.bumpLocked()
	rec.mu.Unlock()
	a.obs.Counter("agent_jobs_held_total").Inc()
	a.log(rec, "HELD", "job held: %s", reason)
	a.noteJobChange(rec.Owner)
	if contact.JobID != "" {
		// Tombstoned, not best-effort: a lost cancel here would let the
		// old copy run after a later Release resubmits the job.
		a.addCancelTombstone(rec, contact)
		a.managerFor(rec.Owner).dispatchCancelsFor(rec)
	}
	return nil
}

// Release returns a held job to Idle; it will be (re)submitted.
func (a *Agent) Release(id string) error {
	rec, ok := a.job(id)
	if !ok {
		return fmt.Errorf("condorg: %w: %q", ErrNoSuchJob, id)
	}
	rec.mu.Lock()
	if rec.State != Held {
		rec.mu.Unlock()
		return fmt.Errorf("condorg: %w: job %s is %v, not held", ErrBadJobState, id, rec.State)
	}
	rec.State = Idle
	rec.HoldReason = ""
	// A fresh submission identity: the old remote job (if any) was
	// tombstone-cancelled at hold time. The submit-retry budget starts
	// over — the release is an explicit user decision to try again.
	rec.SubmissionID = gram.NewSubmissionID()
	rec.Contact = gram.JobContact{}
	rec.Remote = gram.StateUnsubmitted
	rec.SubmitRetries = 0
	a.traceLocked(rec, obs.PhaseRelease, "", "released from hold")
	rec.bumpLocked()
	rec.mu.Unlock()
	a.log(rec, "RELEASED", "job released from hold")
	a.managerFor(rec.Owner).enqueueSubmit(rec)
	a.changed.Notify()
	return nil
}

// Remove cancels a job.
func (a *Agent) Remove(id string) error {
	rec, ok := a.job(id)
	if !ok {
		return fmt.Errorf("condorg: %w: %q", ErrNoSuchJob, id)
	}
	rec.mu.Lock()
	if rec.State.Terminal() {
		rec.mu.Unlock()
		return nil
	}
	rec.State = Removed
	rec.FinishedAt = time.Now()
	contact := rec.Contact
	a.traceLocked(rec, obs.PhaseRemove, "", "removed by user")
	rec.bumpLocked()
	rec.mu.Unlock()
	a.obs.Counter("agent_jobs_removed_total").Inc()
	a.log(rec, "REMOVED", "job removed by user")
	a.finishJob(rec)
	a.noteJobChange(rec.Owner)
	if contact.JobID != "" {
		a.addCancelTombstone(rec, contact)
		a.managerFor(rec.Owner).dispatchCancelsFor(rec)
	}
	return nil
}

// Wait blocks until the job is terminal or ctx expires. It wakes on the
// job's state-change broadcast, so completion latency is bounded by the
// event, not by a poll interval.
func (a *Agent) Wait(ctx context.Context, id string) (JobInfo, error) {
	start := time.Now()
	rec, ok := a.job(id)
	if !ok {
		return JobInfo{}, fmt.Errorf("condorg: %w: %q", ErrNoSuchJob, id)
	}
	for {
		rec.mu.Lock()
		info := rec.snapshotLocked()
		ch := rec.changedLocked()
		rec.mu.Unlock()
		if info.State.Terminal() {
			a.mWait.Observe(time.Since(start).Seconds())
			return info, nil
		}
		select {
		case <-ctx.Done():
			return info, ctx.Err()
		case <-ch:
		}
	}
}

// WaitAll blocks until every job is terminal or held, or ctx expires.
func (a *Agent) WaitAll(ctx context.Context) error {
	for {
		// Grab the broadcast channel BEFORE scanning so a change that
		// lands between the scan and the wait is not missed.
		ch := a.changed.C()
		if !a.hasRunnableJobs() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ch:
		}
	}
}

// hasRunnableJobs reports whether any job is neither terminal nor held.
func (a *Agent) hasRunnableJobs() bool {
	for _, sh := range a.allShards() {
		sh.mu.Lock()
		recs := make([]*jobRecord, 0, len(sh.active))
		for _, rec := range sh.active {
			recs = append(recs, rec)
		}
		sh.mu.Unlock()
		for _, rec := range recs {
			rec.mu.Lock()
			runnable := !rec.State.Terminal() && rec.State != Held
			rec.mu.Unlock()
			if runnable {
				return true
			}
		}
	}
	return false
}

// Stdout returns the job's streamed standard output so far (empty when
// nothing has arrived yet).
func (a *Agent) Stdout(id string) ([]byte, error) {
	return a.readStream(id, "stdout")
}

// Stderr returns the job's streamed standard error.
func (a *Agent) Stderr(id string) ([]byte, error) {
	return a.readStream(id, "stderr")
}

func (a *Agent) readStream(id, stream string) ([]byte, error) {
	if _, err := a.Status(id); err != nil {
		return nil, err
	}
	u := a.gassS.URLFor(filepath.Join("jobs", id, stream))
	if _, exists, err := a.stage.Stat(u); err != nil {
		return nil, err
	} else if !exists {
		return nil, nil // no output streamed yet
	}
	return a.stage.ReadAll(u)
}

// UserLog returns the job's event history.
func (a *Agent) UserLog(id string) ([]LogEvent, error) {
	info, err := a.Status(id)
	if err != nil {
		return nil, err
	}
	return info.Log, nil
}

// handleCallback receives JobManager status pushes.
func (a *Agent) handleCallback(_ string, body json.RawMessage) (any, error) {
	var st gram.StatusInfo
	if err := json.Unmarshal(body, &st); err != nil {
		return nil, err
	}
	a.mu.Lock()
	agentID, ok := a.bySiteJob[st.JobID]
	a.mu.Unlock()
	var rec *jobRecord
	if ok {
		rec, _ = a.job(agentID)
	}
	a.obs.Counter("agent_callbacks_total").Inc()
	if rec != nil {
		a.applyRemoteStatus(rec, st)
	} else {
		a.obs.Counter("agent_callbacks_unmatched_total").Inc()
	}
	return struct{}{}, nil
}

// remoteRank orders GRAM states along the job lifecycle so stale,
// out-of-order status deliveries (callbacks are asynchronous) cannot move
// a job backwards.
func remoteRank(s gram.JobState) int {
	switch s {
	case gram.StateUnsubmitted:
		return 0
	case gram.StateStageIn:
		return 1
	case gram.StatePending:
		return 2
	case gram.StateActive:
		return 3
	case gram.StateDone, gram.StateFailed:
		return 4
	}
	return 0
}

// applyRemoteStatus folds a GRAM status into the agent job record. Two
// staleness guards apply: the status must describe the job's CURRENT
// remote incarnation (hold/release, resubmission, and migration mint fresh
// remote jobs, and callbacks from the dead incarnation may still be in
// flight), and within an incarnation it must not move the lifecycle
// backwards (callbacks are delivered asynchronously and can reorder).
func (a *Agent) applyRemoteStatus(rec *jobRecord, st gram.StatusInfo) {
	rec.mu.Lock()
	if rec.State.Terminal() || rec.State == Held {
		rec.mu.Unlock()
		return
	}
	if st.JobID != "" && st.JobID != rec.Contact.JobID {
		rec.mu.Unlock()
		return // a previous incarnation's status
	}
	if st.JobManagerAddr != "" && st.JobManagerAddr != rec.Contact.JobManagerAddr {
		// Job IDs are only site-unique: a late callback from a cancelled
		// incarnation at another site can collide with the live job ID.
		rec.mu.Unlock()
		return
	}
	if remoteRank(st.State) < remoteRank(rec.Remote) {
		rec.mu.Unlock()
		return // stale out-of-order delivery
	}
	transitioned := rec.Remote != st.State
	if !transitioned && !rec.Disconnected {
		rec.mu.Unlock()
		return // no observable change: skip the redundant persist
	}
	rec.Remote = st.State
	rec.Disconnected = false
	var code, text string
	switch st.State {
	case gram.StatePending:
		rec.State = Idle
		if rec.PendingSince.IsZero() {
			rec.PendingSince = time.Now()
		}
		if transitioned {
			a.traceLocked(rec, obs.PhasePending, "", "queued in the site's local resource manager")
		}
	case gram.StateActive:
		rec.State = Running
		rec.PendingSince = time.Time{}
		code, text = "EXECUTE", "job began executing at "+rec.Site
		if transitioned {
			a.traceLocked(rec, obs.PhaseActive, "", "")
		}
	case gram.StateDone:
		rec.State = Completed
		rec.ExitOK = true
		rec.FinishedAt = time.Now()
		code, text = "TERMINATED", "job completed successfully"
		a.traceLocked(rec, obs.PhaseDone, "", "")
	case gram.StateFailed:
		// Site-lost jobs are the GridManager's to resubmit; it
		// decides in its loop (maybeResubmit records the fault event
		// with its class). Mark the remote error for it.
		rec.Error = st.Error
		code, text = "REMOTE_FAILURE", "remote failure: "+st.Error
	default:
		rec.State = Idle
	}
	rec.bumpLocked()
	owner := rec.Owner
	rec.mu.Unlock()
	if st.State == gram.StateDone {
		a.obs.Counter("agent_jobs_completed_total").Inc()
	}
	if transitioned && code != "" {
		a.log(rec, code, "%s", text)
	} else {
		a.persist(rec)
	}
	if st.State == gram.StateDone {
		a.finishJob(rec)
		a.cfg.Notifier.Notify(owner, "job "+rec.ID+" completed",
			fmt.Sprintf("Your job %s finished successfully on %s.", rec.ID, rec.Site))
	}
	a.noteJobChange(owner)
}

// Credential returns the agent's default user proxy (owners refreshed
// individually may hold a newer one — see OwnerCredential).
func (a *Agent) Credential() *gsi.Credential {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cfg.Credential
}

// OwnerCredential returns the proxy owner's GridManager authenticates
// with: the owner's own refreshed proxy when one has been installed, the
// agent-wide default otherwise.
func (a *Agent) OwnerCredential(owner string) *gsi.Credential {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ownerCredLocked(owner)
}

// ownerCredLocked is OwnerCredential under a.mu (managerFor calls it while
// holding the lock).
func (a *Agent) ownerCredLocked(owner string) *gsi.Credential {
	if cred, ok := a.creds[owner]; ok {
		return cred
	}
	return a.cfg.Credential
}

// SetOwnerCredential installs a refreshed proxy for one owner (§4.3): the
// owner's GridManager switches its GRAM client to it, and an in-band
// re-delegation task is queued for every live JobManager holding one of
// the owner's jobs — no hold/release cycle, so running jobs keep running
// while their remote proxies are replaced. Delivery is asynchronous on the
// per-site pipelines; sites that are down retry at probe pace, and only an
// exhausted retry budget falls back to hold-and-notify.
func (a *Agent) SetOwnerCredential(owner string, cred *gsi.Credential) {
	a.mu.Lock()
	a.creds[owner] = cred
	gm := a.managers[owner]
	a.mu.Unlock()
	if gm != nil && !gm.done() {
		gm.gram.SetCredential(cred)
		gm.requestCredRefresh()
	}
}

// SetCredential installs a refreshed default proxy: every owner WITHOUT an
// owner-specific credential (see SetOwnerCredential) switches to it and has
// the refreshed proxy re-delegated in-band to its live JobManagers. Owners
// renewed individually keep their own, newer proxies.
func (a *Agent) SetCredential(cred *gsi.Credential) {
	a.mu.Lock()
	a.cfg.Credential = cred
	var managers []*GridManager
	for owner, gm := range a.managers {
		if _, override := a.creds[owner]; override || gm.done() {
			continue
		}
		managers = append(managers, gm)
	}
	a.mu.Unlock()
	for _, gm := range managers {
		gm.gram.SetCredential(cred)
		gm.requestCredRefresh()
	}
}

// HoldAll holds every non-terminal job of owner with the given reason and
// returns the held job IDs — the credential monitor's bulk action.
func (a *Agent) HoldAll(owner, reason string) []string {
	var held []string
	for _, rec := range a.activeJobsSorted(owner) {
		rec.mu.Lock()
		skip := rec.State.Terminal() || rec.State == Held
		rec.mu.Unlock()
		if skip {
			continue
		}
		if err := a.Hold(rec.ID, reason); err == nil {
			held = append(held, rec.ID)
		}
	}
	return held
}

// ReleaseAll releases every held job of owner whose hold reason matches
// reasonPrefix ("" = all held jobs of that owner).
func (a *Agent) ReleaseAll(owner, reasonPrefix string) []string {
	var released []string
	for _, rec := range a.activeJobsSorted(owner) {
		rec.mu.Lock()
		match := rec.State == Held &&
			(reasonPrefix == "" || strings.HasPrefix(rec.HoldReason, reasonPrefix))
		rec.mu.Unlock()
		if !match {
			continue
		}
		if err := a.Release(rec.ID); err == nil {
			released = append(released, rec.ID)
		}
	}
	return released
}

// Owners returns users with at least one job in the queue.
func (a *Agent) Owners() []string {
	shards := a.allShards()
	out := make([]string, 0, len(shards))
	for _, sh := range shards {
		sh.mu.Lock()
		n := len(sh.jobs)
		sh.mu.Unlock()
		if n > 0 {
			out = append(out, sh.owner)
		}
	}
	sort.Strings(out)
	return out
}

// HasPendingJobs reports whether owner has non-terminal jobs (the
// credential monitor only analyzes "users with currently queued jobs").
func (a *Agent) HasPendingJobs(owner string) bool {
	for _, rec := range a.activeJobs(owner) {
		rec.mu.Lock()
		pending := !rec.State.Terminal()
		rec.mu.Unlock()
		if pending {
			return true
		}
	}
	return false
}

// Backlog counts runnable jobs: non-terminal and not held. It is the
// demand signal an elastic provisioner sizes the glidein pool to.
func (a *Agent) Backlog() int {
	a.idMu.RLock()
	recs := make([]*jobRecord, 0, len(a.ids))
	for _, rec := range a.ids {
		recs = append(recs, rec)
	}
	a.idMu.RUnlock()
	n := 0
	for _, rec := range recs {
		rec.mu.Lock()
		if !rec.State.Terminal() && rec.State != Held {
			n++
		}
		rec.mu.Unlock()
	}
	return n
}

// SiteRetired declares a gatekeeper address permanently gone. The paper's
// disconnection handling waits for a vanished site to come back — right
// for a real institution, hopeless for an elastic glidein pilot that was
// deliberately retired and will never return. The provisioner calls this
// after a pilot's GRAM job reaches a terminal state, which the pilot only
// does after closing its private gatekeeper: any incarnation still bound
// there provably cannot complete anymore, so it is classified SiteLost and
// resubmitted exactly-once through the standard ladder. Unsubmitted jobs
// bound to the address need nothing here — the deferred-binding dispatcher
// re-binds them once the breaker opens.
func (a *Agent) SiteRetired(addr string) {
	if addr == "" {
		return
	}
	a.idMu.RLock()
	recs := make([]*jobRecord, 0, len(a.ids))
	for _, rec := range a.ids {
		recs = append(recs, rec)
	}
	a.idMu.RUnlock()
	for _, rec := range recs {
		rec.mu.Lock()
		match := !rec.State.Terminal() && rec.State != Held &&
			rec.Contact.JobID != "" && rec.Contact.GatekeeperAddr == addr
		owner := rec.Owner
		rec.mu.Unlock()
		if !match {
			continue
		}
		a.managerFor(owner).maybeResubmit(rec, gram.StatusInfo{
			State: gram.StateFailed,
			Error: "glidein pilot at " + addr + " retired",
			Fault: faultclass.SiteLost,
		})
	}
}

// Notifier exposes the configured notifier for companion services.
func (a *Agent) Notifier() Notifier { return a.cfg.Notifier }

// Clock exposes the agent's clock.
func (a *Agent) Clock() gsi.Clock { return a.cfg.Clock }

// Close shuts the agent down (the submit machine powering off). Managers
// stop, servers close, the queue store is flushed. Reopen with NewAgent on
// the same StateDir to recover.
func (a *Agent) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	managers := make([]*GridManager, 0, len(a.managers))
	for _, gm := range a.managers {
		managers = append(managers, gm)
	}
	a.mu.Unlock()
	for _, gm := range managers {
		gm.stop()
	}
	a.cbSrv.Close()
	a.stage.Close()
	a.gassS.Close()
	if a.parts != nil {
		a.parts.Close()
	}
	a.store.Close()
	a.logMu.Lock()
	for id, f := range a.logFiles {
		f.Close()
		delete(a.logFiles, id)
	}
	a.logMu.Unlock()
}
