package condorg

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"condorg/internal/gram"
	"condorg/internal/lrm"
)

// testWorld is an agent plus N execution sites.
type testWorld struct {
	agent *Agent
	sites []*gram.Site
	runs  *atomic.Int64 // total executions of the "task" program
	dir   string        // agent state dir (for crash/recovery tests)
}

func buildRuntime(runs *atomic.Int64) *gram.FuncRuntime {
	rt := gram.NewFuncRuntime()
	rt.Register("task", func(ctx context.Context, args []string, _ []byte, stdout, _ io.Writer, _ map[string]string) error {
		runs.Add(1)
		d := 10 * time.Millisecond
		if len(args) > 0 {
			if p, err := time.ParseDuration(args[0]); err == nil {
				d = p
			}
		}
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return ctx.Err()
		}
		fmt.Fprintf(stdout, "task ok %s\n", strings.Join(args, " "))
		return nil
	})
	rt.Register("fail", func(_ context.Context, _ []string, _ []byte, _, stderr io.Writer, _ map[string]string) error {
		fmt.Fprintln(stderr, "boom")
		return errors.New("application exit 1")
	})
	return rt
}

func newSite(t *testing.T, name string, runs *atomic.Int64, stateDir, addr string) *gram.Site {
	t.Helper()
	cluster, err := lrm.NewCluster(lrm.Config{Name: name, Cpus: 4})
	if err != nil {
		t.Fatal(err)
	}
	site, err := gram.NewSite(gram.SiteConfig{
		Name:           name,
		Cluster:        cluster,
		Runtime:        buildRuntime(runs),
		StateDir:       stateDir,
		CommitTimeout:  2 * time.Second,
		GatekeeperAddr: addr,
	})
	if err != nil {
		t.Fatal(err)
	}
	return site
}

func newWorld(t *testing.T, numSites int) *testWorld {
	t.Helper()
	w := &testWorld{runs: &atomic.Int64{}, dir: t.TempDir()}
	var gks []string
	for i := 0; i < numSites; i++ {
		site := newSite(t, fmt.Sprintf("site%d", i), w.runs, t.TempDir(), "")
		t.Cleanup(site.Close)
		w.sites = append(w.sites, site)
		gks = append(gks, site.GatekeeperAddr())
	}
	agent, err := NewAgent(AgentConfig{
		StateDir: w.dir,
		Selector: &RoundRobinSelector{Sites: gks},
		Probe:    ProbeOptions{Interval: 40 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(agent.Close)
	w.agent = agent
	return w
}

func waitAgentState(t *testing.T, a *Agent, id string, want JobState) JobInfo {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		info, err := a.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.State == want {
			return info
		}
		if info.State.Terminal() && info.State != want {
			t.Fatalf("job %s reached %v (err=%q), want %v", id, info.State, info.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	info, _ := a.Status(id)
	t.Fatalf("job %s never reached %v (now %v, err=%q, log=%v)", id, want, info.State, info.Error, info.Log)
	return JobInfo{}
}

func TestSubmitRunComplete(t *testing.T) {
	w := newWorld(t, 1)
	id, err := w.agent.Submit(SubmitRequest{
		Owner:      "jfrey",
		Executable: gram.Program("task"),
		Args:       []string{"20ms", "alpha"},
	})
	if err != nil {
		t.Fatal(err)
	}
	info := waitAgentState(t, w.agent, id, Completed)
	if !info.ExitOK {
		t.Fatal("ExitOK false")
	}
	// Streamed stdout reached the submit machine.
	deadline := time.Now().Add(2 * time.Second)
	for {
		out, err := w.agent.Stdout(id)
		if err == nil && strings.Contains(string(out), "task ok 20ms alpha") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stdout = %q err=%v", out, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// User log records the full history.
	log, _ := w.agent.UserLog(id)
	var codes []string
	for _, e := range log {
		codes = append(codes, e.Code)
	}
	joined := strings.Join(codes, ",")
	for _, want := range []string{"SUBMIT", "GRID_SUBMIT", "EXECUTE", "TERMINATED"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("user log %v missing %s", codes, want)
		}
	}
	// Completion notification was delivered.
	if msgs := w.agent.Mailbox().Messages("jfrey"); len(msgs) != 1 || !strings.Contains(msgs[0].Subject, "completed") {
		t.Fatalf("mailbox = %+v", msgs)
	}
	if w.runs.Load() != 1 {
		t.Fatalf("program ran %d times, want exactly once", w.runs.Load())
	}
}

func TestGridManagerRetiresWhenQueueDrains(t *testing.T) {
	w := newWorld(t, 1)
	id, _ := w.agent.Submit(SubmitRequest{Owner: "u", Executable: gram.Program("task")})
	waitAgentState(t, w.agent, id, Completed)
	deadline := time.Now().Add(3 * time.Second)
	for w.agent.ActiveGridManagers() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := w.agent.ActiveGridManagers(); n != 0 {
		t.Fatalf("%d GridManagers still alive after queue drained", n)
	}
	// A new submission spawns a fresh manager.
	id2, _ := w.agent.Submit(SubmitRequest{Owner: "u", Executable: gram.Program("task")})
	waitAgentState(t, w.agent, id2, Completed)
}

func TestPerUserGridManagers(t *testing.T) {
	w := newWorld(t, 2)
	var ids []string
	for _, owner := range []string{"alice", "bob", "alice"} {
		id, err := w.agent.Submit(SubmitRequest{
			Owner: owner, Executable: gram.Program("task"), Args: []string{"200ms"},
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	deadline := time.Now().Add(2 * time.Second)
	for w.agent.ActiveGridManagers() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := w.agent.ActiveGridManagers(); n != 2 {
		t.Fatalf("managers = %d, want one per user (2)", n)
	}
	for _, id := range ids {
		waitAgentState(t, w.agent, id, Completed)
	}
}

func TestApplicationFailureIsFinal(t *testing.T) {
	w := newWorld(t, 1)
	id, _ := w.agent.Submit(SubmitRequest{Owner: "u", Executable: gram.Program("fail")})
	info := waitAgentState(t, w.agent, id, Failed)
	if info.Resubmits != 0 {
		t.Fatalf("application failure was resubmitted %d times", info.Resubmits)
	}
	if !strings.Contains(info.Error, "application exit 1") {
		t.Fatalf("error = %q", info.Error)
	}
	if msgs := w.agent.Mailbox().Messages("u"); len(msgs) != 1 || !strings.Contains(msgs[0].Subject, "failed") {
		t.Fatalf("mailbox = %+v", msgs)
	}
}

func TestHoldAndRelease(t *testing.T) {
	w := newWorld(t, 1)
	id, _ := w.agent.Submit(SubmitRequest{
		Owner: "u", Executable: gram.Program("task"), Args: []string{"5s"},
	})
	waitAgentState(t, w.agent, id, Running)
	if err := w.agent.Hold(id, "credentials expired"); err != nil {
		t.Fatal(err)
	}
	info, _ := w.agent.Status(id)
	if info.State != Held || info.HoldReason != "credentials expired" {
		t.Fatalf("after hold: %+v", info)
	}
	// Held jobs do not finish on their own.
	time.Sleep(150 * time.Millisecond)
	if info, _ := w.agent.Status(id); info.State != Held {
		t.Fatalf("held job moved to %v", info.State)
	}
	if err := w.agent.Release(id); err != nil {
		t.Fatal(err)
	}
	// After release the job runs afresh (fast args this time would need a
	// new submit; the same 5s task restarts — just check it reaches
	// Running again).
	waitAgentState(t, w.agent, id, Running)
	w.agent.Remove(id)
}

func TestRemove(t *testing.T) {
	w := newWorld(t, 1)
	id, _ := w.agent.Submit(SubmitRequest{
		Owner: "u", Executable: gram.Program("task"), Args: []string{"5s"},
	})
	waitAgentState(t, w.agent, id, Running)
	if err := w.agent.Remove(id); err != nil {
		t.Fatal(err)
	}
	info, _ := w.agent.Status(id)
	if info.State != Removed {
		t.Fatalf("state = %v", info.State)
	}
	if err := w.agent.Remove(id); err != nil {
		t.Fatal("second remove should be nil")
	}
}

func TestAgentRestartsCrashedJobManager(t *testing.T) {
	// §4.2 failure type 1, end to end through the agent: no user action.
	w := newWorld(t, 1)
	id, _ := w.agent.Submit(SubmitRequest{
		Owner: "u", Executable: gram.Program("task"), Args: []string{"400ms"},
	})
	info := waitAgentState(t, w.agent, id, Running)
	if err := w.sites[0].CrashJobManager(info.Contact.JobID); err != nil {
		t.Fatal(err)
	}
	info = waitAgentState(t, w.agent, id, Completed)
	log := fmt.Sprint(info.Log)
	if !strings.Contains(log, "JM_RESTARTED") && !strings.Contains(log, "RECONNECTED") {
		t.Fatalf("no restart recorded in user log: %v", info.Log)
	}
	if w.runs.Load() != 1 {
		t.Fatalf("program ran %d times across JM crash, want exactly once", w.runs.Load())
	}
}

func TestAgentSurvivesGatekeeperMachineCrash(t *testing.T) {
	// §4.2 failure type 2.
	w := newWorld(t, 1)
	id, _ := w.agent.Submit(SubmitRequest{
		Owner: "u", Executable: gram.Program("task"), Args: []string{"300ms"},
	})
	waitAgentState(t, w.agent, id, Running)
	w.sites[0].CrashGatekeeperMachine()
	// The agent marks the job disconnected while the machine is down.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if info, _ := w.agent.Status(id); info.Disconnected {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if info, _ := w.agent.Status(id); !info.Disconnected {
		t.Fatal("agent never noticed the machine crash")
	}
	time.Sleep(200 * time.Millisecond) // job completes while machine is down
	if err := w.sites[0].RestartGatekeeperMachine(); err != nil {
		t.Fatal(err)
	}
	info := waitAgentState(t, w.agent, id, Completed)
	if w.runs.Load() != 1 {
		t.Fatalf("program ran %d times across machine crash", w.runs.Load())
	}
	_ = info
}

func TestAgentWaitsOutNetworkPartition(t *testing.T) {
	// §4.2 failure type 4.
	w := newWorld(t, 1)
	id, _ := w.agent.Submit(SubmitRequest{
		Owner: "u", Executable: gram.Program("task"), Args: []string{"200ms"},
	})
	waitAgentState(t, w.agent, id, Running)
	w.sites[0].Partition()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if info, _ := w.agent.Status(id); info.Disconnected {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(150 * time.Millisecond)
	w.sites[0].Heal()
	info := waitAgentState(t, w.agent, id, Completed)
	if w.runs.Load() != 1 {
		t.Fatalf("program ran %d times across partition", w.runs.Load())
	}
	log := fmt.Sprint(info.Log)
	if !strings.Contains(log, "DISCONNECTED") {
		t.Fatalf("partition not recorded: %v", info.Log)
	}
}

func TestAgentCrashRecovery(t *testing.T) {
	// §4.2 failure type 3: the submit machine (agent) crashes and
	// restarts; jobs recover from the persistent queue and complete
	// exactly once.
	runs := &atomic.Int64{}
	site := newSite(t, "s", runs, t.TempDir(), "")
	defer site.Close()
	dir := t.TempDir()
	a1, err := NewAgent(AgentConfig{
		StateDir: dir,
		Selector: StaticSelector(site.GatekeeperAddr()),
		Probe:    ProbeOptions{Interval: 40 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 3; i++ {
		id, err := a1.Submit(SubmitRequest{
			Owner: "u", Executable: gram.Program("task"), Args: []string{"400ms", fmt.Sprint(i)},
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	waitAgentState(t, a1, ids[0], Running)
	a1.Close() // CRASH of the submit machine

	a2, err := NewAgent(AgentConfig{
		StateDir: dir,
		Selector: StaticSelector(site.GatekeeperAddr()),
		Probe:    ProbeOptions{Interval: 40 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	for _, id := range ids {
		info := waitAgentState(t, a2, id, Completed)
		if !info.ExitOK {
			t.Fatalf("job %s not ok after recovery", id)
		}
	}
	if got := runs.Load(); got != 3 {
		t.Fatalf("programs ran %d times across agent crash, want exactly 3", got)
	}
	// Output is retrievable through the NEW agent (URL files were
	// rewritten to the new GASS address).
	deadline := time.Now().Add(2 * time.Second)
	for {
		out, err := a2.Stdout(ids[0])
		if err == nil && strings.Contains(string(out), "task ok") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stdout after recovery = %q err=%v", out, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestResubmissionAfterSiteLosesJob(t *testing.T) {
	// A full site restart (interface machine AND cluster) loses running
	// jobs; the site reports "lost by site restart" and the agent
	// resubmits automatically.
	runs := &atomic.Int64{}
	siteState := t.TempDir()
	site := newSite(t, "flaky", runs, siteState, "")
	addr := site.GatekeeperAddr()

	agent, err := NewAgent(AgentConfig{
		StateDir: t.TempDir(),
		Selector: StaticSelector(addr),
		Probe:    ProbeOptions{Interval: 40 * time.Millisecond},
		Retry:    RetryOptions{MaxResubmits: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	id, _ := agent.Submit(SubmitRequest{
		Owner: "u", Executable: gram.Program("task"), Args: []string{"5s"},
	})
	waitAgentState(t, agent, id, Running)

	// Full site power cycle on the same address.
	site.Close()
	site2 := newSite(t, "flaky", runs, siteState, addr)
	defer site2.Close()

	// Wait for the agent to notice the loss and resubmit.
	deadline := time.Now().Add(8 * time.Second)
	for {
		info, _ := agent.Status(id)
		if info.Resubmits >= 1 {
			break
		}
		if info.State.Terminal() {
			t.Fatalf("job went terminal instead of resubmitting: %+v", info)
		}
		if time.Now().After(deadline) {
			t.Fatalf("no resubmission recorded: %+v", info)
		}
		time.Sleep(10 * time.Millisecond)
	}
	waitAgentState(t, agent, id, Running)
	agent.Remove(id)
}

func TestSelectorSpreadsJobs(t *testing.T) {
	w := newWorld(t, 3)
	var ids []string
	for i := 0; i < 6; i++ {
		id, _ := w.agent.Submit(SubmitRequest{Owner: "u", Executable: gram.Program("task")})
		ids = append(ids, id)
	}
	sitesUsed := map[string]bool{}
	for _, id := range ids {
		info := waitAgentState(t, w.agent, id, Completed)
		sitesUsed[info.Site] = true
	}
	if len(sitesUsed) != 3 {
		t.Fatalf("round robin used %d sites, want 3", len(sitesUsed))
	}
}

func TestSubmitValidation(t *testing.T) {
	a, err := NewAgent(AgentConfig{StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := a.Submit(SubmitRequest{Executable: []byte("x")}); err == nil {
		t.Fatal("submit without site or selector succeeded")
	}
	if _, err := a.Status("nope"); err == nil {
		t.Fatal("status of unknown job succeeded")
	}
	if err := a.Hold("nope", "r"); err == nil {
		t.Fatal("hold of unknown job succeeded")
	}
	if err := a.Release("nope"); err == nil {
		t.Fatal("release of unknown job succeeded")
	}
	if err := a.Remove("nope"); err == nil {
		t.Fatal("remove of unknown job succeeded")
	}
}

func TestWaitAllAndWait(t *testing.T) {
	w := newWorld(t, 1)
	id, _ := w.agent.Submit(SubmitRequest{Owner: "u", Executable: gram.Program("task")})
	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Second)
	defer cancel()
	info, err := w.agent.Wait(ctx, id)
	if err != nil || info.State != Completed {
		t.Fatalf("wait: %v %v", info.State, err)
	}
	if err := w.agent.WaitAll(ctx); err != nil {
		t.Fatal(err)
	}
	// Wait on a cancelled context returns promptly.
	cancelled, cancel2 := context.WithCancel(context.Background())
	cancel2()
	id2, _ := w.agent.Submit(SubmitRequest{Owner: "u", Executable: gram.Program("task"), Args: []string{"1s"}})
	if _, err := w.agent.Wait(cancelled, id2); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	w.agent.Remove(id2)
}

func TestWaitWakesOnStateEvents(t *testing.T) {
	// Wait and WaitAll are event-driven: they must wake on the state
	// change itself, without an agent poll loop. Use a job that would
	// linger for minutes so only the event can end the wait.
	w := newWorld(t, 1)
	id, err := w.agent.Submit(SubmitRequest{
		Owner: "u", Executable: gram.Program("task"), Args: []string{"10m"},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitAgentState(t, w.agent, id, Running)

	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Second)
	defer cancel()
	done := make(chan JobInfo, 1)
	go func() {
		info, err := w.agent.Wait(ctx, id)
		if err != nil {
			t.Errorf("wait: %v", err)
		}
		done <- info
	}()
	time.Sleep(50 * time.Millisecond) // let the waiter block
	if err := w.agent.Remove(id); err != nil {
		t.Fatal(err)
	}
	select {
	case info := <-done:
		if info.State != Removed {
			t.Fatalf("woke with state %v, want removed", info.State)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait did not wake on Remove")
	}

	// WaitAll treats held jobs as settled: holding the only live job must
	// wake a blocked WaitAll.
	id2, err := w.agent.Submit(SubmitRequest{
		Owner: "u", Executable: gram.Program("task"), Args: []string{"10m"},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitAgentState(t, w.agent, id2, Running)
	allDone := make(chan error, 1)
	go func() { allDone <- w.agent.WaitAll(ctx) }()
	time.Sleep(50 * time.Millisecond)
	if err := w.agent.Hold(id2, "parked by test"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-allDone:
		if err != nil {
			t.Fatalf("waitall: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitAll did not wake on Hold")
	}
	w.agent.Remove(id2)
}

func TestHeldJobReleasedAfterRestart(t *testing.T) {
	// A job held across an agent restart keeps its spec in the queue; its
	// gass:// staging URLs must be rewritten to the new agent's address at
	// recovery, or a later Release resubmits against the dead old port.
	runs := &atomic.Int64{}
	site := newSite(t, "s", runs, t.TempDir(), "")
	defer site.Close()
	dir := t.TempDir()
	a1, err := NewAgent(AgentConfig{
		StateDir: dir,
		Selector: StaticSelector(site.GatekeeperAddr()),
		Probe:    ProbeOptions{Interval: 40 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	id, err := a1.Submit(SubmitRequest{
		Owner: "u", Executable: gram.Program("task"), Args: []string{"10m", "held"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a1.Hold(id, "held before crash"); err != nil {
		t.Fatal(err)
	}
	a1.Close() // CRASH: the new agent's GASS server comes up on a new port

	a2, err := NewAgent(AgentConfig{
		StateDir: dir,
		Selector: StaticSelector(site.GatekeeperAddr()),
		Probe:    ProbeOptions{Interval: 40 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	info, err := a2.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != Held {
		t.Fatalf("recovered state = %v, want Held", info.State)
	}
	if err := a2.Release(id); err != nil {
		t.Fatal(err)
	}
	// The released job must stage in from the restarted agent and run; the
	// 10m task reaching Running proves stage-in used the rewritten URLs.
	waitAgentState(t, a2, id, Running)
	if err := a2.Remove(id); err != nil {
		t.Fatal(err)
	}
}
