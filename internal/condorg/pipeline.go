package condorg

import (
	"condorg/internal/faultclass"
	"condorg/internal/gram"
	"condorg/internal/obs"
)

// Per-site submission pipelines. The GridManager's run loop is a pure
// dispatcher: it partitions pending submits, recovery re-verifications,
// probes, and cancel tombstones by gatekeeper address and feeds them to
// per-site workers, so one slow or partitioned site burns only its own
// worker while every other site proceeds at full rate. Two caps bound the
// parallelism: PerSiteInFlight workers per gatekeeper address within one
// owner's manager, and MaxInFlight remote operations agent-wide (a shared
// semaphore across all owners). Ordering guarantees under the
// parallelism:
//
//   - Per job, at most one submit/recover/probe task runs at a time
//     (jobRecord.opBusy), so two-phase commit, status application, and
//     resubmission never interleave for the same job.
//   - Cancels of old incarnations are keyed by (job, old contact) and
//     may run concurrently with the new incarnation's tasks — they touch
//     disjoint remote jobs, and applyRemoteStatus drops cross-incarnation
//     callbacks by contact identity.
//   - Retirement waits for the task ledger to drain (gm.outstanding), so
//     tryRetire cannot close the GRAM client under a live worker.

// taskKind enumerates the work a site worker executes.
type taskKind int

const (
	taskSubmit  taskKind = iota // two-phase commit of a new/resubmitted job
	taskRecover                 // re-verify a job recovered with a contact
	taskProbe                   // §4.2 liveness probe of one job
	taskCancel                  // retry one cancel tombstone
	taskStage                   // chunked executable pre-stage to the site
)

func (k taskKind) String() string {
	switch k {
	case taskSubmit:
		return "submit"
	case taskRecover:
		return "recover"
	case taskProbe:
		return "probe"
	case taskCancel:
		return "cancel"
	case taskStage:
		return "stage"
	}
	return "unknown"
}

// gmTask is one unit of per-site work. contact is set only for cancels
// (the OLD incarnation's contact; the record's own contact may have moved
// on).
type gmTask struct {
	kind    taskKind
	rec     *jobRecord
	contact gram.JobContact
}

// siteWorker is the per-gatekeeper pipeline: a FIFO of tasks drained by
// up to PerSiteInFlight goroutines. All fields are guarded by gm.mu.
type siteWorker struct {
	addr     string
	queue    []gmTask
	running  int // worker goroutines alive for this site
	inflight int // tasks currently executing (≤ running)
}

// cancelTaskKey identifies one tombstone so the dispatcher queues at most
// one retry of it at a time.
func cancelTaskKey(rec *jobRecord, contact gram.JobContact) string {
	return rec.ID + "\x00" + contact.JobManagerAddr + "\x00" + contact.JobID
}

// enqueueTask queues t on addr's worker, spawning a goroutine when the
// site is below its in-flight cap. Tasks enqueued on a stopping manager
// are dropped — shutdown and retirement both mean no more remote work.
func (gm *GridManager) enqueueTask(addr string, t gmTask) {
	gm.mu.Lock()
	defer gm.mu.Unlock()
	if gm.finished {
		return
	}
	w := gm.workers[addr]
	if w == nil {
		w = &siteWorker{addr: addr}
		gm.workers[addr] = w
	}
	w.queue = append(w.queue, t)
	gm.outstanding++
	if w.running < gm.perSite {
		w.running++
		// Add under gm.mu with finished==false: stop() sets finished
		// under the same lock before waiting, so Add cannot race Wait.
		gm.workerWG.Add(1)
		go gm.workerLoop(w)
	}
}

// workerLoop drains one site's queue. The goroutine exits when the queue
// empties or the manager stops; enqueueTask spawns a fresh one on demand.
func (gm *GridManager) workerLoop(w *siteWorker) {
	defer gm.workerWG.Done()
	for {
		gm.mu.Lock()
		if gm.finished || len(w.queue) == 0 {
			w.running--
			gm.mu.Unlock()
			return
		}
		t := w.queue[0]
		w.queue = w.queue[1:]
		w.inflight++
		gm.mu.Unlock()

		gm.runTask(t)

		gm.mu.Lock()
		w.inflight--
		gm.outstanding--
		gm.mu.Unlock()
		gm.endTask(t)
		// The task may have requeued its job (pending/recovery) or freed
		// the last obstacle to retirement; let the dispatcher look.
		gm.poke()
	}
}

// runTask executes one task body under the agent-wide in-flight cap.
func (gm *GridManager) runTask(t gmTask) {
	sem := gm.agent.pipeSem
	select {
	case sem <- struct{}{}:
	default:
		// The agent-wide cap is saturated: count the stall, then wait.
		gm.agent.obs.Counter("gm_worker_stalls_total").Inc()
		select {
		case sem <- struct{}{}:
		case <-gm.stopCh:
			return
		}
	}
	defer func() { <-sem }()
	gm.agent.obs.Counter(obs.Key("gm_tasks_total", "kind", t.kind.String())).Inc()
	switch t.kind {
	case taskSubmit:
		gm.submit(t.rec)
	case taskRecover:
		gm.recoverJob(t.rec)
	case taskProbe:
		gm.probeJob(t.rec)
	case taskCancel:
		gm.cancelOldCopy(t.rec, t.contact)
	case taskStage:
		gm.stageJob(t.rec)
	}
}

// endTask releases the task's exclusivity marker after the ledger entry
// is closed, so the next dispatch pass may pick the job up again.
func (gm *GridManager) endTask(t gmTask) {
	if t.kind == taskCancel {
		gm.mu.Lock()
		delete(gm.cancelBusy, cancelTaskKey(t.rec, t.contact))
		gm.mu.Unlock()
		return
	}
	t.rec.mu.Lock()
	t.rec.opBusy = false
	t.rec.mu.Unlock()
}

// dispatchPending partitions the submit queue by destination site and
// feeds the site workers. Jobs bound for a breaker-open site park here —
// requeued without a task — until the breaker's retry deadline passes;
// a site due for its half-open probe gets exactly one job through per
// pass so a recovering gatekeeper is not stampeded.
func (gm *GridManager) dispatchPending() {
	gm.mu.Lock()
	batch := gm.pending
	gm.pending = nil
	gm.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	var parked []*jobRecord
	probed := make(map[string]bool) // non-closed sites already given their probe job
	for _, rec := range batch {
		rec.mu.Lock()
		if rec.State.Terminal() || rec.State == Held {
			// Held jobs leave the queue; Release re-enqueues them.
			rec.mu.Unlock()
			continue
		}
		if rec.opBusy {
			rec.mu.Unlock()
			parked = append(parked, rec)
			continue
		}
		site := rec.Site
		if gm.gram.SiteHealth(site) != faultclass.Closed {
			if probed[site] || !gm.gram.SiteReady(site) {
				rec.mu.Unlock()
				parked = append(parked, rec)
				continue
			}
			probed[site] = true
		}
		// A job whose executable has not reached the site yet stages first:
		// staging is a first-class task, so breaker parking and half-open
		// probe gating above apply to transfers exactly as to submits.
		kind := taskSubmit
		if !gm.agent.cfg.Stage.Disabled && rec.Stage.Hash != "" && !rec.Stage.Done {
			kind = taskStage
		}
		rec.opBusy = true
		gm.agent.traceLocked(rec, obs.PhaseDispatch, "", "queued on the "+site+" pipeline ("+kind.String()+")")
		rec.mu.Unlock()
		gm.enqueueTask(site, gmTask{kind: kind, rec: rec})
	}
	if len(parked) > 0 {
		gm.mu.Lock()
		gm.pending = append(gm.pending, parked...)
		gm.mu.Unlock()
	}
}

// dispatchRecovery feeds recovered-with-contact jobs to their site's
// worker for re-verification.
func (gm *GridManager) dispatchRecovery() {
	gm.mu.Lock()
	batch := gm.recovery
	gm.recovery = nil
	gm.mu.Unlock()
	var parked []*jobRecord
	for _, rec := range batch {
		rec.mu.Lock()
		if rec.State.Terminal() || rec.State == Held {
			rec.mu.Unlock()
			continue
		}
		if rec.opBusy {
			rec.mu.Unlock()
			parked = append(parked, rec)
			continue
		}
		rec.opBusy = true
		addr := rec.Contact.GatekeeperAddr
		rec.mu.Unlock()
		gm.enqueueTask(addr, gmTask{kind: taskRecover, rec: rec})
	}
	if len(parked) > 0 {
		gm.mu.Lock()
		gm.recovery = append(gm.recovery, parked...)
		gm.mu.Unlock()
	}
}

// dispatchProbes queues one liveness probe per active job with a remote
// contact. Probes to a breaker-open site fast-fail inside the worker (the
// guard refuses them before any I/O), which is what keeps the job's
// Disconnected flag honest at probe pace.
func (gm *GridManager) dispatchProbes() {
	for _, rec := range gm.agent.activeJobs(gm.owner) {
		rec.mu.Lock()
		skip := rec.State.Terminal() || rec.State == Held ||
			rec.Contact.JobID == "" || rec.opBusy
		if !skip {
			rec.opBusy = true
		}
		addr := rec.Contact.GatekeeperAddr
		rec.mu.Unlock()
		if skip {
			continue
		}
		gm.enqueueTask(addr, gmTask{kind: taskProbe, rec: rec})
	}
}

// dispatchCancels queues a retry for every unacknowledged cancel
// tombstone of the owner. Each tombstone is keyed to the OLD contact's
// gatekeeper, so a dead old site delays only its own worker — never the
// probe tick.
func (gm *GridManager) dispatchCancels() {
	for _, rec := range gm.agent.pendingCancels(gm.owner) {
		gm.dispatchCancelsFor(rec)
	}
}

// dispatchCancelsFor queues one cancel task per unacknowledged tombstone
// of rec, skipping tombstones whose retry is already queued or running.
func (gm *GridManager) dispatchCancelsFor(rec *jobRecord) {
	rec.mu.Lock()
	contacts := append([]gram.JobContact(nil), rec.CancelPending...)
	rec.mu.Unlock()
	for _, contact := range contacts {
		key := cancelTaskKey(rec, contact)
		gm.mu.Lock()
		if gm.finished || gm.cancelBusy[key] {
			gm.mu.Unlock()
			continue
		}
		gm.cancelBusy[key] = true
		gm.mu.Unlock()
		gm.enqueueTask(contact.GatekeeperAddr, gmTask{kind: taskCancel, rec: rec, contact: contact})
	}
}

// pipelineStats reports per-site queue depth and in-flight task counts
// plus the manager-wide backlog, for the metrics collector and the
// control plane's health op.
func (gm *GridManager) pipelineStats() (queued, inflight map[string]int, backlog int) {
	gm.mu.Lock()
	defer gm.mu.Unlock()
	queued = make(map[string]int, len(gm.workers))
	inflight = make(map[string]int, len(gm.workers))
	for addr, w := range gm.workers {
		if len(w.queue) == 0 && w.inflight == 0 {
			continue
		}
		queued[addr] = len(w.queue)
		inflight[addr] = w.inflight
		backlog += len(w.queue)
	}
	backlog += len(gm.pending) + len(gm.recovery)
	return queued, inflight, backlog
}
