package condorg

import (
	"time"

	"condorg/internal/faultclass"
	"condorg/internal/gram"
	"condorg/internal/obs"
)

// Per-site submission pipelines. The GridManager's run loop is a pure
// dispatcher: it partitions pending submits, recovery re-verifications,
// probes, and cancel tombstones by gatekeeper address and feeds them to
// per-site workers, so one slow or partitioned site burns only its own
// worker while every other site proceeds at full rate. Two caps bound the
// parallelism: PerSiteInFlight workers per gatekeeper address within one
// owner's manager, and MaxInFlight remote operations agent-wide (a shared
// semaphore across all owners). Ordering guarantees under the
// parallelism:
//
//   - Per job, at most one submit/recover/probe task runs at a time
//     (jobRecord.opBusy), so two-phase commit, status application, and
//     resubmission never interleave for the same job.
//   - Cancels of old incarnations are keyed by (job, old contact) and
//     may run concurrently with the new incarnation's tasks — they touch
//     disjoint remote jobs, and applyRemoteStatus drops cross-incarnation
//     callbacks by contact identity.
//   - Retirement waits for the task ledger to drain (gm.outstanding), so
//     tryRetire cannot close the GRAM client under a live worker.

// taskKind enumerates the work a site worker executes.
type taskKind int

const (
	taskSubmit      taskKind = iota // two-phase commit of a new/resubmitted job
	taskRecover                     // re-verify a job recovered with a contact
	taskProbe                       // §4.2 liveness probe of one job
	taskCancel                      // retry one cancel tombstone
	taskStage                       // chunked executable pre-stage to the site
	taskBatchProbe                  // coalesced §4.2 probe of several jobs at one site
	taskBatchCancel                 // coalesced cancel of several tombstones at one site
	taskRefreshCred                 // in-band credential re-delegation to one job manager
)

func (k taskKind) String() string {
	switch k {
	case taskSubmit:
		return "submit"
	case taskRecover:
		return "recover"
	case taskProbe:
		return "probe"
	case taskCancel:
		return "cancel"
	case taskStage:
		return "stage"
	case taskBatchProbe:
		return "batch-probe"
	case taskBatchCancel:
		return "batch-cancel"
	case taskRefreshCred:
		return "refresh-cred"
	}
	return "unknown"
}

// cancelPair is one tombstone: the record plus the OLD incarnation's
// contact the cancel must reach.
type cancelPair struct {
	rec     *jobRecord
	contact gram.JobContact
}

// gmTask is one unit of per-site work. contact is set only for cancels
// (the OLD incarnation's contact; the record's own contact may have moved
// on); recs/pairs carry the members of a batched task.
type gmTask struct {
	kind    taskKind
	rec     *jobRecord
	contact gram.JobContact
	recs    []*jobRecord // taskBatchProbe members
	pairs   []cancelPair // taskBatchCancel members
}

// siteWorker is the per-gatekeeper pipeline: a FIFO of tasks drained by
// up to PerSiteInFlight goroutines. All fields are guarded by gm.mu.
type siteWorker struct {
	addr     string
	queue    []gmTask
	running  int // worker goroutines alive for this site
	inflight int // tasks currently executing (≤ running)
}

// cancelTaskKey identifies one tombstone so the dispatcher queues at most
// one retry of it at a time.
func cancelTaskKey(rec *jobRecord, contact gram.JobContact) string {
	return rec.ID + "\x00" + contact.JobManagerAddr + "\x00" + contact.JobID
}

// enqueueTask queues t on addr's worker, spawning a goroutine when the
// site is below its in-flight cap. Tasks enqueued on a stopping manager
// are dropped — shutdown and retirement both mean no more remote work.
func (gm *GridManager) enqueueTask(addr string, t gmTask) {
	gm.mu.Lock()
	defer gm.mu.Unlock()
	if gm.finished {
		return
	}
	w := gm.workers[addr]
	if w == nil {
		w = &siteWorker{addr: addr}
		gm.workers[addr] = w
	}
	w.queue = append(w.queue, t)
	gm.outstanding++
	if w.running < gm.perSite {
		w.running++
		// Add under gm.mu with finished==false: stop() sets finished
		// under the same lock before waiting, so Add cannot race Wait.
		gm.workerWG.Add(1)
		go gm.workerLoop(w)
	}
}

// workerLoop drains one site's queue. The goroutine exits when the queue
// empties or the manager stops; enqueueTask spawns a fresh one on demand.
func (gm *GridManager) workerLoop(w *siteWorker) {
	defer gm.workerWG.Done()
	for {
		gm.mu.Lock()
		if gm.finished || len(w.queue) == 0 {
			w.running--
			gm.mu.Unlock()
			return
		}
		t := w.queue[0]
		w.queue = w.queue[1:]
		// Opportunistic batch drain: a submit at the head of the queue
		// pulls the other queued submits with it (up to Batch.MaxJobs)
		// so a burst aimed at one gatekeeper goes out as one frame
		// instead of one two-phase commit per worker pass.
		var batch []gmTask
		if t.kind == taskSubmit && gm.batch.MaxJobs > 1 && gm.gram.BatchSupported(w.addr) {
			batch = gm.drainSubmitsLocked(w, []gmTask{t})
		}
		n := 1
		if batch != nil {
			n = len(batch)
		}
		w.inflight += n
		gm.mu.Unlock()

		if batch != nil {
			if gm.batch.MaxDelay > 0 && len(batch) < gm.batch.MaxJobs {
				// Hold the frame open briefly so the rest of a burst
				// still in dispatch can join it.
				sleepOrStop(gm.stopCh, gm.batch.MaxDelay)
				gm.mu.Lock()
				batch = gm.drainSubmitsLocked(w, batch)
				w.inflight += len(batch) - n
				n = len(batch)
				gm.mu.Unlock()
			}
			gm.runBatchSubmit(batch)
			gm.mu.Lock()
			w.inflight -= n
			gm.outstanding -= n
			gm.mu.Unlock()
			for _, bt := range batch {
				gm.endTask(bt)
			}
			gm.poke()
			continue
		}

		gm.runTask(t)

		gm.mu.Lock()
		w.inflight--
		gm.outstanding--
		gm.mu.Unlock()
		gm.endTask(t)
		// The task may have requeued its job (pending/recovery) or freed
		// the last obstacle to retirement; let the dispatcher look.
		gm.poke()
	}
}

// drainSubmitsLocked moves queued submit tasks into batch, preserving the
// queue order of everything else, until batch reaches Batch.MaxJobs.
// gm.mu held.
func (gm *GridManager) drainSubmitsLocked(w *siteWorker, batch []gmTask) []gmTask {
	if len(batch) >= gm.batch.MaxJobs {
		return batch
	}
	rest := w.queue[:0]
	for _, qt := range w.queue {
		if qt.kind == taskSubmit && len(batch) < gm.batch.MaxJobs {
			batch = append(batch, qt)
		} else {
			rest = append(rest, qt)
		}
	}
	w.queue = rest
	return batch
}

// runBatchSubmit executes a coalesced submit batch. The batch holds one
// slot of the agent-wide cap (it is one RPC stream), while the per-task
// ledger entries (outstanding, opBusy) stay per job.
func (gm *GridManager) runBatchSubmit(batch []gmTask) {
	sem := gm.agent.pipeSem
	if !sem.tryAcquire() {
		gm.agent.obs.Counter("gm_worker_stalls_total").Inc()
		if !sem.acquire(gm.owner, gm.stopCh) {
			return
		}
	}
	defer sem.release()
	gm.agent.obs.Counter(obs.Key("gm_tasks_total", "kind", "batch-submit")).Inc()
	recs := make([]*jobRecord, len(batch))
	for i, t := range batch {
		recs[i] = t.rec
	}
	gm.submitBatch(recs)
}

// runTask executes one task body under the agent-wide in-flight cap.
func (gm *GridManager) runTask(t gmTask) {
	sem := gm.agent.pipeSem
	if !sem.tryAcquire() {
		// The agent-wide cap is saturated: count the stall, then wait for
		// a fair-share grant in this owner's rotation turn.
		gm.agent.obs.Counter("gm_worker_stalls_total").Inc()
		if !sem.acquire(gm.owner, gm.stopCh) {
			return
		}
	}
	defer sem.release()
	gm.agent.obs.Counter(obs.Key("gm_tasks_total", "kind", t.kind.String())).Inc()
	switch t.kind {
	case taskSubmit:
		gm.submit(t.rec)
	case taskRecover:
		gm.recoverJob(t.rec)
	case taskProbe:
		gm.probeJob(t.rec)
	case taskCancel:
		gm.cancelOldCopy(t.rec, t.contact)
	case taskStage:
		gm.stageJob(t.rec)
	case taskBatchProbe:
		gm.probeBatch(t.recs)
	case taskBatchCancel:
		gm.cancelBatch(t.pairs)
	case taskRefreshCred:
		gm.refreshJobCred(t.rec)
	}
}

// sleepOrStop waits for d unless stop closes first.
func sleepOrStop(stop <-chan struct{}, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-stop:
	}
}

// endTask releases the task's exclusivity marker after the ledger entry
// is closed, so the next dispatch pass may pick the job up again.
func (gm *GridManager) endTask(t gmTask) {
	switch t.kind {
	case taskCancel:
		gm.mu.Lock()
		delete(gm.cancelBusy, cancelTaskKey(t.rec, t.contact))
		gm.mu.Unlock()
	case taskBatchCancel:
		gm.mu.Lock()
		for _, p := range t.pairs {
			delete(gm.cancelBusy, cancelTaskKey(p.rec, p.contact))
		}
		gm.mu.Unlock()
	case taskBatchProbe:
		for _, rec := range t.recs {
			rec.mu.Lock()
			rec.opBusy = false
			rec.mu.Unlock()
		}
	case taskRefreshCred:
		// Re-delegations are keyed by job in credBusy, not opBusy: the
		// refresh may run alongside a probe — they touch disjoint verbs.
		gm.mu.Lock()
		delete(gm.credBusy, t.rec.ID)
		gm.mu.Unlock()
	default:
		t.rec.mu.Lock()
		t.rec.opBusy = false
		t.rec.mu.Unlock()
	}
}

// dispatchPending partitions the submit queue by destination site and
// feeds the site workers. Jobs bound for a breaker-open site park here —
// requeued without a task — until the breaker's retry deadline passes;
// a site due for its half-open probe gets exactly one job through per
// pass so a recovering gatekeeper is not stampeded.
func (gm *GridManager) dispatchPending() {
	gm.mu.Lock()
	batch := gm.pending
	gm.pending = nil
	gm.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	var parked []*jobRecord
	probed := make(map[string]bool) // non-closed sites already given their probe job
	for _, rec := range batch {
		rec.mu.Lock()
		if rec.State.Terminal() || rec.State == Held {
			// Held jobs leave the queue; Release re-enqueues them.
			rec.mu.Unlock()
			continue
		}
		if rec.opBusy {
			rec.mu.Unlock()
			parked = append(parked, rec)
			continue
		}
		site := rec.Site
		// Deferred / elastic binding: a job accepted without a site binds
		// here once the selector has a candidate, and a still-unsubmitted
		// job bound to a breaker-open site (e.g. a retired pilot) moves to
		// a healthy one. Both require an empty remote contact: such a job
		// can have left at most an *uncommitted* incarnation behind — a
		// torn Submit reply the site expires without ever running it — so
		// changing the binding cannot double-execute. Anything with a
		// contact goes through commit-retry / resubmit instead.
		if gm.agent.cfg.DeferBinding && gm.agent.cfg.Selector != nil && rec.Contact.JobID == "" &&
			(site == "" || gm.gram.SiteHealth(site) == faultclass.Open) {
			newSite, err := selectSite(gm.agent.cfg.Selector, SubmitRequest{Owner: rec.Owner}, gm.healthView())
			if err == nil && newSite != site {
				old := site
				rec.Site = newSite
				// The new site has none of our bytes: restart staging.
				rec.Stage = StageInfo{Hash: rec.Stage.Hash, Total: rec.Stage.Total}
				detail := "bound to " + newSite
				if old != "" {
					detail = "rebound from breaker-open " + old + " to " + newSite
				}
				gm.agent.traceLocked(rec, obs.PhaseBind, "", detail)
				rec.bumpLocked()
				rec.mu.Unlock()
				// Journal the new binding BEFORE the task can reach the
				// wire: recovery must resubmit (same SubmissionID) to the
				// site the incarnation actually targets.
				gm.agent.log(rec, "BIND", "%s", detail)
				site = newSite
				rec.mu.Lock()
				if rec.State.Terminal() || rec.State == Held {
					rec.mu.Unlock()
					continue
				}
			} else if site == "" {
				// No candidate yet: park until the pool grows.
				rec.mu.Unlock()
				parked = append(parked, rec)
				continue
			}
		}
		if gm.gram.SiteHealth(site) != faultclass.Closed {
			if probed[site] || !gm.gram.SiteReady(site) {
				rec.mu.Unlock()
				parked = append(parked, rec)
				continue
			}
			probed[site] = true
		}
		// A job whose executable has not reached the site yet stages first:
		// staging is a first-class task, so breaker parking and half-open
		// probe gating above apply to transfers exactly as to submits.
		kind := taskSubmit
		if !gm.agent.cfg.Stage.Disabled && rec.Stage.Hash != "" && !rec.Stage.Done {
			kind = taskStage
		}
		rec.opBusy = true
		gm.agent.traceLocked(rec, obs.PhaseDispatch, "", "queued on the "+site+" pipeline ("+kind.String()+")")
		rec.mu.Unlock()
		gm.enqueueTask(site, gmTask{kind: kind, rec: rec})
	}
	if len(parked) > 0 {
		gm.mu.Lock()
		gm.pending = append(gm.pending, parked...)
		gm.mu.Unlock()
	}
}

// dispatchRecovery feeds recovered-with-contact jobs to their site's
// worker for re-verification.
func (gm *GridManager) dispatchRecovery() {
	gm.mu.Lock()
	batch := gm.recovery
	gm.recovery = nil
	gm.mu.Unlock()
	var parked []*jobRecord
	for _, rec := range batch {
		rec.mu.Lock()
		if rec.State.Terminal() || rec.State == Held {
			rec.mu.Unlock()
			continue
		}
		if rec.opBusy {
			rec.mu.Unlock()
			parked = append(parked, rec)
			continue
		}
		rec.opBusy = true
		addr := rec.Contact.GatekeeperAddr
		rec.mu.Unlock()
		gm.enqueueTask(addr, gmTask{kind: taskRecover, rec: rec})
	}
	if len(parked) > 0 {
		gm.mu.Lock()
		gm.recovery = append(gm.recovery, parked...)
		gm.mu.Unlock()
	}
}

// dispatchProbes queues one liveness probe per active job with a remote
// contact. Probes to a breaker-open site fast-fail inside the worker (the
// guard refuses them before any I/O), which is what keeps the job's
// Disconnected flag honest at probe pace.
func (gm *GridManager) dispatchProbes() {
	groups := make(map[string][]*jobRecord)
	for _, rec := range gm.agent.activeJobs(gm.owner) {
		rec.mu.Lock()
		skip := rec.State.Terminal() || rec.State == Held ||
			rec.Contact.JobID == "" || rec.opBusy
		if !skip {
			rec.opBusy = true
		}
		addr := rec.Contact.GatekeeperAddr
		rec.mu.Unlock()
		if skip {
			continue
		}
		if gm.batch.MaxJobs <= 1 || !gm.gram.BatchSupported(addr) {
			gm.enqueueTask(addr, gmTask{kind: taskProbe, rec: rec})
			continue
		}
		groups[addr] = append(groups[addr], rec)
	}
	// Coalesce each site's probes into ceil(N/MaxJobs) batch-status
	// frames addressed to the gatekeeper, instead of N jm.status RPCs.
	for addr, recs := range groups {
		for len(recs) > 0 {
			n := gm.batch.MaxJobs
			if n > len(recs) {
				n = len(recs)
			}
			chunk := recs[:n]
			recs = recs[n:]
			if len(chunk) == 1 {
				gm.enqueueTask(addr, gmTask{kind: taskProbe, rec: chunk[0]})
				continue
			}
			gm.enqueueTask(addr, gmTask{kind: taskBatchProbe, recs: chunk})
		}
	}
}

// dispatchCancels queues a retry for every unacknowledged cancel
// tombstone of the owner. Each tombstone is keyed to the OLD contact's
// gatekeeper, so a dead old site delays only its own worker — never the
// probe tick.
func (gm *GridManager) dispatchCancels() {
	groups := make(map[string][]cancelPair)
	for _, rec := range gm.agent.pendingCancels(gm.owner) {
		rec.mu.Lock()
		contacts := append([]gram.JobContact(nil), rec.CancelPending...)
		rec.mu.Unlock()
		for _, contact := range contacts {
			key := cancelTaskKey(rec, contact)
			gm.mu.Lock()
			if gm.finished || gm.cancelBusy[key] {
				gm.mu.Unlock()
				continue
			}
			gm.cancelBusy[key] = true
			gm.mu.Unlock()
			addr := contact.GatekeeperAddr
			if gm.batch.MaxJobs <= 1 || !gm.gram.BatchSupported(addr) {
				gm.enqueueTask(addr, gmTask{kind: taskCancel, rec: rec, contact: contact})
				continue
			}
			groups[addr] = append(groups[addr], cancelPair{rec: rec, contact: contact})
		}
	}
	for addr, pairs := range groups {
		for len(pairs) > 0 {
			n := gm.batch.MaxJobs
			if n > len(pairs) {
				n = len(pairs)
			}
			chunk := pairs[:n]
			pairs = pairs[n:]
			if len(chunk) == 1 {
				gm.enqueueTask(addr, gmTask{kind: taskCancel, rec: chunk[0].rec, contact: chunk[0].contact})
				continue
			}
			gm.enqueueTask(addr, gmTask{kind: taskBatchCancel, pairs: chunk})
		}
	}
}

// dispatchCancelsFor queues one cancel task per unacknowledged tombstone
// of rec, skipping tombstones whose retry is already queued or running.
func (gm *GridManager) dispatchCancelsFor(rec *jobRecord) {
	rec.mu.Lock()
	contacts := append([]gram.JobContact(nil), rec.CancelPending...)
	rec.mu.Unlock()
	for _, contact := range contacts {
		key := cancelTaskKey(rec, contact)
		gm.mu.Lock()
		if gm.finished || gm.cancelBusy[key] {
			gm.mu.Unlock()
			continue
		}
		gm.cancelBusy[key] = true
		gm.mu.Unlock()
		gm.enqueueTask(contact.GatekeeperAddr, gmTask{kind: taskCancel, rec: rec, contact: contact})
	}
}

// pipelineStats reports per-site queue depth and in-flight task counts
// plus the manager-wide backlog, for the metrics collector and the
// control plane's health op.
func (gm *GridManager) pipelineStats() (queued, inflight map[string]int, backlog int) {
	gm.mu.Lock()
	defer gm.mu.Unlock()
	queued = make(map[string]int, len(gm.workers))
	inflight = make(map[string]int, len(gm.workers))
	for addr, w := range gm.workers {
		if len(w.queue) == 0 && w.inflight == 0 {
			continue
		}
		queued[addr] = len(w.queue)
		inflight[addr] = w.inflight
		backlog += len(w.queue)
	}
	backlog += len(gm.pending) + len(gm.recovery)
	return queued, inflight, backlog
}
