package condorg

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"condorg/internal/faultclass"
	"condorg/internal/gram"
	"condorg/internal/lrm"
	"condorg/internal/wire"
)

// TestBreakerIsolatesDeadSite: one dead (partitioned) site must not stall
// submissions to healthy sites. The per-site circuit breaker opens after a
// few timed-out attempts, after which submissions aimed at the dead site
// fast-fail instead of burning the full network timeout in the manager's
// loop; jobs for the healthy site proceed at full speed.
func TestBreakerIsolatesDeadSite(t *testing.T) {
	runs := &atomic.Int64{}
	healthy := newSite(t, "healthy", runs, t.TempDir(), "")
	defer healthy.Close()
	dead := newSite(t, "dead", runs, t.TempDir(), "")
	defer dead.Close()
	deadAddr := dead.GatekeeperAddr()
	dead.Partition() // dead from the very first dial

	agent, err := NewAgent(AgentConfig{
		StateDir: t.TempDir(),
		Selector: StaticSelector(healthy.GatekeeperAddr()),
		Probe:    ProbeOptions{Interval: 40 * time.Millisecond},
		Breaker: faultclass.BreakerConfig{
			Threshold: 2,
			BaseDelay: 50 * time.Millisecond,
			MaxDelay:  400 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	// A job pinned to the dead site keeps the manager attempting it.
	deadID, err := agent.Submit(SubmitRequest{
		Owner: "u", Site: deadAddr,
		Executable: gram.Program("task"), Args: []string{"20ms"},
	})
	if err != nil {
		t.Fatal(err)
	}

	// The breaker must open on the dead gatekeeper.
	deadline := time.Now().Add(5 * time.Second)
	for agent.SiteHealth("u", deadAddr) != faultclass.Open {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never opened for %s (state %v)", deadAddr, agent.SiteHealth("u", deadAddr))
		}
		time.Sleep(10 * time.Millisecond)
	}

	// With the breaker open, healthy-site jobs submitted through the same
	// manager complete promptly: attempts at the dead site fast-fail
	// instead of blocking the loop for the full timeout ladder.
	start := time.Now()
	var ids []string
	for i := 0; i < 4; i++ {
		id, err := agent.Submit(SubmitRequest{
			Owner: "u", Executable: gram.Program("task"), Args: []string{"20ms"},
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		waitAgentState(t, agent, id, Completed)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("healthy jobs took %v behind a dead site; breaker did not isolate it", elapsed)
	}

	// The dead-site job is still waiting (not failed, not held) ...
	if info, _ := agent.Status(deadID); info.State.Terminal() || info.State == Held {
		t.Fatalf("dead-site job reached %v while the site was down", info.State)
	}
	// ... and completes once the site heals: the half-open probe readmits.
	dead.Heal()
	info := waitAgentState(t, agent, deadID, Completed)
	if info.Resubmits != 0 {
		t.Fatalf("dead-site job was resubmitted %d times; expected plain submission retries", info.Resubmits)
	}
	if got := runs.Load(); got != 5 {
		t.Fatalf("programs ran %d times, want 5", got)
	}
}

// TestRecoveryReconnectsAcrossPartition: the agent restarts while the site
// is unreachable, the partition heals, and the recovered agent RECONNECTS
// to the still-running (by now finished) job instead of resubmitting —
// exactly-once across the combination of §4.2 failure types 3 and 4.
func TestRecoveryReconnectsAcrossPartition(t *testing.T) {
	runs := &atomic.Int64{}
	site := newSite(t, "s", runs, t.TempDir(), "")
	defer site.Close()
	dir := t.TempDir()
	a1, err := NewAgent(AgentConfig{
		StateDir: dir,
		Selector: StaticSelector(site.GatekeeperAddr()),
		Probe:    ProbeOptions{Interval: 40 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	id, err := a1.Submit(SubmitRequest{
		Owner: "u", Executable: gram.Program("task"), Args: []string{"300ms"},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitAgentState(t, a1, id, Running)
	site.Partition()
	a1.Close() // CRASH while the site is unreachable

	a2, err := NewAgent(AgentConfig{
		StateDir: dir,
		Selector: StaticSelector(site.GatekeeperAddr()),
		Probe:    ProbeOptions{Interval: 40 * time.Millisecond},
		// Short breaker delays so the post-heal reconnect probe is not
		// pushed out by the failures accumulated during the partition.
		Breaker: faultclass.BreakerConfig{
			Threshold: 3,
			BaseDelay: 50 * time.Millisecond,
			MaxDelay:  400 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()

	// The recovered agent marks the job disconnected while the partition
	// lasts (it must not fail or resubmit it).
	deadline := time.Now().Add(3 * time.Second)
	for {
		info, err := a2.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.Disconnected {
			break
		}
		if info.State.Terminal() {
			t.Fatalf("job went %v during the partition", info.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("recovered agent never noticed the partition")
		}
		time.Sleep(10 * time.Millisecond)
	}

	site.Heal()
	info := waitAgentState(t, a2, id, Completed)
	if info.Resubmits != 0 {
		t.Fatalf("job was resubmitted %d times; recovery should reconnect, not resubmit", info.Resubmits)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("program ran %d times across restart+partition, want exactly once", got)
	}
}

// TestMigrationCancelRetriedUntilAcked: when the cancel of the old queued
// copy is lost (the old JobManager silently drops jm.cancel), the agent
// must keep a tombstone and retry from the probe loop until the site
// acknowledges — otherwise the old copy could run later and the job would
// execute twice.
func TestMigrationCancelRetriedUntilAcked(t *testing.T) {
	runs := &atomic.Int64{}
	dropCancels := &atomic.Bool{}
	dropCancels.Store(true)
	jmFaults := &wire.Faults{}
	jmFaults.DropRequest = func(method string) bool {
		return method == "jm.cancel" && dropCancels.Load()
	}

	// Busy site: one CPU held by a hog we can release later, so the old
	// copy stays queued — and would run if its cancel never landed.
	release := make(chan struct{})
	cluster, err := lrm.NewCluster(lrm.Config{Name: "busy", Cpus: 1})
	if err != nil {
		t.Fatal(err)
	}
	cluster.Submit(lrm.Job{ID: "hog", Owner: "other", Run: func(ctx context.Context) error {
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}}, 0)
	busy, err := gram.NewSite(gram.SiteConfig{
		Name:             "busy",
		Cluster:          cluster,
		Runtime:          buildRuntime(runs),
		StateDir:         t.TempDir(),
		JobManagerFaults: jmFaults,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer busy.Close()
	free := newSite(t, "free", runs, t.TempDir(), "")
	defer free.Close()

	sel := &switchSelector{busy: busy.GatekeeperAddr(), free: free.GatekeeperAddr()}
	agent, err := NewAgent(AgentConfig{
		StateDir: t.TempDir(),
		Selector: sel,
		Probe:    ProbeOptions{Interval: 30 * time.Millisecond},
		Retry:    RetryOptions{MigrateAfter: 120 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	id, err := agent.Submit(SubmitRequest{
		Owner: "u", Executable: gram.Program("task"), Args: []string{"20ms"},
	})
	if err != nil {
		t.Fatal(err)
	}

	// The job migrates and completes at the free site, but the cancel of
	// the old copy keeps being dropped: a tombstone must be pending.
	info := waitAgentState(t, agent, id, Completed)
	if info.Migrations < 1 {
		t.Fatalf("migrations = %d, want >= 1", info.Migrations)
	}
	if len(info.CancelPending) == 0 {
		t.Fatalf("no cancel tombstone recorded while cancels are dropped: %+v", info)
	}
	// The manager must not retire with an unacknowledged cancel.
	time.Sleep(100 * time.Millisecond)
	if n := agent.ActiveGridManagers(); n != 1 {
		t.Fatalf("manager retired (%d active) with a cancel still pending", n)
	}

	// Let cancels through: the probe loop retries and clears the tombstone.
	dropCancels.Store(false)
	deadline := time.Now().Add(8 * time.Second)
	for {
		info, _ = agent.Status(id)
		if len(info.CancelPending) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancel tombstone never cleared: %+v\nlog:\n%s", info.CancelPending, fmt2str(info.Log))
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !strings.Contains(fmt2str(info.Log), "CANCEL_ACKED") {
		t.Fatalf("no CANCEL_ACKED event in log:\n%s", fmt2str(info.Log))
	}

	// Free the busy site's CPU: a surviving old copy would now run. It
	// must not — the acknowledged cancel removed it from the queue.
	close(release)
	time.Sleep(300 * time.Millisecond)
	if got := runs.Load(); got != 1 {
		t.Fatalf("job ran %d times, want exactly once (old copy executed after migration)", got)
	}
}

// TestSubmitRetriesAreCapped: a site that always refuses submissions must
// not be retried forever — after MaxSubmitRetries the job is held with a
// reason and the owner is notified.
func TestSubmitRetriesAreCapped(t *testing.T) {
	runs := &atomic.Int64{}
	site := newSite(t, "s", runs, t.TempDir(), "")
	addr := site.GatekeeperAddr()
	site.Close() // nothing listens: every submission attempt fails

	agent, err := NewAgent(AgentConfig{
		StateDir: t.TempDir(),
		Selector: StaticSelector(addr),
		Probe:    ProbeOptions{Interval: 20 * time.Millisecond},
		Retry:    RetryOptions{MaxSubmitRetries: 3},
		// Disable breaker fast-fails for determinism: every attempt
		// reaches the network and burns retry budget.
		Breaker: faultclass.BreakerConfig{Threshold: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	id, err := agent.Submit(SubmitRequest{
		Owner: "u", Executable: gram.Program("task"),
	})
	if err != nil {
		t.Fatal(err)
	}
	info := waitAgentState(t, agent, id, Held)
	if info.SubmitRetries != 3 {
		t.Fatalf("SubmitRetries = %d, want 3", info.SubmitRetries)
	}
	if !strings.Contains(info.HoldReason, "submission failed 3 times") {
		t.Fatalf("hold reason = %q", info.HoldReason)
	}
	if msgs := agent.Mailbox().Messages("u"); len(msgs) != 1 || !strings.Contains(msgs[0].Subject, "held") {
		t.Fatalf("mailbox = %+v", msgs)
	}
	// Release resets the budget: the job is retryable again by hand.
	if err := agent.Release(id); err != nil {
		t.Fatal(err)
	}
	if info, _ := agent.Status(id); info.SubmitRetries != 0 {
		t.Fatalf("SubmitRetries = %d after release, want 0", info.SubmitRetries)
	}
	agent.Remove(id)
}
