package condorg

import (
	"time"

	"condorg/internal/faultclass"
	"condorg/internal/gram"
	"condorg/internal/obs"
	"condorg/internal/wire"
)

// Batched task bodies. The per-site pipelines coalesce submits, probes,
// and cancel tombstones bound for the same gatekeeper into single wire
// frames (gram batch verbs); each body here fans per-entry results back
// through exactly the same paths the per-job bodies use — applyRemoteStatus,
// maybeResubmit, holdJob, submitFailed — so batching changes how many
// frames cross the wire, never what happens to a job.

// submitBatch runs the two-phase commit for several jobs bound to the
// same gatekeeper as two frames: one gram.batch-submit for phase one,
// then — after journaling every issued contact — one gram.batch-commit.
// Per-entry failures flow through submitFailed individually; a commit
// failure sends that entry to recovery, same as the per-job path.
func (gm *GridManager) submitBatch(recs []*jobRecord) {
	type member struct {
		rec   *jobRecord
		entry gram.BatchSubmitEntry
	}
	var ms []member
	site := ""
	for _, rec := range recs {
		rec.mu.Lock()
		if rec.State.Terminal() || rec.State == Held {
			rec.mu.Unlock()
			continue
		}
		site = rec.Site
		ms = append(ms, member{rec: rec, entry: gram.BatchSubmitEntry{
			Spec: rec.Spec,
			Opts: gram.SubmitOptions{
				SubmissionID: rec.SubmissionID,
				Callback:     gm.agent.cbSrv.Addr(),
				Delegate:     gm.agent.cfg.Delegate,
			},
		}})
		rec.mu.Unlock()
	}
	if len(ms) == 0 {
		return
	}
	if len(ms) == 1 {
		gm.submit(ms[0].rec)
		return
	}
	start := time.Now()
	entries := make([]gram.BatchSubmitEntry, len(ms))
	for i, m := range ms {
		entries[i] = m.entry
	}
	results, err := gm.gram.BatchSubmit(site, entries)
	if err != nil {
		if wire.IsNoSuchMethod(err) {
			// Legacy site: run each job through the per-job two-phase
			// commit (the client has remembered; future dispatch passes
			// skip batching for this address entirely).
			for _, m := range ms {
				gm.submit(m.rec)
			}
			return
		}
		for _, m := range ms {
			gm.submitFailed(m.rec, site, err)
		}
		return
	}
	type committed struct {
		rec     *jobRecord
		contact gram.JobContact
	}
	var coms []committed
	for i, r := range results {
		m := ms[i]
		if r.Err != nil {
			gm.submitFailed(m.rec, site, r.Err)
			continue
		}
		contact := r.Contact
		m.rec.mu.Lock()
		m.rec.Contact = contact
		gm.agent.traceLocked(m.rec, obs.PhaseGridSubmit, "", "site issued "+contact.JobID)
		m.rec.mu.Unlock()
		gm.agent.mu.Lock()
		gm.agent.bySiteJob[contact.JobID] = m.rec.ID
		gm.agent.mu.Unlock()
		// Journal the contact BEFORE committing: recovery after a crash
		// here reconnects rather than resubmits.
		gm.agent.persist(m.rec)
		coms = append(coms, committed{rec: m.rec, contact: contact})
	}
	if len(coms) == 0 {
		return
	}
	ids := make([]string, len(coms))
	for i, cm := range coms {
		ids[i] = cm.contact.JobID
	}
	cerrs, err := gm.gram.BatchCommit(site, ids)
	if err != nil {
		// The whole commit frame was lost (or the site is legacy): every
		// journaled contact goes to recovery, where the idempotent
		// per-job Commit settles it — same as the single-job
		// COMMIT_RETRY path.
		for _, cm := range coms {
			gm.commitRetry(cm.rec, err)
		}
		return
	}
	elapsed := time.Since(start).Seconds()
	for i, cm := range coms {
		if cerrs[i] != nil {
			gm.commitRetry(cm.rec, cerrs[i])
			continue
		}
		gm.agent.obs.Histogram("gm_two_phase_seconds").Observe(elapsed)
		gm.agent.obs.Counter(obs.Key("gm_site_submits_total", "site", site)).Inc()
		gm.agent.trace(cm.rec, obs.PhaseCommit, "", "two-phase commit complete")
		gm.agent.log(cm.rec, "GRID_SUBMIT", "job submitted to %s as %s", site, cm.contact.JobID)
	}
}

// commitRetry records a failed phase two and parks the job in recovery,
// where the idempotent Commit is replayed. A job that is already terminal
// needs no re-verification — the commit evidently reached the site and
// only the response was lost (the callback outran the retry ladder), so
// parking it would just append lifecycle noise after completion.
func (gm *GridManager) commitRetry(rec *jobRecord, err error) {
	rec.mu.Lock()
	if rec.State.Terminal() {
		rec.mu.Unlock()
		return
	}
	gm.agent.traceLocked(rec, obs.PhaseCommitRetry, faultclass.ClassOf(err).String(), err.Error())
	rec.mu.Unlock()
	gm.agent.log(rec, "COMMIT_RETRY", "commit failed (%v); will re-verify", err)
	gm.mu.Lock()
	gm.recovery = append(gm.recovery, rec)
	gm.mu.Unlock()
}

// probeBatch is the coalesced §4.2 failure detector (a taskBatchProbe
// body): one jm.batch-status frame to the gatekeeper covers every member,
// and per-entry results fan back through applyRemoteStatus exactly as a
// per-job probe would. A member whose JobManager died (JMAlive=false)
// skips the ping ladder — the same frame already proved the gatekeeper
// alive — and goes straight to the restart flow.
func (gm *GridManager) probeBatch(recs []*jobRecord) {
	type member struct {
		rec     *jobRecord
		contact gram.JobContact
	}
	var ms []member
	for _, rec := range recs {
		rec.mu.Lock()
		ok := !rec.State.Terminal() && rec.State != Held && rec.Contact.JobID != ""
		contact := rec.Contact
		rec.mu.Unlock()
		if ok {
			ms = append(ms, member{rec: rec, contact: contact})
		}
	}
	if len(ms) == 0 {
		return
	}
	gkAddr := ms[0].contact.GatekeeperAddr
	ids := make([]string, len(ms))
	for i, m := range ms {
		ids[i] = m.contact.JobID
	}
	results, err := gm.gram.BatchStatus(gkAddr, ids)
	if err != nil {
		if wire.IsNoSuchMethod(err) {
			// Legacy site: fall back to per-job probes this tick; the
			// client has remembered for future dispatch passes.
			for _, m := range ms {
				gm.probeJob(m.rec)
			}
			return
		}
		// Transport failure: one gatekeeper ping decides for the whole
		// batch — the members share the machine, so N individual probe
		// ladders would reach the same verdict N times slower.
		if gkErr := gm.gram.PingGatekeeper(gkAddr); gkErr != nil {
			for _, m := range ms {
				gm.markDisconnected(m.rec, gkAddr)
			}
			return
		}
		// Gatekeeper answers but the batch frame failed; per-job probes
		// sort out which members are affected.
		for _, m := range ms {
			gm.probeJob(m.rec)
		}
		return
	}
	gm.agent.obs.Counter("gm_probe_coalesced_total").Add(int64(len(ms)))
	for i, r := range results {
		m := ms[i]
		if r.Err != nil {
			switch faultclass.ClassOf(r.Err) {
			case faultclass.SiteLost:
				// The site is alive but has no record of the job — it
				// can never finish there. Same verdict as a failed
				// jm-restart on the per-job ladder.
				gm.agent.log(m.rec, "JM_RESTART_FAILED", "site no longer knows the job: %v", r.Err)
				gm.maybeResubmit(m.rec, gram.StatusInfo{
					State: gram.StateFailed,
					Error: r.Err.Error(),
					Fault: faultclass.SiteLost,
				})
			case faultclass.AuthExpired:
				gm.holdJob(m.rec, "credential rejected by site: "+r.Err.Error())
			}
			// Other per-entry errors: leave the job for the next tick.
			continue
		}
		gm.agent.applyRemoteStatus(m.rec, r.Status)
		gm.maybeResubmit(m.rec, r.Status)
		gm.maybeMigrate(m.rec, r.Status)
		if !r.JMAlive && !r.Status.State.Terminal() {
			gm.restartJobManagerFor(m.rec, m.contact)
		}
	}
}

// cancelBatch retries several cancel tombstones at one site in a single
// jm.batch-cancel frame (a taskBatchCancel body). Any remote per-entry
// answer other than AuthExpired acknowledges that tombstone, with the
// same reasoning as cancelAcknowledged.
func (gm *GridManager) cancelBatch(pairs []cancelPair) {
	gkAddr := pairs[0].contact.GatekeeperAddr
	ids := make([]string, len(pairs))
	for i, p := range pairs {
		ids[i] = p.contact.JobID
	}
	results, err := gm.gram.BatchCancel(gkAddr, ids)
	if err != nil {
		if wire.IsNoSuchMethod(err) {
			for _, p := range pairs {
				gm.cancelOldCopy(p.rec, p.contact)
			}
		}
		// Transport failure: the tombstones stay; the dispatcher retries
		// them next tick.
		return
	}
	for i, r := range results {
		p := pairs[i]
		if r != nil && faultclass.ClassOf(r) == faultclass.AuthExpired {
			continue // the cancel must land for real; keep the tombstone
		}
		gm.agent.trace(p.rec, obs.PhaseCancelAck, "", "old copy "+p.contact.JobID+" confirmed cancelled")
		gm.agent.ackCancelTombstone(p.rec, p.contact)
		gm.agent.log(p.rec, "CANCEL_ACKED", "old copy %s confirmed cancelled", p.contact.JobID)
	}
}
