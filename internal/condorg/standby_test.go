package condorg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"condorg/internal/faultclass"
	"condorg/internal/gram"
	"condorg/internal/journal"
)

// TestStandbyFailover is the HA happy path end to end: a standby tails the
// primary's journal stream, the primary dies mid-flight, the lease expires,
// and the promoted agent finishes every job without a single re-execution.
func TestStandbyFailover(t *testing.T) {
	runs := &atomic.Int64{}
	var gks []string
	for i := 0; i < 2; i++ {
		site := newSite(t, fmt.Sprintf("ha-site%d", i), runs, t.TempDir(), "")
		t.Cleanup(site.Close)
		gks = append(gks, site.GatekeeperAddr())
	}
	primary, err := NewAgent(AgentConfig{
		StateDir: t.TempDir(),
		Selector: &RoundRobinSelector{Sites: gks},
		Probe:    ProbeOptions{Interval: 40 * time.Millisecond},
		HA:       HAOptions{Enabled: true, SyncTimeout: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewControlServer(primary)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := NewStandby(StandbyConfig{
		Primary:  ctl.Addr(),
		StateDir: t.TempDir(),
		Poll:     100 * time.Millisecond,
		LeaseTTL: 600 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	const jobs = 6
	var ids []string
	for i := 0; i < jobs; i++ {
		id, err := primary.Submit(SubmitRequest{
			Owner:      "ha-user",
			Executable: gram.Program("task"),
			Args:       []string{"250ms", fmt.Sprintf("job%d", i)},
			Stdin:      []byte("replicate me"),
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}

	// The standby must catch up to (at least) the post-submit chain head,
	// at which point the primary's sync-replication wait is armed.
	want := primary.store.ChainHead().Seq
	deadline := time.Now().Add(5 * time.Second)
	for sb.Head().Seq < want {
		if time.Now().After(deadline) {
			t.Fatalf("standby stuck at %d, want >= %d (lastErr=%v)", sb.Head().Seq, want, sb.LastErr())
		}
		time.Sleep(10 * time.Millisecond)
	}
	cli := NewControlClient(ctl.Addr())
	health, err := cli.HealthFull()
	cli.Close()
	if err != nil || health.HA == nil {
		t.Fatalf("health lacks HA status: %+v err=%v", health, err)
	}
	if !health.HA.Enabled || health.HA.FollowerAcked == 0 {
		t.Fatalf("HA status not tracking the follower: %+v", health.HA)
	}

	// Primary dies with jobs still executing at the sites.
	ctl.Close()
	primary.Close()

	select {
	case <-sb.TakeoverCh():
	case <-time.After(10 * time.Second):
		t.Fatal("standby never declared the primary dead")
	}
	promoted, err := sb.Takeover(AgentConfig{
		Selector: &RoundRobinSelector{Sites: gks},
		Probe:    ProbeOptions{Interval: 40 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("takeover: %v", err)
	}
	defer promoted.Close()

	for _, id := range ids {
		info := waitAgentState(t, promoted, id, Completed)
		if !info.ExitOK {
			t.Fatalf("job %s finished without ExitOK", id)
		}
	}
	// Exactly-once across the failover: the sites deduplicated the
	// promoted agent's resubmissions by SubmissionID.
	if got := runs.Load(); got != jobs {
		t.Fatalf("task executed %d times for %d jobs", got, jobs)
	}
}

// TestStandbyTracksLivePrimary: without a failure the standby just mirrors —
// including deletes of replicated payloads as jobs finish.
func TestStandbyTracksLivePrimary(t *testing.T) {
	runs := &atomic.Int64{}
	site := newSite(t, "track-site", runs, t.TempDir(), "")
	t.Cleanup(site.Close)
	primary, err := NewAgent(AgentConfig{
		StateDir: t.TempDir(),
		Selector: &RoundRobinSelector{Sites: []string{site.GatekeeperAddr()}},
		Probe:    ProbeOptions{Interval: 40 * time.Millisecond},
		HA:       HAOptions{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	ctl, err := NewControlServer(primary)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	sb, err := NewStandby(StandbyConfig{
		Primary:  ctl.Addr(),
		StateDir: t.TempDir(),
		Poll:     100 * time.Millisecond,
		LeaseTTL: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()

	id, err := primary.Submit(SubmitRequest{
		Owner: "u", Executable: gram.Program("task"), Args: []string{"20ms"},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitAgentState(t, primary, id, Completed)

	deadline := time.Now().Add(5 * time.Second)
	for sb.Head() != primary.store.ChainHead() {
		if time.Now().After(deadline) {
			t.Fatalf("standby head %+v never matched primary %+v (lastErr=%v)",
				sb.Head(), primary.store.ChainHead(), sb.LastErr())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if sb.LastErr() != nil {
		t.Fatalf("replication errored: %v", sb.LastErr())
	}
}

// TestAgentRefusesCorruptQueue: mid-chain damage in the persisted queue
// must surface from NewAgent as a typed, Permanent *journal.CorruptionError
// — never a silent partial recovery.
func TestAgentRefusesCorruptQueue(t *testing.T) {
	dir := t.TempDir()
	a, err := NewAgent(AgentConfig{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	site := newSite(t, "corrupt-site", &atomic.Int64{}, t.TempDir(), "")
	t.Cleanup(site.Close)
	for i := 0; i < 4; i++ {
		if _, err := a.Submit(SubmitRequest{
			Owner: "u", Executable: gram.Program("task"), Site: site.GatekeeperAddr(),
		}); err != nil {
			t.Fatal(err)
		}
	}
	a.Close()

	// Flip one bit in the first journal record (several intact follow).
	// Jobs live in owner "u"'s journal partition under queue/parts.
	var jpath string
	for _, pdir := range journal.PartitionDirs(filepath.Join(dir, "queue", "parts")) {
		p := filepath.Join(pdir, "journal.log")
		if st, err := os.Stat(p); err == nil && st.Size() > 0 {
			jpath = p
			break
		}
	}
	if jpath == "" {
		t.Fatal("no non-empty partition journal found")
	}
	raw, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	size := binary.LittleEndian.Uint32(raw[0:4])
	if int(8+size) >= len(raw) {
		t.Fatalf("journal too short to corrupt mid-file (%d bytes)", len(raw))
	}
	raw[8+size/2] ^= 0x10
	if err := os.WriteFile(jpath, raw, 0o600); err != nil {
		t.Fatal(err)
	}

	_, err = NewAgent(AgentConfig{StateDir: dir})
	var ce *journal.CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("NewAgent on corrupt queue = %v, want *journal.CorruptionError", err)
	}
	if faultclass.ClassOf(err) != faultclass.Permanent {
		t.Fatalf("corruption classified %v, want Permanent", faultclass.ClassOf(err))
	}
	if _, err := os.Stat(jpath + ".quarantine"); err != nil {
		t.Fatalf("corrupt queue segment not quarantined: %v", err)
	}
}
