package condorg

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"condorg/internal/faultclass"
	"condorg/internal/gram"
	"condorg/internal/wire"
)

// methodCounter counts dispatched RPCs per method through the wire fault
// Delay hook (zero delay, so it observes without perturbing).
type methodCounter struct {
	mu     sync.Mutex
	counts map[string]int
}

func newMethodCounter(faults *wire.Faults) *methodCounter {
	mc := &methodCounter{counts: map[string]int{}}
	faults.SetDelay(func(method string) time.Duration {
		mc.mu.Lock()
		mc.counts[method]++
		mc.mu.Unlock()
		return 0
	})
	return mc
}

func (mc *methodCounter) get(method string) int {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return mc.counts[method]
}

func (mc *methodCounter) reset() {
	mc.mu.Lock()
	mc.counts = map[string]int{}
	mc.mu.Unlock()
}

// The acceptance criterion for batched probing: N jobs at one site cost
// at most ceil(N/Batch.MaxJobs) status RPCs per probe tick, all addressed
// to the gatekeeper, with ZERO per-JobManager jm.status traffic.
func TestBatchedProbeSweepCoalescesRPCs(t *testing.T) {
	runs := &atomic.Int64{}
	faults := &wire.Faults{}
	site := newFaultySite(t, "wisc", runs, faults) // gk + jm share the hook set
	mc := newMethodCounter(faults)

	const interval = 30 * time.Millisecond
	agent, err := NewAgent(AgentConfig{
		StateDir: t.TempDir(),
		Selector: StaticSelector(site.GatekeeperAddr()),
		Probe:    ProbeOptions{Interval: interval},
		Batch:    BatchOptions{MaxJobs: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(agent.Close)

	const n = 12
	ids := make([]string, n)
	for i := range ids {
		id, err := agent.Submit(SubmitRequest{
			Owner: "u", Executable: gram.Program("task"), Args: []string{"10s"},
		})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	// Wait until every job holds a site contact, so each is probe-eligible.
	deadline := time.Now().Add(8 * time.Second)
	for {
		have := 0
		for _, id := range ids {
			info, err := agent.Status(id)
			if err != nil {
				t.Fatal(err)
			}
			if info.Contact.JobID != "" {
				have++
			}
		}
		if have == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d jobs obtained contacts", have, n)
		}
		time.Sleep(10 * time.Millisecond)
	}

	mc.reset()
	const window = 12 * interval
	time.Sleep(window)

	perJob := mc.get("jm.status")
	batched := mc.get("jm.batch-status")
	if perJob != 0 {
		t.Fatalf("probe sweep issued %d per-JobManager jm.status RPCs; want 0 (all batched)", perJob)
	}
	if batched == 0 {
		t.Fatal("no jm.batch-status traffic during the probe window")
	}
	// ceil(12/4) = 3 frames per tick; allow two ticks of scheduling slack.
	maxTicks := int(window/interval) + 2
	if limit := maxTicks * 3; batched > limit {
		t.Fatalf("probe window issued %d batch-status RPCs, want <= %d (%d ticks x 3 chunks)",
			batched, limit, maxTicks)
	}
}

// A burst of same-site submissions must coalesce into batch frames: the
// submit phase crosses the wire in strictly fewer frames than jobs.
func TestSubmitBurstCoalesces(t *testing.T) {
	runs := &atomic.Int64{}
	faults := &wire.Faults{}
	site := newFaultySite(t, "wisc", runs, faults)
	mc := newMethodCounter(faults)

	agent, err := NewAgent(AgentConfig{
		StateDir: t.TempDir(),
		Selector: StaticSelector(site.GatekeeperAddr()),
		Probe:    ProbeOptions{Interval: 40 * time.Millisecond},
		Batch:    BatchOptions{MaxJobs: 8, MaxDelay: 25 * time.Millisecond},
		Stage:    StageOptions{Disabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(agent.Close)

	const n = 12
	ids := make([]string, n)
	for i := range ids {
		id, err := agent.Submit(SubmitRequest{
			Owner: "u", Executable: gram.Program("task"), Args: []string{"5ms"},
		})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for _, id := range ids {
		waitAgentState(t, agent, id, Completed)
	}
	if runs.Load() != n {
		t.Fatalf("%d executions for %d jobs", runs.Load(), n)
	}
	singles := mc.get("gram.submit")
	batches := mc.get("gram.batch-submit")
	if batches == 0 {
		t.Fatalf("burst of %d jobs produced no batch-submit frames (%d singles)", n, singles)
	}
	if frames := singles + batches; frames >= n {
		t.Fatalf("submit phase used %d frames for %d jobs (%d single + %d batch) — no coalescing",
			frames, n, singles, batches)
	}
}

// A connection reset in the middle of a batch-submit response must settle
// exactly-once: the site already created the jobs, the client saw a
// transport error, and the retried batch must dedup on SubmissionID
// instead of running anything twice.
func TestMidBatchResetSettlesExactlyOnce(t *testing.T) {
	runs := &atomic.Int64{}
	faults := &wire.Faults{}
	site := newFaultySite(t, "wisc", runs, faults)
	var torn atomic.Bool
	faults.SetConn(nil, nil, func(method string) bool {
		// Tear exactly the first batch-submit response mid-frame.
		return method == "gram.batch-submit" && torn.CompareAndSwap(false, true)
	})

	agent, err := NewAgent(AgentConfig{
		StateDir: t.TempDir(),
		Selector: StaticSelector(site.GatekeeperAddr()),
		Probe:    ProbeOptions{Interval: 25 * time.Millisecond},
		Batch:    BatchOptions{MaxJobs: 8, MaxDelay: 25 * time.Millisecond},
		Stage:    StageOptions{Disabled: true},
		Breaker: faultclass.BreakerConfig{
			Threshold: 1000,
			BaseDelay: 10 * time.Millisecond,
			MaxDelay:  20 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(agent.Close)

	const n = 6
	ids := make([]string, n)
	for i := range ids {
		id, err := agent.Submit(SubmitRequest{
			Owner: "u", Executable: gram.Program("task"), Args: []string{"10ms"},
		})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for _, id := range ids {
		waitAgentState(t, agent, id, Completed)
	}
	if !torn.Load() {
		t.Fatal("schedule never tore a batch-submit frame; test proved nothing")
	}
	if runs.Load() != n {
		t.Fatalf("%d executions for %d jobs after a mid-batch reset — exactly-once violated", runs.Load(), n)
	}
}

// MaxJobs=1 must disable batching outright: the wire sees only the v1
// per-job verbs.
func TestBatchDisabledUsesPerJobVerbs(t *testing.T) {
	runs := &atomic.Int64{}
	faults := &wire.Faults{}
	site := newFaultySite(t, "wisc", runs, faults)
	mc := newMethodCounter(faults)

	agent, err := NewAgent(AgentConfig{
		StateDir: t.TempDir(),
		Selector: StaticSelector(site.GatekeeperAddr()),
		Probe:    ProbeOptions{Interval: 25 * time.Millisecond},
		Batch:    BatchOptions{MaxJobs: 1},
		Stage:    StageOptions{Disabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(agent.Close)

	for i := 0; i < 4; i++ {
		id, err := agent.Submit(SubmitRequest{
			Owner: "u", Executable: gram.Program("task"), Args: []string{"60ms"},
		})
		if err != nil {
			t.Fatal(err)
		}
		waitAgentState(t, agent, id, Completed)
	}
	for _, m := range []string{"gram.batch-submit", "gram.batch-commit", "jm.batch-status", "jm.batch-cancel"} {
		if c := mc.get(m); c != 0 {
			t.Fatalf("MaxJobs=1 still issued %d %s frames", c, m)
		}
	}
	if mc.get("gram.submit") != 4 {
		t.Fatalf("expected 4 per-job submits, got %d", mc.get("gram.submit"))
	}
}
