// Package condorg implements the computation management agent of §4 — the
// paper's primary contribution. The Agent is the personal-desktop Scheduler
// with a persistent job queue; it spawns one GridManager per user to
// submit, monitor, and recover jobs on remote Grid resources through GRAM,
// GASS, and GSI, while preserving "the look and feel of a local resource
// manager": submit, query, cancel, hold/release, user logs, and
// notification callbacks, with exactly-once execution guaranteed across
// the four failure types of §4.2.
package condorg

import (
	"fmt"
	"sync"
	"time"

	"condorg/internal/gram"
	"condorg/internal/obs"
)

// JobState is the queue state shown to the user (condor_q vocabulary).
type JobState int

const (
	// Idle: queued locally or at the remote site, not yet executing.
	Idle JobState = iota
	// Running: executing on a remote resource.
	Running
	// Completed: finished successfully.
	Completed
	// Failed: finished unsuccessfully (after exhausting resubmissions).
	Failed
	// Held: parked by the user or by the credential monitor; will not
	// run until released.
	Held
	// Removed: cancelled by the user.
	Removed
)

func (s JobState) String() string {
	switch s {
	case Idle:
		return "idle"
	case Running:
		return "running"
	case Completed:
		return "completed"
	case Failed:
		return "failed"
	case Held:
		return "held"
	case Removed:
		return "removed"
	}
	return "unknown"
}

// Terminal reports whether no further transitions can occur.
func (s JobState) Terminal() bool {
	return s == Completed || s == Failed || s == Removed
}

// ParseJobState parses a state name as printed by JobState.String.
func ParseJobState(s string) (JobState, error) {
	switch s {
	case "idle":
		return Idle, nil
	case "running":
		return Running, nil
	case "completed":
		return Completed, nil
	case "failed":
		return Failed, nil
	case "held":
		return Held, nil
	case "removed":
		return Removed, nil
	}
	return 0, fmt.Errorf("condorg: unknown job state %q", s)
}

// SubmitRequest describes a job handed to the agent.
type SubmitRequest struct {
	// Owner is the submitting user (one GridManager runs per owner).
	Owner string
	// Executable is the program blob staged to the site through GASS
	// (use gram.Program(name) for registered programs).
	Executable []byte
	// Args are program arguments.
	Args []string
	// Stdin, when non-nil, is staged as standard input.
	Stdin []byte
	// Site pins the job to one Gatekeeper address. Leave empty to let
	// the agent's Selector choose.
	Site string
	// Cpus, WallLimit, Estimate pass through to the site scheduler.
	Cpus      int
	WallLimit time.Duration
	Estimate  time.Duration
	// Env is the job environment.
	Env map[string]string
}

// LogEvent is one line of the job's user log — "a complete history of
// their jobs' execution" (§4.1).
type LogEvent struct {
	Time time.Time `json:"time"`
	Code string    `json:"code"` // SUBMIT, EXECUTE, TERMINATED, ...
	Text string    `json:"text"`
}

// JobInfo is the externally visible job record.
type JobInfo struct {
	ID           string   `json:"id"`
	Owner        string   `json:"owner"`
	State        JobState `json:"state"`
	Site         string   `json:"site"`
	HoldReason   string   `json:"hold_reason,omitempty"`
	Error        string   `json:"error,omitempty"`
	ExitOK       bool     `json:"exit_ok"`
	Resubmits    int      `json:"resubmits"`
	Disconnected bool     `json:"disconnected"` // waiting out a partition
	Migrations   int      `json:"migrations"`
	// SubmitRetries counts failed submission attempts (SUBMIT_RETRY in
	// the log) since the job was last enqueued; once it reaches
	// MaxSubmitRetries the job is held and the owner notified.
	SubmitRetries int `json:"submit_retries,omitempty"`
	// CancelPending lists old remote incarnations (from migration,
	// hold, or remove) whose cancel has not yet been acknowledged by
	// the site. The GridManager retries these until each old copy is
	// provably unable to run — closing the double-execution window a
	// partition would otherwise open.
	CancelPending []gram.JobContact `json:"cancel_pending,omitempty"`
	SubmittedAt   time.Time         `json:"submitted_at"`
	FinishedAt    time.Time         `json:"finished_at,omitempty"`
	PendingSince  time.Time         `json:"pending_since,omitempty"`
	Contact       gram.JobContact   `json:"contact"`
	// Stage is the executable pre-staging progress for the job's current
	// remote incarnation. Journaled with the record, so an agent crash
	// mid-transfer resumes from the last acked offset instead of byte zero.
	Stage StageInfo  `json:"stage,omitempty"`
	Log   []LogEvent `json:"log"`
}

// StageInfo tracks chunked executable pre-staging to the job's site.
type StageInfo struct {
	// Hash is the executable's sha256 content address (also in
	// Spec.ExecutableHash); empty when pre-staging is disabled.
	Hash string `json:"hash,omitempty"`
	// Total is the executable size in bytes.
	Total int64 `json:"total,omitempty"`
	// Offset is the site-acked contiguous prefix already transferred.
	Offset int64 `json:"offset,omitempty"`
	// Attempts counts staging tasks that failed before pushing the whole
	// file; once it reaches the budget, pre-staging is abandoned and the
	// job proceeds to submit (the site pulls the executable itself).
	Attempts int `json:"attempts,omitempty"`
	// Done means the site has the verified bytes (pushed or cache hit).
	Done bool `json:"done,omitempty"`
	// CacheHit records that the site already held the bytes, so no
	// transfer happened for this incarnation.
	CacheHit bool `json:"cache_hit,omitempty"`
}

// jobRecord is the internal, persisted job state.
type jobRecord struct {
	mu sync.Mutex
	JobInfo
	SubmissionID string       `json:"submission_id"`
	Spec         gram.JobSpec `json:"spec"`
	// remote mirrors the last GRAM state seen, to detect transitions.
	Remote gram.JobState `json:"remote"`
	// Trace is the job's lifecycle timeline, persisted with the record
	// (guarded by mu like the rest; the Timeline itself is not locked).
	Trace obs.Timeline `json:"trace"`

	// gen counts observable state changes; waitCh (lazily created) is
	// closed at each one so waiters block on events instead of polling.
	gen    uint64
	waitCh chan struct{}

	// opBusy marks a pipeline task (submit/recover/probe) in flight for
	// this job, so per-site workers never run two operations on the same
	// job concurrently. Guarded by mu; cancels of OLD incarnations are
	// tracked separately (they touch disjoint remote state).
	opBusy bool
	// credRefresh marks an in-band credential re-delegation owed to this
	// job's live JobManager; credRefreshTries counts attempts that reached
	// the network and failed. Guarded by mu but deliberately not persisted:
	// after an agent crash the credential monitor's next scan re-issues the
	// obligation, so journaling it would only add write amplification.
	credRefresh      bool
	credRefreshTries int
	// persistMu serializes snapshot+journal-write pairs for this record:
	// without it two workers could persist the same record with the older
	// snapshot landing after the newer one. Taken around mu, never inside.
	persistMu sync.Mutex
}

func (j *jobRecord) snapshot() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshotLocked()
}

func (j *jobRecord) snapshotLocked() JobInfo {
	info := j.JobInfo
	info.Log = append([]LogEvent(nil), j.Log...)
	return info
}

// bumpLocked marks an observable state change: the generation advances and
// every goroutine blocked on the current wait channel wakes. Caller holds mu.
func (j *jobRecord) bumpLocked() {
	j.gen++
	if j.waitCh != nil {
		close(j.waitCh)
		j.waitCh = nil
	}
}

// changedLocked returns a channel that closes at the next state change.
// Caller holds mu.
func (j *jobRecord) changedLocked() <-chan struct{} {
	if j.waitCh == nil {
		j.waitCh = make(chan struct{})
	}
	return j.waitCh
}

// stateBroadcast is an agent-wide, generation-counted change signal: any
// job-state change closes the current channel. Its mutex is a leaf — safe
// to take under any other agent lock.
type stateBroadcast struct {
	mu  sync.Mutex
	gen uint64
	ch  chan struct{}
}

// C returns a channel that closes at the next change.
func (b *stateBroadcast) C() <-chan struct{} {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.ch == nil {
		b.ch = make(chan struct{})
	}
	return b.ch
}

// Notify wakes every waiter and advances the generation.
func (b *stateBroadcast) Notify() {
	b.mu.Lock()
	b.gen++
	if b.ch != nil {
		close(b.ch)
		b.ch = nil
	}
	b.mu.Unlock()
}

// Gen returns the current change generation.
func (b *stateBroadcast) Gen() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.gen
}

// Notifier delivers the user-facing notifications of §4.3 (the paper uses
// e-mail; the agent only needs the abstraction).
type Notifier interface {
	Notify(user, subject, body string)
}

// Mailbox is an in-memory Notifier for tests, examples, and benches.
type Mailbox struct {
	mu   sync.Mutex
	msgs []Mail
}

// Mail is one delivered notification.
type Mail struct {
	User    string
	Subject string
	Body    string
	At      time.Time
}

// NewMailbox creates an empty mailbox.
func NewMailbox() *Mailbox { return &Mailbox{} }

// Notify implements Notifier.
func (m *Mailbox) Notify(user, subject, body string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.msgs = append(m.msgs, Mail{User: user, Subject: subject, Body: body, At: time.Now()})
}

// Messages returns all mail for user ("" = everyone).
func (m *Mailbox) Messages(user string) []Mail {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Mail
	for _, msg := range m.msgs {
		if user == "" || msg.User == user {
			out = append(out, msg)
		}
	}
	return out
}

// Selector chooses an execution site for a job — the pluggable resource
// brokering of §4.4. The broker package provides the paper's strategies.
type Selector interface {
	// Select returns the Gatekeeper address for the request.
	Select(req SubmitRequest) (string, error)
}

// HealthView answers "is this gatekeeper address currently worth
// submitting to?" — false for breaker-open sites. Selectors consult it
// so a dead site in the rotation stops receiving jobs whose submissions
// are guaranteed to fail.
type HealthView func(addr string) bool

// ErrAllSitesUnhealthy reports that every candidate site a selector
// considered is breaker-open. Callers usually fall back to a health-blind
// choice: the job queues and the breaker paces the attempts.
var ErrAllSitesUnhealthy = fmt.Errorf("all candidate sites are breaker-open")

// HealthAwareSelector is an optional Selector extension: SelectHealthy
// skips sites the view reports unhealthy, returning ErrAllSitesUnhealthy
// (wrapped) when no candidate passes.
type HealthAwareSelector interface {
	Selector
	SelectHealthy(req SubmitRequest, healthy HealthView) (string, error)
}

// selectSite routes through SelectHealthy when the selector supports it
// and a view is available, falling back to plain Select.
func selectSite(sel Selector, req SubmitRequest, healthy HealthView) (string, error) {
	if ha, ok := sel.(HealthAwareSelector); ok && healthy != nil {
		return ha.SelectHealthy(req, healthy)
	}
	return sel.Select(req)
}

// StaticSelector always routes to one site (the paper's "user-supplied
// list of GRAM servers" starting point, with a list of one).
type StaticSelector string

// Select implements Selector.
func (s StaticSelector) Select(SubmitRequest) (string, error) {
	if s == "" {
		return "", fmt.Errorf("condorg: no site configured")
	}
	return string(s), nil
}

// RoundRobinSelector rotates through a fixed site list.
type RoundRobinSelector struct {
	mu    sync.Mutex
	Sites []string
	next  int
}

// Select implements Selector.
func (r *RoundRobinSelector) Select(req SubmitRequest) (string, error) {
	return r.SelectHealthy(req, nil)
}

// SelectHealthy implements HealthAwareSelector: the rotation advances
// past breaker-open sites, wrapping ErrAllSitesUnhealthy when a full turn
// finds no healthy candidate.
func (r *RoundRobinSelector) SelectHealthy(_ SubmitRequest, healthy HealthView) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.Sites) == 0 {
		return "", fmt.Errorf("condorg: empty site list")
	}
	for i := 0; i < len(r.Sites); i++ {
		site := r.Sites[r.next%len(r.Sites)]
		r.next++
		if healthy == nil || healthy(site) {
			return site, nil
		}
	}
	return "", fmt.Errorf("condorg: %w (%d candidates)", ErrAllSitesUnhealthy, len(r.Sites))
}
