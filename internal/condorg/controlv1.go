package condorg

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"condorg/internal/faultclass"
	"condorg/internal/gram"
	"condorg/internal/obs"
)

// Control protocol v1: every command travels through one wire method
// ("ctl.v1") inside a versioned envelope, and every application failure
// comes back as a *CtlError carrying a stable machine code plus the
// faultclass taxonomy — so a CLI or script can decide to retry
// (Transient), resubmit elsewhere (SiteLost), or give up (Permanent)
// without parsing error prose.
//
// Tenancy: on an authenticated endpoint (ControlConfig.Anchor set) the
// owner of every op is the wire session's authenticated subject mapped
// through ControlConfig.OwnerOf — request bodies never confer identity.
// Every op is owner-scoped by construction; job lookups outside the
// caller's scope answer no-such-job (never confirming the ID exists),
// and agent-wide ops are reserved for ControlConfig.Admins.

// CtlVersion is the control envelope version this build speaks.
const CtlVersion = 1

// CtlRequest is the v1 request envelope.
type CtlRequest struct {
	Ver  int             `json:"ver"`
	Op   string          `json:"op"`
	Body json.RawMessage `json:"body,omitempty"`
}

// CtlResponse is the v1 response envelope. Exactly one of Err and Body
// is meaningful: a nil Err means the op succeeded and Body holds its
// result.
type CtlResponse struct {
	Err  *CtlError       `json:"err,omitempty"`
	Body json.RawMessage `json:"body,omitempty"`
}

// Stable machine codes carried by CtlError. These are API: they never
// change meaning across releases, so exit-code and retry policy can key
// off them.
const (
	CtlCodeBadRequest         = "bad-request"         // malformed or invalid request body
	CtlCodeNoSuchJob          = "no-such-job"         // unknown job ID (or outside the caller's owner scope)
	CtlCodeBadState           = "bad-state"           // op not valid in the job's current state
	CtlCodeSubmitFailed       = "submit-failed"       // the agent rejected the submission
	CtlCodeUnsupportedVersion = "unsupported-version" // envelope Ver not spoken by this server
	CtlCodeUnknownOp          = "unknown-op"          // envelope Op not known to this server
	CtlCodeInternal           = "internal"            // anything else
	CtlCodeQuotaExceeded      = "quota-exceeded"      // a per-owner quota rejected the submit
	CtlCodeRateLimited        = "rate-limited"        // the per-owner token bucket rejected the submit
	CtlCodeOwnerMismatch      = "owner-mismatch"      // body Owner contradicts the authenticated session owner
	CtlCodeForbidden          = "forbidden"           // op reserved for admins on this endpoint
)

// CtlError is the typed control-plane error: a stable Code for machine
// dispatch, human prose in Msg, and the fault class so clients can
// branch Transient vs Permanent through faultclass.ClassOf.
type CtlError struct {
	Code  string           `json:"code"`
	Msg   string           `json:"msg"`
	Class faultclass.Class `json:"class"`
}

// Error implements error.
func (e *CtlError) Error() string { return e.Msg }

// FaultClass exposes Class to faultclass.ClassOf.
func (e *CtlError) FaultClass() faultclass.Class { return e.Class }

// ctlBadRequest builds the validation-failure error (always Permanent:
// resending the same request cannot succeed).
func ctlBadRequest(format string, args ...any) *CtlError {
	return &CtlError{Code: CtlCodeBadRequest, Msg: fmt.Sprintf(format, args...), Class: faultclass.Permanent}
}

// ctlNoSuchJob is the uniform answer for an unknown job ID and for a job
// outside the caller's owner scope — deliberately indistinguishable, so
// a tenant cannot probe which IDs exist.
func ctlNoSuchJob(id string) *CtlError {
	return &CtlError{
		Code:  CtlCodeNoSuchJob,
		Msg:   fmt.Sprintf("condorg: no such job %s", id),
		Class: faultclass.Permanent,
	}
}

// ctlForbidden rejects an agent-wide op from a non-admin session.
func ctlForbidden(owner, op string) *CtlError {
	return &CtlError{
		Code:  CtlCodeForbidden,
		Msg:   fmt.Sprintf("condorg: op %q requires admin (owner %q is not)", op, owner),
		Class: faultclass.Permanent,
	}
}

// ctlErrorFrom maps an agent error onto the typed taxonomy. Typed
// errors pass through; known sentinels get their stable codes; anything
// else keeps whatever fault class its chain carries.
func ctlErrorFrom(err error) *CtlError {
	var ce *CtlError
	if errors.As(err, &ce) {
		return ce
	}
	switch {
	case errors.Is(err, ErrNoSuchJob):
		return &CtlError{Code: CtlCodeNoSuchJob, Msg: err.Error(), Class: faultclass.Permanent}
	case errors.Is(err, ErrBadJobState):
		return &CtlError{Code: CtlCodeBadState, Msg: err.Error(), Class: faultclass.Permanent}
	case errors.Is(err, ErrAgentClosed):
		return &CtlError{Code: CtlCodeInternal, Msg: err.Error(), Class: faultclass.Transient}
	case errors.Is(err, ErrQuotaExceeded):
		return &CtlError{Code: CtlCodeQuotaExceeded, Msg: err.Error(), Class: faultclass.Permanent}
	case errors.Is(err, ErrRateLimited):
		return &CtlError{Code: CtlCodeRateLimited, Msg: err.Error(), Class: faultclass.Permanent}
	}
	return &CtlError{Code: CtlCodeInternal, Msg: err.Error(), Class: faultclass.ClassOf(err)}
}

// CtlQueueReq filters and paginates the queue listing. Zero values mean
// "no constraint"; After is the opaque cursor returned by the previous
// page. On authenticated endpoints the listing is always scoped to the
// session owner (admins may set Owner, or leave it empty for all).
type CtlQueueReq struct {
	Owner  string     `json:"owner,omitempty"`
	States []JobState `json:"states,omitempty"`
	Limit  int        `json:"limit,omitempty"`
	After  string     `json:"after,omitempty"`
}

// CtlQueueResp is one page of jobs; a non-empty Next is the opaque
// cursor for the following page.
type CtlQueueResp struct {
	Jobs []JobInfo `json:"jobs"`
	Next string    `json:"next,omitempty"`
}

// ctlCursorPrefix versions the opaque queue cursor. The payload after
// the prefix is an implementation detail (today: base64url of the last
// job ID of the page) — clients must treat the whole cursor as opaque.
const ctlCursorPrefix = "c1."

// encodeCursor wraps a position in the versioned opaque format.
func encodeCursor(id string) string {
	if id == "" {
		return ""
	}
	return ctlCursorPrefix + base64.RawURLEncoding.EncodeToString([]byte(id))
}

// decodeCursor unwraps a cursor; bare legacy cursors (pre-v1.1 raw job
// IDs) are still accepted so in-flight paginations survive an upgrade.
func decodeCursor(s string) (string, error) {
	if s == "" {
		return "", nil
	}
	if rest, ok := strings.CutPrefix(s, ctlCursorPrefix); ok {
		raw, err := base64.RawURLEncoding.DecodeString(rest)
		if err != nil {
			return "", fmt.Errorf("condorg: bad queue cursor: %v", err)
		}
		return string(raw), nil
	}
	return s, nil
}

// CtlTraceResp is a job's lifecycle timeline.
type CtlTraceResp struct {
	ID       string       `json:"id"`
	Timeline obs.Timeline `json:"timeline"`
}

// CtlMetricsResp is a point-in-time dump of the agent's metric registry.
type CtlMetricsResp struct {
	Metrics []obs.Metric `json:"metrics"`
}

// CtlSiteHealth is one owner×site row of the agent's pipeline/breaker
// view: circuit-breaker state plus the site pipeline's queue depth and
// in-flight task count.
type CtlSiteHealth struct {
	Owner    string `json:"owner"`
	Site     string `json:"site"`
	Breaker  string `json:"breaker"`
	Fails    int    `json:"fails,omitempty"`
	Queued   int    `json:"queued"`
	InFlight int    `json:"in_flight"`
	// StageHits and StageMisses count the site's executable-cache
	// outcomes as seen by this owner's staging tasks.
	StageHits   int `json:"stage_hits,omitempty"`
	StageMisses int `json:"stage_misses,omitempty"`
}

// CtlHAStatus summarizes the primary's replication state: the queue's
// chain head, how far the standby has acknowledged, and whether the
// synchronous-replication wait is currently armed.
type CtlHAStatus struct {
	Enabled       bool   `json:"enabled"`
	ChainSeq      uint64 `json:"chain_seq"`
	FollowerAcked uint64 `json:"follower_acked"`
	SyncArmed     bool   `json:"sync_armed"`
}

// CtlHealthResp is the per-site health listing, plus the agent's HA
// replication status when hot-standby support is enabled.
type CtlHealthResp struct {
	Sites []CtlSiteHealth `json:"sites"`
	HA    *CtlHAStatus    `json:"ha,omitempty"`
}

// CtlPoolPilot is one glidein pilot row of the "pool" view.
type CtlPoolPilot struct {
	Slot       string `json:"slot"`
	HostSite   string `json:"host_site"`
	Gatekeeper string `json:"gatekeeper,omitempty"`
	ActiveJobs int64  `json:"active_jobs"`
	State      string `json:"state"` // pending | up | retiring
}

// CtlPoolResp is the elastic glidein pool's state: the autoscaler's
// current target, the demand it derived it from, and every tracked
// pilot. Enabled=false means the agent runs without a provisioner.
type CtlPoolResp struct {
	Enabled   bool           `json:"enabled"`
	Target    int            `json:"target"`
	Demand    int            `json:"demand"`
	Submitted int64          `json:"submitted_total"`
	Retired   int64          `json:"retired_total"`
	Pilots    []CtlPoolPilot `json:"pilots,omitempty"`
}

// ownerFor resolves the wire peer into the op owner. Open mode has no
// peer and yields "" — the trusted single-tenant posture. Authenticated
// mode maps the subject through OwnerOf (identity when nil); an unmapped
// subject is rejected.
func (c *ControlServer) ownerFor(peer string) (string, *CtlError) {
	if peer == "" {
		return "", nil
	}
	owner := peer
	if c.cfg.OwnerOf != nil {
		owner = c.cfg.OwnerOf(peer)
	}
	if owner == "" {
		return "", &CtlError{
			Code:  CtlCodeForbidden,
			Msg:   fmt.Sprintf("condorg: subject %q is not mapped to an owner", peer),
			Class: faultclass.Permanent,
		}
	}
	return owner, nil
}

// isAdmin reports whether owner may run agent-wide ops. Open mode ("")
// is implicitly admin.
func (c *ControlServer) isAdmin(owner string) bool {
	return owner == "" || c.cfg.Admins[owner]
}

// authorizeJob scopes a per-job op: admins and open mode see every job;
// a tenant sees only its own, and any other ID — present or not —
// answers no-such-job.
func (c *ControlServer) authorizeJob(owner, id string) *CtlError {
	if c.isAdmin(owner) {
		return nil
	}
	rec, ok := c.agent.job(id)
	if !ok || rec.Owner != owner {
		return ctlNoSuchJob(id)
	}
	return nil
}

// handleV1 is the single wire handler behind every v1 op. Application
// failures ride the envelope as *CtlError — the wire-level error path is
// reserved for transport and envelope problems.
func (c *ControlServer) handleV1(peer string, body json.RawMessage) (any, error) {
	// Size-gate the envelope before decoding it: when a payload cap is
	// configured, no legitimate request body comes anywhere near twice
	// the cap (base64 inflates stdin 4/3), so an oversized frame is
	// rejected for the cost of one length check — JSON-scanning a
	// multi-megabyte body just to refuse it would hand a hostile owner
	// a CPU amplifier.
	if cap := c.agent.cfg.Tenancy.MaxPayloadBytes; cap > 0 && len(body) > 2*cap+4096 {
		c.agent.obs.Counter("ctl_oversized_rejected_total").Inc()
		return CtlResponse{Err: &CtlError{
			Code:  CtlCodeQuotaExceeded,
			Msg:   fmt.Sprintf("condorg: %v: request body %d bytes exceeds the %d-byte payload cap", ErrQuotaExceeded, len(body), cap),
			Class: faultclass.Permanent,
		}}, nil
	}
	var req CtlRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return CtlResponse{Err: ctlBadRequest("condorg: bad control envelope: %v", err)}, nil
	}
	if req.Ver != CtlVersion {
		return CtlResponse{Err: &CtlError{
			Code:  CtlCodeUnsupportedVersion,
			Msg:   fmt.Sprintf("condorg: control version %d not supported (server speaks %d)", req.Ver, CtlVersion),
			Class: faultclass.Permanent,
		}}, nil
	}
	op, ok := c.ops[req.Op]
	if !ok {
		return CtlResponse{Err: &CtlError{
			Code:  CtlCodeUnknownOp,
			Msg:   fmt.Sprintf("condorg: unknown control op %q", req.Op),
			Class: faultclass.Permanent,
		}}, nil
	}
	owner, cerr := c.ownerFor(peer)
	if cerr != nil {
		return CtlResponse{Err: cerr}, nil
	}
	result, err := op(owner, req.Body)
	if err != nil {
		return CtlResponse{Err: ctlErrorFrom(err)}, nil
	}
	raw, err := json.Marshal(result)
	if err != nil {
		return CtlResponse{Err: &CtlError{
			Code:  CtlCodeInternal,
			Msg:   fmt.Sprintf("condorg: encode %s result: %v", req.Op, err),
			Class: faultclass.Permanent,
		}}, nil
	}
	return CtlResponse{Body: raw}, nil
}

// ctlOp is one typed control operation: session owner ("" in open mode)
// and body in, result out.
type ctlOp func(owner string, body json.RawMessage) (any, error)

// registerOps builds the v1 dispatch table.
func (c *ControlServer) registerOps() {
	c.ops = map[string]ctlOp{
		"submit":  c.opSubmit,
		"q":       c.opQueue,
		"status":  c.opStatus,
		"rm":      c.opRemove,
		"hold":    c.opHold,
		"release": c.opRelease,
		"log":     c.opLog,
		"stdout":  c.opStdout,
		"wait":    c.opWait,
		"trace":   c.opTrace,
		"metrics": c.opMetrics,
		"health":  c.opHealth,
		"pool":    c.opPool,
		// Journal replication (see hastream.go): standby bootstrap + tail.
		"journal.snapshot": c.opJournalSnapshot,
		"journal.stream":   c.opJournalStream,
	}
}

// effectiveOwner reconciles the session owner with a request-body Owner
// field: open mode trusts the body; authenticated mode uses the session
// and rejects a contradicting body with CtlCodeOwnerMismatch.
func effectiveOwner(session, asserted string) (string, *CtlError) {
	if session == "" {
		return asserted, nil
	}
	if asserted != "" && asserted != session {
		return "", &CtlError{
			Code:  CtlCodeOwnerMismatch,
			Msg:   fmt.Sprintf("condorg: request owner %q contradicts session owner %q", asserted, session),
			Class: faultclass.Permanent,
		}
	}
	return session, nil
}

func (c *ControlServer) opSubmit(owner string, body json.RawMessage) (any, error) {
	var req CtlSubmit
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, ctlBadRequest("condorg: bad submit body: %v", err)
	}
	if req.Program == "" {
		return nil, ctlBadRequest("condorg: submit needs a program name")
	}
	eff, cerr := effectiveOwner(owner, req.Owner)
	if cerr != nil {
		return nil, cerr
	}
	id, err := c.agent.Submit(SubmitRequest{
		Owner:      eff,
		Executable: gram.Program(req.Program),
		Args:       req.Args,
		Stdin:      req.Stdin,
		Site:       req.Site,
		Cpus:       req.Cpus,
		WallLimit:  req.WallLimit,
		Env:        req.Env,
	})
	if err != nil {
		if ce := ctlErrorFrom(err); ce.Code != CtlCodeInternal {
			return nil, ce
		}
		return nil, &CtlError{Code: CtlCodeSubmitFailed, Msg: err.Error(), Class: submitFailClass(err)}
	}
	return ctlID{ID: id}, nil
}

// submitFailClass keeps a tagged class when the submission error carries
// one and otherwise defaults to Transient: with a durable queue the
// natural reaction to a failed hand-off is to try again.
func submitFailClass(err error) faultclass.Class {
	if cl := faultclass.ClassOf(err); cl != faultclass.Unknown {
		return cl
	}
	if errors.Is(err, ErrAgentClosed) {
		return faultclass.Transient
	}
	return faultclass.Permanent
}

func (c *ControlServer) opQueue(owner string, body json.RawMessage) (any, error) {
	var req CtlQueueReq
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, ctlBadRequest("condorg: bad queue body: %v", err)
		}
	}
	filterOwner := req.Owner
	if owner != "" && !c.isAdmin(owner) {
		// A tenant's listing is always scoped to itself, whatever the
		// body says; a contradicting Owner is a typed error.
		eff, cerr := effectiveOwner(owner, req.Owner)
		if cerr != nil {
			return nil, cerr
		}
		filterOwner = eff
	}
	after, err := decodeCursor(req.After)
	if err != nil {
		return nil, ctlBadRequest("%v", err)
	}
	jobs, next := c.agent.JobsFiltered(JobFilter{
		Owner:  filterOwner,
		States: req.States,
		Limit:  req.Limit,
		After:  after,
	})
	return CtlQueueResp{Jobs: jobs, Next: encodeCursor(next)}, nil
}

func (c *ControlServer) opStatus(owner string, body json.RawMessage) (any, error) {
	var req ctlID
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, ctlBadRequest("condorg: bad status body: %v", err)
	}
	if cerr := c.authorizeJob(owner, req.ID); cerr != nil {
		return nil, cerr
	}
	return c.agent.Status(req.ID)
}

func (c *ControlServer) opRemove(owner string, body json.RawMessage) (any, error) {
	var req ctlID
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, ctlBadRequest("condorg: bad rm body: %v", err)
	}
	if cerr := c.authorizeJob(owner, req.ID); cerr != nil {
		return nil, cerr
	}
	return struct{}{}, c.agent.Remove(req.ID)
}

func (c *ControlServer) opHold(owner string, body json.RawMessage) (any, error) {
	var req ctlHold
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, ctlBadRequest("condorg: bad hold body: %v", err)
	}
	if req.Reason == "" {
		req.Reason = "held by user"
	}
	if cerr := c.authorizeJob(owner, req.ID); cerr != nil {
		return nil, cerr
	}
	return struct{}{}, c.agent.Hold(req.ID, req.Reason)
}

func (c *ControlServer) opRelease(owner string, body json.RawMessage) (any, error) {
	var req ctlID
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, ctlBadRequest("condorg: bad release body: %v", err)
	}
	if cerr := c.authorizeJob(owner, req.ID); cerr != nil {
		return nil, cerr
	}
	return struct{}{}, c.agent.Release(req.ID)
}

func (c *ControlServer) opLog(owner string, body json.RawMessage) (any, error) {
	var req ctlID
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, ctlBadRequest("condorg: bad log body: %v", err)
	}
	if cerr := c.authorizeJob(owner, req.ID); cerr != nil {
		return nil, cerr
	}
	events, err := c.agent.UserLog(req.ID)
	if err != nil {
		return nil, err
	}
	return ctlLog{Events: events}, nil
}

func (c *ControlServer) opStdout(owner string, body json.RawMessage) (any, error) {
	var req ctlID
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, ctlBadRequest("condorg: bad stdout body: %v", err)
	}
	if cerr := c.authorizeJob(owner, req.ID); cerr != nil {
		return nil, cerr
	}
	data, err := c.agent.Stdout(req.ID)
	if err != nil {
		return nil, err
	}
	return ctlData{Data: data}, nil
}

func (c *ControlServer) opWait(owner string, body json.RawMessage) (any, error) {
	var req ctlWait
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, ctlBadRequest("condorg: bad wait body: %v", err)
	}
	if cerr := c.authorizeJob(owner, req.ID); cerr != nil {
		return nil, cerr
	}
	// Wait briefly server-side; the client re-calls for long waits so a
	// single RPC never outlives the wire timeout. The wait itself is
	// event-driven — it returns the moment the job turns terminal.
	ctx, cancel := context.WithTimeout(context.Background(),
		time.Duration(req.TimeoutSec)*time.Second)
	defer cancel()
	info, err := c.agent.Wait(ctx, req.ID)
	if errors.Is(err, context.DeadlineExceeded) {
		return info, nil // not terminal yet; the client decides to re-call
	}
	if err != nil {
		return nil, err
	}
	return info, nil
}

func (c *ControlServer) opTrace(owner string, body json.RawMessage) (any, error) {
	var req ctlID
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, ctlBadRequest("condorg: bad trace body: %v", err)
	}
	if cerr := c.authorizeJob(owner, req.ID); cerr != nil {
		return nil, cerr
	}
	tl, err := c.agent.Trace(req.ID)
	if err != nil {
		return nil, err
	}
	return CtlTraceResp{ID: req.ID, Timeline: tl}, nil
}

func (c *ControlServer) opMetrics(owner string, _ json.RawMessage) (any, error) {
	if !c.isAdmin(owner) {
		// The registry carries per-owner labels — cross-tenant data.
		return nil, ctlForbidden(owner, "metrics")
	}
	return CtlMetricsResp{Metrics: c.agent.MetricsSnapshot()}, nil
}

func (c *ControlServer) opHealth(owner string, _ json.RawMessage) (any, error) {
	if !c.isAdmin(owner) {
		return nil, ctlForbidden(owner, "health")
	}
	resp := CtlHealthResp{Sites: c.agent.PipelineHealth()}
	if c.agent.cfg.HA.Enabled {
		acked, armed := c.agent.store.FollowerAckedSeq()
		resp.HA = &CtlHAStatus{
			Enabled:       true,
			ChainSeq:      c.agent.store.ChainHead().Seq,
			FollowerAcked: acked,
			SyncArmed:     armed,
		}
	}
	return resp, nil
}

func (c *ControlServer) opPool(owner string, _ json.RawMessage) (any, error) {
	if !c.isAdmin(owner) {
		return nil, ctlForbidden(owner, "pool")
	}
	if c.cfg.Pool == nil {
		return CtlPoolResp{}, nil
	}
	resp := c.cfg.Pool()
	resp.Enabled = true
	return resp, nil
}

// call runs one v1 op round-trip: envelope out, envelope back, typed
// error surfaced as *CtlError (so faultclass.ClassOf works on it).
func (c *ControlClient) call(op string, req, resp any) error {
	var body json.RawMessage
	if req != nil {
		raw, err := json.Marshal(req)
		if err != nil {
			return err
		}
		body = raw
	}
	var env CtlResponse
	if err := c.wc.Call("ctl.v1", CtlRequest{Ver: CtlVersion, Op: op, Body: body}, &env); err != nil {
		return err
	}
	if env.Err != nil {
		return env.Err
	}
	if resp != nil && len(env.Body) > 0 {
		return json.Unmarshal(env.Body, resp)
	}
	return nil
}

// QueueFiltered lists one page of jobs matching the filter; next is the
// opaque cursor for the following page ("" when this page is the last).
func (c *ControlClient) QueueFiltered(req CtlQueueReq) (jobs []JobInfo, next string, err error) {
	var resp CtlQueueResp
	if err := c.call("q", req, &resp); err != nil {
		return nil, "", err
	}
	return resp.Jobs, resp.Next, nil
}

// Trace fetches the job's lifecycle timeline.
func (c *ControlClient) Trace(id string) (obs.Timeline, error) {
	var resp CtlTraceResp
	if err := c.call("trace", ctlID{ID: id}, &resp); err != nil {
		return obs.Timeline{}, err
	}
	return resp.Timeline, nil
}

// Metrics fetches a point-in-time dump of the agent's metric registry.
func (c *ControlClient) Metrics() ([]obs.Metric, error) {
	var resp CtlMetricsResp
	if err := c.call("metrics", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Metrics, nil
}

// Health fetches the per-owner, per-site breaker and pipeline view.
func (c *ControlClient) Health() ([]CtlSiteHealth, error) {
	resp, err := c.HealthFull()
	if err != nil {
		return nil, err
	}
	return resp.Sites, nil
}

// HealthFull fetches the health listing including the HA replication
// status (nil unless the agent runs with HAOptions.Enabled).
func (c *ControlClient) HealthFull() (CtlHealthResp, error) {
	var resp CtlHealthResp
	err := c.call("health", nil, &resp)
	return resp, err
}

// Pool fetches the elastic glidein pool view (Enabled=false when the
// agent runs without a provisioner).
func (c *ControlClient) Pool() (CtlPoolResp, error) {
	var resp CtlPoolResp
	err := c.call("pool", nil, &resp)
	return resp, err
}
