package condorg

import (
	"context"
	"testing"
	"time"

	"condorg/internal/gram"
	"condorg/internal/gsi"
	"condorg/internal/obs"
)

// A refreshed per-owner proxy reaches the running job's JobManager in-band
// (jm.refresh-credential on the per-site pipeline) — no hold/release cycle,
// so the job keeps running through the renewal.
func TestSetOwnerCredentialRedelegatesInBand(t *testing.T) {
	w := newWorld(t, 1)
	now := time.Now()
	ca, err := gsi.NewCA("/O=Grid/CN=CA", now, 48*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	user, err := ca.IssueUser("/O=Grid/CN=u", now, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := gsi.NewProxy(user, now, 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}

	id, err := w.agent.Submit(SubmitRequest{
		Owner: "u", Executable: gram.Program("task"), Args: []string{"800ms"},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitAgentState(t, w.agent, id, Running)

	w.agent.SetOwnerCredential("u", proxy)
	if got := w.agent.OwnerCredential("u"); got != proxy {
		t.Fatalf("OwnerCredential(u) = %v, want the installed proxy", got)
	}
	if got := w.agent.OwnerCredential("other"); got != nil {
		t.Fatalf("another owner inherited u's proxy: %v", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	info, err := w.agent.Wait(ctx, id)
	if err != nil || info.State != Completed {
		t.Fatalf("after refresh: %v %v (err=%q)", info.State, err, info.Error)
	}
	tl, err := w.agent.Trace(id)
	if err != nil {
		t.Fatal(err)
	}
	sawRefresh := false
	for _, ev := range tl.Events {
		switch ev.Phase {
		case obs.PhaseCredRefresh:
			if ev.Class == "" {
				sawRefresh = true
			}
		case obs.PhaseHold, obs.PhaseRelease:
			t.Fatalf("hold/release on the in-band refresh happy path: %+v", ev)
		}
	}
	if !sawRefresh {
		t.Fatalf("no successful cred-refresh event in the timeline: %+v", tl.Events)
	}
}

// MyProxyBinding resolves per-owner entries first, then the tenancy-wide
// default, and reports absence when neither exists.
func TestMyProxyBindingResolution(t *testing.T) {
	def := MyProxyBinding{Addr: "mp:9", User: "any", Pass: "p"}
	agent, err := NewAgent(AgentConfig{
		StateDir: t.TempDir(),
		Selector: StaticSelector("gk:1"),
		Tenancy: TenancyOptions{
			MyProxy:        map[string]MyProxyBinding{"alice": {User: "alice", Pass: "a"}},
			MyProxyDefault: &def,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	if b, ok := agent.MyProxyBinding("alice"); !ok || b.User != "alice" || b.Addr != "" {
		t.Fatalf("alice binding = %+v ok=%v", b, ok)
	}
	if b, ok := agent.MyProxyBinding("bob"); !ok || b != def {
		t.Fatalf("bob binding = %+v ok=%v, want the default", b, ok)
	}
	bare, err := NewAgent(AgentConfig{StateDir: t.TempDir(), Selector: StaticSelector("gk:1")})
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	if _, ok := bare.MyProxyBinding("alice"); ok {
		t.Fatal("binding reported with none configured")
	}
}
