package condorg

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"condorg/internal/faultclass"
	"condorg/internal/gram"
	"condorg/internal/lrm"
	"condorg/internal/wire"
)

// newFaultySite builds a site whose gatekeeper and jobmanager listeners
// share one wire.Faults hook set, so a test can blackhole the whole site
// (one-way partition: sends succeed, replies never come) after it is up.
func newFaultySite(t *testing.T, name string, runs *atomic.Int64, faults *wire.Faults) *gram.Site {
	t.Helper()
	cluster, err := lrm.NewCluster(lrm.Config{Name: name, Cpus: 4})
	if err != nil {
		t.Fatal(err)
	}
	site, err := gram.NewSite(gram.SiteConfig{
		Name:             name,
		Cluster:          cluster,
		Runtime:          buildRuntime(runs),
		StateDir:         t.TempDir(),
		CommitTimeout:    2 * time.Second,
		GatekeeperFaults: faults,
		JobManagerFaults: faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(site.Close)
	return site
}

// TestPipelineHeadOfLineIsolation is the regression test for the bug this
// package's pipelines exist to fix: with the old single-goroutine
// GridManager, one submission against a blackholed gatekeeper stalled the
// loop for the full timeout ladder (~900ms per attempt, forever), and
// every healthy job behind it waited. With per-site workers the wedged
// submission occupies only its own site's pipeline.
//
// The breaker threshold is set absurdly high so fast-fail cannot rescue
// the serial design — isolation must come from the pipelines themselves.
func TestPipelineHeadOfLineIsolation(t *testing.T) {
	runs := &atomic.Int64{}
	healthy := newSite(t, "alive", runs, t.TempDir(), "")
	t.Cleanup(healthy.Close)
	faults := &wire.Faults{}
	wedged := newFaultySite(t, "wedged", runs, faults)

	agent, err := NewAgent(AgentConfig{
		StateDir: t.TempDir(),
		Selector: &RoundRobinSelector{Sites: []string{healthy.GatekeeperAddr()}},
		Probe:    ProbeOptions{Interval: 15 * time.Millisecond},
		Breaker: faultclass.BreakerConfig{
			Threshold: 1000,
			BaseDelay: 10 * time.Millisecond,
			MaxDelay:  20 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(agent.Close)

	const batch = 6
	runBatch := func() time.Duration {
		start := time.Now()
		ids := make([]string, 0, batch)
		for i := 0; i < batch; i++ {
			id, err := agent.Submit(SubmitRequest{
				Owner:      "u",
				Executable: gram.Program("task"),
				Args:       []string{"5ms"},
				Site:       healthy.GatekeeperAddr(),
			})
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		for _, id := range ids {
			waitAgentState(t, agent, id, Completed)
		}
		return time.Since(start)
	}

	baseline := runBatch()

	// Blackhole the second site and wedge a submission against it, then
	// rerun the healthy batch while that submit burns timeouts.
	faults.SetConn(nil, func() bool { return true }, nil)
	if _, err := agent.Submit(SubmitRequest{
		Owner:      "u",
		Executable: gram.Program("task"),
		Site:       wedged.GatekeeperAddr(),
	}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // let the wedged submit enter its pipeline

	faulted := runBatch()

	// A serial GridManager puts at least one ~900ms timeout ladder in
	// front of the batch; the pipelined one should stay within a small
	// constant factor of the no-fault baseline.
	limit := 2*baseline + 400*time.Millisecond
	if faulted > limit {
		t.Fatalf("healthy batch took %v alongside a blackholed site (baseline %v, limit %v)",
			faulted, baseline, limit)
	}
}

// TestHealthAwareSelectorSkipsOpenSites: a dead site in the rotation must
// not absorb selector-routed jobs once its breaker opens — previously
// round-robin kept handing it every other job, and each one burned
// SubmitRetries budget on guaranteed failures.
func TestHealthAwareSelectorSkipsOpenSites(t *testing.T) {
	runs := &atomic.Int64{}
	healthy := newSite(t, "alive", runs, t.TempDir(), "")
	t.Cleanup(healthy.Close)
	dead := newSite(t, "dead", runs, t.TempDir(), "")
	t.Cleanup(dead.Close)
	dead.Partition()

	agent, err := NewAgent(AgentConfig{
		StateDir: t.TempDir(),
		Selector: &RoundRobinSelector{Sites: []string{dead.GatekeeperAddr(), healthy.GatekeeperAddr()}},
		Probe:    ProbeOptions{Interval: 15 * time.Millisecond},
		// Open after two failures and stay open for the whole test.
		Breaker: faultclass.BreakerConfig{
			Threshold: 2,
			BaseDelay: 10 * time.Second,
			MaxDelay:  10 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(agent.Close)

	// A sacrificial pinned submission trips the dead site's breaker.
	if _, err := agent.Submit(SubmitRequest{
		Owner:      "u",
		Executable: gram.Program("task"),
		Site:       dead.GatekeeperAddr(),
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for agent.SiteHealth("u", dead.GatekeeperAddr()) != faultclass.Open {
		if time.Now().After(deadline) {
			t.Fatal("dead site's breaker never opened")
		}
		time.Sleep(5 * time.Millisecond)
	}

	var ids []string
	for i := 0; i < 6; i++ {
		id, err := agent.Submit(SubmitRequest{Owner: "u", Executable: gram.Program("task")})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		info := waitAgentState(t, agent, id, Completed)
		if info.Site != healthy.GatekeeperAddr() {
			t.Fatalf("job %s routed to %s, want the healthy site %s", id, info.Site, healthy.GatekeeperAddr())
		}
		if info.SubmitRetries != 0 {
			t.Fatalf("job %s burned %d submit retries on a breaker-open site", id, info.SubmitRetries)
		}
	}
}

// TestCancelTombstoneDoesNotBlockPipelines: a cancel tombstone stuck on an
// unreachable site must churn in that site's own pipeline. The old serial
// loop ran retryCancels inline, so every undeliverable cancel added a full
// timeout ladder of lag to the probe pass for ALL jobs.
func TestCancelTombstoneDoesNotBlockPipelines(t *testing.T) {
	runs := &atomic.Int64{}
	healthy := newSite(t, "alive", runs, t.TempDir(), "")
	t.Cleanup(healthy.Close)
	faults := &wire.Faults{}
	doomed := newFaultySite(t, "doomed", runs, faults)

	agent, err := NewAgent(AgentConfig{
		StateDir: t.TempDir(),
		Selector: &RoundRobinSelector{Sites: []string{healthy.GatekeeperAddr()}},
		Probe:    ProbeOptions{Interval: 15 * time.Millisecond},
		Breaker: faultclass.BreakerConfig{
			Threshold: 1000,
			BaseDelay: 10 * time.Millisecond,
			MaxDelay:  20 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(agent.Close)

	// Get a job running on the doomed site, then blackhole it and hold
	// the job: the cancel tombstone can never be acknowledged.
	id, err := agent.Submit(SubmitRequest{
		Owner:      "u",
		Executable: gram.Program("task"),
		Args:       []string{"30s"},
		Site:       doomed.GatekeeperAddr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	waitAgentState(t, agent, id, Running)
	faults.SetConn(nil, func() bool { return true }, nil)
	if err := agent.Hold(id, "operator hold"); err != nil {
		t.Fatal(err)
	}

	// Healthy traffic must keep flowing while the tombstone churns.
	start := time.Now()
	var ids []string
	for i := 0; i < 4; i++ {
		hid, err := agent.Submit(SubmitRequest{
			Owner:      "u",
			Executable: gram.Program("task"),
			Args:       []string{"5ms"},
			Site:       healthy.GatekeeperAddr(),
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, hid)
	}
	for _, hid := range ids {
		waitAgentState(t, agent, hid, Completed)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("healthy jobs took %v behind an undeliverable tombstone", elapsed)
	}

	info, err := agent.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.CancelPending) == 0 {
		t.Fatal("tombstone unexpectedly acknowledged through a blackholed site")
	}
	if info.State != Held {
		t.Fatalf("held job is %v, want %v", info.State, Held)
	}
}

// TestPipelineHealthSnapshot covers the ctl.v1 "health" op's data source:
// breaker state and pipeline occupancy merged per (owner, site).
func TestPipelineHealthSnapshot(t *testing.T) {
	w := newWorld(t, 2)
	// A long-running job keeps the GridManager alive (it retires, taking
	// its pipeline stats with it, once the owner's queue drains).
	id, err := w.agent.Submit(SubmitRequest{
		Owner: "u", Executable: gram.Program("task"), Args: []string{"5s"},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitAgentState(t, w.agent, id, Running)
	rows := w.agent.PipelineHealth()
	if len(rows) == 0 {
		t.Fatal("PipelineHealth returned no rows with a running job")
	}
	for _, r := range rows {
		if r.Owner != "u" {
			t.Fatalf("unexpected owner %q in %+v", r.Owner, r)
		}
		if r.Breaker != faultclass.Closed.String() {
			t.Fatalf("healthy site reports breaker %q: %+v", r.Breaker, r)
		}
	}
}

// TestSelectSiteFallsBackToBlindSelect: a plain Selector (no SelectHealthy)
// still works through the helper, and a health view that vetoes everything
// surfaces ErrAllSitesUnhealthy from aware selectors.
func TestSelectSiteFallsBackToBlindSelect(t *testing.T) {
	plain := StaticSelector("gk:1")
	site, err := selectSite(plain, SubmitRequest{}, func(string) bool { return false })
	if err != nil || site != "gk:1" {
		t.Fatalf("plain selector through selectSite = %q, %v", site, err)
	}
	rr := &RoundRobinSelector{Sites: []string{"gk:1", "gk:2"}}
	if _, err := selectSite(rr, SubmitRequest{}, func(string) bool { return false }); err == nil {
		t.Fatal("round-robin with all sites vetoed returned no error")
	} else if !errors.Is(err, ErrAllSitesUnhealthy) {
		t.Fatalf("want ErrAllSitesUnhealthy, got %v", err)
	}
	// One healthy site: the rotation must land on it regardless of where
	// the cursor starts.
	for i := 0; i < 4; i++ {
		site, err := rr.SelectHealthy(SubmitRequest{}, func(addr string) bool { return addr == "gk:2" })
		if err != nil || site != "gk:2" {
			t.Fatalf("turn %d: SelectHealthy = %q, %v", i, site, err)
		}
	}
}
