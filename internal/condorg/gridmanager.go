package condorg

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"condorg/internal/faultclass"
	"condorg/internal/gram"
	"condorg/internal/gsi"
	"condorg/internal/obs"
	"condorg/internal/wire"
)

// GridManager is the per-user daemon of Figure 1: it submits the user's
// jobs through GRAM's two-phase commit, probes their JobManagers, restarts
// dead ones through the Gatekeeper, waits out partitions, resubmits jobs
// the site lost, and exits when the user has no unfinished work. The run
// loop is a dispatcher: remote operations execute on per-site worker
// pipelines (pipeline.go), so one slow site never stalls the others.
type GridManager struct {
	agent   *Agent
	owner   string
	gram    *gram.Client
	perSite int          // per-gatekeeper in-flight cap (AgentConfig.Pipeline)
	batch   BatchOptions // wire-layer verb coalescing (AgentConfig.Batch)

	mu          sync.Mutex
	pending     []*jobRecord // awaiting first submission (or resubmission)
	recovery    []*jobRecord // recovered with a live contact to re-verify
	workers     map[string]*siteWorker
	cancelBusy  map[string]bool // tombstone retries queued or running
	credBusy    map[string]bool // in-band credential refreshes queued or running, by job ID
	outstanding int             // tasks queued + executing across all sites
	// stageSem caps concurrent stage-chunk streams per site across all of
	// this owner's staging tasks (AgentConfig.Stage.Streams); stageHits and
	// stageMisses count executable-cache outcomes per site for health.
	stageSem    map[string]chan struct{}
	stageHits   map[string]int
	stageMisses map[string]int
	finished    bool
	stopCh      chan struct{}
	wake        chan struct{} // buffered nudge: new work or a state change
	wg          sync.WaitGroup
	workerWG    sync.WaitGroup
}

func newGridManager(a *Agent, owner string, cred *gsi.Credential) *GridManager {
	gm := &GridManager{
		agent:       a,
		owner:       owner,
		gram:        gram.NewClient(cred, a.cfg.Clock),
		perSite:     a.cfg.Pipeline.PerSiteInFlight,
		batch:       a.cfg.Batch,
		workers:     make(map[string]*siteWorker),
		cancelBusy:  make(map[string]bool),
		credBusy:    make(map[string]bool),
		stageSem:    make(map[string]chan struct{}),
		stageHits:   make(map[string]int),
		stageMisses: make(map[string]int),
		stopCh:      make(chan struct{}),
		wake:        make(chan struct{}, 1),
	}
	gm.gram.SetWire(a.cfg.Wire.Codec, a.cfg.Wire.NoSession)
	gm.gram.SetTimeouts(300*time.Millisecond, 2)
	gm.gram.SetBreakerConfig(a.cfg.Breaker)
	gm.gram.SetObs(a.obs)
	gm.wg.Add(1)
	go gm.run()
	return gm
}

func (gm *GridManager) done() bool {
	gm.mu.Lock()
	defer gm.mu.Unlock()
	return gm.finished
}

func (gm *GridManager) stop() {
	gm.mu.Lock()
	if gm.finished {
		gm.mu.Unlock()
		return
	}
	gm.finished = true
	close(gm.stopCh)
	gm.mu.Unlock()
	gm.wg.Wait()
	gm.workerWG.Wait()
	gm.gram.Close()
}

// poke nudges the run loop so new work is picked up immediately instead of
// waiting out the probe tick. Non-blocking: a pending nudge is enough.
func (gm *GridManager) poke() {
	select {
	case gm.wake <- struct{}{}:
	default:
	}
}

// enqueueSubmit hands a new or released job to the manager.
func (gm *GridManager) enqueueSubmit(rec *jobRecord) {
	gm.mu.Lock()
	gm.pending = append(gm.pending, rec)
	gm.mu.Unlock()
	gm.poke()
}

// enqueueRecovery hands a job recovered from the persistent queue: it may
// or may not have a remote contact yet.
func (gm *GridManager) enqueueRecovery(rec *jobRecord) {
	rec.mu.Lock()
	hasContact := rec.Contact.JobID != ""
	rec.mu.Unlock()
	gm.mu.Lock()
	if hasContact {
		gm.recovery = append(gm.recovery, rec)
	} else {
		// Crashed between journaling and submission: resubmit with the
		// SAME SubmissionID; the site deduplicates.
		gm.pending = append(gm.pending, rec)
	}
	gm.mu.Unlock()
	gm.poke()
}

// run is the manager's dispatch loop. New-work and retirement passes are
// event-driven (the wake channel fires on enqueue, on job-state changes,
// and when a worker finishes a task); the §4.2 failure probe stays
// strictly ticker-paced so a burst of events never turns into a probe
// storm against remote sites. No remote I/O happens on this goroutine —
// every pass only partitions work onto the per-site pipelines, so the
// tick cadence (and the probe-lag metric) stays flat even when a site is
// blackholed.
func (gm *GridManager) run() {
	defer gm.wg.Done()
	interval := gm.agent.cfg.Probe.Interval
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	lag := gm.agent.obs.Histogram("gm_probe_lag_seconds")
	var lastTick time.Time
	for {
		gm.dispatchPending()
		gm.dispatchRecovery()
		gm.dispatchCredRefresh()
		if gm.tryRetire() {
			return
		}
		select {
		case <-gm.stopCh:
			return
		case <-ticker.C:
			// Probe lag: how far behind schedule the detector is running
			// (a starved dispatcher delays the next tick delivery).
			now := time.Now()
			if !lastTick.IsZero() {
				if d := now.Sub(lastTick) - interval; d > 0 {
					lag.Observe(d.Seconds())
				}
			}
			lastTick = now
			gm.dispatchCancels()
			gm.dispatchProbes()
		case <-gm.wake:
		}
	}
}

// tryRetire exits the manager when the user has no unfinished jobs —
// "one GridManager process handles all jobs for a single user and
// terminates once all jobs are complete".
func (gm *GridManager) tryRetire() bool {
	gm.mu.Lock()
	// Outstanding pipeline tasks are live remote operations (a submit may
	// be mid-two-phase-commit); retirement must wait for the ledger to
	// drain or gram.Close would yank connections out from under them.
	if len(gm.pending) > 0 || len(gm.recovery) > 0 || gm.outstanding > 0 {
		gm.mu.Unlock()
		return false
	}
	gm.mu.Unlock()
	// Unacknowledged cancels are unfinished work: an old copy may still
	// be runnable at a partitioned site.
	if len(gm.agent.pendingCancels(gm.owner)) > 0 {
		return false
	}
	for _, rec := range gm.agent.activeJobs(gm.owner) {
		rec.mu.Lock()
		runnable := !rec.State.Terminal() && rec.State != Held
		rec.mu.Unlock()
		if runnable {
			return false
		}
	}
	gm.mu.Lock()
	if gm.finished {
		gm.mu.Unlock()
		return true
	}
	gm.finished = true
	close(gm.stopCh)
	gm.mu.Unlock()
	gm.gram.Close()
	return true
}

// submit runs the two-phase commit for one job (a taskSubmit body).
func (gm *GridManager) submit(rec *jobRecord) {
	rec.mu.Lock()
	if rec.State.Terminal() || rec.State == Held {
		rec.mu.Unlock()
		return
	}
	site := rec.Site
	spec := rec.Spec
	subID := rec.SubmissionID
	rec.mu.Unlock()

	start := time.Now()
	contact, err := gm.gram.Submit(site, spec, gram.SubmitOptions{
		SubmissionID: subID,
		Callback:     gm.agent.cbSrv.Addr(),
		Delegate:     gm.agent.cfg.Delegate,
	})
	if err != nil {
		gm.submitFailed(rec, site, err)
		return
	}
	rec.mu.Lock()
	rec.Contact = contact
	gm.agent.traceLocked(rec, obs.PhaseGridSubmit, "", "site issued "+contact.JobID)
	rec.mu.Unlock()
	gm.agent.mu.Lock()
	gm.agent.bySiteJob[contact.JobID] = rec.ID
	gm.agent.mu.Unlock()
	// Journal the contact BEFORE committing: recovery after a crash here
	// reconnects rather than resubmits.
	gm.agent.persist(rec)
	if err := gm.gram.Commit(contact); err != nil {
		gm.commitRetry(rec, err)
		return
	}
	gm.agent.obs.Histogram("gm_two_phase_seconds").Observe(time.Since(start).Seconds())
	gm.agent.obs.Counter(obs.Key("gm_site_submits_total", "site", site)).Inc()
	gm.agent.trace(rec, obs.PhaseCommit, "", "two-phase commit complete")
	gm.agent.log(rec, "GRID_SUBMIT", "job submitted to %s as %s", site, contact.JobID)
}

// pendingLater re-queues a job for the next loop pass. Caller holds gm.mu.
func (gm *GridManager) pendingLater(rec *jobRecord) {
	gm.pending = append(gm.pending, rec)
}

// submitFailed classifies a failed submission attempt. Breaker fast-fails
// never reached the network and do not burn the retry budget; expired
// credentials hold the job immediately (§4.3); everything else counts
// toward MaxSubmitRetries, after which the job is held and the owner
// notified rather than retrying forever against a site that keeps
// refusing.
func (gm *GridManager) submitFailed(rec *jobRecord, site string, err error) {
	if errors.Is(err, faultclass.ErrBreakerOpen) {
		gm.mu.Lock()
		gm.pendingLater(rec)
		gm.mu.Unlock()
		return
	}
	if faultclass.ClassOf(err) == faultclass.AuthExpired {
		gm.holdJob(rec, "credential rejected by "+site+": "+err.Error())
		return
	}
	rec.mu.Lock()
	rec.SubmitRetries++
	n := rec.SubmitRetries
	max := gm.agent.cfg.Retry.MaxSubmitRetries
	gm.agent.traceLocked(rec, obs.PhaseSubmitRetry, faultclass.ClassOf(err).String(), err.Error())
	rec.mu.Unlock()
	if n >= max {
		gm.holdJob(rec, fmt.Sprintf("submission failed %d times (last: %v)", n, err))
		return
	}
	gm.agent.log(rec, "SUBMIT_RETRY", "submission to %s failed (%d/%d: %v); will retry", site, n, max, err)
	gm.agent.persist(rec)
	gm.mu.Lock()
	gm.pendingLater(rec)
	gm.mu.Unlock()
}

// holdJob parks a job Held with the given reason and notifies the owner —
// the paper's hold-and-notify response to conditions that need a human
// (§4.3). Held is not terminal: the user can fix the cause and release.
func (gm *GridManager) holdJob(rec *jobRecord, reason string) {
	rec.mu.Lock()
	if rec.State.Terminal() || rec.State == Held {
		rec.mu.Unlock()
		return
	}
	rec.State = Held
	rec.HoldReason = reason
	owner := rec.Owner
	id := rec.ID
	gm.agent.traceLocked(rec, obs.PhaseHold, "", reason)
	rec.bumpLocked()
	rec.mu.Unlock()
	gm.agent.obs.Counter("agent_jobs_held_total").Inc()
	gm.agent.log(rec, "HELD", "job held: %s", reason)
	gm.agent.persist(rec)
	gm.agent.noteJobChange(owner)
	gm.agent.cfg.Notifier.Notify(owner, "job "+id+" held",
		fmt.Sprintf("Your job %s was held: %s", id, reason))
}

// recoverJob re-verifies one job recovered with a contact (a taskRecover
// body): re-commit (idempotent) and refresh status; dead JobManagers go
// through the probe path.
func (gm *GridManager) recoverJob(rec *jobRecord) {
	rec.mu.Lock()
	contact := rec.Contact
	terminal := rec.State.Terminal()
	rec.mu.Unlock()
	if terminal {
		// The job finished while this task waited its turn (e.g. a commit
		// whose response was torn but whose job ran to completion); there
		// is nothing left to re-verify.
		return
	}
	if err := gm.gram.Commit(contact); err != nil {
		// Gatekeeper down or job unknown; the probe path will sort it out.
		return
	}
	if st, err := gm.gram.Status(contact); err == nil {
		gm.agent.applyRemoteStatus(rec, st)
	}
	// Tell the JobManager where our GASS server lives now.
	gm.gram.UpdateURLFile(contact, gm.agent.gassS.Addr())
}

// probeJob is the per-job §4.2 failure detector (a taskProbe body): "The
// GridManager detects remote failures by periodically probing the
// JobManagers of all the jobs it manages."
func (gm *GridManager) probeJob(rec *jobRecord) {
	rec.mu.Lock()
	contact := rec.Contact
	rec.mu.Unlock()

	st, err := gm.gram.Status(contact)
	if err == nil {
		gm.agent.applyRemoteStatus(rec, st)
		gm.maybeResubmit(rec, st)
		gm.maybeMigrate(rec, st)
		return
	}
	// "If a JobManager fails to respond, the GridManager then probes the
	// GateKeeper for that machine."
	if gkErr := gm.gram.PingGatekeeper(contact.GatekeeperAddr); gkErr != nil {
		gm.markDisconnected(rec, contact.GatekeeperAddr)
		return
	}
	// Gatekeeper lives: the JobManager alone crashed (or exited after the
	// job completed during a partition).
	gm.restartJobManagerFor(rec, contact)
}

// markDisconnected records that a job's site is unreachable. "Either the
// whole resource management machine crashed or there is a network failure
// (the GridManager cannot distinguish these two cases) ... the
// GridManager waits until it can reestablish contact."
func (gm *GridManager) markDisconnected(rec *jobRecord, gkAddr string) {
	rec.mu.Lock()
	already := rec.Disconnected
	rec.Disconnected = true
	if !already {
		gm.agent.traceLocked(rec, obs.PhaseDisconnect, "",
			"lost contact with "+gkAddr)
		rec.bumpLocked()
	}
	rec.mu.Unlock()
	if !already {
		gm.agent.log(rec, "DISCONNECTED", "lost contact with %s; waiting to reconnect", gkAddr)
	}
}

// restartJobManagerFor runs the tail of the §4.2 ladder for a job whose
// JobManager is dead but whose Gatekeeper answers: "The GridManager
// starts a new JobManager, which will resume watching the job or tell the
// GridManager that the job has completed." Shared by the per-job probe
// and the batched probe (whose JMAlive=false entries land here).
func (gm *GridManager) restartJobManagerFor(rec *jobRecord, contact gram.JobContact) {
	newContact, err := gm.gram.RestartJobManager(contact)
	if err != nil {
		if wire.IsRemote(err) && faultclass.ClassOf(err) == faultclass.SiteLost {
			// The site is alive but has no record of the job — it can
			// never finish there. Resubmit instead of probing forever.
			gm.agent.log(rec, "JM_RESTART_FAILED", "site no longer knows the job: %v", err)
			gm.maybeResubmit(rec, gram.StatusInfo{
				State: gram.StateFailed,
				Error: err.Error(),
				Fault: faultclass.SiteLost,
			})
			return
		}
		gm.agent.log(rec, "JM_RESTART_FAILED", "jobmanager restart failed: %v", err)
		return
	}
	rec.mu.Lock()
	rec.Contact = newContact
	wasDisconnected := rec.Disconnected
	rec.Disconnected = false
	if wasDisconnected {
		gm.agent.traceLocked(rec, obs.PhaseReconnect, "",
			"reestablished contact with "+contact.GatekeeperAddr)
		rec.bumpLocked()
	} else {
		gm.agent.traceLocked(rec, obs.PhaseJMRestart, "",
			"replacement jobmanager at "+newContact.JobManagerAddr)
	}
	rec.mu.Unlock()
	gm.agent.persist(rec)
	if wasDisconnected {
		gm.agent.log(rec, "RECONNECTED", "reestablished contact with %s", contact.GatekeeperAddr)
	} else {
		gm.agent.log(rec, "JM_RESTARTED", "started replacement jobmanager at %s", newContact.JobManagerAddr)
	}
	if st, err := gm.gram.Status(newContact); err == nil {
		gm.agent.applyRemoteStatus(rec, st)
		gm.maybeResubmit(rec, st)
	}
}

// maybeMigrate moves a job that has been stuck in a remote queue past the
// configured threshold to a different site — "Monitoring of actual queuing
// and execution times allows for the tuning of where to submit subsequent
// jobs and to migrate queued jobs" (§4.4).
func (gm *GridManager) maybeMigrate(rec *jobRecord, st gram.StatusInfo) {
	cfg := gm.agent.cfg
	if cfg.Retry.MigrateAfter <= 0 || cfg.Selector == nil || st.State != gram.StatePending {
		return
	}
	rec.mu.Lock()
	if rec.State.Terminal() || rec.State == Held ||
		rec.PendingSince.IsZero() || time.Since(rec.PendingSince) < cfg.Retry.MigrateAfter ||
		rec.Migrations >= cfg.Retry.MaxMigrations {
		rec.mu.Unlock()
		return
	}
	currentSite := rec.Site
	owner := rec.Owner
	rec.mu.Unlock()
	newSite, err := selectSite(cfg.Selector, SubmitRequest{Owner: owner}, gm.healthView())
	if err != nil || newSite == currentSite {
		return // nowhere better to go right now
	}
	rec.mu.Lock()
	oldContact := rec.Contact
	rec.Migrations++
	rec.Site = newSite
	rec.State = Idle
	rec.Remote = gram.StateUnsubmitted
	rec.Contact = gram.JobContact{}
	rec.SubmissionID = gram.NewSubmissionID()
	rec.PendingSince = time.Time{}
	// The new site has none of our bytes: restart staging from zero (the
	// destination's cache may still short-circuit the transfer).
	rec.Stage = StageInfo{Hash: rec.Stage.Hash, Total: rec.Stage.Total}
	n := rec.Migrations
	gm.agent.traceLocked(rec, obs.PhaseMigrate, "",
		fmt.Sprintf("queued too long at %s; migration %d", currentSite, n))
	rec.bumpLocked()
	rec.mu.Unlock()
	gm.agent.obs.Counter("agent_migrations_total").Inc()
	gm.agent.unindexSiteJob(oldContact.JobID, rec.ID)
	gm.agent.log(rec, "MIGRATED", "queued too long at %s; migrating to %s (migration %d)", currentSite, newSite, n)
	// The old queued copy must be withdrawn or the job could run twice. A
	// tombstone makes the cancel durable: the dispatcher retries it on the
	// old site's pipeline until the site acknowledges, even across agent
	// restarts.
	gm.agent.addCancelTombstone(rec, oldContact)
	gm.dispatchCancelsFor(rec)
	gm.mu.Lock()
	gm.pendingLater(rec)
	gm.mu.Unlock()
}

// maybeResubmit handles jobs the site reported as failed. Failures caused
// by the site losing the job are retried (possibly elsewhere); application
// failures are final.
func (gm *GridManager) maybeResubmit(rec *jobRecord, st gram.StatusInfo) {
	if st.State != gram.StateFailed {
		return
	}
	rec.mu.Lock()
	if rec.State.Terminal() || rec.State == Held {
		rec.mu.Unlock()
		return
	}
	// Branch on the typed fault class the site reported, not on the prose
	// of st.Error. SiteLost means the program provably never ran to
	// completion there (lost by restart, commit never finished, stage-in
	// failed before the LRM accepted it), so retrying cannot
	// double-execute. AuthExpired needs the user (§4.3). Everything else
	// — including application exit codes — is final.
	if st.Fault == faultclass.AuthExpired {
		rec.mu.Unlock()
		gm.holdJob(rec, "credential rejected by site: "+st.Error)
		return
	}
	// The fault event precedes whatever we decide to do about it, so a
	// timeline always reads fault → (resubmit | failed).
	gm.agent.traceLocked(rec, obs.PhaseFault, st.Fault.String(), st.Error)
	siteLost := st.Fault == faultclass.SiteLost
	if !siteLost || rec.Resubmits >= gm.agent.cfg.Retry.MaxResubmits {
		rec.State = Failed
		rec.Error = st.Error
		rec.FinishedAt = time.Now()
		owner := rec.Owner
		id := rec.ID
		gm.agent.traceLocked(rec, obs.PhaseFailed, st.Fault.String(), st.Error)
		rec.bumpLocked()
		rec.mu.Unlock()
		gm.agent.obs.Counter("agent_jobs_failed_total").Inc()
		gm.agent.log(rec, "FAILED", "job failed: %s", st.Error)
		gm.agent.finishJob(rec)
		gm.agent.noteJobChange(owner)
		gm.agent.cfg.Notifier.Notify(owner, "job "+id+" failed",
			fmt.Sprintf("Your job %s failed: %s", id, st.Error))
		return
	}
	// Resubmit: fresh identity, fresh site choice if a selector exists.
	rec.Resubmits++
	rec.State = Idle
	rec.Remote = gram.StateUnsubmitted
	oldContact := rec.Contact
	rec.Contact = gram.JobContact{}
	rec.SubmissionID = gram.NewSubmissionID()
	rec.Stage = StageInfo{Hash: rec.Stage.Hash, Total: rec.Stage.Total}
	if gm.agent.cfg.Selector != nil {
		if site, err := selectSite(gm.agent.cfg.Selector, SubmitRequest{Owner: rec.Owner}, gm.healthView()); err == nil {
			rec.Site = site
		}
	}
	n := rec.Resubmits
	gm.agent.traceLocked(rec, obs.PhaseResubmit, st.Fault.String(),
		fmt.Sprintf("resubmission %d", n))
	rec.bumpLocked()
	rec.mu.Unlock()
	gm.agent.obs.Counter(obs.Key("agent_resubmits_total", "class", st.Fault.String())).Inc()
	gm.agent.unindexSiteJob(oldContact.JobID, rec.ID)
	gm.agent.log(rec, "RESUBMIT", "site lost the job (%s); resubmission %d", st.Error, n)
	gm.mu.Lock()
	gm.pendingLater(rec)
	gm.mu.Unlock()
}

// healthView adapts this manager's breaker state to the selector
// interface: a site is worth submitting to unless its breaker is open.
func (gm *GridManager) healthView() HealthView {
	return func(addr string) bool {
		return gm.gram.SiteHealth(addr) != faultclass.Open
	}
}

// cancelOldCopy tries once to get the site to acknowledge the cancel of an
// old incarnation (a taskCancel body), clearing the tombstone on success.
// Retries are dispatched at probe pace on the old site's pipeline, so a
// cancel lost to a partition keeps being retried until the site confirms
// the old copy cannot run — only then is the tombstone cleared and (if
// nothing else is outstanding) the manager allowed to retire.
func (gm *GridManager) cancelOldCopy(rec *jobRecord, contact gram.JobContact) {
	if gm.cancelAcknowledged(contact) {
		gm.agent.trace(rec, obs.PhaseCancelAck, "", "old copy "+contact.JobID+" confirmed cancelled")
		gm.agent.ackCancelTombstone(rec, contact)
		gm.agent.log(rec, "CANCEL_ACKED", "old copy %s confirmed cancelled", contact.JobID)
	}
}

// cancelAcknowledged reports whether the site has confirmed that the old
// incarnation can no longer run. Any remote answer — success or an
// application-level error such as "no such job" — counts: the site is
// alive and either cancelled the job or never knew it. The exceptions are
// transport failures (the site never heard us; retry later) and
// AuthExpired (a refreshed credential might let the old copy proceed, so
// the cancel must land for real).
func (gm *GridManager) cancelAcknowledged(contact gram.JobContact) bool {
	acked := func(err error) bool {
		return err == nil ||
			(wire.IsRemote(err) && faultclass.ClassOf(err) != faultclass.AuthExpired)
	}
	err := gm.gram.Cancel(contact)
	if err == nil || wire.IsRemote(err) {
		return acked(err)
	}
	// The old JobManager is unreachable; ask its Gatekeeper to restart it
	// so the cancel has a live endpoint to land on.
	newContact, rerr := gm.gram.RestartJobManager(contact)
	if rerr != nil {
		if wire.IsRemote(rerr) {
			// Site answered "cannot restart" — the job is gone there.
			return acked(rerr)
		}
		return false // site unreachable: keep the tombstone
	}
	return acked(gm.gram.Cancel(newContact))
}

// maxCredRefreshTries bounds in-band re-delegation attempts that reached
// the network and failed; exhaustion falls back to hold-and-notify.
// Breaker fast-fails never burn the budget — the dispatcher parks the
// obligation until the site is worth talking to again.
const maxCredRefreshTries = 3

// requestCredRefresh flags every live remote incarnation of the owner's
// jobs for in-band credential re-delegation (§4.3, without the paper's
// hold/release cycle). Called after SetOwnerCredential/SetCredential
// installs a fresh proxy; the dispatcher routes the deliveries through the
// per-site pipelines.
func (gm *GridManager) requestCredRefresh() {
	for _, rec := range gm.agent.activeJobs(gm.owner) {
		rec.mu.Lock()
		if !rec.State.Terminal() && rec.State != Held && rec.Contact.JobID != "" {
			rec.credRefresh = true
			rec.credRefreshTries = 0
		}
		rec.mu.Unlock()
	}
	gm.poke()
}

// dispatchCredRefresh queues one re-delegation task per flagged job whose
// site is currently worth talking to. Breaker-open sites park the
// obligation (re-examined every pass) rather than burning the retry
// budget on attempts that cannot reach the network.
func (gm *GridManager) dispatchCredRefresh() {
	for _, rec := range gm.agent.activeJobs(gm.owner) {
		rec.mu.Lock()
		skip := rec.State.Terminal() || rec.State == Held ||
			!rec.credRefresh || rec.Contact.JobID == ""
		addr := rec.Contact.GatekeeperAddr
		rec.mu.Unlock()
		if skip || !gm.gram.SiteReady(addr) {
			continue
		}
		gm.mu.Lock()
		if gm.finished || gm.credBusy[rec.ID] {
			gm.mu.Unlock()
			continue
		}
		gm.credBusy[rec.ID] = true
		gm.mu.Unlock()
		gm.enqueueTask(addr, gmTask{kind: taskRefreshCred, rec: rec})
	}
}

// refreshJobCred pushes the owner's refreshed proxy to one job's live
// JobManager (a taskRefreshCred body) via jm.refresh-credential — the
// in-band path that replaces the remote proxy without disturbing the
// running job. Failure policy: breaker fast-fails and transient errors
// retry (the latter up to maxCredRefreshTries); a peer predating the
// refresh verb or a permanent rejection falls back to hold-and-notify, the
// §4.3 response when re-delegation needs a human.
func (gm *GridManager) refreshJobCred(rec *jobRecord) {
	rec.mu.Lock()
	if rec.State.Terminal() || rec.State == Held || !rec.credRefresh || rec.Contact.JobID == "" {
		rec.mu.Unlock()
		return
	}
	contact := rec.Contact
	rec.mu.Unlock()
	delegate := gm.agent.cfg.Delegate
	if delegate == 0 {
		delegate = 12 * time.Hour
	}
	err := gm.gram.RefreshCredential(contact, delegate)
	if err == nil {
		rec.mu.Lock()
		rec.credRefresh = false
		rec.credRefreshTries = 0
		gm.agent.traceLocked(rec, obs.PhaseCredRefresh, "",
			"refreshed credential delivered in-band to "+contact.JobManagerAddr)
		rec.mu.Unlock()
		gm.agent.obs.Counter(obs.Key("cred_redelegations_total", "outcome", "ok")).Inc()
		gm.agent.log(rec, "CRED_REFRESH", "refreshed credential delivered to %s", contact.JobManagerAddr)
		return
	}
	if errors.Is(err, faultclass.ErrBreakerOpen) {
		return // parked; the dispatcher re-queues once the site recovers
	}
	class := faultclass.ClassOf(err)
	if wire.IsNoSuchMethod(err) {
		// A peer from before the refresh verb: fall back to the paper's
		// hold/release re-forwarding — the hold tombstone-cancels the
		// remote copy (which holds the stale proxy) and the release
		// resubmits under the fresh credential.
		rec.mu.Lock()
		rec.credRefresh = false
		id := rec.ID
		rec.mu.Unlock()
		gm.agent.obs.Counter(obs.Key("cred_redelegations_total", "outcome", "unsupported")).Inc()
		gm.agent.log(rec, "CRED_REFRESH", "site predates in-band refresh; falling back to hold/release")
		if gm.agent.Hold(id, "credential refresh unsupported by site; recycling the incarnation") == nil {
			_ = gm.agent.Release(id)
		}
		return
	}
	rec.mu.Lock()
	rec.credRefreshTries++
	n := rec.credRefreshTries
	gm.agent.traceLocked(rec, obs.PhaseCredRefresh, class.String(), "re-delegation failed: "+err.Error())
	exhausted := n >= maxCredRefreshTries ||
		class == faultclass.Permanent || class == faultclass.AuthExpired
	if exhausted {
		rec.credRefresh = false
	}
	rec.mu.Unlock()
	if !exhausted {
		gm.agent.obs.Counter(obs.Key("cred_redelegations_total", "outcome", "retry")).Inc()
		return // still flagged; the next dispatch pass retries
	}
	gm.agent.obs.Counter(obs.Key("cred_redelegations_total", "outcome", "fallback")).Inc()
	gm.holdJob(rec, fmt.Sprintf("credential re-delegation to %s failed (%v)", contact.JobManagerAddr, err))
}
