package condorg

import (
	"encoding/json"
	"time"

	"condorg/internal/journal"
)

// Journal replication over the control plane: a standby bootstraps from
// journal.snapshot, then long-polls journal.stream for hash-chained deltas
// (see Standby in standby.go). Each stream request piggybacks the
// follower's durable position as an acknowledgement, which is what arms
// the primary's synchronous-replication wait (HAOptions.Enabled).

// CtlJournalSnapshotResp is the full queue-store key space plus the chain
// head it is valid at — a follower installs it verbatim and tails the
// stream from Head.
type CtlJournalSnapshotResp struct {
	Data map[string]json.RawMessage `json:"data"`
	Head journal.ChainState         `json:"head"`
}

// CtlJournalStreamReq asks for chained deltas after a position. WaitMS
// long-polls server-side until the head advances (bounded so one RPC never
// outlives the wire timeout); Ack reports the follower's durable position.
type CtlJournalStreamReq struct {
	After  uint64 `json:"after"`
	Max    int    `json:"max,omitempty"`
	WaitMS int    `json:"wait_ms,omitempty"`
	Ack    uint64 `json:"ack,omitempty"`
}

// CtlJournalStreamResp carries the deltas. Reset tells a follower it has
// fallen behind the primary's stream ring (or diverged) and must
// re-bootstrap from a snapshot.
type CtlJournalStreamResp struct {
	Records []journal.StreamRecord `json:"records,omitempty"`
	Head    journal.ChainState     `json:"head"`
	Reset   bool                   `json:"reset,omitempty"`
}

func (c *ControlServer) opJournalSnapshot(owner string, _ json.RawMessage) (any, error) {
	if !c.isAdmin(owner) {
		// The snapshot is the whole multi-tenant queue — replication
		// peers are admins, tenants are not.
		return nil, ctlForbidden(owner, "journal.snapshot")
	}
	data, head := c.agent.store.SnapshotDump()
	return CtlJournalSnapshotResp{Data: data, Head: head}, nil
}

func (c *ControlServer) opJournalStream(owner string, body json.RawMessage) (any, error) {
	if !c.isAdmin(owner) {
		return nil, ctlForbidden(owner, "journal.stream")
	}
	var req CtlJournalStreamReq
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, ctlBadRequest("condorg: bad journal.stream body: %v", err)
		}
	}
	if req.Ack > 0 {
		c.agent.store.FollowerAck(req.Ack)
	}
	if req.WaitMS > 0 {
		c.agent.store.WaitStream(req.After, time.Duration(req.WaitMS)*time.Millisecond)
	}
	recs, head, reset := c.agent.store.StreamSince(req.After, req.Max)
	return CtlJournalStreamResp{Records: recs, Head: head, Reset: reset}, nil
}

// JournalSnapshot fetches the primary's full queue snapshot for follower
// bootstrap.
func (c *ControlClient) JournalSnapshot() (CtlJournalSnapshotResp, error) {
	var resp CtlJournalSnapshotResp
	err := c.call("journal.snapshot", nil, &resp)
	return resp, err
}

// JournalStream fetches (long-polling) the next chained deltas.
func (c *ControlClient) JournalStream(req CtlJournalStreamReq) (CtlJournalStreamResp, error) {
	var resp CtlJournalStreamResp
	err := c.call("journal.stream", req, &resp)
	return resp, err
}
