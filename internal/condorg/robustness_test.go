package condorg

import (
	"context"
	"io"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"condorg/internal/gram"
	"condorg/internal/lrm"
	"condorg/internal/wire"
)

// TestCompletionSurvivesLostCallbacks: every JobManager status callback is
// dropped; the GridManager's probe loop alone must carry the job to
// completion (callbacks are an optimization, not a correctness mechanism).
func TestCompletionSurvivesLostCallbacks(t *testing.T) {
	runs := &atomic.Int64{}
	dropped := &atomic.Int64{}
	// Drop every status callback at the agent's own callback server: the
	// JobManager's pushes all vanish, so only the probe loop can learn of
	// the completion.
	cbFaults := &wire.Faults{}
	cbFaults.DropRequest = func(method string) bool {
		if method == "gram.callback" {
			dropped.Add(1)
			return true
		}
		return false
	}
	cluster, _ := lrm.NewCluster(lrm.Config{Name: "cb", Cpus: 2})
	site, err := gram.NewSite(gram.SiteConfig{
		Name:     "cb",
		Cluster:  cluster,
		Runtime:  buildRuntime(runs),
		StateDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer site.Close()
	agent, err := NewAgent(AgentConfig{
		StateDir: t.TempDir(),
		Selector: StaticSelector(site.GatekeeperAddr()),
		Probe:    ProbeOptions{Interval: 40 * time.Millisecond},
		Faults:   FaultOptions{Callback: cbFaults},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	id, _ := agent.Submit(SubmitRequest{Owner: "u", Executable: gram.Program("task"), Args: []string{"50ms"}})
	waitAgentState(t, agent, id, Completed)
	if dropped.Load() == 0 {
		t.Fatal("no callbacks were dropped; the fault was not wired through")
	}
	if runs.Load() != 1 {
		t.Fatalf("program ran %d times, want exactly once", runs.Load())
	}
}

// TestWalltimeExceededIsFinalFailure: a job that blows its walltime is
// killed by the site and reported as a permanent (non-resubmittable)
// failure with a meaningful reason.
func TestWalltimeExceededIsFinalFailure(t *testing.T) {
	w := newWorld(t, 1)
	id, err := w.agent.Submit(SubmitRequest{
		Owner:      "u",
		Executable: gram.Program("task"),
		Args:       []string{"5s"},
		WallLimit:  60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	info := waitAgentState(t, w.agent, id, Failed)
	if !strings.Contains(info.Error, "walltime") {
		t.Fatalf("error = %q, want walltime reason", info.Error)
	}
	if info.Resubmits != 0 {
		t.Fatalf("walltime failure was resubmitted %d times", info.Resubmits)
	}
}

// TestEnvAndStdinFlowThroughAgent: environment variables and staged stdin
// reach the remote program.
func TestEnvAndStdinFlowThroughAgent(t *testing.T) {
	runs := &atomic.Int64{}
	rt := buildRuntime(runs)
	// A program that reports env + stdin.
	rt.Register("report", func(_ context.Context, _ []string, stdin []byte, stdout, _ io.Writer, env map[string]string) error {
		stdout.Write([]byte("ENV=" + env["CMS_RUN"] + " STDIN=" + string(stdin) + "\n"))
		return nil
	})
	cluster, _ := lrm.NewCluster(lrm.Config{Name: "env", Cpus: 2})
	site, err := gram.NewSite(gram.SiteConfig{
		Name: "env", Cluster: cluster, Runtime: rt, StateDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer site.Close()
	agent, err := NewAgent(AgentConfig{
		StateDir: t.TempDir(),
		Selector: StaticSelector(site.GatekeeperAddr()),
		Probe:    ProbeOptions{Interval: 40 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	id, err := agent.Submit(SubmitRequest{
		Owner:      "u",
		Executable: gram.Program("report"),
		Stdin:      []byte("event-data"),
		Env:        map[string]string{"CMS_RUN": "42"},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitAgentState(t, agent, id, Completed)
	deadline := time.Now().Add(2 * time.Second)
	for {
		out, _ := agent.Stdout(id)
		if strings.Contains(string(out), "ENV=42 STDIN=event-data") {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("stdout = %q", out)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHoldDuringDisconnection: holding a job while its site is partitioned
// must succeed locally (the remote cancel is best-effort) and survive the
// heal.
func TestHoldDuringDisconnection(t *testing.T) {
	w := newWorld(t, 1)
	id, _ := w.agent.Submit(SubmitRequest{
		Owner: "u", Executable: gram.Program("task"), Args: []string{"10s"},
	})
	waitAgentState(t, w.agent, id, Running)
	w.sites[0].Partition()
	if err := w.agent.Hold(id, "user hold during outage"); err != nil {
		t.Fatal(err)
	}
	w.sites[0].Heal()
	time.Sleep(200 * time.Millisecond)
	info, _ := w.agent.Status(id)
	if info.State != Held {
		t.Fatalf("state after heal = %v, want held", info.State)
	}
	w.agent.Release(id)
	waitAgentState(t, w.agent, id, Running)
	w.agent.Remove(id)
}

// TestManyJobsManySites: a wider load test — 30 jobs over 3 sites with the
// adaptive-ish round robin, all exactly-once.
func TestManyJobsManySites(t *testing.T) {
	w := newWorld(t, 3)
	var ids []string
	for i := 0; i < 30; i++ {
		id, err := w.agent.Submit(SubmitRequest{
			Owner: "u", Executable: gram.Program("task"), Args: []string{"10ms"},
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := w.agent.WaitAll(ctx); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		info, _ := w.agent.Status(id)
		if info.State != Completed {
			t.Fatalf("job %s: %v (%s)", id, info.State, info.Error)
		}
	}
	if got := w.runs.Load(); got != 30 {
		t.Fatalf("executions = %d, want exactly 30", got)
	}
}

// TestOnDiskUserLog: the per-job history is mirrored to a plain text file
// in the agent's state directory and survives agent restarts.
func TestOnDiskUserLog(t *testing.T) {
	w := newWorld(t, 1)
	id, _ := w.agent.Submit(SubmitRequest{Owner: "u", Executable: gram.Program("task")})
	waitAgentState(t, w.agent, id, Completed)
	data, err := os.ReadFile(w.agent.UserLogPath(id))
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, code := range []string{"SUBMIT", "GRID_SUBMIT", "TERMINATED"} {
		if !strings.Contains(text, code) {
			t.Fatalf("on-disk log missing %s:\n%s", code, text)
		}
	}
}
