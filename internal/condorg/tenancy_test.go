package condorg

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"condorg/internal/faultclass"
	"condorg/internal/gram"
	"condorg/internal/gsi"
)

// TestFairSemRotation: with the cap saturated, freed slots rotate
// round-robin over owners with queued work — a deep backlog from one
// owner cannot starve another.
func TestFairSemRotation(t *testing.T) {
	s := newFairSem(1)
	if !s.tryAcquire() {
		t.Fatal("fresh semaphore refused tryAcquire")
	}
	if s.tryAcquire() {
		t.Fatal("saturated semaphore granted tryAcquire")
	}

	stop := make(chan struct{})
	grants := make(chan string, 16)
	var wg sync.WaitGroup
	enqueue := func(owner string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if s.acquire(owner, stop) {
				grants <- owner
				s.release()
			}
		}()
	}
	// Hostile queues 4 waiters, the well-behaved owner 1. Give the
	// waiters time to enqueue so rotation order is deterministic enough.
	for i := 0; i < 4; i++ {
		enqueue("hostile")
	}
	time.Sleep(20 * time.Millisecond)
	enqueue("nice")
	time.Sleep(20 * time.Millisecond)

	s.release() // free the slot: the chain of grants begins
	var order []string
	for i := 0; i < 5; i++ {
		select {
		case o := <-grants:
			order = append(order, o)
		case <-time.After(2 * time.Second):
			t.Fatalf("grant %d never arrived (order so far %v)", i, order)
		}
	}
	wg.Wait()
	// "nice" must be granted within the first rotation turn — i.e. no
	// later than the second grant — despite hostile's 4-deep queue.
	if order[0] != "nice" && order[1] != "nice" {
		t.Fatalf("nice starved behind hostile backlog: grant order %v", order)
	}
}

// TestFairSemStopWithdraw: a waiter whose stop channel closes must
// withdraw cleanly; if the grant raced the stop, the slot passes on
// rather than leaking.
func TestFairSemStopWithdraw(t *testing.T) {
	s := newFairSem(1)
	if !s.tryAcquire() {
		t.Fatal("tryAcquire")
	}
	stop := make(chan struct{})
	done := make(chan bool)
	go func() { done <- s.acquire("u", stop) }()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	if got := <-done; got {
		t.Fatal("stopped waiter reported acquired")
	}
	s.release()
	if !s.tryAcquire() {
		t.Fatal("slot leaked after stop-withdraw")
	}
}

// TestAdmissionQuotas: the per-owner queued quota and token bucket
// reject with the typed sentinels (Permanent class), and the control
// plane maps them onto the stable quota-exceeded / rate-limited codes.
func TestAdmissionQuotas(t *testing.T) {
	w := &testWorld{runs: &atomic.Int64{}, dir: t.TempDir()}
	site := newSite(t, "quota-site", w.runs, t.TempDir(), "")
	t.Cleanup(site.Close)
	agent, err := NewAgent(AgentConfig{
		StateDir: w.dir,
		Selector: &RoundRobinSelector{Sites: []string{site.GatekeeperAddr()}},
		Tenancy:  TenancyOptions{MaxQueuedPerOwner: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(agent.Close)

	// Two slow jobs fill alice's queued quota; the third submit must be
	// rejected with ErrQuotaExceeded.
	for i := 0; i < 2; i++ {
		if _, err := agent.Submit(SubmitRequest{
			Owner: "alice", Executable: gram.Program("task"), Args: []string{"30s"},
		}); err != nil {
			t.Fatal(err)
		}
	}
	_, err = agent.Submit(SubmitRequest{Owner: "alice", Executable: gram.Program("task")})
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota submit: %v, want ErrQuotaExceeded", err)
	}
	if faultclass.ClassOf(err) != faultclass.Permanent {
		t.Fatalf("quota rejection classified %v, want Permanent", faultclass.ClassOf(err))
	}
	// bob's stripe is untouched by alice's saturation.
	if _, err := agent.Submit(SubmitRequest{Owner: "bob", Executable: gram.Program("task")}); err != nil {
		t.Fatalf("bob submit: %v", err)
	}

	// The same rejection through ctl.v1 carries the stable code.
	ctl, err := NewControlServer(agent)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	cli := NewControlClient(ctl.Addr())
	defer cli.Close()
	var ce *CtlError
	_, err = cli.Submit(CtlSubmit{Owner: "alice", Program: "task"})
	if !errors.As(err, &ce) || ce.Code != CtlCodeQuotaExceeded {
		t.Fatalf("ctl over-quota: %v, want code %s", err, CtlCodeQuotaExceeded)
	}
}

// TestSubmitRateLimit: the per-owner token bucket rejects a burst beyond
// its depth with ErrRateLimited, mapped to the stable rate-limited code.
func TestSubmitRateLimit(t *testing.T) {
	site := newSite(t, "rate-site", &atomic.Int64{}, t.TempDir(), "")
	t.Cleanup(site.Close)
	agent, err := NewAgent(AgentConfig{
		StateDir: t.TempDir(),
		Selector: &RoundRobinSelector{Sites: []string{site.GatekeeperAddr()}},
		Tenancy: TenancyOptions{
			SubmitRate:  0.001, // refills ~never within the test
			SubmitBurst: 3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(agent.Close)
	for i := 0; i < 3; i++ {
		if _, err := agent.Submit(SubmitRequest{Owner: "bob", Executable: gram.Program("task")}); err != nil {
			t.Fatalf("bob submit %d: %v", i, err)
		}
	}
	_, err = agent.Submit(SubmitRequest{Owner: "bob", Executable: gram.Program("task")})
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("over-rate submit: %v, want ErrRateLimited", err)
	}
	// Other owners keep their own buckets.
	if _, err := agent.Submit(SubmitRequest{Owner: "amy", Executable: gram.Program("task")}); err != nil {
		t.Fatalf("amy submit: %v", err)
	}

	ctl, err := NewControlServer(agent)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	cli := NewControlClient(ctl.Addr())
	defer cli.Close()
	var ce *CtlError
	_, err = cli.Submit(CtlSubmit{Owner: "bob", Program: "task"})
	if !errors.As(err, &ce) || ce.Code != CtlCodeRateLimited {
		t.Fatalf("ctl over-rate: %v, want code %s", err, CtlCodeRateLimited)
	}
}

// TestMaxActivePerOwnerAllowsHeld: the active quota counts only
// non-held jobs, so holding work frees room to submit.
func TestMaxActivePerOwnerAllowsHeld(t *testing.T) {
	site := newSite(t, "active-site", &atomic.Int64{}, t.TempDir(), "")
	t.Cleanup(site.Close)
	agent, err := NewAgent(AgentConfig{
		StateDir: t.TempDir(),
		Selector: &RoundRobinSelector{Sites: []string{site.GatekeeperAddr()}},
		Tenancy:  TenancyOptions{MaxActivePerOwner: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(agent.Close)
	id, err := agent.Submit(SubmitRequest{
		Owner: "u", Executable: gram.Program("task"), Args: []string{"30s"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agent.Submit(SubmitRequest{Owner: "u", Executable: gram.Program("task")}); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("second active submit: %v, want ErrQuotaExceeded", err)
	}
	if err := agent.Hold(id, "making room"); err != nil {
		t.Fatal(err)
	}
	if _, err := agent.Submit(SubmitRequest{Owner: "u", Executable: gram.Program("task")}); err != nil {
		t.Fatalf("submit after hold: %v", err)
	}
}

// TestPartitionedRecovery: jobs of many owners land in per-owner journal
// partitions and all survive a restart; pre-partition records in the
// root store migrate into their owner's partition on recovery.
func TestPartitionedRecovery(t *testing.T) {
	dir := t.TempDir()
	site := newSite(t, "part-site", &atomic.Int64{}, t.TempDir(), "")
	t.Cleanup(site.Close)
	sel := &RoundRobinSelector{Sites: []string{site.GatekeeperAddr()}}

	// Epoch 1: unpartitioned (the pre-tenancy layout).
	a1, err := NewAgent(AgentConfig{StateDir: dir, Selector: sel,
		Tenancy: TenancyOptions{Partitions: -1}})
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := a1.Submit(SubmitRequest{Owner: "old", Executable: gram.Program("task"), Args: []string{"30s"}})
	if err != nil {
		t.Fatal(err)
	}
	a1.Close()

	// Epoch 2: partitioned. The legacy job must migrate; new jobs of
	// several owners land in their buckets.
	a2, err := NewAgent(AgentConfig{StateDir: dir, Selector: sel})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a2.Status(legacy); err != nil {
		t.Fatalf("legacy job lost in migration: %v", err)
	}
	ids := map[string]string{}
	for _, owner := range []string{"amy", "ben", "cas"} {
		id, err := a2.Submit(SubmitRequest{Owner: owner, Executable: gram.Program("task"), Args: []string{"30s"}})
		if err != nil {
			t.Fatal(err)
		}
		ids[owner] = id
	}
	a2.Close()

	// Epoch 3: everything recovers from the partitions.
	a3, err := NewAgent(AgentConfig{StateDir: dir, Selector: sel})
	if err != nil {
		t.Fatal(err)
	}
	defer a3.Close()
	for owner, id := range ids {
		info, err := a3.Status(id)
		if err != nil {
			t.Fatalf("%s's job %s lost across restart: %v", owner, id, err)
		}
		if info.Owner != owner {
			t.Fatalf("job %s recovered with owner %q, want %q", id, info.Owner, owner)
		}
	}
	if _, err := a3.Status(legacy); err != nil {
		t.Fatalf("legacy job lost after second restart: %v", err)
	}
	owners := a3.Owners()
	if len(owners) != 4 {
		t.Fatalf("recovered owners %v, want 4", owners)
	}
}

// TestQueueCursorOpaque: the v1 queue cursor is versioned-opaque, round
// trips across pages, and legacy raw-job-ID cursors are still accepted.
func TestQueueCursorOpaque(t *testing.T) {
	w := newWorld(t, 1)
	ctl, err := NewControlServer(w.agent)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	cli := NewControlClient(ctl.Addr())
	defer cli.Close()
	var ids []string
	for i := 0; i < 5; i++ {
		id, err := cli.Submit(CtlSubmit{Owner: "u", Program: "task", Args: []string{"10ms"}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	page1, next, err := cli.QueueFiltered(CtlQueueReq{Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(page1) != 2 || next == "" {
		t.Fatalf("page1: %d jobs, next %q", len(page1), next)
	}
	if !strings.HasPrefix(next, "c1.") {
		t.Fatalf("cursor %q lacks the c1. version prefix", next)
	}
	page2, _, err := cli.QueueFiltered(CtlQueueReq{Limit: 2, After: next})
	if err != nil {
		t.Fatal(err)
	}
	if len(page2) != 2 || page2[0].ID == page1[1].ID {
		t.Fatalf("page2 did not advance: %+v", page2)
	}
	// A legacy cursor (bare job ID, the pre-redesign format) resumes too.
	legacyPage, _, err := cli.QueueFiltered(CtlQueueReq{Limit: 2, After: page1[1].ID})
	if err != nil {
		t.Fatal(err)
	}
	if len(legacyPage) != 2 || legacyPage[0].ID != page2[0].ID {
		t.Fatalf("legacy cursor resumed at %+v, want same as page2", legacyPage)
	}
	// Garbage after the version prefix is a typed bad-request.
	var ce *CtlError
	if _, _, err := cli.QueueFiltered(CtlQueueReq{After: "c1.!!!"}); !errors.As(err, &ce) || ce.Code != CtlCodeBadRequest {
		t.Fatalf("bad cursor: %v, want code %s", err, CtlCodeBadRequest)
	}
}

// TestAuthenticatedOwnerScoping drives the authenticated control plane
// directly (no gateway): owners come from the wire session, asserted
// owners are cross-checked, foreign jobs answer no-such-job, and
// agent-wide ops are admin-only.
func TestAuthenticatedOwnerScoping(t *testing.T) {
	w := newWorld(t, 1)
	now := time.Now()
	ca, err := gsi.NewCA("scope-ca", now, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewControlServerConfig(w.agent, "127.0.0.1:0", ControlConfig{
		Anchor: ca.Certificate(),
		OwnerOf: func(subject string) string {
			u, ok := strings.CutPrefix(subject, "/U=")
			if !ok {
				return "" // unmapped subject
			}
			return u
		},
		Admins: map[string]bool{"root": true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	client := func(user string) *ControlClient {
		cred, err := ca.IssueUser("/U="+user, now, time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		cli := NewControlClientAuth(ctl.Addr(), cred)
		t.Cleanup(func() { cli.Close() })
		return cli
	}
	alice, bob, root := client("alice"), client("bob"), client("root")

	// Owner comes from the session: an empty body field is filled in, a
	// contradicting one is a typed owner-mismatch.
	id, err := alice.Submit(CtlSubmit{Program: "task", Args: []string{"10ms"}})
	if err != nil {
		t.Fatal(err)
	}
	info, err := alice.Status(id)
	if err != nil || info.Owner != "alice" {
		t.Fatalf("status: owner %q err %v, want alice", info.Owner, err)
	}
	var ce *CtlError
	if _, err := alice.Submit(CtlSubmit{Owner: "bob", Program: "task"}); !errors.As(err, &ce) || ce.Code != CtlCodeOwnerMismatch {
		t.Fatalf("spoofed submit: %v, want code %s", err, CtlCodeOwnerMismatch)
	}
	if _, _, err := alice.QueueFiltered(CtlQueueReq{Owner: "bob"}); !errors.As(err, &ce) || ce.Code != CtlCodeOwnerMismatch {
		t.Fatalf("spoofed queue: %v, want code %s", err, CtlCodeOwnerMismatch)
	}

	// Cross-owner access is indistinguishable from a missing job.
	for _, op := range []struct {
		name string
		call func() error
	}{
		{"status", func() error { _, err := bob.Status(id); return err }},
		{"rm", func() error { return bob.Remove(id) }},
		{"hold", func() error { return bob.Hold(id, "mine now") }},
		{"release", func() error { return bob.Release(id) }},
		{"log", func() error { _, err := bob.Log(id); return err }},
		{"stdout", func() error { _, err := bob.Stdout(id); return err }},
		{"trace", func() error { _, err := bob.Trace(id); return err }},
		{"wait", func() error { _, err := bob.Wait(id, time.Second); return err }},
	} {
		err := op.call()
		if !errors.As(err, &ce) || ce.Code != CtlCodeNoSuchJob {
			t.Fatalf("bob %s on alice's job: %v, want code %s", op.name, err, CtlCodeNoSuchJob)
		}
	}

	// Listings are scoped: bob sees nothing, alice sees hers, the admin
	// sees everything.
	if jobs, _ := bob.Queue(); len(jobs) != 0 {
		t.Fatalf("bob sees %d foreign jobs", len(jobs))
	}
	if jobs, _ := alice.Queue(); len(jobs) != 1 {
		t.Fatalf("alice sees %d jobs, want 1", len(jobs))
	}
	if jobs, err := root.Queue(); err != nil || len(jobs) != 1 {
		t.Fatalf("admin queue: %d jobs, err %v", len(jobs), err)
	}

	// Agent-wide ops are admin-only.
	if _, err := alice.Metrics(); !errors.As(err, &ce) || ce.Code != CtlCodeForbidden {
		t.Fatalf("tenant metrics: %v, want code %s", err, CtlCodeForbidden)
	}
	if _, err := alice.Health(); !errors.As(err, &ce) || ce.Code != CtlCodeForbidden {
		t.Fatalf("tenant health: %v, want code %s", err, CtlCodeForbidden)
	}
	if _, err := alice.JournalSnapshot(); !errors.As(err, &ce) || ce.Code != CtlCodeForbidden {
		t.Fatalf("tenant journal.snapshot: %v, want code %s", err, CtlCodeForbidden)
	}
	if _, err := root.Metrics(); err != nil {
		t.Fatalf("admin metrics: %v", err)
	}
	// An unmapped subject is rejected before any op runs.
	ghostCred, err := ca.IssueUser("/O=elsewhere/U=ghost", now, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ghost := NewControlClientAuth(ctl.Addr(), ghostCred)
	defer ghost.Close()
	if _, err := ghost.Queue(); !errors.As(err, &ce) || ce.Code != CtlCodeForbidden {
		t.Fatalf("unmapped subject: %v, want code %s", err, CtlCodeForbidden)
	}
}
