package condorg

import (
	"strings"
	"testing"
	"time"

	"condorg/internal/gram"
)

func TestControlProtocolEndToEnd(t *testing.T) {
	w := newWorld(t, 1)
	ctl, err := NewControlServer(w.agent)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	cli := NewControlClient(ctl.Addr())
	defer cli.Close()

	id, err := cli.Submit(CtlSubmit{Owner: "u", Program: "task", Args: []string{"20ms", "via-ctl"}})
	if err != nil {
		t.Fatal(err)
	}
	info, err := cli.Wait(id, 8*time.Second)
	if err != nil || info.State != Completed {
		t.Fatalf("wait: %v %v", info.State, err)
	}
	jobs, err := cli.Queue()
	if err != nil || len(jobs) != 1 || jobs[0].ID != id {
		t.Fatalf("queue: %v err=%v", jobs, err)
	}
	if st, err := cli.Status(id); err != nil || st.State != Completed {
		t.Fatalf("status: %+v err=%v", st, err)
	}
	log, err := cli.Log(id)
	if err != nil || len(log) == 0 {
		t.Fatalf("log: %v err=%v", log, err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		out, err := cli.Stdout(id)
		if err == nil && strings.Contains(string(out), "via-ctl") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stdout via control: %q err=%v", out, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestControlHoldReleaseRemove(t *testing.T) {
	w := newWorld(t, 1)
	ctl, _ := NewControlServer(w.agent)
	defer ctl.Close()
	cli := NewControlClient(ctl.Addr())
	defer cli.Close()

	id, err := cli.Submit(CtlSubmit{Owner: "u", Program: "task", Args: []string{"5s"}})
	if err != nil {
		t.Fatal(err)
	}
	waitAgentState(t, w.agent, id, Running)
	if err := cli.Hold(id, ""); err != nil {
		t.Fatal(err)
	}
	if st, _ := cli.Status(id); st.State != Held || st.HoldReason != "held by user" {
		t.Fatalf("after hold: %+v", st)
	}
	if err := cli.Release(id); err != nil {
		t.Fatal(err)
	}
	waitAgentState(t, w.agent, id, Running)
	if err := cli.Remove(id); err != nil {
		t.Fatal(err)
	}
	if st, _ := cli.Status(id); st.State != Removed {
		t.Fatalf("after rm: %v", st.State)
	}
}

func TestControlErrors(t *testing.T) {
	w := newWorld(t, 1)
	ctl, _ := NewControlServer(w.agent)
	defer ctl.Close()
	cli := NewControlClient(ctl.Addr())
	defer cli.Close()
	if _, err := cli.Submit(CtlSubmit{Owner: "u"}); err == nil {
		t.Fatal("submit without program accepted")
	}
	if _, err := cli.Status("ghost"); err == nil {
		t.Fatal("status of unknown job succeeded")
	}
	if err := cli.Remove("ghost"); err == nil {
		t.Fatal("rm of unknown job succeeded")
	}
	_ = gram.Program // keep import
}
