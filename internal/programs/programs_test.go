package programs

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"condorg/internal/gram"
)

func run(t *testing.T, name string, args []string, stdin []byte, env map[string]string) (string, string, error) {
	t.Helper()
	rt := NewRuntime()
	var stdout, stderr bytes.Buffer
	err := rt.Run(context.Background(), gram.Program(name), args, stdin, &stdout, &stderr, env)
	return stdout.String(), stderr.String(), err
}

func TestEcho(t *testing.T) {
	out, _, err := run(t, "echo", []string{"hello", "grid"}, nil, nil)
	if err != nil || out != "hello grid\n" {
		t.Fatalf("out=%q err=%v", out, err)
	}
}

func TestCat(t *testing.T) {
	out, _, err := run(t, "cat", nil, []byte("stdin data"), nil)
	if err != nil || out != "stdin data" {
		t.Fatalf("out=%q err=%v", out, err)
	}
}

func TestSleep(t *testing.T) {
	start := time.Now()
	out, _, err := run(t, "sleep", []string{"20ms"}, nil, nil)
	if err != nil || !strings.Contains(out, "slept") {
		t.Fatalf("out=%q err=%v", out, err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("sleep returned early")
	}
	if _, _, err := run(t, "sleep", []string{"not-a-duration"}, nil, nil); err == nil {
		t.Fatal("bad duration accepted")
	}
}

func TestSleepCancellation(t *testing.T) {
	rt := NewRuntime()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	var stdout, stderr bytes.Buffer
	err := rt.Run(ctx, gram.Program("sleep"), []string{"10s"}, nil, &stdout, &stderr, nil)
	if err == nil {
		t.Fatal("cancelled sleep returned nil")
	}
}

func TestEnv(t *testing.T) {
	out, _, err := run(t, "env", nil, nil, map[string]string{"B": "2", "A": "1"})
	if err != nil || out != "A=1\nB=2\n" {
		t.Fatalf("out=%q err=%v", out, err)
	}
}

func TestFail(t *testing.T) {
	_, stderr, err := run(t, "fail", []string{"custom", "reason"}, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "custom reason") {
		t.Fatalf("err=%v", err)
	}
	if !strings.Contains(stderr, "custom reason") {
		t.Fatalf("stderr=%q", stderr)
	}
}

func TestPi(t *testing.T) {
	out, _, err := run(t, "pi", []string{"200000"}, nil, nil)
	if err != nil || !strings.Contains(out, "3.1415") {
		t.Fatalf("out=%q err=%v", out, err)
	}
	if _, _, err := run(t, "pi", []string{"-3"}, nil, nil); err == nil {
		t.Fatal("negative terms accepted")
	}
}

func TestWordcount(t *testing.T) {
	out, _, err := run(t, "wordcount", nil, []byte("one two\nthree\n"), nil)
	if err != nil || out != "2 3 14\n" {
		t.Fatalf("out=%q err=%v", out, err)
	}
}

func TestBurn(t *testing.T) {
	out, _, err := run(t, "burn", []string{"10ms"}, nil, nil)
	if err != nil || !strings.Contains(out, "burned") {
		t.Fatalf("out=%q err=%v", out, err)
	}
	if _, _, err := run(t, "burn", []string{"bogus"}, nil, nil); err == nil {
		t.Fatal("bad duration accepted")
	}
}
