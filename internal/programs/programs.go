// Package programs is the standard program library installed on demo
// execution sites. In the real system a site runs whatever binary GASS
// stages to it; here staged executables are "#!condor <name>" stubs
// resolved against this registry (see the Runtime substitution note in
// DESIGN.md), so every example and CLI session shares one vocabulary of
// workloads.
package programs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"condorg/internal/gram"
)

// Install registers the standard library on a site runtime and returns it.
func Install(rt *gram.FuncRuntime) *gram.FuncRuntime {
	rt.Register("echo", echo)
	rt.Register("cat", cat)
	rt.Register("sleep", sleepProg)
	rt.Register("env", envProg)
	rt.Register("fail", fail)
	rt.Register("pi", pi)
	rt.Register("wordcount", wordcount)
	rt.Register("burn", burn)
	return rt
}

// NewRuntime builds a fresh runtime with the standard library installed.
func NewRuntime() *gram.FuncRuntime {
	return Install(gram.NewFuncRuntime())
}

func echo(_ context.Context, args []string, _ []byte, stdout, _ io.Writer, _ map[string]string) error {
	fmt.Fprintln(stdout, strings.Join(args, " "))
	return nil
}

func cat(_ context.Context, _ []string, stdin []byte, stdout, _ io.Writer, _ map[string]string) error {
	_, err := stdout.Write(stdin)
	return err
}

func sleepProg(ctx context.Context, args []string, _ []byte, stdout, _ io.Writer, _ map[string]string) error {
	d := time.Second
	if len(args) > 0 {
		p, err := time.ParseDuration(args[0])
		if err != nil {
			return fmt.Errorf("sleep: bad duration %q", args[0])
		}
		d = p
	}
	select {
	case <-time.After(d):
		fmt.Fprintf(stdout, "slept %v\n", d)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func envProg(_ context.Context, _ []string, _ []byte, stdout, _ io.Writer, env map[string]string) error {
	keys := make([]string, 0, len(env))
	for k := range env {
		keys = append(keys, k)
	}
	// Stable order for test assertions.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	for _, k := range keys {
		fmt.Fprintf(stdout, "%s=%s\n", k, env[k])
	}
	return nil
}

func fail(_ context.Context, args []string, _ []byte, _, stderr io.Writer, _ map[string]string) error {
	msg := "requested failure"
	if len(args) > 0 {
		msg = strings.Join(args, " ")
	}
	fmt.Fprintln(stderr, msg)
	return errors.New(msg)
}

// pi estimates pi with the Leibniz series; args: [terms].
func pi(ctx context.Context, args []string, _ []byte, stdout, _ io.Writer, _ map[string]string) error {
	terms := 1_000_000
	if len(args) > 0 {
		n, err := strconv.Atoi(args[0])
		if err != nil || n <= 0 {
			return fmt.Errorf("pi: bad term count %q", args[0])
		}
		terms = n
	}
	sum := 0.0
	sign := 1.0
	for i := 0; i < terms; i++ {
		if i%100000 == 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		sum += sign / float64(2*i+1)
		sign = -sign
	}
	fmt.Fprintf(stdout, "pi ~= %.10f (%d terms)\n", 4*sum, terms)
	return nil
}

func wordcount(_ context.Context, _ []string, stdin []byte, stdout, _ io.Writer, _ map[string]string) error {
	lines := 0
	for _, b := range stdin {
		if b == '\n' {
			lines++
		}
	}
	words := len(strings.Fields(string(stdin)))
	fmt.Fprintf(stdout, "%d %d %d\n", lines, words, len(stdin))
	return nil
}

// burn spins the CPU for a wall-clock duration, checking for cancellation.
func burn(ctx context.Context, args []string, _ []byte, stdout, _ io.Writer, _ map[string]string) error {
	d := 100 * time.Millisecond
	if len(args) > 0 {
		p, err := time.ParseDuration(args[0])
		if err != nil {
			return fmt.Errorf("burn: bad duration %q", args[0])
		}
		d = p
	}
	deadline := time.Now().Add(d)
	x := 0.0001
	for time.Now().Before(deadline) {
		for i := 0; i < 10000; i++ {
			x = x*1.0000001 + 0.0000001
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
	fmt.Fprintf(stdout, "burned %v (x=%g)\n", d, x)
	return nil
}
