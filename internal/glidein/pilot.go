// The gatekeeper pilot is the elastic-pool variant of the GlideIn
// bootstrap: instead of a single Startd slot joining a Condor pool, the
// pilot brings up a complete private *GRAM site* (gatekeeper + LRM) inside
// the host allocation and advertises its contact address to the user's
// Collector. The agent's broker then treats the pilot like any other
// schedulable site — §5's delayed binding, but at the granularity the
// Condor-G agent itself schedules at. The same runaway-daemon guards
// apply: the pilot retires itself when its lease expires or when it has
// been idle too long, whether or not the provisioner that launched it is
// still alive.
package glidein

import (
	"context"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"condorg/internal/condor"
	"condorg/internal/gram"
	"condorg/internal/gridftp"
	"condorg/internal/gsi"
	"condorg/internal/lrm"
	"condorg/internal/wire"
)

// GatekeeperPilotProgram is the name the elastic pilot dispatches to in a
// host site's GRAM runtime.
const GatekeeperPilotProgram = "glidein-gatekeeper"

// testPilotGatekeeperFaults, when non-nil, is installed on every pilot
// gatekeeper brought up by InstallGatekeeperPilot. Tests use it to slow
// the staging plane enough to retire a pilot deterministically while a
// job is mid-stage-in; production callers leave it nil.
var testPilotGatekeeperFaults *wire.Faults

// Collector ad attributes published by gatekeeper pilots. The provisioner
// reads these to learn pilot contact addresses and idleness.
const (
	AdAttrGlideIn    = "GlideIn"           // "true" on every glidein ad
	AdAttrSite       = "GlideInSite"       // host site label the pilot runs on
	AdAttrGatekeeper = "GlideInGatekeeper" // pilot's own gatekeeper address
	AdAttrActiveJobs = "ActiveJobs"        // non-terminal jobs on the pilot site
)

// gkPilotConfig is the decoded argument vector of a gatekeeper pilot job.
type gkPilotConfig struct {
	collectorAddr string
	repoAddr      string
	slotName      string
	siteLabel     string
	cpus          int
	memoryMB      int64
	lease         time.Duration
	idle          time.Duration
	advertise     time.Duration
}

func gkPilotArgs(cfg gkPilotConfig) []string {
	return []string{
		cfg.collectorAddr, cfg.repoAddr, cfg.slotName, cfg.siteLabel,
		strconv.Itoa(cfg.cpus), strconv.FormatInt(cfg.memoryMB, 10),
		cfg.lease.String(), cfg.idle.String(), cfg.advertise.String(),
	}
}

func parseGkPilotArgs(args []string) (gkPilotConfig, error) {
	if len(args) != 9 {
		return gkPilotConfig{}, fmt.Errorf("gatekeeper pilot wants 9 args, got %d", len(args))
	}
	cpus, err := strconv.Atoi(args[4])
	if err != nil || cpus <= 0 {
		return gkPilotConfig{}, fmt.Errorf("bad cpus %q", args[4])
	}
	mem, err := strconv.ParseInt(args[5], 10, 64)
	if err != nil {
		return gkPilotConfig{}, fmt.Errorf("bad memory %q", args[5])
	}
	lease, err := time.ParseDuration(args[6])
	if err != nil {
		return gkPilotConfig{}, fmt.Errorf("bad lease %q", args[6])
	}
	idle, err := time.ParseDuration(args[7])
	if err != nil {
		return gkPilotConfig{}, fmt.Errorf("bad idle %q", args[7])
	}
	adv, err := time.ParseDuration(args[8])
	if err != nil {
		return gkPilotConfig{}, fmt.Errorf("bad advertise %q", args[8])
	}
	return gkPilotConfig{
		collectorAddr: args[0],
		repoAddr:      args[1],
		slotName:      args[2],
		siteLabel:     args[3],
		cpus:          cpus,
		memoryMB:      mem,
		lease:         lease,
		idle:          idle,
		advertise:     adv,
	}, nil
}

// InstallGatekeeperPilot registers the elastic pilot program on a host
// site's GRAM runtime. jobRuntime is the program registry user jobs
// execute from once they are bound to the pilot's private gatekeeper —
// the host site installs the same runtime it serves direct submissions
// with, so a job runs identically either way.
func InstallGatekeeperPilot(siteRuntime *gram.FuncRuntime, jobRuntime gram.Runtime, anchor *gsi.Certificate, cred *gsi.Credential, clock gsi.Clock) {
	siteRuntime.Register(GatekeeperPilotProgram, func(ctx context.Context, args []string, _ []byte, stdout, stderr io.Writer, _ map[string]string) error {
		cfg, err := parseGkPilotArgs(args)
		if err != nil {
			fmt.Fprintf(stderr, "glidein: %v\n", err)
			return err
		}
		// Step 1: retrieve the Condor executables from the central
		// repository (GSI-authenticated GridFTP), same path and cache as
		// the Startd bootstrap.
		ftp := gridftp.NewClient(cred, clock, 2)
		defer ftp.Close()
		blob, cached, err := fetchStartd(ftp, cfg.repoAddr)
		if err != nil {
			fmt.Fprintf(stderr, "glidein: fetch binaries: %v\n", err)
			return fmt.Errorf("glidein: fetch binaries: %w", err)
		}
		if cached {
			fmt.Fprintf(stdout, "glidein: reused cached %d-byte startd payload\n", len(blob))
		} else {
			fmt.Fprintf(stdout, "glidein: fetched %d-byte startd payload\n", len(blob))
		}

		// Step 2: bring up the private gatekeeper inside the allocation.
		stateDir, err := os.MkdirTemp("", "glidein-gk-")
		if err != nil {
			return fmt.Errorf("glidein: state dir: %w", err)
		}
		defer os.RemoveAll(stateDir)
		cluster, err := lrm.NewCluster(lrm.Config{Name: cfg.slotName, Cpus: cfg.cpus})
		if err != nil {
			return fmt.Errorf("glidein: cluster: %w", err)
		}
		site, err := gram.NewSite(gram.SiteConfig{
			Name:             cfg.slotName,
			Anchor:           anchor,
			Cluster:          cluster,
			Runtime:          jobRuntime,
			StateDir:         stateDir,
			Clock:            clock,
			GatekeeperFaults: testPilotGatekeeperFaults,
		})
		if err != nil {
			cluster.Close()
			return fmt.Errorf("glidein: gatekeeper: %w", err)
		}
		fmt.Fprintf(stdout, "glidein: gatekeeper up at %s\n", site.GatekeeperAddr())

		// Step 3: advertise the gatekeeper to the user's pool and watch
		// the self-retirement guards. Single goroutine: the loop IS the
		// advertiser, so stopping the loop stops re-advertisement before
		// the invalidation below — an in-flight ad can never land after
		// it and resurrect the slot.
		cc := condor.NewCollectorClient(cfg.collectorAddr, cred, clock)
		defer cc.Close()
		advertise := func() {
			ad := condor.MachineAd(cfg.slotName, "x86_64", cfg.memoryMB, site.GatekeeperAddr())
			ad.SetString(AdAttrGlideIn, "true")
			ad.SetString(AdAttrSite, cfg.siteLabel)
			ad.SetString(AdAttrGatekeeper, site.GatekeeperAddr())
			ad.SetInt(AdAttrActiveJobs, int64(site.ActiveJobs()))
			cc.Advertise(ad, 3*cfg.advertise)
		}
		advertise()
		start := time.Now()
		lastBusy := start
		ticker := time.NewTicker(cfg.advertise)
		defer ticker.Stop()
		reason := ""
		for reason == "" {
			select {
			case <-ctx.Done():
				reason = "allocation reclaimed by site"
			case <-ticker.C:
				if time.Since(start) >= cfg.lease {
					reason = "lease expired"
					break
				}
				if site.ActiveJobs() > 0 {
					lastBusy = time.Now()
				} else if time.Since(lastBusy) >= cfg.idle {
					reason = "idle timeout"
					break
				}
				advertise()
			}
		}
		ticker.Stop()
		cc.Invalidate("Machine", cfg.slotName)
		// Closing the site kills any job still on it; the agent classifies
		// those SiteLost and resubmits elsewhere exactly-once.
		site.Close()
		fmt.Fprintf(stdout, "glidein: shut down: %s\n", reason)
		return nil
	})
}
