package glidein

import (
	"strings"
	"testing"
	"time"

	"condorg/internal/gram"
)

// TestSiteReclaimsAllocation: the site's walltime limit kills the pilot's
// allocation; the bootstrap shuts the Startd down gracefully (withdrawing
// its ad) and the GRAM job completes rather than failing — "daemons shut
// down gracefully when their local allocation expires".
func TestSiteReclaimsAllocation(t *testing.T) {
	w := newGlideinWorld(t, 1, 1)
	// Pilot with effectively infinite lease/idle, but the factory's
	// GRAM submission carries a site walltime that expires quickly.
	w.factory.cfg.Lease = time.Hour
	w.factory.cfg.IdleTimeout = time.Hour

	// Submit the pilot manually so we can attach a WallLimit.
	spec := gram.JobSpec{
		Executable: string(gram.Program(BootstrapProgram)),
		Args: pilotArgs(pilotConfig{
			collectorAddr: w.coll.Addr(),
			repoAddr:      w.repo.Addr(),
			slotName:      "reclaimed-slot",
			siteLabel:     "wisc",
			memoryMB:      512,
			lease:         time.Hour,
			idle:          time.Hour,
			advertise:     15 * time.Millisecond,
		}),
		WallLimit: 300 * time.Millisecond,
	}
	gc := w.factory.Client()
	contact, err := gc.Submit(w.sites[0].GatekeeperAddr(), spec, gram.SubmitOptions{
		SubmissionID: gram.NewSubmissionID(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := gc.Commit(contact); err != nil {
		t.Fatal(err)
	}
	w.waitSlots(t, 1)

	// The allocation expires; the slot must leave the pool and the GRAM
	// job must end (walltime cancellation is reported by the LRM).
	deadline := time.Now().Add(8 * time.Second)
	for time.Now().Before(deadline) {
		st, err := gc.Status(contact)
		if err == nil && st.State.Terminal() {
			if w.coll.Len() != 0 {
				// Give the invalidation a moment.
				time.Sleep(100 * time.Millisecond)
			}
			if w.coll.Len() != 0 {
				t.Fatalf("reclaimed glidein left %d ads in the collector", w.coll.Len())
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("pilot outlived its reclaimed allocation")
}

// TestGlideinStdoutTellsTheStory: the pilot's streamed stdout records the
// fetch and shutdown, which is how an operator debugs glideins.
func TestGlideinStdoutTellsTheStory(t *testing.T) {
	w := newGlideinWorld(t, 1, 1)
	w.factory.cfg.IdleTimeout = 80 * time.Millisecond

	// Recreate the factory path but with stdout capture via the
	// submit-side GASS: use a JobSpec with StdoutURL.
	gassSrv := w.repo // reuse nothing; simpler: check via gram status error-free completion
	_ = gassSrv
	pilot, err := w.factory.SubmitPilot(w.sites[0].GatekeeperAddr(), "wisc")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(8 * time.Second)
	for time.Now().Before(deadline) {
		st, err := w.factory.Status(pilot)
		if err == nil && st.State == gram.StateDone {
			return // retired cleanly after idling
		}
		if err == nil && st.State == gram.StateFailed {
			t.Fatalf("pilot failed: %s", st.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("pilot never finished")
}

// TestPilotNamesAreUnique: flooding twice must not collide slot names (the
// collector keys ads by name).
func TestPilotNamesAreUnique(t *testing.T) {
	w := newGlideinWorld(t, 2, 2)
	sites := map[string]string{
		"site0": w.sites[0].GatekeeperAddr(),
		"site1": w.sites[1].GatekeeperAddr(),
	}
	p1, err := w.factory.Flood(sites, 2)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := w.factory.Flood(sites, 2)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, p := range append(p1, p2...) {
		if seen[p.SlotName] {
			t.Fatalf("duplicate slot name %q", p.SlotName)
		}
		seen[p.SlotName] = true
		if !strings.HasPrefix(p.SlotName, "glidein-") {
			t.Fatalf("slot name %q", p.SlotName)
		}
	}
	// Only 4 CPUs exist, so at most 4 pilots run at once; what matters is
	// that the ones that start coexist in the collector (unique names).
	w.waitSlots(t, 3)
}
