package glidein

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"condorg/internal/condor"
	"condorg/internal/gram"
	"condorg/internal/gsi"
	"condorg/internal/obs"
)

// SiteRegistry is where the provisioner reports pool membership: pilots
// that come up are registered as schedulable sites, retired pilots are
// withdrawn. broker.Adaptive satisfies it.
type SiteRegistry interface {
	RegisterSite(addr string)
	RemoveSite(addr string)
}

// StageStats reports the agent's executable-cache outcomes for one site
// address. The provisioner retires cache-cold pilots first, so warmed
// caches survive a scale-down.
type StageStats func(addr string) (hits, misses int64)

// ProvisionerConfig configures the elastic autoscaler.
type ProvisionerConfig struct {
	// HostSites maps a label to the gatekeeper address of a real grid
	// site pilots may be submitted to.
	HostSites map[string]string
	// CollectorAddr is the pool collector pilots advertise to.
	CollectorAddr string
	// RepoAddr is the GridFTP repository holding the daemon payload.
	RepoAddr string
	// Credential and Clock authenticate GRAM submissions.
	Credential *gsi.Credential
	Clock      gsi.Clock
	// Demand reports the current queue depth the pool should absorb
	// (Agent.Backlog). Required.
	Demand func() int
	// HostHealthy vetoes host sites whose breaker is open (fed from the
	// agent's faultclass.BreakerSet snapshots). Nil means every host is
	// eligible.
	HostHealthy func(gkAddr string) bool
	// Stage, when set, orders scale-down victims cache-coldest first.
	Stage StageStats
	// Registry learns pilot gatekeepers as they come up. Optional.
	Registry SiteRegistry
	// SiteRetired, when set, is told each time a pilot's gatekeeper is
	// confirmed gone for good (its GRAM job reached a terminal state).
	// Wire it to Agent.SiteRetired so jobs still bound to the dead pilot
	// resubmit elsewhere instead of waiting out a reconnect that can
	// never happen.
	SiteRetired func(addr string)
	// MinPilots/MaxPilots clamp the pool size. JobsPerPilot is how much
	// backlog one pilot is expected to absorb (default 4).
	MinPilots    int
	MaxPilots    int
	JobsPerPilot int
	// Interval paces reconciliation ticks (default 1s).
	Interval time.Duration
	// Lease, IdleTimeout, AdvertiseInterval, PilotCpus, MemoryMB and
	// Delegate parameterize the pilots themselves.
	Lease             time.Duration
	IdleTimeout       time.Duration
	AdvertiseInterval time.Duration
	PilotCpus         int
	MemoryMB          int64
	Delegate          time.Duration
	// Obs receives pool metrics (nil-safe).
	Obs *obs.Registry
}

// pilotState tracks one submitted pilot through its life.
type pilotState struct {
	slot      string
	hostSite  string // label
	contact   gram.JobContact
	gkAddr    string // learned from the collector ad; "" until up
	active    int64  // last advertised ActiveJobs
	retiring  bool
	marked    time.Time // when the scale-down decision was made
	cancelled bool      // the retirement cancel has been issued
}

// PilotStatus is the externally visible snapshot of one pilot.
type PilotStatus struct {
	Slot       string `json:"slot"`
	HostSite   string `json:"host_site"`
	Gatekeeper string `json:"gatekeeper,omitempty"`
	ActiveJobs int64  `json:"active_jobs"`
	State      string `json:"state"` // pending | up | retiring
}

// PoolStatus is the externally visible snapshot of the pool.
type PoolStatus struct {
	Target    int           `json:"target"`
	Demand    int           `json:"demand"`
	Submitted int64         `json:"submitted_total"`
	Retired   int64         `json:"retired_total"`
	Pilots    []PilotStatus `json:"pilots"`
}

// Provisioner is the elastic GlideIn autoscaler: a reconciliation loop
// that sizes a pool of gatekeeper pilots to the agent's backlog, scaling
// up onto healthy host sites and retiring idle pilots. Every pilot it
// launches carries the lease/idle self-retirement guards, so a crashed or
// partitioned provisioner can never leak daemons — the pool drains itself.
type Provisioner struct {
	cfg ProvisionerConfig
	gc  *gram.Client
	cc  *condor.CollectorClient

	mu     sync.Mutex
	n      int
	pilots []*pilotState
	target int
	demand int

	submitted *obs.Counter
	retired   *obs.Counter
	upEvents  *obs.Counter
	downEv    *obs.Counter

	stopCh chan struct{}
	wg     sync.WaitGroup
}

// NewProvisioner validates cfg and creates a stopped provisioner; call
// Start to begin reconciling.
func NewProvisioner(cfg ProvisionerConfig) (*Provisioner, error) {
	if len(cfg.HostSites) == 0 {
		return nil, fmt.Errorf("glidein: provisioner needs at least one host site")
	}
	if cfg.Demand == nil {
		return nil, fmt.Errorf("glidein: provisioner needs a Demand source")
	}
	if cfg.JobsPerPilot <= 0 {
		cfg.JobsPerPilot = 4
	}
	if cfg.MaxPilots <= 0 {
		cfg.MaxPilots = 2 * len(cfg.HostSites)
	}
	if cfg.MinPilots < 0 {
		cfg.MinPilots = 0
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.PilotCpus <= 0 {
		cfg.PilotCpus = 4
	}
	if cfg.MemoryMB <= 0 {
		cfg.MemoryMB = 512
	}
	if cfg.Lease <= 0 {
		cfg.Lease = time.Hour
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = time.Minute
	}
	if cfg.AdvertiseInterval <= 0 {
		cfg.AdvertiseInterval = 100 * time.Millisecond
	}
	p := &Provisioner{
		cfg:       cfg,
		gc:        gram.NewClient(cfg.Credential, cfg.Clock),
		cc:        condor.NewCollectorClient(cfg.CollectorAddr, cfg.Credential, cfg.Clock),
		submitted: cfg.Obs.Counter("glidein_pilots_submitted_total"),
		retired:   cfg.Obs.Counter("glidein_pilots_retired_total"),
		upEvents:  cfg.Obs.Counter(obs.Key("glidein_scale_events_total", "dir", "up")),
		downEv:    cfg.Obs.Counter(obs.Key("glidein_scale_events_total", "dir", "down")),
	}
	cfg.Obs.AddCollector(func(set func(name string, v float64)) {
		p.mu.Lock()
		set("glidein_pool_size", float64(len(p.pilots)))
		set("glidein_pool_target", float64(p.target))
		p.mu.Unlock()
	})
	return p, nil
}

// Client exposes the underlying GRAM client (for timeouts in tests).
func (p *Provisioner) Client() *gram.Client { return p.gc }

// Start launches the reconciliation loop.
func (p *Provisioner) Start() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopCh != nil {
		return
	}
	p.stopCh = make(chan struct{})
	p.wg.Add(1)
	go p.run(p.stopCh)
}

func (p *Provisioner) run(stop chan struct{}) {
	defer p.wg.Done()
	ticker := time.NewTicker(p.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			p.tick()
		}
	}
}

// tick is one reconciliation pass: learn pilot contacts from the
// collector, reap pilots that terminated, then scale toward the target.
// pilotState fields are only mutated under p.mu (Status reads them there);
// every remote call happens with the lock released.
func (p *Provisioner) tick() {
	type adInfo struct {
		gk     string
		active int64
	}
	ads := map[string]adInfo{}
	if got, err := p.cc.Query("Machine", AdAttrGlideIn+` == "true"`); err == nil {
		for _, ad := range got {
			ads[ad.EvalString("Name", "")] = adInfo{
				gk:     ad.EvalString(AdAttrGatekeeper, ""),
				active: ad.EvalInt(AdAttrActiveJobs, 0),
			}
		}
	}

	// Learn addresses and idleness from the soft-state ads.
	p.mu.Lock()
	pilots := append([]*pilotState(nil), p.pilots...)
	var newSites []string
	for _, ps := range pilots {
		if info, ok := ads[ps.slot]; ok {
			if ps.gkAddr == "" && info.gk != "" {
				ps.gkAddr = info.gk
				newSites = append(newSites, info.gk)
			}
			ps.active = info.active
		}
	}
	p.mu.Unlock()
	if p.cfg.Registry != nil {
		for _, gk := range newSites {
			p.cfg.Registry.RegisterSite(gk)
		}
	}

	// Reap pilots whose GRAM job reached a terminal state (self-retired
	// via lease/idle, cancelled, or lost with their host site).
	live := pilots[:0]
	for _, ps := range pilots {
		st, err := p.gc.Status(ps.contact)
		p.mu.Lock()
		retiring, gk := ps.retiring, ps.gkAddr
		p.mu.Unlock()
		if err == nil && !st.State.Terminal() {
			live = append(live, ps)
			continue
		}
		if err != nil && !retiring {
			// Unreachable but not known dead (host partition): keep it;
			// its own lease guard bounds how long it can linger.
			live = append(live, ps)
			continue
		}
		if gk != "" {
			if p.cfg.Registry != nil {
				p.cfg.Registry.RemoveSite(gk)
			}
			// The pilot exits only after closing its gatekeeper, so any
			// job still bound there can never finish: tell the agent.
			if p.cfg.SiteRetired != nil {
				p.cfg.SiteRetired(gk)
			}
		}
		p.retired.Inc()
	}

	// Finish graceful retirements. The scale-down mark deregistered the
	// pilot, so no new work binds to it — but a job bound just before the
	// mark may only now be surfacing in the pilot's ActiveJobs ad. Cancel
	// only once a post-mark advertisement round still shows the pilot
	// idle; a busy pilot keeps running until it drains (or its own
	// lease/idle guard fires).
	grace := 2 * p.cfg.AdvertiseInterval
	var cancels []gram.JobContact
	n := 0 // non-retiring pilots: deregistered ones take no new work
	p.mu.Lock()
	for _, ps := range live {
		if ps.retiring && !ps.cancelled && ps.active == 0 && time.Since(ps.marked) >= grace {
			ps.cancelled = true
			cancels = append(cancels, ps.contact)
		}
		if !ps.retiring {
			n++
		}
	}
	p.mu.Unlock()
	for _, contact := range cancels {
		p.gc.Cancel(contact)
	}

	demand := p.cfg.Demand()
	target := (demand + p.cfg.JobsPerPilot - 1) / p.cfg.JobsPerPilot
	if target < p.cfg.MinPilots {
		target = p.cfg.MinPilots
	}
	if target > p.cfg.MaxPilots {
		target = p.cfg.MaxPilots
	}

	if n < target {
		live = append(live, p.scaleUp(target-n)...)
	} else if n > target {
		p.scaleDown(live, n-target)
	}

	p.mu.Lock()
	p.pilots = append(p.pilots[:0], live...)
	p.target = target
	p.demand = demand
	p.mu.Unlock()
}

// scaleUp submits n pilots round-robin across healthy host sites.
func (p *Provisioner) scaleUp(n int) []*pilotState {
	labels := make([]string, 0, len(p.cfg.HostSites))
	for label, gk := range p.cfg.HostSites {
		if p.cfg.HostHealthy == nil || p.cfg.HostHealthy(gk) {
			labels = append(labels, label)
		}
	}
	if len(labels) == 0 {
		return nil
	}
	sort.Strings(labels)
	var out []*pilotState
	for i := 0; i < n; i++ {
		label := labels[i%len(labels)]
		p.mu.Lock()
		p.n++
		slot := fmt.Sprintf("glidein-gk-%s-%d", label, p.n)
		p.mu.Unlock()
		spec := gram.JobSpec{
			Executable: string(gram.Program(GatekeeperPilotProgram)),
			Args: gkPilotArgs(gkPilotConfig{
				collectorAddr: p.cfg.CollectorAddr,
				repoAddr:      p.cfg.RepoAddr,
				slotName:      slot,
				siteLabel:     label,
				cpus:          p.cfg.PilotCpus,
				memoryMB:      p.cfg.MemoryMB,
				lease:         p.cfg.Lease,
				idle:          p.cfg.IdleTimeout,
				advertise:     p.cfg.AdvertiseInterval,
			}),
		}
		contact, err := p.gc.Submit(p.cfg.HostSites[label], spec, gram.SubmitOptions{
			SubmissionID: gram.NewSubmissionID(),
			Delegate:     p.cfg.Delegate,
		})
		if err != nil {
			continue
		}
		if err := p.gc.Commit(contact); err != nil {
			continue
		}
		p.submitted.Inc()
		p.upEvents.Inc()
		out = append(out, &pilotState{slot: slot, hostSite: label, contact: contact})
	}
	return out
}

// scaleDown marks up to n idle pilots for retirement, cache-coldest
// first. The site registration is withdrawn immediately, so the broker
// stops binding new work to them; the actual cancel waits in tick until a
// post-mark advertisement confirms the pilot really is idle — the ad the
// victim was chosen by may predate a job that just landed on it.
func (p *Provisioner) scaleDown(live []*pilotState, n int) {
	var victims []*pilotState
	for _, ps := range live {
		if !ps.retiring && ps.gkAddr != "" && ps.active == 0 {
			victims = append(victims, ps)
		}
	}
	if p.cfg.Stage != nil {
		sort.SliceStable(victims, func(i, j int) bool {
			hi, _ := p.cfg.Stage(victims[i].gkAddr)
			hj, _ := p.cfg.Stage(victims[j].gkAddr)
			return hi < hj
		})
	}
	if len(victims) > n {
		victims = victims[:n]
	}
	for _, ps := range victims {
		if p.cfg.Registry != nil {
			p.cfg.Registry.RemoveSite(ps.gkAddr)
		}
		p.downEv.Inc()
	}
	p.mu.Lock()
	for _, ps := range victims {
		ps.retiring = true
		ps.marked = time.Now()
	}
	p.mu.Unlock()
}

// Status snapshots the pool.
func (p *Provisioner) Status() PoolStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := PoolStatus{
		Target:    p.target,
		Demand:    p.demand,
		Submitted: p.submitted.Value(),
		Retired:   p.retired.Value(),
	}
	for _, ps := range p.pilots {
		state := "pending"
		switch {
		case ps.retiring:
			state = "retiring"
		case ps.gkAddr != "":
			state = "up"
		}
		st.Pilots = append(st.Pilots, PilotStatus{
			Slot:       ps.slot,
			HostSite:   ps.hostSite,
			Gatekeeper: ps.gkAddr,
			ActiveJobs: ps.active,
			State:      state,
		})
	}
	return st
}

// Stop halts reconciliation without touching running pilots — their
// lease/idle guards retire them on their own schedule.
func (p *Provisioner) Stop() {
	p.mu.Lock()
	stop := p.stopCh
	p.stopCh = nil
	p.mu.Unlock()
	if stop != nil {
		close(stop)
		p.wg.Wait()
	}
}

// Drain stops reconciliation and cancels every pilot immediately.
func (p *Provisioner) Drain() {
	p.Stop()
	p.mu.Lock()
	pilots := append([]*pilotState(nil), p.pilots...)
	p.pilots = nil
	p.mu.Unlock()
	for _, ps := range pilots {
		if ps.gkAddr != "" && p.cfg.Registry != nil {
			p.cfg.Registry.RemoveSite(ps.gkAddr)
		}
		p.gc.Cancel(ps.contact)
	}
}

// Close releases clients; call after Stop/Drain.
func (p *Provisioner) Close() {
	p.gc.Close()
	p.cc.Close()
}
