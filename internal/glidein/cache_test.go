package glidein

import (
	"bytes"
	"testing"

	"condorg/internal/gridftp"
)

// TestStartdFetchCache: the second pilot on a machine reuses the cached
// daemon payload, and publishing a new payload (different content
// identity) busts the cache rather than resurrecting the old daemon.
func TestStartdFetchCache(t *testing.T) {
	repo, err := gridftp.NewServer(t.TempDir(), gridftp.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	ftp := gridftp.NewClient(nil, nil, 2)
	defer ftp.Close()

	v1 := []byte("condor_startd v6.3 payload")
	if err := ftp.Put(repo.Addr(), StartdBlob, v1); err != nil {
		t.Fatal(err)
	}
	blob, cached, err := fetchStartd(ftp, repo.Addr())
	if err != nil || cached || !bytes.Equal(blob, v1) {
		t.Fatalf("first fetch: cached=%v err=%v blob=%q", cached, err, blob)
	}
	blob, cached, err = fetchStartd(ftp, repo.Addr())
	if err != nil || !cached || !bytes.Equal(blob, v1) {
		t.Fatalf("second fetch: cached=%v err=%v", cached, err)
	}

	// New payload, new identity: the cache must miss.
	v2 := []byte("condor_startd v6.4 payload with fixes")
	if err := ftp.Put(repo.Addr(), StartdBlob, v2); err != nil {
		t.Fatal(err)
	}
	blob, cached, err = fetchStartd(ftp, repo.Addr())
	if err != nil || cached || !bytes.Equal(blob, v2) {
		t.Fatalf("fetch after publish: cached=%v err=%v blob=%q", cached, err, blob)
	}
	// And the new identity is itself cached now.
	if _, cached, _ := fetchStartd(ftp, repo.Addr()); !cached {
		t.Fatal("new payload was not cached")
	}
}
