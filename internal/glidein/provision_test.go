package glidein

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"condorg/internal/broker"
	"condorg/internal/condor"
	"condorg/internal/condorg"
	"condorg/internal/faultclass"
	"condorg/internal/gram"
	"condorg/internal/gridftp"
	"condorg/internal/lrm"
	"condorg/internal/wire"
)

// elasticWorld wires the elastic-pool topology: a user collector, a binary
// repository, N real host sites whose runtimes carry the gatekeeper pilot,
// and a Condor-G agent in deferred-binding mode whose Adaptive broker
// learns pilot gatekeepers as the provisioner brings them up.
type elasticWorld struct {
	coll     *condor.Collector
	repo     *gridftp.Server
	hosts    map[string]string // label -> host gatekeeper address
	agent    *condorg.Agent
	adaptive *broker.Adaptive

	mu          sync.Mutex
	completions map[string]int
}

// paddedWork returns a runnable "work" program blob padded to n bytes, so
// staging spans several chunks.
func paddedWork(n int) []byte {
	prog := gram.Program("work")
	if n <= len(prog) {
		return prog
	}
	pad := make([]byte, n-len(prog))
	for i := range pad {
		pad[i] = '#'
	}
	return append(prog, pad...)
}

func newElasticWorld(t *testing.T, numHosts int, seed int64) *elasticWorld {
	t.Helper()
	w := &elasticWorld{hosts: map[string]string{}, completions: map[string]int{}}
	var err error
	w.coll, err = condor.NewCollector(condor.CollectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.coll.Close() })

	w.repo, err = gridftp.NewServer(t.TempDir(), gridftp.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.repo.Close() })
	ftp := gridftp.NewClient(nil, nil, 2)
	defer ftp.Close()
	if err := ftp.Put(w.repo.Addr(), StartdBlob, []byte("condor_startd v6.3 payload")); err != nil {
		t.Fatal(err)
	}

	// User job registry shared by every pilot gatekeeper: "work" counts
	// COMPLETED executions per job key, so an incarnation killed by a
	// retiring pilot never counts — the counters measure the exactly-once
	// guarantee directly.
	jobRT := gram.NewFuncRuntime()
	jobRT.Register("work", func(ctx context.Context, args []string, _ []byte, stdout, _ io.Writer, _ map[string]string) error {
		d := 30 * time.Millisecond
		if len(args) > 1 {
			if p, err := time.ParseDuration(args[1]); err == nil {
				d = p
			}
		}
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return ctx.Err()
		}
		w.mu.Lock()
		w.completions[args[0]]++
		w.mu.Unlock()
		fmt.Fprintf(stdout, "done %s\n", args[0])
		return nil
	})

	for i := 0; i < numHosts; i++ {
		label := fmt.Sprintf("host%d", i)
		cluster, err := lrm.NewCluster(lrm.Config{Name: label, Cpus: 8})
		if err != nil {
			t.Fatal(err)
		}
		siteRT := gram.NewFuncRuntime()
		InstallGatekeeperPilot(siteRT, jobRT, nil, nil, nil)
		site, err := gram.NewSite(gram.SiteConfig{
			Name:     label,
			Cluster:  cluster,
			Runtime:  siteRT,
			StateDir: t.TempDir(),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(site.Close)
		w.hosts[label] = site.GatekeeperAddr()
	}

	w.adaptive = broker.NewAdaptive(nil)
	w.agent, err = condorg.NewAgent(condorg.AgentConfig{
		StateDir:     t.TempDir(),
		Selector:     w.adaptive,
		DeferBinding: true,
		Probe:        condorg.ProbeOptions{Interval: 30 * time.Millisecond},
		Retry:        condorg.RetryOptions{MaxResubmits: 20},
		Stage:        condorg.StageOptions{ChunkSize: 1 << 10},
		Breaker: faultclass.BreakerConfig{
			Threshold: 1,
			BaseDelay: 25 * time.Millisecond,
			MaxDelay:  200 * time.Millisecond,
			Seed:      seed,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.agent.Close)
	return w
}

// newProvisioner builds a fast-paced provisioner over the world's hosts;
// mod tweaks the config before construction.
func (w *elasticWorld) newProvisioner(t *testing.T, mod func(*ProvisionerConfig)) *Provisioner {
	t.Helper()
	cfg := ProvisionerConfig{
		HostSites:     w.hosts,
		CollectorAddr: w.coll.Addr(),
		RepoAddr:      w.repo.Addr(),
		Demand:        w.agent.Backlog,
		Registry:      w.adaptive,
		SiteRetired:   w.agent.SiteRetired,
		Stage: func(addr string) (int64, int64) {
			for _, row := range w.agent.PipelineHealth() {
				if row.Site == addr {
					return int64(row.StageHits), int64(row.StageMisses)
				}
			}
			return 0, 0
		},
		JobsPerPilot:      3,
		Interval:          40 * time.Millisecond,
		Lease:             30 * time.Second,
		IdleTimeout:       500 * time.Millisecond,
		AdvertiseInterval: 40 * time.Millisecond,
		PilotCpus:         4,
		Obs:               w.agent.Obs(),
	}
	if mod != nil {
		mod(&cfg)
	}
	prov, err := NewProvisioner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prov.Client().SetTimeouts(300*time.Millisecond, 3)
	t.Cleanup(func() {
		prov.Drain()
		prov.Close()
	})
	return prov
}

// checkExactlyOnce asserts the chaos-test completion accounting for one
// job: it finished, it really ran, and every extra completed run is backed
// by a recorded resubmission or migration.
func (w *elasticWorld) checkExactlyOnce(t *testing.T, key, id string) condorg.JobInfo {
	t.Helper()
	info, err := w.agent.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != condorg.Completed {
		t.Fatalf("job %s (%s) finished as %v (err=%q)\nlog: %+v", id, key, info.State, info.Error, info.Log)
	}
	w.mu.Lock()
	n := w.completions[key]
	w.mu.Unlock()
	if n < 1 {
		t.Fatalf("job %s (%s) reported Completed but never ran to completion (lost work)", id, key)
	}
	if n > info.Resubmits+info.Migrations+1 {
		t.Fatalf("job %s (%s) ran to completion %d times with only %d resubmits / %d migrations — double execution",
			id, key, n, info.Resubmits, info.Migrations)
	}
	if info.Resubmits == 0 && info.Migrations == 0 && n != 1 {
		t.Fatalf("job %s (%s) was never resubmitted yet ran to completion %d times", id, key, n)
	}
	return info
}

// runElasticSoak drives one seeded elasticity schedule: a 10× load swing
// (burst → tenth of the burst → zero) with the pool required to follow the
// target within a bounded lag, every pilot required to retire on its own,
// and the usual zero-lost / zero-double accounting at the end.
func runElasticSoak(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	w := newElasticWorld(t, 3, seed)
	const maxPilots = 6
	prov := w.newProvisioner(t, func(cfg *ProvisionerConfig) {
		cfg.MaxPilots = maxPilots
	})
	prov.Start()

	// High phase: a burst the pool must scale up for. All jobs share one
	// executable, so every pilot's gatekeeper cache is exercised: one
	// transfer per pilot, hits after.
	const high = 30
	exe := paddedWork(16 << 10)
	ids := map[string]string{}
	for i := 0; i < high; i++ {
		key := fmt.Sprintf("hi%d", i)
		d := time.Duration(80+rng.Intn(120)) * time.Millisecond
		id, err := w.agent.Submit(condorg.SubmitRequest{
			Owner:      "u",
			Executable: exe,
			Args:       []string{key, d.String()},
		})
		if err != nil {
			t.Fatal(err)
		}
		ids[key] = id
	}

	// Bounded upward lag: the pool must grow toward the clamped target
	// while the burst is outstanding.
	deadline := time.Now().Add(15 * time.Second)
	for {
		st := prov.Status()
		if len(st.Pilots) > maxPilots {
			t.Fatalf("pool %d pilots exceeds MaxPilots %d", len(st.Pilots), maxPilots)
		}
		if len(st.Pilots) >= 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never followed the load swing up: %+v", prov.Status())
		}
		time.Sleep(20 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	if err := w.agent.WaitAll(ctx); err != nil {
		t.Fatalf("high-phase queue never drained: %v\npool: %+v", err, prov.Status())
	}

	// Low phase: a tenth of the burst. The (possibly shrunken) pool must
	// still pick these up — deferred binding parks them until a pilot is up.
	const low = high / 10
	for i := 0; i < low; i++ {
		key := fmt.Sprintf("lo%d", i)
		id, err := w.agent.Submit(condorg.SubmitRequest{
			Owner:      "u",
			Executable: exe,
			Args:       []string{key, (50 * time.Millisecond).String()},
		})
		if err != nil {
			t.Fatal(err)
		}
		ids[key] = id
	}
	if err := w.agent.WaitAll(ctx); err != nil {
		t.Fatalf("low-phase queue never drained: %v\npool: %+v", err, prov.Status())
	}

	// Swing to zero: with no demand, every pilot must retire through the
	// idle guard and the collector must drain — no runaway daemons.
	deadline = time.Now().Add(20 * time.Second)
	for {
		st := prov.Status()
		if len(st.Pilots) == 0 && w.coll.Len() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never drained after demand went to zero: %d pilots, %d ads\n%+v",
				len(st.Pilots), w.coll.Len(), st)
		}
		time.Sleep(25 * time.Millisecond)
	}
	st := prov.Status()
	if st.Submitted == 0 {
		t.Fatal("soak ran with no pilots ever submitted")
	}
	if st.Retired != st.Submitted {
		t.Fatalf("submitted %d pilots but retired %d — a pilot leaked or was double-counted", st.Submitted, st.Retired)
	}
	if sites := w.adaptive.Sites(); len(sites) != 0 {
		t.Fatalf("broker still holds retired pilot sites: %v", sites)
	}

	for key, id := range ids {
		w.checkExactlyOnce(t, key, id)
	}
}

// TestElasticPoolSoak is the seeded elasticity soak of the autoscaler's
// acceptance: offered load swings 10×, the pool follows within bounded
// lag, every pilot retires, and no job is lost or run twice.
func TestElasticPoolSoak(t *testing.T) {
	seeds := 2
	if testing.Short() {
		seeds = 1
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		if !t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { runElasticSoak(t, seed) }) {
			break
		}
	}
}

// TestAutoscalerRetiresPilotMidStageIn pins the satellite chaos schedule:
// the autoscaler scales the pool down while a job is mid-stage-in on the
// victim pilot (staging happens before the remote submit, so the pilot
// advertises zero active jobs and is a legitimate scale-down victim). The
// job must rebind and complete elsewhere exactly once.
func TestAutoscalerRetiresPilotMidStageIn(t *testing.T) {
	// Slow the pilots' staging plane so "mid-stage-in" is a wide,
	// deterministic window rather than a scheduling race.
	var stall atomic.Bool
	stall.Store(true)
	testPilotGatekeeperFaults = &wire.Faults{Delay: func(m string) time.Duration {
		if m == "gram.stage-chunk" && stall.Load() {
			return 25 * time.Millisecond
		}
		return 0
	}}
	defer func() { testPilotGatekeeperFaults = nil }()

	w := newElasticWorld(t, 2, 1)
	// forceIdle lies to the provisioner that demand hit zero, forcing a
	// scale-down decision at a moment the test controls.
	var forceIdle atomic.Bool
	prov := w.newProvisioner(t, func(cfg *ProvisionerConfig) {
		cfg.MaxPilots = 2
		cfg.Interval = 30 * time.Millisecond
		// Only the autoscaler retires pilots in this schedule.
		cfg.IdleTimeout = 30 * time.Second
		cfg.Lease = 60 * time.Second
		backlog := cfg.Demand
		cfg.Demand = func() int {
			if forceIdle.Load() {
				return 0
			}
			return backlog()
		}
	})
	prov.Start()

	// 64 KiB over 1 KiB chunks at 25 ms each ≈ 1.6 s of staging.
	id, err := w.agent.Submit(condorg.SubmitRequest{
		Owner:      "u",
		Executable: paddedWork(64 << 10),
		Args:       []string{"solo"},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Wait until the job is bound to a pilot and its executable is
	// mid-transfer: some bytes acked, staging not done.
	var firstSite string
	deadline := time.Now().Add(15 * time.Second)
	for {
		info, err := w.agent.Status(id)
		if err == nil && info.Site != "" && info.Stage.Offset > 0 && !info.Stage.Done {
			firstSite = info.Site
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached mid-stage-in: %+v", info)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Scale down now: the victim pilot advertises zero active jobs (the
	// job is only staging), so the autoscaler cancels it under the agent.
	forceIdle.Store(true)
	deadline = time.Now().Add(15 * time.Second)
	for prov.Status().Retired < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("autoscaler never retired the staging pilot: %+v", prov.Status())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Restore demand; the pool regrows and the job must finish elsewhere.
	forceIdle.Store(false)
	stall.Store(false)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := w.agent.Wait(ctx, id); err != nil {
		info, _ := w.agent.Status(id)
		t.Fatalf("job never finished after pilot retirement: %v\ninfo: %+v", err, info)
	}

	info := w.checkExactlyOnce(t, "solo", id)
	w.mu.Lock()
	n := w.completions["solo"]
	w.mu.Unlock()
	if n != 1 {
		t.Fatalf("job ran to completion %d times, want exactly once", n)
	}
	if info.Site == firstSite {
		t.Fatalf("job completed on the retired pilot %s — it never moved", firstSite)
	}
	// The move must be on the record: either the dispatcher rebound the
	// contactless job away from the dead pilot, or (if the submit had
	// already landed) a site-lost resubmission.
	rebound := false
	for _, ev := range info.Log {
		if ev.Code == "BIND" && strings.Contains(ev.Text, "rebound") {
			rebound = true
		}
	}
	if !rebound && info.Resubmits == 0 {
		t.Fatalf("job moved from %s to %s with neither a rebind nor a resubmit recorded\nlog: %+v",
			firstSite, info.Site, info.Log)
	}
}

// TestGkPilotArgsRoundTrip pins the gatekeeper pilot's argument codec.
func TestGkPilotArgsRoundTrip(t *testing.T) {
	cfg := gkPilotConfig{
		collectorAddr: "127.0.0.1:9618",
		repoAddr:      "127.0.0.1:2811",
		slotName:      "glidein-gk-wisc-3",
		siteLabel:     "wisc",
		cpus:          4,
		memoryMB:      512,
		lease:         2 * time.Hour,
		idle:          20 * time.Minute,
		advertise:     5 * time.Second,
	}
	got, err := parseGkPilotArgs(gkPilotArgs(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if got != cfg {
		t.Fatalf("round trip mangled config: %+v != %+v", got, cfg)
	}
	for _, bad := range [][]string{
		nil,
		{"c", "r", "slot", "site", "4", "512", "1h", "1m"},          // short
		{"c", "r", "slot", "site", "zero", "512", "1h", "1m", "5s"}, // bad cpus
		{"c", "r", "slot", "site", "4", "512", "soon", "1m", "5s"},  // bad lease
		{"c", "r", "slot", "site", "4", "512", "1h", "1m", "often"}, // bad advertise
	} {
		if _, err := parseGkPilotArgs(bad); err == nil {
			t.Fatalf("parseGkPilotArgs(%v) accepted a bad vector", bad)
		}
	}
}

// TestProvisionerConfigValidation pins the constructor's hard requirements.
func TestProvisionerConfigValidation(t *testing.T) {
	if _, err := NewProvisioner(ProvisionerConfig{Demand: func() int { return 0 }}); err == nil {
		t.Fatal("provisioner without host sites accepted")
	}
	if _, err := NewProvisioner(ProvisionerConfig{HostSites: map[string]string{"a": "127.0.0.1:1"}}); err == nil {
		t.Fatal("provisioner without a Demand source accepted")
	}
}
