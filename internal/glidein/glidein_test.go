package glidein

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"condorg/internal/condor"
	"condorg/internal/gram"
	"condorg/internal/gridftp"
	"condorg/internal/lrm"
)

// glideinWorld wires a full Figure-2 topology: a user-side personal pool
// (collector, schedd, negotiator), a binary repository, and N GRAM sites
// whose runtimes carry the glidein bootstrap.
type glideinWorld struct {
	coll    *condor.Collector
	schedd  *condor.Schedd
	neg     *condor.Negotiator
	repo    *gridftp.Server
	sites   []*gram.Site
	factory *Factory
	jobRT   *condor.Runtime
}

func newGlideinWorld(t *testing.T, numSites, cpusPerSite int) *glideinWorld {
	t.Helper()
	w := &glideinWorld{}
	var err error
	w.coll, err = condor.NewCollector(condor.CollectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.coll.Close() })

	// User job registry: what the glided-in slots can execute.
	w.jobRT = condor.NewRuntime()
	w.jobRT.Register("work", func(_ context.Context, jc *condor.JobContext) error {
		fmt.Fprintf(jc.Stdout, "done %s\n", strings.Join(jc.Args, " "))
		return nil
	})

	// Central repository with the daemon payload.
	w.repo, err = gridftp.NewServer(t.TempDir(), gridftp.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.repo.Close() })
	ftp := gridftp.NewClient(nil, nil, 2)
	defer ftp.Close()
	if err := ftp.Put(w.repo.Addr(), StartdBlob, []byte("condor_startd v6.3 payload")); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < numSites; i++ {
		cluster, err := lrm.NewCluster(lrm.Config{Name: fmt.Sprintf("site%d", i), Cpus: cpusPerSite})
		if err != nil {
			t.Fatal(err)
		}
		rt := gram.NewFuncRuntime()
		InstallBootstrap(rt, w.jobRT, nil, nil, nil)
		site, err := gram.NewSite(gram.SiteConfig{
			Name:     fmt.Sprintf("site%d", i),
			Cluster:  cluster,
			Runtime:  rt,
			StateDir: t.TempDir(),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(site.Close)
		w.sites = append(w.sites, site)
	}

	w.schedd, err = condor.NewSchedd(condor.ScheddConfig{Name: "user", SpoolDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.schedd.Close)
	w.neg = condor.NewNegotiator(w.coll.Addr(), nil, nil, w.schedd)
	t.Cleanup(w.neg.Stop)

	w.factory = NewFactory(FactoryConfig{
		CollectorAddr:     w.coll.Addr(),
		RepoAddr:          w.repo.Addr(),
		Lease:             5 * time.Second,
		IdleTimeout:       2 * time.Second,
		AdvertiseInterval: 15 * time.Millisecond,
	})
	w.factory.Client().SetTimeouts(300*time.Millisecond, 3)
	t.Cleanup(w.factory.Close)
	return w
}

func (w *glideinWorld) waitSlots(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(8 * time.Second)
	for time.Now().Before(deadline) {
		if w.coll.Len() >= n {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("only %d slots joined the pool, want %d", w.coll.Len(), n)
}

func TestPilotJoinsPoolAndRunsJob(t *testing.T) {
	w := newGlideinWorld(t, 1, 2)
	if _, err := w.factory.SubmitPilot(w.sites[0].GatekeeperAddr(), "wisc"); err != nil {
		t.Fatal(err)
	}
	w.waitSlots(t, 1)

	// The glided-in slot carries the GlideIn markers.
	cc := condor.NewCollectorClient(w.coll.Addr(), nil, nil)
	defer cc.Close()
	ads, err := cc.Query("Machine", `GlideIn == "true"`)
	if err != nil || len(ads) != 1 {
		t.Fatalf("glidein ads = %d err=%v", len(ads), err)
	}
	if got := ads[0].EvalString("GlideInSite", ""); got != "wisc" {
		t.Fatalf("GlideInSite = %q", got)
	}

	// A pool job now matches and runs on the remote slot.
	id, _ := w.schedd.Submit(condor.JobAd("user", "work", "unit-7"))
	w.neg.Start(15 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Second)
	defer cancel()
	if err := w.schedd.WaitAll(ctx); err != nil {
		t.Fatal(err)
	}
	j, _ := w.schedd.Job(id)
	if j.State != condor.PoolCompleted || !strings.Contains(string(j.Stdout), "done unit-7") {
		t.Fatalf("job %v stdout=%q err=%q", j.State, j.Stdout, j.Err)
	}
}

func TestPilotFailsWhenRepoUnreachable(t *testing.T) {
	w := newGlideinWorld(t, 1, 1)
	w.repo.Close() // repository offline: the bootstrap cannot fetch binaries
	pilot, err := w.factory.SubmitPilot(w.sites[0].GatekeeperAddr(), "wisc")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(8 * time.Second)
	for time.Now().Before(deadline) {
		st, err := w.factory.Status(pilot)
		if err == nil && st.State == gram.StateFailed {
			if !strings.Contains(st.Error, "fetch binaries") {
				t.Fatalf("failure reason = %q", st.Error)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("pilot with unreachable repo never failed")
}

func TestIdleGlideInRetires(t *testing.T) {
	w := newGlideinWorld(t, 1, 1)
	w.factory.cfg.IdleTimeout = 100 * time.Millisecond
	pilot, err := w.factory.SubmitPilot(w.sites[0].GatekeeperAddr(), "wisc")
	if err != nil {
		t.Fatal(err)
	}
	w.waitSlots(t, 1)
	// No jobs arrive; the daemon must retire and the GRAM job complete.
	deadline := time.Now().Add(8 * time.Second)
	for time.Now().Before(deadline) {
		st, err := w.factory.Status(pilot)
		if err == nil && st.State == gram.StateDone {
			if w.coll.Len() != 0 {
				t.Fatal("retired glidein left its ad behind")
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("idle glidein never retired (runaway daemon)")
}

func TestLeaseExpiryRetiresGlideIn(t *testing.T) {
	w := newGlideinWorld(t, 1, 1)
	w.factory.cfg.Lease = 150 * time.Millisecond
	w.factory.cfg.IdleTimeout = time.Hour // only the lease can end it
	pilot, err := w.factory.SubmitPilot(w.sites[0].GatekeeperAddr(), "wisc")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(8 * time.Second)
	for time.Now().Before(deadline) {
		st, err := w.factory.Status(pilot)
		if err == nil && st.State == gram.StateDone {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("leased glidein never retired")
}

func TestFloodCreatesPersonalPool(t *testing.T) {
	w := newGlideinWorld(t, 3, 2)
	sites := map[string]string{}
	for i, s := range w.sites {
		sites[fmt.Sprintf("site%d", i)] = s.GatekeeperAddr()
	}
	pilots, err := w.factory.Flood(sites, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pilots) != 6 {
		t.Fatalf("flood sent %d pilots, want 6", len(pilots))
	}
	w.waitSlots(t, 6)
	// 10 jobs across the 6-slot dynamic pool.
	for i := 0; i < 10; i++ {
		w.schedd.Submit(condor.JobAd("user", "work", fmt.Sprint(i)))
	}
	w.neg.Start(15 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := w.schedd.WaitAll(ctx); err != nil {
		t.Fatal(err)
	}
	_, _, done := w.schedd.Counts()
	if done != 10 {
		t.Fatalf("completed %d/10", done)
	}
}

func TestPilotArgsRoundTrip(t *testing.T) {
	cfg := pilotConfig{
		collectorAddr: "1.2.3.4:9618", repoAddr: "5.6.7.8:2811",
		slotName: "g1", siteLabel: "anl", memoryMB: 256,
		lease: time.Hour, idle: 10 * time.Minute, advertise: time.Second,
	}
	got, err := parsePilotArgs(pilotArgs(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if got != cfg {
		t.Fatalf("round trip %+v != %+v", got, cfg)
	}
	if _, err := parsePilotArgs([]string{"too", "few"}); err == nil {
		t.Fatal("short args accepted")
	}
	bad := pilotArgs(cfg)
	bad[5] = "not-a-duration"
	if _, err := parsePilotArgs(bad); err == nil {
		t.Fatal("bad lease accepted")
	}
}
