// Package glidein implements §5 of the paper: using Grid protocols to
// dynamically create a personal Condor pool out of Grid resources. The
// Factory submits *pilot* jobs through GRAM; each pilot is the paper's
// "initial GlideIn executable (a portable shell script)" which fetches the
// Condor daemon payload from a central repository over GSI-authenticated
// GridFTP and then runs a Startd that registers with the user's Collector.
// Pilots shut themselves down when their lease expires or when idle too
// long, "guarding against runaway daemons".
//
// # Payload caching
//
// Every pilot on a machine wants the same daemon payload, so fetches are
// cached per process, keyed by the repository's content identity
// (addr|size|crc from ftp.Stat). The key carries the content identity,
// not just the path: when the repository publishes a new payload the
// stat changes, the key misses, and the next pilot fetches fresh bytes —
// a stale cache can never resurrect an old daemon.
package glidein

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"

	"condorg/internal/classad"
	"condorg/internal/condor"
	"condorg/internal/gram"
	"condorg/internal/gridftp"
	"condorg/internal/gsi"
)

// BootstrapProgram is the name the pilot executable dispatches to in a
// site's GRAM runtime.
const BootstrapProgram = "glidein-bootstrap"

// StartdBlob is the repository path of the Condor daemon payload the pilot
// downloads. Its content is opaque; the transfer (and its checksum
// verification) is the point.
const StartdBlob = "bin/condor_startd"

// startdCache memoizes daemon payload fetches per process, keyed by the
// repository's content identity ("addr|size|crc"). See the package doc.
var startdCache sync.Map

// fetchStartd returns the daemon payload from repoAddr, consulting the
// process-wide cache first. It reports whether the bytes came from cache.
func fetchStartd(ftp *gridftp.Client, repoAddr string) (blob []byte, cached bool, err error) {
	size, crc, exists, err := ftp.Stat(repoAddr, StartdBlob)
	if err != nil {
		return nil, false, err
	}
	if !exists {
		return nil, false, fmt.Errorf("glidein: %s not found on %s", StartdBlob, repoAddr)
	}
	key := fmt.Sprintf("%s|%d|%d", repoAddr, size, crc)
	if v, ok := startdCache.Load(key); ok {
		return v.([]byte), true, nil
	}
	blob, err = ftp.Get(repoAddr, StartdBlob)
	if err != nil {
		return nil, false, err
	}
	startdCache.Store(key, blob)
	return blob, false, nil
}

// InstallBootstrap registers the pilot program on a site's GRAM runtime.
// jobRuntime is the job registry glided-in slots execute from — the
// stand-in for the executables Condor's Shadow would transfer at
// activation time (see DESIGN.md substitutions).
func InstallBootstrap(siteRuntime *gram.FuncRuntime, jobRuntime *condor.Runtime, anchor *gsi.Certificate, cred *gsi.Credential, clock gsi.Clock) {
	siteRuntime.Register(BootstrapProgram, func(ctx context.Context, args []string, _ []byte, stdout, stderr io.Writer, env map[string]string) error {
		cfg, err := parsePilotArgs(args)
		if err != nil {
			fmt.Fprintf(stderr, "glidein: %v\n", err)
			return err
		}
		// Step 1: retrieve the Condor executables from the central
		// repository (GSI-authenticated GridFTP).
		ftp := gridftp.NewClient(cred, clock, 2)
		defer ftp.Close()
		blob, cached, err := fetchStartd(ftp, cfg.repoAddr)
		if err != nil {
			fmt.Fprintf(stderr, "glidein: fetch binaries: %v\n", err)
			return fmt.Errorf("glidein: fetch binaries: %w", err)
		}
		if cached {
			fmt.Fprintf(stdout, "glidein: reused cached %d-byte startd payload\n", len(blob))
		} else {
			fmt.Fprintf(stdout, "glidein: fetched %d-byte startd payload\n", len(blob))
		}

		// Step 2: start the daemon and join the user's personal pool.
		shutdown := make(chan string, 1)
		sd, err := condor.NewStartd(condor.StartdConfig{
			Name:              cfg.slotName,
			MemoryMB:          cfg.memoryMB,
			CollectorAddr:     cfg.collectorAddr,
			Runtime:           jobRuntime,
			Credential:        cred,
			Anchor:            anchor,
			Clock:             clock,
			AdvertiseInterval: cfg.advertise,
			Lease:             cfg.lease,
			IdleTimeout:       cfg.idle,
			OnShutdown:        func(reason string) { shutdown <- reason },
			CustomAd: func(ad *classad.Ad) {
				ad.SetString("GlideIn", "true")
				ad.SetString("GlideInSite", cfg.siteLabel)
			},
		})
		if err != nil {
			fmt.Fprintf(stderr, "glidein: startd: %v\n", err)
			return err
		}
		// Step 3: run until the daemon retires itself or the site
		// reclaims the allocation (walltime/vacate via ctx).
		select {
		case reason := <-shutdown:
			fmt.Fprintf(stdout, "glidein: shut down: %s\n", reason)
			return nil
		case <-ctx.Done():
			sd.Shutdown("allocation reclaimed by site")
			<-shutdown
			fmt.Fprintf(stdout, "glidein: shut down: allocation reclaimed\n")
			return nil
		}
	})
}

// pilotConfig is the decoded argument vector of a pilot job.
type pilotConfig struct {
	collectorAddr string
	repoAddr      string
	slotName      string
	siteLabel     string
	memoryMB      int64
	lease         time.Duration
	idle          time.Duration
	advertise     time.Duration
}

func pilotArgs(cfg pilotConfig) []string {
	return []string{
		cfg.collectorAddr, cfg.repoAddr, cfg.slotName, cfg.siteLabel,
		strconv.FormatInt(cfg.memoryMB, 10),
		cfg.lease.String(), cfg.idle.String(), cfg.advertise.String(),
	}
}

func parsePilotArgs(args []string) (pilotConfig, error) {
	if len(args) != 8 {
		return pilotConfig{}, fmt.Errorf("pilot wants 8 args, got %d", len(args))
	}
	mem, err := strconv.ParseInt(args[4], 10, 64)
	if err != nil {
		return pilotConfig{}, fmt.Errorf("bad memory %q", args[4])
	}
	lease, err := time.ParseDuration(args[5])
	if err != nil {
		return pilotConfig{}, fmt.Errorf("bad lease %q", args[5])
	}
	idle, err := time.ParseDuration(args[6])
	if err != nil {
		return pilotConfig{}, fmt.Errorf("bad idle %q", args[6])
	}
	adv, err := time.ParseDuration(args[7])
	if err != nil {
		return pilotConfig{}, fmt.Errorf("bad advertise %q", args[7])
	}
	return pilotConfig{
		collectorAddr: args[0],
		repoAddr:      args[1],
		slotName:      args[2],
		siteLabel:     args[3],
		memoryMB:      mem,
		lease:         lease,
		idle:          idle,
		advertise:     adv,
	}, nil
}

// FactoryConfig configures a GlideIn factory.
type FactoryConfig struct {
	// CollectorAddr is the user's personal pool collector.
	CollectorAddr string
	// RepoAddr is the GridFTP repository holding the daemon payload.
	RepoAddr string
	// Credential and Clock authenticate GRAM submissions.
	Credential *gsi.Credential
	Clock      gsi.Clock
	// Lease and IdleTimeout configure pilot self-retirement.
	Lease       time.Duration
	IdleTimeout time.Duration
	// AdvertiseInterval for glided-in slots (default 100ms; tests and
	// benches shorten further).
	AdvertiseInterval time.Duration
	// MemoryMB advertised by each glided-in slot.
	MemoryMB int64
	// Delegate, when positive, forwards a proxy of this lifetime with
	// each pilot.
	Delegate time.Duration
}

// Factory submits and tracks pilots.
type Factory struct {
	cfg  FactoryConfig
	gc   *gram.Client
	mu   sync.Mutex
	n    int
	sent []Pilot
}

// Pilot records one submitted pilot.
type Pilot struct {
	Contact  gram.JobContact
	Site     string
	SlotName string
}

// NewFactory creates a factory.
func NewFactory(cfg FactoryConfig) *Factory {
	if cfg.AdvertiseInterval == 0 {
		cfg.AdvertiseInterval = 100 * time.Millisecond
	}
	if cfg.MemoryMB == 0 {
		cfg.MemoryMB = 512
	}
	if cfg.Lease == 0 {
		cfg.Lease = time.Hour
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = time.Minute
	}
	return &Factory{cfg: cfg, gc: gram.NewClient(cfg.Credential, cfg.Clock)}
}

// Client exposes the underlying GRAM client (for timeouts in tests).
func (f *Factory) Client() *gram.Client { return f.gc }

// SubmitPilot sends one pilot to the site behind gkAddr and commits it.
func (f *Factory) SubmitPilot(gkAddr, siteLabel string) (Pilot, error) {
	f.mu.Lock()
	f.n++
	slot := fmt.Sprintf("glidein-%s-%d", siteLabel, f.n)
	f.mu.Unlock()
	spec := gram.JobSpec{
		Executable: string(gram.Program(BootstrapProgram)),
		Args: pilotArgs(pilotConfig{
			collectorAddr: f.cfg.CollectorAddr,
			repoAddr:      f.cfg.RepoAddr,
			slotName:      slot,
			siteLabel:     siteLabel,
			memoryMB:      f.cfg.MemoryMB,
			lease:         f.cfg.Lease,
			idle:          f.cfg.IdleTimeout,
			advertise:     f.cfg.AdvertiseInterval,
		}),
	}
	contact, err := f.gc.Submit(gkAddr, spec, gram.SubmitOptions{
		SubmissionID: gram.NewSubmissionID(),
		Delegate:     f.cfg.Delegate,
	})
	if err != nil {
		return Pilot{}, err
	}
	if err := f.gc.Commit(contact); err != nil {
		return Pilot{}, err
	}
	p := Pilot{Contact: contact, Site: siteLabel, SlotName: slot}
	f.mu.Lock()
	f.sent = append(f.sent, p)
	f.mu.Unlock()
	return p, nil
}

// Flood submits n pilots to every site — the high-throughput strategy of
// §4.4: "flood candidate resources with requests", binding jobs to
// whichever slot materializes first (§5's delayed binding).
func (f *Factory) Flood(sites map[string]string, perSite int) ([]Pilot, error) {
	var out []Pilot
	for label, gk := range sites {
		for i := 0; i < perSite; i++ {
			p, err := f.SubmitPilot(gk, label)
			if err != nil {
				return out, fmt.Errorf("glidein: flood %s: %w", label, err)
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// Pilots returns all pilots submitted so far.
func (f *Factory) Pilots() []Pilot {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Pilot(nil), f.sent...)
}

// Status fetches the GRAM status of a pilot.
func (f *Factory) Status(p Pilot) (gram.StatusInfo, error) {
	return f.gc.Status(p.Contact)
}

// Close releases the GRAM client.
func (f *Factory) Close() { f.gc.Close() }
