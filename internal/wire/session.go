// Wire protocol v2: the wire.hello handshake.
//
// v1 signs and verifies a GSI token on every message (~3 ed25519 chain
// verifications per request server-side). v2 moves that cost to connection
// setup: the client sends one wire.hello request carrying a token bound to
// the hello context, the server verifies it once and mints a session ID,
// and every subsequent request on that connection carries only the ID.
// The same handshake negotiates the frame codec for the server->client
// and client->server write directions.
//
// Compatibility is free in both directions: hello is an ordinary "req"
// frame, so a v1 server answers it with "wire: no such method wire.hello"
// and the v2 client silently falls back to per-message tokens and JSON
// frames; a v1 client never sends hello and the v2 server keeps verifying
// its per-message tokens. Sessions die with their connection — a redial
// or a credential refresh (Client.SetCredential) re-handshakes.
package wire

import (
	"encoding/json"
	"errors"
	"net"
	"strings"
	"sync"
	"time"

	"condorg/internal/faultclass"
	"condorg/internal/gsi"
)

// HelloMethod is the reserved method name for the protocol v2 handshake.
const HelloMethod = "wire.hello"

type helloReq struct {
	// Codecs the client is willing to receive and send, in preference
	// order. The server picks the first one it supports, else JSON.
	Codecs []string `json:"codecs,omitempty"`
}

type helloResp struct {
	// Session is non-empty when the server verified the hello token and
	// established an authenticated session for this connection.
	Session string `json:"session,omitempty"`
	// Codec both sides will write from now on.
	Codec string `json:"codec"`
}

// srvConn is the server's per-connection state: the write mutex that
// serializes frames from concurrent handlers, the negotiated write codec,
// and the authenticated session established by wire.hello.
type srvConn struct {
	conn net.Conn

	wmu   sync.Mutex
	codec string // write codec; guarded by wmu ("" = JSON)

	smu     sync.Mutex
	session string // non-empty once an authenticated hello succeeded
	peer    string // grid subject bound to the session
}

func (sc *srvConn) write(m *Message) error {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	return writeFrameCodec(sc.conn, m, sc.codec)
}

// sessionPeer returns the subject bound to id if it names this
// connection's live session.
func (sc *srvConn) sessionPeer(id string) (string, bool) {
	sc.smu.Lock()
	defer sc.smu.Unlock()
	if sc.session == "" || id != sc.session {
		return "", false
	}
	return sc.peer, true
}

// handleHello runs the v2 handshake for one connection. It executes on the
// connection's read loop, so no request frame is processed until the
// negotiated codec and session are in place. Hello is idempotent and never
// reply-cached: a repeated hello (credential refresh without redial) simply
// re-verifies and re-keys the session.
func (s *Server) handleHello(sc *srvConn, msg *Message) {
	if d := s.cfg.Faults.delay(HelloMethod); d > 0 {
		time.Sleep(d)
	}
	if s.cfg.Faults.dropRequest(HelloMethod) {
		return
	}
	resp := &Message{ClientID: msg.ClientID, Seq: msg.Seq, Kind: "resp"}
	peer := ""
	if s.cfg.Anchor != nil {
		subject, err := msg.Token.Verify(s.cfg.Anchor, authContext(s.cfg.Name, HelloMethod), s.cfg.Clock())
		if err != nil {
			resp.Error = "auth: " + err.Error()
			resp.Fault = faultclass.AuthExpired.String()
			if s.cfg.Faults.dropResponse(HelloMethod) {
				return
			}
			if sc.write(resp) != nil {
				sc.conn.Close()
			}
			return
		}
		peer = subject
	}
	var req helloReq
	if len(msg.Body) > 0 {
		// A malformed hello body degrades to the JSON codec rather than
		// failing the handshake.
		_ = json.Unmarshal(msg.Body, &req)
	}
	codec := CodecJSON
	for _, c := range req.Codecs {
		if c == CodecBinary {
			codec = CodecBinary
			break
		}
	}
	out := helloResp{Codec: codec}
	if s.cfg.Anchor != nil {
		out.Session = gsi.NewSessionID()
		sc.smu.Lock()
		sc.session = out.Session
		sc.peer = peer
		sc.smu.Unlock()
	}
	body, err := json.Marshal(out)
	if err != nil {
		resp.Error = "wire: marshal hello response: " + err.Error()
	} else {
		resp.Body = body
	}
	if s.cfg.Faults.resetMidFrame(HelloMethod) {
		writeTornFrame(sc, resp)
		return
	}
	if s.cfg.Faults.dropResponse(HelloMethod) {
		return
	}
	if sc.write(resp) != nil {
		sc.conn.Close()
		return
	}
	// The response to hello itself goes out in the old codec; everything
	// after it in the negotiated one.
	sc.wmu.Lock()
	sc.codec = codec
	sc.wmu.Unlock()
}

// noSuchMethodPrefix is the server error for an unregistered method. The
// handshake keys legacy-peer detection off it, as do the gram batch verbs.
const noSuchMethodPrefix = "wire: no such method"

// IsNoSuchMethod reports whether err is a server reply saying the method
// does not exist there — the signal that the peer predates the method and
// the caller should fall back to the older protocol.
func IsNoSuchMethod(err error) bool {
	var re *RemoteError
	return errors.As(err, &re) && strings.HasPrefix(re.Msg, noSuchMethodPrefix)
}
