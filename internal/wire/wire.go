// Package wire is the transport substrate for every Grid protocol in this
// repository (GRAM, GASS, MDS, GridFTP, MyProxy, and the Condor daemons).
// It provides length-prefixed JSON frames over TCP, request/response RPC
// with client-chosen sequence numbers, per-request GSI authentication, a
// server-side reply cache that makes retries idempotent (the mechanism
// behind the paper's two-phase commit: "the repeated sequence number allows
// the resource to distinguish between a lost request and a lost response",
// §3.2), and fault-injection hooks used by the failure experiments.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"condorg/internal/faultclass"
	"condorg/internal/gsi"
)

// MaxFrame bounds a single message; larger frames indicate corruption.
const MaxFrame = 16 << 20

// Message is the on-wire unit.
type Message struct {
	ClientID string         `json:"client_id"`
	Seq      uint64         `json:"seq"`
	Kind     string         `json:"kind"` // "req" or "resp"
	Method   string         `json:"method,omitempty"`
	Token    *gsi.AuthToken `json:"token,omitempty"`
	// Session identifies an authenticated per-connection session
	// established by the wire.hello handshake; requests carrying a valid
	// session ID skip per-message token verification (protocol v2).
	Session string          `json:"session,omitempty"`
	Body    json.RawMessage `json:"body,omitempty"`
	Error   string          `json:"error,omitempty"`
	// Fault carries the faultclass name for Error, so clients can
	// branch on a typed class instead of the error prose.
	Fault string `json:"fault,omitempty"`
}

// WriteFrame writes one framed message to w in the v1 JSON codec.
func WriteFrame(w io.Writer, m *Message) error {
	return writeFrameCodec(w, m, CodecJSON)
}

// ReadFrame reads one framed message from r. The payload codec is
// detected per frame, so a reader accepts JSON and binary frames
// regardless of what was negotiated for the write direction.
func ReadFrame(r io.Reader) (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > MaxFrame {
		return nil, fmt.Errorf("wire: oversized frame: %d", size)
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return decodeMessage(buf)
}

// Handler serves one RPC method. peer is the authenticated grid subject
// ("" when the server runs unauthenticated). The returned value is
// marshalled into the response body.
type Handler func(peer string, body json.RawMessage) (any, error)

// Faults lets tests and experiments inject the failure modes of §3.2/§4.2.
// Each hook is consulted per request (or per connection for the
// connection-level hooks); nil hooks never fire.
type Faults struct {
	mu sync.Mutex
	// DropRequest: pretend the request never arrived (no processing).
	DropRequest func(method string) bool
	// DropResponse: process the request but lose the reply.
	DropResponse func(method string) bool
	// Delay: artificial processing delay (latency/jitter injection).
	Delay func(method string) time.Duration
	// RefuseConn: bidirectional partition at the connection level —
	// new connections are accepted and immediately severed, so dials
	// appear to succeed but nothing ever flows.
	RefuseConn func() bool
	// BlackholeConn: one-way partition — request frames are read off
	// the wire and silently discarded without processing, so the
	// client sees its sends succeed but never hears back.
	BlackholeConn func() bool
	// ResetMidFrame: the connection is reset midway through writing
	// the response frame for this method (the work already happened
	// and is in the reply cache; only the frame is torn).
	ResetMidFrame func(method string) bool
}

func (f *Faults) dropRequest(m string) bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	hook := f.DropRequest
	f.mu.Unlock()
	return hook != nil && hook(m)
}

func (f *Faults) dropResponse(m string) bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	hook := f.DropResponse
	f.mu.Unlock()
	return hook != nil && hook(m)
}

func (f *Faults) delay(m string) time.Duration {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	hook := f.Delay
	f.mu.Unlock()
	if hook == nil {
		return 0
	}
	return hook(m)
}

func (f *Faults) refuseConn() bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	hook := f.RefuseConn
	f.mu.Unlock()
	return hook != nil && hook()
}

func (f *Faults) blackholeConn() bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	hook := f.BlackholeConn
	f.mu.Unlock()
	return hook != nil && hook()
}

func (f *Faults) resetMidFrame(m string) bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	hook := f.ResetMidFrame
	f.mu.Unlock()
	return hook != nil && hook(m)
}

// Set atomically replaces the message-drop hooks.
func (f *Faults) Set(dropReq, dropResp func(string) bool) {
	f.mu.Lock()
	f.DropRequest = dropReq
	f.DropResponse = dropResp
	f.mu.Unlock()
}

// SetDelay atomically replaces the latency hook.
func (f *Faults) SetDelay(delay func(string) time.Duration) {
	f.mu.Lock()
	f.Delay = delay
	f.mu.Unlock()
}

// SetConn atomically replaces the connection-level chaos hooks.
func (f *Faults) SetConn(refuse, blackhole func() bool, reset func(string) bool) {
	f.mu.Lock()
	f.RefuseConn = refuse
	f.BlackholeConn = blackhole
	f.ResetMidFrame = reset
	f.mu.Unlock()
}

// Clear removes every hook.
func (f *Faults) Clear() {
	f.mu.Lock()
	f.DropRequest = nil
	f.DropResponse = nil
	f.Delay = nil
	f.RefuseConn = nil
	f.BlackholeConn = nil
	f.ResetMidFrame = nil
	f.mu.Unlock()
}

// ServerConfig configures a Server.
type ServerConfig struct {
	// Name is used in log lines and as part of the auth context.
	Name string
	// Anchor, when set, requires every request to carry a token that
	// verifies against this trust anchor.
	Anchor *gsi.Certificate
	// Clock for token freshness; defaults to wall time.
	Clock gsi.Clock
	// Faults is the injection point for failure experiments.
	Faults *Faults
}

// Server is a TCP RPC server.
type Server struct {
	cfg      ServerConfig
	lis      net.Listener
	mu       sync.Mutex
	handlers map[string]Handler
	conns    map[net.Conn]struct{}
	cache    *replyCache
	paused   bool
	closed   bool
	wg       sync.WaitGroup
}

// NewServer creates a server listening on 127.0.0.1 with an OS-chosen port.
func NewServer(cfg ServerConfig) (*Server, error) {
	return NewServerAddr("127.0.0.1:0", cfg)
}

// NewServerAddr creates a server on an explicit address. The crash-restart
// experiments use it to bring a Gatekeeper back on its published port.
func NewServerAddr(addr string, cfg ServerConfig) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if cfg.Clock == nil {
		cfg.Clock = gsi.WallClock
	}
	s := &Server{
		cfg:      cfg,
		lis:      lis,
		handlers: make(map[string]Handler),
		conns:    make(map[net.Conn]struct{}),
		cache:    newReplyCache(4096),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address ("host:port").
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Handle registers a handler for method. It panics on duplicates: a
// misrouted protocol is a programming error.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.handlers[method]; dup {
		panic("wire: duplicate handler for " + method)
	}
	s.handlers[method] = h
}

// Pause simulates a network partition or machine freeze: existing
// connections are severed and new ones are refused until Resume.
func (s *Server) Pause() {
	s.mu.Lock()
	s.paused = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
}

// Resume ends a Pause.
func (s *Server) Resume() {
	s.mu.Lock()
	s.paused = false
	s.mu.Unlock()
}

// Close shuts the server down, severing all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.lis.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return
		}
		if s.cfg.Faults.refuseConn() {
			conn.Close() // bidirectional partition: sever on arrival
			continue
		}
		s.mu.Lock()
		if s.closed || s.paused {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	sc := &srvConn{conn: conn}
	for {
		msg, err := ReadFrame(conn)
		if err != nil {
			return
		}
		if msg.Kind != "req" {
			continue
		}
		if s.cfg.Faults.blackholeConn() {
			continue // one-way partition: the frame arrived, then vanished
		}
		if msg.Method == HelloMethod {
			// Handled inline on the read loop: no further frames are
			// read until the hello response is written, so the codec
			// switch and session state need no ordering games against
			// concurrently dispatched requests.
			s.handleHello(sc, msg)
			continue
		}
		s.wg.Add(1)
		go func(msg *Message) {
			defer s.wg.Done()
			resp := s.dispatch(msg, sc)
			if resp == nil {
				return // injected request/response loss
			}
			if s.cfg.Faults.resetMidFrame(msg.Method) {
				writeTornFrame(sc, resp)
				return
			}
			if err := sc.write(resp); err != nil {
				conn.Close()
			}
		}(msg)
	}
}

// writeTornFrame writes the frame header and only part of the payload,
// then resets the connection — the mid-frame connection loss of §4.2.
// The response stays in the reply cache, so a client retry of the same
// sequence number still gets exactly-once semantics.
func writeTornFrame(sc *srvConn, m *Message) {
	sc.wmu.Lock()
	data, err := encodeMessage(m, sc.codec)
	if err != nil {
		sc.wmu.Unlock()
		sc.conn.Close()
		return
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	sc.conn.Write(hdr[:])
	sc.conn.Write(data[:len(data)/2])
	sc.wmu.Unlock()
	sc.conn.Close()
}

// dispatch runs one request through fault injection, the reply cache,
// authentication, and the handler. A nil return means "say nothing".
func (s *Server) dispatch(msg *Message, sc *srvConn) *Message {
	if d := s.cfg.Faults.delay(msg.Method); d > 0 {
		time.Sleep(d)
	}
	if s.cfg.Faults.dropRequest(msg.Method) {
		return nil
	}
	key := cacheKey{client: msg.ClientID, seq: msg.Seq}
	if cached, ok := s.cache.get(key); ok {
		if s.cfg.Faults.dropResponse(msg.Method) {
			return nil
		}
		return cached
	}
	resp := &Message{ClientID: msg.ClientID, Seq: msg.Seq, Kind: "resp"}
	peer := ""
	if s.cfg.Anchor != nil {
		if msg.Session != "" {
			// Session auth (protocol v2): the token was verified once at
			// handshake; the request only needs to name the session that
			// this very connection established. A stale or foreign ID
			// gets the same AuthExpired classification as a bad token,
			// which sends the client back through the handshake.
			subject, ok := sc.sessionPeer(msg.Session)
			if !ok {
				resp.Error = "auth: unknown or expired session"
				resp.Fault = faultclass.AuthExpired.String()
				// Not cached, same as token failures below.
				if s.cfg.Faults.dropResponse(msg.Method) {
					return nil
				}
				return resp
			}
			peer = subject
		} else {
			subject, err := msg.Token.Verify(s.cfg.Anchor, authContext(s.cfg.Name, msg.Method), s.cfg.Clock())
			if err != nil {
				resp.Error = "auth: " + err.Error()
				resp.Fault = faultclass.AuthExpired.String()
				// Auth failures are not cached: a refreshed credential
				// retrying the same sequence number must be re-evaluated.
				if s.cfg.Faults.dropResponse(msg.Method) {
					return nil
				}
				return resp
			}
			peer = subject
		}
	}
	s.mu.Lock()
	h, ok := s.handlers[msg.Method]
	s.mu.Unlock()
	if !ok {
		resp.Error = "wire: no such method " + msg.Method
	} else {
		result, err := h(peer, msg.Body)
		if err != nil {
			resp.Error = err.Error()
			if cls := faultclass.ClassOf(err); cls != faultclass.Unknown {
				resp.Fault = cls.String()
			}
		} else if result != nil {
			body, err := json.Marshal(result)
			if err != nil {
				resp.Error = "wire: marshal response: " + err.Error()
			} else {
				resp.Body = body
			}
		}
	}
	s.cache.put(key, resp)
	if s.cfg.Faults.dropResponse(msg.Method) {
		return nil // the work happened; the reply is lost
	}
	return resp
}

func authContext(server, method string) string { return server + ":" + method }

type cacheKey struct {
	client string
	seq    uint64
}

// replyCache is a bounded FIFO map of completed responses, the server half
// of exactly-once semantics.
type replyCache struct {
	mu    sync.Mutex
	max   int
	order []cacheKey
	m     map[cacheKey]*Message
}

func newReplyCache(max int) *replyCache {
	return &replyCache{max: max, m: make(map[cacheKey]*Message)}
}

func (c *replyCache) get(k cacheKey) (*Message, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[k]
	return v, ok
}

func (c *replyCache) put(k cacheKey, v *Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.m[k]; exists {
		return
	}
	c.m[k] = v
	c.order = append(c.order, k)
	for len(c.order) > c.max {
		delete(c.m, c.order[0])
		c.order = c.order[1:]
	}
}

// Errors surfaced by the client.
var (
	ErrTimeout = errors.New("wire: request timed out after retries")
	ErrClosed  = errors.New("wire: client closed")
)

// RemoteError wraps an error string returned by a handler, along with
// the fault class the server attached to it (Unknown when untagged).
type RemoteError struct {
	Msg   string
	Class faultclass.Class
}

// Error implements error.
func (e *RemoteError) Error() string { return e.Msg }

// FaultClass exposes the server-assigned class to faultclass.ClassOf.
func (e *RemoteError) FaultClass() faultclass.Class { return e.Class }

// IsRemote reports whether err is an application error from the server (as
// opposed to a transport failure).
func IsRemote(err error) bool {
	var re *RemoteError
	return errors.As(err, &re)
}
