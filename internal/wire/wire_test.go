package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"condorg/internal/gsi"
)

type echoReq struct {
	Text string `json:"text"`
}

type echoResp struct {
	Text string `json:"text"`
	N    int    `json:"n"`
}

func newEchoServer(t *testing.T, cfg ServerConfig) (*Server, *atomic.Int64) {
	t.Helper()
	var count atomic.Int64
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Handle("echo", func(peer string, body json.RawMessage) (any, error) {
		var req echoReq
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		n := count.Add(1)
		return echoResp{Text: req.Text, N: int(n)}, nil
	})
	s.Handle("fail", func(string, json.RawMessage) (any, error) {
		return nil, errors.New("boom")
	})
	s.Handle("whoami", func(peer string, _ json.RawMessage) (any, error) {
		return echoResp{Text: peer}, nil
	})
	t.Cleanup(func() { s.Close() })
	return s, &count
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &Message{ClientID: "c", Seq: 7, Kind: "req", Method: "m", Body: json.RawMessage(`{"a":1}`)}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Seq != 7 || out.Method != "m" || string(out.Body) != `{"a":1}` {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestReadFrameOversized(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestBasicCall(t *testing.T) {
	s, _ := newEchoServer(t, ServerConfig{Name: "test"})
	c := Dial(s.Addr(), ClientConfig{ServerName: "test"})
	defer c.Close()
	var resp echoResp
	if err := c.Call("echo", echoReq{Text: "hi"}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Text != "hi" {
		t.Fatalf("echo = %q", resp.Text)
	}
}

func TestRemoteError(t *testing.T) {
	s, _ := newEchoServer(t, ServerConfig{Name: "test"})
	c := Dial(s.Addr(), ClientConfig{ServerName: "test"})
	defer c.Close()
	err := c.Call("fail", echoReq{}, nil)
	if err == nil || !IsRemote(err) {
		t.Fatalf("want remote error, got %v", err)
	}
	err = c.Call("nosuch", echoReq{}, nil)
	if err == nil || !IsRemote(err) {
		t.Fatalf("unknown method: want remote error, got %v", err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	s, count := newEchoServer(t, ServerConfig{Name: "test"})
	c := Dial(s.Addr(), ClientConfig{ServerName: "test"})
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp echoResp
			if err := c.Call("echo", echoReq{Text: fmt.Sprint(i)}, &resp); err != nil {
				errs <- err
				return
			}
			if resp.Text != fmt.Sprint(i) {
				errs <- fmt.Errorf("cross-talk: sent %d got %q", i, resp.Text)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if count.Load() != 50 {
		t.Fatalf("server processed %d, want 50", count.Load())
	}
	_ = s
}

func TestRetryAfterDroppedResponseIsIdempotent(t *testing.T) {
	faults := &Faults{}
	s, count := newEchoServer(t, ServerConfig{Name: "test", Faults: faults})
	var drops atomic.Int64
	faults.Set(nil, func(method string) bool {
		// Lose the first two replies.
		return method == "echo" && drops.Add(1) <= 2
	})
	c := Dial(s.Addr(), ClientConfig{
		ServerName: "test", Timeout: 150 * time.Millisecond, Retries: 5, RetryBackoff: 10 * time.Millisecond,
	})
	defer c.Close()
	var resp echoResp
	if err := c.Call("echo", echoReq{Text: "once"}, &resp); err != nil {
		t.Fatal(err)
	}
	// The handler must have executed exactly once even though the client
	// sent the request three times.
	if count.Load() != 1 {
		t.Fatalf("handler ran %d times, want exactly once", count.Load())
	}
	if resp.N != 1 {
		t.Fatalf("resp.N = %d, want 1 (cached reply)", resp.N)
	}
}

func TestRetryAfterDroppedRequest(t *testing.T) {
	faults := &Faults{}
	s, count := newEchoServer(t, ServerConfig{Name: "test", Faults: faults})
	var drops atomic.Int64
	faults.Set(func(method string) bool {
		return method == "echo" && drops.Add(1) <= 2
	}, nil)
	c := Dial(s.Addr(), ClientConfig{
		ServerName: "test", Timeout: 150 * time.Millisecond, Retries: 5, RetryBackoff: 10 * time.Millisecond,
	})
	defer c.Close()
	var resp echoResp
	if err := c.Call("echo", echoReq{Text: "x"}, &resp); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 1 {
		t.Fatalf("handler ran %d times, want 1", count.Load())
	}
}

func TestTimeoutWhenAllResponsesLost(t *testing.T) {
	faults := &Faults{}
	s, count := newEchoServer(t, ServerConfig{Name: "test", Faults: faults})
	faults.Set(nil, func(string) bool { return true })
	c := Dial(s.Addr(), ClientConfig{
		ServerName: "test", Timeout: 50 * time.Millisecond, Retries: 2, RetryBackoff: 5 * time.Millisecond,
	})
	defer c.Close()
	err := c.Call("echo", echoReq{Text: "x"}, nil)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	// Work happened exactly once despite three sends — the cache absorbed
	// the retries.
	if count.Load() != 1 {
		t.Fatalf("handler ran %d times, want 1", count.Load())
	}
}

func TestPauseResume(t *testing.T) {
	s, _ := newEchoServer(t, ServerConfig{Name: "test"})
	c := Dial(s.Addr(), ClientConfig{
		ServerName: "test", Timeout: 100 * time.Millisecond, Retries: 0,
	})
	defer c.Close()
	if err := c.Call("echo", echoReq{Text: "a"}, nil); err != nil {
		t.Fatal(err)
	}
	s.Pause()
	if err := c.Call("echo", echoReq{Text: "b"}, nil); err == nil {
		t.Fatal("call during partition succeeded")
	}
	s.Resume()
	// Retry with a fresh client call; connection is redialed.
	var resp echoResp
	retry := Dial(s.Addr(), ClientConfig{ServerName: "test", Timeout: 500 * time.Millisecond, Retries: 3})
	defer retry.Close()
	if err := retry.Call("echo", echoReq{Text: "c"}, &resp); err != nil {
		t.Fatalf("call after Resume failed: %v", err)
	}
}

func TestServerCloseSeversClients(t *testing.T) {
	s, _ := newEchoServer(t, ServerConfig{Name: "test"})
	c := Dial(s.Addr(), ClientConfig{ServerName: "test", Timeout: 100 * time.Millisecond, Retries: 0})
	defer c.Close()
	if err := c.Call("echo", echoReq{Text: "a"}, nil); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := c.Call("echo", echoReq{Text: "b"}, nil); err == nil {
		t.Fatal("call to closed server succeeded")
	}
}

func TestAuthRequired(t *testing.T) {
	ca, err := gsi.NewCA("/O=Grid/CN=CA", time.Now(), 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := newEchoServer(t, ServerConfig{Name: "svc", Anchor: ca.Certificate()})

	// Unauthenticated client is rejected.
	anon := Dial(s.Addr(), ClientConfig{ServerName: "svc", Timeout: 200 * time.Millisecond, Retries: 0})
	defer anon.Close()
	if err := anon.Call("echo", echoReq{Text: "x"}, nil); err == nil || !IsRemote(err) {
		t.Fatalf("anonymous call: want auth error, got %v", err)
	}

	// Authenticated client passes and the handler sees the subject.
	user, _ := ca.IssueUser("/O=Grid/CN=jfrey", time.Now(), time.Hour)
	proxy, _ := gsi.NewProxy(user, time.Now(), 30*time.Minute)
	authed := Dial(s.Addr(), ClientConfig{ServerName: "svc", Credential: proxy})
	defer authed.Close()
	var who echoResp
	if err := authed.Call("whoami", struct{}{}, &who); err != nil {
		t.Fatal(err)
	}
	if who.Text != "/O=Grid/CN=jfrey" {
		t.Fatalf("peer subject = %q", who.Text)
	}
}

func TestAuthExpiredProxyRejectedThenRefreshed(t *testing.T) {
	now := time.Now()
	ca, _ := gsi.NewCA("/O=Grid/CN=CA", now, 24*time.Hour)
	s, _ := newEchoServer(t, ServerConfig{Name: "svc", Anchor: ca.Certificate()})
	user, _ := ca.IssueUser("/O=Grid/CN=u", now.Add(-2*time.Hour), 24*time.Hour)
	expired, _ := gsi.NewProxy(user, now.Add(-2*time.Hour), time.Hour)
	c := Dial(s.Addr(), ClientConfig{ServerName: "svc", Credential: expired, Timeout: 200 * time.Millisecond, Retries: 0})
	defer c.Close()
	if err := c.Call("echo", echoReq{Text: "x"}, nil); err == nil {
		t.Fatal("expired proxy accepted")
	}
	fresh, _ := gsi.NewProxy(user, now, time.Hour)
	c.SetCredential(fresh)
	if err := c.Call("echo", echoReq{Text: "x"}, nil); err != nil {
		t.Fatalf("refreshed proxy rejected: %v", err)
	}
}

func TestWrongServerNameContextRejected(t *testing.T) {
	now := time.Now()
	ca, _ := gsi.NewCA("/O=Grid/CN=CA", now, 24*time.Hour)
	s, _ := newEchoServer(t, ServerConfig{Name: "svc-a", Anchor: ca.Certificate()})
	user, _ := ca.IssueUser("/O=Grid/CN=u", now, time.Hour)
	// Client binds tokens to "svc-b": the server must refuse them.
	c := Dial(s.Addr(), ClientConfig{ServerName: "svc-b", Credential: user, Timeout: 200 * time.Millisecond, Retries: 0})
	defer c.Close()
	if err := c.Call("echo", echoReq{Text: "x"}, nil); err == nil {
		t.Fatal("cross-service token accepted")
	}
}

func TestReplyCacheEviction(t *testing.T) {
	c := newReplyCache(2)
	k1 := cacheKey{"a", 1}
	k2 := cacheKey{"a", 2}
	k3 := cacheKey{"a", 3}
	c.put(k1, &Message{Seq: 1})
	c.put(k2, &Message{Seq: 2})
	c.put(k3, &Message{Seq: 3})
	if _, ok := c.get(k1); ok {
		t.Fatal("oldest entry not evicted")
	}
	if _, ok := c.get(k3); !ok {
		t.Fatal("newest entry missing")
	}
	// Duplicate put does not double-insert.
	c.put(k3, &Message{Seq: 99})
	if m, _ := c.get(k3); m.Seq != 3 {
		t.Fatal("duplicate put overwrote cached reply")
	}
}

func TestClosedClient(t *testing.T) {
	s, _ := newEchoServer(t, ServerConfig{Name: "test"})
	c := Dial(s.Addr(), ClientConfig{ServerName: "test"})
	c.Close()
	if err := c.Call("echo", echoReq{}, nil); err == nil {
		t.Fatal("call on closed client succeeded")
	}
	_ = s
}
