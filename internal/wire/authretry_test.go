package wire

import (
	"encoding/json"
	"sync/atomic"
	"testing"
	"time"

	"condorg/internal/gsi"
)

// TestAuthFailureNotCachedAcrossRefresh: a request refused for an expired
// credential must NOT poison the reply cache — after the client refreshes
// its proxy, retrying the SAME sequence number re-evaluates authentication
// and the request executes (exactly once).
func TestAuthFailureNotCachedAcrossRefresh(t *testing.T) {
	now := time.Now()
	ca, err := gsi.NewCA("/O=Grid/CN=CA", now, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	user, _ := ca.IssueUser("/O=Grid/CN=u", now.Add(-3*time.Hour), 24*time.Hour)
	expired, _ := gsi.NewProxy(user, now.Add(-2*time.Hour), time.Hour)

	var count atomic.Int64
	s, err := NewServer(ServerConfig{Name: "auth", Anchor: ca.Certificate()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Handle("work", func(string, json.RawMessage) (any, error) {
		count.Add(1)
		return struct{}{}, nil
	})

	c := Dial(s.Addr(), ClientConfig{
		ServerName: "auth", Credential: expired,
		Timeout: 500 * time.Millisecond, Retries: -1,
	})
	defer c.Close()
	seq := c.NextSeq()
	if err := c.CallSeq(seq, "work", struct{}{}, nil); err == nil {
		t.Fatal("expired proxy accepted")
	}
	if count.Load() != 0 {
		t.Fatal("handler ran despite auth failure")
	}
	// Refresh and retry the same sequence number.
	fresh, _ := gsi.NewProxy(user, now, time.Hour)
	c.SetCredential(fresh)
	if err := c.CallSeq(seq, "work", struct{}{}, nil); err != nil {
		t.Fatalf("refreshed retry failed: %v", err)
	}
	if count.Load() != 1 {
		t.Fatalf("handler ran %d times, want 1", count.Load())
	}
	// And the successful reply IS cached from here on.
	if err := c.CallSeq(seq, "work", struct{}{}, nil); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 1 {
		t.Fatalf("cached retry re-executed: %d", count.Load())
	}
}
