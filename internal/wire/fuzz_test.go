package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"testing"
)

// fuzzSeedMessages covers every field combination the two codecs carry.
func fuzzSeedMessages() []*Message {
	return []*Message{
		{Kind: "req", Method: "echo", ClientID: "c1", Seq: 1},
		{Kind: "req", Method: "gram.batch-submit", ClientID: "c2", Seq: 1 << 40,
			Session: "abcdef0123456789", Body: json.RawMessage(`{"entries":[{"a":1},{"a":2}]}`)},
		{Kind: "resp", ClientID: "c3", Seq: 7, Error: "auth: unknown or expired session", Fault: "AuthExpired"},
		{Kind: "resp", ClientID: "c4", Seq: 0, Body: json.RawMessage(`{}`)},
	}
}

// FuzzDecodeMessage asserts the frame decoder never panics: arbitrary
// bytes either decode to a message or return an error. Both codecs share
// the entry point (binary frames self-identify by the leading byte).
func FuzzDecodeMessage(f *testing.F) {
	for _, m := range fuzzSeedMessages() {
		for _, codec := range []string{CodecJSON, CodecBinary} {
			if data, err := encodeMessage(m, codec); err == nil {
				f.Add(data)
				// Truncations and corruptions of valid frames are the
				// interesting seeds.
				f.Add(data[:len(data)/2])
				if len(data) > 4 {
					mut := append([]byte(nil), data...)
					mut[3] ^= 0xFF
					f.Add(mut)
				}
			}
		}
	}
	f.Add([]byte{binaryMagic})
	f.Add([]byte{binaryMagic, binaryVersion})
	f.Add([]byte{binaryMagic, binaryVersion, binKindReq, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeMessage(data)
		if err == nil && m == nil {
			t.Fatal("nil message with nil error")
		}
		if err == nil && m.Kind != "req" && m.Kind != "resp" && m.Kind != "" {
			// JSON tolerates arbitrary kinds; binary must not invent one.
			if len(data) > 0 && data[0] == binaryMagic {
				t.Fatalf("binary decode produced kind %q", m.Kind)
			}
		}
	})
}

// Every message must survive encode→decode unchanged in both codecs.
func TestCodecRoundTrip(t *testing.T) {
	for _, codec := range []string{CodecJSON, CodecBinary} {
		for _, in := range fuzzSeedMessages() {
			data, err := encodeMessage(in, codec)
			if err != nil {
				t.Fatalf("%s encode: %v", codec, err)
			}
			out, err := decodeMessage(data)
			if err != nil {
				t.Fatalf("%s decode: %v", codec, err)
			}
			if out.Kind != in.Kind || out.Method != in.Method || out.ClientID != in.ClientID ||
				out.Seq != in.Seq || out.Session != in.Session || out.Error != in.Error ||
				out.Fault != in.Fault || !bytes.Equal(out.Body, in.Body) {
				t.Fatalf("%s round trip:\n in  %+v\n out %+v", codec, in, out)
			}
		}
	}
}

// Every proper prefix of a valid binary frame must decode to an error,
// never a panic and never a silently short message.
func TestBinaryDecodeTruncations(t *testing.T) {
	m := fuzzSeedMessages()[1]
	data, err := encodeMessage(m, CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n < len(data); n++ {
		if _, err := decodeMessage(data[:n]); err == nil {
			t.Fatalf("truncation at %d/%d decoded cleanly", n, len(data))
		}
	}
	// Trailing garbage must be rejected too (a frame is exactly one message).
	if _, err := decodeMessage(append(append([]byte(nil), data...), 0x00)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// An oversized encoded frame must be refused at write time, not sent.
func TestWriteFrameCodecOversized(t *testing.T) {
	big := &Message{Kind: "req", Method: "m", Body: bytes.Repeat([]byte("a"), MaxFrame)}
	big.Body = json.RawMessage(`"` + string(bytes.Repeat([]byte("a"), MaxFrame)) + `"`)
	var buf bytes.Buffer
	if err := writeFrameCodec(&buf, big, CodecBinary); err == nil {
		t.Fatal("oversized binary frame written")
	}
	if buf.Len() > 4 {
		t.Fatal("partial oversized frame leaked to the wire")
	}
}

// The reader must reject an announced length beyond MaxFrame without
// allocating it.
func TestReadFrameRejectsHugeLength(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(MaxFrame+1))
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); err == nil {
		t.Fatal("oversized announced length accepted")
	}
}
