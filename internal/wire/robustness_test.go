package wire

import (
	"encoding/json"
	"sync/atomic"
	"testing"
	"time"
)

// TestReplyCacheAcrossReconnect: the client's connection dies between the
// original request and its retry; the retry arrives on a NEW connection but
// with the same sequence number, and the server's (global, not
// per-connection) reply cache still deduplicates it.
func TestReplyCacheAcrossReconnect(t *testing.T) {
	var count atomic.Int64
	s, err := NewServer(ServerConfig{Name: "rc"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Handle("incr", func(string, json.RawMessage) (any, error) {
		return map[string]int64{"n": count.Add(1)}, nil
	})
	c := Dial(s.Addr(), ClientConfig{ServerName: "rc", Timeout: time.Second, Retries: -1})
	defer c.Close()

	seq := c.NextSeq()
	var resp map[string]int64
	if err := c.CallSeq(seq, "incr", struct{}{}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp["n"] != 1 {
		t.Fatalf("first call n=%d", resp["n"])
	}
	// Sever the connection; the next CallSeq redials.
	s.Pause()
	s.Resume()
	time.Sleep(20 * time.Millisecond)
	if err := c.CallSeq(seq, "incr", struct{}{}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp["n"] != 1 {
		t.Fatalf("replayed seq executed again: n=%d", resp["n"])
	}
	if count.Load() != 1 {
		t.Fatalf("handler ran %d times", count.Load())
	}
}

// TestPipeliningOrderIndependence: slow and fast requests interleave on one
// connection; each response reaches its own caller.
func TestPipeliningOrderIndependence(t *testing.T) {
	s, err := NewServer(ServerConfig{Name: "pipe", Faults: &Faults{
		Delay: func(method string) time.Duration {
			if method == "slow" {
				return 100 * time.Millisecond
			}
			return 0
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Handle("slow", func(string, json.RawMessage) (any, error) {
		return map[string]string{"who": "slow"}, nil
	})
	s.Handle("fast", func(string, json.RawMessage) (any, error) {
		return map[string]string{"who": "fast"}, nil
	})
	c := Dial(s.Addr(), ClientConfig{ServerName: "pipe", Timeout: 2 * time.Second})
	defer c.Close()

	slowDone := make(chan string, 1)
	go func() {
		var resp map[string]string
		c.Call("slow", struct{}{}, &resp)
		slowDone <- resp["who"]
	}()
	time.Sleep(10 * time.Millisecond)
	var fastResp map[string]string
	start := time.Now()
	if err := c.Call("fast", struct{}{}, &fastResp); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 80*time.Millisecond {
		t.Fatalf("fast call blocked behind slow one: %v", d)
	}
	if fastResp["who"] != "fast" {
		t.Fatalf("fast got %q", fastResp["who"])
	}
	if who := <-slowDone; who != "slow" {
		t.Fatalf("slow got %q", who)
	}
}

// TestManyClientsOneServer: connection churn and concurrency.
func TestManyClientsOneServer(t *testing.T) {
	var count atomic.Int64
	s, err := NewServer(ServerConfig{Name: "many"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Handle("hit", func(string, json.RawMessage) (any, error) {
		count.Add(1)
		return struct{}{}, nil
	})
	done := make(chan error, 20)
	for i := 0; i < 20; i++ {
		go func() {
			c := Dial(s.Addr(), ClientConfig{ServerName: "many", Timeout: 2 * time.Second})
			defer c.Close()
			for j := 0; j < 10; j++ {
				if err := c.Call("hit", struct{}{}, nil); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 20; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if count.Load() != 200 {
		t.Fatalf("hits = %d, want 200", count.Load())
	}
}
