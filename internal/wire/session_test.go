package wire

import (
	"encoding/json"
	"net"
	"testing"
	"time"

	"condorg/internal/gsi"
)

func testCA(t *testing.T) (*gsi.Certificate, *gsi.Credential) {
	t.Helper()
	ca, err := gsi.NewCA("/O=Grid/CN=CA", time.Now(), 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	user, err := ca.IssueUser("/O=Grid/CN=jfrey", time.Now(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := gsi.NewProxy(user, time.Now(), 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	return ca.Certificate(), proxy
}

// currentConn waits for the client's live connection (post-handshake).
func currentConn(t *testing.T, c *Client) *clientConn {
	t.Helper()
	c.mu.Lock()
	cc := c.cc
	c.mu.Unlock()
	if cc == nil {
		t.Fatal("no live connection")
	}
	<-cc.ready
	return cc
}

// An authenticated dial must establish a session at connect; afterwards
// requests ride the session ID alone. We prove the second part by
// white-box clearing the credential: if any later frame still needed a
// token, the anchored server would reject it.
func TestSessionEstablishedAtConnect(t *testing.T) {
	anchor, proxy := testCA(t)
	s, _ := newEchoServer(t, ServerConfig{Name: "svc", Anchor: anchor})
	c := Dial(s.Addr(), ClientConfig{ServerName: "svc", Credential: proxy})
	defer c.Close()

	var who echoResp
	if err := c.Call("whoami", struct{}{}, &who); err != nil {
		t.Fatal(err)
	}
	if who.Text != "/O=Grid/CN=jfrey" {
		t.Fatalf("peer subject = %q", who.Text)
	}
	cc := currentConn(t, c)
	if cc.session == "" {
		t.Fatal("no session established on authenticated connection")
	}

	c.mu.Lock()
	c.cfg.Credential = nil // white-box: no tokens can be signed from here on
	c.mu.Unlock()
	if err := c.Call("whoami", struct{}{}, &who); err != nil {
		t.Fatalf("session-authenticated call failed: %v", err)
	}
	if who.Text != "/O=Grid/CN=jfrey" {
		t.Fatalf("session peer subject = %q", who.Text)
	}
}

// A redial must re-handshake: sessions die with their connection.
func TestSessionRedialRehandshakes(t *testing.T) {
	anchor, proxy := testCA(t)
	s, _ := newEchoServer(t, ServerConfig{Name: "svc", Anchor: anchor})
	c := Dial(s.Addr(), ClientConfig{ServerName: "svc", Credential: proxy})
	defer c.Close()

	if err := c.Call("echo", echoReq{Text: "a"}, nil); err != nil {
		t.Fatal(err)
	}
	cc1 := currentConn(t, c)
	first := cc1.session
	c.drop(cc1) // simulate a broken connection

	if err := c.Call("echo", echoReq{Text: "b"}, nil); err != nil {
		t.Fatalf("call after reconnect failed: %v", err)
	}
	cc2 := currentConn(t, c)
	if cc2 == cc1 {
		t.Fatal("connection not replaced")
	}
	if cc2.session == "" || cc2.session == first {
		t.Fatalf("redial reused session %q (was %q)", cc2.session, first)
	}
}

// The binary codec is negotiated by the handshake and used for both
// directions afterwards.
func TestBinaryCodecNegotiated(t *testing.T) {
	s, count := newEchoServer(t, ServerConfig{Name: "svc"})
	c := Dial(s.Addr(), ClientConfig{ServerName: "svc", Codec: CodecBinary})
	defer c.Close()

	var resp echoResp
	if err := c.Call("echo", echoReq{Text: "bin"}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Text != "bin" {
		t.Fatalf("echo = %q", resp.Text)
	}
	if cc := currentConn(t, c); cc.codec != CodecBinary {
		t.Fatalf("negotiated codec = %q, want binary", cc.codec)
	}
	// And with auth on top: session + binary on the same handshake.
	anchor, proxy := testCA(t)
	s2, _ := newEchoServer(t, ServerConfig{Name: "svc", Anchor: anchor})
	c2 := Dial(s2.Addr(), ClientConfig{ServerName: "svc", Credential: proxy, Codec: CodecBinary})
	defer c2.Close()
	if err := c2.Call("echo", echoReq{Text: "x"}, nil); err != nil {
		t.Fatal(err)
	}
	cc2 := currentConn(t, c2)
	if cc2.codec != CodecBinary || cc2.session == "" {
		t.Fatalf("codec=%q session=%q, want binary + session", cc2.codec, cc2.session)
	}
	_ = count
}

// legacyV1Server speaks the pre-handshake protocol: JSON frames only, and
// any unknown method (including wire.hello) gets the v1 error string.
func legacyV1Server(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				for {
					msg, err := ReadFrame(conn)
					if err != nil {
						return
					}
					resp := &Message{ClientID: msg.ClientID, Seq: msg.Seq, Kind: "resp"}
					if msg.Method == "echo" {
						resp.Body = msg.Body
					} else {
						resp.Error = "wire: no such method " + msg.Method
					}
					if WriteFrame(conn, resp) != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// A v2 client offered the binary codec must degrade transparently against
// a v1 server: one hello probe, then per-message semantics and JSON
// frames, with the legacy verdict remembered across redials.
func TestLegacyServerFallback(t *testing.T) {
	addr := legacyV1Server(t)
	c := Dial(addr, ClientConfig{ServerName: "svc", Codec: CodecBinary})
	defer c.Close()

	var resp echoResp
	if err := c.Call("echo", echoReq{Text: "old"}, &resp); err != nil {
		t.Fatalf("call against v1 server failed: %v", err)
	}
	if resp.Text != "old" {
		t.Fatalf("echo = %q", resp.Text)
	}
	c.mu.Lock()
	legacy := c.legacy
	c.mu.Unlock()
	if !legacy {
		t.Fatal("client did not remember the server is legacy")
	}
	cc := currentConn(t, c)
	if cc.codec != "" || cc.session != "" {
		t.Fatalf("legacy conn negotiated codec=%q session=%q", cc.codec, cc.session)
	}
}

// DisableSession preserves exact v1 behaviour: no handshake, a signed
// token on every message.
func TestDisableSessionKeepsPerMessageTokens(t *testing.T) {
	anchor, proxy := testCA(t)
	s, _ := newEchoServer(t, ServerConfig{Name: "svc", Anchor: anchor})
	c := Dial(s.Addr(), ClientConfig{ServerName: "svc", Credential: proxy, DisableSession: true})
	defer c.Close()

	var who echoResp
	if err := c.Call("whoami", struct{}{}, &who); err != nil {
		t.Fatal(err)
	}
	if who.Text != "/O=Grid/CN=jfrey" {
		t.Fatalf("peer subject = %q", who.Text)
	}
	if cc := currentConn(t, c); cc.session != "" {
		t.Fatalf("DisableSession established session %q", cc.session)
	}
}

// A stale or foreign session ID must be rejected as AuthExpired — the
// client's cue to re-handshake — and must not be reply-cached.
func TestUnknownSessionRejected(t *testing.T) {
	anchor, proxy := testCA(t)
	s, _ := newEchoServer(t, ServerConfig{Name: "svc", Anchor: anchor})
	c := Dial(s.Addr(), ClientConfig{ServerName: "svc", Credential: proxy})
	defer c.Close()
	if err := c.Call("echo", echoReq{Text: "a"}, nil); err != nil {
		t.Fatal(err)
	}
	cc := currentConn(t, c)
	cc.wmu.Lock()
	cc.session = "forged-" + cc.session // white-box: corrupt the session ID
	cc.wmu.Unlock()
	err := c.Call("echo", echoReq{Text: "b"}, nil)
	if err == nil || !IsRemote(err) {
		t.Fatalf("forged session: want remote auth error, got %v", err)
	}
}

// Regression: a frame write blocked on a peer that never reads must not
// wedge the whole client. Close (which needs c.mu on the old code path)
// has to return promptly and fail the stuck call.
func TestBlockedWriteDoesNotWedgeClient(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			accepted <- conn // never read from it: TCP buffers fill and writes block
		}
	}()

	c := Dial(ln.Addr().String(), ClientConfig{ServerName: "svc", Timeout: 30 * time.Second, Retries: -1})
	big := make([]byte, 12<<20)
	done := make(chan error, 1)
	go func() {
		done <- c.Call("echo", struct {
			Blob []byte `json:"blob"`
		}{big}, nil)
	}()

	// Wait until the writer is actually stuck in the kernel send path.
	deadline := time.After(5 * time.Second)
	for {
		c.mu.Lock()
		stuck := c.cc != nil
		c.mu.Unlock()
		if stuck {
			break
		}
		select {
		case <-deadline:
			t.Fatal("call never dialed")
		case <-time.After(5 * time.Millisecond):
		}
	}
	time.Sleep(50 * time.Millisecond)

	closed := make(chan struct{})
	go func() {
		c.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("Close blocked behind a stuck frame write")
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("write to never-reading peer succeeded")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stuck call did not fail after Close")
	}
	if conn := <-accepted; conn != nil {
		conn.Close()
	}
}

// Regression for the old dropConn: tearing down one connection must wake
// and deregister exactly that connection's waiters, leaving calls on
// other (newer) connections untouched.
func TestDropSignalsOnlyOwnWaiters(t *testing.T) {
	c := Dial("127.0.0.1:1", ClientConfig{ServerName: "svc"})
	defer c.Close()
	cc1 := &clientConn{ready: make(chan struct{})}
	cc2 := &clientConn{ready: make(chan struct{})}
	ch1 := make(chan *Message, 1)
	ch2 := make(chan *Message, 1)
	c.mu.Lock()
	c.pending[1] = pendingCall{ch: ch1, cc: cc1}
	c.pending[2] = pendingCall{ch: ch2, cc: cc2}
	c.mu.Unlock()

	c.drop(cc1)

	select {
	case m := <-ch1:
		if m != nil {
			t.Fatalf("dropped waiter got %+v, want nil signal", m)
		}
	default:
		t.Fatal("waiter on dropped connection not signalled")
	}
	c.mu.Lock()
	_, gone := c.pending[1]
	p2, kept := c.pending[2]
	c.mu.Unlock()
	if gone {
		t.Fatal("dropped connection's pending entry not deleted")
	}
	if !kept || p2.cc != cc2 {
		t.Fatal("other connection's pending entry disturbed")
	}
	select {
	case <-ch2:
		t.Fatal("waiter on live connection spuriously signalled")
	default:
	}
}

// The server must keep serving v1 clients (per-message tokens, JSON, no
// hello) unchanged — compatibility in the server->old-client direction.
func TestV2ServerServesV1Client(t *testing.T) {
	anchor, proxy := testCA(t)
	s, _ := newEchoServer(t, ServerConfig{Name: "svc", Anchor: anchor})
	// DisableSession + JSON codec is exactly what a v1 client sends.
	c := Dial(s.Addr(), ClientConfig{ServerName: "svc", Credential: proxy, DisableSession: true})
	defer c.Close()
	for i := 0; i < 3; i++ {
		var resp echoResp
		if err := c.Call("echo", echoReq{Text: "v1"}, &resp); err != nil {
			t.Fatal(err)
		}
	}
}

// Hello is idempotent and sessions are per-connection: two clients get
// distinct sessions and neither can observe the other's.
func TestSessionsAreDistinctPerConnection(t *testing.T) {
	anchor, proxy := testCA(t)
	s, _ := newEchoServer(t, ServerConfig{Name: "svc", Anchor: anchor})
	c1 := Dial(s.Addr(), ClientConfig{ServerName: "svc", Credential: proxy})
	defer c1.Close()
	c2 := Dial(s.Addr(), ClientConfig{ServerName: "svc", Credential: proxy})
	defer c2.Close()
	if err := c1.Call("echo", echoReq{Text: "a"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := c2.Call("echo", echoReq{Text: "b"}, nil); err != nil {
		t.Fatal(err)
	}
	s1 := currentConn(t, c1).session
	s2 := currentConn(t, c2).session
	if s1 == "" || s2 == "" || s1 == s2 {
		t.Fatalf("sessions %q / %q: want two distinct non-empty IDs", s1, s2)
	}
}

// Sanity for the batch-verb fallback signal shared with gram.
func TestIsNoSuchMethod(t *testing.T) {
	s, _ := newEchoServer(t, ServerConfig{Name: "svc"})
	c := Dial(s.Addr(), ClientConfig{ServerName: "svc"})
	defer c.Close()
	err := c.Call("gram.batch-submit", json.RawMessage(`{}`), nil)
	if !IsNoSuchMethod(err) {
		t.Fatalf("want no-such-method verdict, got %v", err)
	}
	if IsNoSuchMethod(nil) || IsNoSuchMethod(ErrTimeout) {
		t.Fatal("false positive")
	}
}
