package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"condorg/internal/gsi"
)

// Codec names accepted by ClientConfig.Codec and offered in the wire.hello
// handshake. JSON is the v1 framing every peer understands; the binary
// codec skips per-frame JSON marshal of chunk-sized bodies and is used
// only after both ends agree to it at handshake.
const (
	CodecJSON   = "json"
	CodecBinary = "binary"
)

// Binary frames self-identify: the first payload byte is binaryMagic,
// which can never begin a JSON object ('{'). Readers are therefore always
// bimodal — negotiation gates only which codec a peer writes, so a frame
// from either era decodes correctly regardless of handshake state.
const (
	binaryMagic   = 0xB1
	binaryVersion = 0x01
)

const (
	binKindReq  = 0x01
	binKindResp = 0x02
)

var errTruncated = errors.New("wire: truncated binary frame")

// encodeMessage marshals m in the given codec ("" and "json" both mean
// the v1 JSON encoding).
func encodeMessage(m *Message, codec string) ([]byte, error) {
	if codec != CodecBinary {
		return json.Marshal(m)
	}
	return encodeBinary(m)
}

// decodeMessage unmarshals a frame payload in whichever codec it was
// written in, keyed off the leading byte.
func decodeMessage(data []byte) (*Message, error) {
	if len(data) > 0 && data[0] == binaryMagic {
		return decodeBinary(data)
	}
	var m Message
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

func encodeBinary(m *Message) ([]byte, error) {
	var tok []byte
	if m.Token != nil {
		var err error
		tok, err = json.Marshal(m.Token)
		if err != nil {
			return nil, err
		}
	}
	var kind byte
	switch m.Kind {
	case "req":
		kind = binKindReq
	case "resp":
		kind = binKindResp
	default:
		return nil, fmt.Errorf("wire: cannot encode kind %q", m.Kind)
	}
	buf := make([]byte, 0, 64+len(m.Body)+len(tok))
	buf = append(buf, binaryMagic, binaryVersion, kind)
	buf = binary.AppendUvarint(buf, m.Seq)
	buf = appendField(buf, []byte(m.ClientID))
	buf = appendField(buf, []byte(m.Method))
	buf = appendField(buf, []byte(m.Session))
	buf = appendField(buf, []byte(m.Error))
	buf = appendField(buf, []byte(m.Fault))
	buf = appendField(buf, tok)
	buf = appendField(buf, m.Body)
	return buf, nil
}

func appendField(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

// binReader is a cursor over a binary frame payload. All reads are
// bounds-checked; a short or corrupt frame sets err and subsequent reads
// return zero values, so decodeBinary errors instead of panicking.
type binReader struct {
	data []byte
	err  error
}

func (r *binReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data)
	if n <= 0 {
		r.err = errTruncated
		return 0
	}
	r.data = r.data[n:]
	return v
}

func (r *binReader) field() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.data)) {
		r.err = errTruncated
		return nil
	}
	b := r.data[:n]
	r.data = r.data[n:]
	return b
}

func decodeBinary(data []byte) (*Message, error) {
	if len(data) < 3 {
		return nil, errTruncated
	}
	if data[1] != binaryVersion {
		return nil, fmt.Errorf("wire: unknown binary frame version %d", data[1])
	}
	m := &Message{}
	switch data[2] {
	case binKindReq:
		m.Kind = "req"
	case binKindResp:
		m.Kind = "resp"
	default:
		return nil, fmt.Errorf("wire: unknown binary frame kind %d", data[2])
	}
	r := &binReader{data: data[3:]}
	m.Seq = r.uvarint()
	m.ClientID = string(r.field())
	m.Method = string(r.field())
	m.Session = string(r.field())
	m.Error = string(r.field())
	m.Fault = string(r.field())
	tok := r.field()
	body := r.field()
	if r.err != nil {
		return nil, r.err
	}
	if len(r.data) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after binary frame", len(r.data))
	}
	if len(tok) > 0 {
		m.Token = new(gsi.AuthToken)
		if err := json.Unmarshal(tok, m.Token); err != nil {
			return nil, fmt.Errorf("wire: bad token in binary frame: %w", err)
		}
	}
	if len(body) > 0 {
		m.Body = json.RawMessage(body)
	}
	return m, nil
}

// writeFrameCodec writes one framed message in the given codec.
func writeFrameCodec(w io.Writer, m *Message, codec string) error {
	data, err := encodeMessage(m, codec)
	if err != nil {
		return err
	}
	if len(data) > MaxFrame {
		return fmt.Errorf("wire: frame too large: %d", len(data))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}
