package wire

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	mrand "math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"condorg/internal/faultclass"
	"condorg/internal/gsi"
)

// ClientConfig configures a Client.
type ClientConfig struct {
	// ServerName must match the server's configured Name; it binds auth
	// tokens to this service.
	ServerName string
	// Credential signs per-request auth tokens; nil sends no token.
	Credential *gsi.Credential
	// Clock for token issuance; defaults to wall time.
	Clock gsi.Clock
	// Timeout is the per-attempt wait for a response (default 2s).
	Timeout time.Duration
	// Retries is how many times a timed-out request is re-sent with the
	// SAME sequence number (default 3; -1 disables retries entirely).
	// Retries are what make the reply cache load-bearing.
	Retries int
	// RetryBackoff is the base delay before the first retry; it doubles
	// on each subsequent attempt (default 50ms).
	RetryBackoff time.Duration
	// RetryBackoffMax caps the exponential growth (default 1s). Up to
	// 50% random jitter is added on top of each delay so simultaneous
	// retries against a recovering server spread out.
	RetryBackoffMax time.Duration
}

// Client is a connection-caching RPC client. Concurrent Calls multiplex
// over one TCP connection; a broken connection is redialed transparently on
// the next attempt, which is exactly the "client repeats the request"
// behaviour of the GRAM two-phase commit protocol.
type Client struct {
	cfg      ClientConfig
	addr     string
	clientID string
	seq      atomic.Uint64

	mu      sync.Mutex
	conn    net.Conn
	pending map[uint64]chan *Message
	closed  bool
}

// Dial creates a client for the server at addr. No connection is made
// until the first Call.
func Dial(addr string, cfg ClientConfig) *Client {
	if cfg.Clock == nil {
		cfg.Clock = gsi.WallClock
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.Retries == 0 {
		cfg.Retries = 3
	} else if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	if cfg.RetryBackoffMax == 0 {
		cfg.RetryBackoffMax = time.Second
	}
	if cfg.RetryBackoffMax < cfg.RetryBackoff {
		cfg.RetryBackoffMax = cfg.RetryBackoff
	}
	idBytes := make([]byte, 8)
	rand.Read(idBytes)
	return &Client{
		cfg:      cfg,
		addr:     addr,
		clientID: hex.EncodeToString(idBytes),
		pending:  make(map[uint64]chan *Message),
	}
}

// ClientID returns the identifier that keys this client's sequence space.
func (c *Client) ClientID() string { return c.clientID }

// SetCredential replaces the signing credential (used after proxy refresh).
func (c *Client) SetCredential(cred *gsi.Credential) {
	c.mu.Lock()
	c.cfg.Credential = cred
	c.mu.Unlock()
}

// NextSeq reserves a fresh sequence number. CallSeq with the same number is
// idempotent on the server, which is how the GRAM client achieves
// exactly-once submission across crashes: it journals the sequence number
// before first use and replays it during recovery.
func (c *Client) NextSeq() uint64 { return c.seq.Add(1) }

// Call performs an RPC with a fresh sequence number.
func (c *Client) Call(method string, req, resp any) error {
	return c.CallSeq(c.NextSeq(), method, req, resp)
}

// CallSeq performs an RPC with a caller-chosen sequence number, retrying on
// timeout with the same number.
func (c *Client) CallSeq(seq uint64, method string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("wire: marshal request: %w", err)
	}
	var lastErr error = ErrTimeout
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			time.Sleep(c.backoff(attempt))
		}
		msg, err := c.attempt(seq, method, body)
		if err != nil {
			lastErr = err
			continue
		}
		if msg.Error != "" {
			return &RemoteError{Msg: msg.Error, Class: faultclass.Parse(msg.Fault)}
		}
		if resp != nil && len(msg.Body) > 0 {
			if err := json.Unmarshal(msg.Body, resp); err != nil {
				return fmt.Errorf("wire: unmarshal response: %w", err)
			}
		}
		return nil
	}
	// Transport failures are transient by definition: the verdict on
	// the job (if any) lives at the site, unreached.
	return faultclass.New(faultclass.Transient,
		fmt.Errorf("%w: %s (%v)", ErrTimeout, method, lastErr))
}

// backoff computes the delay before retry attempt n (1-based):
// exponential from RetryBackoff, capped at RetryBackoffMax, with up to
// 50% random jitter.
func (c *Client) backoff(n int) time.Duration {
	d := c.cfg.RetryBackoff
	for i := 1; i < n && d < c.cfg.RetryBackoffMax; i++ {
		d *= 2
	}
	if d > c.cfg.RetryBackoffMax {
		d = c.cfg.RetryBackoffMax
	}
	return d + time.Duration(mrand.Int63n(int64(d)/2+1))
}

func (c *Client) attempt(seq uint64, method string, body json.RawMessage) (*Message, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	cred := c.cfg.Credential
	c.mu.Unlock()

	msg := &Message{
		ClientID: c.clientID,
		Seq:      seq,
		Kind:     "req",
		Method:   method,
		Body:     body,
	}
	if cred != nil {
		tok, err := gsi.NewAuthToken(cred, authContext(c.cfg.ServerName, method), c.cfg.Clock())
		if err != nil {
			return nil, err
		}
		msg.Token = tok
	}

	ch := make(chan *Message, 1)
	c.mu.Lock()
	c.pending[seq] = ch
	conn, err := c.connLocked()
	if err != nil {
		delete(c.pending, seq)
		c.mu.Unlock()
		return nil, err
	}
	err = WriteFrame(conn, msg)
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
	}()
	if err != nil {
		c.dropConn(conn)
		return nil, err
	}
	select {
	case m := <-ch:
		if m == nil {
			return nil, fmt.Errorf("wire: connection lost")
		}
		return m, nil
	case <-time.After(c.cfg.Timeout):
		return nil, ErrTimeout
	}
}

// connLocked returns the live connection, dialing if necessary. c.mu held.
func (c *Client) connLocked() (net.Conn, error) {
	if c.conn != nil {
		return c.conn, nil
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.cfg.Timeout)
	if err != nil {
		return nil, err
	}
	c.conn = conn
	go c.readLoop(conn)
	return conn, nil
}

func (c *Client) readLoop(conn net.Conn) {
	for {
		msg, err := ReadFrame(conn)
		if err != nil {
			c.dropConn(conn)
			return
		}
		if msg.Kind != "resp" {
			continue
		}
		c.mu.Lock()
		ch, ok := c.pending[msg.Seq]
		c.mu.Unlock()
		if ok {
			select {
			case ch <- msg:
			default:
			}
		}
	}
}

// dropConn discards conn and wakes all waiters so they can retry on a fresh
// connection.
func (c *Client) dropConn(conn net.Conn) {
	conn.Close()
	c.mu.Lock()
	if c.conn == conn {
		c.conn = nil
	}
	for seq, ch := range c.pending {
		select {
		case ch <- nil:
		default:
		}
		_ = seq
	}
	c.mu.Unlock()
}

// Ping checks liveness with a tiny RPC round-trip using a single attempt
// (no retries — a probe wants a fast verdict, and mutating the shared retry
// budget would race concurrent Calls).
func (c *Client) Ping(method string) error {
	msg, err := c.attempt(c.NextSeq(), method, []byte("{}"))
	if err != nil {
		return faultclass.New(faultclass.Transient, err)
	}
	if msg.Error != "" {
		return &RemoteError{Msg: msg.Error, Class: faultclass.Parse(msg.Fault)}
	}
	return nil
}

// Close releases the connection. In-flight calls fail with ErrClosed or a
// transport error.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	conn := c.conn
	c.conn = nil
	c.mu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}
