package wire

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	mrand "math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"condorg/internal/faultclass"
	"condorg/internal/gsi"
)

// ClientConfig configures a Client.
type ClientConfig struct {
	// ServerName must match the server's configured Name; it binds auth
	// tokens to this service.
	ServerName string
	// Credential authenticates this client. With a credential set the
	// client establishes a per-connection session at connect (one token
	// signed for the wire.hello handshake) and subsequent requests carry
	// only the session ID; nil sends no authentication at all.
	Credential *gsi.Credential
	// Clock for token issuance; defaults to wall time.
	Clock gsi.Clock
	// Timeout is the per-attempt wait for a response (default 2s).
	Timeout time.Duration
	// Retries is how many times a timed-out request is re-sent with the
	// SAME sequence number (default 3; -1 disables retries entirely).
	// Retries are what make the reply cache load-bearing.
	Retries int
	// RetryBackoff is the base delay before the first retry; it doubles
	// on each subsequent attempt (default 50ms).
	RetryBackoff time.Duration
	// RetryBackoffMax caps the exponential growth (default 1s). Up to
	// 50% random jitter is added on top of each delay so simultaneous
	// retries against a recovering server spread out.
	RetryBackoffMax time.Duration
	// Codec requests a frame encoding: CodecJSON (the default) or
	// CodecBinary. Binary is negotiated by the wire.hello handshake and
	// falls back to JSON transparently against servers that predate it.
	Codec string
	// DisableSession keeps per-message auth tokens even when a
	// credential is set (no session handshake) — the protocol v1
	// behaviour, kept for ablation and compatibility testing.
	DisableSession bool
}

// clientConn is one dialed connection plus everything negotiated on it.
// The ready channel closes once dial+handshake settle (err says how);
// fields other than err are immutable after that, so post-ready readers
// need no lock.
type clientConn struct {
	ready chan struct{}
	err   error // terminal dial/handshake error, set before ready closes

	conn    net.Conn
	wmu     sync.Mutex // serializes frame writes; never held across c.mu
	codec   string     // negotiated write codec ("" = JSON)
	session string     // authenticated session ID ("" = per-message tokens)
}

func (cc *clientConn) write(m *Message) error {
	cc.wmu.Lock()
	defer cc.wmu.Unlock()
	return writeFrameCodec(cc.conn, m, cc.codec)
}

// pendingCall tags each waiter with the connection its request went out
// on, so tearing down one connection wakes exactly its own waiters.
type pendingCall struct {
	ch chan *Message
	cc *clientConn
}

// Client is a connection-caching RPC client. Concurrent Calls multiplex
// over one TCP connection; a broken connection is redialed transparently on
// the next attempt, which is exactly the "client repeats the request"
// behaviour of the GRAM two-phase commit protocol.
type Client struct {
	cfg      ClientConfig
	addr     string
	clientID string
	seq      atomic.Uint64

	mu      sync.Mutex
	cc      *clientConn
	pending map[uint64]pendingCall
	legacy  bool // server predates wire.hello; skip future handshakes
	closed  bool
}

// Dial creates a client for the server at addr. No connection is made
// until the first Call.
func Dial(addr string, cfg ClientConfig) *Client {
	if cfg.Clock == nil {
		cfg.Clock = gsi.WallClock
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.Retries == 0 {
		cfg.Retries = 3
	} else if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	if cfg.RetryBackoffMax == 0 {
		cfg.RetryBackoffMax = time.Second
	}
	if cfg.RetryBackoffMax < cfg.RetryBackoff {
		cfg.RetryBackoffMax = cfg.RetryBackoff
	}
	idBytes := make([]byte, 8)
	rand.Read(idBytes)
	return &Client{
		cfg:      cfg,
		addr:     addr,
		clientID: hex.EncodeToString(idBytes),
		pending:  make(map[uint64]pendingCall),
	}
}

// ClientID returns the identifier that keys this client's sequence space.
func (c *Client) ClientID() string { return c.clientID }

// SetCredential replaces the signing credential (used after proxy
// refresh) and drops the current connection, forcing the next attempt to
// re-handshake — a session minted under the old credential must not
// outlive it.
func (c *Client) SetCredential(cred *gsi.Credential) {
	c.mu.Lock()
	c.cfg.Credential = cred
	cc := c.cc
	c.mu.Unlock()
	if cc != nil {
		c.drop(cc)
	}
}

// NextSeq reserves a fresh sequence number. CallSeq with the same number is
// idempotent on the server, which is how the GRAM client achieves
// exactly-once submission across crashes: it journals the sequence number
// before first use and replays it during recovery.
func (c *Client) NextSeq() uint64 { return c.seq.Add(1) }

// Call performs an RPC with a fresh sequence number.
func (c *Client) Call(method string, req, resp any) error {
	return c.CallSeq(c.NextSeq(), method, req, resp)
}

// CallSeq performs an RPC with a caller-chosen sequence number, retrying on
// timeout with the same number.
func (c *Client) CallSeq(seq uint64, method string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("wire: marshal request: %w", err)
	}
	var lastErr error = ErrTimeout
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			time.Sleep(c.backoff(attempt))
		}
		msg, err := c.attempt(seq, method, body)
		if err != nil {
			if IsRemote(err) {
				// A handshake rejection (e.g. AuthExpired) is the
				// server's verdict, not a transport loss: surface it
				// with its class instead of retrying into it.
				return err
			}
			lastErr = err
			continue
		}
		if msg.Error != "" {
			return &RemoteError{Msg: msg.Error, Class: faultclass.Parse(msg.Fault)}
		}
		if resp != nil && len(msg.Body) > 0 {
			if err := json.Unmarshal(msg.Body, resp); err != nil {
				return fmt.Errorf("wire: unmarshal response: %w", err)
			}
		}
		return nil
	}
	// Transport failures are transient by definition: the verdict on
	// the job (if any) lives at the site, unreached.
	return faultclass.New(faultclass.Transient,
		fmt.Errorf("%w: %s (%v)", ErrTimeout, method, lastErr))
}

// backoff computes the delay before retry attempt n (1-based):
// exponential from RetryBackoff, capped at RetryBackoffMax, with up to
// 50% random jitter.
func (c *Client) backoff(n int) time.Duration {
	d := c.cfg.RetryBackoff
	for i := 1; i < n && d < c.cfg.RetryBackoffMax; i++ {
		d *= 2
	}
	if d > c.cfg.RetryBackoffMax {
		d = c.cfg.RetryBackoffMax
	}
	return d + time.Duration(mrand.Int63n(int64(d)/2+1))
}

func (c *Client) attempt(seq uint64, method string, body json.RawMessage) (*Message, error) {
	cc, err := c.conn()
	if err != nil {
		return nil, err
	}
	msg := &Message{
		ClientID: c.clientID,
		Seq:      seq,
		Kind:     "req",
		Method:   method,
		Body:     body,
	}
	if cc.session != "" {
		msg.Session = cc.session
	} else {
		c.mu.Lock()
		cred := c.cfg.Credential
		c.mu.Unlock()
		if cred != nil {
			tok, err := gsi.NewAuthToken(cred, authContext(c.cfg.ServerName, method), c.cfg.Clock())
			if err != nil {
				return nil, err
			}
			msg.Token = tok
		}
	}

	ch := make(chan *Message, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.pending[seq] = pendingCall{ch: ch, cc: cc}
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		// Only remove our own registration: a concurrent drop may have
		// already cleared it, and a retry may have re-registered seq.
		if p, ok := c.pending[seq]; ok && p.ch == ch {
			delete(c.pending, seq)
		}
		c.mu.Unlock()
	}()
	// The frame goes out under the connection's own write mutex, never
	// under c.mu: a blocked TCP write must not stall unrelated callers
	// (or the teardown path that would unblock it).
	if err := cc.write(msg); err != nil {
		c.drop(cc)
		return nil, err
	}
	select {
	case m := <-ch:
		if m == nil {
			return nil, fmt.Errorf("wire: connection lost")
		}
		return m, nil
	case <-time.After(c.cfg.Timeout):
		return nil, ErrTimeout
	}
}

// conn returns the live connection, dialing and handshaking if necessary.
// Concurrent callers share one dial: the first caller establishes, the
// rest wait on ready.
func (c *Client) conn() (*clientConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if cc := c.cc; cc != nil {
		c.mu.Unlock()
		<-cc.ready
		if cc.err != nil {
			return nil, cc.err
		}
		return cc, nil
	}
	cc := &clientConn{ready: make(chan struct{})}
	c.cc = cc
	cred := c.cfg.Credential
	legacy := c.legacy
	c.mu.Unlock()

	if err := c.establish(cc, cred, legacy); err != nil {
		cc.err = err
		close(cc.ready)
		c.drop(cc)
		return nil, err
	}
	c.mu.Lock()
	superseded := c.cc != cc || c.closed
	c.mu.Unlock()
	if superseded {
		// SetCredential or Close raced the handshake; this connection's
		// session may be stale, so discard it rather than hand it out.
		cc.err = fmt.Errorf("wire: connection superseded")
		close(cc.ready)
		c.drop(cc)
		return nil, cc.err
	}
	close(cc.ready)
	return cc, nil
}

// establish dials and, when warranted, runs the wire.hello handshake on cc.
func (c *Client) establish(cc *clientConn, cred *gsi.Credential, legacy bool) error {
	conn, err := net.DialTimeout("tcp", c.addr, c.cfg.Timeout)
	if err != nil {
		return err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return ErrClosed
	}
	cc.conn = conn
	c.mu.Unlock()
	go c.readLoop(cc)
	wantSession := cred != nil && !c.cfg.DisableSession
	wantBinary := c.cfg.Codec == CodecBinary
	if legacy || (!wantSession && !wantBinary) {
		return nil // plain v1 connection; nothing to negotiate
	}
	return c.handshake(cc, cred, wantSession)
}

// handshake sends wire.hello and applies the negotiated session and codec
// to cc. Against a server that predates the handshake it marks the client
// legacy and returns successfully with v1 semantics.
func (c *Client) handshake(cc *clientConn, cred *gsi.Credential, wantSession bool) error {
	body, err := json.Marshal(helloReq{Codecs: []string{c.cfg.Codec}})
	if err != nil {
		return err
	}
	seq := c.NextSeq()
	msg := &Message{
		ClientID: c.clientID,
		Seq:      seq,
		Kind:     "req",
		Method:   HelloMethod,
		Body:     body,
	}
	if cred != nil {
		tok, err := gsi.NewAuthToken(cred, authContext(c.cfg.ServerName, HelloMethod), c.cfg.Clock())
		if err != nil {
			return err
		}
		msg.Token = tok
	}
	ch := make(chan *Message, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.pending[seq] = pendingCall{ch: ch, cc: cc}
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		if p, ok := c.pending[seq]; ok && p.ch == ch {
			delete(c.pending, seq)
		}
		c.mu.Unlock()
	}()
	if err := cc.write(msg); err != nil {
		return err
	}
	select {
	case m := <-ch:
		if m == nil {
			return fmt.Errorf("wire: connection lost during handshake")
		}
		if m.Error != "" {
			rerr := &RemoteError{Msg: m.Error, Class: faultclass.Parse(m.Fault)}
			if IsNoSuchMethod(rerr) {
				// v1 server: remember so future dials skip the probe,
				// and continue with per-message tokens + JSON frames.
				c.mu.Lock()
				c.legacy = true
				c.mu.Unlock()
				return nil
			}
			return rerr
		}
		var resp helloResp
		if err := json.Unmarshal(m.Body, &resp); err != nil {
			return fmt.Errorf("wire: bad hello response: %w", err)
		}
		if wantSession {
			cc.session = resp.Session
		}
		if resp.Codec == CodecBinary && c.cfg.Codec == CodecBinary {
			cc.wmu.Lock()
			cc.codec = CodecBinary
			cc.wmu.Unlock()
		}
		return nil
	case <-time.After(c.cfg.Timeout):
		return ErrTimeout
	}
}

func (c *Client) readLoop(cc *clientConn) {
	for {
		msg, err := ReadFrame(cc.conn)
		if err != nil {
			c.drop(cc)
			return
		}
		if msg.Kind != "resp" {
			continue
		}
		c.mu.Lock()
		p, ok := c.pending[msg.Seq]
		c.mu.Unlock()
		if ok && p.cc == cc {
			select {
			case p.ch <- msg:
			default:
			}
		}
	}
}

// drop discards cc and wakes the waiters whose requests went out on it so
// they can retry on a fresh connection. Each entry is deleted as it is
// signalled: a retry that re-registers the same seq must never receive
// this dead connection's stale nil, and waiters on other connections are
// left alone entirely.
func (c *Client) drop(cc *clientConn) {
	c.mu.Lock()
	if c.cc == cc {
		c.cc = nil
	}
	conn := cc.conn
	for seq, p := range c.pending {
		if p.cc != cc {
			continue
		}
		select {
		case p.ch <- nil:
		default:
		}
		delete(c.pending, seq)
	}
	c.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// Ping checks liveness with a tiny RPC round-trip using a single attempt
// (no retries — a probe wants a fast verdict, and mutating the shared retry
// budget would race concurrent Calls).
func (c *Client) Ping(method string) error {
	msg, err := c.attempt(c.NextSeq(), method, []byte("{}"))
	if err != nil {
		if IsRemote(err) {
			return err
		}
		return faultclass.New(faultclass.Transient, err)
	}
	if msg.Error != "" {
		return &RemoteError{Msg: msg.Error, Class: faultclass.Parse(msg.Fault)}
	}
	return nil
}

// Close releases the connection. In-flight calls fail with ErrClosed or a
// transport error.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	cc := c.cc
	c.cc = nil
	var conn net.Conn
	if cc != nil {
		conn = cc.conn
	}
	c.mu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}
