package wire

import (
	"encoding/json"
	"testing"
	"time"

	"condorg/internal/gsi"
)

func benchServer(b *testing.B, anchor *gsi.Certificate) *Server {
	b.Helper()
	s, err := NewServer(ServerConfig{Name: "bench", Anchor: anchor})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	s.Handle("echo", func(_ string, body json.RawMessage) (any, error) {
		return json.RawMessage(body), nil
	})
	return s
}

func BenchmarkRPCRoundTrip(b *testing.B) {
	s := benchServer(b, nil)
	c := Dial(s.Addr(), ClientConfig{ServerName: "bench", Timeout: 5 * time.Second})
	defer c.Close()
	req := map[string]string{"k": "v"}
	var resp map[string]string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Call("echo", req, &resp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRPCRoundTripAuthenticated(b *testing.B) {
	now := time.Now()
	ca, err := gsi.NewCA("/O=Grid/CN=CA", now, 24*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	user, _ := ca.IssueUser("/O=Grid/CN=bench", now, time.Hour)
	s := benchServer(b, ca.Certificate())
	c := Dial(s.Addr(), ClientConfig{ServerName: "bench", Credential: user, Timeout: 5 * time.Second})
	defer c.Close()
	req := map[string]string{"k": "v"}
	var resp map[string]string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Call("echo", req, &resp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRPCConcurrent(b *testing.B) {
	s := benchServer(b, nil)
	c := Dial(s.Addr(), ClientConfig{ServerName: "bench", Timeout: 5 * time.Second})
	defer c.Close()
	b.RunParallel(func(pb *testing.PB) {
		req := map[string]int{"n": 1}
		var resp map[string]int
		for pb.Next() {
			if err := c.Call("echo", req, &resp); err != nil {
				b.Fatal(err)
			}
		}
	})
}
