package wire

import (
	"encoding/json"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"condorg/internal/faultclass"
)

func chaosServer(t *testing.T, faults *Faults) (*Server, *atomic.Int64) {
	t.Helper()
	var count atomic.Int64
	s, err := NewServer(ServerConfig{Name: "chaos", Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	s.Handle("incr", func(string, json.RawMessage) (any, error) {
		return map[string]int64{"n": count.Add(1)}, nil
	})
	return s, &count
}

// TestRefuseConnPartition: with RefuseConn active the dial succeeds (the
// listener accepts) but every connection is severed before a frame flows
// — a bidirectional partition. Calls fail transient; healing restores
// service on the same address.
func TestRefuseConnPartition(t *testing.T) {
	faults := &Faults{}
	s, _ := chaosServer(t, faults)
	var partitioned atomic.Bool
	partitioned.Store(true)
	faults.SetConn(func() bool { return partitioned.Load() }, nil, nil)

	c := Dial(s.Addr(), ClientConfig{ServerName: "chaos", Timeout: 100 * time.Millisecond, Retries: 1, RetryBackoff: 10 * time.Millisecond})
	defer c.Close()
	err := c.Call("incr", struct{}{}, nil)
	if err == nil {
		t.Fatal("call succeeded across partition")
	}
	if faultclass.ClassOf(err) != faultclass.Transient {
		t.Fatalf("partition error class = %v, want Transient", faultclass.ClassOf(err))
	}
	partitioned.Store(false)
	var resp map[string]int64
	if err := c.Call("incr", struct{}{}, &resp); err != nil {
		t.Fatalf("call after heal: %v", err)
	}
	if resp["n"] != 1 {
		t.Fatalf("n = %d, want 1 (no execution during partition)", resp["n"])
	}
}

// TestBlackholeConnOneWay: requests reach the server's TCP stack but are
// discarded unread — the one-way partition where the client cannot tell
// a slow server from a dead link. Nothing executes; heal restores flow.
func TestBlackholeConnOneWay(t *testing.T) {
	faults := &Faults{}
	s, count := chaosServer(t, faults)
	var holed atomic.Bool
	holed.Store(true)
	faults.SetConn(nil, func() bool { return holed.Load() }, nil)

	c := Dial(s.Addr(), ClientConfig{ServerName: "chaos", Timeout: 100 * time.Millisecond, Retries: 1, RetryBackoff: 10 * time.Millisecond})
	defer c.Close()
	err := c.Call("incr", struct{}{}, nil)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("blackholed call: %v, want timeout", err)
	}
	if count.Load() != 0 {
		t.Fatalf("handler ran %d times through a blackhole", count.Load())
	}
	holed.Store(false)
	if err := c.Call("incr", struct{}{}, nil); err != nil {
		t.Fatalf("call after heal: %v", err)
	}
}

// TestResetMidFrameExactlyOnce: the response frame is torn mid-write and
// the connection reset. The retry (same seq) must hit the reply cache:
// the handler runs exactly once.
func TestResetMidFrameExactlyOnce(t *testing.T) {
	faults := &Faults{}
	s, count := chaosServer(t, faults)
	var resets atomic.Int64
	faults.SetConn(nil, nil, func(method string) bool {
		return method == "incr" && resets.Add(1) <= 2
	})

	c := Dial(s.Addr(), ClientConfig{ServerName: "chaos", Timeout: 200 * time.Millisecond, Retries: 4, RetryBackoff: 10 * time.Millisecond})
	defer c.Close()
	var resp map[string]int64
	if err := c.CallSeq(c.NextSeq(), "incr", struct{}{}, &resp); err != nil {
		t.Fatalf("call across torn frames: %v", err)
	}
	if resp["n"] != 1 || count.Load() != 1 {
		t.Fatalf("n=%d handler ran %d times, want exactly once", resp["n"], count.Load())
	}
	if resets.Load() < 2 {
		t.Fatalf("reset hook fired %d times, want >= 2", resets.Load())
	}
}

// TestFaultCarriedOnRemoteError: a handler error tagged with a fault
// class crosses the wire and is recoverable via faultclass.ClassOf.
func TestFaultCarriedOnRemoteError(t *testing.T) {
	s, err := NewServer(ServerConfig{Name: "cls"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Handle("lost", func(string, json.RawMessage) (any, error) {
		return nil, faultclass.New(faultclass.SiteLost, errors.New("lost by site restart"))
	})
	s.Handle("plain", func(string, json.RawMessage) (any, error) {
		return nil, errors.New("untagged")
	})
	c := Dial(s.Addr(), ClientConfig{ServerName: "cls", Timeout: time.Second})
	defer c.Close()

	err = c.Call("lost", struct{}{}, nil)
	if !IsRemote(err) || err.Error() != "lost by site restart" {
		t.Fatalf("remote error mangled: %v", err)
	}
	if faultclass.ClassOf(err) != faultclass.SiteLost {
		t.Fatalf("class = %v, want SiteLost", faultclass.ClassOf(err))
	}
	err = c.Call("plain", struct{}{}, nil)
	if !IsRemote(err) || faultclass.ClassOf(err) != faultclass.Unknown {
		t.Fatalf("untagged error: %v class %v", err, faultclass.ClassOf(err))
	}
}
