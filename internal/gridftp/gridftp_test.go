package gridftp

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"condorg/internal/gsi"
)

func newPair(t *testing.T) (*Server, *Client) {
	t.Helper()
	s, err := NewServer(t.TempDir(), ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	c := NewClient(nil, nil, 4)
	t.Cleanup(c.Close)
	return s, c
}

func randBytes(n int) []byte {
	data := make([]byte, n)
	rand.New(rand.NewSource(42)).Read(data)
	return data
}

func TestPutGetRoundTripMultiChunk(t *testing.T) {
	s, c := newPair(t)
	payload := randBytes(3*ChunkSize + 777) // forces parallel chunks
	if err := c.Put(s.Addr(), "repo/condor-binaries.tar", payload); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(s.Addr(), "repo/condor-binaries.tar")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip corrupted: %d vs %d bytes", len(got), len(payload))
	}
}

func TestPutEmptyFile(t *testing.T) {
	s, c := newPair(t)
	if err := c.Put(s.Addr(), "empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(s.Addr(), "empty")
	if err != nil || len(got) != 0 {
		t.Fatalf("empty get = %d bytes, err=%v", len(got), err)
	}
}

func TestStat(t *testing.T) {
	s, c := newPair(t)
	payload := randBytes(1000)
	c.Put(s.Addr(), "f", payload)
	size, _, exists, err := c.Stat(s.Addr(), "f")
	if err != nil || !exists || size != 1000 {
		t.Fatalf("stat: size=%d exists=%v err=%v", size, exists, err)
	}
	_, _, exists, err = c.Stat(s.Addr(), "missing")
	if err != nil || exists {
		t.Fatalf("missing stat: exists=%v err=%v", exists, err)
	}
}

func TestGetMissingFails(t *testing.T) {
	s, c := newPair(t)
	if _, err := c.Get(s.Addr(), "ghost"); err == nil {
		t.Fatal("get of missing file succeeded")
	}
}

func TestPartFilesHiddenUntilCommit(t *testing.T) {
	s, c := newPair(t)
	// Write chunks without the commit by calling the wire method directly.
	err := c.conn(s.Addr()).Call("ftp.put", putReq{Path: "wip", Offset: 0, Data: []byte("partial")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, _, exists, _ := c.Stat(s.Addr(), "wip")
	if exists {
		t.Fatal("uncommitted upload visible")
	}
	paths, _ := c.List(s.Addr(), "")
	if len(paths) != 0 {
		t.Fatalf("list shows uncommitted files: %v", paths)
	}
}

func TestCorruptAssemblyRejected(t *testing.T) {
	s, c := newPair(t)
	// Commit with a wrong CRC must fail and not expose the file.
	err := c.conn(s.Addr()).Call("ftp.put", putReq{
		Path: "bad", Offset: 0, Data: []byte("data"),
		Commit: true, Total: 4, CRC: 0xDEADBEEF,
	}, nil)
	if err == nil {
		t.Fatal("bad checksum accepted")
	}
	_, _, exists, _ := c.Stat(s.Addr(), "bad")
	if exists {
		t.Fatal("corrupt file exposed")
	}
}

func TestList(t *testing.T) {
	s, c := newPair(t)
	c.Put(s.Addr(), "bin/linux/condor_startd", randBytes(10))
	c.Put(s.Addr(), "bin/linux/condor_starter", randBytes(10))
	c.Put(s.Addr(), "data/events.dat", randBytes(10))
	paths, err := c.List(s.Addr(), "bin/")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("list bin/ = %v", paths)
	}
	all, _ := c.List(s.Addr(), "")
	if len(all) != 3 {
		t.Fatalf("list all = %v", all)
	}
}

func TestThirdPartyTransfer(t *testing.T) {
	src, c := newPair(t)
	dst, err := NewServer(t.TempDir(), ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	payload := randBytes(2*ChunkSize + 5)
	c.Put(src.Addr(), "events/run1.dat", payload)
	if err := c.Transfer(src.Addr(), "events/run1.dat", dst.Addr(), "archive/run1.dat"); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(dst.Addr(), "archive/run1.dat")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("transfer mismatch: %d bytes err=%v", len(got), err)
	}
}

func TestAuthenticatedTransfer(t *testing.T) {
	now := time.Now()
	ca, _ := gsi.NewCA("/O=Grid/CN=CA", now, 24*time.Hour)
	s, err := NewServer(t.TempDir(), ServerOptions{Anchor: ca.Certificate()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	anon := NewClient(nil, nil, 2)
	defer anon.Close()
	if err := anon.Put(s.Addr(), "f", []byte("x")); err == nil {
		t.Fatal("anonymous put accepted")
	}
	user, _ := ca.IssueUser("/O=Grid/CN=u", now, time.Hour)
	authed := NewClient(user, nil, 2)
	defer authed.Close()
	if err := authed.Put(s.Addr(), "f", []byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestPathEscapeRejected(t *testing.T) {
	s, c := newPair(t)
	secret := filepath.Join(filepath.Dir(s.Root()), "secret")
	os.WriteFile(secret, []byte("classified"), 0o600)
	if _, err := c.Get(s.Addr(), "../secret"); err == nil {
		t.Fatal("path escape allowed")
	}
}
