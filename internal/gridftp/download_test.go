package gridftp

import (
	"bytes"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"condorg/internal/wire"
)

// TestDownloadFresh: a clean resumable download equals the remote bytes
// and leaves no journal files behind.
func TestDownloadFresh(t *testing.T) {
	s, c := newPair(t)
	payload := randBytes(2*ChunkSize + 100)
	if err := c.Put(s.Addr(), "repo/blob", payload); err != nil {
		t.Fatal(err)
	}
	local := filepath.Join(t.TempDir(), "dl", "blob")
	resumed, err := c.Download(s.Addr(), "repo/blob", local)
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 0 {
		t.Fatalf("fresh download resumed from %d", resumed)
	}
	got, err := os.ReadFile(local)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("downloaded %d bytes, err=%v", len(got), err)
	}
	for _, leftover := range []string{local + ".part", local + ".meta"} {
		if _, err := os.Stat(leftover); err == nil {
			t.Fatalf("%s left behind after a completed download", leftover)
		}
	}
}

// TestDownloadResumesAfterFailure: an interrupted download leaves its
// journal; the retry continues from the acknowledged byte and fetches only
// the missing tail.
func TestDownloadResumesAfterFailure(t *testing.T) {
	var faults wire.Faults
	s, err := NewServer(t.TempDir(), ServerOptions{Faults: &faults})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := NewClient(nil, nil, 2)
	defer c.Close()
	payload := randBytes(3 * ChunkSize)
	if err := c.Put(s.Addr(), "repo/big", payload); err != nil {
		t.Fatal(err)
	}

	// Let two chunks through, then reset every ftp.get until healed. The
	// hook keeps counting after the heal so the retry's reads are metered.
	var gets atomic.Int64
	var healed atomic.Bool
	faults.SetConn(nil, nil, func(m string) bool {
		if m != "ftp.get" {
			return false
		}
		n := gets.Add(1)
		return !healed.Load() && n > 2
	})
	local := filepath.Join(t.TempDir(), "big")
	if _, err := c.Download(s.Addr(), "repo/big", local); err == nil {
		t.Fatal("download succeeded despite resets")
	}
	if _, err := os.Stat(local + ".meta"); err != nil {
		t.Fatalf("no journal after interrupted download: %v", err)
	}

	healed.Store(true)
	getsBefore := gets.Load()
	resumed, err := c.Download(s.Addr(), "repo/big", local)
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 2*ChunkSize {
		t.Fatalf("resumed from %d, want %d", resumed, 2*ChunkSize)
	}
	// Only the missing chunk moved.
	if moved := gets.Load() - getsBefore; moved != 1 {
		t.Fatalf("retry fetched %d chunks, want 1", moved)
	}
	got, err := os.ReadFile(local)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("resumed download corrupted (%d bytes, err=%v)", len(got), err)
	}
}

// TestDownloadInvalidatesStaleJournal: partial progress against an old
// version of the remote file is discarded when the remote changes — the
// sidecar's (size, CRC) identity no longer matches, so the copy restarts
// and yields the new content.
func TestDownloadInvalidatesStaleJournal(t *testing.T) {
	var faults wire.Faults
	s, err := NewServer(t.TempDir(), ServerOptions{Faults: &faults})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := NewClient(nil, nil, 2)
	defer c.Close()
	v1 := randBytes(3 * ChunkSize)
	if err := c.Put(s.Addr(), "repo/rolling", v1); err != nil {
		t.Fatal(err)
	}

	var gets atomic.Int64
	faults.SetConn(nil, nil, func(m string) bool {
		return m == "ftp.get" && gets.Add(1) > 1
	})
	local := filepath.Join(t.TempDir(), "rolling")
	if _, err := c.Download(s.Addr(), "repo/rolling", local); err == nil {
		t.Fatal("download succeeded despite resets")
	}
	faults.Clear()

	// The repository publishes a new version; the journaled v1 progress
	// must not leak into the v2 file.
	v2 := append(randBytes(2*ChunkSize), []byte("v2")...)
	if err := c.Put(s.Addr(), "repo/rolling", v2); err != nil {
		t.Fatal(err)
	}
	resumed, err := c.Download(s.Addr(), "repo/rolling", local)
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 0 {
		t.Fatalf("stale journal was honored: resumed from %d", resumed)
	}
	got, err := os.ReadFile(local)
	if err != nil || !bytes.Equal(got, v2) {
		t.Fatalf("download after version change corrupted (%d bytes, err=%v)", len(got), err)
	}
}
