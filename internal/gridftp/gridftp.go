// Package gridftp implements the GSI-authenticated bulk transfer service
// the paper uses in two places: the GlideIn bootstrap ("uses
// GSI-authenticated GridFTP to retrieve the Condor executables from a
// central repository", §5) and the CMS workflow ("all events produced are
// transferred via GridFTP to a data repository at NCSA", §6). Unlike GASS
// (random access, streaming appends), GridFTP moves whole files with
// parallel streams and end-to-end checksums.
//
// # Wire framing
//
// The service speaks the length-prefixed JSON RPC of package wire under
// four operations: ftp.stat (size + CRC-32), ftp.get (ranged read of at
// most ChunkSize bytes), ftp.put (positional write into a .part staging
// file; the final chunk carries Commit with the expected total and CRC,
// and the server verifies both before renaming the file into place), and
// ftp.list. Paths are confined to the server root.
//
// # Resume contract
//
// Get and Put re-drive whole files. Download is the resumable variant:
// it journals progress in a .part file plus a JSON sidecar recording the
// remote file's identity (size, CRC-32) and the contiguous byte count
// already on disk, so an interrupted copy continues from the last
// acknowledged byte. The coherence rule: a sidecar whose identity no
// longer matches the remote file is discarded and the copy restarts —
// partial progress is only valid against the exact bytes it came from.
package gridftp

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"condorg/internal/gsi"
	"condorg/internal/wire"
)

// ServiceName binds auth tokens to GridFTP servers.
const ServiceName = "gridftp"

// ChunkSize is the parallel-stream block size.
const ChunkSize = 256 << 10

// DefaultStreams is the default transfer parallelism.
const DefaultStreams = 4

// Server exposes a repository directory.
type Server struct {
	root string
	srv  *wire.Server
	mu   sync.Mutex
}

// ServerOptions configures a GridFTP server.
type ServerOptions struct {
	Anchor *gsi.Certificate
	Clock  gsi.Clock
	Faults *wire.Faults
}

// NewServer serves root on a fresh loopback port.
func NewServer(root string, opts ServerOptions) (*Server, error) {
	if err := os.MkdirAll(root, 0o700); err != nil {
		return nil, err
	}
	ws, err := wire.NewServer(wire.ServerConfig{
		Name:   ServiceName,
		Anchor: opts.Anchor,
		Clock:  opts.Clock,
		Faults: opts.Faults,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{root: root, srv: ws}
	ws.Handle("ftp.stat", s.handleStat)
	ws.Handle("ftp.get", s.handleGet)
	ws.Handle("ftp.put", s.handlePut)
	ws.Handle("ftp.list", s.handleList)
	return s, nil
}

// Addr returns host:port.
func (s *Server) Addr() string { return s.srv.Addr() }

// Root returns the repository path.
func (s *Server) Root() string { return s.root }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) resolve(p string) (string, error) {
	clean := filepath.Clean("/" + p)
	if strings.Contains(clean, "..") {
		return "", fmt.Errorf("gridftp: path escapes root: %q", p)
	}
	return filepath.Join(s.root, clean), nil
}

type statReq struct {
	Path string `json:"path"`
}

type statResp struct {
	Size   int64  `json:"size"`
	CRC    uint32 `json:"crc"`
	Exists bool   `json:"exists"`
}

func (s *Server) handleStat(_ string, body json.RawMessage) (any, error) {
	var req statReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	path, err := s.resolve(req.Path)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return statResp{}, nil
	}
	if err != nil {
		return nil, err
	}
	return statResp{Size: int64(len(data)), CRC: crc32.ChecksumIEEE(data), Exists: true}, nil
}

type getReq struct {
	Path   string `json:"path"`
	Offset int64  `json:"offset"`
	Len    int    `json:"len"`
}

type getResp struct {
	Data []byte `json:"data"`
}

func (s *Server) handleGet(_ string, body json.RawMessage) (any, error) {
	var req getReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	path, err := s.resolve(req.Path)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if req.Len <= 0 || req.Len > ChunkSize {
		req.Len = ChunkSize
	}
	buf := make([]byte, req.Len)
	n, err := f.ReadAt(buf, req.Offset)
	if err != nil && n == 0 {
		return nil, err
	}
	return getResp{Data: buf[:n]}, nil
}

type putReq struct {
	Path   string `json:"path"`
	Offset int64  `json:"offset"`
	Data   []byte `json:"data"`
	// Total and CRC arrive with the final chunk (Commit true) so the
	// server can verify the assembled file end to end.
	Commit bool   `json:"commit"`
	Total  int64  `json:"total"`
	CRC    uint32 `json:"crc"`
}

func (s *Server) handlePut(_ string, body json.RawMessage) (any, error) {
	var req putReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	path, err := s.resolve(req.Path)
	if err != nil {
		return nil, err
	}
	part := path + ".part"
	if err := os.MkdirAll(filepath.Dir(path), 0o700); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := os.OpenFile(part, os.O_CREATE|os.O_WRONLY, 0o600)
	if err != nil {
		return nil, err
	}
	if len(req.Data) > 0 {
		if _, err := f.WriteAt(req.Data, req.Offset); err != nil {
			f.Close()
			return nil, err
		}
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	if !req.Commit {
		return struct{}{}, nil
	}
	data, err := os.ReadFile(part)
	if err != nil {
		return nil, err
	}
	if int64(len(data)) != req.Total {
		return nil, fmt.Errorf("gridftp: assembled %d bytes, expected %d", len(data), req.Total)
	}
	if crc32.ChecksumIEEE(data) != req.CRC {
		return nil, errors.New("gridftp: checksum mismatch after assembly")
	}
	if err := os.Rename(part, path); err != nil {
		return nil, err
	}
	return struct{}{}, nil
}

type listReq struct {
	Prefix string `json:"prefix"`
}

type listResp struct {
	Paths []string `json:"paths"`
}

func (s *Server) handleList(_ string, body json.RawMessage) (any, error) {
	var req listReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	var out []string
	err := filepath.Walk(s.root, func(p string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || strings.HasSuffix(p, ".part") {
			return nil
		}
		rel, err := filepath.Rel(s.root, p)
		if err != nil {
			return nil
		}
		if strings.HasPrefix(rel, req.Prefix) {
			out = append(out, rel)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return listResp{Paths: out}, nil
}

// Client performs parallel-stream transfers.
type Client struct {
	cred    *gsi.Credential
	clock   gsi.Clock
	streams int

	mu    sync.Mutex
	conns map[string]*wire.Client
}

// NewClient creates a client with the given parallelism (0 = default).
func NewClient(cred *gsi.Credential, clock gsi.Clock, streams int) *Client {
	if clock == nil {
		clock = gsi.WallClock
	}
	if streams <= 0 {
		streams = DefaultStreams
	}
	return &Client{cred: cred, clock: clock, streams: streams, conns: make(map[string]*wire.Client)}
}

func (c *Client) conn(addr string) *wire.Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	if wc, ok := c.conns[addr]; ok {
		return wc
	}
	wc := wire.Dial(addr, wire.ClientConfig{
		ServerName: ServiceName,
		Credential: c.cred,
		Clock:      c.clock,
		Timeout:    5 * time.Second,
	})
	c.conns[addr] = wc
	return wc
}

// Close releases connections.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, wc := range c.conns {
		wc.Close()
	}
	c.conns = make(map[string]*wire.Client)
}

// Stat returns size and checksum of a remote file.
func (c *Client) Stat(addr, path string) (size int64, crc uint32, exists bool, err error) {
	var resp statResp
	if err := c.conn(addr).Call("ftp.stat", statReq{Path: path}, &resp); err != nil {
		return 0, 0, false, err
	}
	return resp.Size, resp.CRC, resp.Exists, nil
}

// List enumerates remote files under a prefix.
func (c *Client) List(addr, prefix string) ([]string, error) {
	var resp listResp
	if err := c.conn(addr).Call("ftp.list", listReq{Prefix: prefix}, &resp); err != nil {
		return nil, err
	}
	return resp.Paths, nil
}

// Get downloads a remote file with parallel streams and verifies its
// checksum.
func (c *Client) Get(addr, path string) ([]byte, error) {
	size, wantCRC, exists, err := c.Stat(addr, path)
	if err != nil {
		return nil, err
	}
	if !exists {
		return nil, fmt.Errorf("gridftp: %s not found on %s", path, addr)
	}
	data := make([]byte, size)
	type chunk struct{ off int64 }
	work := make(chan chunk)
	var wg sync.WaitGroup
	var firstErr error
	var errMu sync.Mutex
	for i := 0; i < c.streams; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ch := range work {
				var resp getResp
				n := ChunkSize
				if rem := size - ch.off; rem < int64(n) {
					n = int(rem)
				}
				err := c.conn(addr).Call("ftp.get", getReq{Path: path, Offset: ch.off, Len: n}, &resp)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					continue
				}
				copy(data[ch.off:], resp.Data)
			}
		}()
	}
	for off := int64(0); off < size; off += ChunkSize {
		work <- chunk{off}
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if crc32.ChecksumIEEE(data) != wantCRC {
		return nil, errors.New("gridftp: download checksum mismatch")
	}
	return data, nil
}

// downloadMeta is the sidecar journal of a resumable Download: the remote
// file's identity (size, CRC-32) and the count of contiguous bytes already
// written to the .part file.
type downloadMeta struct {
	Size  int64  `json:"size"`
	CRC   uint32 `json:"crc"`
	Acked int64  `json:"acked"`
}

// Download copies the remote file at addr:path to localPath, journaling
// progress in localPath+".part" and a ".meta" sidecar so an interrupted
// copy resumes from the last acknowledged byte instead of zero. A sidecar
// recorded against a different remote (size, CRC) is discarded and the
// copy restarts clean. Returns the offset the transfer resumed from
// (0 for a fresh download).
func (c *Client) Download(addr, path, localPath string) (resumedFrom int64, err error) {
	size, wantCRC, exists, err := c.Stat(addr, path)
	if err != nil {
		return 0, err
	}
	if !exists {
		return 0, fmt.Errorf("gridftp: %s not found on %s", path, addr)
	}
	if err := os.MkdirAll(filepath.Dir(localPath), 0o700); err != nil {
		return 0, err
	}
	part, meta := localPath+".part", localPath+".meta"
	var off int64
	if raw, rerr := os.ReadFile(meta); rerr == nil {
		var m downloadMeta
		if json.Unmarshal(raw, &m) == nil && m.Size == size && m.CRC == wantCRC && m.Acked > 0 {
			if st, serr := os.Stat(part); serr == nil && st.Size() >= m.Acked {
				off = m.Acked
			}
		}
	}
	resumedFrom = off
	f, err := os.OpenFile(part, os.O_CREATE|os.O_WRONLY, 0o700)
	if err != nil {
		return resumedFrom, err
	}
	defer f.Close()
	if off == 0 {
		if err := f.Truncate(0); err != nil {
			return resumedFrom, err
		}
	}
	for off < size {
		n := ChunkSize
		if rem := size - off; rem < int64(n) {
			n = int(rem)
		}
		var resp getResp
		if err := c.conn(addr).Call("ftp.get", getReq{Path: path, Offset: off, Len: n}, &resp); err != nil {
			return resumedFrom, err
		}
		if len(resp.Data) == 0 {
			return resumedFrom, fmt.Errorf("gridftp: short read at offset %d of %s", off, path)
		}
		if _, err := f.WriteAt(resp.Data, off); err != nil {
			return resumedFrom, err
		}
		off += int64(len(resp.Data))
		m, _ := json.Marshal(downloadMeta{Size: size, CRC: wantCRC, Acked: off})
		if err := os.WriteFile(meta, m, 0o600); err != nil {
			return resumedFrom, err
		}
	}
	if err := f.Close(); err != nil {
		return resumedFrom, err
	}
	data, err := os.ReadFile(part)
	if err != nil {
		return resumedFrom, err
	}
	if int64(len(data)) != size || crc32.ChecksumIEEE(data) != wantCRC {
		os.Remove(part)
		os.Remove(meta)
		return resumedFrom, errors.New("gridftp: download checksum mismatch")
	}
	os.Remove(meta)
	return resumedFrom, os.Rename(part, localPath)
}

// Put uploads data to a remote path with parallel streams; the server
// verifies the checksum before exposing the file.
func (c *Client) Put(addr, path string, data []byte) error {
	size := int64(len(data))
	crc := crc32.ChecksumIEEE(data)
	type chunk struct {
		off  int64
		last bool
	}
	var chunks []chunk
	for off := int64(0); off < size; off += ChunkSize {
		chunks = append(chunks, chunk{off: off})
	}
	if len(chunks) == 0 {
		chunks = []chunk{{off: 0}}
	}
	// All but the final chunk go in parallel; the final chunk carries the
	// commit so ordering stays simple.
	last := chunks[len(chunks)-1]
	rest := chunks[:len(chunks)-1]
	var wg sync.WaitGroup
	var firstErr error
	var errMu sync.Mutex
	sem := make(chan struct{}, c.streams)
	for _, ch := range rest {
		wg.Add(1)
		sem <- struct{}{}
		go func(ch chunk) {
			defer wg.Done()
			defer func() { <-sem }()
			end := ch.off + ChunkSize
			if end > size {
				end = size
			}
			err := c.conn(addr).Call("ftp.put", putReq{Path: path, Offset: ch.off, Data: data[ch.off:end]}, nil)
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
		}(ch)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	end := last.off + ChunkSize
	if end > size {
		end = size
	}
	var payload []byte
	if last.off < size {
		payload = data[last.off:end]
	}
	return c.conn(addr).Call("ftp.put", putReq{
		Path: path, Offset: last.off, Data: payload,
		Commit: true, Total: size, CRC: crc,
	}, nil)
}

// Transfer copies a file between two GridFTP servers through the client
// (the CMS site-to-repository move).
func (c *Client) Transfer(srcAddr, srcPath, dstAddr, dstPath string) error {
	data, err := c.Get(srcAddr, srcPath)
	if err != nil {
		return err
	}
	return c.Put(dstAddr, dstPath, data)
}
