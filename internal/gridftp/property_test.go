package gridftp

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: any payload, at any size relative to the chunk boundary and
// any stream count, round-trips bit-exactly with a verified checksum.
func TestQuickPutGetSizes(t *testing.T) {
	s, err := NewServer(t.TempDir(), ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	n := 0
	f := func(seed int64, sizeSel uint8, streams uint8) bool {
		n++
		rng := rand.New(rand.NewSource(seed))
		// Exercise the interesting boundaries: empty, tiny, exactly one
		// chunk, one byte either side of a chunk, several chunks.
		sizes := []int{0, 1, 100, ChunkSize - 1, ChunkSize, ChunkSize + 1, 3*ChunkSize + 17}
		size := sizes[int(sizeSel)%len(sizes)]
		payload := make([]byte, size)
		rng.Read(payload)
		c := NewClient(nil, nil, int(streams)%6+1)
		defer c.Close()
		path := fmt.Sprintf("prop/f%d", n)
		if err := c.Put(s.Addr(), path, payload); err != nil {
			return false
		}
		got, err := c.Get(s.Addr(), path)
		if err != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
