// Package broker implements the resource-selection strategies of §4.4:
//
//  1. a static user-supplied list of GRAM servers (condorg.StaticSelector /
//     condorg.RoundRobinSelector cover this),
//  2. a personal matchmaker that combines application requirements with
//     resource state from MDS, using the Condor Matchmaking framework
//     (ClassAds) to rank candidates by user preferences such as allocation
//     cost and expected start time, and
//  3. an adaptive strategy for high-throughput work: monitor actual
//     queuing times and tune where subsequent jobs are submitted.
package broker

import (
	"fmt"
	"sync"
	"time"

	"condorg/internal/classad"
	"condorg/internal/condorg"
	"condorg/internal/gram"
	"condorg/internal/mds"
)

// ResourceAd builds the MDS advertisement for an execution site: identity,
// contact, capacity, live queue state, and an allocation cost that user
// rank expressions can weigh.
func ResourceAd(site *gram.Site, arch string, costPerCPUHour float64) *classad.Ad {
	cluster := site.Cluster()
	ad := classad.New()
	ad.SetString("Name", site.Name())
	ad.SetString("MyType", "Resource")
	ad.SetString("GatekeeperAddr", site.GatekeeperAddr())
	ad.SetString("Arch", arch)
	ad.SetInt("Cpus", int64(cluster.Cpus()))
	ad.SetInt("FreeCpus", int64(cluster.FreeCpus()))
	ad.SetInt("QueueDepth", int64(cluster.QueueDepth()))
	ad.SetReal("Cost", costPerCPUHour)
	ad.SetString("Policy", cluster.PolicyName())
	return ad
}

// Reporter periodically re-registers a site's resource ad with an MDS
// directory (GRRP soft state).
type Reporter struct {
	site   *gram.Site
	arch   string
	cost   float64
	client *mds.Client
	ttl    time.Duration

	mu     sync.Mutex
	stopCh chan struct{}
	wg     sync.WaitGroup
}

// NewReporter creates a reporter; call Start or Publish.
func NewReporter(site *gram.Site, mdsAddr, arch string, cost float64, ttl time.Duration) *Reporter {
	if ttl == 0 {
		ttl = mds.DefaultTTL
	}
	return &Reporter{
		site:   site,
		arch:   arch,
		cost:   cost,
		client: mds.NewClient(mdsAddr, nil, nil),
		ttl:    ttl,
	}
}

// Publish registers the current resource state once.
func (r *Reporter) Publish() error {
	return r.client.Register(ResourceAd(r.site, r.arch, r.cost), r.ttl)
}

// Start re-publishes on the given interval until Stop.
func (r *Reporter) Start(interval time.Duration) {
	r.mu.Lock()
	if r.stopCh != nil {
		r.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	r.stopCh = stop
	r.mu.Unlock()
	r.Publish()
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				r.Publish()
			}
		}
	}()
}

// Stop halts republication and withdraws the ad.
func (r *Reporter) Stop() {
	r.mu.Lock()
	stop := r.stopCh
	r.stopCh = nil
	r.mu.Unlock()
	if stop != nil {
		close(stop)
		r.wg.Wait()
	}
	r.client.Unregister(r.site.Name())
	r.client.Close()
}

// MDSBroker is the personal resource broker: it queries MDS for candidate
// resources, matches them against the job's requirements, and ranks them by
// the user's preferences.
type MDSBroker struct {
	client *mds.Client
	// Requirements constrains acceptable resources, evaluated with the
	// resource ad as TARGET (e.g. `TARGET.Arch == "x86_64" &&
	// TARGET.Cpus >= MY.Cpus`).
	Requirements classad.Expr
	// Rank orders acceptable resources, higher better (e.g.
	// `-(TARGET.QueueDepth * 10.0 + TARGET.Cost)`).
	Rank classad.Expr
}

// NewMDSBroker builds a broker over the directory at mdsAddr. requirements
// and rank are ClassAd expressions ("" for defaults: accept everything,
// prefer free CPUs and short queues).
func NewMDSBroker(mdsAddr, requirements, rank string) (*MDSBroker, error) {
	b := &MDSBroker{client: mds.NewClient(mdsAddr, nil, nil)}
	if requirements == "" {
		requirements = "TARGET.FreeCpus >= 0"
	}
	if rank == "" {
		rank = "TARGET.FreeCpus * 100 - TARGET.QueueDepth * 10 - TARGET.Cost"
	}
	var err error
	if b.Requirements, err = classad.ParseExpr(requirements); err != nil {
		return nil, fmt.Errorf("broker: requirements: %w", err)
	}
	if b.Rank, err = classad.ParseExpr(rank); err != nil {
		return nil, fmt.Errorf("broker: rank: %w", err)
	}
	return b, nil
}

// Close releases the MDS connection.
func (b *MDSBroker) Close() { b.client.Close() }

// Candidates returns the ranked list of acceptable resource ads for req.
func (b *MDSBroker) Candidates(req condorg.SubmitRequest) ([]classad.Candidate, error) {
	resources, err := b.client.Query(`MyType == "Resource"`)
	if err != nil {
		return nil, fmt.Errorf("broker: MDS query: %w", err)
	}
	jobAd := classad.New()
	jobAd.SetString("MyType", "Job")
	jobAd.SetString("Owner", req.Owner)
	cpus := req.Cpus
	if cpus <= 0 {
		cpus = 1
	}
	jobAd.SetInt("Cpus", int64(cpus))
	jobAd.SetExpr("Requirements", b.Requirements)
	jobAd.SetExpr("Rank", b.Rank)
	return classad.MatchList(jobAd, resources), nil
}

// Select implements condorg.Selector: the best-ranked acceptable resource.
func (b *MDSBroker) Select(req condorg.SubmitRequest) (string, error) {
	return b.SelectHealthy(req, nil)
}

// SelectHealthy implements condorg.HealthAwareSelector: the best-ranked
// acceptable resource the health view does not veto. MDS soft state lags
// reality by a registration period, so breaker state — measured by the
// agent's own failed calls — overrides a stale "looks fine" ad.
func (b *MDSBroker) SelectHealthy(req condorg.SubmitRequest, healthy condorg.HealthView) (string, error) {
	list, err := b.Candidates(req)
	if err != nil {
		return "", err
	}
	if len(list) == 0 {
		return "", fmt.Errorf("broker: no resource satisfies the job requirements")
	}
	contactable := 0
	for _, cand := range list {
		addr := cand.Ad.EvalString("GatekeeperAddr", "")
		if addr == "" {
			continue
		}
		contactable++
		if healthy == nil || healthy(addr) {
			return addr, nil
		}
	}
	if contactable == 0 {
		return "", fmt.Errorf("broker: matched resource %q has no contact", list[0].Ad.EvalString("Name", ""))
	}
	return "", fmt.Errorf("broker: %w (%d candidates)", condorg.ErrAllSitesUnhealthy, contactable)
}

// Adaptive is the high-throughput strategy: it observes actual queuing
// times per site and routes each new job to the site with the lowest
// estimated wait, "allowing the tuning of where to submit subsequent jobs".
type Adaptive struct {
	mu    sync.Mutex
	sites []string
	stats map[string]*siteStats
}

type siteStats struct {
	inFlight  int           // submitted, not yet started
	samples   int           // completed queue-wait observations
	totalWait time.Duration // sum of observed waits
}

// NewAdaptive creates an adaptive selector over an initial site list.
// Sites that appear later (glidein pilots, operator additions) join via
// RegisterSite and leave via RemoveSite.
func NewAdaptive(sites []string) *Adaptive {
	a := &Adaptive{stats: make(map[string]*siteStats)}
	for _, s := range sites {
		a.registerLocked(s)
	}
	return a
}

func (a *Adaptive) registerLocked(site string) {
	if _, ok := a.stats[site]; ok {
		return
	}
	a.sites = append(a.sites, site)
	a.stats[site] = &siteStats{}
}

// RegisterSite adds a late-joining site to the candidate pool. Idempotent:
// re-registering a known site keeps its accumulated statistics.
func (a *Adaptive) RegisterSite(site string) {
	if site == "" {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.registerLocked(site)
}

// RemoveSite withdraws a site from the candidate pool and drops its
// statistics. Unknown sites are a no-op.
func (a *Adaptive) RemoveSite(site string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.stats[site]; !ok {
		return
	}
	delete(a.stats, site)
	for i, s := range a.sites {
		if s == site {
			a.sites = append(a.sites[:i], a.sites[i+1:]...)
			break
		}
	}
}

// Sites returns the current candidate pool.
func (a *Adaptive) Sites() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]string(nil), a.sites...)
}

// Select implements condorg.Selector.
func (a *Adaptive) Select(req condorg.SubmitRequest) (string, error) {
	return a.SelectHealthy(req, nil)
}

// SelectHealthy implements condorg.HealthAwareSelector: the lowest
// estimated wait among sites the health view does not veto. Observed
// waits say nothing about a site that stopped answering — the breaker
// does, so vetoed sites are excluded from the score race entirely.
func (a *Adaptive) SelectHealthy(_ condorg.SubmitRequest, healthy condorg.HealthView) (string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.sites) == 0 {
		return "", fmt.Errorf("broker: no sites")
	}
	best := ""
	bestScore := 0.0
	for _, site := range a.sites {
		if healthy != nil && !healthy(site) {
			continue
		}
		st := a.stats[site]
		// Unprobed sites get explored first; the epsilon makes backlog
		// break ties so equal-wait sites alternate instead of piling
		// onto the first.
		avg := float64(time.Millisecond)
		if st.samples > 0 {
			avg += float64(st.totalWait) / float64(st.samples)
		}
		score := avg * float64(1+st.inFlight)
		if best == "" || score < bestScore {
			best, bestScore = site, score
		}
	}
	if best == "" {
		return "", fmt.Errorf("broker: %w (%d candidates)", condorg.ErrAllSitesUnhealthy, len(a.sites))
	}
	a.stats[best].inFlight++
	return best, nil
}

// ObserveStart records that a job submitted to site started executing
// after waiting wait in the site's queue.
func (a *Adaptive) ObserveStart(site string, wait time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.stats[site]
	if !ok {
		st = &siteStats{}
		a.stats[site] = st
	}
	if st.inFlight > 0 {
		st.inFlight--
	}
	st.samples++
	st.totalWait += wait
}

// EstimatedWait reports the current average observed queue wait for site.
func (a *Adaptive) EstimatedWait(site string) time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.stats[site]
	if !ok || st.samples == 0 {
		return 0
	}
	return st.totalWait / time.Duration(st.samples)
}

// InFlight reports outstanding submissions to site.
func (a *Adaptive) InFlight(site string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if st, ok := a.stats[site]; ok {
		return st.inFlight
	}
	return 0
}
