package broker

import (
	"context"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"condorg/internal/condorg"
	"condorg/internal/gram"
	"condorg/internal/lrm"
	"condorg/internal/mds"
)

func quickSite(t *testing.T, name string, cpus int) *gram.Site {
	t.Helper()
	cluster, err := lrm.NewCluster(lrm.Config{Name: name, Cpus: cpus})
	if err != nil {
		t.Fatal(err)
	}
	rt := gram.NewFuncRuntime()
	rt.Register("task", func(ctx context.Context, args []string, _ []byte, stdout, _ io.Writer, _ map[string]string) error {
		d := 10 * time.Millisecond
		if len(args) > 0 {
			if p, err := time.ParseDuration(args[0]); err == nil {
				d = p
			}
		}
		select {
		case <-time.After(d):
			fmt.Fprintln(stdout, "ok")
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	site, err := gram.NewSite(gram.SiteConfig{
		Name: name, Cluster: cluster, Runtime: rt, StateDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(site.Close)
	return site
}

func newMDS(t *testing.T) *mds.Server {
	t.Helper()
	s, err := mds.NewServer(mds.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestResourceAdContents(t *testing.T) {
	site := quickSite(t, "wisc", 8)
	ad := ResourceAd(site, "x86_64", 1.5)
	if ad.EvalString("Name", "") != "wisc" ||
		ad.EvalInt("Cpus", 0) != 8 ||
		ad.EvalInt("FreeCpus", -1) != 8 ||
		ad.EvalReal("Cost", 0) != 1.5 ||
		ad.EvalString("GatekeeperAddr", "") != site.GatekeeperAddr() {
		t.Fatalf("resource ad:\n%s", ad)
	}
}

func TestMDSBrokerPicksBestRanked(t *testing.T) {
	dir := newMDS(t)
	big := quickSite(t, "big", 64)
	small := quickSite(t, "small", 2)
	for _, s := range []*gram.Site{big, small} {
		rep := NewReporter(s, dir.Addr(), "x86_64", 1.0, time.Minute)
		if err := rep.Publish(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(rep.Stop)
	}
	b, err := NewMDSBroker(dir.Addr(), "", "")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	addr, err := b.Select(condorg.SubmitRequest{Owner: "u"})
	if err != nil {
		t.Fatal(err)
	}
	if addr != big.GatekeeperAddr() {
		t.Fatalf("selected %s, want the 64-CPU site %s", addr, big.GatekeeperAddr())
	}
}

func TestMDSBrokerRequirementsFilter(t *testing.T) {
	dir := newMDS(t)
	s1 := quickSite(t, "cheap", 4)
	s2 := quickSite(t, "pricey", 4)
	NewReporterPublish(t, s1, dir.Addr(), 1.0)
	NewReporterPublish(t, s2, dir.Addr(), 50.0)
	// Only resources cheaper than 10 are acceptable.
	b, err := NewMDSBroker(dir.Addr(), "TARGET.Cost < 10.0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	addr, err := b.Select(condorg.SubmitRequest{Owner: "u"})
	if err != nil {
		t.Fatal(err)
	}
	if addr != s1.GatekeeperAddr() {
		t.Fatalf("selected %s, want the cheap site", addr)
	}
	// Impossible requirements -> explicit error.
	none, err := NewMDSBroker(dir.Addr(), "TARGET.Cost < 0.0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer none.Close()
	if _, err := none.Select(condorg.SubmitRequest{}); err == nil {
		t.Fatal("impossible requirements matched something")
	}
}

func NewReporterPublish(t *testing.T, s *gram.Site, mdsAddr string, cost float64) {
	t.Helper()
	rep := NewReporter(s, mdsAddr, "x86_64", cost, time.Minute)
	if err := rep.Publish(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rep.Stop)
}

func TestMDSBrokerBadExpressions(t *testing.T) {
	if _, err := NewMDSBroker("127.0.0.1:1", "((bad", ""); err == nil {
		t.Fatal("bad requirements accepted")
	}
	if _, err := NewMDSBroker("127.0.0.1:1", "", "((bad"); err == nil {
		t.Fatal("bad rank accepted")
	}
}

func TestReporterSoftState(t *testing.T) {
	dir := newMDS(t)
	site := quickSite(t, "s", 2)
	rep := NewReporter(site, dir.Addr(), "x86_64", 1.0, time.Minute)
	rep.Start(10 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for dir.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if dir.Len() != 1 {
		t.Fatal("reporter never registered")
	}
	rep.Stop()
	if dir.Len() != 0 {
		t.Fatal("Stop did not withdraw the ad")
	}
}

func TestAdaptiveExploresThenExploits(t *testing.T) {
	a := NewAdaptive([]string{"slow", "fast"})
	// Both unknown: the first choice is the first site, the second pick
	// goes to the other (lower score: no backlog).
	s1, _ := a.Select(condorg.SubmitRequest{})
	s2, _ := a.Select(condorg.SubmitRequest{})
	if s1 == s2 {
		t.Fatalf("no exploration: %s then %s", s1, s2)
	}
	// Observations arrive: slow has 10s queue waits, fast 100ms.
	a.ObserveStart("slow", 10*time.Second)
	a.ObserveStart("fast", 100*time.Millisecond)
	for i := 0; i < 10; i++ {
		site, _ := a.Select(condorg.SubmitRequest{})
		if site != "fast" {
			t.Fatalf("pick %d went to %s despite 100x wait difference", i, site)
		}
		a.ObserveStart("fast", 100*time.Millisecond)
	}
	if a.EstimatedWait("slow") != 10*time.Second {
		t.Fatalf("slow estimate = %v", a.EstimatedWait("slow"))
	}
}

func TestAdaptiveBacklogSteersAway(t *testing.T) {
	a := NewAdaptive([]string{"a", "b"})
	a.ObserveStart("a", time.Second)
	a.ObserveStart("b", time.Second)
	// Pile submissions onto a without observing starts: backlog grows,
	// selections shift to b.
	first, _ := a.Select(condorg.SubmitRequest{})
	second, _ := a.Select(condorg.SubmitRequest{})
	if first == second {
		t.Fatalf("equal-wait sites should alternate under backlog: %s, %s", first, second)
	}
}

func TestAdaptiveEmpty(t *testing.T) {
	a := NewAdaptive(nil)
	if _, err := a.Select(condorg.SubmitRequest{}); err == nil {
		t.Fatal("empty site list selected")
	}
	if a.InFlight("x") != 0 || a.EstimatedWait("x") != 0 {
		t.Fatal("unknown site stats non-zero")
	}
	a.ObserveStart("x", time.Second) // must not panic for unknown site
}

func TestEndToEndMDSBrokeredExecution(t *testing.T) {
	dir := newMDS(t)
	s1 := quickSite(t, "siteA", 8)
	s2 := quickSite(t, "siteB", 2)
	NewReporterPublish(t, s1, dir.Addr(), 1.0)
	NewReporterPublish(t, s2, dir.Addr(), 1.0)
	b, err := NewMDSBroker(dir.Addr(), "", "")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	agent, err := condorg.NewAgent(condorg.AgentConfig{
		StateDir: t.TempDir(),
		Selector: b,
		Probe:    condorg.ProbeOptions{Interval: 40 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	id, err := agent.Submit(condorg.SubmitRequest{Owner: "u", Executable: gram.Program("task")})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Second)
	defer cancel()
	info, err := agent.Wait(ctx, id)
	if err != nil || info.State != condorg.Completed {
		t.Fatalf("brokered job: %v err=%v", info.State, err)
	}
	if info.Site != s1.GatekeeperAddr() {
		t.Fatalf("brokered to %s, want the larger siteA", info.Site)
	}
}

func TestMDSBrokerSelectHealthySkipsVetoed(t *testing.T) {
	dir := newMDS(t)
	big := quickSite(t, "big", 64)
	small := quickSite(t, "small", 2)
	NewReporterPublish(t, big, dir.Addr(), 1.0)
	NewReporterPublish(t, small, dir.Addr(), 1.0)
	b, err := NewMDSBroker(dir.Addr(), "", "")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// The best-ranked site is vetoed (breaker open): the broker must fall
	// through to the runner-up instead of handing out a dead address.
	healthy := func(addr string) bool { return addr != big.GatekeeperAddr() }
	addr, err := b.SelectHealthy(condorg.SubmitRequest{Owner: "u"}, healthy)
	if err != nil {
		t.Fatal(err)
	}
	if addr != small.GatekeeperAddr() {
		t.Fatalf("selected %s, want the healthy runner-up %s", addr, small.GatekeeperAddr())
	}
	// Everything vetoed: the typed sentinel lets the agent fall back to a
	// blind pick rather than failing the submit.
	if _, err := b.SelectHealthy(condorg.SubmitRequest{Owner: "u"}, func(string) bool { return false }); !errors.Is(err, condorg.ErrAllSitesUnhealthy) {
		t.Fatalf("want ErrAllSitesUnhealthy, got %v", err)
	}
}

func TestAdaptiveSelectHealthySkipsVetoed(t *testing.T) {
	a := NewAdaptive([]string{"gk:1", "gk:2"})
	// gk:1 has the better observed wait but is vetoed.
	a.ObserveStart("gk:1", 10*time.Millisecond)
	a.ObserveStart("gk:2", 500*time.Millisecond)
	site, err := a.SelectHealthy(condorg.SubmitRequest{}, func(addr string) bool { return addr != "gk:1" })
	if err != nil || site != "gk:2" {
		t.Fatalf("SelectHealthy = %q, %v; want gk:2", site, err)
	}
	if _, err := a.SelectHealthy(condorg.SubmitRequest{}, func(string) bool { return false }); !errors.Is(err, condorg.ErrAllSitesUnhealthy) {
		t.Fatalf("want ErrAllSitesUnhealthy, got %v", err)
	}
}

func TestAdaptiveRegisterRemove(t *testing.T) {
	a := NewAdaptive([]string{"a"})
	// Pile backlog onto a; a late-joining unprobed site must win the next
	// score race immediately.
	a.ObserveStart("a", time.Second)
	if s, _ := a.Select(condorg.SubmitRequest{}); s != "a" {
		t.Fatalf("only site not selected: %s", s)
	}
	a.RegisterSite("b")
	a.RegisterSite("b") // idempotent
	a.RegisterSite("")  // no-op
	if got := a.Sites(); len(got) != 2 {
		t.Fatalf("sites after register = %v", got)
	}
	if s, _ := a.Select(condorg.SubmitRequest{}); s != "b" {
		t.Fatalf("late-joining site never selected: %s", s)
	}
	// Removal withdraws the site and its stats; re-registration starts fresh.
	a.RemoveSite("b")
	a.RemoveSite("ghost")
	if got := a.Sites(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("sites after remove = %v", got)
	}
	for i := 0; i < 5; i++ {
		if s, _ := a.Select(condorg.SubmitRequest{}); s != "a" {
			t.Fatalf("removed site still selected")
		}
	}
	if a.InFlight("b") != 0 {
		t.Fatalf("removed site kept stats: %d in flight", a.InFlight("b"))
	}
}

func TestAdaptiveLateJoinSiteReceivesWork(t *testing.T) {
	first := quickSite(t, "first", 2)
	a := NewAdaptive([]string{first.GatekeeperAddr()})
	agent, err := condorg.NewAgent(condorg.AgentConfig{
		StateDir: t.TempDir(),
		Selector: a,
		Probe:    condorg.ProbeOptions{Interval: 40 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	// The pool grows after the selector was built — exactly what a glidein
	// pilot coming up looks like. The late site must be a candidate and
	// actually run work.
	late := quickSite(t, "late", 2)
	a.RegisterSite(late.GatekeeperAddr())

	sawLate := false
	for i := 0; i < 8; i++ {
		id, err := agent.Submit(condorg.SubmitRequest{Owner: "u", Executable: gram.Program("task")})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 8*time.Second)
		info, err := agent.Wait(ctx, id)
		cancel()
		if err != nil || info.State != condorg.Completed {
			t.Fatalf("job %s: %v err=%v", id, info.State, err)
		}
		if info.Site == late.GatekeeperAddr() {
			sawLate = true
		}
	}
	if !sawLate {
		t.Fatal("late-joining site never received work")
	}
}
