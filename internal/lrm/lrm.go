// Package lrm implements the local resource managers that sit behind each
// site's Gatekeeper in Figure 1 — the "Site Job Scheduler (PBS, Condor,
// LSF, LoadLeveler, NQE, etc.)". A Cluster owns a fixed number of CPUs and
// a queue; a pluggable Policy decides which queued jobs start as CPUs free
// up. Three policies model the schedulers named by the paper: FIFO
// (PBS-like), fair-share (LSF-like), and conservative backfill.
//
// Jobs carry a Go function as their payload in the live system; the
// discrete-event simulator reuses the same Policy implementations against
// virtual-duration jobs (see internal/sim).
package lrm

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// State is a job's lifecycle stage inside the LRM.
type State int

const (
	Queued State = iota
	Running
	Completed
	Failed
	Cancelled
	TimedOut
)

func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Completed:
		return "completed"
	case Failed:
		return "failed"
	case Cancelled:
		return "cancelled"
	case TimedOut:
		return "timed-out"
	}
	return "unknown"
}

// Terminal reports whether no further transitions can occur.
func (s State) Terminal() bool { return s >= Completed }

// Job is a unit of work submitted to a cluster.
type Job struct {
	ID        string
	Owner     string
	Cpus      int           // CPUs required (>=1)
	WallLimit time.Duration // 0 = unlimited
	// Run is the payload; its context is cancelled on Cancel or walltime
	// expiry. A nil Run completes immediately (useful in tests).
	Run func(ctx context.Context) error
}

// QueuedJob is the scheduling view of a waiting job, shared with the
// simulator's queue model.
type QueuedJob struct {
	ID       string
	Owner    string
	Cpus     int
	Estimate time.Duration // user-supplied runtime estimate (for backfill)
	Submit   time.Time
}

// Policy selects which queued jobs to start. queue is in submission order;
// free is the number of idle CPUs; running lists the owners of running
// jobs (for fair share). Implementations must not mutate queue.
type Policy interface {
	Name() string
	Select(queue []*QueuedJob, free int, runningOwners []string) []*QueuedJob
}

// --- FIFO: strict head-of-line order, as a default PBS queue. ---

// FIFO starts jobs strictly in arrival order; a big job at the head blocks
// everything behind it.
type FIFO struct{}

func (FIFO) Name() string { return "fifo" }

func (FIFO) Select(queue []*QueuedJob, free int, _ []string) []*QueuedJob {
	var out []*QueuedJob
	for _, j := range queue {
		if j.Cpus > free {
			break // head-of-line blocking
		}
		out = append(out, j)
		free -= j.Cpus
	}
	return out
}

// --- Backfill: FIFO head plus smaller jobs that fit around it. ---

// Backfill is conservative backfill: the head job reserves capacity, but
// any later job that fits in the remaining CPUs may run ahead.
type Backfill struct{}

func (Backfill) Name() string { return "backfill" }

func (Backfill) Select(queue []*QueuedJob, free int, _ []string) []*QueuedJob {
	var out []*QueuedJob
	blockedHead := false
	for _, j := range queue {
		if j.Cpus <= free {
			out = append(out, j)
			free -= j.Cpus
			continue
		}
		if !blockedHead {
			blockedHead = true // head keeps its reservation; keep scanning
		}
	}
	return out
}

// --- FairShare: start jobs from the owner with the fewest running. ---

// FairShare balances running jobs across owners, like an LSF fairshare
// queue.
type FairShare struct{}

func (FairShare) Name() string { return "fairshare" }

func (FairShare) Select(queue []*QueuedJob, free int, runningOwners []string) []*QueuedJob {
	counts := make(map[string]int)
	for _, o := range runningOwners {
		counts[o]++
	}
	// Repeatedly pick the earliest queued job of the least-loaded owner
	// that fits.
	remaining := append([]*QueuedJob(nil), queue...)
	var out []*QueuedJob
	for {
		bestIdx := -1
		for i, j := range remaining {
			if j == nil || j.Cpus > free {
				continue
			}
			if bestIdx == -1 || counts[j.Owner] < counts[remaining[bestIdx].Owner] {
				bestIdx = i
			}
		}
		if bestIdx == -1 {
			return out
		}
		j := remaining[bestIdx]
		remaining[bestIdx] = nil
		out = append(out, j)
		counts[j.Owner]++
		free -= j.Cpus
	}
}

// PolicyByName returns a policy implementation for a config string.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "", "fifo":
		return FIFO{}, nil
	case "backfill":
		return Backfill{}, nil
	case "fairshare":
		return FairShare{}, nil
	}
	return nil, fmt.Errorf("lrm: unknown policy %q", name)
}

// JobStatus is the externally visible status of a job.
type JobStatus struct {
	ID       string
	Owner    string
	State    State
	Error    string
	Queued   time.Time
	Started  time.Time
	Finished time.Time
}

// StatusCallback observes every state transition.
type StatusCallback func(JobStatus)

// Cluster is a running LRM instance.
type Cluster struct {
	name    string
	cpus    int
	policy  Policy
	onEvent StatusCallback

	mu     sync.Mutex
	free   int
	queue  []*QueuedJob
	jobs   map[string]*jobRec
	closed bool
	serial int
	wg     sync.WaitGroup
}

type jobRec struct {
	job    Job
	status JobStatus
	cancel context.CancelFunc
}

// Config configures a cluster.
type Config struct {
	Name   string
	Cpus   int
	Policy Policy
	// OnEvent, if set, receives every job status transition. Callbacks
	// run without the cluster lock held.
	OnEvent StatusCallback
}

// NewCluster creates an LRM with the given capacity.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.Cpus <= 0 {
		return nil, errors.New("lrm: cluster needs at least one CPU")
	}
	if cfg.Policy == nil {
		cfg.Policy = FIFO{}
	}
	return &Cluster{
		name:    cfg.Name,
		cpus:    cfg.Cpus,
		policy:  cfg.Policy,
		onEvent: cfg.OnEvent,
		free:    cfg.Cpus,
		jobs:    make(map[string]*jobRec),
	}, nil
}

// Name returns the cluster's name.
func (c *Cluster) Name() string { return c.name }

// Cpus returns total capacity.
func (c *Cluster) Cpus() int { return c.cpus }

// FreeCpus returns currently idle CPUs.
func (c *Cluster) FreeCpus() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.free
}

// QueueDepth returns the number of waiting jobs.
func (c *Cluster) QueueDepth() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// PolicyName names the active scheduling policy.
func (c *Cluster) PolicyName() string { return c.policy.Name() }

// Submit enqueues a job and returns its (possibly generated) ID.
func (c *Cluster) Submit(job Job, estimate time.Duration) (string, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return "", errors.New("lrm: cluster closed")
	}
	if job.Cpus <= 0 {
		job.Cpus = 1
	}
	if job.Cpus > c.cpus {
		c.mu.Unlock()
		return "", fmt.Errorf("lrm: job wants %d CPUs, cluster has %d", job.Cpus, c.cpus)
	}
	if job.ID == "" {
		c.serial++
		job.ID = fmt.Sprintf("%s.%d", c.name, c.serial)
	}
	if _, dup := c.jobs[job.ID]; dup {
		c.mu.Unlock()
		return "", fmt.Errorf("lrm: duplicate job id %q", job.ID)
	}
	rec := &jobRec{
		job: job,
		status: JobStatus{
			ID: job.ID, Owner: job.Owner, State: Queued, Queued: time.Now(),
		},
	}
	c.jobs[job.ID] = rec
	c.queue = append(c.queue, &QueuedJob{
		ID: job.ID, Owner: job.Owner, Cpus: job.Cpus, Estimate: estimate, Submit: rec.status.Queued,
	})
	c.mu.Unlock()
	c.emit(rec.status)
	c.schedule()
	return job.ID, nil
}

// Status returns the current status of a job.
func (c *Cluster) Status(id string) (JobStatus, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("lrm: no such job %q", id)
	}
	return rec.status, nil
}

// Cancel removes a queued job or kills a running one.
func (c *Cluster) Cancel(id string) error {
	c.mu.Lock()
	rec, ok := c.jobs[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("lrm: no such job %q", id)
	}
	switch rec.status.State {
	case Queued:
		for i, q := range c.queue {
			if q.ID == id {
				c.queue = append(c.queue[:i], c.queue[i+1:]...)
				break
			}
		}
		rec.status.State = Cancelled
		rec.status.Finished = time.Now()
		status := rec.status
		c.mu.Unlock()
		c.emit(status)
		return nil
	case Running:
		cancel := rec.cancel
		c.mu.Unlock()
		cancel() // completion path marks it Cancelled
		return nil
	default:
		c.mu.Unlock()
		return nil // already terminal: cancel is idempotent
	}
}

// schedule starts every job the policy picks. Called after any capacity or
// queue change.
func (c *Cluster) schedule() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	var runningOwners []string
	for _, rec := range c.jobs {
		if rec.status.State == Running {
			runningOwners = append(runningOwners, rec.status.Owner)
		}
	}
	picks := c.policy.Select(c.queue, c.free, runningOwners)
	picked := make(map[string]bool, len(picks))
	for _, p := range picks {
		picked[p.ID] = true
	}
	var keep []*QueuedJob
	var started []*jobRec
	for _, q := range c.queue {
		if !picked[q.ID] {
			keep = append(keep, q)
			continue
		}
		rec := c.jobs[q.ID]
		rec.status.State = Running
		rec.status.Started = time.Now()
		c.free -= rec.job.Cpus
		started = append(started, rec)
	}
	c.queue = keep
	statuses := make([]JobStatus, len(started))
	for i, rec := range started {
		statuses[i] = rec.status
	}
	c.mu.Unlock()
	for i, rec := range started {
		c.emit(statuses[i])
		c.launch(rec)
	}
}

func (c *Cluster) launch(rec *jobRec) {
	var ctx context.Context
	var cancel context.CancelFunc
	if rec.job.WallLimit > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), rec.job.WallLimit)
	} else {
		ctx, cancel = context.WithCancel(context.Background())
	}
	c.mu.Lock()
	rec.cancel = cancel
	c.mu.Unlock()
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		defer cancel()
		var err error
		if rec.job.Run != nil {
			err = rec.job.Run(ctx)
		}
		c.finish(rec, ctx, err)
	}()
}

func (c *Cluster) finish(rec *jobRec, ctx context.Context, err error) {
	c.mu.Lock()
	rec.status.Finished = time.Now()
	switch {
	case errors.Is(ctx.Err(), context.DeadlineExceeded):
		rec.status.State = TimedOut
		rec.status.Error = "walltime limit exceeded"
	case errors.Is(ctx.Err(), context.Canceled):
		rec.status.State = Cancelled
	case err != nil:
		rec.status.State = Failed
		rec.status.Error = err.Error()
	default:
		rec.status.State = Completed
	}
	c.free += rec.job.Cpus
	status := rec.status
	c.mu.Unlock()
	c.emit(status)
	c.schedule()
}

func (c *Cluster) emit(s JobStatus) {
	if c.onEvent != nil {
		c.onEvent(s)
	}
}

// Jobs returns a snapshot of all job statuses, sorted by ID.
func (c *Cluster) Jobs() []JobStatus {
	c.mu.Lock()
	out := make([]JobStatus, 0, len(c.jobs))
	for _, rec := range c.jobs {
		out = append(out, rec.status)
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Close cancels everything and waits for running payloads to exit.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	var cancels []context.CancelFunc
	for _, rec := range c.jobs {
		if rec.status.State == Running && rec.cancel != nil {
			cancels = append(cancels, rec.cancel)
		}
	}
	var cancelled []JobStatus
	for _, q := range c.queue {
		rec := c.jobs[q.ID]
		rec.status.State = Cancelled
		rec.status.Finished = time.Now()
		cancelled = append(cancelled, rec.status)
	}
	c.queue = nil
	c.mu.Unlock()
	for _, s := range cancelled {
		c.emit(s)
	}
	for _, cancel := range cancels {
		cancel()
	}
	c.wg.Wait()
}
