package lrm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// waitState polls until the job reaches a terminal state or times out.
func waitState(t *testing.T, c *Cluster, id string, want State) JobStatus {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st, err := c.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() && st.State != want {
			t.Fatalf("job %s reached %v, want %v (err=%q)", id, st.State, want, st.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %v", id, want)
	return JobStatus{}
}

func TestSubmitRunComplete(t *testing.T) {
	c, err := NewCluster(Config{Name: "pbs", Cpus: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ran := atomic.Bool{}
	id, err := c.Submit(Job{Owner: "u", Run: func(context.Context) error {
		ran.Store(true)
		return nil
	}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	st := waitState(t, c, id, Completed)
	if !ran.Load() {
		t.Fatal("payload did not run")
	}
	if st.Started.Before(st.Queued) || st.Finished.Before(st.Started) {
		t.Fatalf("timestamps out of order: %+v", st)
	}
	if c.FreeCpus() != 2 {
		t.Fatalf("free CPUs = %d after completion, want 2", c.FreeCpus())
	}
}

func TestFailedJob(t *testing.T) {
	c, _ := NewCluster(Config{Name: "x", Cpus: 1})
	defer c.Close()
	id, _ := c.Submit(Job{Run: func(context.Context) error { return errors.New("segfault") }}, 0)
	st := waitState(t, c, id, Failed)
	if st.Error != "segfault" {
		t.Fatalf("error = %q", st.Error)
	}
}

func TestWalltimeEnforced(t *testing.T) {
	c, _ := NewCluster(Config{Name: "x", Cpus: 1})
	defer c.Close()
	id, _ := c.Submit(Job{
		WallLimit: 20 * time.Millisecond,
		Run: func(ctx context.Context) error {
			<-ctx.Done()
			return ctx.Err()
		},
	}, 0)
	waitState(t, c, id, TimedOut)
}

func TestCancelQueuedAndRunning(t *testing.T) {
	c, _ := NewCluster(Config{Name: "x", Cpus: 1})
	defer c.Close()
	block := make(chan struct{})
	running, _ := c.Submit(Job{Run: func(ctx context.Context) error {
		close(block)
		<-ctx.Done()
		return ctx.Err()
	}}, 0)
	<-block
	queued, _ := c.Submit(Job{Run: func(context.Context) error { return nil }}, 0)
	if st, _ := c.Status(queued); st.State != Queued {
		t.Fatalf("second job state = %v, want queued", st.State)
	}
	if err := c.Cancel(queued); err != nil {
		t.Fatal(err)
	}
	waitState(t, c, queued, Cancelled)
	if err := c.Cancel(running); err != nil {
		t.Fatal(err)
	}
	waitState(t, c, running, Cancelled)
	// Cancel after terminal is a no-op.
	if err := c.Cancel(running); err != nil {
		t.Fatal(err)
	}
	if err := c.Cancel("nope"); err == nil {
		t.Fatal("cancel of unknown job succeeded")
	}
}

func TestCapacityRespected(t *testing.T) {
	c, _ := NewCluster(Config{Name: "x", Cpus: 3})
	defer c.Close()
	var mu sync.Mutex
	inFlight, maxInFlight := 0, 0
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		c.Submit(Job{Run: func(context.Context) error {
			defer wg.Done()
			mu.Lock()
			inFlight++
			if inFlight > maxInFlight {
				maxInFlight = inFlight
			}
			mu.Unlock()
			time.Sleep(5 * time.Millisecond)
			mu.Lock()
			inFlight--
			mu.Unlock()
			return nil
		}}, 0)
	}
	wg.Wait()
	if maxInFlight > 3 {
		t.Fatalf("concurrency %d exceeded capacity 3", maxInFlight)
	}
}

func TestOversizedJobRejected(t *testing.T) {
	c, _ := NewCluster(Config{Name: "x", Cpus: 2})
	defer c.Close()
	if _, err := c.Submit(Job{Cpus: 3}, 0); err == nil {
		t.Fatal("job larger than cluster accepted")
	}
}

func TestDuplicateIDRejected(t *testing.T) {
	c, _ := NewCluster(Config{Name: "x", Cpus: 4})
	defer c.Close()
	block := make(chan struct{})
	defer close(block)
	if _, err := c.Submit(Job{ID: "j1", Run: func(context.Context) error { <-block; return nil }}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(Job{ID: "j1"}, 0); err == nil {
		t.Fatal("duplicate ID accepted")
	}
}

func TestSubmitAfterClose(t *testing.T) {
	c, _ := NewCluster(Config{Name: "x", Cpus: 1})
	c.Close()
	if _, err := c.Submit(Job{}, 0); err == nil {
		t.Fatal("submit after close succeeded")
	}
	c.Close() // idempotent
}

func TestStatusCallbackSequence(t *testing.T) {
	var mu sync.Mutex
	var states []State
	done := make(chan struct{})
	c, _ := NewCluster(Config{Name: "x", Cpus: 1, OnEvent: func(s JobStatus) {
		mu.Lock()
		states = append(states, s.State)
		mu.Unlock()
		if s.State.Terminal() {
			close(done)
		}
	}})
	defer c.Close()
	c.Submit(Job{Run: func(context.Context) error { return nil }}, 0)
	<-done
	mu.Lock()
	defer mu.Unlock()
	want := []State{Queued, Running, Completed}
	if len(states) != 3 {
		t.Fatalf("events = %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("events = %v, want %v", states, want)
		}
	}
}

// --- policy unit tests (pure functions, no goroutines) ---

func qj(id, owner string, cpus int) *QueuedJob {
	return &QueuedJob{ID: id, Owner: owner, Cpus: cpus}
}

func ids(jobs []*QueuedJob) string {
	s := ""
	for i, j := range jobs {
		if i > 0 {
			s += ","
		}
		s += j.ID
	}
	return s
}

func TestFIFOHeadOfLineBlocking(t *testing.T) {
	queue := []*QueuedJob{qj("a", "u", 4), qj("b", "u", 1)}
	if got := ids(FIFO{}.Select(queue, 2, nil)); got != "" {
		t.Fatalf("FIFO started %q past a blocked head", got)
	}
	if got := ids(FIFO{}.Select(queue, 5, nil)); got != "a,b" {
		t.Fatalf("FIFO with room = %q, want a,b", got)
	}
}

func TestBackfillJumpsBlockedHead(t *testing.T) {
	queue := []*QueuedJob{qj("big", "u", 4), qj("small", "u", 1), qj("med", "u", 2)}
	if got := ids(Backfill{}.Select(queue, 3, nil)); got != "small,med" {
		t.Fatalf("backfill = %q, want small,med", got)
	}
}

func TestFairShareBalancesOwners(t *testing.T) {
	queue := []*QueuedJob{
		qj("a1", "alice", 1), qj("a2", "alice", 1),
		qj("b1", "bob", 1),
	}
	// Alice already has 2 running; Bob has 0 — Bob goes first.
	got := FairShare{}.Select(queue, 2, []string{"alice", "alice"})
	if ids(got) != "b1,a1" {
		t.Fatalf("fairshare = %q, want b1,a1", ids(got))
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"", "fifo", "backfill", "fairshare"} {
		if _, err := PolicyByName(name); err != nil {
			t.Fatalf("PolicyByName(%q): %v", name, err)
		}
	}
	if _, err := PolicyByName("lottery"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// Property: no policy ever over-commits CPUs or schedules a job twice.
func TestQuickPoliciesNeverOvercommit(t *testing.T) {
	policies := []Policy{FIFO{}, Backfill{}, FairShare{}}
	f := func(sizes []uint8, free uint8) bool {
		var queue []*QueuedJob
		for i, s := range sizes {
			queue = append(queue, qj(fmt.Sprintf("j%d", i), fmt.Sprintf("u%d", i%3), int(s%8)+1))
		}
		for _, p := range policies {
			picks := p.Select(queue, int(free%32), nil)
			total := 0
			seen := map[string]bool{}
			for _, j := range picks {
				if seen[j.ID] {
					return false
				}
				seen[j.ID] = true
				total += j.Cpus
			}
			if total > int(free%32) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
