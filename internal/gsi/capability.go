package gsi

import (
	"crypto/ed25519"
	"encoding/json"
	"fmt"
	"time"
)

// Capability is a signed authorization grant, implementing the §3.2
// extension: "Work in progress will also allow authorization decisions to
// be made on the basis of capabilities supplied with the request." A site
// administrator signs a capability giving a grid subject specific rights
// (e.g. "gram:submit") and a local account mapping, so users outside the
// gridmap can be authorized per-request.
type Capability struct {
	// Subject is the grid identity being granted the rights.
	Subject string `json:"subject"`
	// LocalUser is the local account the subject maps to when exercising
	// this capability.
	LocalUser string `json:"local_user"`
	// Rights are operation names, e.g. "gram:submit".
	Rights    []string  `json:"rights"`
	NotBefore time.Time `json:"not_before"`
	NotAfter  time.Time `json:"not_after"`
	// Issuer is the granting authority's subject (informational; the
	// signature is what is verified).
	Issuer    string `json:"issuer"`
	Signature []byte `json:"signature"`
}

func (c *Capability) tbs() []byte {
	clone := *c
	clone.Signature = nil
	data, err := json.Marshal(&clone)
	if err != nil {
		panic("gsi: capability not marshalable: " + err.Error())
	}
	return data
}

// IssueCapability signs a grant with the issuer's credential.
func IssueCapability(issuer *Credential, subject, localUser string, rights []string, now time.Time, lifetime time.Duration) (*Capability, error) {
	if issuer.Expired(now) {
		return nil, ErrExpired
	}
	cap := &Capability{
		Subject:   subject,
		LocalUser: localUser,
		Rights:    append([]string(nil), rights...),
		NotBefore: now,
		NotAfter:  now.Add(lifetime),
		Issuer:    issuer.Subject(),
	}
	cap.Signature = issuer.Sign(cap.tbs())
	return cap, nil
}

// Verify checks the capability against the pinned issuer certificate: the
// signature must verify, the window must contain now, the authenticated
// subject must be the grantee, and the requested right must be granted.
// It returns the local user the grant maps to.
func (c *Capability) Verify(issuerCert *Certificate, subject, right string, now time.Time) (string, error) {
	if c == nil {
		return "", fmt.Errorf("%w: no capability supplied", ErrUnauthorized)
	}
	if now.Before(c.NotBefore) || now.After(c.NotAfter) {
		return "", fmt.Errorf("%w: capability window", ErrExpired)
	}
	if issuerCert.Expired(now) {
		return "", fmt.Errorf("%w: capability issuer certificate", ErrExpired)
	}
	if !ed25519.Verify(issuerCert.PublicKey, c.tbs(), c.Signature) {
		return "", fmt.Errorf("%w: capability signature", ErrBadSignature)
	}
	if c.Subject != subject {
		return "", fmt.Errorf("%w: capability granted to %s, presented by %s", ErrUnauthorized, c.Subject, subject)
	}
	for _, r := range c.Rights {
		if r == right {
			return c.LocalUser, nil
		}
	}
	return "", fmt.Errorf("%w: capability does not grant %q", ErrUnauthorized, right)
}

// EncodeCapability serializes a capability for transport.
func EncodeCapability(c *Capability) ([]byte, error) { return json.Marshal(c) }

// DecodeCapability reverses EncodeCapability.
func DecodeCapability(data []byte) (*Capability, error) {
	var c Capability
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, err
	}
	return &c, nil
}
