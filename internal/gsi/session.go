package gsi

import (
	"crypto/rand"
	"encoding/hex"
)

// NewSessionID mints an unguessable identifier for a wire-layer
// authenticated session. The ID is the whole secret: it is only ever
// issued over the connection whose handshake token verified, and it is
// only accepted back on that same connection, so 128 bits of entropy
// (rather than a signed structure) is sufficient — exactly the trade the
// handshake makes to amortize the per-message signature cost.
func NewSessionID() string {
	b := make([]byte, 16)
	if _, err := rand.Read(b); err != nil {
		panic("gsi: entropy source failed: " + err.Error())
	}
	return hex.EncodeToString(b)
}
