// Package gsi reproduces the Grid Security Infrastructure of §3.1: a PKI in
// which a certificate authority signs long-lived user certificates, and a
// user's private key signs short-lived *proxy credentials* that agents (the
// GridManager, a JobManager, a GlideIn pilot) use to act on the user's
// behalf without ever holding the user's long-term key. Verification walks
// the delegation chain to a trusted CA and enforces every lifetime on the
// path, so capturing a proxy buys an adversary only its remaining minutes.
//
// Renewal contract (§4.3): proxies are deliberately short-lived, so the
// agent renews them ahead of expiry (internal/credmgr) and re-forwards the
// fresh proxy to every remote service still holding a stale copy via
// Delegate/DelegateScoped. A remote copy never outlives the proxy it was
// derived from — lifetimes clamp to the parent's remaining window — and a
// renewed proxy is a new chain, never a mutated old one.
//
// Scoping contract (mediated delegation): DelegateScoped embeds the target
// site's identity in the delegated certificate itself, covered by the
// signature. A scoped proxy presented anywhere other than the site named
// in its chain fails verification (VerifyChainAt, ErrScope), so a
// compromised site cannot replay the proxies delegated to it against the
// rest of the grid. Scope can be narrowed along a chain but never widened:
// a proxy derived from a scoped parent inherits the restriction.
//
// Substitution note (see DESIGN.md): the paper's GSI rides on X.509/SSL; we
// use Ed25519 with a compact JSON certificate encoding. The security
// semantics every experiment depends on — single sign-on, finite proxy
// lifetimes, chain verification, gridmap authorization, restricted
// delegation — are implemented with real signatures, not stubs.
package gsi

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Clock abstracts time so credential-expiry experiments can run on the
// discrete-event virtual clock.
type Clock func() time.Time

// WallClock is the default real-time clock.
func WallClock() time.Time { return time.Now() }

// Certificate binds a subject name to a public key for an interval, signed
// by an issuer. IsProxy marks proxy certificates, which are signed by the
// *subject's own* parent certificate key rather than the CA.
type Certificate struct {
	Subject   string            `json:"subject"` // e.g. "/O=Grid/OU=cs.wisc.edu/CN=jfrey"
	Issuer    string            `json:"issuer"`
	PublicKey ed25519.PublicKey `json:"public_key"`
	NotBefore time.Time         `json:"not_before"`
	NotAfter  time.Time         `json:"not_after"`
	IsProxy   bool              `json:"is_proxy"`
	Serial    uint64            `json:"serial"`
	// Scope, when non-empty, restricts where the certificate may be
	// presented: the gatekeeper address of the one site this delegation is
	// for. It is covered by the signature (tbs marshals the whole
	// certificate), so a site cannot strip or rewrite the restriction; the
	// empty value (the common case, omitted from the encoding) leaves
	// pre-scoping signatures valid unchanged.
	Scope     string `json:"scope,omitempty"`
	Signature []byte `json:"signature"`
}

// tbs returns the to-be-signed encoding of the certificate.
func (c *Certificate) tbs() []byte {
	clone := *c
	clone.Signature = nil
	data, err := json.Marshal(&clone)
	if err != nil {
		panic("gsi: certificate not marshalable: " + err.Error())
	}
	return data
}

// Expired reports whether the certificate is outside its validity window.
func (c *Certificate) Expired(now time.Time) bool {
	return now.Before(c.NotBefore) || now.After(c.NotAfter)
}

// TimeLeft returns the remaining lifetime at now (<= 0 when expired).
func (c *Certificate) TimeLeft(now time.Time) time.Duration {
	return c.NotAfter.Sub(now)
}

// Credential is a certificate chain plus the private key for the leaf.
// chain[0] is the leaf; chain[len-1] is issued directly by the CA.
type Credential struct {
	Chain []*Certificate     `json:"chain"`
	Key   ed25519.PrivateKey `json:"key"`
}

// Leaf returns the end-entity certificate.
func (c *Credential) Leaf() *Certificate { return c.Chain[0] }

// Subject returns the identity: for proxies, the subject of the original
// user certificate at the root of the delegation chain.
func (c *Credential) Subject() string {
	for _, cert := range c.Chain {
		if !cert.IsProxy {
			return cert.Subject
		}
	}
	return c.Chain[len(c.Chain)-1].Subject
}

// Expired reports whether any certificate in the chain has expired.
func (c *Credential) Expired(now time.Time) bool {
	for _, cert := range c.Chain {
		if cert.Expired(now) {
			return true
		}
	}
	return false
}

// TimeLeft returns the minimum remaining lifetime across the chain.
func (c *Credential) TimeLeft(now time.Time) time.Duration {
	min := time.Duration(1<<62 - 1)
	for _, cert := range c.Chain {
		if left := cert.TimeLeft(now); left < min {
			min = left
		}
	}
	return min
}

// PublicChain returns the chain without the private key, for transmission.
func (c *Credential) PublicChain() []*Certificate {
	return append([]*Certificate(nil), c.Chain...)
}

// Sign signs msg with the credential's private key.
func (c *Credential) Sign(msg []byte) []byte {
	return ed25519.Sign(c.Key, msg)
}

// CA is a certificate authority trusted by every site in the test grid.
type CA struct {
	mu     sync.Mutex
	name   string
	key    ed25519.PrivateKey
	cert   *Certificate
	serial uint64
}

// NewCA creates a CA with a self-signed certificate valid for validity.
func NewCA(name string, now time.Time, validity time.Duration) (*CA, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	ca := &CA{name: name, key: priv}
	cert := &Certificate{
		Subject:   name,
		Issuer:    name,
		PublicKey: pub,
		NotBefore: now,
		NotAfter:  now.Add(validity),
		Serial:    0,
	}
	cert.Signature = ed25519.Sign(priv, cert.tbs())
	ca.cert = cert
	return ca, nil
}

// Certificate returns the CA's self-signed certificate (the trust anchor).
func (ca *CA) Certificate() *Certificate { return ca.cert }

// IssueUser issues a long-lived user credential for subject.
func (ca *CA) IssueUser(subject string, now time.Time, validity time.Duration) (*Credential, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	ca.mu.Lock()
	ca.serial++
	serial := ca.serial
	ca.mu.Unlock()
	cert := &Certificate{
		Subject:   subject,
		Issuer:    ca.name,
		PublicKey: pub,
		NotBefore: now,
		NotAfter:  now.Add(validity),
		Serial:    serial,
	}
	cert.Signature = ed25519.Sign(ca.key, cert.tbs())
	return &Credential{Chain: []*Certificate{cert}, Key: priv}, nil
}

// NewProxy derives a short-lived proxy credential from parent. The proxy's
// certificate is signed by the parent's private key, extending the chain;
// the parent's key never leaves the caller. Proxy lifetime is clamped to
// the parent's remaining lifetime, as in GSI.
func NewProxy(parent *Credential, now time.Time, lifetime time.Duration) (*Credential, error) {
	// A proxy derived from a scoped parent inherits the restriction: the
	// narrowing survives further delegation and can never be shed.
	return newProxy(parent, now, lifetime, ChainScope(parent.Chain))
}

func newProxy(parent *Credential, now time.Time, lifetime time.Duration, scope string) (*Credential, error) {
	if parent.Expired(now) {
		return nil, ErrExpired
	}
	if left := parent.TimeLeft(now); lifetime > left {
		lifetime = left
	}
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	leaf := parent.Leaf()
	cert := &Certificate{
		Subject:   leaf.Subject + "/CN=proxy",
		Issuer:    leaf.Subject,
		PublicKey: pub,
		NotBefore: now,
		NotAfter:  now.Add(lifetime),
		IsProxy:   true,
		Serial:    leaf.Serial,
		Scope:     scope,
	}
	cert.Signature = parent.Sign(cert.tbs())
	chain := append([]*Certificate{cert}, parent.Chain...)
	return &Credential{Chain: chain, Key: priv}, nil
}

// Errors returned by verification.
var (
	ErrExpired      = errors.New("gsi: credential expired")
	ErrBadSignature = errors.New("gsi: bad signature")
	ErrBadChain     = errors.New("gsi: malformed certificate chain")
	ErrUntrusted    = errors.New("gsi: chain does not terminate at a trusted CA")
	ErrUnauthorized = errors.New("gsi: subject not authorized (no gridmap entry)")
	ErrScope        = errors.New("gsi: credential scoped to another site")
)

// ChainScope returns the effective delegation scope of a chain: the
// leaf-most non-empty Scope, or "" when the chain is unrestricted.
func ChainScope(chain []*Certificate) string {
	for _, cert := range chain {
		if cert.Scope != "" {
			return cert.Scope
		}
	}
	return ""
}

// CheckScope enforces the restricted-delegation rule: every scoped
// certificate in the chain must name site. It is deliberately independent
// of signature verification so callers without a trust anchor (open test
// grids) can still refuse obviously misdirected proxies.
func CheckScope(chain []*Certificate, site string) error {
	for _, cert := range chain {
		if cert.Scope != "" && cert.Scope != site {
			return fmt.Errorf("%w: delegated to %q, presented at %q", ErrScope, cert.Scope, site)
		}
	}
	return nil
}

// VerifyChain validates a certificate chain against a trust anchor at time
// now: every signature must verify, every validity window must contain now,
// proxies must be issued by their parent, and the chain must end at the CA.
// It returns the authenticated grid subject.
func VerifyChain(chain []*Certificate, anchor *Certificate, now time.Time) (string, error) {
	if len(chain) == 0 {
		return "", ErrBadChain
	}
	for i, cert := range chain {
		if cert.Expired(now) {
			return "", fmt.Errorf("%w: %s (expired %s)", ErrExpired, cert.Subject, cert.NotAfter.Format(time.RFC3339))
		}
		var signerKey ed25519.PublicKey
		switch {
		case i+1 < len(chain):
			parent := chain[i+1]
			if cert.Issuer != parent.Subject {
				return "", fmt.Errorf("%w: issuer %q != parent subject %q", ErrBadChain, cert.Issuer, parent.Subject)
			}
			if cert.IsProxy && !strings.HasPrefix(cert.Subject, parent.Subject) {
				return "", fmt.Errorf("%w: proxy subject %q does not extend %q", ErrBadChain, cert.Subject, parent.Subject)
			}
			signerKey = parent.PublicKey
		default:
			if cert.Issuer != anchor.Subject {
				return "", fmt.Errorf("%w: root issuer %q, trusted CA %q", ErrUntrusted, cert.Issuer, anchor.Subject)
			}
			if cert.IsProxy {
				return "", fmt.Errorf("%w: proxy at chain root", ErrBadChain)
			}
			signerKey = anchor.PublicKey
		}
		if !ed25519.Verify(signerKey, cert.tbs(), cert.Signature) {
			return "", fmt.Errorf("%w: certificate %s", ErrBadSignature, cert.Subject)
		}
	}
	// Identity is the first non-proxy certificate's subject.
	for _, cert := range chain {
		if !cert.IsProxy {
			return cert.Subject, nil
		}
	}
	return "", ErrBadChain
}

// VerifyChainAt validates a chain like VerifyChain and additionally
// enforces delegation scope at the named site: a chain carrying any scope
// other than site fails with ErrScope. Services that receive delegated
// credentials (a gatekeeper accepting a submit, a JobManager accepting a
// refresh) verify with this form so a proxy minted for one site is inert
// everywhere else.
func VerifyChainAt(chain []*Certificate, anchor *Certificate, site string, now time.Time) (string, error) {
	subject, err := VerifyChain(chain, anchor, now)
	if err != nil {
		return "", err
	}
	if err := CheckScope(chain, site); err != nil {
		return "", err
	}
	return subject, nil
}

// Gridmap maps authenticated grid subjects to local account names — the
// per-site authorization step GSI performs after authentication.
type Gridmap struct {
	mu      sync.RWMutex
	entries map[string]string
}

// NewGridmap builds a gridmap from subject→local-user pairs.
func NewGridmap(entries map[string]string) *Gridmap {
	m := make(map[string]string, len(entries))
	for k, v := range entries {
		m[k] = v
	}
	return &Gridmap{entries: m}
}

// Add inserts or replaces a mapping.
func (g *Gridmap) Add(subject, localUser string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.entries[subject] = localUser
}

// Remove deletes a mapping.
func (g *Gridmap) Remove(subject string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.entries, subject)
}

// LocalUser maps a grid subject to its local account.
func (g *Gridmap) LocalUser(subject string) (string, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	u, ok := g.entries[subject]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrUnauthorized, subject)
	}
	return u, nil
}
