package gsi

import (
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2001, 8, 6, 9, 0, 0, 0, time.UTC) // HPDC 2001 week

func newTestCA(t *testing.T) *CA {
	t.Helper()
	ca, err := NewCA("/O=Grid/CN=TestCA", t0, 365*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	return ca
}

func TestIssueAndVerifyUser(t *testing.T) {
	ca := newTestCA(t)
	cred, err := ca.IssueUser("/O=Grid/CN=jfrey", t0, 30*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	subject, err := VerifyChain(cred.Chain, ca.Certificate(), t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if subject != "/O=Grid/CN=jfrey" {
		t.Fatalf("subject = %q", subject)
	}
}

func TestProxyChainVerifies(t *testing.T) {
	ca := newTestCA(t)
	user, _ := ca.IssueUser("/O=Grid/CN=miron", t0, 30*24*time.Hour)
	proxy, err := NewProxy(user, t0, 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if got := proxy.Subject(); got != "/O=Grid/CN=miron" {
		t.Fatalf("proxy identity = %q, want the user subject", got)
	}
	subject, err := VerifyChain(proxy.Chain, ca.Certificate(), t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if subject != "/O=Grid/CN=miron" {
		t.Fatalf("verified subject = %q", subject)
	}
	// Second-level delegation (user -> agent -> jobmanager).
	proxy2, err := NewProxy(proxy, t0.Add(time.Minute), 6*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(proxy2.Chain) != 3 {
		t.Fatalf("chain depth = %d, want 3", len(proxy2.Chain))
	}
	if _, err := VerifyChain(proxy2.Chain, ca.Certificate(), t0.Add(2*time.Hour)); err != nil {
		t.Fatal(err)
	}
}

func TestProxyLifetimeClampedToParent(t *testing.T) {
	ca := newTestCA(t)
	user, _ := ca.IssueUser("/O=Grid/CN=u", t0, 10*time.Hour)
	proxy, err := NewProxy(user, t0, 100*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if left := proxy.TimeLeft(t0); left > 10*time.Hour {
		t.Fatalf("proxy lifetime %v exceeds parent's 10h", left)
	}
}

func TestExpiredProxyRejected(t *testing.T) {
	ca := newTestCA(t)
	user, _ := ca.IssueUser("/O=Grid/CN=u", t0, 30*24*time.Hour)
	proxy, _ := NewProxy(user, t0, time.Hour)
	if _, err := VerifyChain(proxy.Chain, ca.Certificate(), t0.Add(2*time.Hour)); err == nil {
		t.Fatal("expired proxy verified")
	}
	if !proxy.Expired(t0.Add(2 * time.Hour)) {
		t.Fatal("Expired() should report true after lifetime")
	}
	if proxy.Expired(t0.Add(30 * time.Minute)) {
		t.Fatal("Expired() true before lifetime")
	}
	// Cannot derive a proxy from an expired credential.
	if _, err := NewProxy(proxy, t0.Add(2*time.Hour), time.Hour); err == nil {
		t.Fatal("NewProxy from expired parent should fail")
	}
}

func TestTamperedCertificateRejected(t *testing.T) {
	ca := newTestCA(t)
	cred, _ := ca.IssueUser("/O=Grid/CN=u", t0, time.Hour)
	evil := *cred.Leaf()
	evil.Subject = "/O=Grid/CN=root"
	if _, err := VerifyChain([]*Certificate{&evil}, ca.Certificate(), t0); err == nil {
		t.Fatal("tampered subject verified")
	}
}

func TestWrongCARejected(t *testing.T) {
	ca1 := newTestCA(t)
	ca2, _ := NewCA("/O=Grid/CN=OtherCA", t0, 365*24*time.Hour)
	cred, _ := ca1.IssueUser("/O=Grid/CN=u", t0, time.Hour)
	if _, err := VerifyChain(cred.Chain, ca2.Certificate(), t0); err == nil {
		t.Fatal("chain verified against wrong CA")
	}
}

func TestForgedProxyRejected(t *testing.T) {
	ca := newTestCA(t)
	alice, _ := ca.IssueUser("/O=Grid/CN=alice", t0, 24*time.Hour)
	mallory, _ := ca.IssueUser("/O=Grid/CN=mallory", t0, 24*time.Hour)
	// Mallory signs a proxy claiming to extend Alice's identity.
	forged, _ := NewProxy(mallory, t0, time.Hour)
	forged.Chain[0].Subject = alice.Leaf().Subject + "/CN=proxy"
	forged.Chain[0].Issuer = alice.Leaf().Subject
	if _, err := VerifyChain(forged.Chain, ca.Certificate(), t0); err == nil {
		t.Fatal("forged proxy chain verified")
	}
}

func TestGridmap(t *testing.T) {
	gm := NewGridmap(map[string]string{"/O=Grid/CN=jfrey": "jfrey"})
	u, err := gm.LocalUser("/O=Grid/CN=jfrey")
	if err != nil || u != "jfrey" {
		t.Fatalf("LocalUser = %q, %v", u, err)
	}
	if _, err := gm.LocalUser("/O=Grid/CN=stranger"); err == nil {
		t.Fatal("unmapped subject authorized")
	}
	gm.Add("/O=Grid/CN=stranger", "guest")
	if u, _ := gm.LocalUser("/O=Grid/CN=stranger"); u != "guest" {
		t.Fatalf("after Add: %q", u)
	}
	gm.Remove("/O=Grid/CN=stranger")
	if _, err := gm.LocalUser("/O=Grid/CN=stranger"); err == nil {
		t.Fatal("removed subject still authorized")
	}
}

func TestAuthTokenRoundTrip(t *testing.T) {
	ca := newTestCA(t)
	user, _ := ca.IssueUser("/O=Grid/CN=u", t0, 24*time.Hour)
	proxy, _ := NewProxy(user, t0, 12*time.Hour)
	tok, err := NewAuthToken(proxy, "gram:submit", t0)
	if err != nil {
		t.Fatal(err)
	}
	subject, err := tok.Verify(ca.Certificate(), "gram:submit", t0.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if subject != "/O=Grid/CN=u" {
		t.Fatalf("token subject = %q", subject)
	}
}

func TestAuthTokenContextBinding(t *testing.T) {
	ca := newTestCA(t)
	user, _ := ca.IssueUser("/O=Grid/CN=u", t0, 24*time.Hour)
	tok, _ := NewAuthToken(user, "gass:read", t0)
	if _, err := tok.Verify(ca.Certificate(), "gram:submit", t0); err == nil {
		t.Fatal("token replayed across contexts")
	}
}

func TestAuthTokenFreshness(t *testing.T) {
	ca := newTestCA(t)
	user, _ := ca.IssueUser("/O=Grid/CN=u", t0, 24*time.Hour)
	tok, _ := NewAuthToken(user, "x", t0)
	if _, err := tok.Verify(ca.Certificate(), "x", t0.Add(MaxTokenAge+time.Minute)); err == nil {
		t.Fatal("stale token verified")
	}
}

func TestAuthTokenTamperedSignature(t *testing.T) {
	ca := newTestCA(t)
	user, _ := ca.IssueUser("/O=Grid/CN=u", t0, 24*time.Hour)
	tok, _ := NewAuthToken(user, "x", t0)
	tok.Nonce[0] ^= 1
	if _, err := tok.Verify(ca.Certificate(), "x", t0); err == nil {
		t.Fatal("tampered token verified")
	}
}

func TestExpiredCredentialCannotMakeToken(t *testing.T) {
	ca := newTestCA(t)
	user, _ := ca.IssueUser("/O=Grid/CN=u", t0, time.Hour)
	if _, err := NewAuthToken(user, "x", t0.Add(2*time.Hour)); err == nil {
		t.Fatal("expired credential produced a token")
	}
}

func TestCredentialEncodeDecode(t *testing.T) {
	ca := newTestCA(t)
	user, _ := ca.IssueUser("/O=Grid/CN=u", t0, 24*time.Hour)
	proxy, _ := NewProxy(user, t0, time.Hour)
	data, err := EncodeCredential(proxy)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeCredential(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Subject() != proxy.Subject() || len(back.Chain) != len(proxy.Chain) {
		t.Fatalf("decode mismatch: %q %d", back.Subject(), len(back.Chain))
	}
	// Decoded credential can still sign (key survived).
	if _, err := NewAuthToken(back, "x", t0); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCredential([]byte(`{"chain":[]}`)); err == nil {
		t.Fatal("empty chain decoded")
	}
}

// Property: a proxy's remaining lifetime never exceeds its parent's, at any
// derivation depth.
func TestQuickProxyLifetimeMonotone(t *testing.T) {
	ca := newTestCA(t)
	user, err := ca.IssueUser("/O=Grid/CN=q", t0, 100*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	f := func(hours []uint8) bool {
		cred := user
		now := t0
		for _, h := range hours {
			if len(cred.Chain) > 6 {
				break
			}
			next, err := NewProxy(cred, now, time.Duration(h%50)*time.Hour+time.Minute)
			if err != nil {
				return false
			}
			if next.TimeLeft(now) > cred.TimeLeft(now) {
				return false
			}
			cred = next
		}
		_, err := VerifyChain(cred.Chain, ca.Certificate(), now)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
