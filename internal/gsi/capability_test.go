package gsi

import (
	"testing"
	"time"
)

func TestCapabilityIssueVerify(t *testing.T) {
	ca := newTestCA(t)
	admin, _ := ca.IssueUser("/O=Grid/CN=site-admin", t0, 365*24*time.Hour)
	cap, err := IssueCapability(admin, "/O=Grid/CN=visitor", "guest",
		[]string{"gram:submit", "gram:status"}, t0, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	localUser, err := cap.Verify(admin.Leaf(), "/O=Grid/CN=visitor", "gram:submit", t0.Add(time.Hour))
	if err != nil || localUser != "guest" {
		t.Fatalf("verify: %q %v", localUser, err)
	}
	// Wrong right.
	if _, err := cap.Verify(admin.Leaf(), "/O=Grid/CN=visitor", "gram:cancel", t0); err == nil {
		t.Fatal("ungranted right authorized")
	}
	// Wrong subject (capability theft).
	if _, err := cap.Verify(admin.Leaf(), "/O=Grid/CN=thief", "gram:submit", t0); err == nil {
		t.Fatal("stolen capability authorized")
	}
	// Expired.
	if _, err := cap.Verify(admin.Leaf(), "/O=Grid/CN=visitor", "gram:submit", t0.Add(25*time.Hour)); err == nil {
		t.Fatal("expired capability authorized")
	}
	// Not yet valid.
	if _, err := cap.Verify(admin.Leaf(), "/O=Grid/CN=visitor", "gram:submit", t0.Add(-time.Hour)); err == nil {
		t.Fatal("future capability authorized")
	}
}

func TestCapabilityTamperRejected(t *testing.T) {
	ca := newTestCA(t)
	admin, _ := ca.IssueUser("/O=Grid/CN=admin", t0, 24*time.Hour)
	cap, _ := IssueCapability(admin, "/O=Grid/CN=u", "guest", []string{"gram:submit"}, t0, time.Hour)
	cap.LocalUser = "root" // privilege escalation attempt
	if _, err := cap.Verify(admin.Leaf(), "/O=Grid/CN=u", "gram:submit", t0); err == nil {
		t.Fatal("tampered capability verified")
	}
}

func TestCapabilityWrongIssuerRejected(t *testing.T) {
	ca := newTestCA(t)
	admin, _ := ca.IssueUser("/O=Grid/CN=admin", t0, 24*time.Hour)
	mallory, _ := ca.IssueUser("/O=Grid/CN=mallory", t0, 24*time.Hour)
	cap, _ := IssueCapability(mallory, "/O=Grid/CN=u", "guest", []string{"gram:submit"}, t0, time.Hour)
	// The site pins admin's certificate; mallory's grant means nothing.
	if _, err := cap.Verify(admin.Leaf(), "/O=Grid/CN=u", "gram:submit", t0); err == nil {
		t.Fatal("capability from untrusted issuer verified")
	}
}

func TestCapabilityEncodeDecode(t *testing.T) {
	ca := newTestCA(t)
	admin, _ := ca.IssueUser("/O=Grid/CN=admin", t0, 24*time.Hour)
	cap, _ := IssueCapability(admin, "/O=Grid/CN=u", "guest", []string{"gram:submit"}, t0, time.Hour)
	data, err := EncodeCapability(cap)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeCapability(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := back.Verify(admin.Leaf(), "/O=Grid/CN=u", "gram:submit", t0); err != nil {
		t.Fatalf("decoded capability failed verify: %v", err)
	}
}

func TestExpiredIssuerCannotGrant(t *testing.T) {
	ca := newTestCA(t)
	admin, _ := ca.IssueUser("/O=Grid/CN=admin", t0, time.Hour)
	if _, err := IssueCapability(admin, "/O=Grid/CN=u", "g", []string{"r"}, t0.Add(2*time.Hour), time.Hour); err == nil {
		t.Fatal("expired issuer granted a capability")
	}
	// A valid-at-issue grant outliving the issuer's cert is refused at
	// verification time.
	cap, _ := IssueCapability(admin, "/O=Grid/CN=u", "g", []string{"r"}, t0, 10*time.Hour)
	if _, err := cap.Verify(admin.Leaf(), "/O=Grid/CN=u", "r", t0.Add(5*time.Hour)); err == nil {
		t.Fatal("capability honored after issuer cert expiry")
	}
}
