package gsi

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/json"
	"fmt"
	"time"
)

// AuthToken is the unit of GSI authentication on the wire: the sender's
// certificate chain plus a signature, by the chain's leaf key, over a fresh
// nonce and a caller-chosen context string (channel binding). A verifier
// checks the chain to its trust anchor and the signature, yielding the
// authenticated grid subject. Tokens are bound to a context so a token
// captured from one protocol exchange cannot be replayed into another.
type AuthToken struct {
	Chain     []*Certificate `json:"chain"`
	Context   string         `json:"context"`
	Nonce     []byte         `json:"nonce"`
	IssuedAt  time.Time      `json:"issued_at"`
	Signature []byte         `json:"signature"`
}

// MaxTokenAge bounds token freshness during verification.
const MaxTokenAge = 5 * time.Minute

func tokenMessage(context string, nonce []byte, issued time.Time) []byte {
	msg, err := json.Marshal(struct {
		Context string    `json:"context"`
		Nonce   []byte    `json:"nonce"`
		Issued  time.Time `json:"issued"`
	}{context, nonce, issued})
	if err != nil {
		panic("gsi: token message not marshalable: " + err.Error())
	}
	return msg
}

// NewAuthToken creates a token proving possession of cred's leaf key.
func NewAuthToken(cred *Credential, context string, now time.Time) (*AuthToken, error) {
	if cred.Expired(now) {
		return nil, ErrExpired
	}
	nonce := make([]byte, 16)
	if _, err := rand.Read(nonce); err != nil {
		return nil, err
	}
	t := &AuthToken{
		Chain:    cred.PublicChain(),
		Context:  context,
		Nonce:    nonce,
		IssuedAt: now,
	}
	t.Signature = cred.Sign(tokenMessage(context, nonce, now))
	return t, nil
}

// Verify validates the token against the trust anchor: chain verification,
// leaf signature, context binding, and freshness. It returns the
// authenticated grid subject.
func (t *AuthToken) Verify(anchor *Certificate, wantContext string, now time.Time) (string, error) {
	if t == nil {
		return "", fmt.Errorf("%w: missing token", ErrBadChain)
	}
	if t.Context != wantContext {
		return "", fmt.Errorf("%w: token context %q, want %q", ErrBadSignature, t.Context, wantContext)
	}
	age := now.Sub(t.IssuedAt)
	if age < -MaxTokenAge || age > MaxTokenAge {
		return "", fmt.Errorf("%w: token issued %v, now %v", ErrExpired, t.IssuedAt, now)
	}
	subject, err := VerifyChain(t.Chain, anchor, now)
	if err != nil {
		return "", err
	}
	leaf := t.Chain[0]
	if !ed25519.Verify(leaf.PublicKey, tokenMessage(t.Context, t.Nonce, t.IssuedAt), t.Signature) {
		return "", fmt.Errorf("%w: token signature", ErrBadSignature)
	}
	return subject, nil
}

// Delegate serializes a credential for forwarding to a remote service (the
// paper forwards the user's proxy to the remote GRAM server at job start).
// In real GSI delegation the remote side generates the key pair; here the
// forwarded proxy is a fresh key pair created locally and shipped whole,
// which preserves the property under study: the remote copy expires
// independently and must be re-forwarded after refresh (§4.3).
func Delegate(cred *Credential, now time.Time, lifetime time.Duration) (*Credential, error) {
	return NewProxy(cred, now, lifetime)
}

// DelegateScoped derives a delegation proxy restricted to one site: the
// site's identity (its gatekeeper address) is embedded in the delegated
// certificate under the signature, so the receiving site can use the proxy
// locally but cannot replay it against any other site (VerifyChainAt /
// CheckScope reject it with ErrScope). Scope only narrows: delegating from
// an already-scoped credential to a different site is refused.
func DelegateScoped(cred *Credential, site string, now time.Time, lifetime time.Duration) (*Credential, error) {
	if site == "" {
		return nil, fmt.Errorf("%w: empty delegation scope", ErrScope)
	}
	if have := ChainScope(cred.Chain); have != "" && have != site {
		return nil, fmt.Errorf("%w: cannot re-scope a %q delegation to %q", ErrScope, have, site)
	}
	return newProxy(cred, now, lifetime, site)
}

// EncodeCredential serializes a credential (including its private key) for
// transport inside an already-authenticated delegation message.
func EncodeCredential(c *Credential) ([]byte, error) { return json.Marshal(c) }

// DecodeCredential reverses EncodeCredential.
func DecodeCredential(data []byte) (*Credential, error) {
	var c Credential
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, err
	}
	if len(c.Chain) == 0 {
		return nil, ErrBadChain
	}
	return &c, nil
}
