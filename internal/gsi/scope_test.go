package gsi

import (
	"errors"
	"testing"
	"time"
)

func TestScopedDelegationVerifiesAtItsSite(t *testing.T) {
	ca := newTestCA(t)
	user, _ := ca.IssueUser("/O=Grid/CN=jfrey", t0, 30*24*time.Hour)
	proxy, _ := NewProxy(user, t0, 12*time.Hour)
	del, err := DelegateScoped(proxy, "127.0.0.1:7001", t0, 6*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if got := ChainScope(del.Chain); got != "127.0.0.1:7001" {
		t.Fatalf("ChainScope = %q", got)
	}
	subject, err := VerifyChainAt(del.Chain, ca.Certificate(), "127.0.0.1:7001", t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if subject != "/O=Grid/CN=jfrey" {
		t.Fatalf("subject = %q", subject)
	}
}

func TestScopedDelegationRejectedElsewhere(t *testing.T) {
	ca := newTestCA(t)
	user, _ := ca.IssueUser("/O=Grid/CN=jfrey", t0, 30*24*time.Hour)
	del, err := DelegateScoped(user, "siteA:7001", t0, 6*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyChainAt(del.Chain, ca.Certificate(), "siteB:7002", t0.Add(time.Hour)); !errors.Is(err, ErrScope) {
		t.Fatalf("wrong-site verify error = %v, want ErrScope", err)
	}
	if err := CheckScope(del.Chain, "siteB:7002"); !errors.Is(err, ErrScope) {
		t.Fatalf("CheckScope = %v, want ErrScope", err)
	}
}

// The scope rides under the signature: a site rewriting (or stripping) the
// restriction invalidates the certificate.
func TestScopeTamperRejected(t *testing.T) {
	ca := newTestCA(t)
	user, _ := ca.IssueUser("/O=Grid/CN=jfrey", t0, 30*24*time.Hour)
	del, err := DelegateScoped(user, "siteA:7001", t0, 6*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	del.Chain[0].Scope = "siteB:7002"
	if _, err := VerifyChainAt(del.Chain, ca.Certificate(), "siteB:7002", t0.Add(time.Hour)); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("rewritten scope error = %v, want ErrBadSignature", err)
	}
	del.Chain[0].Scope = ""
	if _, err := VerifyChain(del.Chain, ca.Certificate(), t0.Add(time.Hour)); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("stripped scope error = %v, want ErrBadSignature", err)
	}
}

// Scope only narrows: re-delegating a site-scoped proxy to a different
// site is refused at mint time, and a proxy derived from a scoped parent
// inherits the restriction.
func TestScopeCannotWiden(t *testing.T) {
	ca := newTestCA(t)
	user, _ := ca.IssueUser("/O=Grid/CN=jfrey", t0, 30*24*time.Hour)
	del, err := DelegateScoped(user, "siteA:7001", t0, 6*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DelegateScoped(del, "siteB:7002", t0, time.Hour); !errors.Is(err, ErrScope) {
		t.Fatalf("re-scope error = %v, want ErrScope", err)
	}
	child, err := NewProxy(del, t0, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if got := child.Leaf().Scope; got != "siteA:7001" {
		t.Fatalf("derived proxy scope = %q, want inherited siteA:7001", got)
	}
	if _, err := VerifyChainAt(child.Chain, ca.Certificate(), "siteB:7002", t0.Add(time.Minute)); !errors.Is(err, ErrScope) {
		t.Fatalf("derived proxy at wrong site = %v, want ErrScope", err)
	}
	// Same-site re-delegation stays legal (a site refreshing its own copy).
	if _, err := DelegateScoped(del, "siteA:7001", t0, time.Hour); err != nil {
		t.Fatal(err)
	}
}

// Unscoped chains predate the Scope field; their signatures and their
// acceptance at any site must be unaffected.
func TestUnscopedChainUnaffectedByScopeCheck(t *testing.T) {
	ca := newTestCA(t)
	user, _ := ca.IssueUser("/O=Grid/CN=jfrey", t0, 30*24*time.Hour)
	proxy, _ := NewProxy(user, t0, 12*time.Hour)
	if got := ChainScope(proxy.Chain); got != "" {
		t.Fatalf("ChainScope = %q, want empty", got)
	}
	if _, err := VerifyChainAt(proxy.Chain, ca.Certificate(), "any-site:9", t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
}
