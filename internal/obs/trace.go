package obs

import "time"

// Trace phases — the vocabulary of the per-job timeline. Each constant
// names one kind of lifecycle transition; DESIGN.md §6 is the catalogue.
const (
	PhaseSubmit      = "submit"       // accepted into the agent queue
	PhaseDispatch    = "dispatch"     // handed to a per-site pipeline worker
	PhaseGridSubmit  = "grid-submit"  // GRAM submit RPC returned a contact
	PhaseCommit      = "commit"       // GRAM two-phase commit completed
	PhaseCommitRetry = "commit-retry" // commit failed; job requeued for recovery
	PhaseSubmitRetry = "submit-retry" // grid submit failed; will retry
	PhasePending     = "pending"      // remote reports queued in the LRM
	PhaseActive      = "active"       // remote reports running
	PhaseDone        = "done"         // remote reports completed
	PhaseFailed      = "failed"       // job reached Failed
	PhaseFault       = "fault"        // classified fault observed (Class set)
	PhaseResubmit    = "resubmit"     // new submission after a fault
	PhaseMigrate     = "migrate"      // proactive move off a slow site
	PhaseHold        = "hold"         // placed on hold
	PhaseRelease     = "release"      // released from hold
	PhaseRemove      = "remove"       // removed by the user
	PhaseDisconnect  = "disconnect"   // probe lost contact with the job manager
	PhaseReconnect   = "reconnect"    // probe re-established contact
	PhaseJMRestart   = "jm-restart"   // gatekeeper restarted the job manager
	PhaseRecover     = "recover"      // agent restart reloaded this job
	PhaseCancelAck   = "cancel-ack"   // site acknowledged a cancel tombstone
	PhaseStage       = "stage"        // executable pre-staging progress (resume offsets in Detail)
	PhaseBind        = "bind"         // deferred/elastic binding chose (or changed) the target site
	PhaseCredRefresh = "cred-refresh" // refreshed credential re-delegated in-band to the job manager
)

// TraceEvent is one entry of a job's lifecycle timeline.
type TraceEvent struct {
	Seq    int       `json:"seq"`             // global position, survives ring eviction
	Wall   time.Time `json:"wall"`            // wall-clock time of the transition
	Phase  string    `json:"phase"`           // one of the Phase* constants
	Site   string    `json:"site,omitempty"`  // gatekeeper address at event time
	Class  string    `json:"class,omitempty"` // faultclass name for fault-ish events
	Detail string    `json:"detail,omitempty"`
}

// DefaultTraceCap is the per-job timeline ring capacity. A job that churns
// through more transitions keeps the most recent DefaultTraceCap events and
// counts the rest in Dropped.
const DefaultTraceCap = 256

// Timeline is an ordered, ring-buffered sequence of TraceEvents. It is NOT
// internally locked: the owner (the agent's per-job record) must guard it
// with the same mutex that guards the job state, which also makes trace
// appends atomic with the state transitions they describe. Seq values are
// strictly increasing; after eviction Seq of Events[0] equals Dropped.
type Timeline struct {
	Cap     int          `json:"cap,omitempty"`
	Dropped int          `json:"dropped,omitempty"` // events evicted from the ring
	Events  []TraceEvent `json:"events,omitempty"`
}

// Append adds one event at the next sequence number. When the ring is at
// capacity the oldest event is evicted by allocating a fresh backing slice
// (copy-on-evict), never by shifting in place: snapshots of Events taken
// under the owner's lock stay valid after the lock is released.
func (t *Timeline) Append(now time.Time, phase, site, class, detail string) {
	cap := t.Cap
	if cap <= 0 {
		cap = DefaultTraceCap
	}
	ev := TraceEvent{
		Seq:    t.Dropped + len(t.Events),
		Wall:   now,
		Phase:  phase,
		Site:   site,
		Class:  class,
		Detail: detail,
	}
	if len(t.Events) >= cap {
		drop := len(t.Events) - cap + 1
		fresh := make([]TraceEvent, 0, cap)
		fresh = append(fresh, t.Events[drop:]...)
		t.Events = append(fresh, ev)
		t.Dropped += drop
		return
	}
	t.Events = append(t.Events, ev)
}

// Clone returns a deep copy safe to use after the owner's lock is released.
func (t Timeline) Clone() Timeline {
	t.Events = append([]TraceEvent(nil), t.Events...)
	return t
}
