package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("jobs_total"); again != c {
		t.Fatal("Counter did not return the same handle for the same name")
	}
	g := r.Gauge("active")
	g.Set(3.5)
	if got := g.Value(); got != 3.5 {
		t.Fatalf("gauge = %g, want 3.5", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	q := h.Quantiles(0.5, 0.95, 0.99, 0, 1)
	want := []float64{50, 95, 99, 1, 100}
	for i := range want {
		if q[i] != want[i] {
			t.Errorf("quantile[%d] = %g, want %g", i, q[i], want[i])
		}
	}
	if h.Count() != 100 {
		t.Errorf("count = %d, want 100", h.Count())
	}
	if h.Sum() != 5050 {
		t.Errorf("sum = %g, want 5050", h.Sum())
	}
}

func TestHistogramWindowEviction(t *testing.T) {
	h := &Histogram{}
	// First fill the window with large values, then overwrite every slot
	// with small ones; quantiles must reflect only the recent window while
	// Count/Sum cover the lifetime.
	for i := 0; i < HistogramWindow; i++ {
		h.Observe(1000)
	}
	for i := 0; i < HistogramWindow; i++ {
		h.Observe(1)
	}
	q := h.Quantiles(0.5, 0.99)
	if q[0] != 1 || q[1] != 1 {
		t.Fatalf("quantiles over evicted window = %v, want all 1", q)
	}
	if h.Count() != 2*HistogramWindow {
		t.Fatalf("lifetime count = %d, want %d", h.Count(), 2*HistogramWindow)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("z_total").Add(2)
		r.Counter("a_total").Add(1)
		r.Gauge("m_gauge").Set(7)
		h := r.Histogram("lat_seconds")
		h.Observe(0.25)
		h.Observe(0.75)
		r.AddCollector(func(set func(string, float64)) {
			set("collected_gauge", 42)
		})
		return r
	}
	s1, s2 := build().Snapshot(), build().Snapshot()
	t1, t2 := DumpText(s1), DumpText(s2)
	if t1 != t2 {
		t.Fatalf("dump not deterministic:\n%s\nvs\n%s", t1, t2)
	}
	// Sorted by name, collector value present.
	names := make([]string, len(s1))
	for i, m := range s1 {
		names[i] = m.Name
	}
	wantOrder := []string{"a_total", "collected_gauge", "lat_seconds", "m_gauge", "z_total"}
	for i, w := range wantOrder {
		if names[i] != w {
			t.Fatalf("snapshot order = %v, want %v", names, wantOrder)
		}
	}
	for _, m := range s1 {
		if m.Name == "collected_gauge" && m.Value != 42 {
			t.Fatalf("collected gauge = %g, want 42", m.Value)
		}
		if m.Name == "lat_seconds" {
			if m.Count != 2 || m.Sum != 1.0 {
				t.Fatalf("histogram snapshot = %+v", m)
			}
		}
	}
	if _, err := json.Marshal(s1); err != nil {
		t.Fatalf("snapshot not JSON-marshalable: %v", err)
	}
}

func TestNilRegistryDisabled(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter accumulated")
	}
	g := r.Gauge("y")
	g.Set(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge accumulated")
	}
	h := r.Histogram("z")
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram accumulated")
	}
	if q := h.Quantiles(0.5); q[0] != 0 {
		t.Fatal("nil histogram quantile non-zero")
	}
	r.AddCollector(func(set func(string, float64)) { set("a", 1) })
	if s := r.Snapshot(); s != nil {
		t.Fatalf("nil registry snapshot = %v, want nil", s)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Set(float64(j))
				r.Histogram("h").Observe(float64(j))
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8*500 {
		t.Fatalf("counter = %d, want %d", got, 8*500)
	}
}

func TestKey(t *testing.T) {
	if got := Key("gram_rtt_seconds", "verb", "submit"); got != "gram_rtt_seconds{verb=submit}" {
		t.Fatalf("Key = %q", got)
	}
	if got := Key("x", "a", "1", "b", "2"); got != "x{a=1,b=2}" {
		t.Fatalf("Key = %q", got)
	}
	if got := Key("plain"); got != "plain" {
		t.Fatalf("Key = %q", got)
	}
}

func TestTimelineAppendAndSeq(t *testing.T) {
	var tl Timeline
	base := time.Unix(0, 0)
	for i := 0; i < 5; i++ {
		tl.Append(base.Add(time.Duration(i)*time.Second), PhaseSubmit, "site-a", "", "")
	}
	if len(tl.Events) != 5 || tl.Dropped != 0 {
		t.Fatalf("timeline = %d events, dropped %d", len(tl.Events), tl.Dropped)
	}
	for i, ev := range tl.Events {
		if ev.Seq != i {
			t.Fatalf("seq[%d] = %d", i, ev.Seq)
		}
	}
}

func TestTimelineRingEviction(t *testing.T) {
	tl := Timeline{Cap: 4}
	base := time.Unix(0, 0)
	for i := 0; i < 10; i++ {
		tl.Append(base, PhaseActive, "s", "", "")
	}
	if len(tl.Events) != 4 {
		t.Fatalf("ring holds %d, want 4", len(tl.Events))
	}
	if tl.Dropped != 6 {
		t.Fatalf("dropped = %d, want 6", tl.Dropped)
	}
	if tl.Events[0].Seq != 6 || tl.Events[3].Seq != 9 {
		t.Fatalf("seqs = %d..%d, want 6..9", tl.Events[0].Seq, tl.Events[3].Seq)
	}
}

func TestTimelineCopyOnEvict(t *testing.T) {
	tl := Timeline{Cap: 3}
	base := time.Unix(0, 0)
	for i := 0; i < 3; i++ {
		tl.Append(base, PhasePending, "s", "", "")
	}
	snap := tl.Events // simulated reader snapshot taken under the owner's lock
	first := snap[0].Seq
	tl.Append(base, PhaseActive, "s", "", "")
	if snap[0].Seq != first {
		t.Fatal("eviction mutated a previously taken snapshot")
	}
}

func TestTimelineClone(t *testing.T) {
	var tl Timeline
	tl.Append(time.Unix(1, 0), PhaseFault, "s", "site-lost", "probe: connection refused")
	c := tl.Clone()
	tl.Events[0].Detail = "mutated"
	if c.Events[0].Detail != "probe: connection refused" {
		t.Fatal("Clone shares backing array with original")
	}
}
