// Package obs is the agent's observability substrate: a dependency-free
// metrics core (atomic counters, gauges, sliding-window histograms with
// p50/p95/p99) behind a named registry with a deterministic dump, plus the
// per-job trace timeline that records every lifecycle transition and fault
// a job passes through on its way from Unsubmitted to Done (§5's
// operational story, made inspectable).
//
// The package imports nothing but the standard library, so every layer —
// the journal, the GRAM client, the agent — can instrument itself without
// dependency cycles. All handle types are nil-safe: a nil *Registry hands
// out nil *Counter/*Gauge/*Histogram handles whose methods are no-ops,
// which is how metrics are disabled without branching at call sites.
package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil handle.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value. No-op on a nil handle.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value (0 on a nil handle).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// HistogramWindow is the number of most-recent observations a histogram
// retains for quantile estimation. Count and Sum cover the full lifetime.
const HistogramWindow = 1024

// Histogram records observations and reports quantiles over a sliding
// window of the most recent HistogramWindow samples.
type Histogram struct {
	mu     sync.Mutex
	window []float64 // ring buffer of recent samples
	next   int       // ring write position
	count  uint64    // lifetime observation count
	sum    float64   // lifetime sum
}

// Observe records one sample. No-op on a nil handle.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if len(h.window) < HistogramWindow {
		h.window = append(h.window, v)
	} else {
		h.window[h.next] = v
		h.next = (h.next + 1) % HistogramWindow
	}
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// Count returns the lifetime number of observations (0 on a nil handle).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the lifetime sum of observations (0 on a nil handle).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantiles returns the requested quantiles (each in [0,1]) over the
// sliding window, using nearest-rank on the sorted window. With no samples
// every quantile is 0; on a nil handle the result is all zeros.
func (h *Histogram) Quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if h == nil {
		return out
	}
	h.mu.Lock()
	sorted := append([]float64(nil), h.window...)
	h.mu.Unlock()
	if len(sorted) == 0 {
		return out
	}
	sort.Float64s(sorted)
	for i, q := range qs {
		rank := int(math.Ceil(q * float64(len(sorted))))
		if rank < 1 {
			rank = 1
		}
		if rank > len(sorted) {
			rank = len(sorted)
		}
		out[i] = sorted[rank-1]
	}
	return out
}

// Metric is one named entry of a registry snapshot.
type Metric struct {
	Name  string  `json:"name"`
	Type  string  `json:"type"` // "counter", "gauge", or "histogram"
	Value float64 `json:"value"`
	// Histogram-only fields.
	Count uint64  `json:"count,omitempty"`
	Sum   float64 `json:"sum,omitempty"`
	P50   float64 `json:"p50,omitempty"`
	P95   float64 `json:"p95,omitempty"`
	P99   float64 `json:"p99,omitempty"`
}

// Collector emits computed gauges at snapshot time (breaker states, queue
// depths — values derived from live structures rather than pushed).
type Collector func(set func(name string, v float64))

// Registry is a named metric registry. A nil *Registry is the disabled
// mode: every getter returns a nil handle and Snapshot returns nil.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	collectors []Collector
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// AddCollector registers a snapshot-time gauge source. Collectors run in
// registration order; a collector-set name shadows a registered metric of
// the same name in the snapshot.
func (r *Registry) AddCollector(fn Collector) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// Snapshot returns every metric (registered and collected), sorted by name
// so the dump is deterministic. Nil on a disabled (nil) registry.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	collectors := append([]Collector(nil), r.collectors...)
	r.mu.Unlock()

	byName := make(map[string]Metric)
	for name, c := range counters {
		byName[name] = Metric{Name: name, Type: "counter", Value: float64(c.Value())}
	}
	for name, g := range gauges {
		byName[name] = Metric{Name: name, Type: "gauge", Value: g.Value()}
	}
	for name, h := range hists {
		q := h.Quantiles(0.5, 0.95, 0.99)
		byName[name] = Metric{
			Name: name, Type: "histogram",
			Count: h.Count(), Sum: h.Sum(),
			P50: q[0], P95: q[1], P99: q[2],
		}
	}
	for _, fn := range collectors {
		fn(func(name string, v float64) {
			byName[name] = Metric{Name: name, Type: "gauge", Value: v}
		})
	}
	out := make([]Metric, 0, len(byName))
	for _, m := range byName {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DumpText renders a snapshot as aligned human-readable lines, one metric
// per line, sorted by name.
func DumpText(metrics []Metric) string {
	var b strings.Builder
	for _, m := range metrics {
		switch m.Type {
		case "histogram":
			fmt.Fprintf(&b, "%-52s count=%d sum=%.6f p50=%.6f p95=%.6f p99=%.6f\n",
				m.Name, m.Count, m.Sum, m.P50, m.P95, m.P99)
		default:
			fmt.Fprintf(&b, "%-52s %g\n", m.Name, m.Value)
		}
	}
	return b.String()
}

// DumpJSON renders a snapshot as indented JSON (an array of Metric).
func DumpJSON(metrics []Metric) string {
	data, err := json.MarshalIndent(metrics, "", "  ")
	if err != nil {
		return "[]" // Metric has no unmarshalable fields; unreachable
	}
	return string(data)
}

// Key renders a labelled metric name as name{k1=v1,k2=v2}. Label order is
// the caller's; use a fixed order per call site so names stay stable.
func Key(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	var b strings.Builder
	b.Grow(len(name) + 2 + 16*len(kv))
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteByte('=')
		b.WriteString(kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}
