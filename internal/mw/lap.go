// Package mw implements the Master-Worker framework and the numerical
// optimization workload of §6.1: the record-setting Condor-G computation
// solved a large Quadratic Assignment Problem with a branch-and-bound
// algorithm whose bounding step solves Linear Assignment Problems — "over
// 540 billion Linear Assignment Problems controlled by a sophisticated
// branch and bound algorithm". This file is the LAP solver: the
// Jonker-Volgenant shortest-augmenting-path algorithm, O(n^3).
package mw

import (
	"fmt"
	"math"
)

// LAPResult is an optimal assignment: row i is assigned to column
// RowToCol[i], with the given total cost.
type LAPResult struct {
	RowToCol []int
	Cost     float64
}

// SolveLAP finds a minimum-cost perfect matching of the square cost matrix
// using shortest augmenting paths with dual variables (Jonker-Volgenant).
func SolveLAP(cost [][]float64) (LAPResult, error) {
	n := len(cost)
	if n == 0 {
		return LAPResult{}, fmt.Errorf("mw: empty cost matrix")
	}
	for i, row := range cost {
		if len(row) != n {
			return LAPResult{}, fmt.Errorf("mw: cost matrix row %d has %d entries, want %d", i, len(row), n)
		}
	}
	const inf = math.MaxFloat64 / 4
	// Duals u (rows), v (cols); matching rowOf[col] / colOf[row].
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	rowOf := make([]int, n+1) // rowOf[j] = row matched to column j; 0 = none (1-based)
	colOf := make([]int, n+1)
	c := func(i, j int) float64 { return cost[i-1][j-1] } // 1-based view

	for i := 1; i <= n; i++ {
		// Find an augmenting path from row i (classic JV/Hungarian
		// implementation with potentials).
		rowOf[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		way := make([]int, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := rowOf[j0]
			delta := inf
			j1 := -1
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := c(i0, j) - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[rowOf[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if rowOf[j0] == 0 {
				break
			}
		}
		// Augment along the path.
		for j0 != 0 {
			j1 := way[j0]
			rowOf[j0] = rowOf[j1]
			j0 = j1
		}
	}
	res := LAPResult{RowToCol: make([]int, n)}
	for j := 1; j <= n; j++ {
		if rowOf[j] > 0 {
			colOf[rowOf[j]] = j
		}
	}
	for i := 1; i <= n; i++ {
		res.RowToCol[i-1] = colOf[i] - 1
		res.Cost += cost[i-1][colOf[i]-1]
	}
	return res, nil
}

// lapBruteForce is the reference oracle for property tests (exported to the
// test file only through the package).
func lapBruteForce(cost [][]float64) float64 {
	n := len(cost)
	perm := make([]int, n)
	used := make([]bool, n)
	best := math.MaxFloat64
	var rec func(i int, acc float64)
	rec = func(i int, acc float64) {
		if acc >= best {
			return
		}
		if i == n {
			best = acc
			return
		}
		for j := 0; j < n; j++ {
			if !used[j] {
				used[j] = true
				perm[i] = j
				rec(i+1, acc+cost[i][j])
				used[j] = false
			}
		}
	}
	rec(0, 0)
	return best
}
