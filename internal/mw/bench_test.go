package mw

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func nil2ctx() context.Context { return context.Background() }

func benchMatrix(n int) [][]float64 {
	rng := rand.New(rand.NewSource(7))
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			m[i][j] = float64(rng.Intn(100))
		}
	}
	return m
}

// BenchmarkSolveLAP measures the paper's inner loop: the campaign solved
// "over 540 billion Linear Assignment Problems".
func BenchmarkSolveLAP(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64} {
		cost := benchMatrix(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := SolveLAP(cost); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkQAPSolve(b *testing.B) {
	for _, n := range []int{6, 7, 8} {
		q := &QAP{Flow: benchMatrix(n), Dist: benchMatrix(n)}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var laps int64
			for i := 0; i < b.N; i++ {
				sol, err := q.Solve()
				if err != nil {
					b.Fatal(err)
				}
				laps = sol.LAPsSolved
			}
			b.ReportMetric(float64(laps), "laps/solve")
		})
	}
}

func BenchmarkQAPBound(b *testing.B) {
	q := &QAP{Flow: benchMatrix(10), Dist: benchMatrix(10)}
	prefix := []int{3, 7}
	var laps int64
	for i := 0; i < b.N; i++ {
		if bound := q.glBound(prefix, &laps); math.IsNaN(bound) {
			b.Fatal("NaN bound")
		}
	}
}

func BenchmarkMasterFetchReport(b *testing.B) {
	m, err := NewMaster(MasterOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < b.N; i++ {
		m.AddTask(sqTask{X: i})
	}
	b.ResetTimer()
	done, err := RunWorker(nil2ctx(), m.Addr(), "bench", squareWorker)
	if err != nil || done != b.N {
		b.Fatalf("done=%d err=%v", done, err)
	}
}
