package mw

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"condorg/internal/gsi"
	"condorg/internal/wire"
)

// MasterService is the wire service name for MW masters.
const MasterService = "mw-master"

// Task is a unit of work.
type Task struct {
	ID      int             `json:"id"`
	Payload json.RawMessage `json:"payload"`
}

// TaskResult is a worker's answer.
type TaskResult struct {
	TaskID   int             `json:"task_id"`
	WorkerID string          `json:"worker_id"`
	Payload  json.RawMessage `json:"payload"`
}

// Master coordinates a pool of workers over the wire protocol — §6.1's
// Master-Worker pattern, where "each worker ... used Remote I/O services to
// communicate with the Master". Tasks are leased: a worker that dies (or is
// evicted with its GlideIn) forfeits its lease and the task is re-dispatched,
// so the computation tolerates worker churn exactly as MW did on the Grid.
type Master struct {
	srv   *wire.Server
	lease time.Duration

	mu          sync.Mutex
	queue       []Task
	outstanding map[int]*leaseRec
	done        map[int]TaskResult
	total       int
	shared      json.RawMessage // broadcast state (e.g. B&B incumbent)
	sharedRev   int
	workers     map[string]int // worker -> tasks completed
	allDone     chan struct{}
	closed      bool
}

type leaseRec struct {
	task     Task
	worker   string
	deadline time.Time
}

// MasterOptions configures a master.
type MasterOptions struct {
	// Lease is how long a worker may hold a task before it is
	// re-dispatched (default 2s; the QAP run used much longer).
	Lease  time.Duration
	Anchor *gsi.Certificate
	Clock  gsi.Clock
	Faults *wire.Faults
}

// NewMaster starts a master on a fresh loopback port.
func NewMaster(opts MasterOptions) (*Master, error) {
	if opts.Lease == 0 {
		opts.Lease = 2 * time.Second
	}
	srv, err := wire.NewServer(wire.ServerConfig{
		Name:   MasterService,
		Anchor: opts.Anchor,
		Clock:  opts.Clock,
		Faults: opts.Faults,
	})
	if err != nil {
		return nil, err
	}
	m := &Master{
		srv:         srv,
		lease:       opts.Lease,
		outstanding: make(map[int]*leaseRec),
		done:        make(map[int]TaskResult),
		workers:     make(map[string]int),
		allDone:     make(chan struct{}),
	}
	srv.Handle("mw.fetch", m.handleFetch)
	srv.Handle("mw.result", m.handleResult)
	srv.Handle("mw.shared", m.handleShared)
	return m, nil
}

// Addr returns the master's contact address.
func (m *Master) Addr() string { return m.srv.Addr() }

// Close stops the master.
func (m *Master) Close() error { return m.srv.Close() }

// AddTask enqueues work. payload is marshalled to JSON.
func (m *Master) AddTask(payload any) (int, error) {
	data, err := json.Marshal(payload)
	if err != nil {
		return 0, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, errors.New("mw: master closed")
	}
	m.total++
	id := m.total
	m.queue = append(m.queue, Task{ID: id, Payload: data})
	return id, nil
}

// SetShared replaces the broadcast state (workers see it on every fetch and
// result exchange). Used for the B&B incumbent.
func (m *Master) SetShared(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shared = data
	m.sharedRev++
	return nil
}

// Shared unmarshals the broadcast state into v; false when unset.
func (m *Master) Shared(v any) (bool, error) {
	m.mu.Lock()
	data := m.shared
	m.mu.Unlock()
	if data == nil {
		return false, nil
	}
	return true, json.Unmarshal(data, v)
}

// expireLeases requeues tasks whose workers went silent. Caller holds m.mu.
func (m *Master) expireLeasesLocked() {
	now := time.Now()
	for id, rec := range m.outstanding {
		if now.After(rec.deadline) {
			delete(m.outstanding, id)
			m.queue = append(m.queue, rec.task)
		}
	}
}

type fetchReq struct {
	WorkerID string `json:"worker_id"`
}

type fetchResp struct {
	Task    *Task           `json:"task,omitempty"`
	Shared  json.RawMessage `json:"shared,omitempty"`
	AllDone bool            `json:"all_done"`
}

func (m *Master) handleFetch(_ string, body json.RawMessage) (any, error) {
	var req fetchReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.expireLeasesLocked()
	resp := fetchResp{Shared: m.shared}
	if len(m.queue) == 0 {
		resp.AllDone = len(m.outstanding) == 0 && m.total == len(m.done)
		return resp, nil
	}
	task := m.queue[0]
	m.queue = m.queue[1:]
	m.outstanding[task.ID] = &leaseRec{task: task, worker: req.WorkerID, deadline: time.Now().Add(m.lease)}
	resp.Task = &task
	return resp, nil
}

type resultReq struct {
	Result TaskResult      `json:"result"`
	Shared json.RawMessage `json:"shared,omitempty"` // optional worker update
}

type resultResp struct {
	Shared json.RawMessage `json:"shared,omitempty"`
}

func (m *Master) handleResult(_ string, body json.RawMessage) (any, error) {
	var req resultReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	id := req.Result.TaskID
	if _, already := m.done[id]; !already {
		if _, leased := m.outstanding[id]; !leased {
			// Result for a task we re-dispatched after its lease
			// expired, or a duplicate: first result wins; this one is
			// recorded only if the task is not yet done.
			// Remove any requeued copy so it does not run again.
			for i, t := range m.queue {
				if t.ID == id {
					m.queue = append(m.queue[:i], m.queue[i+1:]...)
					break
				}
			}
		}
		delete(m.outstanding, id)
		m.done[id] = req.Result
		m.workers[req.Result.WorkerID]++
		if len(m.done) == m.total {
			close(m.allDone)
		}
	}
	if req.Shared != nil {
		// Worker-proposed shared update (e.g. a better incumbent);
		// accepted via the application's reducer on the master side is
		// modeled simply: last write wins, masters needing smarter
		// merges call SetShared from the Results loop.
		m.shared = req.Shared
		m.sharedRev++
	}
	return resultResp{Shared: m.shared}, nil
}

func (m *Master) handleShared(_ string, _ json.RawMessage) (any, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return resultResp{Shared: m.shared}, nil
}

// Wait blocks until every task has a result or ctx expires.
func (m *Master) Wait(ctx context.Context) error {
	m.mu.Lock()
	if m.total == 0 {
		m.mu.Unlock()
		return nil
	}
	ch := m.allDone
	m.mu.Unlock()
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Results returns completed results keyed by task ID.
func (m *Master) Results() map[int]TaskResult {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[int]TaskResult, len(m.done))
	for k, v := range m.done {
		out[k] = v
	}
	return out
}

// WorkerStats returns tasks completed per worker.
func (m *Master) WorkerStats() map[string]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int, len(m.workers))
	for k, v := range m.workers {
		out[k] = v
	}
	return out
}

// Progress returns (done, total).
func (m *Master) Progress() (int, int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.done), m.total
}

// WorkerFunc processes one task. shared is the broadcast state at fetch
// time (nil if unset); the returned sharedUpdate (if non-nil) is pushed
// back with the result.
type WorkerFunc func(ctx context.Context, task Task, shared json.RawMessage) (result any, sharedUpdate any, err error)

// RunWorker loops fetch→process→report against the master at addr until
// the master reports all work done or ctx is cancelled. It returns the
// number of tasks completed.
func RunWorker(ctx context.Context, addr, workerID string, fn WorkerFunc) (int, error) {
	wc := wire.Dial(addr, wire.ClientConfig{
		ServerName: MasterService,
		Timeout:    2 * time.Second,
		Retries:    2,
	})
	defer wc.Close()
	completed := 0
	for {
		if ctx.Err() != nil {
			return completed, ctx.Err()
		}
		var resp fetchResp
		if err := wc.Call("mw.fetch", fetchReq{WorkerID: workerID}, &resp); err != nil {
			return completed, fmt.Errorf("mw: fetch: %w", err)
		}
		if resp.Task == nil {
			if resp.AllDone {
				return completed, nil
			}
			// Outstanding leases elsewhere: back off briefly.
			select {
			case <-ctx.Done():
				return completed, ctx.Err()
			case <-time.After(10 * time.Millisecond):
			}
			continue
		}
		result, sharedUpdate, err := fn(ctx, *resp.Task, resp.Shared)
		if err != nil {
			// Worker-side task failure: drop the lease (it will
			// expire and be retried, possibly elsewhere).
			continue
		}
		resData, err := json.Marshal(result)
		if err != nil {
			return completed, err
		}
		req := resultReq{Result: TaskResult{TaskID: resp.Task.ID, WorkerID: workerID, Payload: resData}}
		if sharedUpdate != nil {
			if data, err := json.Marshal(sharedUpdate); err == nil {
				req.Shared = data
			}
		}
		if err := wc.Call("mw.result", req, nil); err != nil {
			return completed, fmt.Errorf("mw: report: %w", err)
		}
		completed++
	}
}
