package mw

import (
	"fmt"
	"math"
	"sync/atomic"
)

// QAP is a Quadratic Assignment Problem instance: assign n facilities to n
// locations minimizing sum_{i,j} Flow[i][j] * Dist[perm[i]][perm[j]].
type QAP struct {
	Flow [][]float64 `json:"flow"`
	Dist [][]float64 `json:"dist"`
}

// N returns the instance size.
func (q *QAP) N() int { return len(q.Flow) }

// Validate checks the instance shape.
func (q *QAP) Validate() error {
	n := len(q.Flow)
	if n == 0 || len(q.Dist) != n {
		return fmt.Errorf("mw: QAP needs square Flow and Dist of equal size")
	}
	for i := 0; i < n; i++ {
		if len(q.Flow[i]) != n || len(q.Dist[i]) != n {
			return fmt.Errorf("mw: QAP row %d malformed", i)
		}
	}
	return nil
}

// Objective evaluates a complete permutation.
func (q *QAP) Objective(perm []int) float64 {
	total := 0.0
	for i := range perm {
		for j := range perm {
			total += q.Flow[i][j] * q.Dist[perm[i]][perm[j]]
		}
	}
	return total
}

// QAPSolution is the result of a (sub)tree search.
type QAPSolution struct {
	Perm       []int   `json:"perm"`
	Cost       float64 `json:"cost"`
	NodesSeen  int64   `json:"nodes_seen"`
	LAPsSolved int64   `json:"laps_solved"`
}

// glBound computes a Gilmore-Lawler-style lower bound for the partial
// assignment prefix (facility i -> prefix[i]): the fixed-fixed interaction
// cost plus a LAP over composite costs of assigning each remaining facility
// to each remaining location. laps counts LAP solves (the paper's headline
// statistic).
func (q *QAP) glBound(prefix []int, laps *int64) float64 {
	n := q.N()
	k := len(prefix)
	usedLoc := make([]bool, n)
	for _, loc := range prefix {
		usedLoc[loc] = true
	}
	// Fixed-fixed cost.
	fixed := 0.0
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			fixed += q.Flow[i][j] * q.Dist[prefix[i]][prefix[j]]
		}
	}
	if k == n {
		return fixed
	}
	// Remaining facilities and locations.
	var remFac, remLoc []int
	for f := k; f < n; f++ {
		remFac = append(remFac, f)
	}
	for l := 0; l < n; l++ {
		if !usedLoc[l] {
			remLoc = append(remLoc, l)
		}
	}
	m := len(remFac)
	costM := make([][]float64, m)
	for a, f := range remFac {
		costM[a] = make([]float64, m)
		for b, l := range remLoc {
			// Interaction with fixed facilities.
			cc := 0.0
			for i := 0; i < k; i++ {
				cc += q.Flow[f][i]*q.Dist[l][prefix[i]] + q.Flow[i][f]*q.Dist[prefix[i]][l]
			}
			// Lower bound on interaction with other free facilities:
			// match the sorted off-diagonal flows of f against the
			// sorted off-diagonal distances of l in opposite order
			// (the classical GL inner product bound).
			cc += minDotProduct(q.flowRow(f, remFac), q.distRow(l, remLoc))
			// Self interaction.
			cc += q.Flow[f][f] * q.Dist[l][l]
			costM[a][b] = cc
		}
	}
	res, err := SolveLAP(costM)
	if err != nil {
		return fixed
	}
	atomic.AddInt64(laps, 1)
	return fixed + res.Cost
}

// flowRow returns facility f's flows to the other free facilities, sorted
// descending.
func (q *QAP) flowRow(f int, remFac []int) []float64 {
	var out []float64
	for _, g := range remFac {
		if g != f {
			out = append(out, q.Flow[f][g])
		}
	}
	sortDesc(out)
	return out
}

// distRow returns location l's distances to the other free locations,
// sorted ascending.
func (q *QAP) distRow(l int, remLoc []int) []float64 {
	var out []float64
	for _, m := range remLoc {
		if m != l {
			out = append(out, q.Dist[l][m])
		}
	}
	sortAsc(out)
	return out
}

func sortAsc(a []float64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func sortDesc(a []float64) {
	sortAsc(a)
	for i, j := 0, len(a)-1; i < j; i, j = i+1, j-1 {
		a[i], a[j] = a[j], a[i]
	}
}

// minDotProduct pairs descending a with ascending b — the minimum possible
// inner product over permutations (rearrangement inequality).
func minDotProduct(aDesc, bAsc []float64) float64 {
	n := len(aDesc)
	if len(bAsc) < n {
		n = len(bAsc)
	}
	total := 0.0
	for i := 0; i < n; i++ {
		total += aDesc[i] * bAsc[i]
	}
	return total
}

// SolveSubtree runs branch and bound below the given prefix. incumbent is
// the best known objective on entry (math.Inf(1) if none); the returned
// solution carries the best complete permutation found in this subtree (nil
// Perm when the subtree cannot beat the incumbent).
func (q *QAP) SolveSubtree(prefix []int, incumbent float64) QAPSolution {
	n := q.N()
	sol := QAPSolution{Cost: incumbent}
	var laps, nodes int64
	usedLoc := make([]bool, n)
	for _, l := range prefix {
		usedLoc[l] = true
	}
	cur := append([]int(nil), prefix...)
	var dfs func()
	dfs = func() {
		nodes++
		k := len(cur)
		if k == n {
			c := q.Objective(cur)
			if c < sol.Cost {
				sol.Cost = c
				sol.Perm = append([]int(nil), cur...)
			}
			return
		}
		if bound := q.glBound(cur, &laps); bound >= sol.Cost {
			return // prune
		}
		for l := 0; l < n; l++ {
			if usedLoc[l] {
				continue
			}
			usedLoc[l] = true
			cur = append(cur, l)
			dfs()
			cur = cur[:k]
			usedLoc[l] = false
		}
	}
	dfs()
	sol.NodesSeen = nodes
	sol.LAPsSolved = laps
	return sol
}

// Solve runs exact branch and bound from the root.
func (q *QAP) Solve() (QAPSolution, error) {
	if err := q.Validate(); err != nil {
		return QAPSolution{}, err
	}
	return q.SolveSubtree(nil, math.Inf(1)), nil
}

// RootTasks splits the search tree into per-first-location subtrees — the
// decomposition the Master hands to Workers.
func (q *QAP) RootTasks() [][]int {
	n := q.N()
	tasks := make([][]int, n)
	for l := 0; l < n; l++ {
		tasks[l] = []int{l}
	}
	return tasks
}

// qapBruteForce is the oracle for tests.
func qapBruteForce(q *QAP) float64 {
	n := q.N()
	perm := make([]int, 0, n)
	used := make([]bool, n)
	best := math.Inf(1)
	var rec func()
	rec = func() {
		if len(perm) == n {
			if c := q.Objective(perm); c < best {
				best = c
			}
			return
		}
		for l := 0; l < n; l++ {
			if !used[l] {
				used[l] = true
				perm = append(perm, l)
				rec()
				perm = perm[:len(perm)-1]
				used[l] = false
			}
		}
	}
	rec()
	return best
}
