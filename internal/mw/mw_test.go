package mw

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func randMatrix(rng *rand.Rand, n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			m[i][j] = float64(rng.Intn(20))
		}
	}
	return m
}

func TestSolveLAPKnown(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	res, err := SolveLAP(cost)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 5 { // 1 + 2 + 2
		t.Fatalf("cost = %v, want 5", res.Cost)
	}
	// Assignment is a permutation achieving the cost.
	seen := map[int]bool{}
	total := 0.0
	for i, j := range res.RowToCol {
		if seen[j] {
			t.Fatalf("column %d assigned twice", j)
		}
		seen[j] = true
		total += cost[i][j]
	}
	if total != res.Cost {
		t.Fatalf("assignment cost %v != reported %v", total, res.Cost)
	}
}

func TestSolveLAPErrors(t *testing.T) {
	if _, err := SolveLAP(nil); err == nil {
		t.Fatal("empty matrix accepted")
	}
	if _, err := SolveLAP([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged matrix accepted")
	}
}

func TestSolveLAPSingle(t *testing.T) {
	res, err := SolveLAP([][]float64{{7}})
	if err != nil || res.Cost != 7 || res.RowToCol[0] != 0 {
		t.Fatalf("1x1: %+v err=%v", res, err)
	}
}

// Property: JV matches brute force on random instances up to 7x7.
func TestQuickLAPMatchesBruteForce(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%6 + 2
		rng := rand.New(rand.NewSource(seed))
		cost := randMatrix(rng, n)
		res, err := SolveLAP(cost)
		if err != nil {
			return false
		}
		return res.Cost == lapBruteForce(cost)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQAPSolveKnownTiny(t *testing.T) {
	// 3 facilities in a line with distances 0/1/2; flows favor putting
	// the heavy pair adjacent.
	q := &QAP{
		Flow: [][]float64{
			{0, 10, 1},
			{10, 0, 1},
			{1, 1, 0},
		},
		Dist: [][]float64{
			{0, 1, 2},
			{1, 0, 1},
			{2, 1, 0},
		},
	}
	sol, err := q.Solve()
	if err != nil {
		t.Fatal(err)
	}
	want := qapBruteForce(q)
	if sol.Cost != want {
		t.Fatalf("B&B cost %v, brute force %v", sol.Cost, want)
	}
	if q.Objective(sol.Perm) != sol.Cost {
		t.Fatalf("reported perm does not achieve reported cost")
	}
	if sol.LAPsSolved == 0 {
		t.Fatal("no LAP bounds were computed")
	}
}

// Property: B&B equals brute force on random QAPs up to 6x6, and pruning
// actually happens (nodes seen < full tree for nontrivial instances).
func TestQuickQAPMatchesBruteForce(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%4 + 3 // 3..6
		rng := rand.New(rand.NewSource(seed))
		q := &QAP{Flow: randMatrix(rng, n), Dist: randMatrix(rng, n)}
		sol, err := q.Solve()
		if err != nil {
			return false
		}
		if sol.Cost != qapBruteForce(q) {
			return false
		}
		return sol.Perm == nil || q.Objective(sol.Perm) == sol.Cost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQAPValidate(t *testing.T) {
	bad := &QAP{Flow: [][]float64{{1}}, Dist: [][]float64{{1}, {2, 3}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("malformed QAP accepted")
	}
	if _, err := bad.Solve(); err == nil {
		t.Fatal("Solve of malformed QAP succeeded")
	}
}

func TestQAPSubtreeDecomposition(t *testing.T) {
	// Solving each root subtree independently and taking the min equals
	// the full solve — the Master-Worker decomposition's correctness.
	rng := rand.New(rand.NewSource(11))
	q := &QAP{Flow: randMatrix(rng, 5), Dist: randMatrix(rng, 5)}
	full, _ := q.Solve()
	best := math.Inf(1)
	for _, prefix := range q.RootTasks() {
		sol := q.SolveSubtree(prefix, math.Inf(1))
		if sol.Cost < best {
			best = sol.Cost
		}
	}
	if best != full.Cost {
		t.Fatalf("decomposed min %v != full solve %v", best, full.Cost)
	}
	// With a tight incumbent the subtree prunes to nothing.
	sol := q.SolveSubtree(q.RootTasks()[0], 0)
	if sol.Perm != nil {
		t.Fatal("subtree beat an impossible incumbent")
	}
}

// --- Master/Worker framework ---

type sqTask struct {
	X int `json:"x"`
}

type sqResult struct {
	Y int `json:"y"`
}

func squareWorker(_ context.Context, task Task, _ json.RawMessage) (any, any, error) {
	var in sqTask
	if err := json.Unmarshal(task.Payload, &in); err != nil {
		return nil, nil, err
	}
	return sqResult{Y: in.X * in.X}, nil, nil
}

func TestMasterWorkerBasic(t *testing.T) {
	m, err := NewMaster(MasterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 1; i <= 20; i++ {
		if _, err := m.AddTask(sqTask{X: i}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			RunWorker(context.Background(), m.Addr(), fmt.Sprintf("w%d", w), squareWorker)
		}(w)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Second)
	defer cancel()
	if err := m.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	results := m.Results()
	if len(results) != 20 {
		t.Fatalf("results = %d", len(results))
	}
	for id, r := range results {
		var out sqResult
		json.Unmarshal(r.Payload, &out)
		if out.Y != id*id {
			t.Fatalf("task %d -> %d", id, out.Y)
		}
	}
	// Work was spread over multiple workers.
	if len(m.WorkerStats()) < 2 {
		t.Fatalf("worker stats = %v", m.WorkerStats())
	}
}

func TestMasterLeaseRedispatch(t *testing.T) {
	m, err := NewMaster(MasterOptions{Lease: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.AddTask(sqTask{X: 3})
	// A worker that fetches and dies: lease must expire and the task be
	// re-dispatched to a healthy worker.
	dead := make(chan struct{})
	go RunWorker(context.Background(), m.Addr(), "dier", func(context.Context, Task, json.RawMessage) (any, any, error) {
		close(dead)
		select {} // never returns: simulates a crashed worker holding a lease
	})
	<-dead
	done := make(chan error, 1)
	go func() {
		_, err := RunWorker(context.Background(), m.Addr(), "healthy", squareWorker)
		done <- err
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Second)
	defer cancel()
	if err := m.Wait(ctx); err != nil {
		t.Fatal("task never completed after lease expiry")
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if stats := m.WorkerStats(); stats["healthy"] != 1 {
		t.Fatalf("stats = %v", stats)
	}
}

func TestWorkerErrorTriggersRetryElsewhere(t *testing.T) {
	m, _ := NewMaster(MasterOptions{Lease: 30 * time.Millisecond})
	defer m.Close()
	m.AddTask(sqTask{X: 2})
	attempt := 0
	var mu sync.Mutex
	_, err := RunWorker(context.Background(), m.Addr(), "flaky", func(ctx context.Context, task Task, sh json.RawMessage) (any, any, error) {
		mu.Lock()
		attempt++
		a := attempt
		mu.Unlock()
		if a == 1 {
			return nil, nil, errors.New("transient")
		}
		return squareWorker(ctx, task, sh)
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempt < 2 {
		t.Fatalf("attempts = %d", attempt)
	}
	if done, total := m.Progress(); done != 1 || total != 1 {
		t.Fatalf("progress = %d/%d", done, total)
	}
}

func TestSharedStateBroadcast(t *testing.T) {
	m, _ := NewMaster(MasterOptions{})
	defer m.Close()
	m.SetShared(map[string]float64{"incumbent": 100})
	m.AddTask(sqTask{X: 1})
	var seen float64
	RunWorker(context.Background(), m.Addr(), "w", func(_ context.Context, task Task, shared json.RawMessage) (any, any, error) {
		var s map[string]float64
		json.Unmarshal(shared, &s)
		seen = s["incumbent"]
		return sqResult{Y: 1}, map[string]float64{"incumbent": 42}, nil
	})
	if seen != 100 {
		t.Fatalf("worker saw shared=%v", seen)
	}
	var s map[string]float64
	if ok, _ := m.Shared(&s); !ok || s["incumbent"] != 42 {
		t.Fatalf("master shared after update = %v", s)
	}
}

func TestMasterWorkerSolvesQAP(t *testing.T) {
	// End-to-end §6.1 in miniature: the master decomposes the B&B tree,
	// workers solve subtrees sharing the incumbent, the global best
	// matches the sequential solve.
	rng := rand.New(rand.NewSource(5))
	q := &QAP{Flow: randMatrix(rng, 6), Dist: randMatrix(rng, 6)}
	sequential, _ := q.Solve()

	m, _ := NewMaster(MasterOptions{Lease: 5 * time.Second})
	defer m.Close()
	type qapTask struct {
		Prefix []int `json:"prefix"`
	}
	type sharedState struct {
		Incumbent float64 `json:"incumbent"`
	}
	m.SetShared(sharedState{Incumbent: math.Inf(1)})
	for _, prefix := range q.RootTasks() {
		m.AddTask(qapTask{Prefix: prefix})
	}
	worker := func(_ context.Context, task Task, shared json.RawMessage) (any, any, error) {
		var in qapTask
		if err := json.Unmarshal(task.Payload, &in); err != nil {
			return nil, nil, err
		}
		incumbent := math.Inf(1)
		var s sharedState
		if shared != nil && json.Unmarshal(shared, &s) == nil && s.Incumbent > 0 {
			incumbent = s.Incumbent
		}
		sol := q.SolveSubtree(in.Prefix, incumbent)
		var update any
		if sol.Perm != nil && sol.Cost < incumbent {
			update = sharedState{Incumbent: sol.Cost}
		}
		return sol, update, nil
	}
	var wg sync.WaitGroup
	var totalLAPs int64
	var mu sync.Mutex
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			RunWorker(context.Background(), m.Addr(), fmt.Sprintf("w%d", w), worker)
		}(w)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := m.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	best := math.Inf(1)
	for _, r := range m.Results() {
		var sol QAPSolution
		json.Unmarshal(r.Payload, &sol)
		mu.Lock()
		totalLAPs += sol.LAPsSolved
		mu.Unlock()
		if sol.Perm != nil && sol.Cost < best {
			best = sol.Cost
		}
	}
	if best != sequential.Cost {
		t.Fatalf("distributed best %v != sequential %v", best, sequential.Cost)
	}
	if totalLAPs == 0 {
		t.Fatal("no LAPs solved")
	}
}

func TestMasterClosedAddTask(t *testing.T) {
	m, _ := NewMaster(MasterOptions{})
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	if _, err := m.AddTask(sqTask{}); err == nil {
		t.Fatal("AddTask on closed master succeeded")
	}
	m.Close()
}

func TestWaitNoTasks(t *testing.T) {
	m, _ := NewMaster(MasterOptions{})
	defer m.Close()
	if err := m.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}
