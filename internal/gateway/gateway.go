// Package gateway is the HTTP front door of a multi-tenant condorg
// agent — the "grid portal" shape: a long-lived service that
// authenticates users (bearer tokens) and multiplexes them onto one
// shared agent over the ctl.v1 control protocol, each user riding an
// authenticated wire session bound to their own GSI credential so the
// agent derives job ownership from the session, never from request
// bodies. See DESIGN.md §11.
package gateway

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"condorg/internal/condorg"
	"condorg/internal/faultclass"
	"condorg/internal/gsi"
	"condorg/internal/obs"
)

// User is one authenticated principal of the gateway.
type User struct {
	// Owner is the local owner name the user's jobs run under.
	Owner string
	// Credential authenticates the gateway→agent wire session for this
	// user. When nil the gateway asserts Owner in request bodies
	// instead, which only an open-mode (trusted, single-host) agent
	// accepts.
	Credential *gsi.Credential
}

// Config configures a Gateway.
type Config struct {
	// Agent is the address of the agent's control endpoint.
	Agent string
	// Users maps bearer tokens to principals.
	Users map[string]User
	// Obs receives gateway request metrics; nil disables them.
	Obs *obs.Registry
}

// Gateway serves the HTTP API. Create one with New, then Serve (or use
// the Handler with an external http.Server) and Close.
type Gateway struct {
	cfg Config
	mux *http.ServeMux
	lis net.Listener
	srv *http.Server

	mu      sync.Mutex
	clients map[string]*condorg.ControlClient // owner -> control session
}

// New builds a gateway and binds its listener on addr (host:port;
// ":0" picks a port). Serve must be called to start accepting.
func New(addr string, cfg Config) (*Gateway, error) {
	if cfg.Agent == "" {
		return nil, errors.New("gateway: Config.Agent must name the control endpoint")
	}
	g := &Gateway{cfg: cfg, clients: make(map[string]*condorg.ControlClient)}
	g.mux = http.NewServeMux()
	g.mux.HandleFunc("POST /v1/jobs", g.wrap(g.handleSubmit))
	g.mux.HandleFunc("GET /v1/jobs", g.wrap(g.handleQueue))
	g.mux.HandleFunc("GET /v1/jobs/{id}", g.wrap(g.handleStatus))
	g.mux.HandleFunc("DELETE /v1/jobs/{id}", g.wrap(g.handleRemove))
	g.mux.HandleFunc("POST /v1/jobs/{id}/hold", g.wrap(g.handleHold))
	g.mux.HandleFunc("POST /v1/jobs/{id}/release", g.wrap(g.handleRelease))
	g.mux.HandleFunc("GET /v1/jobs/{id}/wait", g.wrap(g.handleWait))
	g.mux.HandleFunc("GET /v1/jobs/{id}/log", g.wrap(g.handleLog))
	g.mux.HandleFunc("GET /v1/jobs/{id}/stdout", g.wrap(g.handleStdout))
	g.mux.HandleFunc("GET /v1/jobs/{id}/trace", g.wrap(g.handleTrace))
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	g.lis = lis
	g.srv = &http.Server{Handler: g.mux, ReadHeaderTimeout: 5 * time.Second}
	return g, nil
}

// Serve accepts HTTP requests until Close; it always returns a non-nil
// error (http.ErrServerClosed after a clean Close).
func (g *Gateway) Serve() error { return g.srv.Serve(g.lis) }

// Addr returns the bound listen address.
func (g *Gateway) Addr() string { return g.lis.Addr().String() }

// Close stops the HTTP server and tears down every agent session.
func (g *Gateway) Close() error {
	err := g.srv.Close()
	g.mu.Lock()
	defer g.mu.Unlock()
	for owner, cli := range g.clients {
		cli.Close()
		delete(g.clients, owner)
	}
	return err
}

// client returns (dialing on first use) the user's control session.
func (g *Gateway) client(u User) *condorg.ControlClient {
	g.mu.Lock()
	defer g.mu.Unlock()
	if cli, ok := g.clients[u.Owner]; ok {
		return cli
	}
	cli := condorg.NewControlClientAuth(g.cfg.Agent, u.Credential)
	g.clients[u.Owner] = cli
	return cli
}

// Error is the JSON error body: the ctl.v1 code/class taxonomy carried
// onto HTTP.
type Error struct {
	// Code is the stable machine code (condorg.CtlCode*, or "unauthorized"
	// / "bad-request" for errors raised by the gateway itself).
	Code string `json:"code"`
	// Msg is human prose.
	Msg string `json:"msg"`
	// Class is the faultclass name, "" when unknown.
	Class string `json:"class,omitempty"`
}

// errorBody is the top-level error envelope: {"error": {...}}.
type errorBody struct {
	Error Error `json:"error"`
}

// SubmitRequest is the POST /v1/jobs body. Stdin is base64 in JSON (Go
// []byte convention); WallLimit is a Go duration string ("90s").
type SubmitRequest struct {
	// Program names a site-registered program.
	Program string `json:"program"`
	// Args are the program arguments.
	Args []string `json:"args,omitempty"`
	// Stdin is staged to the job as its standard input.
	Stdin []byte `json:"stdin,omitempty"`
	// Site pins the job to one gatekeeper address ("" lets the agent
	// match).
	Site string `json:"site,omitempty"`
	// Cpus is the requested CPU count.
	Cpus int `json:"cpus,omitempty"`
	// WallLimit bounds the job's wall-clock run time.
	WallLimit string `json:"wall_limit,omitempty"`
	// Env is extra environment for the job.
	Env map[string]string `json:"env,omitempty"`
}

// SubmitResponse is the POST /v1/jobs result.
type SubmitResponse struct {
	// ID is the agent-assigned job ID.
	ID string `json:"id"`
}

// QueueResponse is one page of GET /v1/jobs; Next, when non-empty, is
// the opaque after= cursor for the following page.
type QueueResponse struct {
	// Jobs is the page of matching jobs.
	Jobs []condorg.JobInfo `json:"jobs"`
	// Next is the pagination cursor ("" on the last page).
	Next string `json:"next,omitempty"`
}

// LogResponse is the GET /v1/jobs/{id}/log result.
type LogResponse struct {
	// Events is the job's user-log timeline.
	Events []condorg.LogEvent `json:"events"`
}

// handler is one authenticated endpoint: the resolved user is already
// authenticated and the returned value is JSON-encoded (a nil value
// with a nil error writes 204).
type handler func(u User, w http.ResponseWriter, r *http.Request) (any, error)

// wrap adds bearer authentication, error mapping, and JSON encoding
// around a handler.
func (g *Gateway) wrap(h handler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		u, ok := g.authenticate(r)
		if !ok {
			g.count("unauthorized")
			writeJSON(w, http.StatusUnauthorized, errorBody{Error: Error{
				Code: "unauthorized", Msg: "gateway: missing or unknown bearer token",
			}})
			return
		}
		v, err := h(u, w, r)
		if err != nil {
			status, body := httpError(err)
			g.count(body.Error.Code)
			writeJSON(w, status, body)
			return
		}
		g.count("ok")
		if _, done := v.(skipEncode); done {
			return
		}
		if v == nil {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		writeJSON(w, http.StatusOK, v)
	}
}

// authenticate resolves the request's bearer token.
func (g *Gateway) authenticate(r *http.Request) (User, bool) {
	tok, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	if !ok || tok == "" {
		return User{}, false
	}
	u, ok := g.cfg.Users[tok]
	return u, ok
}

// count bumps the per-outcome request counter.
func (g *Gateway) count(code string) {
	g.cfg.Obs.Counter(obs.Key("gateway_requests_total", "code", code)).Inc()
}

// httpError maps an error from the control plane onto an HTTP status
// and JSON body, preserving the stable ctl code and fault class.
func httpError(err error) (int, errorBody) {
	var ce *condorg.CtlError
	if errors.As(err, &ce) {
		status := http.StatusBadGateway
		switch ce.Code {
		case condorg.CtlCodeBadRequest:
			status = http.StatusBadRequest
		case condorg.CtlCodeNoSuchJob:
			status = http.StatusNotFound
		case condorg.CtlCodeBadState:
			status = http.StatusConflict
		case condorg.CtlCodeQuotaExceeded, condorg.CtlCodeRateLimited:
			status = http.StatusTooManyRequests
		case condorg.CtlCodeOwnerMismatch, condorg.CtlCodeForbidden:
			status = http.StatusForbidden
		case condorg.CtlCodeSubmitFailed, condorg.CtlCodeInternal,
			condorg.CtlCodeUnsupportedVersion, condorg.CtlCodeUnknownOp:
			status = http.StatusBadGateway
		}
		return status, errorBody{Error: Error{Code: ce.Code, Msg: ce.Msg, Class: ce.Class.String()}}
	}
	var be *badRequestError
	if errors.As(err, &be) {
		return http.StatusBadRequest, errorBody{Error: Error{Code: "bad-request", Msg: be.msg}}
	}
	return http.StatusBadGateway, errorBody{Error: Error{
		Code: "upstream", Msg: err.Error(), Class: faultclass.ClassOf(err).String(),
	}}
}

// badRequestError marks a request the gateway itself rejected.
type badRequestError struct{ msg string }

// Error implements error.
func (e *badRequestError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &badRequestError{msg: fmt.Sprintf(format, args...)}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (g *Gateway) handleSubmit(u User, _ http.ResponseWriter, r *http.Request) (any, error) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return nil, badRequest("gateway: bad submit body: %v", err)
	}
	var wall time.Duration
	if req.WallLimit != "" {
		var err error
		if wall, err = time.ParseDuration(req.WallLimit); err != nil {
			return nil, badRequest("gateway: bad wall_limit: %v", err)
		}
	}
	sub := condorg.CtlSubmit{
		Program:   req.Program,
		Args:      req.Args,
		Stdin:     req.Stdin,
		Site:      req.Site,
		Cpus:      req.Cpus,
		WallLimit: wall,
		Env:       req.Env,
	}
	if u.Credential == nil {
		// Trusted mode: no session identity, so the gateway asserts the
		// owner on the user's behalf.
		sub.Owner = u.Owner
	}
	id, err := g.client(u).Submit(sub)
	if err != nil {
		return nil, err
	}
	return SubmitResponse{ID: id}, nil
}

func (g *Gateway) handleQueue(u User, _ http.ResponseWriter, r *http.Request) (any, error) {
	q := r.URL.Query()
	req := condorg.CtlQueueReq{After: q.Get("after")}
	if u.Credential == nil {
		req.Owner = u.Owner
	}
	if s := q.Get("limit"); s != "" {
		if _, err := fmt.Sscanf(s, "%d", &req.Limit); err != nil {
			return nil, badRequest("gateway: bad limit %q", s)
		}
	}
	for _, name := range q["state"] {
		st, err := condorg.ParseJobState(name)
		if err != nil {
			return nil, badRequest("gateway: %v", err)
		}
		req.States = append(req.States, st)
	}
	jobs, next, err := g.client(u).QueueFiltered(req)
	if err != nil {
		return nil, err
	}
	return QueueResponse{Jobs: jobs, Next: next}, nil
}

// noSuchJob mirrors the control plane's anti-enumeration answer: a
// foreign job is indistinguishable from a nonexistent one.
func noSuchJob(id string) *condorg.CtlError {
	return &condorg.CtlError{
		Code:  condorg.CtlCodeNoSuchJob,
		Msg:   fmt.Sprintf("condorg: no such job %s", id),
		Class: faultclass.Permanent,
	}
}

// authorize gates a per-job op on the job belonging to u. With a
// per-user credential the agent already scopes every op to the wire
// session's owner; in trusted mode the gateway's control session is
// open (effectively admin), so ownership must be enforced here — by a
// status look-up — before the op runs.
func (g *Gateway) authorize(u User, id string) error {
	if u.Credential != nil {
		return nil
	}
	info, err := g.client(u).Status(id)
	if err != nil {
		return err
	}
	if info.Owner != u.Owner {
		return noSuchJob(id)
	}
	return nil
}

func (g *Gateway) handleStatus(u User, _ http.ResponseWriter, r *http.Request) (any, error) {
	id := r.PathValue("id")
	info, err := g.client(u).Status(id)
	if err != nil {
		return nil, err
	}
	if u.Credential == nil && info.Owner != u.Owner {
		return nil, noSuchJob(id)
	}
	return info, nil
}

func (g *Gateway) handleRemove(u User, _ http.ResponseWriter, r *http.Request) (any, error) {
	if err := g.authorize(u, r.PathValue("id")); err != nil {
		return nil, err
	}
	return nil, g.client(u).Remove(r.PathValue("id"))
}

func (g *Gateway) handleHold(u User, _ http.ResponseWriter, r *http.Request) (any, error) {
	var req struct {
		Reason string `json:"reason"`
	}
	if r.Body != nil && r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return nil, badRequest("gateway: bad hold body: %v", err)
		}
	}
	if err := g.authorize(u, r.PathValue("id")); err != nil {
		return nil, err
	}
	return nil, g.client(u).Hold(r.PathValue("id"), req.Reason)
}

func (g *Gateway) handleRelease(u User, _ http.ResponseWriter, r *http.Request) (any, error) {
	if err := g.authorize(u, r.PathValue("id")); err != nil {
		return nil, err
	}
	return nil, g.client(u).Release(r.PathValue("id"))
}

// maxWaitTimeout is the server-side ceiling on one long-poll round of
// GET /v1/jobs/{id}/wait. A client wanting to wait longer re-issues the
// request; without the cap one request could pin an agent connection for
// an arbitrary client-chosen duration.
const maxWaitTimeout = 5 * time.Minute

func (g *Gateway) handleWait(u User, _ http.ResponseWriter, r *http.Request) (any, error) {
	timeout := 30 * time.Second
	if s := r.URL.Query().Get("timeout"); s != "" {
		var err error
		if timeout, err = time.ParseDuration(s); err != nil {
			return nil, badRequest("gateway: bad timeout: %v", err)
		}
	}
	if timeout > maxWaitTimeout {
		timeout = maxWaitTimeout
	}
	if err := g.authorize(u, r.PathValue("id")); err != nil {
		return nil, err
	}
	// The request context propagates into the poll loop: a client that
	// hangs up frees the handler (and its agent connection) within one
	// poll round instead of waiting out the timeout.
	info, err := g.client(u).WaitCtx(r.Context(), r.PathValue("id"), timeout)
	if err != nil && !strings.Contains(err.Error(), "timed out") {
		return nil, err
	}
	return info, nil
}

func (g *Gateway) handleLog(u User, _ http.ResponseWriter, r *http.Request) (any, error) {
	if err := g.authorize(u, r.PathValue("id")); err != nil {
		return nil, err
	}
	events, err := g.client(u).Log(r.PathValue("id"))
	if err != nil {
		return nil, err
	}
	return LogResponse{Events: events}, nil
}

func (g *Gateway) handleStdout(u User, w http.ResponseWriter, r *http.Request) (any, error) {
	if err := g.authorize(u, r.PathValue("id")); err != nil {
		return nil, err
	}
	data, err := g.client(u).Stdout(r.PathValue("id"))
	if err != nil {
		return nil, err
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
	return skipEncode{}, nil
}

func (g *Gateway) handleTrace(u User, _ http.ResponseWriter, r *http.Request) (any, error) {
	if err := g.authorize(u, r.PathValue("id")); err != nil {
		return nil, err
	}
	var resp condorg.CtlTraceResp
	tl, err := g.client(u).Trace(r.PathValue("id"))
	if err != nil {
		return nil, err
	}
	resp.ID, resp.Timeline = r.PathValue("id"), tl
	return resp, nil
}

// skipEncode tells wrap the handler already wrote the response body.
type skipEncode struct{}
