package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"condorg/internal/condorg"
	"condorg/internal/gram"
	"condorg/internal/lrm"
	"condorg/internal/obs"
)

// startWorld runs one site + one open-mode agent + a gateway with two
// trusted users, returning the gateway base URL.
func startWorld(t *testing.T) string {
	t.Helper()
	rt := gram.NewFuncRuntime()
	rt.Register("ok", func(_ context.Context, _ []string, _ []byte, stdout, _ io.Writer, _ map[string]string) error {
		fmt.Fprintln(stdout, "ran")
		return nil
	})
	rt.Register("park", func(ctx context.Context, _ []string, _ []byte, _, _ io.Writer, _ map[string]string) error {
		<-ctx.Done()
		return ctx.Err()
	})
	cluster, err := lrm.NewCluster(lrm.Config{Name: "gw", Cpus: 2})
	if err != nil {
		t.Fatal(err)
	}
	site, err := gram.NewSite(gram.SiteConfig{Name: "gw", Cluster: cluster, Runtime: rt, StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(site.Close)
	agent, err := condorg.NewAgent(condorg.AgentConfig{
		StateDir: t.TempDir(),
		Selector: &condorg.RoundRobinSelector{Sites: []string{site.GatekeeperAddr()}},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(agent.Close)
	ctl, err := condorg.NewControlServer(agent)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctl.Close() })
	gw, err := New("127.0.0.1:0", Config{
		Agent: ctl.Addr(),
		Users: map[string]User{
			"tok-a": {Owner: "ann"},
			"tok-b": {Owner: "bea"},
		},
		Obs: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	go gw.Serve()
	t.Cleanup(func() { gw.Close() })
	return "http://" + gw.Addr()
}

func doReq(t *testing.T, method, url, token string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestGatewayLifecycle drives submit → wait → status → log → queue over
// HTTP and checks auth and error mapping along the way.
func TestGatewayLifecycle(t *testing.T) {
	base := startWorld(t)

	// No or unknown token → 401.
	if code := doReq(t, "GET", base+"/v1/jobs", "", nil, nil); code != http.StatusUnauthorized {
		t.Fatalf("no token: HTTP %d, want 401", code)
	}
	if code := doReq(t, "GET", base+"/v1/jobs", "bogus", nil, nil); code != http.StatusUnauthorized {
		t.Fatalf("bad token: HTTP %d, want 401", code)
	}

	var sub SubmitResponse
	if code := doReq(t, "POST", base+"/v1/jobs", "tok-a", SubmitRequest{Program: "ok"}, &sub); code != http.StatusOK || sub.ID == "" {
		t.Fatalf("submit: HTTP %d id %q", code, sub.ID)
	}
	var info condorg.JobInfo
	deadline := time.Now().Add(20 * time.Second)
	for {
		if code := doReq(t, "GET", base+"/v1/jobs/"+sub.ID+"/wait?timeout=5s", "tok-a", nil, &info); code != http.StatusOK {
			t.Fatalf("wait: HTTP %d", code)
		}
		if info.State.Terminal() || time.Now().After(deadline) {
			break
		}
	}
	if info.State != condorg.Completed {
		t.Fatalf("job finished %v, want Completed", info.State)
	}
	var logs LogResponse
	if code := doReq(t, "GET", base+"/v1/jobs/"+sub.ID+"/log", "tok-a", nil, &logs); code != http.StatusOK || len(logs.Events) == 0 {
		t.Fatalf("log: HTTP %d, %d events", code, len(logs.Events))
	}
	var q QueueResponse
	if code := doReq(t, "GET", base+"/v1/jobs", "tok-a", nil, &q); code != http.StatusOK || len(q.Jobs) != 1 {
		t.Fatalf("queue: HTTP %d, %d jobs", code, len(q.Jobs))
	}
	// Trusted-mode scoping: bea's listing is empty (the gateway asserts
	// her owner in the filter).
	if code := doReq(t, "GET", base+"/v1/jobs", "tok-b", nil, &q); code != http.StatusOK || len(q.Jobs) != 0 {
		t.Fatalf("bea queue: HTTP %d, %d jobs", code, len(q.Jobs))
	}
	// Unknown job → 404 via the ctl no-such-job code.
	if code := doReq(t, "GET", base+"/v1/jobs/gj999", "tok-a", nil, nil); code != http.StatusNotFound {
		t.Fatalf("ghost status: HTTP %d, want 404", code)
	}
	// Trusted-mode per-job enforcement: the gateway's open control
	// session could see ann's job, so the gateway itself must answer
	// bea with 404 on every per-job op — same anti-enumeration contract
	// as the authenticated path.
	for _, probe := range []struct{ method, path string }{
		{"GET", "/v1/jobs/" + sub.ID},
		{"GET", "/v1/jobs/" + sub.ID + "/wait"},
		{"GET", "/v1/jobs/" + sub.ID + "/log"},
		{"GET", "/v1/jobs/" + sub.ID + "/stdout"},
		{"GET", "/v1/jobs/" + sub.ID + "/trace"},
		{"POST", "/v1/jobs/" + sub.ID + "/hold"},
		{"POST", "/v1/jobs/" + sub.ID + "/release"},
		{"DELETE", "/v1/jobs/" + sub.ID},
	} {
		if code := doReq(t, probe.method, base+probe.path, "tok-b", nil, nil); code != http.StatusNotFound {
			t.Fatalf("bea %s %s on ann's job: HTTP %d, want 404", probe.method, probe.path, code)
		}
	}
	// And ann's own access still works after the probes.
	if code := doReq(t, "GET", base+"/v1/jobs/"+sub.ID, "tok-a", nil, &info); code != http.StatusOK {
		t.Fatalf("ann status after probes: HTTP %d", code)
	}
	// Malformed body → 400 from the gateway itself.
	req, _ := http.NewRequest("POST", base+"/v1/jobs", bytes.NewReader([]byte("{not json")))
	req.Header.Set("Authorization", "Bearer tok-a")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: HTTP %d, want 400", resp.StatusCode)
	}
}

// waitHandlerParked reports whether a handleWait frame is currently on
// some goroutine's stack (the gateway runs in-process here).
func waitHandlerParked() bool {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	return strings.Contains(string(buf[:n]), "handleWait")
}

// TestWaitObservesRequestContext pins the long-poll lifecycle: a client
// that hangs up mid-wait must free the handler goroutine promptly — it
// must not stay parked until the (possibly huge) ?timeout= elapses.
func TestWaitObservesRequestContext(t *testing.T) {
	base := startWorld(t)
	var job struct {
		ID string `json:"id"`
	}
	if code := doReq(t, "POST", base+"/v1/jobs", "tok-a", map[string]any{"program": "park"}, &job); code != http.StatusOK {
		t.Fatalf("submit: HTTP %d", code)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/v1/jobs/"+job.ID+"/wait?timeout=5m", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer tok-a")
	done := make(chan struct{})
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		close(done)
	}()

	deadline := time.Now().Add(8 * time.Second)
	for !waitHandlerParked() {
		if time.Now().After(deadline) {
			t.Fatal("wait handler never parked")
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(8 * time.Second):
		t.Fatal("client Do did not return after cancel")
	}
	// The handler goroutine itself must exit within about one poll round,
	// not linger until the 5-minute timeout.
	deadline = time.Now().Add(8 * time.Second)
	for waitHandlerParked() {
		if time.Now().After(deadline) {
			t.Fatal("handler goroutine still parked in handleWait after request cancel")
		}
		time.Sleep(25 * time.Millisecond)
	}
}
