package events

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEmptyEngine(t *testing.T) {
	g := NewEngine(1)
	if g.Step() {
		t.Fatal("Step on empty engine should report false")
	}
	g.Run() // must not hang
	if g.Now() != 0 {
		t.Fatalf("clock moved with no events: %v", g.Now())
	}
}

func TestOrdering(t *testing.T) {
	g := NewEngine(1)
	var got []int
	g.At(30*time.Second, func() { got = append(got, 3) })
	g.At(10*time.Second, func() { got = append(got, 1) })
	g.At(20*time.Second, func() { got = append(got, 2) })
	g.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if g.Now() != 30*time.Second {
		t.Fatalf("final clock %v, want 30s", g.Now())
	}
}

func TestTieBreakPreservesScheduleOrder(t *testing.T) {
	g := NewEngine(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		g.At(time.Second, func() { got = append(got, i) })
	}
	g.Run()
	if !sort.IntsAreSorted(got) {
		t.Fatalf("same-time events fired out of schedule order: %v", got)
	}
}

func TestCancel(t *testing.T) {
	g := NewEngine(1)
	fired := false
	e := g.At(time.Second, func() { fired = true })
	if !e.Cancel() {
		t.Fatal("first Cancel should report true")
	}
	if e.Cancel() {
		t.Fatal("second Cancel should report false")
	}
	g.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelFromInsideEvent(t *testing.T) {
	g := NewEngine(1)
	fired := false
	var victim *Event
	g.At(time.Second, func() { victim.Cancel() })
	victim = g.At(2*time.Second, func() { fired = true })
	g.Run()
	if fired {
		t.Fatal("event cancelled by an earlier event still fired")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	g := NewEngine(1)
	g.At(10*time.Second, func() {})
	g.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past should panic")
		}
	}()
	g.At(time.Second, func() {})
}

func TestAfterDuringEvent(t *testing.T) {
	g := NewEngine(1)
	var times []time.Duration
	g.At(time.Second, func() {
		g.After(5*time.Second, func() { times = append(times, g.Now()) })
	})
	g.Run()
	if len(times) != 1 || times[0] != 6*time.Second {
		t.Fatalf("After inside event fired at %v, want [6s]", times)
	}
}

func TestRunUntil(t *testing.T) {
	g := NewEngine(1)
	var fired []time.Duration
	for _, d := range []time.Duration{1, 5, 9, 11, 20} {
		d := d * time.Second
		g.At(d, func() { fired = append(fired, d) })
	}
	g.RunUntil(10 * time.Second)
	if len(fired) != 3 {
		t.Fatalf("fired %v, want events at 1s,5s,9s", fired)
	}
	if g.Now() != 10*time.Second {
		t.Fatalf("clock %v, want 10s", g.Now())
	}
	if g.Pending() != 2 {
		t.Fatalf("pending %d, want 2", g.Pending())
	}
	g.Run()
	if len(fired) != 5 {
		t.Fatalf("after Run, fired %d events, want 5", len(fired))
	}
}

func TestEvery(t *testing.T) {
	g := NewEngine(1)
	var ticks []int
	var cancel func()
	cancel = g.Every(time.Second, func(i int) {
		ticks = append(ticks, i)
		if i == 4 {
			cancel()
		}
	})
	g.RunUntil(time.Minute)
	if len(ticks) != 5 {
		t.Fatalf("got %d ticks, want 5 (cancel at i=4)", len(ticks))
	}
	for i, v := range ticks {
		if v != i {
			t.Fatalf("tick %d has index %d", i, v)
		}
	}
}

func TestEveryCancelBeforeFirstTick(t *testing.T) {
	g := NewEngine(1)
	n := 0
	cancel := g.Every(time.Second, func(int) { n++ })
	cancel()
	g.RunUntil(time.Minute)
	if n != 0 {
		t.Fatalf("cancelled Every still ticked %d times", n)
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []time.Duration {
		g := NewEngine(seed)
		var out []time.Duration
		var spawn func(depth int)
		spawn = func(depth int) {
			if depth > 6 {
				return
			}
			d := time.Duration(g.Rand().Intn(1000)) * time.Millisecond
			g.After(d, func() {
				out = append(out, g.Now())
				spawn(depth + 1)
				spawn(depth + 1)
			})
		}
		spawn(0)
		g.Run()
		return out
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("nondeterministic event count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic timeline at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: for any batch of schedule offsets, events fire in nondecreasing
// time order and the clock ends at the max offset.
func TestQuickMonotoneFiring(t *testing.T) {
	f := func(offsets []uint16) bool {
		g := NewEngine(7)
		var fired []time.Duration
		var max time.Duration
		for _, o := range offsets {
			d := time.Duration(o) * time.Millisecond
			if d > max {
				max = d
			}
			g.At(d, func() { fired = append(fired, g.Now()) })
		}
		g.Run()
		if len(fired) != len(offsets) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(offsets) == 0 || g.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset fires exactly the complement.
func TestQuickCancelSubset(t *testing.T) {
	f := func(n uint8, mask uint64) bool {
		g := NewEngine(3)
		count := int(n%64) + 1
		firedSet := make(map[int]bool)
		evs := make([]*Event, count)
		for i := 0; i < count; i++ {
			i := i
			evs[i] = g.At(time.Duration(i)*time.Second, func() { firedSet[i] = true })
		}
		cancelled := make(map[int]bool)
		for i := 0; i < count; i++ {
			if mask&(1<<uint(i)) != 0 {
				evs[i].Cancel()
				cancelled[i] = true
			}
		}
		g.Run()
		for i := 0; i < count; i++ {
			if firedSet[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterministic(t *testing.T) {
	a := NewEngine(99).Rand()
	b := NewEngine(99).Rand()
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed produced different random streams")
		}
	}
	if NewEngine(1).Rand().Int63() == NewEngine(2).Rand().Int63() {
		// Not strictly impossible, but with these seeds it does differ.
		t.Fatal("different seeds produced identical first draw")
	}
	_ = rand.Int // keep math/rand imported for clarity of intent
}
