// Package events provides a deterministic discrete-event simulation kernel:
// a virtual clock, a priority event queue, and cancellable timers.
//
// The kernel is the substrate for the large-scale Condor-G experiments
// (Section 6 of the paper): it lets a simulated week of grid activity on
// thousands of CPUs execute in milliseconds of wall time while remaining
// perfectly reproducible from a seed.
package events

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Event is a scheduled callback. The zero Event is invalid.
type Event struct {
	at     time.Duration // virtual time at which the event fires
	seq    uint64        // tie-breaker preserving schedule order
	fn     func()
	index  int // heap index, -1 when not queued
	dead   bool
	engine *Engine
}

// At reports the virtual time at which the event is (or was) scheduled.
func (e *Event) At() time.Duration { return e.at }

// Cancel removes the event from the queue. Cancelling an already-fired or
// already-cancelled event is a no-op. Cancel reports whether the event was
// pending.
func (e *Event) Cancel() bool {
	if e.dead || e.index < 0 {
		return false
	}
	e.dead = true
	heap.Remove(&e.engine.queue, e.index)
	return true
}

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. It is NOT safe for
// concurrent use; all event callbacks run on the goroutine that calls Run.
type Engine struct {
	now   time.Duration
	queue eventQueue
	seq   uint64
	rng   *rand.Rand
	fired uint64
}

// NewEngine returns an engine whose random source is seeded with seed, so a
// run is a pure function of its inputs.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (g *Engine) Now() time.Duration { return g.now }

// Rand returns the engine's deterministic random source.
func (g *Engine) Rand() *rand.Rand { return g.rng }

// Fired returns the number of events executed so far.
func (g *Engine) Fired() uint64 { return g.fired }

// Pending returns the number of events waiting in the queue.
func (g *Engine) Pending() int { return len(g.queue) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality.
func (g *Engine) At(t time.Duration, fn func()) *Event {
	if t < g.now {
		panic(fmt.Sprintf("events: scheduling at %v before now %v", t, g.now))
	}
	g.seq++
	e := &Event{at: t, seq: g.seq, fn: fn, engine: g, index: -1}
	heap.Push(&g.queue, e)
	return e
}

// After schedules fn to run d after the current virtual time.
func (g *Engine) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return g.At(g.now+d, fn)
}

// Every schedules fn at now+d, now+2d, ... until the returned cancel
// function is called. fn is also passed the tick index, starting at 0.
func (g *Engine) Every(d time.Duration, fn func(i int)) (cancel func()) {
	if d <= 0 {
		panic("events: Every requires a positive period")
	}
	stopped := false
	var pending *Event
	var tick func(i int)
	tick = func(i int) {
		if stopped {
			return
		}
		fn(i)
		if stopped {
			return
		}
		pending = g.After(d, func() { tick(i + 1) })
	}
	pending = g.After(d, func() { tick(0) })
	return func() {
		stopped = true
		if pending != nil {
			pending.Cancel()
		}
	}
}

// Step executes the single earliest pending event and reports whether one
// existed.
func (g *Engine) Step() bool {
	for len(g.queue) > 0 {
		e := heap.Pop(&g.queue).(*Event)
		if e.dead {
			continue
		}
		g.now = e.at
		e.dead = true
		g.fired++
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (g *Engine) Run() {
	for g.Step() {
	}
}

// RunUntil executes events with firing time <= deadline, then advances the
// clock to deadline. Events scheduled beyond the deadline remain queued.
func (g *Engine) RunUntil(deadline time.Duration) {
	for len(g.queue) > 0 {
		e := g.queue[0]
		if e.dead {
			heap.Pop(&g.queue)
			continue
		}
		if e.at > deadline {
			break
		}
		g.Step()
	}
	if g.now < deadline {
		g.now = deadline
	}
}
