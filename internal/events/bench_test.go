package events

import (
	"testing"
	"time"
)

// BenchmarkEngineThroughput measures raw event dispatch rate — the budget
// the week-long grid simulations spend.
func BenchmarkEngineThroughput(b *testing.B) {
	g := NewEngine(1)
	var tick func(t time.Duration)
	tick = func(t time.Duration) {
		g.At(t+time.Second, func() { tick(t + time.Second) })
	}
	tick(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Step()
	}
}

func BenchmarkScheduleCancel(b *testing.B) {
	g := NewEngine(1)
	for i := 0; i < b.N; i++ {
		e := g.After(time.Hour, func() {})
		e.Cancel()
	}
}

func BenchmarkDeepQueue(b *testing.B) {
	// 10k pending events: measures heap behaviour at simulation scale.
	g := NewEngine(1)
	for i := 0; i < 10_000; i++ {
		d := time.Duration(i) * time.Millisecond
		var again func()
		again = func() { g.After(10*time.Second, again) }
		g.At(d, again)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Step()
	}
}
