package journal

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"condorg/internal/faultclass"
)

// CorruptionError reports damage to a journal's history that cannot be a
// crash-torn tail: a record mid-file that fails its CRC, a record whose
// hash chain does not extend its predecessor (a splice), or a sequence gap
// against the snapshot anchor. Recovery refuses to replay past it; the
// fault class is Permanent because retrying cannot repair history.
type CorruptionError struct {
	// Path is the damaged segment file.
	Path string
	// Seq is the chain sequence at which verification failed (0 when the
	// damage precedes any chained record).
	Seq uint64
	// Offset is the byte offset of the damaged or unverifiable record.
	Offset int64
	// Reason describes the failure.
	Reason string
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("journal: corrupt segment %s at seq %d (offset %d): %s",
		e.Path, e.Seq, e.Offset, e.Reason)
}

// FaultClass marks journal corruption Permanent: no retry repairs history.
func (e *CorruptionError) FaultClass() faultclass.Class { return faultclass.Permanent }

// chainVerifier threads hash-chain state across the files of one store
// directory (snapshot anchor → rotated segments → live journal) and checks
// every chained record against it.
type chainVerifier struct {
	anchor   ChainState // chain head the snapshot was captured at
	anchored bool       // anchor is trustworthy (false for legacy snapshots)
	cur      ChainState // last chained record verified
	started  bool       // at least one chained record seen
	legacy   bool       // in unchained history; checks resume at the next chained record
}

// head returns the effective chain head after verification: the last
// verified record, or the snapshot anchor when the surviving files end
// short of it (their tail was already folded into the snapshot).
func (v *chainVerifier) head() ChainState {
	if v.anchored && v.anchor.Seq > v.cur.Seq {
		return v.anchor
	}
	return v.cur
}

// check verifies one CRC-valid record against the chain. sum is the hex
// SHA-256 of the record's framed body. A non-empty reason means mid-chain
// corruption; badSeq is the chain position it was detected at.
func (v *chainVerifier) check(rec *Record, sum string) (reason string, badSeq uint64) {
	if rec.Seq == 0 {
		// Legacy unchained record. Legitimate only as pre-chaining history:
		// once chained records exist, an unchained one means the file was
		// spliced (or written by software that must not touch this store).
		if v.started && !v.legacy {
			return "unchained record follows hash-chained history", v.cur.Seq + 1
		}
		v.legacy = true
		return "", 0
	}
	first := !v.started || v.legacy
	if first {
		switch {
		case v.started && v.legacy:
			// Chaining begins mid-history (an upgraded store): nothing to
			// verify the first chained record's prev against.
		case v.anchored && rec.Seq == v.anchor.Seq+1:
			if rec.Prev != v.anchor.Hash {
				return fmt.Sprintf("prev hash %.12s does not extend the snapshot head %.12s",
					rec.Prev, v.anchor.Hash), rec.Seq
			}
		case v.anchored && rec.Seq <= v.anchor.Seq:
			// Overlap: the snapshot already folded this prefix in. The
			// chain is verified against the anchor when it reaches it.
		case v.anchored:
			return fmt.Sprintf("chain gap: first surviving record is seq %d but the snapshot head is %d",
				rec.Seq, v.anchor.Seq), rec.Seq
		}
	} else {
		if rec.Seq != v.cur.Seq+1 {
			return fmt.Sprintf("sequence break: seq %d follows seq %d", rec.Seq, v.cur.Seq), rec.Seq
		}
		if rec.Prev != v.cur.Hash {
			return fmt.Sprintf("prev hash %.12s does not match predecessor %.12s (spliced history)",
				rec.Prev, v.cur.Hash), rec.Seq
		}
	}
	v.cur = ChainState{Seq: rec.Seq, Hash: sum}
	v.started, v.legacy = true, false
	if v.anchored && rec.Seq == v.anchor.Seq && sum != v.anchor.Hash {
		return fmt.Sprintf("record at snapshot head seq %d hashes %.12s, snapshot recorded %.12s (divergent history)",
			rec.Seq, sum, v.anchor.Hash), rec.Seq
	}
	return "", 0
}

// replayStats summarizes one verified file.
type replayStats struct {
	Records     int
	First, Last uint64 // chain seq range delivered (0 when none/unchained)
	Legacy      bool   // file contains unchained records
}

// replayVerified reads the journal at path, CRC-checking every frame and
// verifying hash-chain continuity through v (which persists across files).
// fn, when non-nil, receives each intact record. A damaged tail with no
// intact record after it is a crash-torn write and ends replay silently,
// exactly as Replay does; damage with intact records beyond it — and any
// chain violation — yields a *CorruptionError.
func replayVerified(path string, v *chainVerifier, fn func(rec Record) error) (replayStats, error) {
	var stats replayStats
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return stats, nil
	}
	if err != nil {
		return stats, fmt.Errorf("journal: replay open: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	var off int64
	for {
		bad := func(reason string) (replayStats, error) {
			// Damage. If any intact record follows it, this cannot be a
			// torn tail — a crash loses a suffix, never a middle.
			if !tailIsClean(r) {
				return stats, &CorruptionError{Path: path, Seq: v.head().Seq + 1, Offset: off, Reason: reason}
			}
			return stats, nil
		}
		var hdr [8]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return stats, nil // clean end of file
			}
			return bad("torn frame header")
		}
		size := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if size > maxFrameSize {
			return bad(fmt.Sprintf("implausible frame length %d", size))
		}
		buf := make([]byte, size)
		if _, err := io.ReadFull(r, buf); err != nil {
			return bad("torn frame payload")
		}
		if crc32.ChecksumIEEE(buf) != sum {
			return bad("frame CRC mismatch")
		}
		var rec Record
		if err := json.Unmarshal(buf, &rec); err != nil {
			return bad(fmt.Sprintf("unparseable record: %v", err))
		}
		if reason, badSeq := v.check(&rec, hashBody(buf)); reason != "" {
			return stats, &CorruptionError{Path: path, Seq: badSeq, Offset: off, Reason: reason}
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return stats, err
			}
		}
		stats.Records++
		if rec.Seq > 0 {
			if stats.First == 0 {
				stats.First = rec.Seq
			}
			stats.Last = rec.Seq
		} else {
			stats.Legacy = true
		}
		off += int64(8 + size)
	}
}

// maxFrameSize bounds one record frame; larger length headers are damage.
const maxFrameSize = 1 << 26

// tailIsClean reports whether the remaining bytes of r contain no intact
// frame — i.e. whether damage at the current position can be explained as
// a crash-torn tail. It scans every byte offset for a frame whose length
// is plausible and whose CRC verifies over a JSON-parseable record.
func tailIsClean(r *bufio.Reader) bool {
	rest, err := io.ReadAll(r)
	if err != nil {
		return true
	}
	for i := 0; i+8 <= len(rest); i++ {
		size := binary.LittleEndian.Uint32(rest[i : i+4])
		if size == 0 || size > maxFrameSize || i+8+int(size) > len(rest) {
			continue
		}
		body := rest[i+8 : i+8+int(size)]
		if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(rest[i+4:i+8]) {
			continue
		}
		var rec Record
		if json.Unmarshal(body, &rec) == nil {
			return false
		}
	}
	return true
}

// SegmentReport describes one verified journal file.
type SegmentReport struct {
	// Path is the file's absolute or dir-relative path as verified.
	Path string `json:"path"`
	// Records is how many intact records the file holds.
	Records int `json:"records"`
	// First and Last bound the chain sequences in the file (0 when the
	// file is empty or fully unchained).
	First uint64 `json:"first,omitempty"`
	Last  uint64 `json:"last,omitempty"`
	// Legacy marks files containing pre-chaining (unchained) records.
	Legacy bool `json:"legacy,omitempty"`
	// Err is the corruption found in this file, empty when intact.
	Err string `json:"err,omitempty"`
}

// DirReport is the end-to-end verification result for one store directory.
type DirReport struct {
	// Snapshot is the chain head recorded in the snapshot (zero for a
	// legacy or missing snapshot); Anchored says whether it was present.
	Snapshot ChainState `json:"snapshot"`
	Anchored bool       `json:"anchored"`
	// Keys counts entries in the snapshot.
	Keys int `json:"keys"`
	// Segments lists every journal file in replay order.
	Segments []SegmentReport `json:"segments"`
	// Head is the verified chain head across snapshot plus segments.
	Head ChainState `json:"head"`
	// Quarantined lists *.quarantine files left by an earlier corrupted
	// recovery — evidence awaiting the operator.
	Quarantined []string `json:"quarantined,omitempty"`
}

// OK reports whether the directory's entire history verified.
func (r *DirReport) OK() bool {
	for _, s := range r.Segments {
		if s.Err != "" {
			return false
		}
	}
	return len(r.Quarantined) == 0
}

// VerifyDir proves a store directory's journal history end to end: the
// snapshot's chain anchor, every rotated segment, and the live journal
// must form one contiguous hash chain. It is read-only (safe against a
// live store for audit, though records appended mid-scan may appear torn)
// and returns both a per-file report and, when the history is damaged,
// the first *CorruptionError.
func VerifyDir(dir string) (*DirReport, error) {
	rep := &DirReport{}
	snapPath := filepath.Join(dir, storeSnapshotFile)
	chain, anchored, data, err := loadSnapshotFile(snapPath)
	switch {
	case err == nil:
		rep.Snapshot, rep.Anchored, rep.Keys = chain, anchored, len(data)
	case errors.Is(err, os.ErrNotExist):
		rep.Anchored = true // a fresh store chains from genesis
	default:
		return rep, fmt.Errorf("journal: verify snapshot: %w", err)
	}
	entries, _ := os.ReadDir(dir)
	var olds []int
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), quarantineSuffix) {
			rep.Quarantined = append(rep.Quarantined, filepath.Join(dir, e.Name()))
		}
		if n, ok := oldSegmentNumber(e.Name()); ok {
			olds = append(olds, n)
		}
	}
	sort.Ints(olds)
	v := &chainVerifier{anchor: rep.Snapshot, anchored: rep.Anchored}
	var firstErr error
	for _, n := range olds {
		path := filepath.Join(dir, fmt.Sprintf("%s%d", storeOldPrefix, n))
		stats, err := replayVerified(path, v, nil)
		seg := SegmentReport{Path: path, Records: stats.Records, First: stats.First, Last: stats.Last, Legacy: stats.Legacy}
		if err != nil {
			seg.Err = err.Error()
			if firstErr == nil {
				firstErr = err
			}
		}
		rep.Segments = append(rep.Segments, seg)
		if err != nil {
			break // the chain is broken; later files cannot be verified
		}
	}
	if firstErr == nil {
		path := filepath.Join(dir, storeJournalFile)
		stats, err := replayVerified(path, v, nil)
		seg := SegmentReport{Path: path, Records: stats.Records, First: stats.First, Last: stats.Last, Legacy: stats.Legacy}
		if err != nil {
			seg.Err = err.Error()
			firstErr = err
		}
		rep.Segments = append(rep.Segments, seg)
	}
	rep.Head = v.head()
	return rep, firstErr
}
