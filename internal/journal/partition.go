package journal

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Owner-partitioned journaling: a PartitionSet shards one logical store
// across independent Store directories so that one owner's write burst
// never serializes against another's. Each partition is a complete Store
// — its own snapshot, segment rotation, and hash chain — so recovery,
// compaction, and `condorg audit verify` all stay per-partition.
//
// Owners map to partitions by FNV-1a hash; the partition count is fixed
// at first open and persisted in a meta file, so reopening with a
// different configured count cannot strand records in unreachable
// buckets.

const (
	// partitionMetaFile pins the partition count a set was created with.
	partitionMetaFile = "partitions.json"
	// partitionDirPrefix names partition directories: p0, p1, ...
	partitionDirPrefix = "p"
	// DefaultPartitions is the partition count used when a PartitionSet
	// is opened with n <= 0.
	DefaultPartitions = 16
)

// PartitionSet is a set of per-owner-bucket Stores rooted at one
// directory. It is safe for concurrent use.
type PartitionSet struct {
	dir  string
	opts StoreOptions
	n    int

	mu    sync.Mutex
	parts map[int]*Store
}

type partitionMeta struct {
	N int `json:"n"`
}

// OpenPartitionSet opens (or creates) a partition set rooted at dir with
// n buckets (n <= 0 uses DefaultPartitions). Every partition directory
// that already exists is opened — and therefore chain-verified — eagerly,
// so corruption in any bucket surfaces at open time exactly as it does
// for a single Store; buckets that have never been written are created
// lazily on first use.
func OpenPartitionSet(dir string, n int, opts StoreOptions) (*PartitionSet, error) {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, err
	}
	if n <= 0 {
		n = DefaultPartitions
	}
	metaPath := filepath.Join(dir, partitionMetaFile)
	if raw, err := os.ReadFile(metaPath); err == nil {
		var meta partitionMeta
		if err := json.Unmarshal(raw, &meta); err != nil || meta.N <= 0 {
			return nil, fmt.Errorf("journal: bad partition meta %s: %v", metaPath, err)
		}
		n = meta.N // the on-disk layout wins over the configured count
	} else {
		raw, _ := json.Marshal(partitionMeta{N: n})
		if err := os.WriteFile(metaPath, raw, 0o600); err != nil {
			return nil, err
		}
	}
	ps := &PartitionSet{dir: dir, opts: opts, n: n, parts: make(map[int]*Store)}
	for _, idx := range ps.existing() {
		if _, err := ps.open(idx); err != nil {
			ps.Close()
			return nil, err
		}
	}
	return ps, nil
}

// existing lists the partition indexes that have directories on disk,
// including buckets beyond n left behind by an older, wider layout.
func (ps *PartitionSet) existing() []int {
	entries, err := os.ReadDir(ps.dir)
	if err != nil {
		return nil
	}
	var out []int
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		rest, ok := strings.CutPrefix(e.Name(), partitionDirPrefix)
		if !ok {
			continue
		}
		if idx, err := strconv.Atoi(rest); err == nil && idx >= 0 {
			out = append(out, idx)
		}
	}
	sort.Ints(out)
	return out
}

// Partitions returns the bucket count new writes are hashed across.
func (ps *PartitionSet) Partitions() int { return ps.n }

// IndexFor returns the bucket index owner's records live in.
func (ps *PartitionSet) IndexFor(owner string) int {
	h := fnv.New32a()
	h.Write([]byte(owner))
	return int(h.Sum32() % uint32(ps.n))
}

// PartitionFor returns (opening or creating if needed) the Store backing
// owner's bucket.
func (ps *PartitionSet) PartitionFor(owner string) (*Store, error) {
	return ps.open(ps.IndexFor(owner))
}

func (ps *PartitionSet) open(idx int) (*Store, error) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if st, ok := ps.parts[idx]; ok {
		return st, nil
	}
	st, err := OpenStoreOptions(filepath.Join(ps.dir, partitionDirPrefix+strconv.Itoa(idx)), ps.opts)
	if err != nil {
		return nil, err
	}
	ps.parts[idx] = st
	return st, nil
}

// ForEach visits every record of every open partition (which, after
// OpenPartitionSet, is every partition with data on disk). Iteration
// order across partitions is by bucket index; within a partition it is
// the Store's own (unordered map) order.
func (ps *PartitionSet) ForEach(fn func(key string, raw json.RawMessage) error) error {
	ps.mu.Lock()
	idxs := make([]int, 0, len(ps.parts))
	for idx := range ps.parts {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	stores := make([]*Store, len(idxs))
	for i, idx := range idxs {
		stores[i] = ps.parts[idx]
	}
	ps.mu.Unlock()
	for _, st := range stores {
		if err := st.ForEach(fn); err != nil {
			return err
		}
	}
	return nil
}

// Close closes every open partition, returning the first error.
func (ps *PartitionSet) Close() error {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	var first error
	for idx, st := range ps.parts {
		if err := st.Close(); err != nil && first == nil {
			first = err
		}
		delete(ps.parts, idx)
	}
	return first
}

// PartitionDirs lists the partition store directories under dir (empty
// when dir is not a partition-set root) — the offline audit walks these
// the same way it walks a single queue store.
func PartitionDirs(dir string) []string {
	ps := PartitionSet{dir: dir}
	var out []string
	for _, idx := range ps.existing() {
		out = append(out, filepath.Join(dir, partitionDirPrefix+strconv.Itoa(idx)))
	}
	return out
}
