package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"condorg/internal/faultclass"
)

// readFrames splits a journal file into whole frames (header + body).
func readFrames(t *testing.T, path string) [][]byte {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var frames [][]byte
	for len(raw) >= 8 {
		size := binary.LittleEndian.Uint32(raw[0:4])
		if int(8+size) > len(raw) {
			break
		}
		frames = append(frames, raw[:8+size])
		raw = raw[8+size:]
	}
	return frames
}

func writeFrames(t *testing.T, path string, frames [][]byte) {
	t.Helper()
	var out []byte
	for _, f := range frames {
		out = append(out, f...)
	}
	if err := os.WriteFile(path, out, 0o600); err != nil {
		t.Fatal(err)
	}
}

// seedStore populates a fresh store with n puts and closes it.
func seedStore(t *testing.T, dir string, n int) {
	t.Helper()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := s.Put(fmt.Sprintf("job-%d", i), payload{N: i, S: "seeded"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyDirCleanStore(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), payload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 15; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), payload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyDir(dir)
	if err != nil {
		t.Fatalf("VerifyDir: %v", err)
	}
	if !rep.OK() || !rep.Anchored {
		t.Fatalf("report not OK/anchored: %+v", rep)
	}
	if rep.Head.Seq != 15 {
		t.Fatalf("verified head seq %d, want 15", rep.Head.Seq)
	}
	if rep.Snapshot.Seq != 10 {
		t.Fatalf("snapshot anchor seq %d, want 10", rep.Snapshot.Seq)
	}
}

// TestBitFlipMidJournal is the central tamper-evidence regression: a single
// flipped bit in a record that has intact history AFTER it cannot be a
// crash-torn tail, so recovery must refuse to open (typed, Permanent),
// quarantine the damaged segment, and keep refusing until the operator
// removes the evidence.
func TestBitFlipMidJournal(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir, 10)
	jpath := filepath.Join(dir, storeJournalFile)
	frames := readFrames(t, jpath)
	if len(frames) != 10 {
		t.Fatalf("parsed %d frames, want 10", len(frames))
	}
	frames[3][8+5] ^= 0x40 // flip one bit mid-record; 6 intact records follow
	writeFrames(t, jpath, frames)

	// The auditor sees it.
	rep, verr := VerifyDir(dir)
	var ce *CorruptionError
	if !errors.As(verr, &ce) {
		t.Fatalf("VerifyDir err = %v, want *CorruptionError", verr)
	}
	if rep.OK() {
		t.Fatal("report claims OK over a flipped bit")
	}
	if !strings.Contains(ce.Path, storeJournalFile) || ce.Seq != 4 {
		t.Fatalf("corruption located at %s seq %d, want %s seq 4", ce.Path, ce.Seq, storeJournalFile)
	}

	// Recovery refuses, classifies, and quarantines.
	_, err := OpenStore(dir)
	ce = nil
	if !errors.As(err, &ce) {
		t.Fatalf("OpenStore err = %v, want *CorruptionError", err)
	}
	if faultclass.ClassOf(err) != faultclass.Permanent {
		t.Fatalf("corruption classified %v, want Permanent", faultclass.ClassOf(err))
	}
	if _, err := os.Stat(jpath + quarantineSuffix); err != nil {
		t.Fatalf("damaged segment not quarantined: %v", err)
	}

	// A second open must refuse fast while the quarantine file remains.
	if _, err := OpenStore(dir); err == nil || !strings.Contains(err.Error(), "quarantine") {
		t.Fatalf("reopen over quarantine err = %v, want refusal naming the quarantine", err)
	}

	// Operator inspects and removes the evidence: the store opens again
	// (empty here — nothing was ever folded into a snapshot).
	if err := os.Remove(jpath + quarantineSuffix); err != nil {
		t.Fatal(err)
	}
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("open after operator cleanup: %v", err)
	}
	defer s.Close()
	if s.Len() != 0 {
		t.Fatalf("store silently recovered %d keys from quarantined history", s.Len())
	}
}

// TestBitFlipTornTail: the same bit flip in the FINAL record is
// indistinguishable from a crash-torn write, so recovery truncates it away
// silently — exactly the pre-chaining contract.
func TestBitFlipTornTail(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir, 10)
	jpath := filepath.Join(dir, storeJournalFile)
	frames := readFrames(t, jpath)
	frames[9][8+5] ^= 0x40
	writeFrames(t, jpath, frames)
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("torn tail must not refuse open: %v", err)
	}
	defer s.Close()
	if s.Len() != 9 {
		t.Fatalf("recovered %d keys, want 9 (torn record dropped)", s.Len())
	}
	if _, err := os.Stat(jpath + quarantineSuffix); !os.IsNotExist(err) {
		t.Fatal("torn tail must not be quarantined")
	}
}

// TestRecordSplice covers history rewrites that keep every frame CRC-valid:
// dropping a record (sequence gap) and rewriting a record's payload with a
// recomputed CRC (the successor's prev-hash exposes it).
func TestRecordSplice(t *testing.T) {
	t.Run("drop", func(t *testing.T) {
		dir := t.TempDir()
		seedStore(t, dir, 10)
		jpath := filepath.Join(dir, storeJournalFile)
		frames := readFrames(t, jpath)
		spliced := append(append([][]byte{}, frames[:4]...), frames[5:]...)
		writeFrames(t, jpath, spliced)
		_, err := VerifyDir(dir)
		var ce *CorruptionError
		if !errors.As(err, &ce) || !strings.Contains(ce.Reason, "sequence break") {
			t.Fatalf("dropped record not detected as sequence break: %v", err)
		}
		if _, err := OpenStore(dir); err == nil {
			t.Fatal("recovery replayed a spliced journal")
		}
	})
	t.Run("rewrite", func(t *testing.T) {
		dir := t.TempDir()
		seedStore(t, dir, 10)
		jpath := filepath.Join(dir, storeJournalFile)
		frames := readFrames(t, jpath)
		// Rewrite record 4's payload and recompute the CRC so the frame
		// itself is valid — only the hash chain can catch this.
		var rec Record
		if err := json.Unmarshal(frames[4][8:], &rec); err != nil {
			t.Fatal(err)
		}
		rec.Data, _ = json.Marshal(storeDelta{Key: "job-4", Value: json.RawMessage(`{"n":999,"s":"forged"}`)})
		body, _ := json.Marshal(rec)
		forged := make([]byte, 8+len(body))
		binary.LittleEndian.PutUint32(forged[0:4], uint32(len(body)))
		binary.LittleEndian.PutUint32(forged[4:8], crc32.ChecksumIEEE(body))
		copy(forged[8:], body)
		frames[4] = forged
		writeFrames(t, jpath, frames)
		_, err := VerifyDir(dir)
		var ce *CorruptionError
		if !errors.As(err, &ce) || !strings.Contains(ce.Reason, "spliced") {
			t.Fatalf("rewritten record not detected as splice: %v", err)
		}
		if _, err := OpenStore(dir); err == nil {
			t.Fatal("recovery replayed a forged record")
		}
	})
}

// TestChainGapAgainstSnapshot: the snapshot anchors the chain, so losing the
// journal's prefix (records the snapshot does NOT cover) is detectable even
// though every surviving frame is intact.
func TestChainGapAgainstSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), payload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil { // snapshot anchored at seq 5
		t.Fatal(err)
	}
	for i := 5; i < 8; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), payload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	jpath := filepath.Join(dir, storeJournalFile)
	frames := readFrames(t, jpath)
	writeFrames(t, jpath, frames[1:]) // drop seq 6; survivors start at 7
	_, err = VerifyDir(dir)
	var ce *CorruptionError
	if !errors.As(err, &ce) || !strings.Contains(ce.Reason, "chain gap") {
		t.Fatalf("missing prefix not detected as chain gap: %v", err)
	}
	if _, err := OpenStore(dir); err == nil {
		t.Fatal("recovery silently dropped acknowledged records")
	}
}

// TestUnchainedAfterChained: an unchained record appended to chained history
// means the file was touched by something that must not write here.
func TestUnchainedAfterChained(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir, 5)
	jpath := filepath.Join(dir, storeJournalFile)
	delta, _ := json.Marshal(storeDelta{Key: "rogue", Value: json.RawMessage(`{"n":1}`)})
	frame := frameRecord(recSet, delta, 0, "")
	f, err := os.OpenFile(jpath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(frame)
	f.Close()
	_, err = VerifyDir(dir)
	var ce *CorruptionError
	if !errors.As(err, &ce) || !strings.Contains(ce.Reason, "unchained") {
		t.Fatalf("unchained suffix not detected: %v", err)
	}
}

// TestLegacyStoreUpgrade: a pre-chaining store (bare-map snapshot, unchained
// journal) must open cleanly, start chaining new writes, and verify.
func TestLegacyStoreUpgrade(t *testing.T) {
	dir := t.TempDir()
	if err := SaveJSONAtomic(filepath.Join(dir, storeSnapshotFile),
		map[string]json.RawMessage{"old": json.RawMessage(`{"n":1}`)}); err != nil {
		t.Fatal(err)
	}
	j, err := Open(filepath.Join(dir, storeJournalFile), Options{NoChain: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(recSet, storeDelta{Key: fmt.Sprintf("legacy-%d", i),
			Value: json.RawMessage(`{"n":2}`)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("legacy store refused: %v", err)
	}
	if s.Len() != 4 {
		t.Fatalf("recovered %d keys, want 4", s.Len())
	}
	// New writes chain from genesis (nothing anchored the legacy history).
	if err := s.Put("new", payload{N: 3}); err != nil {
		t.Fatal(err)
	}
	if head := s.ChainHead(); head.Seq != 1 {
		t.Fatalf("first chained write got seq %d, want 1", head.Seq)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyDir(dir)
	if err != nil || !rep.OK() {
		t.Fatalf("upgraded store fails verification: %v (%+v)", err, rep)
	}
	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 5 {
		t.Fatalf("reopen recovered %d keys, want 5", s2.Len())
	}
}
