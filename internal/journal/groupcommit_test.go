package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestGroupCommitConcurrentAppends drives many concurrent appenders through
// the sync group-commit path: every acknowledged record must replay, in a
// consistent order, and the batching must have collapsed the fsync count
// (Appends counts records, not batches).
func TestGroupCommitConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, err := Open(path, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := j.Append("p", payload{N: w*per + i}); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := j.Appends(); got != workers*per {
		t.Fatalf("Appends() = %d, want %d", got, workers*per)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	n, err := Replay(path, func(rec Record) error {
		var p payload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		if seen[p.N] {
			return fmt.Errorf("duplicate record %d", p.N)
		}
		seen[p.N] = true
		return nil
	})
	if err != nil || n != workers*per {
		t.Fatalf("replay n=%d err=%v, want %d distinct records", n, err, workers*per)
	}
}

// TestGroupCommitTornTailRecovery is the crash-safety regression for group
// commit: a crash mid-batch tears the final record, and Replay must recover
// every previously acknowledged record while discarding the torn one — in
// both the grouped and ungrouped sync modes.
func TestGroupCommitTornTailRecovery(t *testing.T) {
	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"group", Options{Sync: true}},
		{"nogroup", Options{Sync: true, NoGroupCommit: true}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "j.log")
			j, err := Open(path, mode.opts)
			if err != nil {
				t.Fatal(err)
			}
			const acked = 7
			for i := 0; i < acked; i++ {
				if err := j.Append("p", payload{N: i, S: "acknowledged"}); err != nil {
					t.Fatal(err)
				}
			}
			head := j.ChainHead()
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			// Simulate the crash tearing the NEXT batch: frame a record the
			// way the journal would, then append only a prefix of it — the
			// leader died mid-write, after acknowledging the first seven.
			data, _ := json.Marshal(payload{N: 99, S: "torn"})
			frame := frameRecord("p", data, head.Seq+1, head.Hash)
			f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(frame[:len(frame)-3]); err != nil {
				t.Fatal(err)
			}
			f.Close()

			var got []int
			n, err := Replay(path, func(rec Record) error {
				var p payload
				if err := json.Unmarshal(rec.Data, &p); err != nil {
					return err
				}
				got = append(got, p.N)
				return nil
			})
			if err != nil || n != acked {
				t.Fatalf("replay n=%d err=%v, want %d acknowledged records", n, err, acked)
			}
			for i, v := range got {
				if v != i {
					t.Fatalf("record %d replayed as N=%d; order broken", i, v)
				}
			}
		})
	}
}

// TestStoreSyncGroupCommitConcurrent runs concurrent durable Puts and
// reopens the store: every acknowledged key must come back.
func TestStoreSyncGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStoreOptions(dir, StoreOptions{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := fmt.Sprintf("k%d-%d", w, i)
				if err := s.Put(key, payload{N: w*per + i}); err != nil {
					t.Errorf("put %s: %v", key, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStoreOptions(dir, StoreOptions{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Len(); got != workers*per {
		t.Fatalf("recovered %d keys, want %d", got, workers*per)
	}
	var p payload
	found, err := s2.Get("k3-7", &p)
	if err != nil || !found || p.N != 3*per+7 {
		t.Fatalf("k3-7: found=%v p=%+v err=%v", found, p, err)
	}
}

// TestStoreRecoversLeftoverSegments simulates a crash between rotating the
// journal aside and folding it into the snapshot: recovery must replay the
// orphaned journal.old.N segments (in order, before the live journal) and
// clean them up.
func TestStoreRecoversLeftoverSegments(t *testing.T) {
	dir := t.TempDir()
	// A snapshot that does NOT include the rotated deltas.
	if err := SaveJSONAtomic(filepath.Join(dir, "snapshot.json"),
		map[string]json.RawMessage{"base": json.RawMessage(`{"n":0}`)}); err != nil {
		t.Fatal(err)
	}
	// Two orphaned segments with conflicting writes to the same key: the
	// later segment must win. Segments continue one hash chain, exactly as
	// rotation produces them.
	var chain ChainState
	writeSegment := func(n int, deltas ...storeDelta) {
		j, err := Open(filepath.Join(dir, fmt.Sprintf("journal.old.%d", n)), Options{Chain: &chain})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range deltas {
			if err := j.Append(recSet, d); err != nil {
				t.Fatal(err)
			}
		}
		chain = j.ChainHead()
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
	writeSegment(3,
		storeDelta{Key: "a", Value: json.RawMessage(`{"n":1}`)},
		storeDelta{Key: "b", Value: json.RawMessage(`{"n":2}`)})
	writeSegment(4,
		storeDelta{Key: "a", Value: json.RawMessage(`{"n":10}`)})
	// Plus a live journal on top of both.
	j, err := Open(filepath.Join(dir, "journal.log"), Options{Chain: &chain})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(recSet, storeDelta{Key: "c", Value: json.RawMessage(`{"n":3}`)}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want := map[string]int{"base": 0, "a": 10, "b": 2, "c": 3}
	if got := s.Len(); got != len(want) {
		t.Fatalf("recovered %d keys, want %d (%v)", got, len(want), s.Keys())
	}
	for k, n := range want {
		var p payload
		found, err := s.Get(k, &p)
		if err != nil || !found || p.N != n {
			t.Fatalf("key %s: found=%v n=%d err=%v, want n=%d", k, found, p.N, err, n)
		}
	}
	// Recovery folds the orphans into a fresh snapshot and removes them.
	for _, n := range []int{3, 4} {
		if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("journal.old.%d", n))); !os.IsNotExist(err) {
			t.Fatalf("segment journal.old.%d not cleaned up (err=%v)", n, err)
		}
	}
	// And new rotations must not reuse the orphaned numbers.
	if err := s.Put("d", payload{N: 4}); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	var p payload
	if found, _ := s.Get("d", &p); !found || p.N != 4 {
		t.Fatalf("post-recovery put lost: found=%v p=%+v", found, p)
	}
}

// TestGroupWindowStillDurable exercises the optional leader linger: with a
// window configured, appends still return durable and replayable.
func TestGroupWindowStillDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, err := Open(path, Options{Sync: true, GroupWindow: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if err := j.Append("p", payload{N: w*5 + i}); err != nil {
					t.Errorf("append: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	n, err := Replay(path, func(Record) error { return nil })
	if err != nil || n != 20 {
		t.Fatalf("replay n=%d err=%v, want 20", n, err)
	}
}
