package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"
)

// StreamRecord is one replicated store delta plus its chain link: enough
// for a follower to append a byte-identical record to its own journal and
// prove, hash by hash, that it holds the primary's exact history.
type StreamRecord struct {
	Seq  uint64          `json:"seq"`
	Prev string          `json:"prev,omitempty"`
	Hash string          `json:"hash"`
	Type string          `json:"type"`
	Data json.RawMessage `json:"data"`
}

// ChainHead returns the store's current hash-chain head.
func (s *Store) ChainHead() ChainState {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.jn == nil {
		return ChainState{}
	}
	return s.jn.ChainHead()
}

// appendRingLocked records one chained delta in the replication ring.
// Caller holds s.mu. Followers further behind than the ring's base must
// re-bootstrap from a snapshot.
func (s *Store) appendRingLocked(sr StreamRecord) {
	if sr.Seq == 0 {
		return // NoChain journal: no replication
	}
	if len(s.ring) >= s.ringCap {
		drop := len(s.ring) - s.ringCap + 1
		s.ring = append(s.ring[:0], s.ring[drop:]...)
	}
	s.ring = append(s.ring, sr)
	if s.streamCh != nil {
		close(s.streamCh)
		s.streamCh = nil
	}
}

// StreamSince returns up to max deltas with chain sequence > after, plus
// the current head. reset is true when the follower has fallen behind the
// ring (or is on a divergent/newer history) and must re-bootstrap from
// SnapshotDump.
func (s *Store) StreamSince(after uint64, max int) (recs []StreamRecord, head ChainState, reset bool) {
	if max <= 0 {
		max = 256
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.jn == nil {
		return nil, ChainState{}, false
	}
	head = s.jn.ChainHead()
	if after > head.Seq {
		return nil, head, true
	}
	if after == head.Seq {
		return nil, head, false
	}
	if len(s.ring) == 0 || s.ring[0].Seq > after+1 {
		return nil, head, true
	}
	start := int(after + 1 - s.ring[0].Seq)
	end := start + max
	if end > len(s.ring) {
		end = len(s.ring)
	}
	recs = append(recs, s.ring[start:end]...)
	return recs, head, false
}

// WaitStream blocks until the chain head advances past after, the store
// closes, or d elapses — the long-poll primitive behind the journal
// stream wire op.
func (s *Store) WaitStream(after uint64, d time.Duration) {
	deadline := time.Now().Add(d)
	s.mu.Lock()
	for {
		if s.jn == nil || s.jn.ChainHead().Seq > after {
			s.mu.Unlock()
			return
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			s.mu.Unlock()
			return
		}
		if s.streamCh == nil {
			s.streamCh = make(chan struct{})
		}
		ch := s.streamCh
		s.mu.Unlock()
		t := time.NewTimer(remain)
		select {
		case <-ch:
			t.Stop()
		case <-t.C:
		}
		s.mu.Lock()
	}
}

// SnapshotDump clones the full key space and the chain head it is valid
// at, for bootstrapping a follower.
func (s *Store) SnapshotDump() (map[string]json.RawMessage, ChainState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data := make(map[string]json.RawMessage, len(s.data))
	for k, v := range s.data {
		data[k] = v
	}
	var head ChainState
	if s.jn != nil {
		head = s.jn.ChainHead()
	}
	return data, head
}

// SyncReplication enables synchronous mirroring: once a follower has
// acknowledged progress (FollowerAck), every Put/Delete additionally waits
// — after local durability — until the follower's acked sequence covers
// the new record, or wait elapses. On expiry the wait disarms (primary
// availability beats replication) until the follower acks again. wait <= 0
// uses 1s.
func (s *Store) SyncReplication(wait time.Duration) {
	if wait <= 0 {
		wait = time.Second
	}
	s.ackMu.Lock()
	s.syncRepl = true
	s.syncWait = wait
	s.ackMu.Unlock()
}

// FollowerAck records that the follower holds every record up to seq. It
// (re)arms sync replication and wakes writers blocked on the ack.
func (s *Store) FollowerAck(seq uint64) {
	s.ackMu.Lock()
	if seq > s.ackSeq {
		s.ackSeq = seq
	}
	if s.syncRepl {
		s.syncArmed = true
	}
	if s.ackCh != nil {
		close(s.ackCh)
		s.ackCh = nil
	}
	s.ackMu.Unlock()
}

// FollowerAckedSeq returns the follower's last acknowledged sequence and
// whether sync replication is currently armed.
func (s *Store) FollowerAckedSeq() (uint64, bool) {
	s.ackMu.Lock()
	defer s.ackMu.Unlock()
	return s.ackSeq, s.syncArmed
}

// waitFollower blocks an acked write until the follower has fetched the
// record at seq, sync replication disarms, or the store closes. The record
// is already locally durable; this wait only narrows the window in which a
// primary crash could strand an acknowledged mutation off the standby.
func (s *Store) waitFollower(seq uint64) {
	if seq == 0 {
		return
	}
	s.ackMu.Lock()
	if !s.syncRepl || !s.syncArmed || s.ackClosed || s.ackSeq >= seq {
		s.ackMu.Unlock()
		return
	}
	deadline := time.Now().Add(s.syncWait)
	for s.syncArmed && !s.ackClosed && s.ackSeq < seq {
		remain := time.Until(deadline)
		if remain <= 0 {
			// The follower is lagging or gone: disarm so the primary keeps
			// accepting work, and re-arm on its next ack.
			s.syncArmed = false
			s.cDisarms.Inc()
			break
		}
		if s.ackCh == nil {
			s.ackCh = make(chan struct{})
		}
		ch := s.ackCh
		s.ackMu.Unlock()
		t := time.NewTimer(remain)
		select {
		case <-ch:
			t.Stop()
		case <-t.C:
		}
		s.ackMu.Lock()
	}
	s.ackMu.Unlock()
}

// InstallSnapshot replaces the store's entire contents with a snapshot
// received from the primary: the journal and any rotated segments are
// discarded, the snapshot is written with its chain anchor, and a fresh
// journal continues from head. The follower's bootstrap path.
func (s *Store) InstallSnapshot(data map[string]json.RawMessage, head ChainState) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.jn == nil {
		return errors.New("journal: store closed")
	}
	for s.compacting {
		s.cond.Wait()
	}
	if err := s.jn.Close(); err != nil {
		return err
	}
	os.Remove(s.journalPath())
	for _, n := range s.listOldSegments() {
		os.Remove(s.oldPath(n))
	}
	s.olds = nil
	s.compactErr = nil
	if err := writeSnapshotAtomic(s.snapshotPath(), head, data); err != nil {
		return err
	}
	s.cSnapshots.Inc()
	jopts := s.journalOpts()
	jopts.Chain = &head
	jn, err := Open(s.journalPath(), jopts)
	if err != nil {
		return err
	}
	s.jn = jn
	s.data = make(map[string]json.RawMessage, len(data))
	for k, v := range data {
		s.data[k] = v
	}
	s.deltas = 0
	s.ring = nil
	if s.streamCh != nil {
		close(s.streamCh)
		s.streamCh = nil
	}
	return nil
}

// ApplyReplica appends one streamed delta to a follower store. The record
// must extend the follower's chain head exactly, and its hash must match
// what the primary computed — the follower re-frames the record from the
// same bytes, so any transport corruption or divergence is caught before
// it reaches disk. A discontinuity returns an error; the follower should
// re-bootstrap via InstallSnapshot.
func (s *Store) ApplyReplica(sr StreamRecord) error {
	// Verify the shipped hash against a local re-framing before touching
	// the journal, so a corrupt record is rejected rather than appended.
	frame := frameRecord(sr.Type, sr.Data, sr.Seq, sr.Prev)
	if sum := hashBody(frame[8:]); sum != sr.Hash {
		return fmt.Errorf("journal: replica record %d hash mismatch (got %.12s want %.12s)", sr.Seq, sum, sr.Hash)
	}
	var d storeDelta
	if err := json.Unmarshal(sr.Data, &d); err != nil {
		return fmt.Errorf("journal: replica record %d: %w", sr.Seq, err)
	}
	s.mu.Lock()
	if s.jn == nil {
		s.mu.Unlock()
		return errors.New("journal: store closed")
	}
	head := s.jn.ChainHead()
	if sr.Seq != head.Seq+1 || sr.Prev != head.Hash {
		s.mu.Unlock()
		return fmt.Errorf("journal: replica stream discontinuity: record %d/%.12s does not extend head %d/%.12s",
			sr.Seq, sr.Prev, head.Seq, head.Hash)
	}
	jn := s.jn
	seq, link, err := jn.EnqueueChained(sr.Type, sr.Data)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	if link.Hash != sr.Hash || link.Seq != sr.Seq {
		// Unreachable unless the journal and this check disagree; latch
		// loudly rather than replicate a divergent history.
		s.mu.Unlock()
		return fmt.Errorf("journal: replica record %d re-framed to a different hash", sr.Seq)
	}
	switch sr.Type {
	case recSet:
		s.data[d.Key] = d.Value
	case recDelete:
		delete(s.data, d.Key)
	}
	s.deltas++
	s.appendRingLocked(sr)
	s.maybeRotateLocked()
	s.mu.Unlock()
	return jn.Commit(seq)
}
