// Package journal provides the "stable storage" that the Condor-G paper
// leans on for fault tolerance: the Schedd's persistent job queue, the
// GridManager's recovery state, and the GRAM client-side job log are all
// journaled through this package.
//
// A Journal is an append-only log of JSON records, each protected by a
// CRC32 so a torn final write (the classic crash signature) is detected
// and discarded on replay rather than corrupting recovery. A Store is a
// crash-safe persistent map built from a snapshot file plus a journal of
// deltas; snapshot compaction runs off the writers' lock so a large
// compact never stalls concurrent Puts.
//
// # Durability contract
//
// What is guaranteed once an append call (Journal.Append, Journal.AppendRaw,
// Journal.Commit, Store.Put, Store.Delete) has returned nil depends on the
// configured mode:
//
//   - Sync (Options.Sync / StoreOptions.Sync set): the record has been
//     written AND fsynced before the call returns. It survives both a
//     process crash and a host power failure. This holds in group-commit
//     mode too — group commit changes how many records share one fsync,
//     never whether an acknowledged record was covered by one.
//
//   - Async (the default): the record has been handed to the operating
//     system (write(2) completed) before the call returns. It survives a
//     process crash but may be lost in a host crash or power failure.
//
//   - Group commit (the default append path): concurrent appenders
//     coalesce. Each caller's record is framed and sequenced immediately
//     under the journal lock; the first caller to need durability becomes
//     the commit leader and writes (and, in Sync mode, fsyncs) every
//     record enqueued so far in a single batch, while later callers wait
//     for the leader to cover their sequence number. Options.GroupWindow
//     optionally makes the leader linger to admit more followers; the
//     natural batching window (the previous batch's write+fsync time) is
//     usually enough. Options.NoGroupCommit restores the historical
//     one-write-one-fsync-per-append behavior for comparison.
//
// In every mode, a record is either replayed intact or — when the crash
// tore it — discarded along with everything after it. Records never
// replay out of order, and an unacknowledged record may or may not
// survive (the classic write-ahead-log tail ambiguity); callers that need
// exactly-once semantics pair the journal with idempotent replay, as the
// agent does with submission IDs.
package journal
