// Package journal provides the "stable storage" that the Condor-G paper
// leans on for fault tolerance: the Schedd's persistent job queue, the
// GridManager's recovery state, and the GRAM client-side job log are all
// journaled through this package.
//
// A Journal is an append-only log of JSON records, each protected by a
// CRC32 so a torn final write (the classic crash signature) is detected
// and discarded on replay rather than corrupting recovery. A Store is a
// crash-safe persistent map built from a snapshot file plus a journal of
// deltas; snapshot compaction runs off the writers' lock so a large
// compact never stalls concurrent Puts.
//
// # Durability contract
//
// What is guaranteed once an append call (Journal.Append, Journal.AppendRaw,
// Journal.Commit, Store.Put, Store.Delete) has returned nil depends on the
// configured mode:
//
//   - Sync (Options.Sync / StoreOptions.Sync set): the record has been
//     written AND fsynced before the call returns. It survives both a
//     process crash and a host power failure. This holds in group-commit
//     mode too — group commit changes how many records share one fsync,
//     never whether an acknowledged record was covered by one.
//
//   - Async (the default): the record has been handed to the operating
//     system (write(2) completed) before the call returns. It survives a
//     process crash but may be lost in a host crash or power failure.
//
//   - Group commit (the default append path): concurrent appenders
//     coalesce. Each caller's record is framed and sequenced immediately
//     under the journal lock; the first caller to need durability becomes
//     the commit leader and writes (and, in Sync mode, fsyncs) every
//     record enqueued so far in a single batch, while later callers wait
//     for the leader to cover their sequence number. Options.GroupWindow
//     optionally makes the leader linger to admit more followers; the
//     natural batching window (the previous batch's write+fsync time) is
//     usually enough. Options.NoGroupCommit restores the historical
//     one-write-one-fsync-per-append behavior for comparison.
//
// In every mode, a record is either replayed intact or — when the crash
// tore it — discarded along with everything after it. Records never
// replay out of order, and an unacknowledged record may or may not
// survive (the classic write-ahead-log tail ambiguity); callers that need
// exactly-once semantics pair the journal with idempotent replay, as the
// agent does with submission IDs.
//
// # Hash chain and corruption semantics
//
// Chained records (the Store's only write path, and any Journal opened
// without Options.NoChain) carry a sequence number and the SHA-256 of the
// previous record's framed body, making the whole history a verifiable
// hash chain anchored in the snapshot. Recovery distinguishes two kinds
// of damage:
//
//   - A torn tail — damage with no intact record after it — is the
//     expected crash signature: the tail is silently discarded, exactly
//     as in the unchained contract above.
//
//   - Mid-chain damage — a bad CRC with intact records after it, a
//     spliced or rewritten body (hash mismatch), a sequence gap, or an
//     unchained record following chained ones — is evidence, not a crash
//     artifact. Replay stops with a *CorruptionError (faultclass
//     Permanent) naming the segment, sequence, and offset; the Store
//     renames the damaged segment to *.quarantine and refuses to open —
//     including on every subsequent attempt until the operator removes
//     the quarantined file. There is no silent partial replay.
//
// The Store bounds segment size (StoreOptions.SegmentMaxRecords /
// SegmentMaxBytes), rotating the live journal and folding sealed
// segments into the snapshot in the background; the chain threads
// unbroken through rotation, and the snapshot records the chain head it
// is valid at. VerifyDir proves a store directory's entire history
// offline (`condorg audit verify`), and the chain head is what the
// hot-standby replication stream (Store.StreamSince / ApplyReplica)
// uses to guarantee a follower's copy extends the primary's history.
package journal
