package journal

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

type jobRec struct {
	ID    string `json:"id"`
	State string `json:"state"`
}

func TestStorePutGetDelete(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("job1", jobRec{ID: "job1", State: "idle"}); err != nil {
		t.Fatal(err)
	}
	var j jobRec
	found, err := s.Get("job1", &j)
	if err != nil || !found || j.State != "idle" {
		t.Fatalf("get: found=%v err=%v j=%+v", found, err, j)
	}
	if found, _ := s.Get("missing", &j); found {
		t.Fatal("missing key reported found")
	}
	if err := s.Delete("job1"); err != nil {
		t.Fatal(err)
	}
	if found, _ := s.Get("job1", &j); found {
		t.Fatal("deleted key reported found")
	}
	if err := s.Delete("job1"); err != nil {
		t.Fatal("delete of absent key should be nil")
	}
}

func TestStoreRecovery(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenStore(dir)
	s.Put("a", jobRec{ID: "a", State: "running"})
	s.Put("b", jobRec{ID: "b", State: "idle"})
	s.Put("a", jobRec{ID: "a", State: "done"})
	s.Delete("b")
	s.Close() // "crash" and reopen
	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var j jobRec
	found, _ := s2.Get("a", &j)
	if !found || j.State != "done" {
		t.Fatalf("recovered a = %+v (found=%v), want done", j, found)
	}
	if found, _ := s2.Get("b", &j); found {
		t.Fatal("deleted key b survived recovery")
	}
	if s2.Len() != 1 {
		t.Fatalf("recovered len = %d, want 1", s2.Len())
	}
}

func TestStoreRecoveryAfterCompact(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenStore(dir)
	for i := 0; i < 20; i++ {
		s.Put(fmt.Sprintf("k%d", i), i)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Put("post", 99) // a delta after the snapshot
	s.Close()
	s2, _ := OpenStore(dir)
	defer s2.Close()
	if s2.Len() != 21 {
		t.Fatalf("len after compact+recover = %d, want 21", s2.Len())
	}
	var v int
	if found, _ := s2.Get("post", &v); !found || v != 99 {
		t.Fatalf("post-compact delta lost: found=%v v=%d", found, v)
	}
}

func TestStoreAutoCompact(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenStore(dir)
	s.maxDelta = 10
	for i := 0; i < 25; i++ {
		if err := s.Put("k", i); err != nil {
			t.Fatal(err)
		}
	}
	if s.deltas >= 10 {
		t.Fatalf("auto-compact did not trigger: deltas=%d", s.deltas)
	}
	s.Close()
	s2, _ := OpenStore(dir)
	defer s2.Close()
	var v int
	if found, _ := s2.Get("k", &v); !found || v != 24 {
		t.Fatalf("after auto-compact: found=%v v=%d, want 24", found, v)
	}
}

func TestStoreForEachAndKeys(t *testing.T) {
	s, _ := OpenStore(t.TempDir())
	defer s.Close()
	for i := 0; i < 5; i++ {
		s.Put(fmt.Sprintf("k%d", i), i)
	}
	if got := len(s.Keys()); got != 5 {
		t.Fatalf("keys = %d, want 5", got)
	}
	count := 0
	s.ForEach(func(string, json.RawMessage) error { count++; return nil })
	if count != 5 {
		t.Fatalf("foreach visited %d, want 5", count)
	}
}

func TestStoreClosedOperationsFail(t *testing.T) {
	s, _ := OpenStore(t.TempDir())
	s.Close()
	if err := s.Put("k", 1); err == nil {
		t.Fatal("Put on closed store should fail")
	}
}

// Property: a store recovered after arbitrary put/delete interleavings
// equals the in-memory model.
func TestQuickStoreModelEquivalence(t *testing.T) {
	f := func(ops []uint8) bool {
		dir := t.TempDir()
		s, err := OpenStore(dir)
		if err != nil {
			return false
		}
		model := map[string]int{}
		for i, op := range ops {
			key := fmt.Sprintf("k%d", op%8)
			if op%3 == 0 {
				s.Delete(key)
				delete(model, key)
			} else {
				s.Put(key, i)
				model[key] = i
			}
		}
		s.Close()
		s2, err := OpenStore(dir)
		if err != nil {
			return false
		}
		defer s2.Close()
		if s2.Len() != len(model) {
			return false
		}
		for k, want := range model {
			var got int
			found, err := s2.Get(k, &got)
			if err != nil || !found || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestStoreConcurrentAccess: the store is shared by the Scheduler's
// goroutines; concurrent puts/gets/deletes must be safe and linearizable
// enough that recovery sees a consistent final state.
func TestStoreConcurrentAccess(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("g%d", g)
				if err := s.Put(key, i); err != nil {
					t.Error(err)
					return
				}
				var v int
				if found, err := s.Get(key, &v); err != nil || !found {
					t.Errorf("get %s: found=%v err=%v", key, found, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	s.Close()
	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 8 {
		t.Fatalf("recovered %d keys, want 8", s2.Len())
	}
	for g := 0; g < 8; g++ {
		var v int
		found, err := s2.Get(fmt.Sprintf("g%d", g), &v)
		if err != nil || !found || v != 49 {
			t.Fatalf("g%d: found=%v v=%d err=%v", g, found, v, err)
		}
	}
}
