package journal

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"condorg/internal/obs"
)

// Store file layout inside the directory.
const (
	storeSnapshotFile = "snapshot.json"
	storeJournalFile  = "journal.log"
	storeOldPrefix    = "journal.old."
	quarantineSuffix  = ".quarantine"
)

// Store is a crash-safe persistent map built from a snapshot file plus a
// journal of deltas — the shape of the Schedd job queue ("all relevant state
// for each submitted job is stored persistently in the scheduler's job
// queue", §4.2). Keys are strings; values are JSON documents.
//
// Writers only ever pay for framing their own delta: the durability wait
// happens outside the store lock (so concurrent Puts group-commit), and
// compaction rotates the delta journal aside and folds it into the
// snapshot in the background instead of stalling the queue.
type Store struct {
	mu       sync.Mutex
	cond     *sync.Cond // compaction state changes
	dir      string
	opts     StoreOptions
	jn       *Journal
	data     map[string]json.RawMessage
	deltas   int
	maxDelta int   // rotate + compact automatically after this many deltas
	maxBytes int64 // ... or once the live segment reaches this many bytes

	olds       []int // rotated journal segments awaiting the compactor
	oldSeq     int   // next rotation segment number
	compacting bool  // a background compactor goroutine is running
	compactErr error // latched background compaction failure

	// Replication tap (see stream.go): a bounded ring of recent chained
	// deltas a follower tails, plus the follower-ack state that sync
	// replication blocks acked writers on.
	ring     []StreamRecord
	ringCap  int
	streamCh chan struct{} // closed+renewed whenever the ring grows

	ackMu      sync.Mutex
	ackSeq     uint64        // highest chain seq the follower acknowledged
	ackCh      chan struct{} // closed+renewed on each ack
	syncRepl   bool          // sync replication enabled (SyncReplication called)
	syncArmed  bool          // a follower is current enough to wait on
	syncWait   time.Duration // how long an acked write waits for the follower
	ackClosed  bool          // store closed: release all waiters
	cDisarms   *obs.Counter  // journal_sync_repl_disarms_total
	cRotations *obs.Counter  // journal_segments_rotated_total
	cSnapshots *obs.Counter  // journal_snapshots_total
}

// StoreOptions configures the store's delta journal; see Options and the
// package documentation for the durability contract.
type StoreOptions struct {
	// Sync makes Put/Delete durable (fsynced) before they return.
	Sync bool
	// GroupWindow is the optional commit-leader linger; see Options.
	GroupWindow time.Duration
	// NoGroupCommit restores one write+fsync per delta; see Options.
	NoGroupCommit bool
	// Obs, when non-nil, instruments the delta journal; see Options.Obs.
	Obs *obs.Registry
	// SegmentMaxRecords bounds the live journal segment by delta count
	// before it is rotated aside and folded into the snapshot in the
	// background (default 1000).
	SegmentMaxRecords int
	// SegmentMaxBytes additionally bounds the live segment by size
	// (default 8 MiB), so replay cost after a crash stays bounded even
	// when individual records are large.
	SegmentMaxBytes int64
	// StreamRing bounds the in-memory replication ring a follower tails
	// (default 4096 records). A follower that falls further behind is
	// told to re-bootstrap from a snapshot.
	StreamRing int
}

type storeDelta struct {
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value,omitempty"` // nil means delete
}

const (
	recSet    = "set"
	recDelete = "del"
)

// OpenStore opens (or recovers) a store rooted at dir with the default
// (async) journaling options.
func OpenStore(dir string) (*Store, error) {
	return OpenStoreOptions(dir, StoreOptions{})
}

// OpenStoreOptions opens (or recovers) a store rooted at dir. Recovery
// loads the snapshot and replays any rotated segments plus the live delta
// journal, verifying the hash chain end to end: a torn tail is truncated
// away (a crash loses only the suffix that was never acknowledged), but
// mid-chain corruption — damage with intact history after it, a spliced
// record, a sequence gap — quarantines the damaged segment and refuses to
// open, returning a *CorruptionError (faultclass Permanent).
func OpenStoreOptions(dir string, opts StoreOptions) (*Store, error) {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, err
	}
	s := &Store{
		dir:      dir,
		opts:     opts,
		data:     make(map[string]json.RawMessage),
		maxDelta: 1000,
		maxBytes: 8 << 20,
		ringCap:  4096,
	}
	if opts.SegmentMaxRecords > 0 {
		s.maxDelta = opts.SegmentMaxRecords
	}
	if opts.SegmentMaxBytes > 0 {
		s.maxBytes = opts.SegmentMaxBytes
	}
	if opts.StreamRing > 0 {
		s.ringCap = opts.StreamRing
	}
	s.cDisarms = opts.Obs.Counter("journal_sync_repl_disarms_total")
	s.cRotations = opts.Obs.Counter("journal_segments_rotated_total")
	s.cSnapshots = opts.Obs.Counter("journal_snapshots_total")
	s.cond = sync.NewCond(&s.mu)
	// A quarantined segment is evidence from an earlier corrupted recovery.
	// Opening over it would silently accept whatever survived; refuse until
	// the operator has inspected and removed it (see `condorg audit verify`).
	if q := quarantinedFiles(dir); len(q) > 0 {
		return nil, &CorruptionError{Path: q[0],
			Reason: "quarantined segment from an earlier corrupted recovery is still present; inspect and remove it before reopening"}
	}
	chain, anchored, snap, err := loadSnapshotFile(s.snapshotPath())
	switch {
	case err == nil:
		s.data = snap
		if s.data == nil {
			s.data = make(map[string]json.RawMessage)
		}
	case errors.Is(err, os.ErrNotExist):
		anchored = true // fresh store: the chain starts at genesis
	default:
		return nil, fmt.Errorf("journal: load snapshot: %w", err)
	}
	apply := func(rec Record) error {
		var d storeDelta
		if err := json.Unmarshal(rec.Data, &d); err != nil {
			return err
		}
		switch rec.Type {
		case recSet:
			s.data[d.Key] = d.Value
		case recDelete:
			delete(s.data, d.Key)
		}
		return nil
	}
	verifier := &chainVerifier{anchor: chain, anchored: anchored}
	verifyStart := time.Now()
	// Rotated segments left by a compaction the crash interrupted: they
	// hold deltas the snapshot may or may not include, so replay them (in
	// rotation order, before the live journal). Replaying a delta the
	// snapshot already folded in is a no-op.
	olds := s.listOldSegments()
	for _, n := range olds {
		if _, err := replayVerified(s.oldPath(n), verifier, apply); err != nil {
			return nil, s.quarantineOnCorruption(err)
		}
	}
	stats, err := replayVerified(s.journalPath(), verifier, apply)
	if err != nil {
		return nil, s.quarantineOnCorruption(err)
	}
	opts.Obs.Histogram("journal_chain_verify_seconds").Observe(time.Since(verifyStart).Seconds())
	s.deltas = stats.Records
	head := verifier.head()
	jopts := s.journalOpts()
	jopts.Chain = &head
	jn, err := Open(s.journalPath(), jopts)
	if err != nil {
		return nil, err
	}
	s.jn = jn
	if len(olds) > 0 {
		// Finish the interrupted compaction now so segments don't pile up.
		if err := writeSnapshotAtomic(s.snapshotPath(), head, s.data); err != nil {
			jn.Close()
			return nil, fmt.Errorf("journal: fold rotated segments: %w", err)
		}
		s.cSnapshots.Inc()
		for _, n := range olds {
			os.Remove(s.oldPath(n))
		}
		syncDir(s.dir)
	}
	return s, nil
}

// quarantineOnCorruption renames the segment a *CorruptionError points at
// to <name>.quarantine so the evidence survives and subsequent opens
// refuse fast, then returns err unchanged.
func (s *Store) quarantineOnCorruption(err error) error {
	var ce *CorruptionError
	if !errors.As(err, &ce) || ce.Path == "" {
		return err
	}
	if renameErr := os.Rename(ce.Path, ce.Path+quarantineSuffix); renameErr == nil {
		syncDir(s.dir)
		s.opts.Obs.Counter("journal_quarantines_total").Inc()
	}
	return err
}

// quarantinedFiles lists *.quarantine files in dir.
func quarantinedFiles(dir string) []string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), quarantineSuffix) {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	return out
}

func (s *Store) snapshotPath() string { return filepath.Join(s.dir, storeSnapshotFile) }
func (s *Store) journalPath() string  { return filepath.Join(s.dir, storeJournalFile) }
func (s *Store) oldPath(n int) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%d", storeOldPrefix, n))
}

func (s *Store) journalOpts() Options {
	return Options{
		Sync:          s.opts.Sync,
		GroupWindow:   s.opts.GroupWindow,
		NoGroupCommit: s.opts.NoGroupCommit,
		Obs:           s.opts.Obs,
	}
}

// oldSegmentNumber parses "journal.old.N" names, rejecting quarantined or
// otherwise decorated files.
func oldSegmentNumber(name string) (int, bool) {
	rest, ok := strings.CutPrefix(name, storeOldPrefix)
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil {
		return 0, false
	}
	return n, true
}

// listOldSegments returns rotated segment numbers in rotation order and
// advances oldSeq past them.
func (s *Store) listOldSegments() []int {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var olds []int
	for _, e := range entries {
		n, ok := oldSegmentNumber(e.Name())
		if !ok {
			continue
		}
		olds = append(olds, n)
		if n >= s.oldSeq {
			s.oldSeq = n + 1
		}
	}
	sort.Ints(olds)
	return olds
}

// storeSnapshotV2 is the on-disk snapshot wrapper: format version, the
// chain head the data was captured at, and the folded key space. Legacy
// snapshots are a bare JSON object of keys (no chain anchor).
type storeSnapshotV2 struct {
	V     int                        `json:"v"`
	Chain ChainState                 `json:"chain"`
	Data  map[string]json.RawMessage `json:"data"`
}

// loadSnapshotFile reads a snapshot in either format. anchored reports
// whether the file carried a chain anchor (v2); legacy snapshots return
// a zero chain with anchored false, which relaxes chain verification to
// whatever the journal files themselves can prove.
func loadSnapshotFile(path string) (chain ChainState, anchored bool, data map[string]json.RawMessage, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return ChainState{}, false, nil, err
	}
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(raw, &probe); err != nil {
		return ChainState{}, false, nil, fmt.Errorf("snapshot does not parse: %w", err)
	}
	if string(probe["v"]) == "2" && probe["data"] != nil {
		var snap storeSnapshotV2
		if err := json.Unmarshal(raw, &snap); err != nil {
			return ChainState{}, false, nil, fmt.Errorf("v2 snapshot does not parse: %w", err)
		}
		return snap.Chain, true, snap.Data, nil
	}
	return ChainState{}, false, probe, nil
}

// writeSnapshotAtomic streams a v2 snapshot to a temp file entry by entry
// (never materializing one giant JSON blob — a 1M-job fold would otherwise
// double its memory), fsyncs, renames into place, and fsyncs the directory.
func writeSnapshotAtomic(path string, chain ChainState, data map[string]json.RawMessage) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snapshot-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	w := bufio.NewWriterSize(tmp, 1<<20)
	head, err := json.Marshal(chain)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(w, `{"v":2,"chain":%s,"data":{`, head)
	first := true
	for k, v := range data {
		if !first {
			w.WriteByte(',')
		}
		first = false
		kb, err := json.Marshal(k)
		if err != nil {
			return fail(err)
		}
		w.Write(kb)
		w.WriteByte(':')
		if len(v) == 0 {
			v = json.RawMessage("null")
		}
		if _, err := w.Write(v); err != nil {
			return fail(err)
		}
	}
	if _, err := w.WriteString("}}"); err != nil {
		return fail(err)
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// Put stores v under key. With Sync journaling the call returns once the
// delta is fsynced; concurrent writers share fsyncs through group commit.
func (s *Store) Put(key string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	delta, err := json.Marshal(storeDelta{Key: key, Value: raw})
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.jn == nil {
		s.mu.Unlock()
		return errors.New("journal: store closed")
	}
	jn := s.jn
	seq, link, err := jn.EnqueueChained(recSet, delta)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	s.data[key] = raw
	s.deltas++
	s.appendRingLocked(StreamRecord{Seq: link.Seq, Prev: link.Prev, Hash: link.Hash, Type: recSet, Data: delta})
	s.maybeRotateLocked()
	s.mu.Unlock()
	if err := jn.Commit(seq); err != nil {
		return err
	}
	s.waitFollower(link.Seq)
	return nil
}

// Delete removes key.
func (s *Store) Delete(key string) error {
	delta, err := json.Marshal(storeDelta{Key: key})
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.jn == nil {
		s.mu.Unlock()
		return errors.New("journal: store closed")
	}
	if _, ok := s.data[key]; !ok {
		s.mu.Unlock()
		return nil
	}
	jn := s.jn
	seq, link, err := jn.EnqueueChained(recDelete, delta)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	delete(s.data, key)
	s.deltas++
	s.appendRingLocked(StreamRecord{Seq: link.Seq, Prev: link.Prev, Hash: link.Hash, Type: recDelete, Data: delta})
	s.maybeRotateLocked()
	s.mu.Unlock()
	if err := jn.Commit(seq); err != nil {
		return err
	}
	s.waitFollower(link.Seq)
	return nil
}

// Get unmarshals the value at key into v; found is false when absent.
func (s *Store) Get(key string, v any) (found bool, err error) {
	s.mu.Lock()
	raw, ok := s.data[key]
	s.mu.Unlock()
	if !ok {
		return false, nil
	}
	return true, json.Unmarshal(raw, v)
}

// Keys returns all keys (unordered).
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.data))
	for k := range s.data {
		out = append(out, k)
	}
	return out
}

// Len returns the number of stored keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.data)
}

// ForEach calls fn with each key and raw value.
func (s *Store) ForEach(fn func(key string, raw json.RawMessage) error) error {
	s.mu.Lock()
	snapshot := make(map[string]json.RawMessage, len(s.data))
	for k, v := range s.data {
		snapshot[k] = v
	}
	s.mu.Unlock()
	for k, v := range snapshot {
		if err := fn(k, v); err != nil {
			return err
		}
	}
	return nil
}

// Compact synchronously folds the journal into the snapshot: it rotates
// the live journal and waits for the background compactor to finish.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.jn == nil {
		return errors.New("journal: store closed")
	}
	if err := s.rotateLocked(); err != nil {
		return err
	}
	for s.compacting {
		s.cond.Wait()
	}
	return s.compactErr
}

func (s *Store) maybeRotateLocked() {
	if s.deltas < s.maxDelta && s.jn.Size() < s.maxBytes {
		return
	}
	_ = s.rotateLocked() // a failed rotation latches compactErr; writers keep going
}

// rotateLocked moves the live journal aside as a numbered segment, opens a
// fresh one, and kicks the background compactor. The heavy part of a
// compact — marshalling and writing the snapshot — happens off this lock,
// so a large compact never stalls concurrent Puts.
func (s *Store) rotateLocked() error {
	if s.compactErr != nil {
		return s.compactErr
	}
	// The fresh segment continues the chain exactly where this one ends,
	// so cross-segment continuity is verifiable at recovery.
	head := s.jn.ChainHead()
	jopts := s.journalOpts()
	jopts.Chain = &head
	if err := s.jn.Close(); err != nil {
		// The tail of the journal could not be made durable; renaming it
		// aside would launder the loss into the snapshot. Reopen in place
		// and latch the failure.
		s.compactErr = err
		if jn, oerr := Open(s.journalPath(), jopts); oerr == nil {
			s.jn = jn
		}
		return err
	}
	n := s.oldSeq
	s.oldSeq++
	if err := os.Rename(s.journalPath(), s.oldPath(n)); err != nil {
		s.compactErr = err
		if jn, oerr := Open(s.journalPath(), jopts); oerr == nil {
			s.jn = jn
		}
		return err
	}
	// Make the rename durable: without the directory fsync a crash could
	// forget the segment (and with it every delta it holds) even though
	// each record inside was fsynced.
	if err := syncDir(s.dir); err != nil {
		s.compactErr = err
		return err
	}
	jn, err := Open(s.journalPath(), jopts)
	if err != nil {
		s.compactErr = err
		return err
	}
	s.jn = jn
	s.deltas = 0
	s.olds = append(s.olds, n)
	s.cRotations.Inc()
	if !s.compacting {
		s.compacting = true
		go s.compactor()
	}
	return nil
}

// compactor folds rotated segments into the snapshot until none remain.
// It clones the map under the lock but marshals and writes outside it.
func (s *Store) compactor() {
	for {
		s.mu.Lock()
		if len(s.olds) == 0 || s.compactErr != nil {
			s.compacting = false
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		olds := append([]int(nil), s.olds...)
		snap := make(map[string]json.RawMessage, len(s.data))
		for k, v := range s.data {
			snap[k] = v
		}
		// The chain head at clone time anchors the snapshot: every delta it
		// folds in is ≤ head, so recovery can verify the surviving segments
		// extend (or are subsumed by) exactly this state.
		head := s.jn.ChainHead()
		s.mu.Unlock()
		err := writeSnapshotAtomic(s.snapshotPath(), head, snap)
		s.cSnapshots.Inc()
		s.mu.Lock()
		if err != nil {
			s.compactErr = err
			s.compacting = false
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		// The snapshot covered every delta enqueued before the clone, so
		// the rotated segments it subsumes can go.
		s.olds = s.olds[len(olds):]
		s.mu.Unlock()
		for _, n := range olds {
			os.Remove(s.oldPath(n))
		}
	}
}

// Close flushes and closes the store, waiting out any in-flight compaction.
// Blocked stream long-polls and sync-replication waiters are released.
func (s *Store) Close() error {
	s.ackMu.Lock()
	s.ackClosed = true
	if s.ackCh != nil {
		close(s.ackCh)
		s.ackCh = nil
	}
	s.ackMu.Unlock()
	s.mu.Lock()
	if s.streamCh != nil {
		close(s.streamCh)
		s.streamCh = nil
	}
	if s.jn == nil {
		s.mu.Unlock()
		return nil
	}
	for s.compacting {
		s.cond.Wait()
	}
	jn := s.jn
	s.jn = nil
	s.mu.Unlock()
	return jn.Close()
}
