package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
)

// Store is a crash-safe persistent map built from a snapshot file plus a
// journal of deltas — the shape of the Schedd job queue ("all relevant state
// for each submitted job is stored persistently in the scheduler's job
// queue", §4.2). Keys are strings; values are JSON documents.
type Store struct {
	mu       sync.Mutex
	dir      string
	jn       *Journal
	data     map[string]json.RawMessage
	deltas   int
	maxDelta int // Compact automatically after this many deltas
}

type storeDelta struct {
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value,omitempty"` // nil means delete
}

const (
	recSet    = "set"
	recDelete = "del"
)

// OpenStore opens (or recovers) a store rooted at dir. Recovery loads the
// snapshot and replays the delta journal, so state survives any crash.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, err
	}
	s := &Store{
		dir:      dir,
		data:     make(map[string]json.RawMessage),
		maxDelta: 1000,
	}
	var snap map[string]json.RawMessage
	err := LoadJSON(s.snapshotPath(), &snap)
	switch {
	case err == nil:
		s.data = snap
		if s.data == nil {
			s.data = make(map[string]json.RawMessage)
		}
	case errors.Is(err, os.ErrNotExist):
	default:
		return nil, fmt.Errorf("journal: load snapshot: %w", err)
	}
	_, err = Replay(s.journalPath(), func(rec Record) error {
		var d storeDelta
		if err := json.Unmarshal(rec.Data, &d); err != nil {
			return err
		}
		switch rec.Type {
		case recSet:
			s.data[d.Key] = d.Value
		case recDelete:
			delete(s.data, d.Key)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	jn, err := Open(s.journalPath(), Options{Sync: false})
	if err != nil {
		return nil, err
	}
	s.jn = jn
	return s, nil
}

func (s *Store) snapshotPath() string { return s.dir + "/snapshot.json" }
func (s *Store) journalPath() string  { return s.dir + "/journal.log" }

// Put stores v under key.
func (s *Store) Put(key string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.jn == nil {
		return errors.New("journal: store closed")
	}
	if err := s.jn.Append(recSet, storeDelta{Key: key, Value: raw}); err != nil {
		return err
	}
	s.data[key] = raw
	s.deltas++
	return s.maybeCompactLocked()
}

// Delete removes key.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.jn == nil {
		return errors.New("journal: store closed")
	}
	if _, ok := s.data[key]; !ok {
		return nil
	}
	if err := s.jn.Append(recDelete, storeDelta{Key: key}); err != nil {
		return err
	}
	delete(s.data, key)
	s.deltas++
	return s.maybeCompactLocked()
}

// Get unmarshals the value at key into v; found is false when absent.
func (s *Store) Get(key string, v any) (found bool, err error) {
	s.mu.Lock()
	raw, ok := s.data[key]
	s.mu.Unlock()
	if !ok {
		return false, nil
	}
	return true, json.Unmarshal(raw, v)
}

// Keys returns all keys (unordered).
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.data))
	for k := range s.data {
		out = append(out, k)
	}
	return out
}

// Len returns the number of stored keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.data)
}

// ForEach calls fn with each key and raw value.
func (s *Store) ForEach(fn func(key string, raw json.RawMessage) error) error {
	s.mu.Lock()
	snapshot := make(map[string]json.RawMessage, len(s.data))
	for k, v := range s.data {
		snapshot[k] = v
	}
	s.mu.Unlock()
	for k, v := range snapshot {
		if err := fn(k, v); err != nil {
			return err
		}
	}
	return nil
}

// Compact writes a snapshot and truncates the journal.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

func (s *Store) maybeCompactLocked() error {
	if s.deltas < s.maxDelta {
		return nil
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	if err := SaveJSONAtomic(s.snapshotPath(), s.data); err != nil {
		return err
	}
	if err := s.jn.Truncate(); err != nil {
		return err
	}
	s.deltas = 0
	return nil
}

// Close flushes and closes the store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.jn == nil {
		return nil
	}
	err := s.jn.Close()
	s.jn = nil
	return err
}
