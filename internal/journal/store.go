package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"condorg/internal/obs"
)

// Store is a crash-safe persistent map built from a snapshot file plus a
// journal of deltas — the shape of the Schedd job queue ("all relevant state
// for each submitted job is stored persistently in the scheduler's job
// queue", §4.2). Keys are strings; values are JSON documents.
//
// Writers only ever pay for framing their own delta: the durability wait
// happens outside the store lock (so concurrent Puts group-commit), and
// compaction rotates the delta journal aside and folds it into the
// snapshot in the background instead of stalling the queue.
type Store struct {
	mu       sync.Mutex
	cond     *sync.Cond // compaction state changes
	dir      string
	opts     StoreOptions
	jn       *Journal
	data     map[string]json.RawMessage
	deltas   int
	maxDelta int // rotate + compact automatically after this many deltas

	olds       []int // rotated journal segments awaiting the compactor
	oldSeq     int   // next rotation segment number
	compacting bool  // a background compactor goroutine is running
	compactErr error // latched background compaction failure
}

// StoreOptions configures the store's delta journal; see Options and the
// package documentation for the durability contract.
type StoreOptions struct {
	// Sync makes Put/Delete durable (fsynced) before they return.
	Sync bool
	// GroupWindow is the optional commit-leader linger; see Options.
	GroupWindow time.Duration
	// NoGroupCommit restores one write+fsync per delta; see Options.
	NoGroupCommit bool
	// Obs, when non-nil, instruments the delta journal; see Options.Obs.
	Obs *obs.Registry
}

type storeDelta struct {
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value,omitempty"` // nil means delete
}

const (
	recSet    = "set"
	recDelete = "del"
)

// OpenStore opens (or recovers) a store rooted at dir with the default
// (async) journaling options.
func OpenStore(dir string) (*Store, error) {
	return OpenStoreOptions(dir, StoreOptions{})
}

// OpenStoreOptions opens (or recovers) a store rooted at dir. Recovery
// loads the snapshot and replays any rotated segments plus the live delta
// journal, so state survives a crash at any point — including mid-compact.
func OpenStoreOptions(dir string, opts StoreOptions) (*Store, error) {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, err
	}
	s := &Store{
		dir:      dir,
		opts:     opts,
		data:     make(map[string]json.RawMessage),
		maxDelta: 1000,
	}
	s.cond = sync.NewCond(&s.mu)
	var snap map[string]json.RawMessage
	err := LoadJSON(s.snapshotPath(), &snap)
	switch {
	case err == nil:
		s.data = snap
		if s.data == nil {
			s.data = make(map[string]json.RawMessage)
		}
	case errors.Is(err, os.ErrNotExist):
	default:
		return nil, fmt.Errorf("journal: load snapshot: %w", err)
	}
	apply := func(rec Record) error {
		var d storeDelta
		if err := json.Unmarshal(rec.Data, &d); err != nil {
			return err
		}
		switch rec.Type {
		case recSet:
			s.data[d.Key] = d.Value
		case recDelete:
			delete(s.data, d.Key)
		}
		return nil
	}
	// Rotated segments left by a compaction the crash interrupted: they
	// hold deltas the snapshot may or may not include, so replay them (in
	// rotation order, before the live journal). Replaying a delta the
	// snapshot already folded in is a no-op.
	olds := s.listOldSegments()
	for _, n := range olds {
		if _, err := Replay(s.oldPath(n), apply); err != nil {
			return nil, err
		}
	}
	replayed, err := Replay(s.journalPath(), apply)
	if err != nil {
		return nil, err
	}
	s.deltas = replayed
	jn, err := Open(s.journalPath(), s.journalOpts())
	if err != nil {
		return nil, err
	}
	s.jn = jn
	if len(olds) > 0 {
		// Finish the interrupted compaction now so segments don't pile up.
		if err := SaveJSONAtomic(s.snapshotPath(), s.data); err != nil {
			jn.Close()
			return nil, fmt.Errorf("journal: fold rotated segments: %w", err)
		}
		for _, n := range olds {
			os.Remove(s.oldPath(n))
		}
	}
	return s, nil
}

func (s *Store) snapshotPath() string { return s.dir + "/snapshot.json" }
func (s *Store) journalPath() string  { return s.dir + "/journal.log" }
func (s *Store) oldPath(n int) string { return fmt.Sprintf("%s/journal.old.%d", s.dir, n) }

func (s *Store) journalOpts() Options {
	return Options{
		Sync:          s.opts.Sync,
		GroupWindow:   s.opts.GroupWindow,
		NoGroupCommit: s.opts.NoGroupCommit,
		Obs:           s.opts.Obs,
	}
}

// listOldSegments returns rotated segment numbers in rotation order and
// advances oldSeq past them.
func (s *Store) listOldSegments() []int {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var olds []int
	for _, e := range entries {
		rest, ok := strings.CutPrefix(e.Name(), "journal.old.")
		if !ok {
			continue
		}
		n, err := strconv.Atoi(rest)
		if err != nil {
			continue
		}
		olds = append(olds, n)
		if n >= s.oldSeq {
			s.oldSeq = n + 1
		}
	}
	sort.Ints(olds)
	return olds
}

// Put stores v under key. With Sync journaling the call returns once the
// delta is fsynced; concurrent writers share fsyncs through group commit.
func (s *Store) Put(key string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	delta, err := json.Marshal(storeDelta{Key: key, Value: raw})
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.jn == nil {
		s.mu.Unlock()
		return errors.New("journal: store closed")
	}
	jn := s.jn
	seq, err := jn.Enqueue(recSet, delta)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	s.data[key] = raw
	s.deltas++
	s.maybeRotateLocked()
	s.mu.Unlock()
	return jn.Commit(seq)
}

// Delete removes key.
func (s *Store) Delete(key string) error {
	delta, err := json.Marshal(storeDelta{Key: key})
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.jn == nil {
		s.mu.Unlock()
		return errors.New("journal: store closed")
	}
	if _, ok := s.data[key]; !ok {
		s.mu.Unlock()
		return nil
	}
	jn := s.jn
	seq, err := jn.Enqueue(recDelete, delta)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	delete(s.data, key)
	s.deltas++
	s.maybeRotateLocked()
	s.mu.Unlock()
	return jn.Commit(seq)
}

// Get unmarshals the value at key into v; found is false when absent.
func (s *Store) Get(key string, v any) (found bool, err error) {
	s.mu.Lock()
	raw, ok := s.data[key]
	s.mu.Unlock()
	if !ok {
		return false, nil
	}
	return true, json.Unmarshal(raw, v)
}

// Keys returns all keys (unordered).
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.data))
	for k := range s.data {
		out = append(out, k)
	}
	return out
}

// Len returns the number of stored keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.data)
}

// ForEach calls fn with each key and raw value.
func (s *Store) ForEach(fn func(key string, raw json.RawMessage) error) error {
	s.mu.Lock()
	snapshot := make(map[string]json.RawMessage, len(s.data))
	for k, v := range s.data {
		snapshot[k] = v
	}
	s.mu.Unlock()
	for k, v := range snapshot {
		if err := fn(k, v); err != nil {
			return err
		}
	}
	return nil
}

// Compact synchronously folds the journal into the snapshot: it rotates
// the live journal and waits for the background compactor to finish.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.jn == nil {
		return errors.New("journal: store closed")
	}
	if err := s.rotateLocked(); err != nil {
		return err
	}
	for s.compacting {
		s.cond.Wait()
	}
	return s.compactErr
}

func (s *Store) maybeRotateLocked() {
	if s.deltas < s.maxDelta {
		return
	}
	_ = s.rotateLocked() // a failed rotation latches compactErr; writers keep going
}

// rotateLocked moves the live journal aside as a numbered segment, opens a
// fresh one, and kicks the background compactor. The heavy part of a
// compact — marshalling and writing the snapshot — happens off this lock,
// so a large compact never stalls concurrent Puts.
func (s *Store) rotateLocked() error {
	if s.compactErr != nil {
		return s.compactErr
	}
	if err := s.jn.Close(); err != nil {
		// The tail of the journal could not be made durable; renaming it
		// aside would launder the loss into the snapshot. Reopen in place
		// and latch the failure.
		s.compactErr = err
		if jn, oerr := Open(s.journalPath(), s.journalOpts()); oerr == nil {
			s.jn = jn
		}
		return err
	}
	n := s.oldSeq
	s.oldSeq++
	if err := os.Rename(s.journalPath(), s.oldPath(n)); err != nil {
		s.compactErr = err
		if jn, oerr := Open(s.journalPath(), s.journalOpts()); oerr == nil {
			s.jn = jn
		}
		return err
	}
	jn, err := Open(s.journalPath(), s.journalOpts())
	if err != nil {
		s.compactErr = err
		return err
	}
	s.jn = jn
	s.deltas = 0
	s.olds = append(s.olds, n)
	if !s.compacting {
		s.compacting = true
		go s.compactor()
	}
	return nil
}

// compactor folds rotated segments into the snapshot until none remain.
// It clones the map under the lock but marshals and writes outside it.
func (s *Store) compactor() {
	for {
		s.mu.Lock()
		if len(s.olds) == 0 || s.compactErr != nil {
			s.compacting = false
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		olds := append([]int(nil), s.olds...)
		snap := make(map[string]json.RawMessage, len(s.data))
		for k, v := range s.data {
			snap[k] = v
		}
		s.mu.Unlock()
		err := SaveJSONAtomic(s.snapshotPath(), snap)
		s.mu.Lock()
		if err != nil {
			s.compactErr = err
			s.compacting = false
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		// The snapshot covered every delta enqueued before the clone, so
		// the rotated segments it subsumes can go.
		s.olds = s.olds[len(olds):]
		s.mu.Unlock()
		for _, n := range olds {
			os.Remove(s.oldPath(n))
		}
	}
}

// Close flushes and closes the store, waiting out any in-flight compaction.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.jn == nil {
		s.mu.Unlock()
		return nil
	}
	for s.compacting {
		s.cond.Wait()
	}
	jn := s.jn
	s.jn = nil
	s.mu.Unlock()
	return jn.Close()
}
