package journal

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"condorg/internal/obs"
)

// Record is one journal entry: an opaque type tag plus a JSON payload.
// Chained records additionally carry their chain sequence number and the
// SHA-256 (hex) of their predecessor's framed body; legacy records written
// before chaining have Seq 0 and no Prev.
type Record struct {
	Type string          `json:"type"`
	Seq  uint64          `json:"seq,omitempty"`
	Prev string          `json:"prev,omitempty"`
	Data json.RawMessage `json:"data"`
}

// ChainState identifies a position in the hash chain: the sequence number
// of the last record and the SHA-256 (hex) of its framed body. The zero
// value is the genesis state (an empty history).
type ChainState struct {
	Seq  uint64 `json:"seq"`
	Hash string `json:"hash,omitempty"`
}

// Link describes one appended chained record: its chain sequence, the hash
// of its predecessor, and its own hash. It is what a replication stream
// ships so a follower can verify continuity end to end.
type Link struct {
	Seq  uint64
	Prev string
	Hash string
}

// Journal is an append-only crash-safe log. It is safe for concurrent use;
// concurrent appenders coalesce into group commits (see the package
// documentation for the durability contract).
type Journal struct {
	mu   sync.Mutex
	cond *sync.Cond
	path string
	f    *os.File

	sync    bool
	window  time.Duration
	noGroup bool

	buf     []byte // framed records enqueued but not yet written
	pendSeq uint64 // sequence of the last enqueued record
	durSeq  uint64 // sequence of the last written (and, if sync, fsynced) record
	leading bool   // a commit leader is writing outside the lock
	err     error  // latched fatal write error
	appends int

	chain   ChainState // hash-chain head after the last enqueued record
	noChain bool       // write legacy (unchained) frames
	size    int64      // bytes in the file plus bytes enqueued (rotation sizing)

	hFlush   *obs.Histogram // journal_flush_seconds: write+fsync latency per flush
	hBatch   *obs.Histogram // journal_batch_records: records per group commit
	cAppends *obs.Counter   // journal_appends_total
}

// Options configures a Journal.
type Options struct {
	// Sync makes every append durable (fsynced) before it returns. Tests
	// that simulate crashes at arbitrary points leave this off for speed;
	// the agent turns it on for its persistent queue.
	Sync bool
	// GroupWindow, when positive, makes the commit leader linger that long
	// before flushing so more concurrent appenders join the batch. Zero
	// relies on natural batching (appenders that arrive while the previous
	// batch is being written share the next one), which is usually best.
	GroupWindow time.Duration
	// NoGroupCommit restores the historical behavior of one write (and,
	// with Sync, one fsync) per append, performed under the journal lock.
	// It exists so benchmarks can compare against the ungrouped path.
	NoGroupCommit bool
	// Obs, when non-nil, receives flush latency, batch size, and append
	// counters. Nil disables instrumentation (nil-safe handles).
	Obs *obs.Registry
	// Chain, when non-nil, is the hash-chain head this journal continues
	// from (the last record already on disk, or the snapshot head). Nil
	// starts a fresh chain at the genesis state — correct only for an
	// empty file.
	Chain *ChainState
	// NoChain writes legacy unchained frames (no seq/prev, no SHA-256).
	// It exists so benchmarks can quantify the chain's cost; durable
	// stores never set it.
	NoChain bool
}

// Open opens (creating if needed) the journal at path.
func Open(path string, opts Options) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return nil, fmt.Errorf("journal: open: %w", err)
	}
	j := &Journal{
		path:     path,
		f:        f,
		sync:     opts.Sync,
		window:   opts.GroupWindow,
		noGroup:  opts.NoGroupCommit,
		noChain:  opts.NoChain,
		hFlush:   opts.Obs.Histogram("journal_flush_seconds"),
		hBatch:   opts.Obs.Histogram("journal_batch_records"),
		cAppends: opts.Obs.Counter("journal_appends_total"),
	}
	if opts.Chain != nil {
		j.chain = *opts.Chain
	}
	if st, err := f.Stat(); err == nil {
		j.size = st.Size()
	}
	j.cond = sync.NewCond(&j.mu)
	return j, nil
}

// frameRecord builds the length+CRC framed wire form of one record. The
// payload is spliced in directly — the Record envelope is produced without
// re-marshalling the already-marshalled data. seq 0 produces the legacy
// unchained frame; otherwise the record carries its chain sequence and the
// predecessor hash.
func frameRecord(recType string, data []byte, seq uint64, prev string) []byte {
	tag, _ := json.Marshal(recType) // a string never fails to marshal
	if len(data) == 0 {
		data = []byte("null")
	}
	rec := make([]byte, 8, 8+len(tag)+len(data)+len(prev)+64)
	rec = append(rec, `{"type":`...)
	rec = append(rec, tag...)
	if seq > 0 {
		rec = append(rec, `,"seq":`...)
		rec = appendUint(rec, seq)
		rec = append(rec, `,"prev":"`...)
		rec = append(rec, prev...) // hex, never needs escaping
		rec = append(rec, '"')
	}
	rec = append(rec, `,"data":`...)
	rec = append(rec, data...)
	rec = append(rec, '}')
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(rec)-8))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(rec[8:]))
	return rec
}

// appendUint appends the decimal form of v.
func appendUint(b []byte, v uint64) []byte {
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(b, tmp[i:]...)
}

// hashBody returns the hex SHA-256 of one record's framed JSON body (the
// bytes after the 8-byte length+CRC header).
func hashBody(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}

// Append writes one record. The payload v is marshalled to JSON. The call
// returns once the record is covered by the configured durability mode.
func (j *Journal) Append(recType string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("journal: marshal %s: %w", recType, err)
	}
	return j.AppendRaw(recType, data)
}

// AppendRaw writes one record whose payload is already-marshalled JSON,
// framing it directly without a second marshal. data must be a valid JSON
// document (empty is treated as null).
func (j *Journal) AppendRaw(recType string, data json.RawMessage) error {
	seq, err := j.Enqueue(recType, data)
	if err != nil {
		return err
	}
	return j.Commit(seq)
}

// Enqueue stages one record (payload must be valid JSON) and returns its
// sequence number without waiting for it to reach disk. Callers that need
// to order the enqueue against their own state under an external lock use
// Enqueue there and call Commit after releasing it, so the durability wait
// does not serialize them.
func (j *Journal) Enqueue(recType string, data json.RawMessage) (uint64, error) {
	seq, _, err := j.EnqueueChained(recType, data)
	return seq, err
}

// EnqueueChained is Enqueue plus the appended record's chain Link, so a
// caller mirroring records to a follower can ship seq/prev/hash without
// re-deriving them. In NoChain mode the Link is zero.
func (j *Journal) EnqueueChained(recType string, data json.RawMessage) (uint64, Link, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return 0, Link{}, errors.New("journal: closed")
	}
	if j.err != nil {
		return 0, Link{}, j.err
	}
	var frame []byte
	var link Link
	if j.noChain {
		frame = frameRecord(recType, data, 0, "")
	} else {
		link = Link{Seq: j.chain.Seq + 1, Prev: j.chain.Hash}
		frame = frameRecord(recType, data, link.Seq, link.Prev)
		link.Hash = hashBody(frame[8:])
		j.chain = ChainState{Seq: link.Seq, Hash: link.Hash}
	}
	j.size += int64(len(frame))
	if j.noGroup {
		// Historical path: write (and fsync) inline under the lock.
		start := time.Now()
		if _, err := j.f.Write(frame); err != nil {
			j.err = err
			return 0, Link{}, err
		}
		if j.sync {
			if err := j.f.Sync(); err != nil {
				j.err = err
				return 0, Link{}, err
			}
		}
		j.hFlush.Observe(time.Since(start).Seconds())
		j.hBatch.Observe(1)
		j.cAppends.Inc()
		j.pendSeq++
		j.durSeq = j.pendSeq
		j.appends++
		return j.pendSeq, link, nil
	}
	j.buf = append(j.buf, frame...)
	j.pendSeq++
	j.appends++
	j.cAppends.Inc()
	return j.pendSeq, link, nil
}

// ChainHead returns the hash-chain state after the last enqueued record.
func (j *Journal) ChainHead() ChainState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.chain
}

// Size returns the journal's size in bytes, counting enqueued-but-unflushed
// records, for rotation decisions.
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// Commit blocks until the record with the given sequence number is covered
// by the configured durability mode. Concurrent committers elect a leader
// that writes (and fsyncs) everything enqueued so far in one batch.
func (j *Journal) Commit(seq uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	for {
		if j.durSeq >= seq {
			return nil
		}
		if j.err != nil {
			return j.err
		}
		if j.f == nil {
			return errors.New("journal: closed")
		}
		if j.leading {
			j.cond.Wait()
			continue
		}
		j.leading = true
		if j.window > 0 {
			j.mu.Unlock()
			time.Sleep(j.window)
			j.mu.Lock()
		}
		buf := j.buf
		upTo := j.pendSeq
		batch := upTo - j.durSeq
		j.buf = nil
		f := j.f
		j.mu.Unlock()
		var werr error
		start := time.Now()
		if len(buf) > 0 {
			_, werr = f.Write(buf)
		}
		if werr == nil && j.sync {
			werr = f.Sync()
		}
		if werr == nil && len(buf) > 0 {
			j.hFlush.Observe(time.Since(start).Seconds())
			j.hBatch.Observe(float64(batch))
		}
		j.mu.Lock()
		j.leading = false
		if werr != nil {
			j.err = werr
		} else {
			j.durSeq = upTo
		}
		j.cond.Broadcast()
	}
}

// Appends returns the number of records appended through this handle.
func (j *Journal) Appends() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appends
}

// flushLocked writes any batched records. Callers hold j.mu and have
// ensured no commit leader is in flight.
func (j *Journal) flushLocked() error {
	if len(j.buf) == 0 {
		j.durSeq = j.pendSeq
		return nil
	}
	_, err := j.f.Write(j.buf)
	if err == nil && j.sync {
		err = j.f.Sync()
	}
	j.buf = nil
	if err != nil {
		j.err = err
		return err
	}
	j.durSeq = j.pendSeq
	return nil
}

// Close flushes and closes the journal. Blocked committers are released.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	for j.leading {
		j.cond.Wait()
	}
	if j.f == nil {
		return nil
	}
	flushErr := j.flushLocked()
	closeErr := j.f.Close()
	j.f = nil
	j.cond.Broadcast()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// Replay reads every intact record in the journal at path, calling fn for
// each. A corrupt or truncated tail is tolerated (replay stops there); a
// missing file yields zero records. Replay returns the number of records
// delivered.
func Replay(path string, fn func(rec Record) error) (int, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("journal: replay open: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	n := 0
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return n, nil // clean EOF or torn header: stop
		}
		size := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if size > 1<<26 {
			return n, nil // implausible length: torn write
		}
		buf := make([]byte, size)
		if _, err := io.ReadFull(r, buf); err != nil {
			return n, nil // torn payload
		}
		if crc32.ChecksumIEEE(buf) != sum {
			return n, nil // corrupt record
		}
		var rec Record
		if err := json.Unmarshal(buf, &rec); err != nil {
			return n, nil
		}
		if err := fn(rec); err != nil {
			return n, err
		}
		n++
	}
}

// Truncate empties the journal (used after a successful Compact). Any
// batched-but-unwritten records are dropped along with the rest of the log.
func (j *Journal) Truncate() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	for j.leading {
		j.cond.Wait()
	}
	if j.f == nil {
		return errors.New("journal: closed")
	}
	j.buf = nil
	j.durSeq = j.pendSeq
	if err := j.f.Truncate(0); err != nil {
		return err
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	j.cond.Broadcast()
	return nil
}

// WriteFileAtomic writes data to path via a temp file + rename so readers
// never observe a partial file. The rename is atomic on POSIX filesystems.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".atomic-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	// The rename is atomic, but on ext4/xfs the new directory entry is not
	// durable until the directory itself is fsynced — without this a crash
	// shortly after "successfully" saving could lose the whole file.
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames and unlinks inside it survive a
// crash. Filesystems that cannot fsync a directory are tolerated.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, errors.ErrUnsupported) {
		return err
	}
	return nil
}

// SaveJSONAtomic marshals v and writes it atomically to path.
func SaveJSONAtomic(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, data)
}

// LoadJSON reads path into v; a missing file returns os.ErrNotExist.
func LoadJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}
