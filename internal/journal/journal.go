// Package journal provides the "stable storage" that the Condor-G paper
// leans on for fault tolerance: the Schedd's persistent job queue, the
// GridManager's recovery state, and the GRAM client-side job log are all
// journaled through this package.
//
// A Journal is an append-only log of JSON records, each protected by a CRC32
// so a torn final write (the classic crash signature) is detected and
// discarded on replay rather than corrupting recovery. Compact writes a
// snapshot atomically (write-temp + rename) and truncates the log.
package journal

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Record is one journal entry: an opaque type tag plus a JSON payload.
type Record struct {
	Type string          `json:"type"`
	Data json.RawMessage `json:"data"`
}

// Journal is an append-only crash-safe log. It is safe for concurrent use.
type Journal struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	w       *bufio.Writer
	sync    bool // fsync after every append
	appends int
}

// Options configures a Journal.
type Options struct {
	// Sync forces an fsync after every append. Tests that simulate
	// crashes at arbitrary points leave this off for speed; the agent
	// turns it on.
	Sync bool
}

// Open opens (creating if needed) the journal at path.
func Open(path string, opts Options) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return nil, fmt.Errorf("journal: open: %w", err)
	}
	return &Journal{path: path, f: f, w: bufio.NewWriter(f), sync: opts.Sync}, nil
}

// Append writes one record. The payload v is marshalled to JSON.
func (j *Journal) Append(recType string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("journal: marshal %s: %w", recType, err)
	}
	rec, err := json.Marshal(Record{Type: recType, Data: data})
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("journal: closed")
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(rec)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(rec))
	if _, err := j.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := j.w.Write(rec); err != nil {
		return err
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	if j.sync {
		if err := j.f.Sync(); err != nil {
			return err
		}
	}
	j.appends++
	return nil
}

// Appends returns the number of records appended through this handle.
func (j *Journal) Appends() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appends
}

// Close flushes and closes the journal.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	flushErr := j.w.Flush()
	closeErr := j.f.Close()
	j.f = nil
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// Replay reads every intact record in the journal at path, calling fn for
// each. A corrupt or truncated tail is tolerated (replay stops there); a
// missing file yields zero records. Replay returns the number of records
// delivered.
func Replay(path string, fn func(rec Record) error) (int, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("journal: replay open: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	n := 0
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return n, nil // clean EOF or torn header: stop
		}
		size := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if size > 1<<26 {
			return n, nil // implausible length: torn write
		}
		buf := make([]byte, size)
		if _, err := io.ReadFull(r, buf); err != nil {
			return n, nil // torn payload
		}
		if crc32.ChecksumIEEE(buf) != sum {
			return n, nil // corrupt record
		}
		var rec Record
		if err := json.Unmarshal(buf, &rec); err != nil {
			return n, nil
		}
		if err := fn(rec); err != nil {
			return n, err
		}
		n++
	}
}

// Truncate empties the journal (used after a successful Compact).
func (j *Journal) Truncate() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("journal: closed")
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	if err := j.f.Truncate(0); err != nil {
		return err
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	j.w.Reset(j.f)
	return nil
}

// WriteFileAtomic writes data to path via a temp file + rename so readers
// never observe a partial file. The rename is atomic on POSIX filesystems.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".atomic-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	return os.Rename(tmpName, path)
}

// SaveJSONAtomic marshals v and writes it atomically to path.
func SaveJSONAtomic(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, data)
}

// LoadJSON reads path into v; a missing file returns os.ErrNotExist.
func LoadJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}
