package journal

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzStoreReplay throws arbitrary bytes at the store's recovery path as a
// journal.log and checks the tamper-evidence invariants hold for every
// input:
//
//   - recovery and the offline auditor never panic;
//   - anything the auditor flags as corrupt refuses to open;
//   - any open refused as corrupt is audit-visible, quarantines the damaged
//     segment, and keeps refusing until the quarantine file is removed.
//
// (The converse — audit-clean implies open succeeds — does NOT hold: the
// auditor proves frame and chain integrity, not that every record decodes
// as a store delta.)
func FuzzStoreReplay(f *testing.F) {
	chained := func(mutate func([]byte) []byte) []byte {
		dir := f.TempDir()
		path := filepath.Join(dir, "seed.log")
		j, err := Open(path, Options{})
		if err != nil {
			f.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			delta, _ := json.Marshal(storeDelta{Key: "k", Value: json.RawMessage(`{"n":1}`)})
			if err := j.AppendRaw(recSet, delta); err != nil {
				f.Fatal(err)
			}
		}
		j.Close()
		raw, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		if mutate != nil {
			raw = mutate(raw)
		}
		return raw
	}
	f.Add([]byte{})
	f.Add(chained(nil))
	f.Add(chained(func(b []byte) []byte { return b[:len(b)-3] })) // torn tail
	f.Add(chained(func(b []byte) []byte { b[12] ^= 0x20; return b }))
	f.Add(chained(func(b []byte) []byte { b[len(b)/2] ^= 0x01; return b }))
	f.Add(chained(func(b []byte) []byte { return append(b, 0xde, 0xad, 0xbe, 0xef) }))
	f.Add(chained(func(b []byte) []byte { return b[40:] })) // lost prefix

	f.Fuzz(func(t *testing.T, raw []byte) {
		dir := t.TempDir()
		jpath := filepath.Join(dir, storeJournalFile)
		if err := os.WriteFile(jpath, raw, 0o600); err != nil {
			t.Fatal(err)
		}
		_, verr := VerifyDir(dir)

		s, oerr := OpenStoreOptions(dir, StoreOptions{})
		if oerr == nil {
			s.Close()
		}
		if verr != nil && oerr == nil {
			t.Fatalf("auditor flagged corruption (%v) but recovery opened anyway", verr)
		}
		var ce *CorruptionError
		if errors.As(oerr, &ce) {
			if verr == nil {
				t.Fatalf("recovery refused as corrupt (%v) but the auditor saw a clean history", oerr)
			}
			if _, err := os.Stat(jpath + quarantineSuffix); err != nil {
				t.Fatalf("corrupt open did not quarantine the segment: %v", err)
			}
			if _, err := OpenStoreOptions(dir, StoreOptions{}); err == nil {
				t.Fatal("second open over a quarantine succeeded")
			}
		}
	})
}
