package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

type payload struct {
	N int    `json:"n"`
	S string `json:"s"`
}

func TestAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := j.Append("p", payload{N: i, S: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	var got []payload
	n, err := Replay(path, func(rec Record) error {
		if rec.Type != "p" {
			t.Fatalf("rec type %q", rec.Type)
		}
		var p payload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		got = append(got, p)
		return nil
	})
	if err != nil || n != 10 {
		t.Fatalf("replay n=%d err=%v", n, err)
	}
	for i, p := range got {
		if p.N != i {
			t.Fatalf("record %d has N=%d", i, p.N)
		}
	}
}

func TestReplayMissingFile(t *testing.T) {
	n, err := Replay(filepath.Join(t.TempDir(), "nope.log"), func(Record) error { return nil })
	if err != nil || n != 0 {
		t.Fatalf("missing file: n=%d err=%v", n, err)
	}
}

func TestReplayTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, _ := Open(path, Options{})
	for i := 0; i < 5; i++ {
		if err := j.Append("p", payload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	// Simulate a crash mid-write: append garbage that looks like a header.
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	f.Write([]byte{200, 1, 0, 0, 9, 9, 9}) // 7 bytes: torn 8-byte header
	f.Close()
	n, err := Replay(path, func(Record) error { return nil })
	if err != nil || n != 5 {
		t.Fatalf("torn tail: n=%d err=%v, want 5 intact records", n, err)
	}
}

func TestReplayCorruptCRC(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, _ := Open(path, Options{})
	j.Append("p", payload{N: 1})
	j.Append("p", payload{N: 2})
	j.Close()
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF // flip a bit in the last record's payload
	os.WriteFile(path, data, 0o600)
	n, err := Replay(path, func(Record) error { return nil })
	if err != nil || n != 1 {
		t.Fatalf("corrupt record: n=%d err=%v, want 1", n, err)
	}
}

func TestTruncate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, _ := Open(path, Options{})
	j.Append("p", payload{N: 1})
	if err := j.Truncate(); err != nil {
		t.Fatal(err)
	}
	j.Append("p", payload{N: 2})
	j.Close()
	var ns []int
	Replay(path, func(rec Record) error {
		var p payload
		json.Unmarshal(rec.Data, &p)
		ns = append(ns, p.N)
		return nil
	})
	if len(ns) != 1 || ns[0] != 2 {
		t.Fatalf("after truncate replay = %v, want [2]", ns)
	}
}

func TestClosedJournalAppendFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, _ := Open(path, Options{})
	j.Close()
	if err := j.Append("p", payload{}); err == nil {
		t.Fatal("append after close should fail")
	}
	if err := j.Close(); err != nil {
		t.Fatalf("double close should be nil, got %v", err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := WriteFileAtomic(path, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("two")); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if string(data) != "two" {
		t.Fatalf("content = %q", data)
	}
	// No temp files left behind.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("leftover temp files: %v", entries)
	}
}

// Property: any sequence of appended payloads replays identically.
func TestQuickJournalRoundTrip(t *testing.T) {
	f := func(values []string) bool {
		path := filepath.Join(t.TempDir(), "q.log")
		j, err := Open(path, Options{})
		if err != nil {
			return false
		}
		for _, v := range values {
			if err := j.Append("s", v); err != nil {
				return false
			}
		}
		j.Close()
		var got []string
		_, err = Replay(path, func(rec Record) error {
			var s string
			if err := json.Unmarshal(rec.Data, &s); err != nil {
				return err
			}
			got = append(got, s)
			return nil
		})
		if err != nil || len(got) != len(values) {
			return false
		}
		for i := range got {
			if got[i] != values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
